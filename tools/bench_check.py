#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json result files.

Compares a bench result against the committed baseline for the same
hardware class and fails (exit 1) when a gated throughput metric drops
below the tolerance band. Baselines live in tools/baselines/ as plain
copies of known-good result files, keyed by bench name and the
hardware_concurrency the result was measured on:

    tools/baselines/<bench>.hc<N>.json

The hc key matters: events/sec measured on a 1-core container and on a
16-core bare-metal box are different quantities, and comparing across
them would make the gate either blind or permanently red. When no
baseline exists for the result's hc the check cannot gate: it reports
NO-BASELINE per file, prints a distinct summary line, and exits 3 so
callers can tell "nothing regressed" (0) apart from "nothing was
checked" (3). See tools/baselines/README.md for how to record one.

Gated metrics are wall-clock throughputs (higher is better); a drop
larger than --tolerance (default 15%) fails. Overhead fractions and
advisory scaling points (threads > cores, marked "advisory" by
perf_parallel) are reported but never gate: both measure noise as much
as code on shared runners.

Self-test hook: --inject-regression 0.20 scales every gated throughput
down 20% before comparing, so CI can assert the gate actually fires.

Usage:
    bench_check.py [options] BENCH_foo.json [BENCH_bar.json ...]
    --baselines DIR        baseline directory (default: tools/baselines
                           next to this script)
    --tolerance FRACTION   allowed drop, default 0.15
    --inject-regression F  scale gated metrics down by F (self-test)
    --update               (re)write the baseline from the result and
                           exit 0

Exit codes: 0 pass, 1 regression, 2 bad invocation or input,
3 no baseline for this hardware_concurrency (nothing was gated).
"""

import argparse
import json
import os
import shutil
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def gated_metrics(doc):
    """Extracts {name: value} of gated (higher-is-better) throughputs."""
    bench = doc.get("bench", "")
    out = {}
    if bench == "perf_smoke":
        hl = doc.get("high_load", {})
        if "events_per_sec" in hl:
            out["high_load.events_per_sec"] = hl["events_per_sec"]
        for p in doc.get("sweep", []):
            key = "sweep.bg%g.events_per_sec" % p.get("bg_kpps", -1)
            out[key] = p.get("events_per_sec", 0)
        # The flow-cache A/B point: cached flows skip stages 2-3, so the
        # honest throughput metric is packets/s (the fast path removes
        # simulated events per packet, which distorts events/s).
        fc = doc.get("flow_cache", {})
        if fc.get("compiled_in") and "cache_packets_per_sec" in fc:
            out["flow_cache.cache_packets_per_sec"] = fc[
                "cache_packets_per_sec"]
    elif bench == "perf_parallel":
        sl = doc.get("single_lane", {})
        if "lane_events_per_sec" in sl:
            out["single_lane.lane_events_per_sec"] = sl["lane_events_per_sec"]
        for p in doc.get("scaling", []):
            if p.get("advisory"):
                continue  # oversubscribed: measures contention, not code
            key = "scaling.l%d.t%d.events_per_sec" % (
                p.get("lanes", 0), p.get("threads", 0))
            out[key] = p.get("events_per_sec", 0)
    return out


def advisory_metrics(doc):
    """{name: value} reported for context but never gated."""
    out = {}
    for block in ("telemetry_overhead", "flight_recorder_overhead",
                  "lane_profiler_overhead"):
        b = doc.get(block, {})
        if "overhead_fraction" in b:
            out[block + ".overhead_fraction"] = b["overhead_fraction"]
    fc = doc.get("flow_cache", {})
    if "hit_rate" in fc:
        out["flow_cache.hit_rate"] = fc["hit_rate"]
    if "events_speedup" in fc:
        out["flow_cache.events_speedup"] = fc["events_speedup"]
    if "packets_speedup" in fc:
        out["flow_cache.packets_speedup"] = fc["packets_speedup"]
    det = doc.get("determinism", {})
    if "events_match_across_threads" in det:
        out["determinism.events_match_across_threads"] = det[
            "events_match_across_threads"]
    return out


def baseline_path(base_dir, doc):
    bench = doc.get("bench")
    hc = doc.get("hardware_concurrency")
    if not bench or hc is None:
        return None
    return os.path.join(base_dir, "%s.hc%d.json" % (bench, int(hc)))


def check_one(result_path, base_dir, tolerance, inject, update):
    """Returns (failures, advisories) for one result file."""
    doc = load(result_path)
    bench = doc.get("bench", "?")
    bp = baseline_path(base_dir, doc)
    if bp is None:
        print("%s: missing bench/hardware_concurrency fields" % result_path)
        return 1, 0

    if update:
        os.makedirs(base_dir, exist_ok=True)
        shutil.copyfile(result_path, bp)
        print("%s: baseline updated -> %s" % (bench, bp))
        return 0, 0

    if not os.path.exists(bp):
        print("%s: NO-BASELINE — no baseline for hc=%s (expected %s); "
              "nothing gated. Record one with --update on a reference "
              "machine (see tools/baselines/README.md)"
              % (bench, doc.get("hardware_concurrency"), bp))
        return 0, 1

    base = load(bp)
    current = gated_metrics(doc)
    reference = gated_metrics(base)
    if inject:
        current = {k: v * (1.0 - inject) for k, v in current.items()}

    failures = 0
    for name, ref in sorted(reference.items()):
        if ref <= 0:
            continue
        cur = current.get(name)
        if cur is None:
            print("%s: %-40s MISSING from result (baseline %.0f)"
                  % (bench, name, ref))
            failures += 1
            continue
        delta = (cur - ref) / ref
        ok = delta >= -tolerance
        print("%s: %-40s base=%12.0f cur=%12.0f  %+6.1f%%  %s"
              % (bench, name, ref, cur, delta * 100,
                 "ok" if ok else "REGRESSION (tolerance %.0f%%)"
                 % (tolerance * 100)))
        if not ok:
            failures += 1
    for name, cur in sorted(current.items()):
        if name not in reference:
            print("%s: %-40s cur=%12.0f  (new metric, not gated)"
                  % (bench, name, cur))

    for name, val in sorted(advisory_metrics(doc).items()):
        print("%s: %-40s %s  (advisory)" % (bench, name, val))
    return failures, 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results", nargs="+", help="BENCH_*.json files")
    ap.add_argument("--baselines",
                    default=os.path.join(os.path.dirname(
                        os.path.abspath(__file__)), "baselines"))
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--inject-regression", type=float, default=0.0,
                    dest="inject")
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args(argv)

    total_failures = 0
    total_unbaselined = 0
    for path in args.results:
        try:
            failures, unbaselined = check_one(
                path, args.baselines, args.tolerance, args.inject,
                args.update)
        except (OSError, ValueError) as e:
            print("%s: cannot check: %s" % (path, e))
            return 2
        total_failures += failures
        total_unbaselined += unbaselined

    if total_failures:
        print("bench_check: %d metric(s) regressed" % total_failures)
        return 1
    if total_unbaselined:
        print("bench_check: NO-BASELINE for %d result file(s) on this "
              "hardware class — nothing was gated (exit 3)"
              % total_unbaselined)
        return 3
    print("bench_check: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
