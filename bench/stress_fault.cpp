// Fault-injection stress sweep: drives the overlay pipeline through every
// fault mode at 1% / 10% / 50% rates and asserts the conservation
// invariant to the packet:
//
//     sends + injected duplicates == delivered + dropped-with-reason
//
// per priority class for payload-safe fault groups (loss, payload-only
// corruption, resource exhaustion, the mixed sweep), and at total level
// for the header-corrupt/truncate group (a frame whose classification
// bits were destroyed can only be attributed to class 0). Each scenario
// also checks that pool storage returns to baseline — no drop path leaks.
//
// The resource and mixed groups (the ones forcing ring-full/backlog-full
// episodes) run their sends compressed into an overload burst and assert
// recovery: every overload entry the episode provoked is matched by an
// exit (exits are only taken with the backlog back below the low
// watermark) and the governor ends the run in the normal state.
//
// A determinism pass re-runs one mixed scenario with the same seed (twice
// pooled, once with pools disabled) and requires bit-identical
// prism/faults and prism/overload snapshots.
//
// Usage: stress_fault [seed]   (default seed 1; CI sweeps several)
// Exit status is non-zero if any invariant fails — registered with ctest
// under the "stress" label.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/skb_pool.h"
#include "sim/pool.h"
#include "stats/table.h"

namespace prism::bench {
namespace {

constexpr int kClasses = 3;
constexpr std::uint64_t kPerClass = 300;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::printf("FAIL: %s\n", what.c_str());
  }
}

struct PoolBaseline {
  std::uint64_t skb_outstanding;
  std::uint64_t buf_outstanding;

  static PoolBaseline capture() {
    const auto& s = kernel::SkbPool::instance().stats();
    const auto& b = sim::BufferPool::instance().stats();
    return {s.acquired - s.released - s.discarded,
            b.acquired - b.released - b.discarded};
  }
};

struct RunResult {
  std::array<std::uint64_t, kClasses> received{};
  std::array<std::uint64_t, kClasses> duplicates{};
  std::array<std::uint64_t, kClasses> class_drops{};
  fault::FaultCounters counters;
  std::array<std::uint64_t, fault::kNumDropReasons> reason_totals{};
  std::uint64_t total_drops = 0;
  std::uint64_t ov_entries = 0;
  std::uint64_t ov_exits = 0;
  kernel::OverloadGovernor::State ov_state =
      kernel::OverloadGovernor::State::kNormal;
  std::string json;
  std::string overload_json;
};

/// One overlay scenario: three containers-to-container UDP streams, one
/// per priority class, pushed through a server armed with `fc`. With
/// `episode` the sends are compressed well past pipeline capacity so the
/// forced ring/backlog-full faults land during a genuine overload
/// episode the governor must enter and recover from.
RunResult run_scenario(const fault::FaultConfig& fc, bool episode = false) {
  harness::TestbedConfig cfg;
  cfg.mode = kernel::NapiMode::kPrismBatch;
  cfg.server_faults = fc;
  if (episode) {
    // The 900-packet burst spans ~3 full-budget softirq invocations;
    // enter on a 2-squeeze streak so the episode reliably trips the
    // governor (the default streak of 8 needs a longer soak).
    cfg.server_overload.squeeze_enter_streak = 2;
  }
  harness::Testbed tb(cfg);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  std::array<kernel::UdpSocket*, kClasses> socks = {
      &tb.server().udp_bind(c2, 7000), &tb.server().udp_bind(c2, 7001),
      &tb.server().udp_bind(c2, 7002)};
  tb.server().priority_db().add(c2.ip(), 7001, 1);
  tb.server().priority_db().add(c2.ip(), 7002, 2);

  // Episode runs compress the schedule to ~1 Mpps and fan the sends
  // across every client TX CPU — a single client CPU's per-packet TX
  // cost would pace the burst below the server's capacity.
  const sim::Time spacing = episode ? 1'000 : 4'000;  // 1 Mpps vs 250 kpps
  const int tx_cpus = episode ? tb.client().num_cpus() - 1 : 1;
  for (std::uint64_t i = 0; i < kPerClass; ++i) {
    for (int cls = 0; cls < kClasses; ++cls) {
      const std::uint64_t n = i * kClasses + static_cast<std::uint64_t>(cls);
      const int cpu = 1 + static_cast<int>(n % static_cast<std::uint64_t>(
                                                   tx_cpus));
      tb.sim().schedule_at(
          static_cast<sim::Time>(n) * spacing, [&, cls, cpu] {
            tb.client().udp_send(c1, tb.client().cpu(cpu), 4444, c2.ip(),
                                 static_cast<std::uint16_t>(7000 + cls),
                                 std::vector<std::uint8_t>(64, 0x11));
          });
    }
  }
  tb.sim().run();

  RunResult r;
  const auto& layer = tb.server().faults();
  for (int cls = 0; cls < kClasses; ++cls) {
    r.received[cls] = socks[cls]->received();
    r.duplicates[cls] = layer.plan.duplicates_for_class(cls);
    r.class_drops[cls] = layer.drops.class_total(cls);
  }
  r.counters = layer.plan.counters();
  for (int reason = 0; reason < fault::kNumDropReasons; ++reason) {
    r.reason_totals[static_cast<std::size_t>(reason)] =
        layer.drops.total(static_cast<fault::DropReason>(reason));
  }
  r.total_drops = layer.drops.total_drops();
  r.ov_entries = tb.server().governor().entries();
  r.ov_exits = tb.server().governor().exits();
  r.ov_state = tb.server().governor().state();
  r.json = tb.server().proc().read("prism/faults");
  r.overload_json = tb.server().proc().read("prism/overload");
  return r;
}

std::string reason_breakdown(const RunResult& r) {
  std::string out;
  for (int reason = 0; reason < fault::kNumDropReasons; ++reason) {
    const auto n = r.reason_totals[static_cast<std::size_t>(reason)];
    if (n == 0) continue;
    if (!out.empty()) out += " ";
    out += fault::drop_reason_name(static_cast<fault::DropReason>(reason));
    out += "=" + std::to_string(n);
  }
  return out.empty() ? "-" : out;
}

struct FaultGroup {
  const char* name;
  bool per_class;  ///< conservation holds per class (else total only)
  bool episode;    ///< burst past capacity: forced overload episode
  void (*apply)(fault::FaultConfig&, double rate);
};

const FaultGroup kGroups[] = {
    {"loss", true, false,
     [](fault::FaultConfig& c, double r) { c.wire_drop_rate = r; }},
    {"payload-corrupt", true, false,
     [](fault::FaultConfig& c, double r) {
       c.wire_corrupt_rate = r;
       c.decap_corrupt_rate = r;
     }},
    {"resource", true, true,
     [](fault::FaultConfig& c, double r) {
       c.ring_full_rate = r;
       c.backlog_full_rate = r;
       c.skb_alloc_fail_rate = r;
       c.buf_alloc_fail_rate = r;
     }},
    {"mixed", true, true,
     [](fault::FaultConfig& c, double r) {
       c.wire_drop_rate = r;
       c.wire_corrupt_rate = r;
       c.wire_duplicate_rate = r;
       c.wire_reorder_rate = r;
       c.decap_corrupt_rate = r;
       c.ring_full_rate = r / 2;
       c.backlog_full_rate = r / 2;
       c.skb_alloc_fail_rate = r / 2;
       c.buf_alloc_fail_rate = r / 2;
     }},
    {"header-corrupt", false, false,
     [](fault::FaultConfig& c, double r) {
       c.wire_corrupt_rate = r;
       c.wire_truncate_rate = r;
       c.corrupt_payload_only = false;
     }},
};

void sweep(std::uint64_t seed) {
  stats::Table table(
      {"group", "rate", "sent", "dups", "delivered", "dropped", "reasons"});
  for (const auto& group : kGroups) {
    for (const double rate : {0.01, 0.10, 0.50}) {
      fault::FaultConfig fc;
      fc.seed = seed;
      group.apply(fc, rate);

      const PoolBaseline before = PoolBaseline::capture();
      const RunResult r = run_scenario(fc, group.episode);
      const PoolBaseline after = PoolBaseline::capture();

      const std::string tag = std::string(group.name) + " @ " +
                              pct(rate) + " seed=" + std::to_string(seed);
      check(after.skb_outstanding == before.skb_outstanding,
            tag + ": skb pool leak (" +
                std::to_string(after.skb_outstanding -
                               before.skb_outstanding) +
                " outstanding)");
      check(after.buf_outstanding == before.buf_outstanding,
            tag + ": buffer pool leak");

      std::uint64_t delivered = 0;
      std::uint64_t duplicates = 0;
      for (int cls = 0; cls < kClasses; ++cls) {
        delivered += r.received[cls];
        duplicates += r.duplicates[cls];
        if (!group.per_class) continue;
        const std::uint64_t injected = kPerClass + r.duplicates[cls];
        const std::uint64_t accounted =
            r.received[cls] + r.class_drops[cls];
        check(injected == accounted,
              tag + ": class " + std::to_string(cls) + " conservation " +
                  std::to_string(injected) + " != " +
                  std::to_string(accounted));
      }
      const std::uint64_t injected_total =
          kPerClass * kClasses + duplicates;
      check(injected_total == delivered + r.total_drops,
            tag + ": total conservation " + std::to_string(injected_total) +
                " != " + std::to_string(delivered + r.total_drops));

      // Recovery: whatever overload the scenario provoked must have
      // unwound by the end of the run — an exit is only taken with the
      // backlog back below the low watermark.
      check(r.ov_entries == r.ov_exits,
            tag + ": overload entries " + std::to_string(r.ov_entries) +
                " != exits " + std::to_string(r.ov_exits));
      check(r.ov_state == kernel::OverloadGovernor::State::kNormal,
            tag + ": governor did not recover to normal");
#if PRISM_OVERLOAD_ENABLED
      // At 50% forced-fault rates half the burst dies at the injection
      // points and the surviving load no longer exceeds capacity, so
      // only the lower rates are required to provoke an episode.
      if (group.episode && rate < 0.5) {
        check(r.ov_entries >= 1,
              tag + ": burst episode never entered overload");
      }
#endif

      table.add_row({group.name, pct(rate), std::to_string(kPerClass * kClasses),
                     std::to_string(duplicates), std::to_string(delivered),
                     std::to_string(r.total_drops), reason_breakdown(r)});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void determinism(std::uint64_t seed) {
  fault::FaultConfig fc;
  fc.seed = seed;
  for (const auto& group : kGroups) {
    if (std::string(group.name) == "mixed") group.apply(fc, 0.10);
  }
  const auto run = [&fc](bool pools) {
    kernel::SkbPool::instance().set_enabled(pools);
    sim::BufferPool::instance().set_enabled(pools);
    const RunResult r = run_scenario(fc, /*episode=*/true);
    return r.json + r.overload_json;
  };
  const std::string pooled_a = run(true);
  const std::string pooled_b = run(true);
  const std::string unpooled = run(false);
  kernel::SkbPool::instance().set_enabled(true);
  sim::BufferPool::instance().set_enabled(true);
  check(pooled_a == pooled_b,
        "determinism: same seed, pools on, snapshots differ");
  check(pooled_a == unpooled,
        "determinism: pools on vs off, snapshots differ");
  std::printf("determinism: 3 runs (2 pooled, 1 unpooled), seed %llu -> %s\n\n",
              static_cast<unsigned long long>(fc.seed),
              g_failures == 0 ? "bit-identical snapshots" : "MISMATCH");
}

int main_impl(int argc, char** argv) {
  std::uint64_t seed = 1;
  if (argc > 1) {
    const long v = parse_long_or_die(argv[1], "seed");
    if (v < 1) {
      std::fprintf(stderr, "error: seed: %ld must be >= 1\n", v);
      return 2;
    }
    seed = static_cast<std::uint64_t>(v);
  }
  print_header("stress_fault",
               "fault-rate sweep with per-class conservation checks");
#if !PRISM_FAULTS_ENABLED
  std::printf("fault injection compiled out (PRISM_FAULTS=OFF) — nothing "
              "to stress\n");
  return 0;
#else
  sweep(seed);
  determinism(seed);
  if (g_failures == 0) {
    std::printf("stress_fault: all conservation invariants held (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  std::printf("stress_fault: %d invariant violation(s)\n", g_failures);
  return 1;
#endif
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) {
  return prism::bench::main_impl(argc, argv);
}
