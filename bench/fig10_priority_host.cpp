// Reproduces Fig. 10: per-packet latency of high-priority *host* traffic
// in the presence of low-priority background traffic.
//
// Paper result: on the native (non-overlay) path PRISM cannot improve
// latency over Vanilla — the host pipeline has a single stage and the
// prototype cannot differentiate priority inside the physical NIC driver
// (paper §IV-D). PRISM's benefit is specific to multi-stage pipelines.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 10", "high-priority HOST-path latency vs background traffic");

  auto run = [&](kernel::NapiMode mode, bool busy) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = busy;
    cfg.overlay = false;  // native host path: single stage
    return harness::run_priority_scenario(cfg);
  };

  const auto idle = run(kernel::NapiMode::kVanilla, false);
  const auto vanilla = run(kernel::NapiMode::kVanilla, true);
  const auto batch = run(kernel::NapiMode::kPrismBatch, true);
  const auto sync = run(kernel::NapiMode::kPrismSync, true);

  stats::Table table({"configuration", "min(us)", "mean(us)", "p50(us)",
                      "p90(us)", "p99(us)", "rx-cpu"});
  bench::add_latency_row(table, "idle (reference)", idle.latency,
                         bench::pct(idle.rx_cpu_utilization));
  bench::add_latency_row(table, "busy vanilla", vanilla.latency,
                         bench::pct(vanilla.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-batch", batch.latency,
                         bench::pct(batch.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-sync", sync.latency,
                         bench::pct(sync.rx_cpu_utilization));
  std::printf("%s\n", table.render().c_str());

  const auto vs = stats::summarize(vanilla.latency);
  const auto ss = stats::summarize(sync.latency);
  const double mean_delta = 100.0 * (ss.mean_ns - vs.mean_ns) / vs.mean_ns;
  std::printf(
      "PRISM-sync vs vanilla (busy, host path): mean %+.0f%%\n"
      "(paper: no improvement — the single-stage host pipeline gives PRISM "
      "nothing to preempt)\n",
      mean_delta);

  // Attribution on the host path: ring_wait + stage1_service only — the
  // measured form of the single-stage argument above.
  std::printf("\n");
  bench::print_latency_breakdown("busy vanilla", vanilla.server_latency);
  bench::print_latency_breakdown("busy prism-sync", sync.server_latency);
  return 0;
}
