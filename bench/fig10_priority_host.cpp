// Reproduces Fig. 10: per-packet latency of high-priority *host* traffic
// in the presence of low-priority background traffic.
//
// Paper result: on the native (non-overlay) path PRISM cannot improve
// latency over Vanilla — the host pipeline has a single stage and the
// prototype cannot differentiate priority inside the physical NIC driver
// (paper §IV-D). PRISM's benefit is specific to multi-stage pipelines.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 10", "high-priority HOST-path latency vs background traffic");

  // Same detector flags as fig09: --seed / --trace-flows / --slo-us.
  const std::uint64_t seed = bench::parse_seed(argc, argv);
  const std::uint32_t trace_flows = bench::parse_trace_flows(argc, argv);
  const sim::Duration slo = bench::parse_slo_us(argc, argv);
  const sim::Duration inv = bench::parse_inversion_us(argc, argv, 50);

  auto run = [&](kernel::NapiMode mode, bool busy) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = busy;
    cfg.overlay = false;  // native host path: single stage
    cfg.arm_detectors = true;
    if (trace_flows > 0) cfg.trace_sample_period = trace_flows;
    cfg.slo_p99_ns = slo;
    cfg.inversion_wait_ns = inv;
    cfg.wire_drop_rate = 0.005;
    cfg.wire_dup_rate = 0.002;
    cfg.fault_seed = seed;
    return harness::run_priority_scenario(cfg);
  };

  const auto idle = run(kernel::NapiMode::kVanilla, false);
  const auto vanilla = run(kernel::NapiMode::kVanilla, true);
  const auto batch = run(kernel::NapiMode::kPrismBatch, true);
  const auto sync = run(kernel::NapiMode::kPrismSync, true);

  stats::Table table({"configuration", "min(us)", "mean(us)", "p50(us)",
                      "p90(us)", "p99(us)", "rx-cpu"});
  bench::add_latency_row(table, "idle (reference)", idle.latency,
                         bench::pct(idle.rx_cpu_utilization));
  bench::add_latency_row(table, "busy vanilla", vanilla.latency,
                         bench::pct(vanilla.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-batch", batch.latency,
                         bench::pct(batch.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-sync", sync.latency,
                         bench::pct(sync.rx_cpu_utilization));
  std::printf("%s\n", table.render().c_str());

  const auto vs = stats::summarize(vanilla.latency);
  const auto ss = stats::summarize(sync.latency);
  const double mean_delta = 100.0 * (ss.mean_ns - vs.mean_ns) / vs.mean_ns;
  std::printf(
      "PRISM-sync vs vanilla (busy, host path): mean %+.0f%%\n"
      "(paper: no improvement — the single-stage host pipeline gives PRISM "
      "nothing to preempt)\n",
      mean_delta);

  // Attribution on the host path: ring_wait + stage1_service only — the
  // measured form of the single-stage argument above.
  std::printf("\n");
  bench::print_latency_breakdown("busy vanilla", vanilla.server_latency);
  bench::print_latency_breakdown("busy prism-sync", sync.server_latency);

  // Detector view of the same argument: the host path has no stage
  // queues, so there are no queue inversions for Prism to remove — every
  // inversion here is a ring inversion (the priority-blind NIC FIFO),
  // and it fires under every mode alike (paper §IV-D).
  std::printf("anomaly detectors (seed=%llu):\n",
              static_cast<unsigned long long>(seed));
  bench::print_anomaly_summary("idle", idle.server_anomalies);
  bench::print_anomaly_summary("busy vanilla", vanilla.server_anomalies);
  bench::print_anomaly_summary("busy prism-batch", batch.server_anomalies);
  bench::print_anomaly_summary("busy prism-sync", sync.server_anomalies);
  return 0;
}
