// Reproduces Fig. 12: memcached performance in the presence of
// low-priority background traffic.
//
// Paper setup: memaslap-style load against a containerized memcached
// (high priority), sockperf UDP throughput as background; idle vs busy,
// Vanilla vs PRISM-sync.
//
// Paper result: on a busy vanilla server, memcached throughput drops ~80%
// and average latency rises >5x vs idle. PRISM-sync roughly doubles the
// busy throughput and cuts min/avg/tail latency by ~66%/~47%/~27%.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header("Figure 12",
                      "memcached throughput and latency under background "
                      "traffic");

  struct Row {
    const char* label;
    kernel::NapiMode mode;
    bool busy;
  };
  const Row rows[] = {
      {"idle vanilla", kernel::NapiMode::kVanilla, false},
      {"idle prism-sync", kernel::NapiMode::kPrismSync, false},
      {"busy vanilla", kernel::NapiMode::kVanilla, true},
      {"busy prism-sync", kernel::NapiMode::kPrismSync, true},
  };

  stats::Table table({"configuration", "ops/s", "min(us)", "mean(us)",
                      "p99(us)", "timeouts", "rx-cpu"});
  harness::MemcachedScenarioResult res[4];
  int i = 0;
  for (const auto& row : rows) {
    harness::MemcachedScenarioConfig cfg;
    cfg.mode = row.mode;
    cfg.busy = row.busy;
    res[i] = harness::run_memcached_scenario(cfg);
    const auto s = stats::summarize(res[i].latency);
    table.add_row({row.label,
                   stats::Table::cell(res[i].ops_per_second, 0),
                   bench::us(s.min_ns), bench::us(s.mean_ns),
                   bench::us(s.p99_ns),
                   std::to_string(res[i].timeouts),
                   bench::pct(res[i].rx_cpu_utilization)});
    ++i;
  }
  std::printf("%s\n", table.render().c_str());

  const auto idle_v = stats::summarize(res[0].latency);
  const auto busy_v = stats::summarize(res[2].latency);
  const auto busy_p = stats::summarize(res[3].latency);
  std::printf(
      "busy vanilla vs idle: throughput %+.0f%%, mean latency %.1fx\n"
      "(paper: -80%%, >5x)\n"
      "prism-sync vs vanilla (busy): throughput %+.0f%%, min %+.0f%%, "
      "mean %+.0f%%, p99 %+.0f%%\n"
      "(paper: ~+100%%, ~-66%%, ~-47%%, ~-27%%)\n",
      100.0 * (res[2].ops_per_second - res[0].ops_per_second) /
          res[0].ops_per_second,
      busy_v.mean_ns / idle_v.mean_ns,
      100.0 * (res[3].ops_per_second - res[2].ops_per_second) /
          res[2].ops_per_second,
      100.0 * static_cast<double>(busy_p.min_ns - busy_v.min_ns) /
          static_cast<double>(busy_v.min_ns),
      100.0 * (busy_p.mean_ns - busy_v.mean_ns) / busy_v.mean_ns,
      100.0 * static_cast<double>(busy_p.p99_ns - busy_v.p99_ns) /
          static_cast<double>(busy_v.p99_ns));

  std::printf("\n");
  bench::print_latency_breakdown("busy vanilla", res[2].server_latency);
  bench::print_latency_breakdown("busy prism-sync", res[3].server_latency);
  return 0;
}
