// Ablation: NAPI_BUDGET (paper Fig. 2, line 4).
//
// The budget bounds how many packets one net_rx_action invocation may
// process before re-raising itself. Smaller budgets re-enter the softirq
// machinery more often (more fixed cost), larger budgets let one
// invocation monopolize the core longer.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header("Ablation", "NAPI_BUDGET sweep (vanilla, busy)");

  stats::Table table({"budget", "probe p50(us)", "probe p99(us)",
                      "rx-cpu", "bg received"});
  for (const int budget : {64, 128, 300, 600, 1200}) {
    kernel::CostModel cost;
    cost.napi_budget = budget;
    harness::PriorityScenarioConfig cfg;
    cfg.mode = kernel::NapiMode::kVanilla;
    cfg.busy = true;
    cfg.duration = sim::milliseconds(300);
    cfg.cost = cost;
    const auto res = harness::run_priority_scenario(cfg);
    table.add_row({std::to_string(budget),
                   bench::us(res.latency.percentile(0.5)),
                   bench::us(res.latency.percentile(0.99)),
                   bench::pct(res.rx_cpu_utilization),
                   std::to_string(res.bg_received)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The default budget (300) is large enough that the 3-stage overlay\n"
      "cycle (3 x 64 = 192 packets) completes in one invocation; smaller\n"
      "budgets split the cycle across invocations and add softirq entry\n"
      "overhead without improving the probe's position in any queue.\n");
  return 0;
}
