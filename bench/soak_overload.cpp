// Overload soak: randomized load ramps, hot-flow floods, priority mixes
// and a receiver-livelock episode driven through one continuous run of
// the paper testbed, under invariant monitors:
//
//   * per-class packet conservation (sends + injected duplicates ==
//     delivered + dropped-with-reason, per priority class)
//   * zero pool leaks across the whole soak
//   * bounded high-priority p99 while overloaded: every 10 ms latency
//     window of the probe flow during the ramp stays within 3x the
//     unloaded baseline, while low-priority traffic is being shed
//   * the livelock watchdog fires within a bound of the unserviceable
//     flood starting, and delivery resumption demotes it
//   * post-soak recovery: the governor returns to normal (entries ==
//     exits) and the probe p99 recovers to within 10% of baseline
//   * determinism: a second same-seed run must produce byte-identical
//     prism/overload and prism/faults snapshots
//
// The run is phased: baseline probe -> R randomized overload rounds
// (bulk level-0 floods, optionally a single hot flow for the flow
// limiter, plus a level-1 flood that starves level 0) -> a flood at an
// unbound port (zero deliveries => livelock) -> cooldown -> recovery
// probe. Phase boundaries are aligned to the latency ledger's 10 ms
// windows so per-phase p99 slices cleanly out of the time-series.
//
// Usage: soak_overload [seed] [--short]
//   --short runs the reduced CI profile (fewer/shorter rounds).
// Exit status is non-zero if any monitor fails — registered with ctest
// under the "soak" label.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/overload.h"
#include "kernel/skb_pool.h"
#include "sim/pool.h"
#include "sim/rng.h"
#include "stats/table.h"
#include "telemetry/anomaly.h"
#include "telemetry/latency.h"

namespace prism::bench {
namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::printf("FAIL: %s\n", what.c_str());
  }
}

struct PoolBaseline {
  std::uint64_t skb_outstanding;
  std::uint64_t buf_outstanding;

  static PoolBaseline capture() {
    const auto& s = kernel::SkbPool::instance().stats();
    const auto& b = sim::BufferPool::instance().stats();
    return {s.acquired - s.released - s.discarded,
            b.acquired - b.released - b.discarded};
  }
};

constexpr sim::Time kMs = 1'000'000;  // sim::Time is ns

struct Profile {
  int rounds = 4;
  sim::Time round = 40 * kMs;
  sim::Time baseline = 40 * kMs;
  sim::Time livelock = 30 * kMs;
  sim::Time recovery = 40 * kMs;

  static Profile full() { return Profile{}; }
  static Profile shortened() { return Profile{2, 30 * kMs, 40 * kMs,
                                              20 * kMs, 30 * kMs}; }
};

/// One randomized overload round (drawn at setup from the seed).
struct Round {
  sim::Time start = 0;
  double bulk_pps = 0;   ///< level-0 flood
  double flood_pps = 0;  ///< level-1 flood (starves level 0)
  bool hot = false;      ///< bulk is a single flow (flow_limit bait)
};

constexpr std::uint16_t kBulkPort = 7000;    // level 0
constexpr std::uint16_t kFloodPort = 7001;   // level 1
constexpr std::uint16_t kProbePort = 7002;   // level 2
constexpr std::uint16_t kUnboundPort = 7999; // no socket: livelock bait

/// Detector arming for the soak: the SLO target sits between the probe's
/// unloaded windowed p99 (~45us, short profile) and its overloaded one
/// (~90us; the flood class sits at ~106us), so overload rounds breach it
/// while the pre-ramp baseline and a clean run never do. The drop-burst
/// threshold is far above fault-injection noise but well below one
/// overloaded round's shed rate.
constexpr sim::Duration kSloTarget = sim::microseconds(64);
constexpr std::uint32_t kDropBurstThreshold = 256;  // per 1 ms window

telemetry::AnomalyConfig soak_anomaly_config() {
  telemetry::AnomalyConfig ac;
  ac.slo_p99_ns = kSloTarget;
  ac.drop_burst_threshold = kDropBurstThreshold;
  ac.flap_threshold = 4;
  return ac;
}

/// Self-rescheduling one-way UDP sender: `burst` datagrams every
/// `tick_gap`, rotating client CPUs and source ports.
struct Stream {
  harness::Testbed* tb = nullptr;
  overlay::Netns* ns = nullptr;
  net::Ipv4Addr dst_ip;
  std::uint16_t dst_port = 0;
  std::vector<std::uint16_t> src_ports;
  sim::Time stop = 0;
  sim::Duration tick_gap = 0;
  int burst = 1;
  std::uint64_t sent = 0;
  int next_cpu = 1;
  std::size_t next_port = 0;

  void start(sim::Time at) {
    tb->sim().schedule_at(at, [this] { tick(); });
  }

  void tick() {
    static const std::vector<std::uint8_t> payload(64, 0x5a);
    auto& client = tb->client();
    const int tx_cpus = client.num_cpus() - 1;  // CPU 0 handles client RX
    for (int i = 0; i < burst; ++i) {
      client.udp_send(*ns, client.cpu(next_cpu), src_ports[next_port],
                      dst_ip, dst_port, payload);
      ++sent;
      next_cpu = 1 + next_cpu % tx_cpus;
      next_port = (next_port + 1) % src_ports.size();
    }
    const sim::Time t = tb->sim().now() + tick_gap;
    if (t < stop) tb->sim().schedule_at(t, [this] { tick(); });
  }
};

/// Governor state sampled mid-round (moderation-stretch monitor).
struct MidRoundSample {
  kernel::OverloadGovernor::State state;
  sim::Duration coalesce_usecs;
};

struct SoakResult {
  std::array<std::uint64_t, 3> sent{};      // per class
  std::array<std::uint64_t, 3> received{};  // per class (bound ports)
  std::array<std::uint64_t, 3> duplicates{};
  std::array<std::uint64_t, 3> class_drops{};
  std::uint64_t shed_count = 0;
  std::uint64_t flow_limit_count = 0;
  std::uint64_t entries = 0;
  std::uint64_t exits = 0;
  std::uint64_t livelocks = 0;
  kernel::OverloadGovernor::State final_state =
      kernel::OverloadGovernor::State::kNormal;
  std::vector<kernel::OverloadGovernor::Transition> transitions;
  std::vector<MidRoundSample> mid_round;
  telemetry::LatencyBreakdown latency;
  std::string overload_json;
  std::string faults_json;
  std::string anomalies_json;
  std::uint64_t slo_breaches = 0;
  std::uint64_t drop_bursts = 0;
  sim::Time first_slo_breach_at = -1;
};

/// Max probe-window p99 for `level` over delivery windows starting in
/// [lo, hi), ignoring slivers below `min_count` samples. -1 if none.
std::int64_t max_window_p99(const telemetry::LatencyBreakdown& b, int level,
                            sim::Time lo, sim::Time hi,
                            std::uint64_t min_count = 50) {
  std::int64_t worst = -1;
  for (const auto& w : b.windows) {
    if (w.level != level || w.start_ns < lo || w.start_ns >= hi) continue;
    if (w.count < min_count) continue;
    worst = std::max(worst, w.p99_ns);
  }
  return worst;
}

SoakResult run_soak(std::uint64_t seed, const Profile& prof, bool report) {
  // Per-round parameters come from a dedicated generator so the draw
  // sequence depends only on the seed and profile.
  sim::Rng rng(seed);
  std::vector<Round> rounds(static_cast<std::size_t>(prof.rounds));
  const sim::Time ramp_start = 10 * kMs + prof.baseline;
  for (int i = 0; i < prof.rounds; ++i) {
    auto& r = rounds[static_cast<std::size_t>(i)];
    r.start = ramp_start + i * prof.round;
    r.bulk_pps = rng.uniform(360e3, 420e3);
    r.flood_pps = rng.uniform(30e3, 60e3);
    r.hot = rng.chance(0.5);
  }
  const sim::Time ramp_end = ramp_start + prof.rounds * prof.round;
  const sim::Time livelock_start = ramp_end + 20 * kMs;
  const sim::Time livelock_end = livelock_start + prof.livelock;
  const sim::Time recovery_start = livelock_end + 20 * kMs;
  const sim::Time recovery_end = recovery_start + prof.recovery;

  harness::TestbedConfig cfg;
  cfg.mode = kernel::NapiMode::kPrismBatch;
  cfg.server_netdev_max_backlog = 256;  // watermarks reachable (DESIGN.md)
  // Tighter IRQ moderation than the harness default ({50us, 64 frames}).
  // The NIC ring is priority-blind (paper SIV-D), so the probe's ring
  // wait under overload is bounded below by the coalesce accumulation
  // window; an 8-frame trigger keeps that window ~15us at ramp rates. A
  // 2x stretch keeps degradation-at-the-source observable without
  // swamping the high-priority latency bound the soak asserts.
  cfg.coalesce = nic::CoalesceConfig{sim::microseconds(40), 8};
  cfg.server_overload.moderation_stretch = 2.0;
  // Enter overload below the flow limiter's half-backlog activation
  // point: a single convicted hot flow stabilizes the backlog just under
  // max_backlog/2, so a watermark above that never fires for hot-flow
  // overload even though low-priority work is being shed continuously.
  cfg.server_overload.high_watermark = 0.45;
  // Steer the bridge->backlog boundary to CPU 1 (paper SII-A RPS) and
  // make the backlog stage the bottleneck (~500 kpps). The soak's
  // oversubscription then lives in the per-CPU backlog -- where priority
  // admission and the priority queues act -- while CPU 0 keeps the
  // priority-blind NIC ring drained. Without the split, every queue in
  // the shared-CPU pipeline fills together and no amount of shedding can
  // keep the high-priority ring wait bounded.
  cfg.server_rps_cpus = {1};
  cfg.cost.backlog_stage_per_packet = sim::microseconds(2);
  // Smaller per-poll weight: a high-priority packet arriving mid-poll
  // waits out at most one in-flight 12-packet batch of shed-class work
  // (~40us at the backlog stage) instead of a full 64-packet one.
  cfg.cost.napi_batch_size = 12;
  // Mild payload-safe fault mix (PR 4 groups: loss + resource) so the
  // soak exercises the hardened drop paths under overload too.
  cfg.server_faults.seed = seed;
  cfg.server_faults.wire_drop_rate = 0.004;
  cfg.server_faults.wire_duplicate_rate = 0.002;
  cfg.server_faults.ring_full_rate = 0.002;
  cfg.server_faults.backlog_full_rate = 0.002;
  cfg.server_faults.skb_alloc_fail_rate = 0.002;
  harness::Testbed tb(cfg);
  // Detectors armed for the whole soak: inversion (default 100 us),
  // per-class SLO p99, drop bursts, governor flapping. They observe
  // only — the same-seed determinism check below covers their document.
  tb.server().anomalies().arm(soak_anomaly_config());
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  std::array<kernel::UdpSocket*, 3> socks = {
      &tb.server().udp_bind(c2, kBulkPort, /*capacity=*/65536),
      &tb.server().udp_bind(c2, kFloodPort, /*capacity=*/65536),
      &tb.server().udp_bind(c2, kProbePort, /*capacity=*/65536)};
  tb.server().priority_db().add(c2.ip(), kFloodPort, 1);
  tb.server().priority_db().add(c2.ip(), kProbePort, 2);

  std::vector<std::unique_ptr<Stream>> streams;
  const auto add_stream = [&](std::uint16_t dst_port,
                              std::vector<std::uint16_t> src_ports,
                              double pps, int burst, sim::Time start,
                              sim::Time stop) -> Stream* {
    auto s = std::make_unique<Stream>();
    s->tb = &tb;
    s->ns = &c1;
    s->dst_ip = c2.ip();
    s->dst_port = dst_port;
    s->src_ports = std::move(src_ports);
    s->stop = stop;
    s->burst = burst;
    s->tick_gap = static_cast<sim::Duration>(1e9 * burst / pps);
    s->start(start);
    streams.push_back(std::move(s));
    return streams.back().get();
  };

  // Probe: low-rate level-2 flow spanning baseline and every ramp round,
  // then again after cooldown for the recovery measurement.
  add_stream(kProbePort, {4444}, 100e3, 1, 10 * kMs, ramp_end);
  add_stream(kProbePort, {4444}, 100e3, 1, recovery_start, recovery_end);

  for (const auto& r : rounds) {
    std::vector<std::uint16_t> bulk_ports;
    if (r.hot) {
      bulk_ports = {5000};
    } else {
      for (std::uint16_t p = 5000; p < 5008; ++p) bulk_ports.push_back(p);
    }
    add_stream(kBulkPort, std::move(bulk_ports), r.bulk_pps, 16, r.start,
               r.start + prof.round);
    add_stream(kFloodPort, {6000, 6001}, r.flood_pps, 8, r.start,
               r.start + prof.round);
  }

  // Livelock bait: nothing is bound at kUnboundPort, so every packet the
  // pipeline delivers ends as a no-socket drop — zero stage-3 deliveries
  // while arrivals continue.
  add_stream(kUnboundPort, {6500, 6501, 6502, 6503}, 500e3, 16,
             livelock_start, livelock_end);

  // Mid-round governor samples (moderation-stretch monitor).
  SoakResult res;
  for (const auto& r : rounds) {
    tb.sim().schedule_at(r.start + prof.round / 2, [&] {
      res.mid_round.push_back(
          {tb.server().governor().state(),
           tb.server().nic().queue(0).coalesce().usecs});
    });
  }

  tb.sim().run();

  for (int cls = 0; cls < 3; ++cls) {
    res.received[static_cast<std::size_t>(cls)] =
        socks[static_cast<std::size_t>(cls)]->received();
    res.duplicates[static_cast<std::size_t>(cls)] =
        tb.server().faults().plan.duplicates_for_class(cls);
    res.class_drops[static_cast<std::size_t>(cls)] =
        tb.server().faults().drops.class_total(cls);
  }
  for (const auto& s : streams) {
    const int cls = s->dst_port == kProbePort    ? 2
                    : s->dst_port == kFloodPort ? 1
                                                : 0;
    res.sent[static_cast<std::size_t>(cls)] += s->sent;
  }
  for (int i = 0; i < tb.server().num_cpus(); ++i) {
    res.shed_count += tb.server().admission(i).shed_count();
    res.flow_limit_count += tb.server().admission(i).flow_limit_count();
  }
  const auto& gov = tb.server().governor();
  res.entries = gov.entries();
  res.exits = gov.exits();
  res.livelocks = gov.livelocks();
  res.final_state = gov.state();
  res.transitions = gov.transitions();
  res.latency = tb.server().latency_ledger().snapshot();
  res.overload_json = tb.server().proc().read("prism/overload");
  res.faults_json = tb.server().proc().read("prism/faults");
  res.anomalies_json = tb.server().proc().read("prism/anomalies");
  {
    const telemetry::AnomalyBank& bank = tb.server().anomalies();
    res.slo_breaches = bank.fired(telemetry::AnomalyKind::kSloBreach);
    res.drop_bursts = bank.fired(telemetry::AnomalyKind::kDropBurst);
    for (const auto& f : bank.findings()) {
      if (f.kind == telemetry::AnomalyKind::kSloBreach) {
        res.first_slo_breach_at = f.at;
        break;
      }
    }
    if (report) {
      const char* trace_out = std::getenv("PRISM_ANOMALY_TRACE_OUT");
      if (trace_out == nullptr) trace_out = "anomaly_trace.json";
      if (telemetry::export_anomaly_trace_file(bank, trace_out)) {
        std::printf("wrote %s (%llu findings)\n", trace_out,
                    static_cast<unsigned long long>(bank.findings().size()));
      }
    }
  }

  // ------------------------------------------------------------ monitors
  const std::string tag = "seed " + std::to_string(seed);

  // Per-class conservation, to the packet.
  for (int cls = 0; cls < 3; ++cls) {
    const auto c = static_cast<std::size_t>(cls);
    const std::uint64_t injected = res.sent[c] + res.duplicates[c];
    const std::uint64_t accounted = res.received[c] + res.class_drops[c];
    check(injected == accounted,
          tag + ": class " + std::to_string(cls) + " conservation " +
              std::to_string(injected) + " != " + std::to_string(accounted));
  }

  // Overload machinery engaged: low priority was shed while the probe ran.
  check(res.shed_count > 0, tag + ": no level-0 sheds during the ramp");
  bool any_hot = false;
  for (const auto& r : rounds) any_hot |= r.hot;
  if (any_hot) {
    check(res.flow_limit_count > 0,
          tag + ": hot-flow round ran but flow_limit never convicted");
  }
  check(res.entries >= 2, tag + ": expected ramp + livelock overload entries");
  check(res.entries == res.exits,
        tag + ": unbalanced transitions (entries " +
            std::to_string(res.entries) + ", exits " +
            std::to_string(res.exits) + ")");
  check(res.final_state == kernel::OverloadGovernor::State::kNormal,
        tag + ": governor did not recover to normal");

  // Moderation stretch observable while overloaded mid-round.
  int overloaded_samples = 0;
  for (const auto& s : res.mid_round) {
    if (s.state != kernel::OverloadGovernor::State::kOverloaded) continue;
    ++overloaded_samples;
    const auto stretched = static_cast<sim::Duration>(
        static_cast<double>(cfg.coalesce.usecs) *
        cfg.server_overload.moderation_stretch);
    check(s.coalesce_usecs == stretched,
          tag + ": overloaded mid-round sample without stretched "
                "IRQ moderation");
  }
  check(overloaded_samples > 0,
        tag + ": governor never overloaded at a round midpoint");

  // Livelock watchdog: fires within 15 ms of the unserviceable flood and
  // is demoted by the first recovery delivery.
  sim::Time livelock_at = -1;
  bool resumed = false;
  for (const auto& t : res.transitions) {
    if (std::strcmp(t.cause, "livelock") == 0 && livelock_at < 0) {
      livelock_at = t.at;
    }
    resumed |= std::strcmp(t.cause, "delivery_resumed") == 0;
  }
  check(res.livelocks >= 1, tag + ": watchdog never fired");
  check(livelock_at >= livelock_start && livelock_at <= livelock_start + 15 * kMs,
        tag + ": watchdog fired outside bound (at " +
            std::to_string(livelock_at) + " ns)");
  check(resumed, tag + ": livelock never demoted by delivery resumption");

  // Probe p99: bounded while overloaded, recovered after. The latency
  // ledger compiles out with telemetry, so these monitors only run in
  // telemetry-enabled builds.
  const std::int64_t base_p99 =
      max_window_p99(res.latency, 2, 10 * kMs, ramp_start);
  const std::int64_t ramp_p99 =
      max_window_p99(res.latency, 2, ramp_start, ramp_end);
  const std::int64_t rec_p99 = max_window_p99(
      res.latency, 2, recovery_start + 10 * kMs, recovery_end);
#if PRISM_TELEMETRY_ENABLED
  check(res.latency.windows_evicted == 0,
        tag + ": latency window ring evicted (slices incomplete)");
  check(base_p99 > 0, tag + ": no baseline probe windows");
  check(ramp_p99 > 0, tag + ": no overloaded probe windows");
  check(rec_p99 > 0, tag + ": no recovery probe windows");
  if (base_p99 > 0 && ramp_p99 > 0 && rec_p99 > 0) {
    check(ramp_p99 <= 3 * base_p99,
          tag + ": overloaded probe p99 " + us(ramp_p99) + "us > 3x baseline " +
              us(base_p99) + "us");
    check(rec_p99 <= base_p99 + base_p99 / 10,
          tag + ": recovery probe p99 " + us(rec_p99) +
              "us not within 10% of baseline " + us(base_p99) + "us");
  }

  // Detector bank: the overload phases must breach the armed SLO and
  // trip the drop-burst detector (the clean baseline run in main_impl
  // asserts the converse: nothing fires without overload).
  check(res.slo_breaches >= 1, tag + ": SLO-breach detector never fired");
  check(res.first_slo_breach_at >= ramp_start,
        tag + ": SLO breach before the ramp started (at " +
            std::to_string(res.first_slo_breach_at) + " ns)");
  check(res.drop_bursts >= 1,
        tag + ": drop-burst detector never fired despite shedding");
#else
  std::printf("telemetry compiled out: probe p99 monitors skipped\n");
#endif

  if (report) {
    stats::Table rt({"round", "start_ms", "bulk_kpps", "flood_kpps", "hot"});
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      rt.add_row({std::to_string(i), std::to_string(rounds[i].start / kMs),
                  kpps(rounds[i].bulk_pps), kpps(rounds[i].flood_pps),
                  rounds[i].hot ? "yes" : "no"});
    }
    std::printf("%s\n", rt.render().c_str());

    stats::Table ct({"class", "sent", "dups", "delivered", "dropped"});
    const char* names[3] = {"0 bulk(+unbound)", "1 flood", "2 probe"};
    for (int cls = 2; cls >= 0; --cls) {
      const auto c = static_cast<std::size_t>(cls);
      ct.add_row({names[c], std::to_string(res.sent[c]),
                  std::to_string(res.duplicates[c]),
                  std::to_string(res.received[c]),
                  std::to_string(res.class_drops[c])});
    }
    std::printf("%s\n", ct.render().c_str());

    std::printf("overload: entries=%llu exits=%llu livelocks=%llu "
                "sheds=%llu flow_limit=%llu\n",
                static_cast<unsigned long long>(res.entries),
                static_cast<unsigned long long>(res.exits),
                static_cast<unsigned long long>(res.livelocks),
                static_cast<unsigned long long>(res.shed_count),
                static_cast<unsigned long long>(res.flow_limit_count));
    std::printf("detectors: slo_breaches=%llu (first at %lld ns) "
                "drop_bursts=%llu\n",
                static_cast<unsigned long long>(res.slo_breaches),
                static_cast<long long>(res.first_slo_breach_at),
                static_cast<unsigned long long>(res.drop_bursts));
    std::printf("probe p99: baseline %sus, overloaded %sus (bound 3x), "
                "recovered %sus (bound +10%%)\n\n",
                us(base_p99).c_str(), us(ramp_p99).c_str(),
                us(rec_p99).c_str());
    std::printf("%s\n", render_latency_windows(res.latency).c_str());
    std::printf("%s\n", render_latency_breakdown(res.latency).c_str());
  }
  return res;
}

/// A clean reference run: same testbed shape and armed detectors, but
/// only the probe stream — no floods, no fault injection, no overload.
/// Returns the bank's fired_total, which must be zero: the detectors'
/// thresholds are calibrated to stay silent on a healthy system.
std::uint64_t run_clean_baseline() {
  harness::TestbedConfig cfg;
  cfg.mode = kernel::NapiMode::kPrismBatch;
  cfg.server_netdev_max_backlog = 256;
  cfg.coalesce = nic::CoalesceConfig{sim::microseconds(40), 8};
  cfg.server_rps_cpus = {1};
  cfg.cost.backlog_stage_per_packet = sim::microseconds(2);
  cfg.cost.napi_batch_size = 12;
  harness::Testbed tb(cfg);
  tb.server().anomalies().arm(soak_anomaly_config());
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  tb.server().udp_bind(c2, kProbePort, /*capacity=*/65536);
  tb.server().priority_db().add(c2.ip(), kProbePort, 2);

  Stream probe;
  probe.tb = &tb;
  probe.ns = &c1;
  probe.dst_ip = c2.ip();
  probe.dst_port = kProbePort;
  probe.src_ports = {4444};
  probe.stop = 50 * kMs;
  probe.burst = 1;
  probe.tick_gap = static_cast<sim::Duration>(1e9 / 100e3);
  probe.start(10 * kMs);
  tb.sim().run();
  return tb.server().anomalies().fired_total();
}

int main_impl(int argc, char** argv) {
  std::uint64_t seed = 1;
  bool shortened = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      shortened = true;
    } else {
      const long v = parse_long_or_die(argv[i], "seed");
      if (v < 1) {
        std::fprintf(stderr, "error: seed: %ld must be >= 1\n", v);
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    }
  }
  print_header("soak_overload",
               "randomized overload soak with invariant monitors");
#if !PRISM_OVERLOAD_ENABLED
  std::printf("overload control compiled out (PRISM_OVERLOAD=OFF) — "
              "nothing to soak\n");
  return 0;
#else
  const Profile prof = shortened ? Profile::shortened() : Profile::full();
  std::printf("profile: %s, seed %llu (%d rounds x %lld ms)\n\n",
              shortened ? "short" : "full",
              static_cast<unsigned long long>(seed), prof.rounds,
              static_cast<long long>(prof.round / kMs));

  const PoolBaseline before = PoolBaseline::capture();
  const SoakResult first = run_soak(seed, prof, /*report=*/true);
  const PoolBaseline after = PoolBaseline::capture();
  check(after.skb_outstanding == before.skb_outstanding,
        "skb pool leak across soak");
  check(after.buf_outstanding == before.buf_outstanding,
        "buffer pool leak across soak");

  // Determinism: a second identical run must reproduce the overload
  // transition log and the drop ledger byte for byte.
  const SoakResult second = run_soak(seed, prof, /*report=*/false);
  check(first.overload_json == second.overload_json,
        "determinism: prism/overload snapshots differ across same-seed runs");
  check(first.faults_json == second.faults_json,
        "determinism: prism/faults snapshots differ across same-seed runs");
  check(first.anomalies_json == second.anomalies_json,
        "determinism: prism/anomalies documents differ across same-seed runs");

  // The converse of the in-soak detector monitors: a clean system with
  // the same armed thresholds fires nothing.
#if PRISM_TELEMETRY_ENABLED
  const std::uint64_t clean_fired = run_clean_baseline();
  check(clean_fired == 0,
        "clean baseline fired " + std::to_string(clean_fired) +
            " anomaly detector(s); thresholds are miscalibrated");
#endif

  if (g_failures == 0) {
    std::printf("soak_overload: all monitors held (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  std::printf("soak_overload: %d monitor violation(s)\n", g_failures);
  return 1;
#endif
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) {
  return prism::bench::main_impl(argc, argv);
}
