// Reproduces Fig. 6: the NAPI device polling order, Vanilla vs PRISM,
// traced exactly as the paper traced the kernel with eBPF.
//
// Paper result (Fig. 6a): vanilla polls {eth, br, eth, veth, br, eth, ...}
// — the third stage of batch N is delayed behind the first stage of batch
// N+1. PRISM (Fig. 6b) polls {eth, br, veth, eth, br, veth, ...}: each
// batch completes all stages before the next is fetched.
//
// With --trace-out PATH the same runs are re-recorded through the span
// tracer and exported as Chrome trace_event JSON (load in Perfetto or
// chrome://tracing): one track per CPU, one span per device poll, so the
// interleaved vs streamlined orders are visible as the paper drew them.
#include <cstdio>
#include <cstring>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/testbed.h"
#include "telemetry/span_tracer.h"
#include "trace/poll_trace.h"

namespace {

prism::trace::PollTrace trace_mode(
    prism::kernel::NapiMode mode,
    prism::telemetry::SpanTracer* tracer = nullptr, int track_base = 0,
    prism::telemetry::LatencyBreakdown* breakdown = nullptr) {
  using namespace prism;
  harness::TestbedConfig tc;
  tc.mode = mode;
  harness::Testbed tb(tc);
  if (tracer != nullptr) tb.server().set_span_tracer(tracer, track_base);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  // The traced flow is high priority so PRISM's streamlining engages.
  tb.server().priority_db().add(srv.ip(), 11111);

  apps::SockperfServer server(
      tb.server_sim(),
      {&tb.server(), &srv, &tb.server().cpu(1), 11111});
  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.dst_ip = srv.ip();
  cc.dst_port = 11111;
  cc.rate_pps = 500'000;  // saturating, so every stage has full batches
  cc.burst = 64;
  cc.stop_at = sim::milliseconds(5);
  apps::SockperfClient client(tb.client_sim(), cc);
  client.start();

  trace::PollTrace trace;
  // Attach after warmup so the steady-state order is captured.
  tb.server_sim().schedule_at(sim::milliseconds(2), [&] {
    tb.server().set_poll_trace(tb.server().default_rx_cpu(), &trace);
  });
  tb.run_until(sim::milliseconds(3));
  tb.server().set_poll_trace(tb.server().default_rx_cpu(), nullptr);
  if (breakdown != nullptr) {
    *breakdown = tb.server().latency_ledger().snapshot();
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prism;
  bench::parse_threads(argc, argv);
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }

  bench::print_header("Figure 6",
                      "NAPI device processing order, Vanilla vs PRISM");

  telemetry::SpanTracer tracer;
  telemetry::SpanTracer* tp = trace_out != nullptr ? &tracer : nullptr;

  // Vanilla on tracks [0, 4), PRISM on tracks [4, 8): both orders appear
  // in one exported timeline, one row per (mode, CPU).
  telemetry::LatencyBreakdown vanilla_lat;
  telemetry::LatencyBreakdown prism_lat;
  const auto vanilla =
      trace_mode(kernel::NapiMode::kVanilla, tp, 0, &vanilla_lat);
  std::printf("(a) Vanilla\n%s\n", vanilla.render(12).c_str());

  const auto prism_trace =
      trace_mode(kernel::NapiMode::kPrismBatch, tp, 4, &prism_lat);
  std::printf("(b) PRISM\n%s\n", prism_trace.render(12).c_str());

  std::printf(
      "Note how in (a) veth (stage 3 of batch N) is polled only after eth\n"
      "(stage 1 of batch N+1), while (b) follows eth -> br -> veth.\n\n");

  bench::print_latency_breakdown("vanilla", vanilla_lat);
  bench::print_latency_breakdown("prism-batch", prism_lat);

  if (vanilla.dropped_records() + prism_trace.dropped_records() > 0) {
    std::printf("poll-trace records dropped: vanilla %llu, prism %llu\n",
                static_cast<unsigned long long>(vanilla.dropped_records()),
                static_cast<unsigned long long>(
                    prism_trace.dropped_records()));
  }

  if (trace_out != nullptr) {
    if (tracer.export_chrome_trace_file(trace_out, "fig06")) {
      std::printf(
          "wrote %zu spans to %s — open in Perfetto (ui.perfetto.dev)\n",
          tracer.size(), trace_out);
    } else {
      std::fprintf(stderr, "fig06: cannot write %s\n", trace_out);
    }
  }
  return 0;
}
