// Reproduces Fig. 6: the NAPI device polling order, Vanilla vs PRISM,
// traced exactly as the paper traced the kernel with eBPF.
//
// Paper result (Fig. 6a): vanilla polls {eth, br, eth, veth, br, eth, ...}
// — the third stage of batch N is delayed behind the first stage of batch
// N+1. PRISM (Fig. 6b) polls {eth, br, veth, eth, br, veth, ...}: each
// batch completes all stages before the next is fetched.
#include <cstdio>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/testbed.h"
#include "trace/poll_trace.h"

namespace {

prism::trace::PollTrace trace_mode(prism::kernel::NapiMode mode) {
  using namespace prism;
  harness::TestbedConfig tc;
  tc.mode = mode;
  harness::Testbed tb(tc);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  // The traced flow is high priority so PRISM's streamlining engages.
  tb.server().priority_db().add(srv.ip(), 11111);

  apps::SockperfServer server(tb.sim(), {&tb.server(), &srv,
                                         &tb.server().cpu(1), 11111});
  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.dst_ip = srv.ip();
  cc.dst_port = 11111;
  cc.rate_pps = 500'000;  // saturating, so every stage has full batches
  cc.burst = 64;
  cc.stop_at = sim::milliseconds(5);
  apps::SockperfClient client(tb.sim(), cc);
  client.start();

  trace::PollTrace trace;
  // Attach after warmup so the steady-state order is captured.
  tb.sim().schedule_at(sim::milliseconds(2), [&] {
    tb.server().set_poll_trace(tb.server().default_rx_cpu(), &trace);
  });
  tb.sim().run_until(sim::milliseconds(3));
  tb.server().set_poll_trace(tb.server().default_rx_cpu(), nullptr);
  return trace;
}

}  // namespace

int main() {
  using namespace prism;
  bench::print_header("Figure 6",
                      "NAPI device processing order, Vanilla vs PRISM");

  const auto vanilla = trace_mode(kernel::NapiMode::kVanilla);
  std::printf("(a) Vanilla\n%s\n", vanilla.render(12).c_str());

  const auto prism_trace = trace_mode(kernel::NapiMode::kPrismBatch);
  std::printf("(b) PRISM\n%s\n", prism_trace.render(12).c_str());

  std::printf(
      "Note how in (a) veth (stage 3 of batch N) is polled only after eth\n"
      "(stage 1 of batch N+1), while (b) follows eth -> br -> veth.\n");
  return 0;
}
