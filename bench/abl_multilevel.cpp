// Extension bench: multiple priority levels (the paper's §VII-3 future
// work, implemented here).
//
// Three request flows at levels 0 (best effort), 1, and 2 share the busy
// server. With two-level PRISM both elevated flows would be
// indistinguishable; with multiple levels the level-2 flow preempts the
// level-1 flow's batches as well.
#include <cstdio>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/testbed.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Extension", "multiple priority levels under heavy load");

  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismBatch;
  harness::Testbed tb(tc);

  struct Flow {
    const char* label;
    int level;
    std::uint16_t port;
    overlay::Netns* srv;
    overlay::Netns* cli;
    std::unique_ptr<apps::SockperfServer> server;
    std::unique_ptr<apps::SockperfClient> client;
  };
  Flow flows[] = {
      {"level 0 (best effort)", 0, 11110, nullptr, nullptr, {}, {}},
      {"level 1", 1, 11111, nullptr, nullptr, {}, {}},
      {"level 2", 2, 11112, nullptr, nullptr, {}, {}},
  };

  int app_cpu = 1;
  for (auto& f : flows) {
    f.srv = &tb.add_server_container(std::string("srv-") +
                                     std::to_string(f.level));
    f.cli = &tb.add_client_container(std::string("cli-") +
                                     std::to_string(f.level));
    if (f.level > 0) {
      tb.server().priority_db().add(f.srv->ip(), f.port, f.level);
      tb.client().priority_db().add(
          f.cli->ip(), static_cast<std::uint16_t>(20000 + f.level),
          f.level);
    }
    f.server = std::make_unique<apps::SockperfServer>(
        tb.server_sim(), apps::SockperfServer::Config{
                      &tb.server(), f.srv, &tb.server().cpu(app_cpu),
                      f.port});
    app_cpu = app_cpu % 3 + 1;

    apps::SockperfClient::Config cc;
    cc.host = &tb.client();
    cc.ns = f.cli;
    cc.cpus = {&tb.client().cpu(1)};
    cc.base_src_port = static_cast<std::uint16_t>(20000 + f.level);
    cc.dst_ip = f.srv->ip();
    cc.dst_port = f.port;
    cc.rate_pps = 1000;
    cc.reply_every = 1;
    cc.seed = static_cast<std::uint64_t>(f.level) + 7;
    cc.start_at = sim::milliseconds(50);
    cc.stop_at = sim::milliseconds(450);
    f.client = std::make_unique<apps::SockperfClient>(tb.client_sim(), cc);
    f.client->start();
  }

  // Heavy best-effort background.
  auto& bg_cli = tb.add_client_container("bg-cli");
  auto& bg_srv = tb.add_server_container("bg-srv");
  apps::SockperfServer bg_sink(
      tb.server_sim(),
      {&tb.server(), &bg_srv, &tb.server().cpu(3), 11119});
  apps::SockperfClient::Config bg;
  bg.host = &tb.client();
  bg.ns = &bg_cli;
  bg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bg.base_src_port = 21000;
  bg.dst_ip = bg_srv.ip();
  bg.dst_port = 11119;
  bg.rate_pps = 300'000;
  bg.burst = 64;
  bg.stop_at = sim::milliseconds(470);
  apps::SockperfClient bg_client(tb.client_sim(), bg);
  bg_client.start();

  tb.run_until(sim::milliseconds(500));

  stats::Table table({"flow", "min(us)", "mean(us)", "p50(us)", "p90(us)",
                      "p99(us)"});
  for (auto& f : flows) {
    bench::add_latency_row(table, f.label, f.client->latency());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Higher levels see lower latency: level 2 preempts level 1's\n"
      "batches the same way level 1 preempts best-effort traffic.\n");
  return 0;
}
