// Ablation: pipeline depth (paper §I names NFV chains as the other
// multi-stage target).
//
// Uses the synthetic engine-level pipeline to sweep 2..6 stages under a
// saturating burst and reports the first-packet completion time per mode:
// vanilla's interleaving penalty compounds with depth, PRISM's
// streamlined order keeps it linear.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "harness/synthetic_pipeline.h"

namespace {

prism::sim::Time first_delivery(prism::kernel::NapiMode mode, int stages) {
  using namespace prism;
  harness::SyntheticPipeline p(mode, stages);
  p.feed(*p.source_high, 64 * 4);
  p.sim.run();
  sim::Time first = p.deliveries.front().at;
  for (const auto& d : p.deliveries) first = std::min(first, d.at);
  return first;
}

}  // namespace

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Ablation", "pipeline depth (NFV-chain scaling), first-batch "
                  "completion");

  stats::Table table({"stages", "vanilla(us)", "prism-batch(us)",
                      "prism-sync(us)", "batch gain", "sync gain"});
  for (int stages = 2; stages <= 6; ++stages) {
    const auto vanilla =
        first_delivery(kernel::NapiMode::kVanilla, stages);
    const auto batch =
        first_delivery(kernel::NapiMode::kPrismBatch, stages);
    const auto sync = first_delivery(kernel::NapiMode::kPrismSync, stages);
    table.add_row(
        {std::to_string(stages), bench::us(vanilla), bench::us(batch),
         bench::us(sync),
         stats::Table::cell(
             100.0 * (1.0 - static_cast<double>(batch) /
                                static_cast<double>(vanilla)),
             0) + "%",
         stats::Table::cell(
             100.0 * (1.0 - static_cast<double>(sync) /
                                static_cast<double>(vanilla)),
             0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Each extra stage costs vanilla roughly two extra batch times (its\n"
      "own batch plus the interleaved next-batch stage), while PRISM's\n"
      "streamlined order pays one — the deeper the pipeline, the larger\n"
      "PRISM's advantage.\n");
  return 0;
}
