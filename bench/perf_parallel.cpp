// Wall-clock scaling benchmark for the parallel lane engine.
//
// Runs the multi-pair Cluster harness (one simulation lane per host,
// conservative windows at the wire boundary) over a thread sweep and
// reports wall-clock events/sec at 1/2/4/8 lanes' worth of threads, on a
// 4-host and an 8-host topology. Alongside the scaling curve it measures
// the single-thread cost of the lane backend itself against the classic
// shared-simulator engine (target: <= 5% regression, so the parallel
// machinery is free when unused), verifies that every thread count
// executed the exact same simulation (the lane engine's determinism
// guarantee), and records peak RSS, per-lane event rates, and the
// machine's hardware concurrency — scaling numbers are only meaningful
// relative to the cores that were actually available.
//
// Results go to stdout and BENCH_parallel.json (override with
// PRISM_BENCH_OUT or argv[1]). Report-only: always exits 0.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/cluster.h"
#include "harness/testbed.h"
#include "sim/lane_profiler.h"
#include "telemetry/json_writer.h"
#include "telemetry/rollup.h"
#include "telemetry/span_tracer.h"

using namespace prism;

namespace {

constexpr std::uint16_t kProbePort = 11111;
constexpr std::uint16_t kBgPort = 11112;
constexpr std::uint16_t kProbeSrcPort = 20000;
constexpr std::uint16_t kBgSrcBase = 21000;

constexpr sim::Duration kWarmup = sim::milliseconds(50);
constexpr sim::Duration kDuration = sim::milliseconds(200);
constexpr sim::Duration kDrain = sim::milliseconds(20);
constexpr double kBgRatePps = 200'000.0;
constexpr int kReps = 3;
/// The classic-vs-lane A/B uses more reps, interleaved, because machine
/// noise between back-to-back runs easily exceeds the 5% budget.
constexpr int kAbReps = 5;

/// Single-thread lane-backend overhead budget vs the classic engine.
constexpr double kSingleLaneRegressionTarget = 0.05;

/// The paper-testbed workload, deployed once per pair: a 1 kpps echo
/// probe (high priority) plus a background flood, container to container
/// over each pair's VXLAN overlay.
struct PairApps {
  std::unique_ptr<apps::SockperfServer> probe_server;
  std::unique_ptr<apps::SockperfServer> bg_server;
  std::unique_ptr<apps::SockperfClient> probe_client;
  std::unique_ptr<apps::SockperfClient> bg_client;
};

apps::SockperfClient::Config probe_config(kernel::Host& client,
                                          overlay::Netns& ns,
                                          net::Ipv4Addr dst_ip) {
  apps::SockperfClient::Config c;
  c.host = &client;
  c.ns = &ns;
  c.cpus = {&client.cpu(1)};
  c.base_src_port = kProbeSrcPort;
  c.dst_ip = dst_ip;
  c.dst_port = kProbePort;
  c.rate_pps = 1'000.0;
  c.payload_size = 64;
  c.reply_every = 1;
  c.start_at = kWarmup;
  c.stop_at = kWarmup + kDuration;
  return c;
}

apps::SockperfClient::Config bg_config(kernel::Host& client,
                                       overlay::Netns& ns,
                                       net::Ipv4Addr dst_ip) {
  apps::SockperfClient::Config c;
  c.host = &client;
  c.ns = &ns;
  c.cpus = {&client.cpu(2), &client.cpu(3)};
  c.base_src_port = kBgSrcBase;
  c.dst_ip = dst_ip;
  c.dst_port = kBgPort;
  c.rate_pps = kBgRatePps;
  c.payload_size = 64;
  c.burst = 64;
  c.reply_every = 0;
  c.start_at = 0;
  c.stop_at = kWarmup + kDuration;
  return c;
}

struct ClusterPoint {
  int pairs = 0;
  int threads = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t windows = 0;
  std::uint64_t spills = 0;
  std::vector<std::uint64_t> per_lane_events;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
};

/// What a profiled run leaves behind after the cluster is gone: the
/// "prism/lanes" document for the result file, a rendered per-lane
/// imbalance table for stdout, and the sampled rounds as a Chrome trace
/// (one window track + one barrier-stall track per lane).
struct ProfiledCapture {
  std::string lanes_json;
  std::string table;
  std::string trace_json;
};

/// Renders the profiler's per-lane totals as the lane-imbalance table
/// (who did the work, who set the pace).
std::string render_lane_table(const sim::LaneProfiler& p) {
  std::string out;
  char line[160];
  const std::uint64_t rounds = p.rounds_recorded();
  std::snprintf(line, sizeof(line),
                "%-5s %12s %10s %9s %11s %7s %10s\n", "lane", "events",
                "busy_ms", "crit%", "inbox_msgs", "spills", "high_water");
  out += line;
  for (int i = 0; i < p.num_lanes(); ++i) {
    const auto& l = p.lane(i);
    std::snprintf(
        line, sizeof(line), "%-5d %12llu %10.2f %8.1f%% %11llu %7llu %10u\n",
        i, static_cast<unsigned long long>(l.events),
        static_cast<double>(l.busy_ns) / 1e6,
        rounds > 0 ? 100.0 * static_cast<double>(l.critical_rounds) /
                         static_cast<double>(rounds)
                   : 0.0,
        static_cast<unsigned long long>(l.inbox_msgs),
        static_cast<unsigned long long>(l.inbox_spills),
        l.inbox_high_water);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "busy imbalance (max/mean)=%.2f  event imbalance=%.2f  "
                "rounds=%llu  (busy_ms sampled 1/%llu rounds)\n",
                p.busy_imbalance(), p.event_imbalance(),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(p.sample_every()));
  out += line;
  return out;
}

/// One timed cluster run: `pairs` client/server pairs (2*pairs lanes) on
/// `threads` OS threads. The timed section covers the whole run
/// (warmup + measurement + drain), matching perf_smoke's convention.
/// `capture` non-null enables the lane profiler for this run (kept out of
/// the timed sweep points so the scaling curve stays profiler-free).
ClusterPoint run_cluster(int pairs, int threads,
                         ProfiledCapture* capture = nullptr) {
  harness::ClusterConfig cc;
  cc.pairs = pairs;
  cc.mode = kernel::NapiMode::kPrismSync;
  harness::Cluster cluster(cc);
  if (capture != nullptr) cluster.enable_lane_profiler();

  std::vector<PairApps> apps_by_pair;
  for (int p = 0; p < pairs; ++p) {
    auto& cli_probe_ns = cluster.add_client_container(p, "probe-cli");
    auto& cli_bg_ns = cluster.add_client_container(p, "bg-cli");
    auto& srv_probe_ns = cluster.add_server_container(p, "probe-srv");
    auto& srv_bg_ns = cluster.add_server_container(p, "bg-srv");
    cluster.server(p).priority_db().add(srv_probe_ns.ip(), kProbePort);
    cluster.client(p).priority_db().add(cli_probe_ns.ip(), kProbeSrcPort);

    PairApps a;
    a.probe_server = std::make_unique<apps::SockperfServer>(
        cluster.server_sim(p),
        apps::SockperfServer::Config{&cluster.server(p), &srv_probe_ns,
                                     &cluster.server(p).cpu(1), kProbePort});
    a.bg_server = std::make_unique<apps::SockperfServer>(
        cluster.server_sim(p),
        apps::SockperfServer::Config{&cluster.server(p), &srv_bg_ns,
                                     &cluster.server(p).cpu(2), kBgPort});
    a.probe_client = std::make_unique<apps::SockperfClient>(
        cluster.client_sim(p),
        probe_config(cluster.client(p), cli_probe_ns, srv_probe_ns.ip()));
    a.bg_client = std::make_unique<apps::SockperfClient>(
        cluster.client_sim(p),
        bg_config(cluster.client(p), cli_bg_ns, srv_bg_ns.ip()));
    a.probe_client->start();
    a.bg_client->start();
    apps_by_pair.push_back(std::move(a));
  }

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(kWarmup + kDuration + kDrain, threads);
  const auto t1 = std::chrono::steady_clock::now();

  ClusterPoint r;
  r.pairs = pairs;
  r.threads = threads;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = cluster.lanes().events_executed();
  r.messages = cluster.lanes().messages_posted();
  r.windows = cluster.lanes().windows_run();
  r.spills = cluster.lanes().inbox_spills();
  for (int i = 0; i < cluster.num_hosts(); ++i) {
    r.per_lane_events.push_back(cluster.lanes().lane(i).events_executed());
  }
  if (capture != nullptr) {
    capture->lanes_json = cluster.proc_read("prism/lanes");
    capture->table = render_lane_table(*cluster.lane_profiler());
    telemetry::SpanTracer tracer;
    cluster.export_lane_trace(tracer);
    capture->trace_json = tracer.export_chrome_trace("perf_parallel");
  }
  return r;
}

ClusterPoint best_of_cluster(int pairs, int threads, int reps) {
  ClusterPoint best;
  for (int i = 0; i < reps; ++i) {
    ClusterPoint p = run_cluster(pairs, threads);
    if (best.wall_s == 0 || p.wall_s < best.wall_s) best = p;
  }
  return best;
}

/// The same per-pair workload on the classic two-host Testbed (shared
/// single-threaded simulator) — the baseline the lane backend's serial
/// cost is judged against.
double run_testbed_events_per_sec() {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  tc.threads = 1;
  // Match the cluster pair's topology so the per-event cost is
  // comparable (Testbed defaults to 6 client CPUs, Cluster pairs to 4).
  tc.client_cpus = 4;
  tc.server_cpus = 4;
  harness::Testbed tb(tc);
  auto& cli_probe_ns = tb.add_client_container("probe-cli");
  auto& cli_bg_ns = tb.add_client_container("bg-cli");
  auto& srv_probe_ns = tb.add_server_container("probe-srv");
  auto& srv_bg_ns = tb.add_server_container("bg-srv");
  tb.server().priority_db().add(srv_probe_ns.ip(), kProbePort);
  tb.client().priority_db().add(cli_probe_ns.ip(), kProbeSrcPort);

  apps::SockperfServer probe_server(
      tb.server_sim(), {&tb.server(), &srv_probe_ns, &tb.server().cpu(1),
                        kProbePort});
  apps::SockperfServer bg_server(
      tb.server_sim(),
      {&tb.server(), &srv_bg_ns, &tb.server().cpu(2), kBgPort});
  apps::SockperfClient probe_client(
      tb.client_sim(),
      probe_config(tb.client(), cli_probe_ns, srv_probe_ns.ip()));
  apps::SockperfClient bg_client(
      tb.client_sim(), bg_config(tb.client(), cli_bg_ns, srv_bg_ns.ip()));
  probe_client.start();
  bg_client.start();

  const auto t0 = std::chrono::steady_clock::now();
  tb.run_until(kWarmup + kDuration + kDrain);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t events = tb.sim().events_executed();
  return wall > 0 ? static_cast<double>(events) / wall : 0;
}


/// Peak resident set size in bytes (VmHWM); 0 when unavailable.
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("perf_parallel",
                      "lane-engine scaling: events/sec vs thread count");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency=%u  (speedups are bounded by real "
              "cores, not lanes)\n\n",
              hw);

  // Single-thread lane-backend overhead vs the classic engine: the same
  // one-pair workload on (a) the classic shared simulator and (b) two
  // lanes driven by one OS thread — windows, barriers and inbox drains
  // all run, with zero actual parallelism, so the difference is exactly
  // what the lane machinery costs when it buys nothing. Reps alternate
  // A/B so slow spells on a shared box penalize both engines alike;
  // best-of discards the disturbed reps.
  double classic_eps = 0;
  ClusterPoint lane_serial;
  for (int i = 0; i < kAbReps; ++i) {
    const double c = run_testbed_events_per_sec();
    if (c > classic_eps) classic_eps = c;
    ClusterPoint p = run_cluster(1, 1);
    if (lane_serial.wall_s == 0 || p.wall_s < lane_serial.wall_s) {
      lane_serial = std::move(p);
    }
  }
  const double lane_eps = lane_serial.events_per_sec();
  const double regression =
      classic_eps > 0 ? 1.0 - lane_eps / classic_eps : 0.0;
  std::printf("testbed classic ev/s=%12.0f\n", classic_eps);
  std::printf("testbed lanes   ev/s=%12.0f  regression=%5.1f%% "
              "(target <= %.0f%%)%s\n\n",
              lane_eps, regression * 100.0,
              kSingleLaneRegressionTarget * 100.0,
              regression <= kSingleLaneRegressionTarget ? ""
                                                        : "  ** OVER **");

  // Thread sweep on 4-host and 8-host clusters.
  std::vector<ClusterPoint> points;
  bool deterministic = true;
  for (int pairs : {2, 4}) {
    const int lanes = 2 * pairs;
    ClusterPoint base;
    for (int threads : {1, 2, 4, 8}) {
      if (threads > lanes) continue;
      ClusterPoint p = best_of_cluster(pairs, threads, kReps);
      if (threads == 1) {
        base = p;
      } else if (p.events != base.events ||
                 p.per_lane_events != base.per_lane_events) {
        deterministic = false;  // lane engine must not depend on threads
      }
      const double speedup =
          base.wall_s > 0 && p.wall_s > 0 ? base.wall_s / p.wall_s : 0.0;
      const bool advisory = hw > 0 && static_cast<unsigned>(threads) > hw;
      std::printf(
          "hosts=%d threads=%d  wall=%7.3fs  events=%10llu  "
          "ev/s=%12.0f  speedup=%.2fx  windows=%llu  msgs=%llu  "
          "spills=%llu%s\n",
          lanes, threads, p.wall_s,
          static_cast<unsigned long long>(p.events), p.events_per_sec(),
          speedup, static_cast<unsigned long long>(p.windows),
          static_cast<unsigned long long>(p.messages),
          static_cast<unsigned long long>(p.spills),
          advisory ? "  (advisory: threads > cores)" : "");
      points.push_back(std::move(p));
    }
    std::printf("\n");
  }
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "OK" : "** DIVERGED **");

  // One profiled 4-host run (not part of the timed sweep): where the
  // wall-clock goes per lane, and who bounded each round's fixpoint.
  ProfiledCapture capture;
  run_cluster(2, 4, &capture);
  std::printf("\nlane profile (4 hosts, 4 threads):\n%s",
              capture.table.c_str());
  const std::uint64_t rss = peak_rss_bytes();
  std::printf("peak RSS=%.1f MiB\n", static_cast<double>(rss) / (1 << 20));

  const char* out_path = std::getenv("PRISM_BENCH_OUT");
  if (argc > 1) out_path = argv[1];
  if (out_path == nullptr) out_path = "BENCH_parallel.json";

  telemetry::JsonWriter w;
  w.begin_object();
  w.member("bench", "perf_parallel");
  w.member("mode", "prism_sync");
  w.member("hardware_concurrency", static_cast<std::uint64_t>(hw));
  w.member("sim_ms", sim::to_ms(kWarmup + kDuration + kDrain));
  w.member("reps_per_point", kReps);
  w.member("bg_rate_pps_per_pair", kBgRatePps);
  w.key("single_lane");
  w.begin_object();
  w.member("ab_reps", kAbReps);
  w.member("classic_events_per_sec", classic_eps);
  w.member("lane_events_per_sec", lane_eps);
  w.member("regression_fraction", regression);
  w.member("target_fraction", kSingleLaneRegressionTarget);
  w.member("within_target", regression <= kSingleLaneRegressionTarget);
  w.end_object();
  w.key("scaling");
  w.begin_array();
  for (const ClusterPoint& p : points) {
    w.begin_object();
    w.member("pairs", static_cast<std::uint64_t>(p.pairs));
    w.member("lanes", static_cast<std::uint64_t>(2 * p.pairs));
    w.member("threads", static_cast<std::uint64_t>(p.threads));
    w.member("wall_s", p.wall_s);
    w.member("events", p.events);
    w.member("events_per_sec", p.events_per_sec());
    w.member("messages_posted", p.messages);
    w.member("windows_run", p.windows);
    w.member("inbox_spills", p.spills);
    // Oversubscribed points (more threads than real cores) measure
    // contention, not scaling; bench_check skips advisory points.
    if (hw > 0 && static_cast<unsigned>(p.threads) > hw) {
      w.member("advisory", true);
    }
    w.key("per_lane_events_per_sec");
    w.begin_array();
    for (std::uint64_t ev : p.per_lane_events) {
      w.value(p.wall_s > 0 ? static_cast<double>(ev) / p.wall_s : 0.0);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("determinism");
  w.begin_object();
  w.member("events_match_across_threads", deterministic);
  w.end_object();
  w.key("lanes").raw(capture.lanes_json);
  w.member("peak_rss_bytes", rss);
  w.end_object();

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_parallel: cannot write %s\n", out_path);
    return 0;  // report-only bench: never fail the build
  }
  std::fputs(w.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  // The profiled run's sampled rounds as a Chrome trace (Perfetto /
  // chrome://tracing): per-lane window and barrier-stall tracks.
  const char* trace_path = std::getenv("PRISM_LANE_TRACE_OUT");
  if (trace_path == nullptr) trace_path = "lane_trace.json";
  if (std::FILE* tf = std::fopen(trace_path, "w")) {
    std::fputs(capture.trace_json.c_str(), tf);
    std::fputc('\n', tf);
    std::fclose(tf);
    std::printf("wrote %s\n", trace_path);
  } else {
    std::fprintf(stderr, "perf_parallel: cannot write %s\n", trace_path);
  }
  return 0;
}
