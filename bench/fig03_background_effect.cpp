// Reproduces Fig. 3: latency distribution of packets in the presence and
// absence of background traffic (vanilla kernel, container overlay path).
//
// Paper result: compared to an idle server, a loaded server increases the
// median overlay per-packet latency by ~400% and the 99th-percentile by
// ~450%. The figure is the motivating measurement for PRISM.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 3",
      "latency CDF with and without background traffic (vanilla)");

  harness::PriorityScenarioConfig idle_cfg;
  idle_cfg.mode = kernel::NapiMode::kVanilla;
  idle_cfg.busy = false;
  const auto idle = harness::run_priority_scenario(idle_cfg);

  harness::PriorityScenarioConfig busy_cfg = idle_cfg;
  busy_cfg.busy = true;
  const auto busy = harness::run_priority_scenario(busy_cfg);

  std::printf("latency CDF (one-way us):\n%s\n",
              stats::render_cdf_table({"idle", "busy"},
                                      {&idle.latency, &busy.latency})
                  .c_str());

  const auto is = stats::summarize(idle.latency);
  const auto bs = stats::summarize(busy.latency);
  std::printf(
      "idle:  p50 %.1fus  p99 %.1fus\n"
      "busy:  p50 %.1fus  p99 %.1fus   (bg consumes %.0f%% of the rx core)\n"
      "busy/idle: median %+.0f%%, p99 %+.0f%%  (paper: ~+400%% / ~+450%%)\n",
      static_cast<double>(is.p50_ns) / 1e3,
      static_cast<double>(is.p99_ns) / 1e3,
      static_cast<double>(bs.p50_ns) / 1e3,
      static_cast<double>(bs.p99_ns) / 1e3, busy.rx_cpu_utilization * 100,
      100.0 * static_cast<double>(bs.p50_ns - is.p50_ns) /
          static_cast<double>(is.p50_ns),
      100.0 * static_cast<double>(bs.p99_ns - is.p99_ns) /
          static_cast<double>(is.p99_ns));

  std::printf("\n");
  bench::print_latency_breakdown("idle", idle.server_latency);
  bench::print_latency_breakdown("busy", busy.server_latency);
  return 0;
}
