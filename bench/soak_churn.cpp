// Container lifecycle churn soak: a seeded ChurnPlan stops, restarts and
// migrates containers across a multi-pair cluster while sockperf traffic
// flows, under invariant monitors:
//
//   * per-class packet conservation: every udp_send syscall (first
//     transmissions + app-level retransmits + server echo attempts) ends
//     as a socket delivery or a reason-counted ledger drop (dead_netns,
//     fdb_miss, unroutable, ...) summed over every host of the cluster
//   * zero post-teardown deliveries: each torn-down incarnation's socket
//     receive count is frozen at teardown completion and must not move
//     for the rest of the soak
//   * the churn surfaced as counted dead-netns drops and unlearned FDB
//     misses (the new counters actually fire, they are not dead code)
//   * bounded re-convergence: every disruption of the high-priority
//     probe container arms an AnomalyBank convergence watch on the host
//     that serves the flow next; each watch must record a recovery
//     within the configured deadline and the convergence-timeout
//     detector must never fire
//   * app resilience: the probe client's timeout/backoff retransmits
//     recover every probe lost to the churn (zero abandoned probes)
//   * determinism: the full run repeats byte-identically on 1 vs 4
//     engine threads (same-seed snapshot compare), because churn is
//     applied only at conservative-window barriers
//
// Usage: soak_churn [seed] [--short] [--threads N] [--snapshot FILE]
//                   [--disruptions N]
//   --short runs the reduced CI profile.
//   --disruptions N overrides the profile's disruptions per container
//     (the churn-rate knob of the EXPERIMENTS.md table).
//   --threads N runs a single pass on N engine threads (instead of the
//     internal 1-vs-4 comparison) — combined with --snapshot FILE this
//     lets CI diff snapshots across processes and thread counts.
// Exit status is non-zero if any monitor fails — registered with ctest
// under the "soak" label.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "fault/churn.h"
#include "fault/fault.h"
#include "harness/churn.h"
#include "harness/cluster.h"
#include "kernel/skb_pool.h"
#include "overlay/flow_cache.h"
#include "sim/pool.h"
#include "stats/histogram.h"
#include "stats/table.h"
#include "telemetry/anomaly.h"

namespace prism::bench {
namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::printf("FAIL: %s\n", what.c_str());
  }
}

struct PoolBaseline {
  std::uint64_t skb_outstanding;
  std::uint64_t buf_outstanding;

  static PoolBaseline capture() {
    const auto& s = kernel::SkbPool::instance().stats();
    const auto& b = sim::BufferPool::instance().stats();
    return {s.acquired - s.released - s.discarded,
            b.acquired - b.released - b.discarded};
  }
};

constexpr sim::Time kMs = 1'000'000;  // sim::Time is ns

struct Profile {
  sim::Time churn_start = 20 * kMs;
  sim::Time churn_end = 220 * kMs;
  sim::Time send_stop = 230 * kMs;
  sim::Time end = 260 * kMs;
  int disruptions_per_container = 6;

  static Profile full() { return Profile{}; }
  static Profile shortened() {
    return Profile{20 * kMs, 70 * kMs, 80 * kMs, 100 * kMs, 2};
  }

  /// Fraction of the churn window each churnable container spends down
  /// (drain + restart gap per disruption) — the "churn rate" of the
  /// EXPERIMENTS.md table.
  double downtime_fraction(const fault::ChurnConfig& cfg) const {
    const double cycle =
        static_cast<double>(cfg.drain + cfg.restart_delay);
    const double window = static_cast<double>(churn_end - churn_start);
    return cycle * disruptions_per_container / window;
  }
};

constexpr std::uint16_t kProbePort = 11111;  // class 2 request flow
constexpr std::uint16_t kBulkPort = 7000;    // class 0 one-way flow
constexpr std::uint16_t kProbeSrcPort = 20000;
constexpr std::uint16_t kBulkSrcPort = 21000;
constexpr int kPairs = 2;

/// Probe-flow SLO target and the re-convergence deadline. The cluster is
/// lightly loaded, so the kernel-side e2e p99 sits far below the target
/// in steady state; the deadline bounds how long after a disruption the
/// first compliant 1 ms window may close.
constexpr sim::Duration kSloTarget = sim::microseconds(150);
constexpr sim::Duration kConvergenceDeadline = 20 * kMs;

telemetry::AnomalyConfig churn_anomaly_config() {
  telemetry::AnomalyConfig ac;
  ac.slo_p99_ns = kSloTarget;
  ac.convergence_deadline_ns = kConvergenceDeadline;
  return ac;
}

/// One bound socket of one container incarnation. Dead incarnations keep
/// their record: `frozen` snapshots received() one tick after teardown
/// completes, and the end-of-run monitor asserts it never moved again.
struct SockRecord {
  kernel::UdpSocket* sock = nullptr;
  int pair = 0;
  int idx = 0;  ///< churnable-container index (0 probe, 1 bulk)
  int cls = 0;  ///< priority class of traffic destined to it
  std::uint64_t frozen = 0;
  bool frozen_valid = false;
};

struct SoakResult {
  std::string snapshot;
  std::uint64_t probe_sent = 0;
  std::uint64_t probe_retransmits = 0;
  std::uint64_t probe_replies = 0;
  std::uint64_t probe_abandoned = 0;
  std::uint64_t bulk_sent = 0;
  std::uint64_t dead_netns_drops = 0;
  std::uint64_t unlearned_misses = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t convergence_timeouts = 0;
};

struct PairState {
  overlay::Netns* cl = nullptr;
  std::unique_ptr<apps::SockperfClient> probe;
  std::unique_ptr<apps::SockperfClient> bulk;
  /// Every server incarnation ever created, kept alive (their sockets
  /// are tombstones after teardown; see SocketTable::close_all_udp).
  std::vector<std::unique_ptr<apps::SockperfServer>> servers;
  bool on_server_host[2] = {true, true};
  SockRecord* current[2] = {nullptr, nullptr};
};

SoakResult run_soak(std::uint64_t seed, const Profile& prof, int threads,
                    bool report) {
  harness::ClusterConfig ccfg;
  ccfg.pairs = kPairs;
  ccfg.mode = kernel::NapiMode::kPrismBatch;
  ccfg.client_cpus = 6;  // 0 rx, 1 probe tx, 2 bulk tx, 3/4 migrated apps
  ccfg.server_cpus = 4;  // 0 packet processing, 1/2 server apps
  ccfg.flow_cache = true;  // churn must invalidate the fast path too
  harness::Cluster cluster(ccfg);

  fault::ChurnConfig chcfg;
  chcfg.seed = seed;
  chcfg.start = prof.churn_start;
  chcfg.horizon = prof.churn_end;
  chcfg.pairs = kPairs;
  chcfg.containers_per_pair = 2;
  chcfg.disruptions_per_container = prof.disruptions_per_container;
  chcfg.migrate_fraction = 0.4;
  chcfg.drain = sim::microseconds(200);
  chcfg.restart_delay = sim::microseconds(300);
  chcfg.min_gap = 2 * kMs;
  fault::ChurnPlan plan;
  plan.configure(chcfg);
  harness::ChurnOrchestrator orch(cluster, plan);

  std::vector<PairState> pairs(kPairs);
  std::deque<SockRecord> socket_log;  // stable addresses

  const auto host_of = [&](int pair, int idx) -> kernel::Host& {
    return pairs[static_cast<std::size_t>(pair)]
                   .on_server_host[static_cast<std::size_t>(idx)]
               ? cluster.server(pair)
               : cluster.client(pair);
  };
  const auto sim_of = [&](int pair, int idx) -> sim::Simulator& {
    return pairs[static_cast<std::size_t>(pair)]
                   .on_server_host[static_cast<std::size_t>(idx)]
               ? cluster.server_sim(pair)
               : cluster.client_sim(pair);
  };

  /// Creates the app incarnation serving container (pair, idx) on its
  /// current host and logs its socket.
  const auto make_incarnation = [&](int pair, int idx,
                                    overlay::Netns& ns) {
    PairState& ps = pairs[static_cast<std::size_t>(pair)];
    kernel::Host& host = host_of(pair, idx);
    sim::Simulator& sim = sim_of(pair, idx);
    const bool on_server = &host == &cluster.server(pair);
    apps::SockperfServer::Config scfg;
    scfg.host = &host;
    scfg.ns = &ns;
    scfg.cpu = &host.cpu(on_server ? (idx == 0 ? 1 : 2)
                                   : (idx == 0 ? 3 : 4));
    scfg.port = idx == 0 ? kProbePort : kBulkPort;
    ps.servers.push_back(
        std::make_unique<apps::SockperfServer>(sim, scfg));
    socket_log.push_back(SockRecord{&ps.servers.back()->socket(), pair,
                                    idx, idx == 0 ? 2 : 0});
    ps.current[static_cast<std::size_t>(idx)] = &socket_log.back();
  };

  /// Freezes the current incarnation's receive count one tick after its
  /// teardown drain completes (scheduled on the owning host's lane, at
  /// the barrier where the stop was applied).
  const auto freeze_at_teardown = [&](int pair, int idx) {
    SockRecord* rec =
        pairs[static_cast<std::size_t>(pair)].current[
            static_cast<std::size_t>(idx)];
    sim_of(pair, idx).schedule(chcfg.drain + 1, [rec] {
      rec->frozen = rec->sock->received();
      rec->frozen_valid = true;
    });
  };

  for (int p = 0; p < kPairs; ++p) {
    PairState& ps = pairs[static_cast<std::size_t>(p)];
    ps.cl = &cluster.add_client_container(p, "cl" + std::to_string(p));
    overlay::Netns& sva =
        cluster.add_server_container(p, "sva" + std::to_string(p));
    overlay::Netns& svb =
        cluster.add_server_container(p, "svb" + std::to_string(p));
    orch.register_container(p, 0, sva);
    orch.register_container(p, 1, svb);

    // The probe flow (and its replies) classify as class 2 on whichever
    // host delivers them — migration moves delivery to the client host,
    // so both hosts carry the entries.
    for (kernel::Host* h : {&cluster.client(p), &cluster.server(p)}) {
      h->priority_db().add(sva.ip(), kProbePort, 2);
      h->priority_db().add(ps.cl->ip(), kProbeSrcPort, 2);
      h->anomalies().arm(churn_anomaly_config());
    }

    make_incarnation(p, 0, sva);
    make_incarnation(p, 1, svb);

    apps::SockperfClient::Config pcfg;
    pcfg.host = &cluster.client(p);
    pcfg.ns = ps.cl;
    pcfg.cpus = {&cluster.client(p).cpu(1)};
    pcfg.base_src_port = kProbeSrcPort;
    pcfg.dst_ip = sva.ip();
    pcfg.dst_port = kProbePort;
    pcfg.rate_pps = 20e3;
    pcfg.payload_size = 64;
    pcfg.reply_every = 1;
    pcfg.seed = seed + static_cast<std::uint64_t>(p);
    pcfg.start_at = 2 * kMs;
    pcfg.stop_at = prof.send_stop;
    pcfg.reply_timeout = kMs;  // 1 ms, then 2/4/8 ms backoff
    pcfg.max_retries = 3;
    pcfg.max_backoff = 8 * kMs;
    ps.probe = std::make_unique<apps::SockperfClient>(
        cluster.client_sim(p), pcfg);
    ps.probe->start();

    apps::SockperfClient::Config bcfg;
    bcfg.host = &cluster.client(p);
    bcfg.ns = ps.cl;
    bcfg.cpus = {&cluster.client(p).cpu(2)};
    bcfg.base_src_port = kBulkSrcPort;
    bcfg.dst_ip = svb.ip();
    bcfg.dst_port = kBulkPort;
    bcfg.rate_pps = 80e3;
    bcfg.payload_size = 256;
    bcfg.burst = 4;
    bcfg.reply_every = 0;
    bcfg.seed = seed + 100 + static_cast<std::uint64_t>(p);
    bcfg.start_at = 2 * kMs;
    bcfg.stop_at = prof.send_stop;
    ps.bulk = std::make_unique<apps::SockperfClient>(
        cluster.client_sim(p), bcfg);
    ps.bulk->start();
  }

  // ------------------------------------------------------------- hooks
  orch.on_stopped = [&](int pair, int idx, overlay::Netns&, sim::Time at) {
    freeze_at_teardown(pair, idx);
    if (idx == 0) host_of(pair, idx).anomalies().note_disruption(2, at);
  };
  orch.on_restarted = [&](int pair, int idx, overlay::Netns& fresh,
                          sim::Time) {
    make_incarnation(pair, idx, fresh);
  };
  orch.on_migrated = [&](int pair, int idx, overlay::Netns& fresh,
                         sim::Time at) {
    freeze_at_teardown(pair, idx);  // old incarnation, old host
    PairState& ps = pairs[static_cast<std::size_t>(pair)];
    ps.on_server_host[static_cast<std::size_t>(idx)] =
        !ps.on_server_host[static_cast<std::size_t>(idx)];
    make_incarnation(pair, idx, fresh);
    if (idx == 0) host_of(pair, idx).anomalies().note_disruption(2, at);
  };

  // --------------------------------------------------------------- run
  orch.run_until(prof.end, threads);

  // ----------------------------------------------------------- harvest
  SoakResult res;
  std::vector<std::uint64_t> injected(4, 0), accounted(4, 0);
  for (int p = 0; p < kPairs; ++p) {
    const PairState& ps = pairs[static_cast<std::size_t>(p)];
    res.probe_sent += ps.probe->sent();
    res.probe_retransmits += ps.probe->retransmits();
    res.probe_replies += ps.probe->replies();
    res.probe_abandoned += ps.probe->probe_timeouts();
    res.bulk_sent += ps.bulk->sent();
    injected[2] += ps.probe->sent() + ps.probe->retransmits();
    injected[0] += ps.bulk->sent();
    for (const auto& srv : ps.servers) injected[2] += srv->echoed();
    // Drained replies at the probe client (class 2 deliveries).
    accounted[2] += ps.probe->replies() + ps.probe->late_replies();
  }
  for (const SockRecord& rec : socket_log) {
    accounted[static_cast<std::size_t>(rec.cls)] += rec.sock->received();
  }
  std::uint64_t flow_cache_hits = 0;
  std::uint64_t flow_cache_stale = 0;
  for (int p = 0; p < kPairs; ++p) {
    for (kernel::Host* h : {&cluster.client(p), &cluster.server(p)}) {
      for (int cls = 0; cls < 4; ++cls) {
        accounted[static_cast<std::size_t>(cls)] +=
            h->faults().drops.class_total(cls);
      }
      res.dead_netns_drops +=
          h->faults().drops.total(fault::DropReason::kDeadNetns);
      res.unlearned_misses += h->fdb(42 + static_cast<std::uint32_t>(p))
                                  .unlearned_misses();
      const telemetry::AnomalyBank& bank = h->anomalies();
      res.recoveries += bank.recoveries().size();
      res.convergence_timeouts +=
          bank.fired(telemetry::AnomalyKind::kConvergenceTimeout);
      flow_cache_hits += h->flow_cache().hits();
      flow_cache_stale += h->flow_cache().stale_hits();
    }
  }

  // Snapshot: per-host fault + anomaly documents and app/socket
  // counters. Byte-identical across thread counts and reruns.
  {
    std::string s;
    for (int p = 0; p < kPairs; ++p) {
      for (kernel::Host* h : {&cluster.client(p), &cluster.server(p)}) {
        s += "== " + h->name() + " ==\n";
        s += h->proc().read("prism/faults");
        s += "\n";
        s += h->proc().read("prism/anomalies");
        s += "\n";
      }
      const PairState& ps = pairs[static_cast<std::size_t>(p)];
      s += "pair " + std::to_string(p) + " probe sent=" +
           std::to_string(ps.probe->sent()) + " rtx=" +
           std::to_string(ps.probe->retransmits()) + " replies=" +
           std::to_string(ps.probe->replies()) + " late=" +
           std::to_string(ps.probe->late_replies()) + " abandoned=" +
           std::to_string(ps.probe->probe_timeouts()) + " bulk sent=" +
           std::to_string(ps.bulk->sent()) + "\n";
    }
    for (const SockRecord& rec : socket_log) {
      s += "sock p" + std::to_string(rec.pair) + " i" +
           std::to_string(rec.idx) + " cls" + std::to_string(rec.cls) +
           " rx=" + std::to_string(rec.sock->received()) + " frozen=" +
           (rec.frozen_valid ? std::to_string(rec.frozen) : "-") + "\n";
    }
    res.snapshot = std::move(s);
  }

  // ---------------------------------------------------------- monitors
  const std::string tag =
      "seed " + std::to_string(seed) + " threads " + std::to_string(threads);

  // disruptions == 0 is the baseline arm of the EXPERIMENTS table: same
  // workload, empty plan, so the churn-presence monitors invert.
  const bool churned = prof.disruptions_per_container > 0;
  check(orch.applied() == plan.events().size(),
        tag + ": plan not fully applied (" + std::to_string(orch.applied()) +
            " of " + std::to_string(plan.events().size()) + ")");
  check(plan.events().empty() != churned,
        tag + ": plan emptiness disagrees with the requested churn");
  check(plan.count(fault::ChurnKind::kStop) ==
            plan.count(fault::ChurnKind::kRestart),
        tag + ": stops != restarts in plan");

#if PRISM_FAULTS_ENABLED
  // Per-class conservation, to the packet, across the whole cluster.
  for (int cls = 0; cls < 4; ++cls) {
    const auto c = static_cast<std::size_t>(cls);
    check(injected[c] == accounted[c],
          tag + ": class " + std::to_string(cls) + " conservation " +
              std::to_string(injected[c]) + " != " +
              std::to_string(accounted[c]));
  }
  check((res.dead_netns_drops > 0) == churned,
        tag + ": dead-netns drops disagree with the requested churn");
#else
  std::printf("fault ledger compiled out: conservation monitors skipped\n");
#endif
  check((res.unlearned_misses > 0) == churned,
        tag + ": unlearned FDB misses disagree with the requested churn");

  // Zero post-teardown deliveries: every frozen socket is closed and its
  // receive count never moved after teardown completed.
  std::size_t frozen_count = 0;
  for (const SockRecord& rec : socket_log) {
    if (!rec.frozen_valid) continue;
    ++frozen_count;
    check(rec.sock->closed(),
          tag + ": torn-down socket not closed (pair " +
              std::to_string(rec.pair) + " idx " + std::to_string(rec.idx) +
              ")");
    check(rec.sock->received() == rec.frozen,
          tag + ": post-teardown delivery on pair " +
              std::to_string(rec.pair) + " idx " + std::to_string(rec.idx) +
              " (" + std::to_string(rec.sock->received()) + " != frozen " +
              std::to_string(rec.frozen) + ")");
  }
  check((frozen_count > 0) == churned,
        tag + ": frozen-socket count disagrees with the requested churn");

  // App resilience: the probe client retried through the churn and never
  // abandoned a probe (and without churn, never needed to retry).
  check(res.probe_replies > 0, tag + ": probe got no replies");
  check((res.probe_retransmits > 0) == churned,
        tag + ": probe retransmits disagree with the requested churn");
  check(res.probe_abandoned == 0,
        tag + ": " + std::to_string(res.probe_abandoned) +
            " probes abandoned after max retries");

#if PRISM_TELEMETRY_ENABLED
  // Bounded re-convergence: one recovery per probe-container disruption,
  // inside the deadline, and no convergence timeouts.
  std::size_t probe_disruptions = 0;
  for (const auto& e : plan.events()) {
    if (e.container == 0 && e.kind != fault::ChurnKind::kRestart) {
      ++probe_disruptions;
    }
  }
  check(res.recoveries == probe_disruptions,
        tag + ": recoveries " + std::to_string(res.recoveries) +
            " != probe disruptions " + std::to_string(probe_disruptions));
  check(res.convergence_timeouts == 0,
        tag + ": convergence-timeout detector fired " +
            std::to_string(res.convergence_timeouts) + " times");
  for (int p = 0; p < kPairs; ++p) {
    for (kernel::Host* h : {&cluster.client(p), &cluster.server(p)}) {
      for (const auto& r : h->anomalies().recoveries()) {
        check(r.recovered_at - r.disrupted_at <= kConvergenceDeadline,
              tag + ": recovery took " +
                  std::to_string(r.recovered_at - r.disrupted_at) +
                  " ns (> deadline)");
      }
    }
  }
#else
  std::printf("telemetry compiled out: convergence monitors skipped\n");
#endif

#if PRISM_FLOWCACHE_ENABLED
  check(flow_cache_hits > 0, tag + ": flow cache never hit");
  check((flow_cache_stale > 0) == churned,
        tag + ": flow-cache stale hits disagree with the requested churn");
#endif

  if (report) {
    // Probe latency (RTT/2, merged over pairs) and recovery times for
    // the EXPERIMENTS.md churn table.
    stats::Histogram merged;
    for (int p = 0; p < kPairs; ++p) merged.merge(pairs[
        static_cast<std::size_t>(p)].probe->latency());
    sim::Time worst_recovery = 0;
    double sum_recovery = 0;
    std::size_t n_recovery = 0;
    for (int p = 0; p < kPairs; ++p) {
      for (kernel::Host* h : {&cluster.client(p), &cluster.server(p)}) {
        for (const auto& rec : h->anomalies().recoveries()) {
          const sim::Time took = rec.recovered_at - rec.disrupted_at;
          if (took > worst_recovery) worst_recovery = took;
          sum_recovery += static_cast<double>(took);
          ++n_recovery;
        }
      }
    }
    std::printf(
        "probe latency: p50=%.1fus p99=%.1fus p999=%.1fus (n=%llu)\n"
        "recovery: mean=%.2fms worst=%.2fms (n=%zu)\n"
        "downtime fraction: %.1f%% of the churn window per container\n",
        merged.percentile(0.5) / 1e3, merged.percentile(0.99) / 1e3,
        merged.percentile(0.999) / 1e3,
        static_cast<unsigned long long>(merged.count()),
        n_recovery ? sum_recovery / (1e6 * static_cast<double>(n_recovery))
                   : 0.0,
        static_cast<double>(worst_recovery) / 1e6, n_recovery,
        100.0 * prof.downtime_fraction(chcfg));
    stats::Table et({"at_ms", "kind", "pair", "container"});
    for (const auto& e : plan.events()) {
      et.add_row({std::to_string(e.at / kMs),
                  fault::churn_kind_name(e.kind), std::to_string(e.pair),
                  std::to_string(e.container)});
    }
    std::printf("%s\n", et.render().c_str());
    std::printf(
        "probe: sent=%llu rtx=%llu replies=%llu abandoned=%llu\n"
        "bulk: sent=%llu\n"
        "churn drops: dead_netns=%llu unlearned_fdb_miss=%llu\n"
        "convergence: recoveries=%llu timeouts=%llu\n"
        "flow cache: hits=%llu stale_hits=%llu\n\n",
        static_cast<unsigned long long>(res.probe_sent),
        static_cast<unsigned long long>(res.probe_retransmits),
        static_cast<unsigned long long>(res.probe_replies),
        static_cast<unsigned long long>(res.probe_abandoned),
        static_cast<unsigned long long>(res.bulk_sent),
        static_cast<unsigned long long>(res.dead_netns_drops),
        static_cast<unsigned long long>(res.unlearned_misses),
        static_cast<unsigned long long>(res.recoveries),
        static_cast<unsigned long long>(res.convergence_timeouts),
        static_cast<unsigned long long>(flow_cache_hits),
        static_cast<unsigned long long>(flow_cache_stale));
    const char* trace_out = std::getenv("PRISM_ANOMALY_TRACE_OUT");
    if (trace_out != nullptr) {
      if (telemetry::export_anomaly_trace_file(
              cluster.server(0).anomalies(), trace_out)) {
        std::printf("wrote %s (%llu findings)\n", trace_out,
                    static_cast<unsigned long long>(
                        cluster.server(0).anomalies().findings().size()));
      }
    }
  }
  return res;
}

int main_impl(int argc, char** argv) {
  std::uint64_t seed = 1;
  bool shortened = false;
  int fixed_threads = 0;
  int disruptions = 0;  // 0 = the profile's default
  const char* snapshot_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      shortened = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      fixed_threads =
          static_cast<int>(parse_long_or_die(argv[++i], "--threads"));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      fixed_threads =
          static_cast<int>(parse_long_or_die(argv[i] + 10, "--threads"));
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--disruptions") == 0 && i + 1 < argc) {
      disruptions =
          static_cast<int>(parse_long_or_die(argv[++i], "--disruptions"));
    } else {
      const long v = parse_long_or_die(argv[i], "seed");
      if (v < 1) {
        std::fprintf(stderr, "error: seed: %ld must be >= 1\n", v);
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    }
  }
  print_header("soak_churn",
               "container lifecycle churn soak with invariant monitors");
  Profile prof = shortened ? Profile::shortened() : Profile::full();
  if (disruptions > 0) prof.disruptions_per_container = disruptions;
  if (disruptions < 0) prof.disruptions_per_container = 0;  // baseline arm
  std::printf("seed %llu, %s profile, %d disruptions/container\n\n",
              static_cast<unsigned long long>(seed),
              shortened ? "short" : "full",
              prof.disruptions_per_container);

  if (fixed_threads > 0) {
    // Single pass for cross-process comparison (CI diffs the snapshot
    // files of a 1-thread and a 4-thread run).
    const SoakResult r = run_soak(seed, prof, fixed_threads, true);
    if (snapshot_path != nullptr) {
      std::ofstream out(snapshot_path, std::ios::binary);
      out << r.snapshot;
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", snapshot_path);
        return 2;
      }
      std::printf("wrote snapshot %s (%zu bytes)\n", snapshot_path,
                  r.snapshot.size());
    }
    std::printf("%s\n", g_failures == 0 ? "SOAK PASS" : "SOAK FAIL");
    return g_failures == 0 ? 0 : 1;
  }

  // Pool-leak accounting is only meaningful single-threaded: the pools
  // are thread-local and the 1-thread run executes entirely on this
  // thread.
  const PoolBaseline before = PoolBaseline::capture();
  const SoakResult r1 = run_soak(seed, prof, /*threads=*/1, true);
  const PoolBaseline after = PoolBaseline::capture();
  check(before.skb_outstanding == after.skb_outstanding,
        "skb pool leak across the soak");
  check(before.buf_outstanding == after.buf_outstanding,
        "buffer pool leak across the soak");

  const SoakResult r4 = run_soak(seed, prof, /*threads=*/4, false);
  check(r1.snapshot == r4.snapshot,
        "1-thread vs 4-thread snapshots differ (determinism)");
  std::printf("determinism: 1-thread and 4-thread snapshots %s (%zu bytes)\n",
              r1.snapshot == r4.snapshot ? "identical" : "DIFFER",
              r1.snapshot.size());

  std::printf("%s\n", g_failures == 0 ? "SOAK PASS" : "SOAK FAIL");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prism::bench

int main(int argc, char** argv) {
  return prism::bench::main_impl(argc, argv);
}
