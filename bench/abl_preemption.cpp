// Ablation: preemption granularity (paper §III-B2).
//
// The paper frames PRISM-batch as the sweet spot between two extremes:
// checking for high-priority packets per packet (PRISM-sync's effect) and
// per device poll (no preemption at all). This bench decomposes
// PRISM-batch into its two ingredients:
//
//   * prism-queues: dual per-device queues, high polled first, but no
//     poll-list head insertion;
//   * prism-batch:  dual queues + head insertion (batch-level preemption);
//   * prism-sync:   per-packet run-to-completion.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Ablation",
      "preemption granularity: none / queues-only / batch / per-packet");

  stats::Table table({"mode", "min(us)", "mean(us)", "p50(us)", "p90(us)",
                      "p99(us)", "rx-cpu"});
  for (const auto mode :
       {kernel::NapiMode::kVanilla, kernel::NapiMode::kPrismQueues,
        kernel::NapiMode::kPrismBatch, kernel::NapiMode::kPrismSync}) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = true;
    cfg.duration = sim::milliseconds(300);
    const auto res = harness::run_priority_scenario(cfg);
    bench::add_latency_row(table, kernel::to_string(mode), res.latency,
                           bench::pct(res.rx_cpu_utilization));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Dual queues alone let high-priority packets jump per-device\n"
      "backlogs; head insertion additionally reorders the device schedule\n"
      "(batch-level preemption); run-to-completion removes the remaining\n"
      "batch waits. Worst-case preemption latency for prism-batch is one\n"
      "low-priority batch at one stage (paper §III-B2).\n");
  return 0;
}
