// Reproduces Fig. 13: web server latency and throughput in the presence
// of low-priority background traffic.
//
// Paper setup: nginx-style server in a container serving a <1 KB static
// file; a wrk2-style single-connection client issues constant-rate
// requests (high priority); background is sockperf TCP throughput at
// 20 Kpps with 64 KB messages, TSO-fragmented into MTU frames.
//
// Paper result (busy): PRISM-batch cuts average and tail latency ~14% and
// raises throughput ~15%; PRISM-sync improves latency ~22% and throughput
// ~25% (sync wins on throughput here because the web flow is tiny and
// the batched background still dominates the stack).
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 13", "web latency/throughput under TCP bulk background");

  struct Row {
    const char* label;
    kernel::NapiMode mode;
    bool busy;
  };
  const Row rows[] = {
      {"idle vanilla", kernel::NapiMode::kVanilla, false},
      {"busy vanilla", kernel::NapiMode::kVanilla, true},
      {"busy prism-batch", kernel::NapiMode::kPrismBatch, true},
      {"busy prism-sync", kernel::NapiMode::kPrismSync, true},
  };

  stats::Table table({"configuration", "req/s", "mean(us)", "p50(us)",
                      "p99(us)", "rx-cpu", "bg MB/s"});
  harness::WebScenarioResult res[4];
  int i = 0;
  for (const auto& row : rows) {
    harness::WebScenarioConfig cfg;
    cfg.mode = row.mode;
    cfg.busy = row.busy;
    res[i] = harness::run_web_scenario(cfg);
    const auto s = stats::summarize(res[i].latency);
    const double span = sim::to_s(sim::milliseconds(500) +
                                  sim::milliseconds(20));
    table.add_row(
        {row.label, stats::Table::cell(res[i].requests_per_second, 0),
         bench::us(s.mean_ns), bench::us(s.p50_ns), bench::us(s.p99_ns),
         bench::pct(res[i].rx_cpu_utilization),
         stats::Table::cell(
             static_cast<double>(res[i].bg_bytes_received) / span / 1e6,
             0)});
    ++i;
  }
  std::printf("%s\n", table.render().c_str());

  const auto busy_v = stats::summarize(res[1].latency);
  const auto busy_b = stats::summarize(res[2].latency);
  const auto busy_s = stats::summarize(res[3].latency);
  std::printf(
      "prism-batch vs vanilla (busy): mean %+.0f%%, p99 %+.0f%%, "
      "throughput %+.0f%%   (paper: ~-14%%, ~-14%%, ~+15%%)\n"
      "prism-sync  vs vanilla (busy): mean %+.0f%%, p99 %+.0f%%, "
      "throughput %+.0f%%   (paper: ~-22%%, ~-22%%, ~+25%%)\n",
      100.0 * (busy_b.mean_ns - busy_v.mean_ns) / busy_v.mean_ns,
      100.0 * static_cast<double>(busy_b.p99_ns - busy_v.p99_ns) /
          static_cast<double>(busy_v.p99_ns),
      100.0 * (res[2].requests_per_second - res[1].requests_per_second) /
          res[1].requests_per_second,
      100.0 * (busy_s.mean_ns - busy_v.mean_ns) / busy_v.mean_ns,
      100.0 * static_cast<double>(busy_s.p99_ns - busy_v.p99_ns) /
          static_cast<double>(busy_v.p99_ns),
      100.0 * (res[3].requests_per_second - res[1].requests_per_second) /
          res[1].requests_per_second);

  std::printf("\n");
  bench::print_latency_breakdown("busy vanilla", res[1].server_latency);
  bench::print_latency_breakdown("busy prism-sync", res[3].server_latency);
  return 0;
}
