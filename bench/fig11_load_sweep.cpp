// Reproduces Fig. 11: effect of changing background load on high-priority
// latency.
//
// Paper setup: sweep the low-priority background rate; plot min/avg/p99
// of the high-priority flow's latency plus the packet-processing core's
// utilization. Paper result: a latency bump at very low load (CPU
// sleep-wake cycles), a steady decline as the core stays awake, explosion
// at overload; PRISM's tail tracks vanilla's average, PRISM's average
// tracks vanilla's minimum.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header("Figure 11",
                      "high-priority latency vs background load");

  const double rates_kpps[] = {0, 10, 25, 50, 100, 150, 200,
                               250, 300, 350, 400, 450};

  // Three arms: the paper's vanilla/PRISM-sync pair, plus PRISM-sync
  // with the overlay flow cache on (cached flows skip stages 2-3; the
  // fc-hit column reports the server cache's steady-state hit rate).
  const struct {
    kernel::NapiMode mode;
    bool cache;
    const char* label;
  } arms[] = {{kernel::NapiMode::kVanilla, false, "vanilla"},
              {kernel::NapiMode::kPrismSync, false, "prism-sync"},
              {kernel::NapiMode::kPrismSync, true, "prism-sync + cache"}};
  for (const auto& arm : arms) {
    std::printf("mode: %s\n", arm.label);
    stats::Table table({"bg rate (Kpps)", "rx-cpu", "min(us)", "mean(us)",
                        "p99(us)", "ring drops", "fc-hit"});
    telemetry::LatencyBreakdown at_300;
    for (const double r : rates_kpps) {
      harness::PriorityScenarioConfig cfg;
      cfg.mode = arm.mode;
      cfg.busy = r > 0;
      cfg.bg_rate_pps = r * 1e3;
      cfg.duration = sim::milliseconds(300);
      cfg.latency_window = sim::milliseconds(25);
      cfg.flow_cache = arm.cache;
      const auto res = harness::run_priority_scenario(cfg);
      const auto s = stats::summarize(res.latency);
      table.add_row({stats::Table::cell(r, 0),
                     bench::pct(res.rx_cpu_utilization), bench::us(s.min_ns),
                     bench::us(s.mean_ns), bench::us(s.p99_ns),
                     std::to_string(res.server_ring_drops),
                     arm.cache ? bench::pct(res.server_flowcache_hit_rate)
                               : "-"});
      if (r == 300) at_300 = res.server_latency;
    }
    std::printf("%s\n", table.render().c_str());
    // The representative 300 Kpps point, attributed per stage and over
    // time (25 ms windows) — the measured form of the sweep's story.
    bench::print_latency_breakdown("bg 300 Kpps", at_300);
    bench::print_latency_windows("bg 300 Kpps", at_300);
  }
  return 0;
}
