// Reproduces Fig. 9: per-packet latency of high-priority container
// (overlay) traffic in the presence of low-priority background traffic.
//
// Paper setup (§V-B2): single packet-processing core on the server; a
// containerized 1 Kpps high-priority sockperf ping-pong flow, competing
// with ~300 Kpps of low-priority background traffic. Reported: latency
// CDF per mode plus the idle reference.
//
// Paper result: busy vanilla latency is several times the idle latency;
// PRISM-sync cuts both average and tail by ~50% vs vanilla; PRISM-batch
// is closer to sync on average than at the tail.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"
#include "stats/cdf.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 9", "high-priority overlay latency vs background traffic");

  // Detector-armed reproduction: --seed S picks the wire-fault stream,
  // --trace-flows N widens/narrows sampling, --slo-us U arms the SLO
  // detector. Detectors observe only — the CDFs are unchanged by them.
  const std::uint64_t seed = bench::parse_seed(argc, argv);
  const std::uint32_t trace_flows = bench::parse_trace_flows(argc, argv);
  const sim::Duration slo = bench::parse_slo_us(argc, argv);
  const sim::Duration inv = bench::parse_inversion_us(argc, argv, 50);

  auto run = [&](kernel::NapiMode mode, bool busy, bool cache = false) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = busy;
    cfg.overlay = true;
    cfg.flow_cache = cache;
    cfg.arm_detectors = true;
    if (trace_flows > 0) cfg.trace_sample_period = trace_flows;
    cfg.slo_p99_ns = slo;
    cfg.inversion_wait_ns = inv;
    // Mild wire loss so the detector-armed runs exercise drop recording
    // too; seeded so multi-seed tables reproduce exactly.
    cfg.wire_drop_rate = 0.005;
    cfg.wire_dup_rate = 0.002;
    cfg.fault_seed = seed;
    return harness::run_priority_scenario(cfg);
  };

  const auto idle = run(kernel::NapiMode::kVanilla, false);
  const auto vanilla = run(kernel::NapiMode::kVanilla, true);
  const auto batch = run(kernel::NapiMode::kPrismBatch, true);
  const auto sync = run(kernel::NapiMode::kPrismSync, true);
  // Third arm of the paper-vs-extension comparison: PRISM-sync with the
  // ONCache-style overlay flow cache on — cached flows skip stages 2-3.
  const auto cached = run(kernel::NapiMode::kPrismSync, true, true);

  stats::Table table({"configuration", "min(us)", "mean(us)", "p50(us)",
                      "p90(us)", "p99(us)", "rx-cpu"});
  bench::add_latency_row(table, "idle (reference)", idle.latency,
                         bench::pct(idle.rx_cpu_utilization));
  bench::add_latency_row(table, "busy vanilla", vanilla.latency,
                         bench::pct(vanilla.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-batch", batch.latency,
                         bench::pct(batch.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-sync", sync.latency,
                         bench::pct(sync.rx_cpu_utilization));
  bench::add_latency_row(table, "busy prism-sync + cache", cached.latency,
                         bench::pct(cached.rx_cpu_utilization));
  std::printf("%s\n", table.render().c_str());

  std::printf("flow cache [busy prism-sync + cache]: hits=%llu "
              "misses=%llu invalidations=%llu hit_rate=%.2f%%\n\n",
              static_cast<unsigned long long>(cached.server_flowcache_hits),
              static_cast<unsigned long long>(
                  cached.server_flowcache_misses),
              static_cast<unsigned long long>(
                  cached.server_flowcache_invalidations),
              100.0 * cached.server_flowcache_hit_rate);

  std::printf("latency CDF (one-way us):\n%s\n",
              stats::render_cdf_table(
                  {"idle", "vanilla", "prism-batch", "prism-sync",
                   "sync+cache"},
                  {&idle.latency, &vanilla.latency, &batch.latency,
                   &sync.latency, &cached.latency})
                  .c_str());

  const auto vs = stats::summarize(vanilla.latency);
  const auto ss = stats::summarize(sync.latency);
  const auto bs = stats::summarize(batch.latency);
  const auto cs = stats::summarize(cached.latency);
  std::printf(
      "PRISM-sync vs vanilla (busy): mean %+.0f%%  p99 %+.0f%%\n"
      "PRISM-batch vs vanilla (busy): mean %+.0f%%  p99 %+.0f%%\n"
      "PRISM-sync+cache vs vanilla (busy): mean %+.0f%%  p99 %+.0f%%\n",
      100.0 * (ss.mean_ns - vs.mean_ns) / vs.mean_ns,
      100.0 * static_cast<double>(ss.p99_ns - vs.p99_ns) /
          static_cast<double>(vs.p99_ns),
      100.0 * (bs.mean_ns - vs.mean_ns) / vs.mean_ns,
      100.0 * static_cast<double>(bs.p99_ns - vs.p99_ns) /
          static_cast<double>(vs.p99_ns),
      100.0 * (cs.mean_ns - vs.mean_ns) / vs.mean_ns,
      100.0 * static_cast<double>(cs.p99_ns - vs.p99_ns) /
          static_cast<double>(vs.p99_ns));

  // Where the time goes: the measured per-stage attribution behind the
  // CDFs above (class 3 = the high-priority probe flow). The cache arm's
  // table shows the flow_cache segment replacing stages 2-3.
  std::printf("\n");
  bench::print_latency_breakdown("busy vanilla", vanilla.server_latency);
  bench::print_latency_breakdown("busy prism-batch", batch.server_latency);
  bench::print_latency_breakdown("busy prism-sync", sync.server_latency);
  bench::print_latency_breakdown("busy prism-sync + cache",
                                 cached.server_latency);

  // What the flight recorder saw: the paper's priority-inversion story
  // as detector firings. Vanilla queues the probe behind background
  // bursts (queue inversions); Prism-sync runs it to completion, so only
  // the priority-blind NIC ring can still delay it (ring inversions).
  std::printf("anomaly detectors (seed=%llu):\n",
              static_cast<unsigned long long>(seed));
  bench::print_anomaly_summary("idle", idle.server_anomalies);
  bench::print_anomaly_summary("busy vanilla", vanilla.server_anomalies);
  bench::print_anomaly_summary("busy prism-batch", batch.server_anomalies);
  bench::print_anomaly_summary("busy prism-sync", sync.server_anomalies);
  bench::print_anomaly_summary("busy prism-sync + cache",
                               cached.server_anomalies);
  return 0;
}
