// Wall-clock performance smoke test for the simulator hot path.
//
// Unlike the figure benches (which report *simulated* latencies), this
// bench measures how fast the simulator itself runs: wall-clock events/sec
// and packets/sec over a fig11-style background-load sweep, peak RSS, and
// the recycling-pool hit rates that the zero-allocation hot path is built
// around. Results go to stdout and to BENCH_perf_smoke.json (override the
// path with PRISM_BENCH_OUT or argv[1]).
//
// The JSON embeds the seed-tree throughput measured on the same reference
// machine so the speedup of the pooled/inline hot path is tracked release
// over release. The bench never fails the build: it always exits 0 and
// leaves the judgement to whoever reads the numbers.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/testbed.h"
#include "kernel/skb_pool.h"
#include "sim/pool.h"
#include "stats/summary.h"

using namespace prism;

namespace {

constexpr std::uint16_t kProbePort = 11111;
constexpr std::uint16_t kBgPort = 11112;
constexpr std::uint16_t kProbeSrcPort = 20000;
constexpr std::uint16_t kBgSrcBase = 21000;

/// Seed-tree throughput at the 450 kpps sweep point (events/sec, best of
/// three, same harness and machine class). The hot-path work targets >= 2x.
constexpr double kSeedEventsPerSec = 3606833.0;

constexpr double kSweepKpps[] = {0, 100, 250, 450};
constexpr double kHighLoadKpps = 450;
constexpr int kRepsPerPoint = 3;

struct PointResult {
  double bg_kpps = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  double packets_per_sec() const {
    return wall_s > 0 ? packets / wall_s : 0;
  }
};

/// One fig11-style run: a latency probe flow plus a background flood at
/// `bg_rate_pps`, both container-to-container over the VXLAN overlay,
/// under the PRISM-sync pipeline. Returns wall-clock cost of the run.
PointResult run_point(double bg_rate_pps, sim::Duration duration) {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  harness::Testbed tb(tc);
  const sim::Duration warmup = sim::milliseconds(50);
  const sim::Time t_end = warmup + duration;

  auto& cli_probe_ns = tb.add_client_container("probe-cli");
  auto& cli_bg_ns = tb.add_client_container("bg-cli");
  auto& srv_probe_ns = tb.add_server_container("probe-srv");
  auto& srv_bg_ns = tb.add_server_container("bg-srv");

  tb.server().priority_db().add(srv_probe_ns.ip(), kProbePort);
  tb.client().priority_db().add(cli_probe_ns.ip(), kProbeSrcPort);

  apps::SockperfServer probe_server(
      tb.sim(),
      {&tb.server(), &srv_probe_ns, &tb.server().cpu(1), kProbePort});
  apps::SockperfServer bg_server(
      tb.sim(), {&tb.server(), &srv_bg_ns, &tb.server().cpu(2), kBgPort});

  apps::SockperfClient::Config probe_cfg;
  probe_cfg.host = &tb.client();
  probe_cfg.ns = &cli_probe_ns;
  probe_cfg.cpus = {&tb.client().cpu(1)};
  probe_cfg.base_src_port = kProbeSrcPort;
  probe_cfg.dst_ip = srv_probe_ns.ip();
  probe_cfg.dst_port = kProbePort;
  probe_cfg.rate_pps = 1000.0;
  probe_cfg.payload_size = 64;
  probe_cfg.reply_every = 1;
  probe_cfg.start_at = warmup;
  probe_cfg.stop_at = t_end;
  apps::SockperfClient probe_client(tb.sim(), probe_cfg);

  apps::SockperfClient::Config bg_cfg;
  bg_cfg.host = &tb.client();
  bg_cfg.ns = &cli_bg_ns;
  bg_cfg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bg_cfg.base_src_port = kBgSrcBase;
  bg_cfg.dst_ip = srv_bg_ns.ip();
  bg_cfg.dst_port = kBgPort;
  bg_cfg.rate_pps = bg_rate_pps > 0 ? bg_rate_pps : 1.0;
  bg_cfg.payload_size = 64;
  bg_cfg.burst = 64;
  bg_cfg.reply_every = 0;
  bg_cfg.start_at = 0;
  bg_cfg.stop_at = t_end;
  apps::SockperfClient bg_client(tb.sim(), bg_cfg);

  probe_client.start();
  if (bg_rate_pps > 0) bg_client.start();

  const auto t0 = std::chrono::steady_clock::now();
  tb.sim().run_until(t_end + sim::milliseconds(20));
  const auto t1 = std::chrono::steady_clock::now();

  PointResult r;
  r.bg_kpps = bg_rate_pps / 1e3;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = tb.sim().events_executed();
  r.packets = bg_server.received() + probe_client.replies();
  return r;
}

/// Best wall-clock of `reps` identical runs (the simulation is
/// deterministic, so every rep executes the same events; only the wall
/// clock varies with machine noise).
PointResult best_of(double bg_rate_pps, sim::Duration duration, int reps) {
  PointResult best;
  for (int i = 0; i < reps; ++i) {
    PointResult p = run_point(bg_rate_pps, duration);
    if (best.wall_s == 0 || p.wall_s < best.wall_s) best = p;
  }
  return best;
}

/// Peak resident set size in bytes (VmHWM from /proc/self/status); 0 when
/// unavailable (non-Linux).
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

std::string json_escape_free(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("perf_smoke",
                      "wall-clock hot-path throughput, fig11-style sweep");

  // Warm the process-global pools with one high-load run, then reset the
  // counters so the reported hit rates describe the warm steady state.
  run_point(kHighLoadKpps * 1e3, sim::milliseconds(50));
  kernel::SkbPool::instance().reset_stats();
  sim::BufferPool::instance().reset_stats();

  std::vector<PointResult> sweep;
  for (double kpps : kSweepKpps) {
    sweep.push_back(
        best_of(kpps * 1e3, sim::milliseconds(200), kRepsPerPoint));
    const PointResult& p = sweep.back();
    std::printf(
        "bg=%6.0f kpps  wall=%7.3fs  events=%10llu  ev/s=%12.0f  "
        "pkts/s=%12.0f\n",
        p.bg_kpps, p.wall_s, static_cast<unsigned long long>(p.events),
        p.events_per_sec(), p.packets_per_sec());
  }

  const std::vector<stats::PoolSummary> pools = stats::pool_summaries();
  for (const auto& p : pools) {
    std::printf("pool %s\n", stats::to_string(p).c_str());
  }

  // A/B: the same high-load point with recycling disabled (plain
  // new/delete), to keep the pools honest about what they buy.
  kernel::SkbPool::instance().set_enabled(false);
  sim::BufferPool::instance().set_enabled(false);
  const PointResult no_pool =
      best_of(kHighLoadKpps * 1e3, sim::milliseconds(200), kRepsPerPoint);
  kernel::SkbPool::instance().set_enabled(true);
  sim::BufferPool::instance().set_enabled(true);

  const PointResult& high = sweep.back();
  const double speedup = high.events_per_sec() / kSeedEventsPerSec;
  const std::uint64_t rss = peak_rss_bytes();

  std::printf("high-load ev/s=%.0f  seed ev/s=%.0f  speedup=%.2fx\n",
              high.events_per_sec(), kSeedEventsPerSec, speedup);
  std::printf("pool-disabled ev/s=%.0f\n", no_pool.events_per_sec());
  std::printf("peak RSS=%.1f MiB\n", static_cast<double>(rss) / (1 << 20));

  const char* out_path = std::getenv("PRISM_BENCH_OUT");
  if (argc > 1) out_path = argv[1];
  if (out_path == nullptr) out_path = "BENCH_perf_smoke.json";

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path);
    return 0;  // report-only bench: never fail the build
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_smoke\",\n");
  std::fprintf(out, "  \"mode\": \"prism_sync\",\n");
  std::fprintf(out, "  \"sim_ms_per_point\": 200,\n");
  std::fprintf(out, "  \"reps_per_point\": %d,\n", kRepsPerPoint);
  std::fprintf(out, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& p = sweep[i];
    std::fprintf(out,
                 "    {\"bg_kpps\": %s, \"wall_s\": %s, \"events\": %llu, "
                 "\"events_per_sec\": %s, \"packets\": %llu, "
                 "\"packets_per_sec\": %s}%s\n",
                 json_escape_free(p.bg_kpps).c_str(),
                 json_escape_free(p.wall_s).c_str(),
                 static_cast<unsigned long long>(p.events),
                 json_escape_free(p.events_per_sec()).c_str(),
                 static_cast<unsigned long long>(p.packets),
                 json_escape_free(p.packets_per_sec()).c_str(),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"high_load\": {\n");
  std::fprintf(out, "    \"bg_kpps\": %s,\n",
               json_escape_free(kHighLoadKpps).c_str());
  std::fprintf(out, "    \"events_per_sec\": %s,\n",
               json_escape_free(high.events_per_sec()).c_str());
  std::fprintf(out, "    \"seed_events_per_sec\": %s,\n",
               json_escape_free(kSeedEventsPerSec).c_str());
  std::fprintf(out, "    \"speedup_vs_seed\": %s,\n",
               json_escape_free(speedup).c_str());
  std::fprintf(out, "    \"pool_disabled_events_per_sec\": %s\n",
               json_escape_free(no_pool.events_per_sec()).c_str());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(rss));
  std::fprintf(out, "  \"pools\": [\n");
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const auto& p = pools[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"acquired\": %llu, "
                 "\"reused\": %llu, \"allocated\": %llu, "
                 "\"released\": %llu, \"discarded\": %llu, "
                 "\"hit_rate\": %s}%s\n",
                 p.name.c_str(),
                 static_cast<unsigned long long>(p.acquired),
                 static_cast<unsigned long long>(p.reused),
                 static_cast<unsigned long long>(p.allocated),
                 static_cast<unsigned long long>(p.released),
                 static_cast<unsigned long long>(p.discarded),
                 json_escape_free(p.hit_rate).c_str(),
                 i + 1 < pools.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
