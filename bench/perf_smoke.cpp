// Wall-clock performance smoke test for the simulator hot path.
//
// Unlike the figure benches (which report *simulated* latencies), this
// bench measures how fast the simulator itself runs: wall-clock events/sec
// and packets/sec over a fig11-style background-load sweep, peak RSS, the
// recycling-pool hit rates that the zero-allocation hot path is built
// around, and the cost of the telemetry layer (span tracer + counters)
// at the high-load point. Results go to stdout and to
// BENCH_perf_smoke.json (override the path with PRISM_BENCH_OUT or
// argv[1]).
//
// The JSON embeds the seed-tree throughput measured on the same reference
// machine so the speedup of the pooled/inline hot path is tracked release
// over release, plus a machine-readable telemetry block (registry dump,
// softnet_stat, net/dev) from the high-load run. The bench never fails
// the build: it always exits 0 and leaves the judgement to whoever reads
// the numbers.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/cluster.h"
#include "harness/testbed.h"
#include "kernel/skb_pool.h"
#include "sim/pool.h"
#include "stats/summary.h"
#include "telemetry/json_writer.h"
#include "telemetry/snapshot.h"
#include "telemetry/span_tracer.h"

using namespace prism;

namespace {

constexpr std::uint16_t kProbePort = 11111;
constexpr std::uint16_t kBgPort = 11112;
constexpr std::uint16_t kProbeSrcPort = 20000;
constexpr std::uint16_t kBgSrcBase = 21000;

/// Seed-tree throughput at the 450 kpps sweep point (events/sec, best of
/// three, same harness and machine class). The hot-path work targets >= 2x.
constexpr double kSeedEventsPerSec = 3606833.0;

/// Target ceiling for the telemetry layer's hot-path cost at 450 kpps:
/// full tracing (span tracer on every CPU, latency ledger + flow table
/// recording every delivery) must stay within 3% of the counters-only
/// baseline events/sec.
constexpr double kTelemetryOverheadTarget = 0.03;

constexpr double kSweepKpps[] = {0, 100, 250, 450};
constexpr double kHighLoadKpps = 450;
constexpr int kRepsPerPoint = 3;

/// Minimum events a sweep point must execute inside its timed section.
/// At bg=0 the base 200 ms window holds only a few thousand events and
/// finishes in well under a millisecond of wall time, so its events/sec
/// was dominated by fixed costs (an outlier ~4x the loaded points). A
/// point that comes in light is re-measured over a proportionally longer
/// simulated window (capped at kMaxDurationScale x) so every reported
/// rate averages over a comparable event volume.
constexpr std::uint64_t kMinEventsPerPoint = 500'000;
constexpr double kMaxDurationScale = 64.0;

struct PointResult {
  double bg_kpps = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  /// Server overlay flow-cache counters (zero when the cache is off).
  std::uint64_t fc_hits = 0;
  std::uint64_t fc_misses = 0;
  double fc_hit_rate = 0.0;

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  double packets_per_sec() const {
    return wall_s > 0 ? packets / wall_s : 0;
  }
};

/// One fig11-style run: a latency probe flow plus a background flood at
/// `bg_rate_pps`, both container-to-container over the VXLAN overlay,
/// under the PRISM-sync pipeline. With `full_telemetry` a span tracer is
/// attached to every CPU of both hosts and the latency ledger + flow
/// table record on every delivery; without it the ledger and flow table
/// are runtime-disabled so the A/B isolates the whole recording layer
/// (the counters are always bound by Host). `telemetry_block`, if
/// non-null, receives the run's telemetry as a JSON value (registry dump
/// + rings + latency + flows + proc-style snapshots), rendered outside
/// the timed section. Without `full_telemetry` the flight recorder and
/// anomaly bank (armed by default on every host) are disarmed too, so
/// the baseline is truly counters-only; `flight_recorder` re-arms just
/// those two for the recorder-overhead A/B.
PointResult run_point(double bg_rate_pps, sim::Duration duration,
                      bool full_telemetry = false,
                      std::string* telemetry_block = nullptr,
                      bool flight_recorder = false,
                      bool flow_cache = false) {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  tc.flow_cache = flow_cache;
  // This bench is the single-threaded hot-path baseline (and the seed
  // comparison was measured on the classic engine), so it pins the
  // engine regardless of any --threads/PRISM_THREADS default.
  // bench/perf_parallel.cpp owns the multi-lane numbers.
  tc.threads = 1;
  harness::Testbed tb(tc);
  telemetry::SpanTracer tracer;
  if (full_telemetry) {
    tb.attach_span_tracer(tracer);
  } else {
    tb.server().latency_ledger().set_enabled(false);
    tb.server().flow_table().set_enabled(false);
    tb.client().latency_ledger().set_enabled(false);
    tb.client().flow_table().set_enabled(false);
    if (!flight_recorder) {
      tb.server().flight_recorder().set_armed(false);
      tb.server().anomalies().set_armed(false);
      tb.client().flight_recorder().set_armed(false);
      tb.client().anomalies().set_armed(false);
    }
  }
  const sim::Duration warmup = sim::milliseconds(50);
  const sim::Time t_end = warmup + duration;

  auto& cli_probe_ns = tb.add_client_container("probe-cli");
  auto& cli_bg_ns = tb.add_client_container("bg-cli");
  auto& srv_probe_ns = tb.add_server_container("probe-srv");
  auto& srv_bg_ns = tb.add_server_container("bg-srv");

  tb.server().priority_db().add(srv_probe_ns.ip(), kProbePort);
  tb.client().priority_db().add(cli_probe_ns.ip(), kProbeSrcPort);

  apps::SockperfServer probe_server(
      tb.sim(),
      {&tb.server(), &srv_probe_ns, &tb.server().cpu(1), kProbePort});
  apps::SockperfServer bg_server(
      tb.sim(), {&tb.server(), &srv_bg_ns, &tb.server().cpu(2), kBgPort});

  apps::SockperfClient::Config probe_cfg;
  probe_cfg.host = &tb.client();
  probe_cfg.ns = &cli_probe_ns;
  probe_cfg.cpus = {&tb.client().cpu(1)};
  probe_cfg.base_src_port = kProbeSrcPort;
  probe_cfg.dst_ip = srv_probe_ns.ip();
  probe_cfg.dst_port = kProbePort;
  probe_cfg.rate_pps = 1000.0;
  probe_cfg.payload_size = 64;
  probe_cfg.reply_every = 1;
  probe_cfg.start_at = warmup;
  probe_cfg.stop_at = t_end;
  apps::SockperfClient probe_client(tb.sim(), probe_cfg);

  apps::SockperfClient::Config bg_cfg;
  bg_cfg.host = &tb.client();
  bg_cfg.ns = &cli_bg_ns;
  bg_cfg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bg_cfg.base_src_port = kBgSrcBase;
  bg_cfg.dst_ip = srv_bg_ns.ip();
  bg_cfg.dst_port = kBgPort;
  bg_cfg.rate_pps = bg_rate_pps > 0 ? bg_rate_pps : 1.0;
  bg_cfg.payload_size = 64;
  bg_cfg.burst = 64;
  bg_cfg.reply_every = 0;
  bg_cfg.start_at = 0;
  bg_cfg.stop_at = t_end;
  apps::SockperfClient bg_client(tb.sim(), bg_cfg);

  probe_client.start();
  if (bg_rate_pps > 0) bg_client.start();

  const auto t0 = std::chrono::steady_clock::now();
  tb.sim().run_until(t_end + sim::milliseconds(20));
  const auto t1 = std::chrono::steady_clock::now();

  if (telemetry_block != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.member("compiled_in", static_cast<bool>(PRISM_TELEMETRY_ENABLED));
    w.key("server_telemetry");
    w.raw(telemetry::telemetry_json(tb.server().telemetry()));
    w.member("softnet_stat", tb.server().softnet_stat());
    w.member("net_dev", tb.server().net_dev());
    w.key("trace");
    w.begin_object();
    w.member("recorded", tracer.recorded());
    w.member("retained", static_cast<std::uint64_t>(tracer.size()));
    w.member("dropped", tracer.dropped());
    w.end_object();
    w.end_object();
    *telemetry_block = w.take();
  }

  PointResult r;
  r.bg_kpps = bg_rate_pps / 1e3;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = tb.sim().events_executed();
  r.packets = bg_server.received() + probe_client.replies();
  r.fc_hits = tb.server().flow_cache().hits();
  r.fc_misses = tb.server().flow_cache().misses();
  r.fc_hit_rate = tb.server().flow_cache().hit_rate();
  return r;
}

/// Best wall-clock of `reps` identical runs (the simulation is
/// deterministic, so every rep executes the same events; only the wall
/// clock varies with machine noise).
PointResult best_of(double bg_rate_pps, sim::Duration duration, int reps,
                    bool full_telemetry = false,
                    std::string* telemetry_block = nullptr,
                    bool flight_recorder = false, bool flow_cache = false) {
  PointResult best;
  for (int i = 0; i < reps; ++i) {
    PointResult p = run_point(bg_rate_pps, duration, full_telemetry,
                              telemetry_block, flight_recorder, flow_cache);
    if (best.wall_s == 0 || p.wall_s < best.wall_s) best = p;
  }
  return best;
}

/// One lane-engine run for the profiler-overhead A/B: a single pair
/// (2 lanes) driven by one OS thread under the fig11 high-load workload,
/// with or without the lane profiler attached. Single-threaded so the
/// measured difference is pure recording cost (clock reads + ring
/// stores), not barrier-timing noise.
double run_lane_point_events_per_sec(bool profiled) {
  harness::ClusterConfig cc;
  cc.pairs = 1;
  cc.mode = kernel::NapiMode::kPrismSync;
  harness::Cluster cluster(cc);
  if (profiled) cluster.enable_lane_profiler();

  const sim::Duration warmup = sim::milliseconds(50);
  const sim::Time t_end = warmup + sim::milliseconds(200);

  auto& cli_probe_ns = cluster.add_client_container(0, "probe-cli");
  auto& cli_bg_ns = cluster.add_client_container(0, "bg-cli");
  auto& srv_probe_ns = cluster.add_server_container(0, "probe-srv");
  auto& srv_bg_ns = cluster.add_server_container(0, "bg-srv");
  cluster.server(0).priority_db().add(srv_probe_ns.ip(), kProbePort);
  cluster.client(0).priority_db().add(cli_probe_ns.ip(), kProbeSrcPort);

  apps::SockperfServer probe_server(
      cluster.server_sim(0), {&cluster.server(0), &srv_probe_ns,
                              &cluster.server(0).cpu(1), kProbePort});
  apps::SockperfServer bg_server(
      cluster.server_sim(0),
      {&cluster.server(0), &srv_bg_ns, &cluster.server(0).cpu(2), kBgPort});

  apps::SockperfClient::Config probe_cfg;
  probe_cfg.host = &cluster.client(0);
  probe_cfg.ns = &cli_probe_ns;
  probe_cfg.cpus = {&cluster.client(0).cpu(1)};
  probe_cfg.base_src_port = kProbeSrcPort;
  probe_cfg.dst_ip = srv_probe_ns.ip();
  probe_cfg.dst_port = kProbePort;
  probe_cfg.rate_pps = 1000.0;
  probe_cfg.payload_size = 64;
  probe_cfg.reply_every = 1;
  probe_cfg.start_at = warmup;
  probe_cfg.stop_at = t_end;
  apps::SockperfClient probe_client(cluster.client_sim(0), probe_cfg);

  apps::SockperfClient::Config bg_cfg;
  bg_cfg.host = &cluster.client(0);
  bg_cfg.ns = &cli_bg_ns;
  bg_cfg.cpus = {&cluster.client(0).cpu(2), &cluster.client(0).cpu(3)};
  bg_cfg.base_src_port = kBgSrcBase;
  bg_cfg.dst_ip = srv_bg_ns.ip();
  bg_cfg.dst_port = kBgPort;
  bg_cfg.rate_pps = kHighLoadKpps * 1e3;
  bg_cfg.payload_size = 64;
  bg_cfg.burst = 64;
  bg_cfg.reply_every = 0;
  bg_cfg.start_at = 0;
  bg_cfg.stop_at = t_end;
  apps::SockperfClient bg_client(cluster.client_sim(0), bg_cfg);

  probe_client.start();
  bg_client.start();

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(t_end + sim::milliseconds(20), 1);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t events = cluster.lanes().events_executed();
  return wall > 0 ? static_cast<double>(events) / wall : 0;
}

/// Peak resident set size in bytes (VmHWM from /proc/self/status); 0 when
/// unavailable (non-Linux).
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("perf_smoke",
                      "wall-clock hot-path throughput, fig11-style sweep");

  // Warm the process-global pools with one high-load run, then reset the
  // counters so the reported hit rates describe the warm steady state.
  run_point(kHighLoadKpps * 1e3, sim::milliseconds(50));
  kernel::SkbPool::instance().reset_stats();
  sim::BufferPool::instance().reset_stats();

  std::vector<PointResult> sweep;
  std::vector<double> sweep_sim_ms;
  for (double kpps : kSweepKpps) {
    sim::Duration duration = sim::milliseconds(200);
    PointResult p = best_of(kpps * 1e3, duration, kRepsPerPoint);
    if (p.events < kMinEventsPerPoint && p.events > 0) {
      double scale = static_cast<double>(kMinEventsPerPoint) /
                     static_cast<double>(p.events);
      if (scale > kMaxDurationScale) scale = kMaxDurationScale;
      duration = static_cast<sim::Duration>(
          static_cast<double>(duration) * scale);
      p = best_of(kpps * 1e3, duration, kRepsPerPoint);
    }
    sweep.push_back(p);
    sweep_sim_ms.push_back(sim::to_ms(duration));
    std::printf(
        "bg=%6.0f kpps  sim=%6.0fms  wall=%7.3fs  events=%10llu  "
        "ev/s=%12.0f  pkts/s=%12.0f\n",
        p.bg_kpps, sweep_sim_ms.back(), p.wall_s,
        static_cast<unsigned long long>(p.events), p.events_per_sec(),
        p.packets_per_sec());
  }

  const std::vector<stats::PoolSummary> pools = stats::pool_summaries();
  for (const auto& p : pools) {
    std::printf("pool %s\n", stats::to_string(p).c_str());
  }

  // A/B: the same high-load point with recycling disabled (plain
  // new/delete), to keep the pools honest about what they buy.
  kernel::SkbPool::instance().set_enabled(false);
  sim::BufferPool::instance().set_enabled(false);
  const PointResult no_pool =
      best_of(kHighLoadKpps * 1e3, sim::milliseconds(200), kRepsPerPoint);
  kernel::SkbPool::instance().set_enabled(true);
  sim::BufferPool::instance().set_enabled(true);

  // A/B: full telemetry (span tracer on every CPU of both hosts, latency
  // ledger + flow table recording every delivery) vs the counters-only
  // baseline above (ledger + flow table runtime-disabled). When
  // PRISM_TELEMETRY=OFF the recording calls compile out and the overhead
  // should read ~0.
  std::string telemetry_block;
  const PointResult telem_on =
      best_of(kHighLoadKpps * 1e3, sim::milliseconds(200), kRepsPerPoint,
              /*full_telemetry=*/true, &telemetry_block);

  // A/B: the flight recorder + anomaly bank alone (armed at defaults:
  // 1/64 sampling, high classes pinned, inversion detector on) against
  // the counters-only baseline. This is the cost of leaving the recorder
  // armed in production, which is the intended deployment.
  const PointResult recorder_on =
      best_of(kHighLoadKpps * 1e3, sim::milliseconds(200), kRepsPerPoint,
              /*full_telemetry=*/false, nullptr, /*flight_recorder=*/true);

  // A/B: overlay flow cache on vs off at the high-load point. The fast
  // path skips stages 2-3 entirely for cached flows, so it removes both
  // simulated cost *and* simulated events per packet: packets/s is the
  // honest throughput metric here (events/s divides a smaller event count
  // by a smaller wall time).
  const PointResult cache_on =
      best_of(kHighLoadKpps * 1e3, sim::milliseconds(200), kRepsPerPoint,
              /*full_telemetry=*/false, nullptr, /*flight_recorder=*/false,
              /*flow_cache=*/true);

  // A/B: lane-profiler recording cost on the lane engine (one pair, one
  // thread, same high-load workload), interleaved so machine noise hits
  // both arms alike. Target: <= 3%, same budget as the telemetry layer.
  double lane_off_eps = 0;
  double lane_on_eps = 0;
  for (int i = 0; i < kRepsPerPoint; ++i) {
    const double off = run_lane_point_events_per_sec(false);
    if (off > lane_off_eps) lane_off_eps = off;
    const double on = run_lane_point_events_per_sec(true);
    if (on > lane_on_eps) lane_on_eps = on;
  }
  const double profiler_overhead =
      lane_off_eps > 0 ? 1.0 - lane_on_eps / lane_off_eps : 0.0;

  const PointResult& high = sweep.back();
  const double speedup = high.events_per_sec() / kSeedEventsPerSec;
  const double telem_overhead =
      high.events_per_sec() > 0
          ? 1.0 - telem_on.events_per_sec() / high.events_per_sec()
          : 0.0;
  const double recorder_overhead =
      high.events_per_sec() > 0
          ? 1.0 - recorder_on.events_per_sec() / high.events_per_sec()
          : 0.0;
  const std::uint64_t rss = peak_rss_bytes();

  const double cache_events_speedup =
      high.events_per_sec() > 0
          ? cache_on.events_per_sec() / high.events_per_sec()
          : 0.0;
  const double cache_packets_speedup =
      high.packets_per_sec() > 0
          ? cache_on.packets_per_sec() / high.packets_per_sec()
          : 0.0;

  std::printf("high-load ev/s=%.0f  seed ev/s=%.0f  speedup=%.2fx\n",
              high.events_per_sec(), kSeedEventsPerSec, speedup);
  std::printf("pool-disabled ev/s=%.0f\n", no_pool.events_per_sec());
  std::printf(
      "flow-cache on: ev/s=%.0f (%.2fx)  pkts/s=%.0f (%.2fx)  "
      "hit_rate=%.2f%%\n",
      cache_on.events_per_sec(), cache_events_speedup,
      cache_on.packets_per_sec(), cache_packets_speedup,
      100.0 * cache_on.fc_hit_rate);
  std::printf("telemetry-on ev/s=%.0f  overhead=%.2f%% (target <= %.0f%%)%s\n",
              telem_on.events_per_sec(), telem_overhead * 100.0,
              kTelemetryOverheadTarget * 100.0,
              telem_overhead <= kTelemetryOverheadTarget ? "" : "  ** OVER **");
  std::printf(
      "flight-recorder ev/s=%.0f  overhead=%.2f%% (target <= %.0f%%)%s\n",
      recorder_on.events_per_sec(), recorder_overhead * 100.0,
      kTelemetryOverheadTarget * 100.0,
      recorder_overhead <= kTelemetryOverheadTarget ? "" : "  ** OVER **");
  std::printf(
      "lane-profiler off ev/s=%.0f  on ev/s=%.0f  overhead=%.2f%% "
      "(target <= %.0f%%)%s\n",
      lane_off_eps, lane_on_eps, profiler_overhead * 100.0,
      kTelemetryOverheadTarget * 100.0,
      profiler_overhead <= kTelemetryOverheadTarget ? "" : "  ** OVER **");
  std::printf("peak RSS=%.1f MiB\n", static_cast<double>(rss) / (1 << 20));

  const char* out_path = std::getenv("PRISM_BENCH_OUT");
  if (argc > 1) out_path = argv[1];
  if (out_path == nullptr) out_path = "BENCH_perf_smoke.json";

  telemetry::JsonWriter w;
  w.begin_object();
  w.member("bench", "perf_smoke");
  w.member("mode", "prism_sync");
  w.member("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.member("base_sim_ms_per_point", 200);
  w.member("min_events_per_point", kMinEventsPerPoint);
  w.member("reps_per_point", kRepsPerPoint);
  w.key("sweep");
  w.begin_array();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& p = sweep[i];
    w.begin_object();
    w.member("bg_kpps", p.bg_kpps);
    w.member("sim_ms", sweep_sim_ms[i]);
    w.member("wall_s", p.wall_s);
    w.member("events", p.events);
    w.member("events_per_sec", p.events_per_sec());
    w.member("packets", p.packets);
    w.member("packets_per_sec", p.packets_per_sec());
    w.end_object();
  }
  w.end_array();
  w.key("high_load");
  w.begin_object();
  w.member("bg_kpps", kHighLoadKpps);
  w.member("events_per_sec", high.events_per_sec());
  w.member("seed_events_per_sec", kSeedEventsPerSec);
  w.member("speedup_vs_seed", speedup);
  w.member("pool_disabled_events_per_sec", no_pool.events_per_sec());
  w.end_object();
  w.key("telemetry_overhead");
  w.begin_object();
  w.member("compiled_in", static_cast<bool>(PRISM_TELEMETRY_ENABLED));
  w.member("baseline_events_per_sec", high.events_per_sec());
  w.member("telemetry_events_per_sec", telem_on.events_per_sec());
  w.member("overhead_fraction", telem_overhead);
  w.member("target_fraction", kTelemetryOverheadTarget);
  w.member("within_target", telem_overhead <= kTelemetryOverheadTarget);
  w.end_object();
  w.key("flight_recorder_overhead");
  w.begin_object();
  w.member("compiled_in", static_cast<bool>(PRISM_TELEMETRY_ENABLED));
  w.member("baseline_events_per_sec", high.events_per_sec());
  w.member("recorder_events_per_sec", recorder_on.events_per_sec());
  w.member("overhead_fraction", recorder_overhead);
  w.member("target_fraction", kTelemetryOverheadTarget);
  w.member("within_target", recorder_overhead <= kTelemetryOverheadTarget);
  w.end_object();
  w.key("lane_profiler_overhead");
  w.begin_object();
  w.member("compiled_in", static_cast<bool>(PRISM_TELEMETRY_ENABLED));
  w.member("baseline_events_per_sec", lane_off_eps);
  w.member("profiled_events_per_sec", lane_on_eps);
  w.member("overhead_fraction", profiler_overhead);
  w.member("target_fraction", kTelemetryOverheadTarget);
  w.member("within_target", profiler_overhead <= kTelemetryOverheadTarget);
  w.end_object();
  w.key("flow_cache");
  w.begin_object();
  w.member("compiled_in", static_cast<bool>(PRISM_FLOWCACHE_ENABLED));
  w.member("baseline_events_per_sec", high.events_per_sec());
  w.member("baseline_packets_per_sec", high.packets_per_sec());
  w.member("cache_events_per_sec", cache_on.events_per_sec());
  w.member("cache_packets_per_sec", cache_on.packets_per_sec());
  w.member("events_speedup", cache_events_speedup);
  w.member("packets_speedup", cache_packets_speedup);
  w.member("hits", cache_on.fc_hits);
  w.member("misses", cache_on.fc_misses);
  w.member("hit_rate", cache_on.fc_hit_rate);
  w.end_object();
  w.key("overload");
  w.begin_object();
  w.member("compiled_in", static_cast<bool>(PRISM_OVERLOAD_ENABLED));
  w.end_object();
  w.member("peak_rss_bytes", rss);
  w.key("pools");
  w.begin_array();
  for (const auto& p : pools) {
    w.begin_object();
    w.member("name", p.name);
    w.member("acquired", p.acquired);
    w.member("reused", p.reused);
    w.member("allocated", p.allocated);
    w.member("released", p.released);
    w.member("discarded", p.discarded);
    w.member("hit_rate", p.hit_rate);
    w.end_object();
  }
  w.end_array();
  w.key("telemetry");
  w.raw(telemetry_block);
  w.end_object();

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path);
    return 0;  // report-only bench: never fail the build
  }
  std::fputs(w.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
