// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/testbed.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "telemetry/latency.h"

namespace prism::bench {

/// Parses `--threads N` / `--threads=N` (or the PRISM_THREADS environment
/// variable; the flag wins) and installs the result as the harness-wide
/// default engine via harness::set_default_threads(). Every scenario the
/// bench runs then picks the parallel lane backend when N >= 2, with no
/// per-bench plumbing. Returns the resolved count (default 1: classic
/// single-threaded engine). Call first thing in main().
inline int parse_threads(int argc, char** argv) {
  int threads = 1;
  if (const char* env = std::getenv("PRISM_THREADS")) {
    threads = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    }
  }
  if (threads < 1) threads = 1;
  harness::set_default_threads(threads);
  if (threads > 1) {
    std::printf("engine: parallel lanes on %d threads\n\n", threads);
  }
  return threads;
}

inline std::string us(std::int64_t ns) {
  return stats::Table::cell(static_cast<double>(ns) / 1e3);
}

inline std::string us(double ns) { return stats::Table::cell(ns / 1e3); }

inline std::string pct(double fraction) {
  return stats::Table::cell(fraction * 100.0, 0) + "%";
}

inline std::string kpps(double pps) {
  return stats::Table::cell(pps / 1e3, 0);
}

inline void add_latency_row(stats::Table& table, const std::string& label,
                            const stats::Histogram& h,
                            const std::string& extra = "") {
  const auto s = stats::summarize(h);
  std::vector<std::string> row{label,        us(s.min_ns), us(s.mean_ns),
                               us(s.p50_ns), us(s.p90_ns), us(s.p99_ns)};
  if (!extra.empty()) row.push_back(extra);
  table.add_row(std::move(row));
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Server-side per-stage latency attribution for one scenario run —
/// the measured answer to "where does the time go" that the figure
/// discussions previously inferred from end-to-end numbers alone.
inline void print_latency_breakdown(
    const char* label, const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) {
    std::printf("latency_breakdown [%s]: telemetry compiled out\n\n", label);
    return;
  }
  std::printf("latency_breakdown [%s]:\n%s\n", label,
              telemetry::render_latency_breakdown(b).c_str());
}

/// The windowed p50/p99-vs-time series from the same snapshot.
inline void print_latency_windows(const char* label,
                                  const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) return;
  std::printf("latency_windows [%s]:\n%s\n", label,
              telemetry::render_latency_windows(b).c_str());
}

}  // namespace prism::bench
