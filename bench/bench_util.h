// Shared helpers for the figure-reproduction benches.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/testbed.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "telemetry/latency.h"

namespace prism::bench {

/// Strict decimal parse of a full C string (optional leading '-', no
/// whitespace, no trailing garbage, no overflow). `what` names the flag
/// or environment variable in the error; malformed input terminates the
/// bench with exit code 2 instead of silently running with a default —
/// a mistyped `--threads=abc` or `PRISM_SEED=1e6` must not produce a
/// plausible-looking result under the wrong configuration.
inline long parse_long_or_die(const char* text, const char* what) {
  const char* end = text + std::strlen(text);
  long value = 0;
  const auto [ptr, ec] = std::from_chars(text, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    std::fprintf(stderr, "error: %s: value '%s' out of range\n", what,
                 text);
    std::exit(2);
  }
  if (ec != std::errc{} || ptr != end || text == end) {
    std::fprintf(stderr,
                 "error: %s: expected an integer, got '%s'\n", what, text);
    std::exit(2);
  }
  return value;
}

/// Parses `--threads N` / `--threads=N` (or the PRISM_THREADS environment
/// variable; the flag wins) and installs the result as the harness-wide
/// default engine via harness::set_default_threads(). Every scenario the
/// bench runs then picks the parallel lane backend when N >= 2, with no
/// per-bench plumbing. Returns the resolved count (default 1: classic
/// single-threaded engine). Malformed or non-positive values exit with
/// an error. Call first thing in main().
inline int parse_threads(int argc, char** argv) {
  long threads = 1;
  if (const char* env = std::getenv("PRISM_THREADS")) {
    threads = parse_long_or_die(env, "PRISM_THREADS");
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = parse_long_or_die(argv[i + 1], "--threads");
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = parse_long_or_die(argv[i] + 10, "--threads");
    }
  }
  if (threads < 1 || threads > 1024) {
    std::fprintf(stderr, "error: --threads: %ld not in [1, 1024]\n",
                 threads);
    std::exit(2);
  }
  harness::set_default_threads(static_cast<int>(threads));
  if (threads > 1) {
    std::printf("engine: parallel lanes on %d threads\n\n",
                static_cast<int>(threads));
  }
  return static_cast<int>(threads);
}

/// Generic `--flag N` / `--flag=N` integer parser for the bench flags
/// below. Returns `fallback` when the flag is absent; a present flag
/// with a malformed value exits with an error.
inline long parse_long_flag(int argc, char** argv, const char* flag,
                            long fallback) {
  const std::size_t len = std::strlen(flag);
  long value = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      value = parse_long_or_die(argv[i + 1], flag);
    } else if (std::strncmp(argv[i], flag, len) == 0 &&
               argv[i][len] == '=') {
      value = parse_long_or_die(argv[i] + len + 1, flag);
    }
  }
  return value;
}

/// `--trace-flows N`: flight-recorder sampling period — trace 1-in-N
/// low-priority flows (high-priority classes are always traced). 0 keeps
/// the recorder default (64).
inline std::uint32_t parse_trace_flows(int argc, char** argv) {
  const long v = parse_long_flag(argc, argv, "--trace-flows", 0);
  return v > 0 ? static_cast<std::uint32_t>(v) : 0;
}

/// `--slo-us U`: arm the per-class p99 SLO-breach detector at U
/// microseconds (0 = detector off, the default).
inline sim::Duration parse_slo_us(int argc, char** argv) {
  const long v = parse_long_flag(argc, argv, "--slo-us", 0);
  return v > 0 ? sim::microseconds(v) : 0;
}

/// `--inversion-us T`: the priority-inversion wait threshold. The
/// figure benches default to 50us — between the idle end-to-end p99
/// (~20us) and the vanilla probe's loaded stage-queue waits — rather
/// than the recorder-wide 100us default, which only the NIC ring ever
/// exceeds at fig09/fig10 load levels.
inline sim::Duration parse_inversion_us(int argc, char** argv,
                                        long default_us) {
  const long v = parse_long_flag(argc, argv, "--inversion-us", default_us);
  return v > 0 ? sim::microseconds(v) : sim::microseconds(default_us);
}

/// `--seed S`: fault-injection seed for the detector-armed runs (also
/// honors PRISM_SEED; the flag wins). Default 1. Malformed or
/// non-positive values exit with an error.
inline std::uint64_t parse_seed(int argc, char** argv) {
  long seed = 1;
  if (const char* env = std::getenv("PRISM_SEED")) {
    seed = parse_long_or_die(env, "PRISM_SEED");
  }
  seed = parse_long_flag(argc, argv, "--seed", seed);
  if (seed < 1) {
    std::fprintf(stderr, "error: --seed: %ld must be >= 1\n", seed);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(seed);
}

inline std::string us(std::int64_t ns) {
  return stats::Table::cell(static_cast<double>(ns) / 1e3);
}

inline std::string us(double ns) { return stats::Table::cell(ns / 1e3); }

inline std::string pct(double fraction) {
  return stats::Table::cell(fraction * 100.0, 0) + "%";
}

inline std::string kpps(double pps) {
  return stats::Table::cell(pps / 1e3, 0);
}

inline void add_latency_row(stats::Table& table, const std::string& label,
                            const stats::Histogram& h,
                            const std::string& extra = "") {
  const auto s = stats::summarize(h);
  std::vector<std::string> row{label,        us(s.min_ns), us(s.mean_ns),
                               us(s.p50_ns), us(s.p90_ns), us(s.p99_ns)};
  if (!extra.empty()) row.push_back(extra);
  table.add_row(std::move(row));
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Server-side per-stage latency attribution for one scenario run —
/// the measured answer to "where does the time go" that the figure
/// discussions previously inferred from end-to-end numbers alone.
inline void print_latency_breakdown(
    const char* label, const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) {
    std::printf("latency_breakdown [%s]: telemetry compiled out\n\n", label);
    return;
  }
  std::printf("latency_breakdown [%s]:\n%s\n", label,
              telemetry::render_latency_breakdown(b).c_str());
}

/// The windowed p50/p99-vs-time series from the same snapshot.
inline void print_latency_windows(const char* label,
                                  const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) return;
  std::printf("latency_windows [%s]:\n%s\n", label,
              telemetry::render_latency_windows(b).c_str());
}

/// One line per configuration of the detector-armed runs: what fired on
/// the server, how bad the worst inversion was.
inline void print_anomaly_summary(const char* label,
                                  const harness::AnomalySummary& a) {
  std::printf(
      "anomalies [%s]: queue_inversions=%llu ring_inversions=%llu "
      "slo_breaches=%llu worst_inversion_wait=%.1fus "
      "(findings=%llu events=%llu)\n",
      label, static_cast<unsigned long long>(a.queue_inversions),
      static_cast<unsigned long long>(a.ring_inversions),
      static_cast<unsigned long long>(a.slo_breaches),
      static_cast<double>(a.max_inversion_wait_ns) / 1e3,
      static_cast<unsigned long long>(a.findings_retained),
      static_cast<unsigned long long>(a.events_recorded));
}

}  // namespace prism::bench
