// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/testbed.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "telemetry/latency.h"

namespace prism::bench {

/// Parses `--threads N` / `--threads=N` (or the PRISM_THREADS environment
/// variable; the flag wins) and installs the result as the harness-wide
/// default engine via harness::set_default_threads(). Every scenario the
/// bench runs then picks the parallel lane backend when N >= 2, with no
/// per-bench plumbing. Returns the resolved count (default 1: classic
/// single-threaded engine). Call first thing in main().
inline int parse_threads(int argc, char** argv) {
  int threads = 1;
  if (const char* env = std::getenv("PRISM_THREADS")) {
    threads = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    }
  }
  if (threads < 1) threads = 1;
  harness::set_default_threads(threads);
  if (threads > 1) {
    std::printf("engine: parallel lanes on %d threads\n\n", threads);
  }
  return threads;
}

/// Generic `--flag N` / `--flag=N` integer parser for the bench flags
/// below. Returns `fallback` when the flag is absent or malformed.
inline long parse_long_flag(int argc, char** argv, const char* flag,
                            long fallback) {
  const std::size_t len = std::strlen(flag);
  long value = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      value = std::atol(argv[i + 1]);
    } else if (std::strncmp(argv[i], flag, len) == 0 &&
               argv[i][len] == '=') {
      value = std::atol(argv[i] + len + 1);
    }
  }
  return value;
}

/// `--trace-flows N`: flight-recorder sampling period — trace 1-in-N
/// low-priority flows (high-priority classes are always traced). 0 keeps
/// the recorder default (64).
inline std::uint32_t parse_trace_flows(int argc, char** argv) {
  const long v = parse_long_flag(argc, argv, "--trace-flows", 0);
  return v > 0 ? static_cast<std::uint32_t>(v) : 0;
}

/// `--slo-us U`: arm the per-class p99 SLO-breach detector at U
/// microseconds (0 = detector off, the default).
inline sim::Duration parse_slo_us(int argc, char** argv) {
  const long v = parse_long_flag(argc, argv, "--slo-us", 0);
  return v > 0 ? sim::microseconds(v) : 0;
}

/// `--inversion-us T`: the priority-inversion wait threshold. The
/// figure benches default to 50us — between the idle end-to-end p99
/// (~20us) and the vanilla probe's loaded stage-queue waits — rather
/// than the recorder-wide 100us default, which only the NIC ring ever
/// exceeds at fig09/fig10 load levels.
inline sim::Duration parse_inversion_us(int argc, char** argv,
                                        long default_us) {
  const long v = parse_long_flag(argc, argv, "--inversion-us", default_us);
  return v > 0 ? sim::microseconds(v) : sim::microseconds(default_us);
}

/// `--seed S`: fault-injection seed for the detector-armed runs (also
/// honors PRISM_SEED; the flag wins). Default 1.
inline std::uint64_t parse_seed(int argc, char** argv) {
  long seed = 1;
  if (const char* env = std::getenv("PRISM_SEED")) seed = std::atol(env);
  seed = parse_long_flag(argc, argv, "--seed", seed);
  return seed > 0 ? static_cast<std::uint64_t>(seed) : 1;
}

inline std::string us(std::int64_t ns) {
  return stats::Table::cell(static_cast<double>(ns) / 1e3);
}

inline std::string us(double ns) { return stats::Table::cell(ns / 1e3); }

inline std::string pct(double fraction) {
  return stats::Table::cell(fraction * 100.0, 0) + "%";
}

inline std::string kpps(double pps) {
  return stats::Table::cell(pps / 1e3, 0);
}

inline void add_latency_row(stats::Table& table, const std::string& label,
                            const stats::Histogram& h,
                            const std::string& extra = "") {
  const auto s = stats::summarize(h);
  std::vector<std::string> row{label,        us(s.min_ns), us(s.mean_ns),
                               us(s.p50_ns), us(s.p90_ns), us(s.p99_ns)};
  if (!extra.empty()) row.push_back(extra);
  table.add_row(std::move(row));
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

/// Server-side per-stage latency attribution for one scenario run —
/// the measured answer to "where does the time go" that the figure
/// discussions previously inferred from end-to-end numbers alone.
inline void print_latency_breakdown(
    const char* label, const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) {
    std::printf("latency_breakdown [%s]: telemetry compiled out\n\n", label);
    return;
  }
  std::printf("latency_breakdown [%s]:\n%s\n", label,
              telemetry::render_latency_breakdown(b).c_str());
}

/// The windowed p50/p99-vs-time series from the same snapshot.
inline void print_latency_windows(const char* label,
                                  const telemetry::LatencyBreakdown& b) {
  if (!b.enabled) return;
  std::printf("latency_windows [%s]:\n%s\n", label,
              telemetry::render_latency_windows(b).c_str());
}

/// One line per configuration of the detector-armed runs: what fired on
/// the server, how bad the worst inversion was.
inline void print_anomaly_summary(const char* label,
                                  const harness::AnomalySummary& a) {
  std::printf(
      "anomalies [%s]: queue_inversions=%llu ring_inversions=%llu "
      "slo_breaches=%llu worst_inversion_wait=%.1fus "
      "(findings=%llu events=%llu)\n",
      label, static_cast<unsigned long long>(a.queue_inversions),
      static_cast<unsigned long long>(a.ring_inversions),
      static_cast<unsigned long long>(a.slo_breaches),
      static_cast<double>(a.max_inversion_wait_ns) / 1e3,
      static_cast<unsigned long long>(a.findings_retained),
      static_cast<unsigned long long>(a.events_recorded));
}

}  // namespace prism::bench
