// Ablation: Receive Packet Steering vs PRISM (paper §III-A).
//
// The vanilla two-list NAPI design exists so RPS can balance flows across
// CPUs without locking; PRISM trades that for a single streamlined list.
// This bench quantifies the trade: RPS scales aggregate multi-flow
// throughput across cores but does nothing for a single flow's latency,
// while PRISM cuts the latency of designated flows on one core.
#include <cstdio>

#include "apps/sockperf.h"
#include "bench_util.h"
#include "harness/testbed.h"

namespace {

struct Result {
  double delivered_pps;
  prism::stats::LatencySummary probe;
};

Result run(bool rps, prism::kernel::NapiMode mode, double rate_pps,
           int flows) {
  using namespace prism;
  harness::TestbedConfig tc;
  tc.mode = mode;
  if (rps) tc.server_rps_cpus = {0, 1, 2, 3};
  harness::Testbed tb(tc);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& probe_cli = tb.add_client_container("probe-cli");
  auto& probe_srv = tb.add_server_container("probe-srv");
  tb.server().priority_db().add(probe_srv.ip(), 11112);
  tb.client().priority_db().add(probe_cli.ip(), 22000);

  apps::SockperfServer bulk_server(
      tb.server_sim(),
      {&tb.server(), &srv, &tb.server().cpu(1), 11111});
  apps::SockperfServer probe_server(
      tb.server_sim(),
      {&tb.server(), &probe_srv, &tb.server().cpu(2), 11112});

  apps::SockperfClient::Config bulk;
  bulk.host = &tb.client();
  bulk.ns = &cli;
  for (int i = 0; i < flows; ++i) {
    bulk.cpus.push_back(&tb.client().cpu(1 + i % 4));
  }
  bulk.base_src_port = 21000;
  bulk.dst_ip = srv.ip();
  bulk.dst_port = 11111;
  bulk.rate_pps = rate_pps;
  bulk.burst = 32;
  bulk.stop_at = sim::milliseconds(300);
  apps::SockperfClient bulk_client(tb.client_sim(), bulk);
  bulk_client.start();

  apps::SockperfClient::Config probe;
  probe.host = &tb.client();
  probe.ns = &probe_cli;
  probe.cpus = {&tb.client().cpu(5)};
  probe.base_src_port = 22000;
  probe.dst_ip = probe_srv.ip();
  probe.dst_port = 11112;
  probe.rate_pps = 1000;
  probe.reply_every = 1;
  probe.start_at = sim::milliseconds(50);
  probe.stop_at = sim::milliseconds(300);
  apps::SockperfClient probe_client(tb.client_sim(), probe);
  probe_client.start();

  tb.run_until(sim::milliseconds(330));
  Result r;
  r.delivered_pps =
      static_cast<double>(bulk_server.received()) / 0.300;
  r.probe = stats::summarize(probe_client.latency());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header("Ablation",
                      "RPS (flow parallelism) vs PRISM (prioritization)");

  stats::Table table({"configuration", "bulk delivered Kpps",
                      "probe mean(us)", "probe p99(us)"});
  struct Row {
    const char* label;
    bool rps;
    kernel::NapiMode mode;
  };
  const Row rows[] = {
      {"vanilla, 1 core", false, kernel::NapiMode::kVanilla},
      {"vanilla + RPS(4)", true, kernel::NapiMode::kVanilla},
      {"prism-batch, 1 core", false, kernel::NapiMode::kPrismBatch},
      {"prism-batch + RPS(4)", true, kernel::NapiMode::kPrismBatch},
  };
  for (const auto& row : rows) {
    const auto r = run(row.rps, row.mode, 500'000, 4);
    table.add_row({row.label, bench::kpps(r.delivered_pps),
                   bench::us(r.probe.mean_ns), bench::us(r.probe.p99_ns)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "RPS recovers aggregate throughput by spreading the 4 bulk flows\n"
      "across cores; PRISM cuts the probe's latency. The mechanisms are\n"
      "complementary — PRISM's single poll list still admits steering\n"
      "(paper §III-A discusses the trade-off).\n");
  return 0;
}
