// Ablation: the NAPI batch-size trade-off (paper §II-A1 and §III-B).
//
// Larger batches amortize per-poll overhead (throughput) but lengthen
// multi-stage queueing (latency). This sweep runs the streamlined
// scenario with batch sizes 1..256 and reports both sides of the
// trade-off the paper's batching discussion is built on.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header("Ablation",
                      "NAPI batch size: latency vs throughput trade-off");

  stats::Table table({"batch", "p50(us)", "p99(us)", "delivered Kpps",
                      "max Kpps", "rx-cpu"});
  for (const int batch : {1, 4, 16, 64, 128, 256}) {
    kernel::CostModel cost;
    cost.napi_batch_size = batch;

    harness::StreamlinedScenarioConfig cfg;
    cfg.mode = kernel::NapiMode::kVanilla;
    cfg.rate_pps = 300'000;
    cfg.duration = sim::milliseconds(300);
    cfg.cost = cost;
    const auto at_300k = harness::run_streamlined_scenario(cfg);

    cfg.rate_pps = 550'000;  // saturating: delivered == capacity
    const auto saturated = harness::run_streamlined_scenario(cfg);

    table.add_row({std::to_string(batch),
                   bench::us(at_300k.latency.percentile(0.5)),
                   bench::us(at_300k.latency.percentile(0.99)),
                   bench::kpps(at_300k.delivered_pps),
                   bench::kpps(saturated.delivered_pps),
                   bench::pct(at_300k.rx_cpu_utilization)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Small batches forfeit amortization (max rate drops); large batches\n"
      "lengthen per-stage queueing (p99 grows). The kernel default of 64\n"
      "sits near the throughput plateau — the paper's motivation for\n"
      "priority-aware scheduling instead of batch-size tuning.\n");
  return 0;
}
