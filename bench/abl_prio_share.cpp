// Ablation: how much high-priority traffic can PRISM protect?
//
// The paper's scenarios keep the high-priority flow small (1 Kpps probe
// vs 300 Kpps background). This sweep raises the high-priority rate and
// watches PRISM-batch's advantage shrink: once high-priority batches
// saturate the pipeline themselves, there is nothing left to preempt.
#include <cstdio>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Ablation", "high-priority traffic share vs PRISM benefit");

  stats::Table table({"probe Kpps", "vanilla p50(us)", "batch p50(us)",
                      "gain", "vanilla p99(us)", "batch p99(us)"});
  for (const double probe_kpps : {1.0, 5.0, 20.0, 50.0, 100.0}) {
    harness::PriorityScenarioConfig cfg;
    cfg.busy = true;
    cfg.bg_rate_pps = 250'000;  // leave headroom for the probe sweep
    cfg.probe_rate_pps = probe_kpps * 1e3;
    cfg.duration = sim::milliseconds(300);

    cfg.mode = kernel::NapiMode::kVanilla;
    const auto vanilla = harness::run_priority_scenario(cfg);
    cfg.mode = kernel::NapiMode::kPrismBatch;
    const auto batch = harness::run_priority_scenario(cfg);

    const double gain =
        1.0 - static_cast<double>(batch.latency.percentile(0.5)) /
                  static_cast<double>(vanilla.latency.percentile(0.5));
    table.add_row({stats::Table::cell(probe_kpps, 0),
                   bench::us(vanilla.latency.percentile(0.5)),
                   bench::us(batch.latency.percentile(0.5)),
                   stats::Table::cell(gain * 100, 0) + "%",
                   bench::us(vanilla.latency.percentile(0.99)),
                   bench::us(batch.latency.percentile(0.99))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "PRISM's design target is low-volume latency-sensitive flows\n"
      "(paper §II-B); as the high-priority share grows, its packets\n"
      "increasingly queue behind each other rather than behind background\n"
      "batches, and the preemption advantage fades.\n");
  return 0;
}
