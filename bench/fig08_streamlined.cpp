// Reproduces Fig. 8: performance comparison of Vanilla, PRISM-batch and
// PRISM-sync in the absence of low-priority background traffic.
//
// Paper setup: one packet-processing core, one application core; a
// constant 300 Kpps containerized flow, latency sampled via sockperf's
// under-load mode; separately, the maximum per-core packet rate.
//
// Paper result: PRISM-sync cuts median and tail latency ~50% vs Vanilla
// with PRISM-batch in between; max throughput is ~400 Kpps for Vanilla
// and PRISM-batch but only ~300 Kpps for PRISM-sync (no batching).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  prism::bench::parse_threads(argc, argv);
  using namespace prism;
  bench::print_header(
      "Figure 8", "Vanilla vs PRISM-batch vs PRISM-sync, no background");

  // --- latency at a constant 300 Kpps ---------------------------------
  // Each mode runs A/B: flow cache off (the paper's pipeline) and on
  // (ONCache-style stage-1 fast path). The long-lived single flow is the
  // cache's best case — one compulsory miss, then hits until the end.
  stats::Table lat({"mode", "min(us)", "mean(us)", "p50(us)", "p90(us)",
                    "p99(us)", "rx-cpu", "fc-hit"});
  std::vector<std::pair<std::string, telemetry::LatencyBreakdown>>
      breakdowns;
  for (const auto mode :
       {kernel::NapiMode::kVanilla, kernel::NapiMode::kPrismBatch,
        kernel::NapiMode::kPrismSync}) {
    for (const bool cache : {false, true}) {
      harness::StreamlinedScenarioConfig cfg;
      cfg.mode = mode;
      cfg.rate_pps = 300'000;
      cfg.flow_cache = cache;
      const auto r = harness::run_streamlined_scenario(cfg);
      const std::string label =
          std::string(kernel::to_string(mode)) + (cache ? "+cache" : "");
      std::vector<std::string> row{label};
      const auto s = stats::summarize(r.latency);
      row.insert(row.end(),
                 {bench::us(s.min_ns), bench::us(s.mean_ns),
                  bench::us(s.p50_ns), bench::us(s.p90_ns),
                  bench::us(s.p99_ns), bench::pct(r.rx_cpu_utilization),
                  cache ? bench::pct(r.server_flowcache_hit_rate) : "-"});
      lat.add_row(std::move(row));
      breakdowns.emplace_back(label, r.server_latency);
      if (cache) {
        std::printf(
            "flow cache [%s]: hits=%llu misses=%llu invalidations=%llu "
            "hit_rate=%.2f%%\n",
            label.c_str(),
            static_cast<unsigned long long>(r.server_flowcache_hits),
            static_cast<unsigned long long>(r.server_flowcache_misses),
            static_cast<unsigned long long>(
                r.server_flowcache_invalidations),
            100.0 * r.server_flowcache_hit_rate);
      }
    }
  }
  std::printf("\nlatency of the 300 Kpps flow:\n%s\n", lat.render().c_str());
  for (const auto& [label, b] : breakdowns) {
    bench::print_latency_breakdown(label.c_str(), b);
  }

  // --- max per-core throughput -----------------------------------------
  std::printf("per-core throughput (delivered Kpps vs offered Kpps):\n");
  stats::Table tput({"offered", "vanilla", "prism-batch", "prism-sync",
                     "sync+cache"});
  double max_rate[4] = {0, 0, 0, 0};
  for (double offered = 250'000; offered <= 550'000; offered += 50'000) {
    std::vector<std::string> row{bench::kpps(offered)};
    int i = 0;
    const struct {
      kernel::NapiMode mode;
      bool cache;
    } arms[] = {{kernel::NapiMode::kVanilla, false},
                {kernel::NapiMode::kPrismBatch, false},
                {kernel::NapiMode::kPrismSync, false},
                {kernel::NapiMode::kPrismSync, true}};
    for (const auto& arm : arms) {
      harness::StreamlinedScenarioConfig cfg;
      cfg.mode = arm.mode;
      cfg.rate_pps = offered;
      cfg.duration = sim::milliseconds(300);
      cfg.flow_cache = arm.cache;
      const auto r = harness::run_streamlined_scenario(cfg);
      row.push_back(bench::kpps(r.delivered_pps));
      max_rate[i] = std::max(max_rate[i], r.delivered_pps);
      ++i;
    }
    tput.add_row(std::move(row));
  }
  std::printf("%s\n", tput.render().c_str());
  std::printf(
      "max per-core rate: vanilla %.0f Kpps, prism-batch %.0f Kpps, "
      "prism-sync %.0f Kpps, sync+cache %.0f Kpps\n"
      "(paper: ~400 / ~400 / ~300 Kpps; the cache lifts sync by skipping "
      "stages 2-3 for cached flows)\n",
      max_rate[0] / 1e3, max_rate[1] / 1e3, max_rate[2] / 1e3,
      max_rate[3] / 1e3);
  return 0;
}
