// NFV-chain scenario: the paper's other multi-stage pipeline (§I).
//
// A five-stage virtual network function chain processed by one core,
// carrying a bulk flow plus a small control-traffic flow. Shows, with the
// engine-level synthetic pipeline, how control packets fare under each
// processing mode as the chain deepens — the generalization of the
// container-overlay result.
#include <algorithm>
#include <cstdio>

#include "harness/synthetic_pipeline.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace {

// Feeds alternating bulk bursts and single control packets; returns the
// control packets' completion latencies.
prism::stats::Histogram run_chain(prism::kernel::NapiMode mode,
                                  int stages) {
  using namespace prism;
  harness::SyntheticPipeline p(mode, stages);

  // 20 rounds: one 64-packet bulk burst, then one control packet landing
  // in the middle of the burst's processing.
  for (int round = 0; round < 20; ++round) {
    const sim::Time t = round * sim::microseconds(400);
    p.sim.schedule_at(t, [&p] { p.feed(*p.source, 64); });
    p.sim.schedule_at(t + sim::microseconds(20),
                      [&p] { p.feed(*p.source_high, 1); });
  }
  p.sim.run();

  stats::Histogram control_latency;
  // Control packets are the high-priority deliveries; latency is
  // completion minus injection time (rounds are far enough apart that
  // attribution by order is exact).
  int control_index = 0;
  for (const auto& d : p.deliveries) {
    if (!d.high) continue;
    const sim::Time injected = control_index * sim::microseconds(400) +
                               sim::microseconds(20);
    control_latency.record(d.at - injected);
    ++control_index;
  }
  return control_latency;
}

}  // namespace

int main() {
  using namespace prism;
  std::printf(
      "Control-packet latency through an N-stage NFV chain shared with\n"
      "bulk bursts (one core, batch size 64):\n\n");

  stats::Table table({"stages", "vanilla p50(us)", "prism-batch p50(us)",
                      "prism-sync p50(us)"});
  for (int stages = 3; stages <= 6; ++stages) {
    const auto vanilla =
        run_chain(kernel::NapiMode::kVanilla, stages);
    const auto batch =
        run_chain(kernel::NapiMode::kPrismBatch, stages);
    const auto sync = run_chain(kernel::NapiMode::kPrismSync, stages);
    table.add_row(
        {std::to_string(stages),
         stats::Table::cell(
             static_cast<double>(vanilla.percentile(0.5)) / 1e3),
         stats::Table::cell(
             static_cast<double>(batch.percentile(0.5)) / 1e3),
         stats::Table::cell(
             static_cast<double>(sync.percentile(0.5)) / 1e3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The interleaving penalty compounds with chain depth for vanilla\n"
      "NAPI; PRISM keeps control-packet latency nearly flat.\n");
  return 0;
}
