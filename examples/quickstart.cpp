// Quickstart: build the paper's two-host testbed, run the core
// priority-differentiation experiment in all three modes, and print the
// latency a high-priority flow sees with and without background traffic.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the library: Testbed -> scenario ->
// histogram -> table.
#include <cstdio>

#include "harness/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"

int main() {
  using namespace prism;

  std::printf("PRISM quickstart: high-priority overlay flow latency\n");
  std::printf("(1 Kpps probe; background = 300 Kpps low-priority UDP)\n\n");

  stats::Table table({"configuration", "p50 (us)", "mean (us)", "p99 (us)",
                      "rx-cpu util"});

  auto row = [&](const char* label, kernel::NapiMode mode, bool busy) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = busy;
    cfg.duration = sim::milliseconds(300);
    const auto r = harness::run_priority_scenario(cfg);
    const auto s = stats::summarize(r.latency);
    table.add_row({label,
                   stats::Table::cell(static_cast<double>(s.p50_ns) / 1e3),
                   stats::Table::cell(s.mean_ns / 1e3),
                   stats::Table::cell(static_cast<double>(s.p99_ns) / 1e3),
                   stats::Table::cell(r.rx_cpu_utilization * 100.0) + "%"});
  };

  row("idle   / vanilla", kernel::NapiMode::kVanilla, false);
  row("busy   / vanilla", kernel::NapiMode::kVanilla, true);
  row("busy   / prism-batch", kernel::NapiMode::kPrismBatch, true);
  row("busy   / prism-sync", kernel::NapiMode::kPrismSync, true);

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "PRISM reduces the latency of high-priority flows under load by\n"
      "preempting low-priority batches (prism-batch) or running their\n"
      "pipeline stages to completion (prism-sync). See DESIGN.md.\n");
  return 0;
}
