// Quickstart: build the paper's two-host testbed, run the core
// priority-differentiation experiment in all three modes, and print the
// latency a high-priority flow sees with and without background traffic.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --telemetry            # + server softnet_stat
//   $ ./examples/quickstart --trace-out run.json   # + Perfetto timeline
//
// --telemetry prints the server's /proc/net/softnet_stat-style counters
// after the busy prism-sync run; --trace-out exports the same run's
// per-CPU timeline as Chrome trace_event JSON (ui.perfetto.dev).
//
// This is the 60-second tour of the library: Testbed -> scenario ->
// histogram -> table.
#include <cstdio>
#include <cstring>

#include "harness/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace prism;

  bool telemetry = false;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }

  std::printf("PRISM quickstart: high-priority overlay flow latency\n");
  std::printf("(1 Kpps probe; background = 300 Kpps low-priority UDP)\n\n");

  stats::Table table({"configuration", "p50 (us)", "mean (us)", "p99 (us)",
                      "rx-cpu util"});

  std::string softnet_stat;
  telemetry::LatencyBreakdown breakdown;
  auto row = [&](const char* label, kernel::NapiMode mode, bool busy,
                 bool instrument = false) {
    harness::PriorityScenarioConfig cfg;
    cfg.mode = mode;
    cfg.busy = busy;
    cfg.duration = sim::milliseconds(300);
    if (instrument) {
      cfg.collect_telemetry = telemetry;
      if (trace_out != nullptr) cfg.trace_out = trace_out;
    }
    const auto r = harness::run_priority_scenario(cfg);
    if (instrument && telemetry) softnet_stat = r.server_softnet_stat;
    if (instrument) breakdown = r.server_latency;
    const auto s = stats::summarize(r.latency);
    table.add_row({label,
                   stats::Table::cell(static_cast<double>(s.p50_ns) / 1e3),
                   stats::Table::cell(s.mean_ns / 1e3),
                   stats::Table::cell(static_cast<double>(s.p99_ns) / 1e3),
                   stats::Table::cell(r.rx_cpu_utilization * 100.0) + "%"});
  };

  row("idle   / vanilla", kernel::NapiMode::kVanilla, false);
  row("busy   / vanilla", kernel::NapiMode::kVanilla, true);
  row("busy   / prism-batch", kernel::NapiMode::kPrismBatch, true);
  row("busy   / prism-sync", kernel::NapiMode::kPrismSync, true,
      /*instrument=*/true);

  std::printf("%s\n", table.render().c_str());
  if (breakdown.enabled) {
    std::printf("where the time goes (busy / prism-sync, server side):\n%s\n",
                telemetry::render_latency_breakdown(breakdown).c_str());
  }
  if (telemetry) {
    std::printf("server softnet_stat (busy / prism-sync):\n%s\n",
                softnet_stat.c_str());
  }
  if (trace_out != nullptr) {
    std::printf("wrote Chrome trace of the busy/prism-sync run to %s\n",
                trace_out);
  }
  std::printf(
      "PRISM reduces the latency of high-priority flows under load by\n"
      "preempting low-priority batches (prism-batch) or running their\n"
      "pipeline stages to completion (prism-sync). See DESIGN.md.\n");
  return 0;
}
