// Inside the pipeline: reproduce the paper's eBPF-style traces.
//
// Runs a saturating overlay flow, then prints (a) the NAPI device polling
// order (the paper's Fig. 6) and (b) the per-stage latency breakdown of
// delivered packets, for vanilla vs PRISM-batch. This is the tooling view
// of WHY PRISM helps: watch veth processing slide forward in the
// schedule.
#include <cstdio>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "trace/packet_trace.h"
#include "trace/poll_trace.h"

namespace {

void run_mode(prism::kernel::NapiMode mode) {
  using namespace prism;
  harness::TestbedConfig tc;
  tc.mode = mode;
  harness::Testbed tb(tc);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  tb.server().priority_db().add(srv.ip(), 11111);
  tb.client().priority_db().add(cli.ip(), 20000);

  apps::SockperfServer server(tb.sim(), {&tb.server(), &srv,
                                         &tb.server().cpu(1), 11111});
  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.base_src_port = 20000;
  cc.dst_ip = srv.ip();
  cc.dst_port = 11111;
  cc.rate_pps = 350'000;  // loaded but below capacity
  cc.burst = 64;
  cc.stop_at = sim::milliseconds(8);
  apps::SockperfClient client(tb.sim(), cc);
  client.start();

  trace::PollTrace polls;
  trace::PacketTrace packets;
  tb.sim().schedule_at(sim::milliseconds(4), [&] {
    tb.server().set_poll_trace(tb.server().default_rx_cpu(), &polls);
    tb.server().deliverer().set_packet_trace(&packets);
  });
  tb.sim().run_until(sim::milliseconds(6));
  tb.server().set_poll_trace(tb.server().default_rx_cpu(), nullptr);
  tb.server().deliverer().set_packet_trace(nullptr);
  tb.sim().run();

  std::printf("--- %s ---\n", kernel::to_string(mode));
  std::printf("%s\n", polls.render(9).c_str());
  std::printf("%s\n", packets.render_breakdown().c_str());
}

}  // namespace

int main() {
  std::printf(
      "NAPI poll order and per-stage latency, traced at the server\n"
      "(compare with the paper's Fig. 6).\n\n");
  run_mode(prism::kernel::NapiMode::kVanilla);
  run_mode(prism::kernel::NapiMode::kPrismBatch);
  return 0;
}
