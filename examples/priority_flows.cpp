// Runtime flow prioritization — the paper's dynamic-policy story
// (§IV-A): PRISM is a mechanism; which flows are high priority is decided
// by the user at runtime through the proc interface, without restarting
// anything.
//
// A latency-sensitive service shares a busy server with 300 Kpps of bulk
// traffic. Phase 1: the service is not in the priority database and
// suffers like any other flow. Phase 2 (marked at runtime with the
// equivalent of `echo "add <ip> <port>" > /proc/prism/priority`): its
// packets preempt the bulk batches.
#include <cstdio>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "stats/summary.h"
#include "stats/table.h"

int main() {
  using namespace prism;

  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismBatch;
  harness::Testbed tb(tc);

  auto& service_srv = tb.add_server_container("service");
  auto& service_cli = tb.add_client_container("service-cli");
  auto& bulk_srv = tb.add_server_container("bulk");
  auto& bulk_cli = tb.add_client_container("bulk-cli");

  apps::SockperfServer service(tb.sim(), {&tb.server(), &service_srv,
                                          &tb.server().cpu(1), 11111});
  apps::SockperfServer bulk_sink(tb.sim(), {&tb.server(), &bulk_srv,
                                            &tb.server().cpu(2), 11112});

  // Bulk: 300 Kpps for the whole run.
  apps::SockperfClient::Config bulk_cfg;
  bulk_cfg.host = &tb.client();
  bulk_cfg.ns = &bulk_cli;
  bulk_cfg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bulk_cfg.base_src_port = 21000;
  bulk_cfg.dst_ip = bulk_srv.ip();
  bulk_cfg.dst_port = 11112;
  bulk_cfg.rate_pps = 300'000;
  bulk_cfg.burst = 64;
  bulk_cfg.stop_at = sim::milliseconds(700);
  apps::SockperfClient bulk(tb.sim(), bulk_cfg);
  bulk.start();

  // The service probe, one client per measurement phase.
  auto probe_config = [&](sim::Time from, sim::Time to,
                          std::uint16_t port) {
    apps::SockperfClient::Config cfg;
    cfg.host = &tb.client();
    cfg.ns = &service_cli;
    cfg.cpus = {&tb.client().cpu(1)};
    cfg.base_src_port = port;
    cfg.dst_ip = service_srv.ip();
    cfg.dst_port = 11111;
    cfg.rate_pps = 1000;
    cfg.reply_every = 1;
    cfg.start_at = from;
    cfg.stop_at = to;
    return cfg;
  };
  apps::SockperfClient before(
      tb.sim(), probe_config(sim::milliseconds(50),
                             sim::milliseconds(300), 20000));
  apps::SockperfClient after(
      tb.sim(), probe_config(sim::milliseconds(400),
                             sim::milliseconds(650), 20001));
  before.start();
  after.start();

  // At t=350ms, the operator marks the service as high priority — the
  // simulated equivalent of writing to /proc/prism/priority.
  tb.sim().schedule_at(sim::milliseconds(350), [&] {
    char cmd[64];
    std::snprintf(cmd, sizeof(cmd), "add %s 11111",
                  service_srv.ip().to_string().c_str());
    tb.server().proc().write("prism/priority", cmd);
    std::snprintf(cmd, sizeof(cmd), "add %s 20001",
                  service_cli.ip().to_string().c_str());
    tb.client().proc().write("prism/priority", cmd);
    std::printf("[t=%.0f ms] service flow marked high-priority via proc\n",
                sim::to_ms(tb.sim().now()));
  });

  tb.sim().run_until(sim::milliseconds(700));

  stats::Table table({"phase", "p50 (us)", "mean (us)", "p99 (us)"});
  auto add = [&](const char* label, const stats::Histogram& h) {
    const auto s = stats::summarize(h);
    table.add_row({label,
                   stats::Table::cell(static_cast<double>(s.p50_ns) / 1e3),
                   stats::Table::cell(s.mean_ns / 1e3),
                   stats::Table::cell(static_cast<double>(s.p99_ns) /
                                      1e3)});
  };
  add("unprioritized (low)", before.latency());
  add("prioritized (high)", after.latency());
  std::printf("\nservice latency under 300 Kpps of bulk traffic:\n%s\n",
              table.render().c_str());
  std::printf("priority database entries on server: %s\n",
              tb.server().proc().read("prism/priority").c_str());
  return 0;
}
