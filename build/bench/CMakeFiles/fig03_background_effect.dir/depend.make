# Empty dependencies file for fig03_background_effect.
# This may be replaced when dependencies are built.
