file(REMOVE_RECURSE
  "CMakeFiles/fig03_background_effect.dir/fig03_background_effect.cpp.o"
  "CMakeFiles/fig03_background_effect.dir/fig03_background_effect.cpp.o.d"
  "fig03_background_effect"
  "fig03_background_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_background_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
