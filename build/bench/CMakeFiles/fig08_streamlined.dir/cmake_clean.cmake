file(REMOVE_RECURSE
  "CMakeFiles/fig08_streamlined.dir/fig08_streamlined.cpp.o"
  "CMakeFiles/fig08_streamlined.dir/fig08_streamlined.cpp.o.d"
  "fig08_streamlined"
  "fig08_streamlined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_streamlined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
