# Empty compiler generated dependencies file for fig08_streamlined.
# This may be replaced when dependencies are built.
