file(REMOVE_RECURSE
  "CMakeFiles/abl_batch_size.dir/abl_batch_size.cpp.o"
  "CMakeFiles/abl_batch_size.dir/abl_batch_size.cpp.o.d"
  "abl_batch_size"
  "abl_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
