# Empty dependencies file for abl_batch_size.
# This may be replaced when dependencies are built.
