# Empty dependencies file for fig12_memcached.
# This may be replaced when dependencies are built.
