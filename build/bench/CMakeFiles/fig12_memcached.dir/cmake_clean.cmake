file(REMOVE_RECURSE
  "CMakeFiles/fig12_memcached.dir/fig12_memcached.cpp.o"
  "CMakeFiles/fig12_memcached.dir/fig12_memcached.cpp.o.d"
  "fig12_memcached"
  "fig12_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
