file(REMOVE_RECURSE
  "CMakeFiles/fig06_poll_order.dir/fig06_poll_order.cpp.o"
  "CMakeFiles/fig06_poll_order.dir/fig06_poll_order.cpp.o.d"
  "fig06_poll_order"
  "fig06_poll_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_poll_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
