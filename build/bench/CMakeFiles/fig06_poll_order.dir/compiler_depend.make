# Empty compiler generated dependencies file for fig06_poll_order.
# This may be replaced when dependencies are built.
