file(REMOVE_RECURSE
  "CMakeFiles/abl_stage_count.dir/abl_stage_count.cpp.o"
  "CMakeFiles/abl_stage_count.dir/abl_stage_count.cpp.o.d"
  "abl_stage_count"
  "abl_stage_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stage_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
