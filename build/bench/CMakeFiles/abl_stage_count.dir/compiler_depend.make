# Empty compiler generated dependencies file for abl_stage_count.
# This may be replaced when dependencies are built.
