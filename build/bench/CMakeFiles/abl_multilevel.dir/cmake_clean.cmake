file(REMOVE_RECURSE
  "CMakeFiles/abl_multilevel.dir/abl_multilevel.cpp.o"
  "CMakeFiles/abl_multilevel.dir/abl_multilevel.cpp.o.d"
  "abl_multilevel"
  "abl_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
