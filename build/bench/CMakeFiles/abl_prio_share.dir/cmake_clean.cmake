file(REMOVE_RECURSE
  "CMakeFiles/abl_prio_share.dir/abl_prio_share.cpp.o"
  "CMakeFiles/abl_prio_share.dir/abl_prio_share.cpp.o.d"
  "abl_prio_share"
  "abl_prio_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prio_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
