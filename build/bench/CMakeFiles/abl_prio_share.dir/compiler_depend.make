# Empty compiler generated dependencies file for abl_prio_share.
# This may be replaced when dependencies are built.
