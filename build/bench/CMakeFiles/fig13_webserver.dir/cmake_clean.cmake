file(REMOVE_RECURSE
  "CMakeFiles/fig13_webserver.dir/fig13_webserver.cpp.o"
  "CMakeFiles/fig13_webserver.dir/fig13_webserver.cpp.o.d"
  "fig13_webserver"
  "fig13_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
