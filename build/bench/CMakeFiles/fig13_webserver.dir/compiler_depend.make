# Empty compiler generated dependencies file for fig13_webserver.
# This may be replaced when dependencies are built.
