file(REMOVE_RECURSE
  "CMakeFiles/abl_napi_budget.dir/abl_napi_budget.cpp.o"
  "CMakeFiles/abl_napi_budget.dir/abl_napi_budget.cpp.o.d"
  "abl_napi_budget"
  "abl_napi_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_napi_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
