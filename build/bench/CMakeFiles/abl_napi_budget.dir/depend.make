# Empty dependencies file for abl_napi_budget.
# This may be replaced when dependencies are built.
