# Empty compiler generated dependencies file for fig10_priority_host.
# This may be replaced when dependencies are built.
