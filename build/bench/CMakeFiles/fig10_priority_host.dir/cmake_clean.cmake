file(REMOVE_RECURSE
  "CMakeFiles/fig10_priority_host.dir/fig10_priority_host.cpp.o"
  "CMakeFiles/fig10_priority_host.dir/fig10_priority_host.cpp.o.d"
  "fig10_priority_host"
  "fig10_priority_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_priority_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
