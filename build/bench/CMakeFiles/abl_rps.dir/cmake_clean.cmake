file(REMOVE_RECURSE
  "CMakeFiles/abl_rps.dir/abl_rps.cpp.o"
  "CMakeFiles/abl_rps.dir/abl_rps.cpp.o.d"
  "abl_rps"
  "abl_rps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
