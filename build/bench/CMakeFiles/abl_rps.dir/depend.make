# Empty dependencies file for abl_rps.
# This may be replaced when dependencies are built.
