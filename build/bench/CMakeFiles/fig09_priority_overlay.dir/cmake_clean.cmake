file(REMOVE_RECURSE
  "CMakeFiles/fig09_priority_overlay.dir/fig09_priority_overlay.cpp.o"
  "CMakeFiles/fig09_priority_overlay.dir/fig09_priority_overlay.cpp.o.d"
  "fig09_priority_overlay"
  "fig09_priority_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_priority_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
