
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/http_server.cpp" "src/CMakeFiles/prism.dir/apps/http_server.cpp.o" "gcc" "src/CMakeFiles/prism.dir/apps/http_server.cpp.o.d"
  "/root/repo/src/apps/memaslap.cpp" "src/CMakeFiles/prism.dir/apps/memaslap.cpp.o" "gcc" "src/CMakeFiles/prism.dir/apps/memaslap.cpp.o.d"
  "/root/repo/src/apps/memcached.cpp" "src/CMakeFiles/prism.dir/apps/memcached.cpp.o" "gcc" "src/CMakeFiles/prism.dir/apps/memcached.cpp.o.d"
  "/root/repo/src/apps/payload.cpp" "src/CMakeFiles/prism.dir/apps/payload.cpp.o" "gcc" "src/CMakeFiles/prism.dir/apps/payload.cpp.o.d"
  "/root/repo/src/apps/sockperf.cpp" "src/CMakeFiles/prism.dir/apps/sockperf.cpp.o" "gcc" "src/CMakeFiles/prism.dir/apps/sockperf.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/prism.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/prism.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/testbed.cpp" "src/CMakeFiles/prism.dir/harness/testbed.cpp.o" "gcc" "src/CMakeFiles/prism.dir/harness/testbed.cpp.o.d"
  "/root/repo/src/kernel/cost_model.cpp" "src/CMakeFiles/prism.dir/kernel/cost_model.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/cost_model.cpp.o.d"
  "/root/repo/src/kernel/cpu.cpp" "src/CMakeFiles/prism.dir/kernel/cpu.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/cpu.cpp.o.d"
  "/root/repo/src/kernel/host.cpp" "src/CMakeFiles/prism.dir/kernel/host.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/host.cpp.o.d"
  "/root/repo/src/kernel/napi.cpp" "src/CMakeFiles/prism.dir/kernel/napi.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/napi.cpp.o.d"
  "/root/repo/src/kernel/net_rx_engine.cpp" "src/CMakeFiles/prism.dir/kernel/net_rx_engine.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/net_rx_engine.cpp.o.d"
  "/root/repo/src/kernel/nic_napi.cpp" "src/CMakeFiles/prism.dir/kernel/nic_napi.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/nic_napi.cpp.o.d"
  "/root/repo/src/kernel/protocol.cpp" "src/CMakeFiles/prism.dir/kernel/protocol.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/protocol.cpp.o.d"
  "/root/repo/src/kernel/skb.cpp" "src/CMakeFiles/prism.dir/kernel/skb.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/skb.cpp.o.d"
  "/root/repo/src/kernel/socket.cpp" "src/CMakeFiles/prism.dir/kernel/socket.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/socket.cpp.o.d"
  "/root/repo/src/kernel/softnet.cpp" "src/CMakeFiles/prism.dir/kernel/softnet.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/softnet.cpp.o.d"
  "/root/repo/src/kernel/tcp.cpp" "src/CMakeFiles/prism.dir/kernel/tcp.cpp.o" "gcc" "src/CMakeFiles/prism.dir/kernel/tcp.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/prism.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/CMakeFiles/prism.dir/net/flow.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/flow.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/prism.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/CMakeFiles/prism.dir/net/ip.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/ip.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/prism.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/prism.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/prism.dir/net/packet.cpp.o.d"
  "/root/repo/src/nic/nic.cpp" "src/CMakeFiles/prism.dir/nic/nic.cpp.o" "gcc" "src/CMakeFiles/prism.dir/nic/nic.cpp.o.d"
  "/root/repo/src/nic/wire.cpp" "src/CMakeFiles/prism.dir/nic/wire.cpp.o" "gcc" "src/CMakeFiles/prism.dir/nic/wire.cpp.o.d"
  "/root/repo/src/overlay/bridge.cpp" "src/CMakeFiles/prism.dir/overlay/bridge.cpp.o" "gcc" "src/CMakeFiles/prism.dir/overlay/bridge.cpp.o.d"
  "/root/repo/src/overlay/netns.cpp" "src/CMakeFiles/prism.dir/overlay/netns.cpp.o" "gcc" "src/CMakeFiles/prism.dir/overlay/netns.cpp.o.d"
  "/root/repo/src/overlay/overlay_network.cpp" "src/CMakeFiles/prism.dir/overlay/overlay_network.cpp.o" "gcc" "src/CMakeFiles/prism.dir/overlay/overlay_network.cpp.o.d"
  "/root/repo/src/prism/priority_db.cpp" "src/CMakeFiles/prism.dir/prism/priority_db.cpp.o" "gcc" "src/CMakeFiles/prism.dir/prism/priority_db.cpp.o.d"
  "/root/repo/src/prism/proc_interface.cpp" "src/CMakeFiles/prism.dir/prism/proc_interface.cpp.o" "gcc" "src/CMakeFiles/prism.dir/prism/proc_interface.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/prism.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/prism.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/prism.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/prism.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/prism.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/prism.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/prism.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/prism.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/cpu_accounting.cpp" "src/CMakeFiles/prism.dir/stats/cpu_accounting.cpp.o" "gcc" "src/CMakeFiles/prism.dir/stats/cpu_accounting.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/prism.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/prism.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/prism.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/prism.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/prism.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/prism.dir/stats/table.cpp.o.d"
  "/root/repo/src/trace/packet_trace.cpp" "src/CMakeFiles/prism.dir/trace/packet_trace.cpp.o" "gcc" "src/CMakeFiles/prism.dir/trace/packet_trace.cpp.o.d"
  "/root/repo/src/trace/poll_trace.cpp" "src/CMakeFiles/prism.dir/trace/poll_trace.cpp.o" "gcc" "src/CMakeFiles/prism.dir/trace/poll_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
