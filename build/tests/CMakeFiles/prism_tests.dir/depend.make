# Empty dependencies file for prism_tests.
# This may be replaced when dependencies are built.
