
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/http_test.cpp" "tests/CMakeFiles/prism_tests.dir/apps/http_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/apps/http_test.cpp.o.d"
  "/root/repo/tests/apps/memcached_test.cpp" "tests/CMakeFiles/prism_tests.dir/apps/memcached_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/apps/memcached_test.cpp.o.d"
  "/root/repo/tests/apps/payload_test.cpp" "tests/CMakeFiles/prism_tests.dir/apps/payload_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/apps/payload_test.cpp.o.d"
  "/root/repo/tests/apps/sockperf_test.cpp" "tests/CMakeFiles/prism_tests.dir/apps/sockperf_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/apps/sockperf_test.cpp.o.d"
  "/root/repo/tests/harness/scenario_test.cpp" "tests/CMakeFiles/prism_tests.dir/harness/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/harness/scenario_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/prism_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/kernel/cpu_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/cpu_test.cpp.o.d"
  "/root/repo/tests/kernel/engine_property_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/engine_property_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/engine_property_test.cpp.o.d"
  "/root/repo/tests/kernel/host_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/host_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/host_test.cpp.o.d"
  "/root/repo/tests/kernel/multilevel_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/multilevel_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/multilevel_test.cpp.o.d"
  "/root/repo/tests/kernel/napi_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/napi_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/napi_test.cpp.o.d"
  "/root/repo/tests/kernel/net_rx_engine_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/net_rx_engine_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/net_rx_engine_test.cpp.o.d"
  "/root/repo/tests/kernel/rps_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/rps_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/rps_test.cpp.o.d"
  "/root/repo/tests/kernel/socket_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/socket_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/socket_test.cpp.o.d"
  "/root/repo/tests/kernel/stage_transition_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/stage_transition_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/stage_transition_test.cpp.o.d"
  "/root/repo/tests/kernel/tcp_property_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/tcp_property_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/tcp_property_test.cpp.o.d"
  "/root/repo/tests/kernel/tcp_test.cpp" "tests/CMakeFiles/prism_tests.dir/kernel/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/kernel/tcp_test.cpp.o.d"
  "/root/repo/tests/net/checksum_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/checksum_test.cpp.o.d"
  "/root/repo/tests/net/codec_property_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/codec_property_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/codec_property_test.cpp.o.d"
  "/root/repo/tests/net/flow_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/flow_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/flow_test.cpp.o.d"
  "/root/repo/tests/net/headers_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/headers_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/headers_test.cpp.o.d"
  "/root/repo/tests/net/ip_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/ip_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/ip_test.cpp.o.d"
  "/root/repo/tests/net/mac_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/mac_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/mac_test.cpp.o.d"
  "/root/repo/tests/net/packet_test.cpp" "tests/CMakeFiles/prism_tests.dir/net/packet_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/net/packet_test.cpp.o.d"
  "/root/repo/tests/nic/nic_test.cpp" "tests/CMakeFiles/prism_tests.dir/nic/nic_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/nic/nic_test.cpp.o.d"
  "/root/repo/tests/nic/wire_test.cpp" "tests/CMakeFiles/prism_tests.dir/nic/wire_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/nic/wire_test.cpp.o.d"
  "/root/repo/tests/overlay/overlay_test.cpp" "tests/CMakeFiles/prism_tests.dir/overlay/overlay_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/overlay/overlay_test.cpp.o.d"
  "/root/repo/tests/prism/priority_db_test.cpp" "tests/CMakeFiles/prism_tests.dir/prism/priority_db_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/prism/priority_db_test.cpp.o.d"
  "/root/repo/tests/prism/proc_interface_test.cpp" "tests/CMakeFiles/prism_tests.dir/prism/proc_interface_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/prism/proc_interface_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/prism_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/prism_tests.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/prism_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/stats/cdf_test.cpp" "tests/CMakeFiles/prism_tests.dir/stats/cdf_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/stats/cdf_test.cpp.o.d"
  "/root/repo/tests/stats/cpu_accounting_test.cpp" "tests/CMakeFiles/prism_tests.dir/stats/cpu_accounting_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/stats/cpu_accounting_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/prism_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/prism_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/table_test.cpp" "tests/CMakeFiles/prism_tests.dir/stats/table_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/stats/table_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/prism_tests.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/prism_tests.dir/trace/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prism.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
