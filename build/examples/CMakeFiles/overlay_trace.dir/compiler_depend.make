# Empty compiler generated dependencies file for overlay_trace.
# This may be replaced when dependencies are built.
