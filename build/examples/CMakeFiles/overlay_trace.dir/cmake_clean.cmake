file(REMOVE_RECURSE
  "CMakeFiles/overlay_trace.dir/overlay_trace.cpp.o"
  "CMakeFiles/overlay_trace.dir/overlay_trace.cpp.o.d"
  "overlay_trace"
  "overlay_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
