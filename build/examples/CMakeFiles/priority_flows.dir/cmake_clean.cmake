file(REMOVE_RECURSE
  "CMakeFiles/priority_flows.dir/priority_flows.cpp.o"
  "CMakeFiles/priority_flows.dir/priority_flows.cpp.o.d"
  "priority_flows"
  "priority_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
