# Empty compiler generated dependencies file for priority_flows.
# This may be replaced when dependencies are built.
