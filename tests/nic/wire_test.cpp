#include "nic/wire.h"

#include <gtest/gtest.h>

#include "nic/nic.h"
#include "sim/simulator.h"

namespace prism::nic {
namespace {

net::PacketBuf make_frame(std::size_t size) {
  std::vector<std::uint8_t> payload(size, 0xaa);
  return net::PacketBuf::with_headroom(0, payload);
}

struct Rig {
  sim::Simulator sim;
  Nic a{sim, 1, 64};
  Nic b{sim, 1, 64};
  Wire wire{sim, 100.0, sim::nanoseconds(500)};
  Rig() {
    wire.attach(a, b);
    a.attach_wire(wire);
    b.attach_wire(wire);
  }
};

TEST(WireTest, DeliversToOppositeEndpoint) {
  Rig r;
  r.a.transmit(make_frame(100));
  r.sim.run();
  EXPECT_EQ(r.b.rx_frames(), 1u);
  EXPECT_EQ(r.a.rx_frames(), 0u);
  EXPECT_EQ(r.wire.frames_delivered(), 1u);
}

TEST(WireTest, DeliveryDelayedBySerializationAndPropagation) {
  Rig r;
  r.a.transmit(make_frame(1480));
  r.sim.run();
  // (1480 + 20 preamble/IFG) * 8 bits / 100 Gbps = 120 ns, plus 500 ns
  // propagation.
  EXPECT_EQ(r.sim.now(), 120 + 500);
}

TEST(WireTest, BackToBackFramesSerializeSequentially) {
  Rig r;
  for (int i = 0; i < 10; ++i) r.a.transmit(make_frame(1480));
  r.sim.run();
  EXPECT_EQ(r.b.rx_frames(), 10u);
  // Last frame leaves after 10 serialization slots.
  EXPECT_EQ(r.sim.now(), 10 * 120 + 500);
}

TEST(WireTest, DirectionsAreIndependent) {
  Rig r;
  r.a.transmit(make_frame(1480));
  r.b.transmit(make_frame(1480));
  r.sim.run();
  EXPECT_EQ(r.a.rx_frames(), 1u);
  EXPECT_EQ(r.b.rx_frames(), 1u);
  // Both arrive at the single-frame latency: no cross-direction queueing.
  EXPECT_EQ(r.sim.now(), 120 + 500);
}

TEST(WireTest, TransmitWithoutAttachThrows) {
  sim::Simulator sim;
  Nic n(sim, 1, 64);
  EXPECT_THROW(n.transmit(make_frame(64)), std::logic_error);
}

TEST(WireTest, DoubleAttachThrows) {
  Rig r;
  Nic c(r.sim, 1, 64);
  EXPECT_THROW(r.wire.attach(r.a, c), std::logic_error);
}

TEST(WireTest, ForeignNicRejected) {
  Rig r;
  Nic c(r.sim, 1, 64);
  c.attach_wire(r.wire);
  EXPECT_THROW(c.transmit(make_frame(64)), std::logic_error);
}

TEST(WireTest, BadBandwidthRejected) {
  sim::Simulator sim;
  EXPECT_THROW(Wire(sim, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace prism::nic
