#include "nic/nic.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "sim/simulator.h"

namespace prism::nic {
namespace {

net::PacketBuf udp_frame(std::uint16_t src_port) {
  net::FrameSpec spec;
  spec.src_mac = net::MacAddr::make(1);
  spec.dst_mac = net::MacAddr::make(2);
  spec.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  spec.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  spec.src_port = src_port;
  spec.dst_port = 9;
  const std::uint8_t payload[32] = {};
  return net::build_udp_frame(spec, payload);
}

TEST(RxQueueTest, ImmediateIrqWithoutCoalescing) {
  sim::Simulator sim;
  RxQueue q(sim, 16);
  int irqs = 0;
  q.set_irq_handler([&] { ++irqs; });
  q.push(udp_frame(1));
  EXPECT_EQ(irqs, 1);
  // IRQ masked until enable_irq: further frames do not fire.
  q.push(udp_frame(2));
  EXPECT_EQ(irqs, 1);
  EXPECT_EQ(q.size(), 2u);
}

TEST(RxQueueTest, EnableIrqRefiresWhenPending) {
  sim::Simulator sim;
  RxQueue q(sim, 16);
  int irqs = 0;
  q.set_irq_handler([&] { ++irqs; });
  q.push(udp_frame(1));
  q.pop();
  q.push(udp_frame(2));  // masked: no fire
  EXPECT_EQ(irqs, 1);
  q.enable_irq();  // pending frame -> immediate refire
  EXPECT_EQ(irqs, 2);
}

TEST(RxQueueTest, EnableIrqIdleDoesNotFire) {
  sim::Simulator sim;
  RxQueue q(sim, 16);
  int irqs = 0;
  q.set_irq_handler([&] { ++irqs; });
  q.push(udp_frame(1));
  q.pop();
  q.enable_irq();
  EXPECT_EQ(irqs, 1);
}

TEST(RxQueueTest, OverflowDropsAndCounts) {
  sim::Simulator sim;
  RxQueue q(sim, 2);
  q.push(udp_frame(1));
  q.push(udp_frame(2));
  q.push(udp_frame(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.frames_dropped(), 1u);
  EXPECT_EQ(q.frames_received(), 2u);
}

TEST(RxQueueTest, PopReturnsFifoWithTimestamps) {
  sim::Simulator sim;
  RxQueue q(sim, 16);
  q.push(udp_frame(1));
  sim.schedule(100, [&] { q.push(udp_frame(2)); });
  sim.run();
  auto first = q.pop();
  auto second = q.pop();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->arrived, 0);
  EXPECT_EQ(second->arrived, 100);
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------- coalescing

TEST(RxQueueTest, CoalescingFiresImmediatelyAfterQuietPeriod) {
  sim::Simulator sim;
  RxQueue q(sim, 64, CoalesceConfig{sim::microseconds(50), 64});
  int irqs = 0;
  q.set_irq_handler([&] { ++irqs; });
  // First ever frame: line has been quiet forever -> immediate.
  q.push(udp_frame(1));
  EXPECT_EQ(irqs, 1);
}

TEST(RxQueueTest, CoalescingModeratesCloseArrivals) {
  sim::Simulator sim;
  RxQueue q(sim, 64, CoalesceConfig{sim::microseconds(50), 64});
  std::vector<sim::Time> fires;
  q.set_irq_handler([&] { fires.push_back(sim.now()); });
  q.push(udp_frame(1));  // fires at t=0
  q.pop();
  q.enable_irq();
  sim.schedule(sim::microseconds(10), [&] { q.push(udp_frame(2)); });
  sim.run();
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], 0);
  // Second fire deferred to the end of the moderation window.
  EXPECT_EQ(fires[1], sim::microseconds(50));
}

TEST(RxQueueTest, FrameThresholdOverridesModeration) {
  sim::Simulator sim;
  RxQueue q(sim, 128, CoalesceConfig{sim::microseconds(50), 4});
  std::vector<sim::Time> fires;
  q.set_irq_handler([&] { fires.push_back(sim.now()); });
  q.push(udp_frame(1));  // immediate (quiet line)
  while (q.pop()) {
  }
  q.enable_irq();
  // Push 4 frames shortly after: the 4th reaches the frame threshold.
  sim.schedule(sim::microseconds(5), [&] {
    for (int i = 0; i < 4; ++i) q.push(udp_frame(2));
  });
  sim.run_until(sim::microseconds(6));
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[1], sim::microseconds(5));
}

TEST(RxQueueTest, StaleCoalesceTimerIgnored) {
  sim::Simulator sim;
  RxQueue q(sim, 64, CoalesceConfig{sim::microseconds(50), 64});
  int irqs = 0;
  q.set_irq_handler([&] { ++irqs; });
  q.push(udp_frame(1));  // fire 1 at t=0
  q.pop();
  q.enable_irq();
  sim.schedule(sim::microseconds(10), [&] {
    q.push(udp_frame(2));  // arms timer for t=50us
  });
  // Drain before the timer fires: no spurious IRQ.
  sim.schedule(sim::microseconds(20), [&] { q.pop(); });
  sim.run();
  EXPECT_EQ(irqs, 1);
}

TEST(RxQueueTest, BadCoalesceFramesRejected) {
  sim::Simulator sim;
  EXPECT_THROW(RxQueue(sim, 16, CoalesceConfig{0, 0}),
               std::invalid_argument);
}

// ------------------------------------------------------------- RSS

TEST(NicTest, SingleQueueTakesEverything) {
  sim::Simulator sim;
  Nic nic(sim, 1, 64);
  for (std::uint16_t p = 1; p <= 20; ++p) nic.receive(udp_frame(p));
  EXPECT_EQ(nic.queue(0).size(), 20u);
}

TEST(NicTest, RssSpreadsFlowsAcrossQueues) {
  sim::Simulator sim;
  Nic nic(sim, 4, 256);
  for (std::uint16_t p = 1; p <= 200; ++p) nic.receive(udp_frame(p));
  int nonempty = 0;
  for (int i = 0; i < 4; ++i) {
    if (nic.queue(i).size() > 0) ++nonempty;
  }
  EXPECT_GE(nonempty, 3);  // 200 distinct flows should hit most queues
}

TEST(NicTest, SameFlowSticksToOneQueue) {
  sim::Simulator sim;
  Nic nic(sim, 4, 256);
  for (int i = 0; i < 50; ++i) nic.receive(udp_frame(7));
  int with_frames = 0;
  for (int i = 0; i < 4; ++i) {
    if (nic.queue(i).size() > 0) {
      ++with_frames;
      EXPECT_EQ(nic.queue(i).size(), 50u);
    }
  }
  EXPECT_EQ(with_frames, 1);
}

TEST(NicTest, DropCountAggregatesQueues) {
  sim::Simulator sim;
  Nic nic(sim, 1, 4);
  for (int i = 0; i < 10; ++i) nic.receive(udp_frame(3));
  EXPECT_EQ(nic.rx_dropped(), 6u);
}

TEST(NicTest, InvalidQueueCountRejected) {
  sim::Simulator sim;
  EXPECT_THROW(Nic(sim, 0, 64), std::invalid_argument);
}

}  // namespace
}  // namespace prism::nic
