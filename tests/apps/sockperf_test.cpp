#include "apps/sockperf.h"

#include <gtest/gtest.h>

#include "harness/testbed.h"

namespace prism::apps {
namespace {

struct Rig {
  harness::Testbed tb;
  overlay::Netns& server_ns = tb.add_server_container("srv");
  overlay::Netns& client_ns = tb.add_client_container("cli");
  SockperfServer server{
      tb.sim(), {&tb.server(), &server_ns, &tb.server().cpu(1), 11111}};

  SockperfClient::Config client_config() {
    SockperfClient::Config cfg;
    cfg.host = &tb.client();
    cfg.ns = &client_ns;
    cfg.cpus = {&tb.client().cpu(1)};
    cfg.dst_ip = server_ns.ip();
    cfg.dst_port = 11111;
    cfg.stop_at = sim::milliseconds(20);
    return cfg;
  }
};

TEST(SockperfTest, PingPongMeasuresLatency) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 1000;
  cfg.reply_every = 1;
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(30));
  EXPECT_GT(client.sent(), 15u);
  EXPECT_EQ(client.replies(), client.sent());
  EXPECT_EQ(client.latency().count(), client.replies());
  EXPECT_EQ(rig.server.echoed(), client.sent());
  // One-way latency should be tens of microseconds on an idle testbed.
  EXPECT_GT(client.latency().percentile(0.5), sim::microseconds(5));
  EXPECT_LT(client.latency().percentile(0.5), sim::microseconds(200));
}

TEST(SockperfTest, ThroughputModeNeverReplies) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 50'000;
  cfg.reply_every = 0;
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(30));
  EXPECT_GT(client.sent(), 500u);
  EXPECT_EQ(client.replies(), 0u);
  EXPECT_EQ(rig.server.echoed(), 0u);
  EXPECT_EQ(rig.server.received(), client.sent());
}

TEST(SockperfTest, SampledRepliesEveryN) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 20'000;
  cfg.reply_every = 100;
  cfg.jitter = 0;
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(40));
  EXPECT_GT(client.sent(), 300u);
  const auto expected =
      (client.sent() + 99) / 100;  // seq 0, 100, 200, ...
  EXPECT_EQ(client.replies(), expected);
}

TEST(SockperfTest, BurstSendsArriveTogether) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 10'000;
  cfg.burst = 8;
  cfg.jitter = 0;
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(10));
  // 10 Kpps in bursts of 8 -> a burst every 800 us.
  EXPECT_GE(client.sent(), 96u);
  EXPECT_EQ(client.sent() % 8, 0u);
  EXPECT_EQ(rig.server.received(), client.sent());
}

TEST(SockperfTest, RateIsApproximatelyRespected) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 100'000;
  cfg.stop_at = sim::milliseconds(50);
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(60));
  const double achieved = static_cast<double>(client.sent()) / 0.050;
  EXPECT_NEAR(achieved, 100'000, 10'000);
}

TEST(SockperfTest, MultiThreadSplitsRate) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.cpus = {&rig.tb.client().cpu(1), &rig.tb.client().cpu(2)};
  cfg.rate_pps = 100'000;
  cfg.stop_at = sim::milliseconds(20);
  SockperfClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(30));
  EXPECT_NEAR(static_cast<double>(client.sent()) / 0.020, 100'000,
              10'000);
  // Two flows: two source ports reach the server.
  EXPECT_EQ(rig.server.received(), client.sent());
}

TEST(SockperfTest, InvalidConfigRejected) {
  Rig rig;
  auto cfg = rig.client_config();
  cfg.rate_pps = 0;
  EXPECT_THROW(SockperfClient(rig.tb.sim(), cfg),
               std::invalid_argument);
  cfg = rig.client_config();
  cfg.payload_size = 4;
  EXPECT_THROW(SockperfClient(rig.tb.sim(), cfg),
               std::invalid_argument);
  cfg = rig.client_config();
  cfg.burst = 0;
  EXPECT_THROW(SockperfClient(rig.tb.sim(), cfg),
               std::invalid_argument);
}

TEST(TcpSenderTest, BulkMessagesDelivered) {
  harness::Testbed tb;
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sender_ep = tb.client().tcp_create(cli, srv.ip(), 41000, 5201);
  auto& sink_ep = tb.server().tcp_create(srv, cli.ip(), 5201, 41000);
  TcpSinkServer sink({&sink_ep, &tb.server().cpu(1), &tb.server().cost()});

  SockperfTcpSender::Config cfg;
  cfg.endpoint = &sender_ep;
  cfg.cpu = &tb.client().cpu(2);
  cfg.rate_mps = 2000;
  cfg.message_size = 32 * 1024;
  cfg.stop_at = sim::milliseconds(20);
  SockperfTcpSender sender(tb.sim(), cfg);
  sender.start();
  tb.sim().run_until(sim::milliseconds(40));
  EXPECT_GE(sender.sent_messages(), 30u);
  EXPECT_EQ(sink.bytes_received(),
            sender.sent_messages() * cfg.message_size);
  // GRO merged the TSO trains at the server NIC.
  EXPECT_GT(tb.server().nic_napi(0).gro_merged(), 100u);
}

TEST(TcpSenderTest, BackpressureSkipsTicks) {
  harness::Testbed tb;
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sender_ep = tb.client().tcp_create(cli, srv.ip(), 41000, 5201);
  tb.server().tcp_create(srv, cli.ip(), 5201, 41000);
  // No sink app; receiver still ACKs in-kernel, but we throttle with a
  // tiny unacked budget to force skips.
  SockperfTcpSender::Config cfg;
  cfg.endpoint = &sender_ep;
  cfg.cpu = &tb.client().cpu(2);
  cfg.rate_mps = 50'000;
  cfg.message_size = 64 * 1024;
  cfg.max_unacked = 64 * 1024;
  cfg.stop_at = sim::milliseconds(10);
  SockperfTcpSender sender(tb.sim(), cfg);
  sender.start();
  tb.sim().run_until(sim::milliseconds(20));
  EXPECT_GT(sender.skipped(), 0u);
}

}  // namespace
}  // namespace prism::apps
