#include "apps/payload.h"

#include <gtest/gtest.h>

namespace prism::apps {
namespace {

TEST(ProbeTest, RoundTrip) {
  Probe p{0x123456789abcdef0ULL, 987654321, true};
  const auto bytes = encode_probe(p, 64);
  EXPECT_EQ(bytes.size(), 64u);
  const auto decoded = decode_probe(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, p.seq);
  EXPECT_EQ(decoded->sent_at, p.sent_at);
  EXPECT_TRUE(decoded->reply);
}

TEST(ProbeTest, NoReplyFlag) {
  const auto bytes = encode_probe(Probe{1, 2, false}, kProbeSize);
  EXPECT_FALSE(decode_probe(bytes)->reply);
}

TEST(ProbeTest, TooSmallPayloadRejected) {
  EXPECT_THROW(encode_probe(Probe{}, kProbeSize - 1),
               std::invalid_argument);
}

TEST(ProbeTest, ShortBufferDecodesToNull) {
  std::vector<std::uint8_t> short_buf(kProbeSize - 1, 0);
  EXPECT_FALSE(decode_probe(short_buf).has_value());
}

TEST(FramerTest, SingleMessageRoundTrip) {
  MessageFramer framer;
  const std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  framer.push(MessageFramer::frame(body));
  const auto msg = framer.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, body);
  EXPECT_FALSE(framer.next().has_value());
}

TEST(FramerTest, HandlesFragmentedDelivery) {
  MessageFramer framer;
  const std::vector<std::uint8_t> body(1000, 0x7a);
  const auto framed = MessageFramer::frame(body);
  // Feed one byte at a time.
  for (std::size_t i = 0; i < framed.size(); ++i) {
    framer.push(std::span(&framed[i], 1));
    if (i + 1 < framed.size()) {
      EXPECT_FALSE(framer.next().has_value());
    }
  }
  const auto msg = framer.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, body);
}

TEST(FramerTest, HandlesCoalescedMessages) {
  MessageFramer framer;
  std::vector<std::uint8_t> stream;
  for (int i = 1; i <= 3; ++i) {
    const std::vector<std::uint8_t> body(static_cast<std::size_t>(i * 10),
                                         static_cast<std::uint8_t>(i));
    const auto framed = MessageFramer::frame(body);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  framer.push(stream);
  for (int i = 1; i <= 3; ++i) {
    const auto msg = framer.next();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->size(), static_cast<std::size_t>(i * 10));
  }
  EXPECT_FALSE(framer.next().has_value());
}

TEST(FramerTest, EmptyMessageSupported) {
  MessageFramer framer;
  framer.push(MessageFramer::frame({}));
  const auto msg = framer.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->empty());
}

}  // namespace
}  // namespace prism::apps
