#include "apps/memcached.h"

#include <gtest/gtest.h>

#include "apps/memaslap.h"
#include "harness/testbed.h"

namespace prism::apps {
namespace {

TEST(KvProtocolTest, RequestRoundTrip) {
  KvRequest req;
  req.probe = {42, 1000, false};
  req.op = KvOp::kSet;
  req.key = "hello-key";
  req.value = {9, 8, 7};
  const auto bytes = encode_kv_request(req);
  const auto decoded = decode_kv_request(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->probe.seq, 42u);
  EXPECT_EQ(decoded->op, KvOp::kSet);
  EXPECT_EQ(decoded->key, "hello-key");
  EXPECT_EQ(decoded->value, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(KvProtocolTest, ResponseRoundTrip) {
  KvResponse resp;
  resp.probe = {7, 500, false};
  resp.status = KvStatus::kHit;
  resp.value = std::vector<std::uint8_t>(1024, 0x3c);
  const auto bytes = encode_kv_response(resp);
  const auto decoded = decode_kv_response(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, KvStatus::kHit);
  EXPECT_EQ(decoded->value.size(), 1024u);
}

TEST(KvProtocolTest, TruncatedBuffersRejected) {
  KvRequest req;
  req.key = "k";
  const auto bytes = encode_kv_request(req);
  for (std::size_t len : {0u, 10u, 25u, 27u}) {
    EXPECT_FALSE(
        decode_kv_request(std::span(bytes.data(), len)).has_value())
        << len;
  }
}

struct McRig {
  harness::Testbed tb;
  overlay::Netns& server_ns = tb.add_server_container("memcached");
  overlay::Netns& client_ns = tb.add_client_container("memaslap");
  MemcachedServer server{
      tb.sim(),
      {&tb.server(), &server_ns, &tb.server().cpu(1), 11211}};
};

TEST(MemcachedServerTest, GetAfterPreload) {
  McRig rig;
  rig.server.preload(100, 64);
  EXPECT_EQ(rig.server.store_size(), 100u);

  auto& sock = rig.tb.client().udp_bind(rig.client_ns, 5000);
  KvRequest req;
  req.probe = {1, 0, false};
  req.op = KvOp::kGet;
  req.key = MemcachedServer::key_name(7);
  rig.tb.client().udp_send(rig.client_ns, rig.tb.client().cpu(1), 5000,
                           rig.server_ns.ip(), 11211,
                           encode_kv_request(req));
  rig.tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  const auto resp = decode_kv_response(sock.try_recv()->payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, KvStatus::kHit);
  EXPECT_EQ(resp->value.size(), 64u);
  EXPECT_EQ(rig.server.gets(), 1u);
}

TEST(MemcachedServerTest, MissForUnknownKey) {
  McRig rig;
  auto& sock = rig.tb.client().udp_bind(rig.client_ns, 5000);
  KvRequest req;
  req.op = KvOp::kGet;
  req.key = "nope";
  rig.tb.client().udp_send(rig.client_ns, rig.tb.client().cpu(1), 5000,
                           rig.server_ns.ip(), 11211,
                           encode_kv_request(req));
  rig.tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  EXPECT_EQ(decode_kv_response(sock.try_recv()->payload)->status,
            KvStatus::kMiss);
  EXPECT_EQ(rig.server.misses(), 1u);
}

TEST(MemcachedServerTest, SetThenGet) {
  McRig rig;
  auto& sock = rig.tb.client().udp_bind(rig.client_ns, 5000);
  KvRequest set;
  set.op = KvOp::kSet;
  set.key = "fresh";
  set.value = {1, 2, 3, 4};
  rig.tb.client().udp_send(rig.client_ns, rig.tb.client().cpu(1), 5000,
                           rig.server_ns.ip(), 11211,
                           encode_kv_request(set));
  rig.tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  EXPECT_EQ(decode_kv_response(sock.try_recv()->payload)->status,
            KvStatus::kStored);

  KvRequest get;
  get.op = KvOp::kGet;
  get.key = "fresh";
  rig.tb.client().udp_send(rig.client_ns, rig.tb.client().cpu(1), 5000,
                           rig.server_ns.ip(), 11211,
                           encode_kv_request(get));
  rig.tb.sim().run();
  ASSERT_EQ(sock.received(), 2u);  // cumulative: set-ack + get response
  const auto resp = decode_kv_response(sock.try_recv()->payload);
  EXPECT_EQ(resp->status, KvStatus::kHit);
  EXPECT_EQ(resp->value, set.value);
}

TEST(MemaslapTest, ClosedLoopCompletesOperations) {
  McRig rig;
  rig.server.preload(1000, 256);
  MemaslapClient::Config cfg;
  cfg.host = &rig.tb.client();
  cfg.ns = &rig.client_ns;
  cfg.cpu = &rig.tb.client().cpu(1);
  cfg.server_ip = rig.server_ns.ip();
  cfg.concurrency = 4;
  cfg.value_size = 256;
  cfg.stop_at = sim::milliseconds(20);
  MemaslapClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(25));
  EXPECT_GT(client.completed(), 100u);
  EXPECT_EQ(client.timeouts(), 0u);
  EXPECT_GT(client.gets(), client.sets());
  EXPECT_GT(client.ops_per_second(), 0.0);
  // Latency histogram is populated and sane.
  EXPECT_EQ(client.latency().count(), client.completed());
  EXPECT_GT(client.latency().percentile(0.5), sim::microseconds(10));
}

TEST(MemaslapTest, GetRatioApproximatelyHolds) {
  McRig rig;
  rig.server.preload(1000, 64);
  MemaslapClient::Config cfg;
  cfg.host = &rig.tb.client();
  cfg.ns = &rig.client_ns;
  cfg.cpu = &rig.tb.client().cpu(1);
  cfg.server_ip = rig.server_ns.ip();
  cfg.concurrency = 8;
  cfg.get_ratio = 0.5;
  cfg.value_size = 64;
  cfg.stop_at = sim::milliseconds(30);
  MemaslapClient client(rig.tb.sim(), cfg);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(35));
  const double total = static_cast<double>(client.gets() + client.sets());
  EXPECT_NEAR(static_cast<double>(client.gets()) / total, 0.5, 0.1);
}

}  // namespace
}  // namespace prism::apps
