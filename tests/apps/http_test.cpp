#include "apps/http_server.h"

#include <gtest/gtest.h>

#include "harness/testbed.h"

namespace prism::apps {
namespace {

struct Rig {
  harness::Testbed tb;
  overlay::Netns& server_ns = tb.add_server_container("nginx");
  overlay::Netns& client_ns = tb.add_client_container("wrk");
  kernel::TcpEndpoint& client_ep =
      tb.client().tcp_create(client_ns, server_ns.ip(), 40000, 80);
  kernel::TcpEndpoint& server_ep =
      tb.server().tcp_create(server_ns, client_ns.ip(), 80, 40000);

  HttpServer::Config server_config() {
    HttpServer::Config cfg;
    cfg.host = &tb.server();
    cfg.ns = &server_ns;
    cfg.cpu = &tb.server().cpu(1);
    cfg.connection = &server_ep;
    return cfg;
  }

  Wrk2Client::Config client_config() {
    Wrk2Client::Config cfg;
    cfg.host = &tb.client();
    cfg.ns = &client_ns;
    cfg.cpu = &tb.client().cpu(1);
    cfg.connection = &client_ep;
    cfg.stop_at = sim::milliseconds(20);
    return cfg;
  }
};

TEST(HttpTest, RequestsGetResponses) {
  Rig rig;
  HttpServer server(rig.server_config());
  auto cc = rig.client_config();
  cc.rate_rps = 2000;
  Wrk2Client client(rig.tb.sim(), cc);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(40));
  EXPECT_GT(client.sent(), 30u);
  EXPECT_EQ(client.completed(), client.sent());
  EXPECT_EQ(server.requests_served(), client.sent());
  EXPECT_GT(client.requests_per_second(), 0.0);
}

TEST(HttpTest, ResponsesPaddedToFileSize) {
  Rig rig;
  auto sc = rig.server_config();
  sc.response_size = 900;
  HttpServer server(sc);
  // Track delivered bytes on the client endpoint through the framer path:
  // a completed response implies a full 900-byte body arrived intact.
  auto cc = rig.client_config();
  cc.rate_rps = 500;
  Wrk2Client client(rig.tb.sim(), cc);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(40));
  EXPECT_GT(client.completed(), 5u);
}

TEST(HttpTest, LatencyMeasuredFromScheduledSend) {
  Rig rig;
  HttpServer server(rig.server_config());
  auto cc = rig.client_config();
  cc.rate_rps = 1000;
  Wrk2Client client(rig.tb.sim(), cc);
  client.start();
  rig.tb.sim().run_until(sim::milliseconds(40));
  ASSERT_GT(client.latency().count(), 0u);
  // Full HTTP round trip over the overlay: more than a bare wire RTT.
  EXPECT_GT(client.latency().min(), sim::microseconds(10));
  EXPECT_LT(client.latency().percentile(0.99), sim::milliseconds(2));
}

TEST(HttpTest, InvalidConfigsRejected) {
  Rig rig;
  auto sc = rig.server_config();
  sc.response_size = 4;
  EXPECT_THROW(HttpServer{sc}, std::invalid_argument);
  auto cc = rig.client_config();
  cc.rate_rps = 0;
  EXPECT_THROW(Wrk2Client(rig.tb.sim(), cc), std::invalid_argument);
  cc = rig.client_config();
  cc.request_size = 2;
  EXPECT_THROW(Wrk2Client(rig.tb.sim(), cc), std::invalid_argument);
}

}  // namespace
}  // namespace prism::apps
