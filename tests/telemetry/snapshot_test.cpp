#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace prism::telemetry {
namespace {

std::vector<std::string> split_columns(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> cols;
  std::string col;
  while (in >> col) cols.push_back(col);
  return cols;
}

TEST(SoftnetStatTest, RendersThirteenHexColumnsPerCpu) {
  std::vector<SoftnetRow> rows(2);
  rows[0] = SoftnetRow{0x12345, 0x1a, 0x7, 0x3, 0x40, 0};
  rows[1] = SoftnetRow{0, 0, 0, 0, 0, 1};
  const std::string text = render_softnet_stat(rows);

  std::istringstream in(text);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto cols = split_columns(line);
  ASSERT_EQ(cols.size(), 13u);  // kernel softnet_stat layout
  EXPECT_EQ(cols[0], "00012345");  // processed
  EXPECT_EQ(cols[1], "0000001a");  // dropped
  EXPECT_EQ(cols[2], "00000007");  // time_squeeze
  EXPECT_EQ(cols[9], "00000003");  // received_rps
  EXPECT_EQ(cols[11], "00000040");  // backlog_len
  EXPECT_EQ(cols[12], "00000000");  // cpu index

  ASSERT_TRUE(std::getline(in, line));
  cols = split_columns(line);
  ASSERT_EQ(cols.size(), 13u);
  EXPECT_EQ(cols[12], "00000001");
  EXPECT_FALSE(std::getline(in, line));  // exactly one row per CPU
}

TEST(SoftnetStatTest, EmptyRowsRenderEmpty) {
  EXPECT_TRUE(render_softnet_stat({}).empty());
}

TEST(NetDevTest, RendersHeaderAndDeviceRows) {
  std::vector<NetDevRow> rows;
  rows.push_back(NetDevRow{"eth0", 1000, 5, 2000});
  rows.push_back(NetDevRow{"br42", 900, 0, 0});
  const std::string text = render_net_dev(rows);

  std::istringstream in(text);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // banner line 1
  EXPECT_NE(line.find("Receive"), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));  // banner line 2
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("eth0:"), std::string::npos);
  auto cols = split_columns(line);
  ASSERT_EQ(cols.size(), 4u);  // "eth0:" rx drop tx
  EXPECT_EQ(cols[1], "1000");
  EXPECT_EQ(cols[2], "5");
  EXPECT_EQ(cols[3], "2000");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("br42:"), std::string::npos);
}

TEST(RegistryJsonTest, EmitsCountersAndGauges) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: counters read 0";
#endif
  Registry reg;
  reg.counter("nic.rx_frames").inc(123);
  reg.counter("cpu0.packets").inc(45);
  reg.gauge("nic.q0.ring_depth").set(17);
  reg.gauge("nic.q0.ring_depth").set(9);  // max stays 17

  const std::string json = registry_json(reg);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"nic.rx_frames\":123"), std::string::npos);
  EXPECT_NE(json.find("\"cpu0.packets\":45"), std::string::npos);
  EXPECT_NE(json.find("\"nic.q0.ring_depth\":{\"value\":9,\"max\":17}"),
            std::string::npos);
}

TEST(RegistryJsonTest, EmptyRegistryIsStillValidJson) {
  Registry reg;
  const std::string json = registry_json(reg);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_EQ(json, R"({"counters":{},"gauges":{}})");
}

TEST(RegistryJsonTest, EscapesAwkwardNames) {
  Registry reg;
  reg.counter("weird\"name\n").inc(1);
  const std::string json = registry_json(reg);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("weird\\\"name\\n"), std::string::npos);
}

}  // namespace
}  // namespace prism::telemetry
