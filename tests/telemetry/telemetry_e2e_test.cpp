// End-to-end reconciliation: after a two-flow run (high-priority probe
// flow + low-priority bulk flow), the telemetry registry, the
// softnet_stat rows, and the /proc files must agree with the components'
// own ground-truth accessors. This is the guard that the mirrored
// counters never drift from the counters they mirror.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "json_check.h"
#include "telemetry/snapshot.h"

namespace prism {
namespace {

class TelemetryE2eTest : public ::testing::Test {
 protected:
  void run(kernel::NapiMode mode) {
    harness::TestbedConfig tc;
    tc.mode = mode;
    tb_ = std::make_unique<harness::Testbed>(tc);
    auto& cli = tb_->add_client_container("cli");
    auto& srv_hi = tb_->add_server_container("srv-hi");
    auto& srv_bg = tb_->add_server_container("srv-bg");
    tb_->server().priority_db().add(srv_hi.ip(), 11111);

    hi_server_ = std::make_unique<apps::SockperfServer>(
        tb_->sim(),
        apps::SockperfServer::Config{&tb_->server(), &srv_hi,
                                     &tb_->server().cpu(1), 11111});
    bg_server_ = std::make_unique<apps::SockperfServer>(
        tb_->sim(),
        apps::SockperfServer::Config{&tb_->server(), &srv_bg,
                                     &tb_->server().cpu(2), 22222});

    apps::SockperfClient::Config hi;
    hi.host = &tb_->client();
    hi.ns = &cli;
    hi.cpus = {&tb_->client().cpu(1)};
    hi.dst_ip = srv_hi.ip();
    hi.dst_port = 11111;
    hi.rate_pps = 50'000;
    hi.reply_every = 4;
    hi.stop_at = sim::milliseconds(4);
    hi_client_ = std::make_unique<apps::SockperfClient>(tb_->sim(), hi);

    apps::SockperfClient::Config bg;
    bg.host = &tb_->client();
    bg.ns = &cli;
    bg.cpus = {&tb_->client().cpu(2), &tb_->client().cpu(3)};
    bg.base_src_port = 30000;
    bg.dst_ip = srv_bg.ip();
    bg.dst_port = 22222;
    bg.rate_pps = 300'000;
    bg.burst = 64;
    bg.stop_at = sim::milliseconds(4);
    bg_client_ = std::make_unique<apps::SockperfClient>(tb_->sim(), bg);

    hi_client_->start();
    bg_client_->start();
    // Run well past the send window so sockets drain and every scheduled
    // enqueue lands.
    tb_->sim().run_until(sim::milliseconds(8));
  }

  std::unique_ptr<harness::Testbed> tb_;
  std::unique_ptr<apps::SockperfServer> hi_server_;
  std::unique_ptr<apps::SockperfServer> bg_server_;
  std::unique_ptr<apps::SockperfClient> hi_client_;
  std::unique_ptr<apps::SockperfClient> bg_client_;
};

TEST_F(TelemetryE2eTest, RegistryMatchesComponentGroundTruth) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: counters read 0";
#endif
  run(kernel::NapiMode::kVanilla);
  auto& server = tb_->server();
  auto& m = server.metrics();

  // Both flows actually ran.
  EXPECT_GT(hi_server_->received(), 0u);
  EXPECT_GT(bg_server_->received(), 0u);

  // Socket layer: the registry mirrors the deliverer exactly.
  EXPECT_EQ(m.counter_value("sockets.delivered"),
            server.deliverer().delivered());
  EXPECT_EQ(m.counter_value("sockets.no_socket_drops"),
            server.deliverer().no_socket_drops());

  // NIC: every arriving frame is either ring-buffered or ring-dropped.
  // The paper's server has a single RSS queue (q0).
  const std::uint64_t queued = m.counter_value("nic.q0.frames") +
                               m.counter_value("nic.q0.ring_drops");
  EXPECT_EQ(m.counter_value("nic.rx_frames"), queued);
  EXPECT_EQ(m.counter_value("nic.rx_frames"), server.nic().rx_frames());
  EXPECT_EQ(m.counter_value("nic.tx_frames"), server.nic().tx_frames());
  EXPECT_GT(m.counter_value("nic.rx_frames"), 0u);

  // Softirq engines: per-CPU counters mirror the engines.
  for (int i = 0; i < server.num_cpus(); ++i) {
    const std::string p = "cpu" + std::to_string(i) + ".";
    EXPECT_EQ(m.counter_value(p + "packets"),
              server.engine(i).packets_processed());
    EXPECT_EQ(m.counter_value(p + "polls"), server.engine(i).polls());
    EXPECT_EQ(m.counter_value(p + "softirqs"),
              server.engine(i).softirq_invocations());
    EXPECT_EQ(m.counter_value(p + "time_squeeze"),
              server.engine(i).time_squeezes());
    EXPECT_EQ(m.counter_value(p + "requeues"),
              server.engine(i).requeues());
    EXPECT_EQ(m.counter_value(p + "prism_head_inserts"),
              server.engine(i).head_inserts());
  }
}

TEST_F(TelemetryE2eTest, DeliveredPlusDroppedReconciles) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: counters read 0";
#endif
  run(kernel::NapiMode::kPrismBatch);
  auto& server = tb_->server();
  auto& m = server.metrics();

  // Every datagram the deliverer handed to a socket either entered a
  // receive buffer or was dropped at one.
  const std::uint64_t delivered = m.counter_value("sockets.delivered");
  const std::uint64_t enqueued = m.counter_value("sockets.rcvbuf_enqueued");
  const std::uint64_t rcvbuf_drops =
      m.counter_value("sockets.rcvbuf_drops");
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(delivered, enqueued + rcvbuf_drops);

  // Application ground truth: everything enqueued was read by one of the
  // two servers or is still sitting in a receive buffer.
  EXPECT_EQ(enqueued, hi_server_->received() + bg_server_->received() +
                          hi_server_->socket().queue_depth() +
                          bg_server_->socket().queue_depth());

  // softnet_stat rows reconcile with the engines and with delivery: each
  // delivered packet was processed by net_rx_action at least once (the
  // overlay path processes it once per pipeline stage).
  auto rows = server.softnet_rows();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(server.num_cpus()));
  std::uint64_t processed = 0;
  std::uint64_t squeezes = 0;
  for (const auto& r : rows) {
    EXPECT_EQ(r.processed,
              server.engine(static_cast<int>(r.cpu)).packets_processed());
    EXPECT_EQ(r.time_squeeze,
              server.engine(static_cast<int>(r.cpu)).time_squeezes());
    processed += r.processed;
    squeezes += r.time_squeeze;
  }
  EXPECT_GE(processed, delivered);
  (void)squeezes;
}

TEST_F(TelemetryE2eTest, FlowLimitColumnReconcilesWithLedger) {
#if !PRISM_OVERLOAD_ENABLED
  GTEST_SKIP() << "overload control compiled out: flow_limit reads 0";
#else
  // A single hot flow hammering a shrunken backlog: the flow limiter
  // convicts it, and the softnet_stat flow_limit_count column, the
  // per-CPU admission counters, and the DropLedger must all agree.
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismBatch;
  tc.server_netdev_max_backlog = 64;
  // Make the backlog stage the bottleneck (~200 kpps) so the 400 kpps
  // flood pins the shrunken backlog and the limiter activates.
  tc.cost.backlog_stage_per_packet = sim::microseconds(4);
  tb_ = std::make_unique<harness::Testbed>(tc);
  auto& cli = tb_->add_client_container("cli");
  auto& srv = tb_->add_server_container("srv-bg");
  bg_server_ = std::make_unique<apps::SockperfServer>(
      tb_->sim(), apps::SockperfServer::Config{&tb_->server(), &srv,
                                               &tb_->server().cpu(2),
                                               22222});
  apps::SockperfClient::Config bg;
  bg.host = &tb_->client();
  bg.ns = &cli;
  bg.cpus = {&tb_->client().cpu(2)};
  bg.dst_ip = srv.ip();
  bg.dst_port = 22222;
  bg.rate_pps = 400'000;
  bg.burst = 64;
  bg.reply_every = 0;
  bg.stop_at = sim::milliseconds(4);
  bg_client_ = std::make_unique<apps::SockperfClient>(tb_->sim(), bg);
  bg_client_->start();
  tb_->sim().run_until(sim::milliseconds(8));

  auto& server = tb_->server();
  std::uint64_t column_total = 0;
  for (const auto& r : server.softnet_rows()) column_total += r.flow_limit;
  std::uint64_t admission_total = 0;
  for (int i = 0; i < server.num_cpus(); ++i) {
    admission_total += server.admission(i).flow_limit_count();
  }
  EXPECT_GT(column_total, 0u);
  EXPECT_EQ(column_total, admission_total);
  EXPECT_EQ(column_total,
            server.faults().drops.total(fault::DropReason::kFlowLimit));

  // The rendered softnet_stat exposes the same totals in the
  // flow_limit_count column (index 10, as in the kernel's format).
  const std::string softnet = server.proc().read("net/softnet_stat");
  std::uint64_t rendered_total = 0;
  std::istringstream lines(softnet);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream cols(line);
    std::string col;
    for (int i = 0; i <= 10 && cols >> col; ++i) {
      if (i == 10) rendered_total += std::stoull(col, nullptr, 16);
    }
  }
  EXPECT_EQ(rendered_total, column_total);
#endif
}

TEST_F(TelemetryE2eTest, ProcFilesExposeTelemetry) {
  run(kernel::NapiMode::kPrismSync);
  auto& server = tb_->server();

  const std::string softnet = server.proc().read("net/softnet_stat");
  EXPECT_EQ(softnet, server.softnet_stat());
  EXPECT_FALSE(softnet.empty());
  // One 13-hex-column row per CPU.
  EXPECT_EQ(std::count(softnet.begin(), softnet.end(), '\n'),
            server.num_cpus());

  const std::string dev = server.proc().read("net/dev");
  EXPECT_NE(dev.find("eth0:"), std::string::npos);
  EXPECT_NE(dev.find("br42:"), std::string::npos);
  EXPECT_NE(dev.find("veth:"), std::string::npos);

  const std::string json = server.proc().read("prism/telemetry");
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"sockets.delivered\""), std::string::npos);

  // Registered files are read-only, like real procfs stat files.
  EXPECT_FALSE(server.proc().write("net/softnet_stat", "0"));
  // Unknown paths still read as empty.
  EXPECT_TRUE(server.proc().read("net/nope").empty());
}

}  // namespace
}  // namespace prism
