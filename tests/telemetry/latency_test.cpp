#include "telemetry/latency.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "json_check.h"
#include "telemetry/json_writer.h"

namespace prism::telemetry {
namespace {

kernel::SkbTimestamps overlay_ts(sim::Time base) {
  // A full three-stage journey with distinct, telescoping segments.
  kernel::SkbTimestamps ts;
  ts.nic_rx = base;
  ts.stage1_start = base + 100;   // ring wait 100
  ts.stage1_done = base + 150;    // stage1 service 50
  ts.stage2_start = base + 350;   // stage2 wait 200
  ts.stage2_done = base + 380;    // stage2 service 30
  ts.stage3_start = base + 680;   // stage3 wait 300
  ts.stage3_done = base + 720;    // stage3 service 40
  ts.socket_enqueue = base + 720;
  return ts;
}

kernel::SkbTimestamps host_ts(sim::Time base) {
  // Host path: stages 2 and 3 never happen (timestamps stay -1).
  kernel::SkbTimestamps ts;
  ts.nic_rx = base;
  ts.stage1_start = base + 80;
  ts.stage1_done = base + 140;
  ts.socket_enqueue = base + 140;
  return ts;
}

TEST(LatencyLedgerTest, SegmentsTelescopeToEndToEnd) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  ledger.record_delivery(overlay_ts(1000), 0);

  EXPECT_EQ(ledger.histogram(LatencyStage::kRingWait, 0).count(), 1u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kRingWait, 0).max(), 100);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage1Service, 0).max(), 50);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage2Wait, 0).max(), 200);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage2Service, 0).max(), 30);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage3Wait, 0).max(), 300);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage3Service, 0).max(), 40);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).max(), 720);

  // The six segment sums reconcile exactly with the end-to-end sum.
  double segment_sum = 0.0;
  for (const auto s :
       {LatencyStage::kRingWait, LatencyStage::kStage1Service,
        LatencyStage::kStage2Wait, LatencyStage::kStage2Service,
        LatencyStage::kStage3Wait, LatencyStage::kStage3Service}) {
    segment_sum += ledger.histogram(s, 0).sum();
  }
  EXPECT_DOUBLE_EQ(segment_sum,
                   ledger.histogram(LatencyStage::kEndToEnd, 0).sum());
  EXPECT_EQ(ledger.unattributed(), 0u);
}

TEST(LatencyLedgerTest, HostPathSkipsAbsentStages) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  ledger.record_delivery(host_ts(500), 2);

  EXPECT_EQ(ledger.histogram(LatencyStage::kRingWait, 2).count(), 1u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage1Service, 2).count(), 1u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage2Wait, 2).count(), 0u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kStage3Service, 2).count(), 0u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 2).max(), 140);
}

TEST(LatencyLedgerTest, ClassesAreSeparateAndClamped) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  ledger.record_delivery(overlay_ts(0), 0);
  ledger.record_delivery(overlay_ts(0), 1);
  ledger.record_delivery(overlay_ts(0), 99);   // clamps to top class
  ledger.record_delivery(overlay_ts(0), -5);   // clamps to 0

  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 2u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 1).count(), 1u);
  EXPECT_EQ(ledger
                .histogram(LatencyStage::kEndToEnd,
                           kNumLatencyClasses - 1)
                .count(),
            1u);
}

TEST(LatencyLedgerTest, MissingCoreTimestampsCountAsUnattributed) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  kernel::SkbTimestamps none;  // all -1
  ledger.record_delivery(none, 0);
  kernel::SkbTimestamps no_end;
  no_end.nic_rx = 100;
  ledger.record_delivery(no_end, 0);

  EXPECT_EQ(ledger.unattributed(), 2u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 0u);
}

TEST(LatencyLedgerTest, DisabledLedgerRecordsNothing) {
  LatencyLedger ledger;
  ledger.set_enabled(false);
  ledger.record_delivery(overlay_ts(0), 0);
  ledger.record_irq_to_poll(50);
  ledger.record_socket_wait(75, 0);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 0u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kIrqToPoll, 0).count(), 0u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kSocketWait, 0).count(), 0u);
  EXPECT_EQ(ledger.unattributed(), 0u);

  ledger.set_enabled(true);
  ledger.record_delivery(overlay_ts(0), 0);
#if PRISM_TELEMETRY_ENABLED
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 1u);
#endif
}

TEST(LatencyLedgerTest, IrqToPollAndSocketWaitAreSeparateAxes) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  ledger.record_irq_to_poll(1234);
  ledger.record_socket_wait(5678, 1);
  EXPECT_EQ(ledger.histogram(LatencyStage::kIrqToPoll, 0).max(), 1234);
  EXPECT_EQ(ledger.histogram(LatencyStage::kSocketWait, 1).max(), 5678);
  // Neither contaminates the telescoping segments.
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 0u);
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 1).count(), 0u);
}

TEST(LatencyLedgerTest, WindowsRotateAndMerge) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  // Interval 1000 ns, 4 windows.
  LatencyLedger ledger(/*window_interval=*/1000, /*window_capacity=*/4);
  // Two deliveries landing in window 0, one in window 2.
  auto in_window = [](sim::Time enqueue_at) {
    kernel::SkbTimestamps ts;
    ts.nic_rx = enqueue_at - 100;
    ts.stage1_start = enqueue_at - 50;
    ts.stage1_done = enqueue_at;
    ts.socket_enqueue = enqueue_at;
    return ts;
  };
  ledger.record_delivery(in_window(200), 0);
  ledger.record_delivery(in_window(900), 0);
  ledger.record_delivery(in_window(2500), 0);

  const auto merged = ledger.merged_windows();
  EXPECT_EQ(merged.count(), 3u);

  const auto b = ledger.snapshot();
  ASSERT_EQ(b.windows.size(), 2u);
  EXPECT_EQ(b.windows[0].window, 0);
  EXPECT_EQ(b.windows[0].count, 2u);
  EXPECT_EQ(b.windows[1].window, 2);
  EXPECT_EQ(b.windows[1].start_ns, 2000);
  EXPECT_EQ(b.window_interval_ns, 1000);
}

TEST(LatencyLedgerTest, WindowEvictionAndLateDropsAreCounted) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger(/*window_interval=*/1000, /*window_capacity=*/2);
  auto at = [](sim::Time enqueue_at) {
    kernel::SkbTimestamps ts;
    ts.nic_rx = enqueue_at - 10;
    ts.socket_enqueue = enqueue_at;
    return ts;
  };
  ledger.record_delivery(at(100), 0);   // window 0
  ledger.record_delivery(at(1100), 0);  // window 1
  ledger.record_delivery(at(2100), 0);  // window 2 evicts window 0
  EXPECT_EQ(ledger.windows_evicted(), 1u);

  // A record for the long-gone window 0 slot now holding window 2 is a
  // late drop, not a silent misfile.
  ledger.record_delivery(at(150), 0);
  EXPECT_EQ(ledger.window_late_drops(), 1u);
  EXPECT_EQ(ledger.merged_windows().count(), 2u);
}

TEST(LatencyLedgerTest, MergedWindowsFiltersByClass) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger(1000, 4);
  auto at = [](sim::Time enqueue_at) {
    kernel::SkbTimestamps ts;
    ts.nic_rx = enqueue_at - 10;
    ts.socket_enqueue = enqueue_at;
    return ts;
  };
  ledger.record_delivery(at(100), 0);
  ledger.record_delivery(at(200), 1);
  ledger.record_delivery(at(300), 1);
  EXPECT_EQ(ledger.merged_windows(0).count(), 1u);
  EXPECT_EQ(ledger.merged_windows(1).count(), 2u);
  EXPECT_EQ(ledger.merged_windows().count(), 3u);
}

TEST(LatencyLedgerTest, DroppedInFlightCountsPerClass) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  ledger.record_dropped(0);
  ledger.record_dropped(1);
  ledger.record_dropped(1);
  ledger.record_dropped(-5);   // clamps into class 0
  ledger.record_dropped(999);  // clamps into the top class
  EXPECT_EQ(ledger.dropped_in_flight(0), 2u);
  EXPECT_EQ(ledger.dropped_in_flight(1), 2u);
  EXPECT_EQ(ledger.dropped_in_flight(), 5u);
  // Drops never pollute the stage histograms.
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 0u);
  EXPECT_EQ(ledger.merged_windows().count(), 0u);

  const auto b = ledger.snapshot();
  EXPECT_EQ(b.dropped_in_flight, 5u);
  const std::string json = latency_json(ledger);
  EXPECT_NE(json.find("\"dropped_in_flight\""), std::string::npos);

  ledger.reset();
  EXPECT_EQ(ledger.dropped_in_flight(), 0u);
  EXPECT_EQ(ledger.dropped_in_flight(1), 0u);
}

TEST(LatencyLedgerTest, ResetClearsDataKeepsConfig) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger(2000, 8);
  ledger.record_delivery(overlay_ts(0), 0);
  ledger.reset();
  EXPECT_EQ(ledger.histogram(LatencyStage::kEndToEnd, 0).count(), 0u);
  EXPECT_EQ(ledger.merged_windows().count(), 0u);
  EXPECT_EQ(ledger.window_interval(), 2000);
  EXPECT_EQ(ledger.window_capacity(), 8u);
}

TEST(LatencyLedgerTest, RejectsInvalidConfig) {
  EXPECT_THROW(LatencyLedger(0, 4), std::invalid_argument);
  EXPECT_THROW(LatencyLedger(1000, 0), std::invalid_argument);
  LatencyLedger ok;
  EXPECT_THROW(ok.set_window_interval(-1), std::invalid_argument);
}

TEST(LatencyLedgerTest, SnapshotRowsMatchHistograms) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger;
  for (int i = 0; i < 10; ++i) ledger.record_delivery(overlay_ts(i), 1);
  const auto b = ledger.snapshot();
  EXPECT_TRUE(b.enabled);
  bool found = false;
  for (const auto& row : b.stages) {
    if (row.stage == LatencyStage::kEndToEnd && row.level == 1) {
      found = true;
      EXPECT_EQ(row.count, 10u);
      EXPECT_DOUBLE_EQ(row.sum_ns,
                       ledger.histogram(LatencyStage::kEndToEnd, 1).sum());
    }
    EXPECT_GT(row.count, 0u);  // only non-empty cells appear
  }
  EXPECT_TRUE(found);
}

TEST(LatencyLedgerTest, JsonIsWellFormedAndNamed) {
  LatencyLedger ledger;
#if PRISM_TELEMETRY_ENABLED
  ledger.record_delivery(overlay_ts(0), 0);
#endif
  const std::string json = latency_json(ledger);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
#if PRISM_TELEMETRY_ENABLED
  EXPECT_NE(json.find("\"ring_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"end_to_end\""), std::string::npos);
#endif
}

TEST(LatencyLedgerTest, RenderedTablesAreNonEmpty) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  LatencyLedger ledger(1000, 4);
  kernel::SkbTimestamps ts = overlay_ts(0);
  ledger.record_delivery(ts, 0);
  const auto b = ledger.snapshot();
  const std::string breakdown = render_latency_breakdown(b);
  EXPECT_NE(breakdown.find("ring_wait"), std::string::npos);
  const std::string windows = render_latency_windows(b);
  EXPECT_FALSE(windows.empty());
}

TEST(LatencyStageNameTest, AllStagesHaveStableNames) {
  EXPECT_STREQ(latency_stage_name(LatencyStage::kRingWait), "ring_wait");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kStage1Service),
               "stage1_service");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kStage2Wait),
               "stage2_wait");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kStage3Service),
               "stage3_service");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kEndToEnd), "end_to_end");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kIrqToPoll),
               "irq_to_poll");
  EXPECT_STREQ(latency_stage_name(LatencyStage::kSocketWait),
               "socket_wait");
}

}  // namespace
}  // namespace prism::telemetry
