#include <gtest/gtest.h>

#include "telemetry/metrics.h"

namespace prism::telemetry {
namespace {

// With -DPRISM_TELEMETRY=OFF every increment compiles out and values
// read 0; the expectations below encode that contract for both builds.
constexpr bool kEnabled = PRISM_TELEMETRY_ENABLED != 0;

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), kEnabled ? 42u : 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, SinkIsProcessWideAndIncrementable) {
  Counter& a = Counter::sink();
  Counter& b = Counter::sink();
  EXPECT_EQ(&a, &b);
  // Its value is meaningless, but incrementing must be safe: this is what
  // every unbound instrumentation point does on the hot path.
  const auto before = a.value();
  a.inc(3);
  EXPECT_EQ(a.value(), before + (kEnabled ? 3 : 0));
}

TEST(GaugeTest, TracksValueAndHighWatermark) {
  Gauge g;
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), kEnabled ? 3 : 0);
  EXPECT_EQ(g.max_value(), kEnabled ? 12 : 0);
  g.add(-3);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), kEnabled ? 12 : 0);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST(GaugeTest, SinkIsProcessWide) {
  EXPECT_EQ(&Gauge::sink(), &Gauge::sink());
  Gauge::sink().set(7);  // must not crash
}

TEST(RegistryTest, CounterRegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("nic.rx_frames");
  Counter& b = reg.counter("nic.rx_frames");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counter_count(), 1u);
  a.inc(10);
  EXPECT_EQ(b.value(), kEnabled ? 10u : 0u);
}

TEST(RegistryTest, SharedNameAggregatesAcrossComponents) {
  // Two components binding the same name (e.g. every UDP socket under
  // "sockets.") intentionally share one aggregate counter.
  Registry reg;
  Counter* sock1 = &reg.counter("sockets.rcvbuf_enqueued");
  Counter* sock2 = &reg.counter("sockets.rcvbuf_enqueued");
  sock1->inc(2);
  sock2->inc(3);
  EXPECT_EQ(reg.counter_value("sockets.rcvbuf_enqueued"),
            kEnabled ? 5u : 0u);
}

TEST(RegistryTest, HandleAddressesSurviveManyRegistrations) {
  Registry reg;
  Counter* first = &reg.counter("c0");
  first->inc();
  // Force internal growth; deque storage must not move existing entries.
  for (int i = 1; i < 500; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("c0"), first);
  EXPECT_EQ(first->value(), kEnabled ? 1u : 0u);
}

TEST(RegistryTest, CounterValueUnknownNameIsZero) {
  Registry reg;
  reg.counter("known").inc(9);
  EXPECT_EQ(reg.counter_value("known"), kEnabled ? 9u : 0u);
  EXPECT_EQ(reg.counter_value("unknown"), 0u);
}

TEST(RegistryTest, SnapshotsPreserveRegistrationOrder) {
  Registry reg;
  reg.counter("zulu").inc(1);
  reg.counter("alpha").inc(2);
  reg.gauge("mike").set(3);
  reg.gauge("bravo").set(4);

  const auto cs = reg.counters();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].name, "zulu");
  EXPECT_EQ(cs[0].value, kEnabled ? 1u : 0u);
  EXPECT_EQ(cs[1].name, "alpha");
  EXPECT_EQ(cs[1].value, kEnabled ? 2u : 0u);

  const auto gs = reg.gauges();
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0].name, "mike");
  EXPECT_EQ(gs[0].value, kEnabled ? 3 : 0);
  EXPECT_EQ(gs[1].name, "bravo");
  EXPECT_EQ(gs[1].value, kEnabled ? 4 : 0);
}

TEST(RegistryTest, GaugesAreIdempotentToo) {
  Registry reg;
  Gauge& a = reg.gauge("ring_depth");
  Gauge& b = reg.gauge("ring_depth");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.gauge_count(), 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsHandlesValid) {
  Registry reg;
  Counter& c = reg.counter("events");
  Gauge& g = reg.gauge("depth");
  c.inc(100);
  g.set(50);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
  // Handles stay usable after reset.
  c.inc();
  EXPECT_EQ(reg.counter_value("events"), kEnabled ? 1u : 0u);
  EXPECT_EQ(reg.counter_count(), 1u);
}

}  // namespace
}  // namespace prism::telemetry
