#include "telemetry/flow_table.h"

#include <gtest/gtest.h>

#include "json_check.h"
#include "net/flow.h"
#include "net/ip.h"

namespace prism::telemetry {
namespace {

net::FiveTuple tuple(std::uint16_t src_port) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  t.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = 9000;
  t.protocol = net::IpProto::kUdp;
  return t;
}

TEST(FlowTableTest, AccumulatesPerFlow) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  const auto f = tuple(1000);
  table.record(f, 100, 1, 5000, /*at=*/10);
  table.record(f, 200, 1, 7000, /*at=*/20);
  table.record_drop(f, 1, /*at=*/30);

  const auto* e = table.lookup(f);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packets, 2u);
  EXPECT_EQ(e->bytes, 300u);
  EXPECT_EQ(e->drops, 1u);
  EXPECT_EQ(e->level, 1);
  EXPECT_EQ(e->first_seen, 10);
  EXPECT_EQ(e->last_seen, 30);
  EXPECT_EQ(e->latency.count(), 2u);
  EXPECT_EQ(e->latency.max(), 7000);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, NegativeLatencySkipsHistogramOnly) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  const auto f = tuple(1000);
  table.record(f, 64, 0, /*e2e_ns=*/-1, /*at=*/5);
  const auto* e = table.lookup(f);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packets, 1u);
  EXPECT_EQ(e->latency.count(), 0u);
}

TEST(FlowTableTest, EntriesAreMostRecentFirst) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  table.record(tuple(1), 64, 0, 100, 1);
  table.record(tuple(2), 64, 0, 100, 2);
  table.record(tuple(3), 64, 0, 100, 3);
  table.record(tuple(1), 64, 0, 100, 4);  // touch 1 back to the front

  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->flow.src_port, 1);
  EXPECT_EQ(entries[1]->flow.src_port, 3);
  EXPECT_EQ(entries[2]->flow.src_port, 2);
}

TEST(FlowTableTest, EvictsLeastRecentlySeenAtCapacity) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table(/*capacity=*/2);
  table.record(tuple(1), 64, 0, 100, 1);
  table.record(tuple(2), 64, 0, 100, 2);
  table.record(tuple(3), 64, 0, 100, 3);  // evicts flow 1

  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.lookup(tuple(1)), nullptr);
  ASSERT_NE(table.lookup(tuple(3)), nullptr);

  // The reused node must not leak the evicted flow's counters.
  const auto* fresh = table.lookup(tuple(3));
  EXPECT_EQ(fresh->packets, 1u);
  EXPECT_EQ(fresh->first_seen, 3);
  EXPECT_EQ(fresh->latency.count(), 1u);
}

TEST(FlowTableTest, RecordFrameDispatchesOnDelivered) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  const auto f = tuple(7);
  table.record_frame(f, 128, 0, 900, 1, /*delivered=*/true);
  table.record_frame(f, 128, 0, -1, 2, /*delivered=*/false);
  const auto* e = table.lookup(f);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packets, 1u);
  EXPECT_EQ(e->drops, 1u);
}

TEST(FlowTableTest, ExactlyCapacityFlowsNeverEvict) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table(/*capacity=*/8);
  for (int i = 0; i < 8; ++i) {
    table.record(tuple(static_cast<std::uint16_t>(i + 1)), 64, 0, 100,
                 i + 1);
  }
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.evictions(), 0u);
  // Re-touching tracked flows at capacity must not evict either.
  for (int i = 0; i < 8; ++i) {
    table.record(tuple(static_cast<std::uint16_t>(i + 1)), 64, 0, 100,
                 100 + i);
  }
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.evictions(), 0u);
}

TEST(FlowTableTest, CapacityPlusOneEvictsExactlyOne) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table(/*capacity=*/8);
  for (int i = 0; i < 9; ++i) {
    table.record(tuple(static_cast<std::uint16_t>(i + 1)), 64, 0, 100,
                 i + 1);
  }
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.lookup(tuple(1)), nullptr);  // oldest went first
  EXPECT_NE(table.lookup(tuple(2)), nullptr);
  EXPECT_NE(table.lookup(tuple(9)), nullptr);
}

TEST(FlowTableTest, AdversarialFloodStaysBoundedAndCountsEveryEviction) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  // Many-flow flood: every packet is a distinct 5-tuple, the LRU's worst
  // case. The table must stay at capacity, count one eviction per excess
  // flow, and keep exactly the most recent `capacity` flows.
  constexpr std::size_t kCapacity = 16;
  constexpr int kFlood = 1000;
  FlowTable table(kCapacity);
  for (int i = 0; i < kFlood; ++i) {
    table.record(tuple(static_cast<std::uint16_t>(i + 1)), 64, i % 4, 100,
                 i + 1);
  }
  EXPECT_EQ(table.size(), kCapacity);
  EXPECT_EQ(table.evictions(), kFlood - kCapacity);
  for (int i = kFlood - static_cast<int>(kCapacity); i < kFlood; ++i) {
    EXPECT_NE(table.lookup(tuple(static_cast<std::uint16_t>(i + 1))),
              nullptr)
        << "recent flow " << i + 1 << " missing";
  }
  EXPECT_EQ(table.lookup(tuple(1)), nullptr);
  // A victim's flow returning after eviction starts from scratch.
  table.record(tuple(1), 64, 0, 100, kFlood + 1);
  const auto* back = table.lookup(tuple(1));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->packets, 1u);
  EXPECT_EQ(back->first_seen, kFlood + 1);
}

TEST(FlowTableTest, DisabledTableRecordsNothing) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  table.set_enabled(false);
  table.record(tuple(1), 64, 0, 100, 1);
  table.record_drop(tuple(1), 0, 2);
  EXPECT_EQ(table.size(), 0u);
  table.set_enabled(true);
  table.record(tuple(1), 64, 0, 100, 3);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, ResetClearsEverything) {
  FlowTable table(/*capacity=*/2);
  table.record(tuple(1), 64, 0, 100, 1);
  table.record(tuple(2), 64, 0, 100, 2);
  table.record(tuple(3), 64, 0, 100, 3);
  table.reset();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.lookup(tuple(2)), nullptr);
  EXPECT_EQ(table.capacity(), 2u);
}

TEST(FlowTableTest, JsonIsWellFormed) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlowTable table;
  table.record(tuple(4242), 512, 3, 12345, 99);
  const std::string json = flow_table_json(table);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"capacity\""), std::string::npos);
  EXPECT_NE(json.find("\"evictions\""), std::string::npos);
  EXPECT_NE(json.find("\"flows\""), std::string::npos);
  EXPECT_NE(json.find("4242"), std::string::npos);
}

}  // namespace
}  // namespace prism::telemetry
