#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include "net/flow.h"
#include "net/ip.h"
#include "sim/time.h"
#include "telemetry/anomaly.h"

namespace prism::telemetry {
namespace {

net::FiveTuple tuple(std::uint16_t src_port) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  t.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = 9000;
  t.protocol = net::IpProto::kUdp;
  return t;
}

// The CI telemetry-off job runs this suite explicitly: with
// -DPRISM_TELEMETRY=OFF every record path must be a no-op, should_trace
// must answer false even for pinned classes, and arming must not stick.
TEST(FlightRecorderTest, CompiledOutRecordsNothing) {
#if PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled in; armed behavior covered below";
#else
  FlightRecorder rec;
  rec.set_armed(true);
  EXPECT_FALSE(rec.armed());
  EXPECT_FALSE(rec.should_trace(tuple(1), 3));  // pinned class: still no
  rec.on_ring_arrival(tuple(1), 3, 0, 1000);
  rec.on_enqueue(tuple(1), 2, 3, 1, -1, 2000);
  rec.on_dequeue(tuple(1), 2, 3, 500, -1, 2500);
  rec.on_drop(tuple(1), 3, 3, 0, 3000);
  rec.on_deliver(tuple(1), 3, 4000, 4000);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.overwritten(), 0u);
  EXPECT_TRUE(rec.tail(8).empty());
#endif
}

TEST(FlightRecorderTest, SamplerPinsHighClassesAndIsDeterministic) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;  // defaults: 1-in-64, pin_level 1
  // Pinned classes trace regardless of the hash slot.
  for (std::uint16_t p = 1; p < 200; ++p) {
    EXPECT_TRUE(rec.should_trace(tuple(p), 1));
    EXPECT_TRUE(rec.should_trace(tuple(p), 3));
  }
  // Class-0 decisions are a pure flow-hash function: stable across
  // repeated queries and across recorder instances with the same config
  // (the determinism the cross-thread-count snapshots depend on).
  FlightRecorder other;
  int traced = 0;
  for (std::uint16_t p = 1; p < 1000; ++p) {
    const bool a = rec.should_trace(tuple(p), 0);
    EXPECT_EQ(a, rec.should_trace(tuple(p), 0));
    EXPECT_EQ(a, other.should_trace(tuple(p), 0));
    traced += a ? 1 : 0;
  }
  // 1-in-64 sampling over ~1000 distinct flows: some but far from all.
  EXPECT_GT(traced, 0);
  EXPECT_LT(traced, 250);
}

TEST(FlightRecorderTest, SamplePeriodRoundsUpToPowerOfTwo) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  FlightRecorderConfig cfg;
  cfg.sample_period = 48;
  rec.configure(cfg);
  EXPECT_EQ(rec.config().sample_period, 64u);
  cfg.sample_period = 0;  // clamps to 1 = trace everything
  rec.configure(cfg);
  EXPECT_EQ(rec.config().sample_period, 1u);
  for (std::uint16_t p = 1; p < 64; ++p) {
    EXPECT_TRUE(rec.should_trace(tuple(p), 0));
  }
}

TEST(FlightRecorderTest, DisarmedTracesNothingButKeepsConfig) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  FlightRecorderConfig cfg;
  cfg.sample_period = 1;
  rec.configure(cfg);
  rec.set_armed(false);
  EXPECT_FALSE(rec.armed());
  EXPECT_FALSE(rec.should_trace(tuple(1), 3));
  rec.set_armed(true);
  EXPECT_TRUE(rec.should_trace(tuple(1), 0));
  EXPECT_EQ(rec.config().sample_period, 1u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsEverything) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 4;
  rec.configure(cfg);
  for (int i = 0; i < 6; ++i) {
    rec.on_enqueue(tuple(1), 2, 0, i, -1, /*at=*/i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.overwritten(), 2u);
  // Oldest-first view starts at the 3rd push; tail(2) is the newest two.
  EXPECT_EQ(rec.at(0).at, 2);
  EXPECT_EQ(rec.at(3).at, 5);
  const auto t = rec.tail(2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].at, 4);
  EXPECT_EQ(t[1].at, 5);
  // Asking for more than retained returns exactly what is retained.
  EXPECT_EQ(rec.tail(100).size(), 4u);
}

TEST(FlightRecorderTest, StampPointsRecordFaithfulFields) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  rec.on_ring_arrival(tuple(1), 2, /*arrived=*/100, /*dequeued=*/600);
  rec.on_enqueue(tuple(1), 3, 2, /*depth=*/7, /*head_level=*/0, 700);
  rec.on_dequeue(tuple(1), 3, 2, /*wait=*/250, /*head=*/0, 950);
  rec.on_drop(tuple(1), 4, 2, /*reason=*/1, 1000);
  rec.on_deliver(tuple(1), 2, /*e2e=*/900, 1000);
  ASSERT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.at(0).kind, FlightEventKind::kRingArrival);
  EXPECT_EQ(rec.at(0).stage, 1);
  EXPECT_EQ(rec.at(0).wait_ns, 500);
  EXPECT_EQ(rec.at(0).head_level, -1);  // FIFO ring carries no classes
  EXPECT_EQ(rec.at(1).kind, FlightEventKind::kEnqueue);
  EXPECT_EQ(rec.at(1).depth, 7);
  EXPECT_EQ(rec.at(1).head_level, 0);
  EXPECT_EQ(rec.at(2).kind, FlightEventKind::kDequeue);
  EXPECT_EQ(rec.at(2).wait_ns, 250);
  EXPECT_EQ(rec.at(3).kind, FlightEventKind::kDrop);
  EXPECT_EQ(rec.at(3).drop_reason, 1);
  EXPECT_EQ(rec.at(4).kind, FlightEventKind::kDeliver);
  EXPECT_EQ(rec.at(4).stage, 4);
  EXPECT_EQ(rec.at(4).wait_ns, 900);
}

TEST(FlightRecorderTest, DequeueAndRingObservationsFeedTheAnomalyBank) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  AnomalyBank bank;  // default config: inversion detector armed, T=100us
  rec.set_anomalies(&bank);
  // High class queued 200us behind class 0: queue inversion.
  rec.on_dequeue(tuple(1), 3, 2, sim::microseconds(200), /*head=*/0,
                 sim::microseconds(300));
  EXPECT_EQ(bank.fired(AnomalyKind::kQueueInversion), 1u);
  // High class stuck 150us in the priority-blind ring: ring inversion.
  rec.on_ring_arrival(tuple(2), 1, /*arrived=*/0,
                      /*dequeued=*/sim::microseconds(150));
  EXPECT_EQ(bank.fired(AnomalyKind::kRingInversion), 1u);
  EXPECT_EQ(bank.max_inversion_wait_ns(), sim::microseconds(200));
  EXPECT_EQ(bank.worst_inversion_flow().src_port, 1);
}

TEST(FlightRecorderTest, ResetClearsRingKeepsConfig) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 8;
  cfg.sample_period = 16;
  rec.configure(cfg);
  rec.on_deliver(tuple(1), 1, 100, 100);
  rec.reset();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.overwritten(), 0u);
  EXPECT_EQ(rec.config().ring_capacity, 8u);
  EXPECT_EQ(rec.config().sample_period, 16u);
  EXPECT_TRUE(rec.armed());
}

}  // namespace
}  // namespace prism::telemetry
