// AnomalyBank convergence detector: note_disruption() arms a per-class
// watch; the first fully post-disruption SLO window with p99 back under
// the target records a recovery, and a watch that never recovers fires
// kConvergenceTimeout exactly once.
#include <gtest/gtest.h>

#include "sim/time.h"
#include "telemetry/anomaly.h"

namespace prism::telemetry {
namespace {

constexpr sim::Duration kSlo = sim::microseconds(100);
constexpr sim::Duration kWindow = sim::milliseconds(1);
constexpr sim::Duration kDeadline = sim::milliseconds(10);

AnomalyBank armed_bank() {
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.slo_p99_ns = kSlo;
  cfg.slo_window_ns = kWindow;
  cfg.convergence_deadline_ns = kDeadline;
  bank.arm(cfg);
  return bank;
}

/// Closes the window containing `from` by delivering one sample past its
/// end (windows are judged at close, when the next delivery arrives).
void fill_window(AnomalyBank& bank, int level, sim::Time start,
                 sim::Duration e2e, int samples = 8) {
  for (int i = 0; i < samples; ++i) {
    bank.on_delivery(level, e2e, start + i * (kWindow / samples));
  }
}

TEST(ConvergenceTest, RecoveryRecordedOnFirstCompliantWindow) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank = armed_bank();
  const sim::Time t0 = sim::milliseconds(5);
  bank.note_disruption(2, t0);
  EXPECT_TRUE(bank.convergence_watch_armed(2));

  // First post-disruption window: p99 over the target — no recovery.
  fill_window(bank, 2, t0, kSlo * 3);
  // Second window compliant; judged when a later delivery closes it.
  fill_window(bank, 2, t0 + kWindow, kSlo / 2);
  bank.on_delivery(2, kSlo / 2, t0 + 2 * kWindow + 1);

  EXPECT_FALSE(bank.convergence_watch_armed(2));
  ASSERT_EQ(bank.recoveries().size(), 1u);
  const auto& r = bank.recoveries()[0];
  EXPECT_EQ(r.level, 2);
  EXPECT_EQ(r.disrupted_at, t0);
  // Recovery stamps the close of the compliant window.
  EXPECT_EQ(r.recovered_at, t0 + 2 * kWindow);
  EXPECT_EQ(bank.fired(AnomalyKind::kConvergenceTimeout), 0u);
}

TEST(ConvergenceTest, PreDisruptionSamplesNeverSatisfyTheWatch) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank = armed_bank();
  // A healthy window is in flight when the disruption hits: it must not
  // count as the recovery even though its p99 is compliant.
  fill_window(bank, 2, 0, kSlo / 2);
  const sim::Time t0 = kWindow / 2;
  bank.note_disruption(2, t0);
  // note_disruption restarted the window at t0; closing the restarted
  // window with compliant samples IS a valid recovery.
  fill_window(bank, 2, t0, kSlo / 2);
  bank.on_delivery(2, kSlo / 2, t0 + kWindow + 1);
  ASSERT_EQ(bank.recoveries().size(), 1u);
  EXPECT_GE(bank.recoveries()[0].recovered_at, t0 + kWindow);
}

TEST(ConvergenceTest, TimeoutFiresOnceAndDisarms) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank = armed_bank();
  const sim::Time t0 = sim::milliseconds(1);
  bank.note_disruption(1, t0);

  // Every window breaches until past the deadline.
  sim::Time t = t0;
  while (t < t0 + kDeadline + 3 * kWindow) {
    bank.on_delivery(1, kSlo * 5, t);
    t += kWindow / 4;
  }
  EXPECT_EQ(bank.fired(AnomalyKind::kConvergenceTimeout), 1u);
  EXPECT_FALSE(bank.convergence_watch_armed(1));

  // Further breaching deliveries never re-fire a disarmed watch.
  bank.on_delivery(1, kSlo * 5, t + kWindow);
  EXPECT_EQ(bank.fired(AnomalyKind::kConvergenceTimeout), 1u);

  // The finding carries the measured exceedance and the deadline.
  bool found = false;
  for (const auto& f : bank.findings()) {
    if (f.kind == AnomalyKind::kConvergenceTimeout) {
      found = true;
      EXPECT_EQ(f.level, 1);
      EXPECT_GT(f.value, static_cast<double>(kDeadline));
      EXPECT_EQ(f.threshold, static_cast<double>(kDeadline));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConvergenceTest, RearmRestartsTheClock) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank = armed_bank();
  const sim::Time t0 = sim::milliseconds(1);
  bank.note_disruption(2, t0);
  // Second disruption before convergence: the clock restarts, so a
  // delivery past t0's deadline but inside t1's does not time out.
  const sim::Time t1 = t0 + kDeadline - kWindow;
  bank.note_disruption(2, t1);
  bank.on_delivery(2, kSlo * 5, t0 + kDeadline + kWindow);
  EXPECT_EQ(bank.fired(AnomalyKind::kConvergenceTimeout), 0u);
  EXPECT_TRUE(bank.convergence_watch_armed(2));

  // And the recovery reports the second disruption time.
  const sim::Time w = t0 + kDeadline + 2 * kWindow;
  fill_window(bank, 2, w, kSlo / 2);
  bank.on_delivery(2, kSlo / 2, w + kWindow + 1);
  ASSERT_EQ(bank.recoveries().size(), 1u);
  EXPECT_EQ(bank.recoveries()[0].disrupted_at, t1);
}

TEST(ConvergenceTest, DetectorOffWhenDeadlineOrTargetUnset) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  // deadline == 0: note_disruption is a no-op.
  {
    AnomalyBank bank;
    AnomalyConfig cfg;
    cfg.slo_p99_ns = kSlo;
    bank.arm(cfg);
    bank.note_disruption(2, 1000);
    EXPECT_FALSE(bank.convergence_watch_armed(2));
  }
  // slo target == 0: no p99 target to recover to — also off.
  {
    AnomalyBank bank;
    AnomalyConfig cfg;
    cfg.convergence_deadline_ns = kDeadline;
    bank.arm(cfg);
    bank.note_disruption(2, 1000);
    EXPECT_FALSE(bank.convergence_watch_armed(2));
  }
}

TEST(ConvergenceTest, ResetClearsWatchesAndRecoveries) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank = armed_bank();
  bank.note_disruption(2, 1000);
  fill_window(bank, 2, 1000, kSlo / 2);
  bank.on_delivery(2, kSlo / 2, 1000 + kWindow + 1);
  ASSERT_EQ(bank.recoveries().size(), 1u);
  bank.note_disruption(3, 2000);
  bank.reset();
  EXPECT_TRUE(bank.recoveries().empty());
  EXPECT_FALSE(bank.convergence_watch_armed(3));
}

}  // namespace
}  // namespace prism::telemetry
