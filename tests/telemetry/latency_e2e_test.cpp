// End-to-end latency attribution: after a two-flow run, the per-stage
// ledger durations must telescope exactly — for every priority class,
// the six segment sums (ring wait, three service stages, two queue
// waits) add up to the end-to-end sum, because each segment is the
// difference of adjacent skb timestamps. Also covers the prism/latency
// and prism/flows proc files and per-flow accounting consistency.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "json_check.h"
#include "telemetry/flow_table.h"
#include "telemetry/latency.h"
#include "trace/packet_trace.h"
#include "trace/poll_trace.h"

namespace prism {
namespace {

class LatencyE2eTest : public ::testing::Test {
 protected:
  void run(kernel::NapiMode mode) {
    harness::TestbedConfig tc;
    tc.mode = mode;
    tb_ = std::make_unique<harness::Testbed>(tc);
    auto& cli = tb_->add_client_container("cli");
    auto& srv_hi = tb_->add_server_container("srv-hi");
    auto& srv_bg = tb_->add_server_container("srv-bg");
    tb_->server().priority_db().add(srv_hi.ip(), 11111);

    hi_server_ = std::make_unique<apps::SockperfServer>(
        tb_->sim(),
        apps::SockperfServer::Config{&tb_->server(), &srv_hi,
                                     &tb_->server().cpu(1), 11111});
    bg_server_ = std::make_unique<apps::SockperfServer>(
        tb_->sim(),
        apps::SockperfServer::Config{&tb_->server(), &srv_bg,
                                     &tb_->server().cpu(2), 22222});

    apps::SockperfClient::Config hi;
    hi.host = &tb_->client();
    hi.ns = &cli;
    hi.cpus = {&tb_->client().cpu(1)};
    hi.dst_ip = srv_hi.ip();
    hi.dst_port = 11111;
    hi.rate_pps = 50'000;
    hi.stop_at = sim::milliseconds(4);
    hi_client_ = std::make_unique<apps::SockperfClient>(tb_->sim(), hi);

    apps::SockperfClient::Config bg;
    bg.host = &tb_->client();
    bg.ns = &cli;
    bg.cpus = {&tb_->client().cpu(2)};
    bg.base_src_port = 30000;
    bg.dst_ip = srv_bg.ip();
    bg.dst_port = 22222;
    bg.rate_pps = 200'000;
    bg.burst = 32;
    bg.stop_at = sim::milliseconds(4);
    bg_client_ = std::make_unique<apps::SockperfClient>(tb_->sim(), bg);

    hi_client_->start();
    bg_client_->start();
    tb_->sim().run_until(sim::milliseconds(8));
  }

  std::unique_ptr<harness::Testbed> tb_;
  std::unique_ptr<apps::SockperfServer> hi_server_;
  std::unique_ptr<apps::SockperfServer> bg_server_;
  std::unique_ptr<apps::SockperfClient> hi_client_;
  std::unique_ptr<apps::SockperfClient> bg_client_;
};

TEST_F(LatencyE2eTest, StageDurationsTelescopeToEndToEnd) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  run(kernel::NapiMode::kPrismSync);
  const auto& ledger = tb_->server().latency_ledger();

  EXPECT_EQ(ledger.unattributed(), 0u);

  std::uint64_t attributed = 0;
  for (int level = 0; level < telemetry::kNumLatencyClasses; ++level) {
    const auto& e2e = ledger.histogram(
        telemetry::LatencyStage::kEndToEnd, level);
    if (e2e.count() == 0) continue;
    attributed += e2e.count();
    double segment_sum = 0.0;
    for (const auto s : {telemetry::LatencyStage::kRingWait,
                         telemetry::LatencyStage::kStage1Service,
                         telemetry::LatencyStage::kStage2Wait,
                         telemetry::LatencyStage::kStage2Service,
                         telemetry::LatencyStage::kStage3Wait,
                         telemetry::LatencyStage::kStage3Service}) {
      segment_sum += ledger.histogram(s, level).sum();
    }
    // Exact: each segment is a difference of adjacent timestamps and
    // sum() accumulates raw values, so the telescoping holds to the ns.
    EXPECT_DOUBLE_EQ(segment_sum, e2e.sum()) << "class " << level;
  }

  // Every delivery the deliverer made was attributed to some class.
  EXPECT_GT(attributed, 0u);
  EXPECT_EQ(attributed, tb_->server().deliverer().delivered());

  // Both priority classes saw traffic (probe flow is class 1+).
  EXPECT_GT(
      ledger.histogram(telemetry::LatencyStage::kEndToEnd, 0).count(), 0u);
  std::uint64_t high = 0;
  for (int level = 1; level < telemetry::kNumLatencyClasses; ++level) {
    high += ledger.histogram(telemetry::LatencyStage::kEndToEnd, level)
                .count();
  }
  EXPECT_GT(high, 0u);
}

TEST_F(LatencyE2eTest, AuxiliaryAxesArePopulated) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  run(kernel::NapiMode::kVanilla);
  const auto& ledger = tb_->server().latency_ledger();

  // IRQ-to-poll is recorded once per device poll wakeup.
  EXPECT_GT(
      ledger.histogram(telemetry::LatencyStage::kIrqToPoll, 0).count(),
      0u);
  // The sockperf servers read everything they were sent, so socket wait
  // has one sample per read datagram.
  const auto read_total = hi_server_->received() + bg_server_->received();
  std::uint64_t socket_wait = 0;
  for (int level = 0; level < telemetry::kNumLatencyClasses; ++level) {
    socket_wait +=
        ledger.histogram(telemetry::LatencyStage::kSocketWait, level)
            .count();
  }
  EXPECT_EQ(socket_wait, read_total);
}

TEST_F(LatencyE2eTest, FlowTableAccountsDeliveredTraffic) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  run(kernel::NapiMode::kPrismBatch);
  const auto& flows = tb_->server().flow_table();

  EXPECT_GT(flows.size(), 0u);
  std::uint64_t packets = 0;
  for (const auto* e : flows.entries()) {
    packets += e->packets;
    EXPECT_GE(e->last_seen, e->first_seen);
    EXPECT_GT(e->bytes, 0u);
  }
  // No evictions in a two-flow run, so the table is a complete account.
  EXPECT_EQ(flows.evictions(), 0u);
  EXPECT_EQ(packets, tb_->server().deliverer().delivered());
}

TEST_F(LatencyE2eTest, ProcFilesRoundTripAsJson) {
  run(kernel::NapiMode::kPrismSync);
  auto& proc = tb_->server().proc();

  const std::string latency = proc.read("prism/latency");
  EXPECT_TRUE(::prism::testing::is_valid_json(latency)) << latency;
  EXPECT_NE(latency.find("\"stages\""), std::string::npos);
#if PRISM_TELEMETRY_ENABLED
  EXPECT_NE(latency.find("\"end_to_end\""), std::string::npos);
  EXPECT_NE(latency.find("\"ring_wait\""), std::string::npos);
#endif

  const std::string flows = proc.read("prism/flows");
  EXPECT_TRUE(::prism::testing::is_valid_json(flows)) << flows;
  EXPECT_NE(flows.find("\"flows\""), std::string::npos);
  EXPECT_NE(flows.find("\"evictions\""), std::string::npos);

  // The combined telemetry file nests both plus ring-drop accounting.
  const std::string all = proc.read("prism/telemetry");
  EXPECT_TRUE(::prism::testing::is_valid_json(all)) << all;
  EXPECT_NE(all.find("\"latency\""), std::string::npos);
  EXPECT_NE(all.find("\"flows\""), std::string::npos);
  EXPECT_NE(all.find("\"rings\""), std::string::npos);
  EXPECT_NE(all.find("\"dropped\""), std::string::npos);
  // Unattached rings don't invent entries.
  EXPECT_EQ(all.find("\"packet_trace\""), std::string::npos);

  // Attached poll/packet trace rings report retention alongside spans.
  trace::PollTrace poll;
  trace::PacketTrace packets;
  tb_->server().set_poll_trace(tb_->server().default_rx_cpu(), &poll);
  tb_->server().deliverer().set_packet_trace(&packets);
  const std::string with_rings = proc.read("prism/telemetry");
  EXPECT_TRUE(::prism::testing::is_valid_json(with_rings)) << with_rings;
  EXPECT_NE(with_rings.find(".poll_trace\""), std::string::npos);
  EXPECT_NE(with_rings.find("\"packet_trace\""), std::string::npos);
  tb_->server().set_poll_trace(tb_->server().default_rx_cpu(), nullptr);
  tb_->server().deliverer().set_packet_trace(nullptr);
}

}  // namespace
}  // namespace prism
