#include "telemetry/anomaly.h"

#include <string>

#include <gtest/gtest.h>

#include "json_check.h"
#include "net/flow.h"
#include "net/ip.h"
#include "sim/time.h"
#include "telemetry/flight_recorder.h"

namespace prism::telemetry {
namespace {

net::FiveTuple tuple(std::uint16_t src_port) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  t.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = 9000;
  t.protocol = net::IpProto::kUdp;
  return t;
}

constexpr sim::Duration kT = sim::microseconds(100);  // default inversion T

// The CI telemetry-off job runs this suite explicitly: with
// -DPRISM_TELEMETRY=OFF the bank must never arm and never fire, and the
// proc document must say so.
TEST(AnomalyTest, CompiledOutBankNeverFires) {
#if PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled in; armed behavior covered below";
#else
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.slo_p99_ns = 1;
  cfg.drop_burst_threshold = 1;
  cfg.flap_threshold = 1;
  bank.arm(cfg);
  EXPECT_FALSE(bank.armed());
  bank.on_stage_wait(tuple(1), 3, 3, sim::milliseconds(10), 0, 0);
  bank.on_delivery(3, sim::milliseconds(10), 0);
  bank.on_drop(0, 0, 0);
  bank.on_governor_transition(0, 0, 1, "test");
  EXPECT_EQ(bank.fired_total(), 0u);
  EXPECT_TRUE(bank.findings().empty());
  const std::string json = anomalies_json(bank, nullptr);
  EXPECT_NE(json.find("\"compiled_in\":false"), std::string::npos) << json;
#endif
}

TEST(AnomalyTest, QueueInversionNeedsLowerHeadAndThresholdWait) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;  // default: inversion detector only
  // Below the wait threshold: no firing.
  bank.on_stage_wait(tuple(1), 3, 2, kT - 1, /*head=*/0, 1000);
  // Queued behind an equal or higher class: not an inversion.
  bank.on_stage_wait(tuple(1), 3, 2, kT, /*head=*/2, 2000);
  bank.on_stage_wait(tuple(1), 3, 2, kT, /*head=*/3, 3000);
  // Class 0 has nothing to invert against.
  bank.on_stage_wait(tuple(1), 3, 0, kT * 10, /*head=*/0, 4000);
  EXPECT_EQ(bank.fired_total(), 0u);

  bank.on_stage_wait(tuple(7), 3, 2, kT, /*head=*/1, 5000);
  EXPECT_EQ(bank.fired(AnomalyKind::kQueueInversion), 1u);
  ASSERT_EQ(bank.findings().size(), 1u);
  const AnomalyFinding& f = bank.findings()[0];
  EXPECT_EQ(f.kind, AnomalyKind::kQueueInversion);
  EXPECT_EQ(f.stage, 3);
  EXPECT_EQ(f.level, 2);
  EXPECT_EQ(f.head_level, 1);
  EXPECT_EQ(f.wait_ns, kT);
  EXPECT_EQ(bank.max_inversion_wait_ns(), kT);
  EXPECT_EQ(bank.worst_inversion_flow().src_port, 7);
}

TEST(AnomalyTest, RingInversionOnlyOnStageOneFifo) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  // head -1 on a stage-2 queue means "was empty" — not an inversion.
  bank.on_stage_wait(tuple(1), 2, 2, kT * 2, /*head=*/-1, 1000);
  EXPECT_EQ(bank.fired_total(), 0u);
  // Same observation at stage 1 is the priority-blind NIC ring.
  bank.on_stage_wait(tuple(1), 1, 2, kT * 2, /*head=*/-1, 2000);
  EXPECT_EQ(bank.fired(AnomalyKind::kRingInversion), 1u);
  EXPECT_EQ(bank.fired(AnomalyKind::kQueueInversion), 0u);
}

TEST(AnomalyTest, SloBreachFiresOnWindowCloseForHighClassesOnly) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.slo_p99_ns = sim::microseconds(50);
  cfg.slo_window_ns = sim::milliseconds(1);
  bank.arm(cfg);
  // Class-1 window full of 200us latencies...
  for (int i = 0; i < 100; ++i) {
    bank.on_delivery(1, sim::microseconds(200), i * 1000);
  }
  EXPECT_EQ(bank.fired(AnomalyKind::kSloBreach), 0u);  // window still open
  // ...fires once the next delivery closes the window.
  bank.on_delivery(1, sim::microseconds(1), sim::milliseconds(1) + 1);
  EXPECT_EQ(bank.fired(AnomalyKind::kSloBreach), 1u);
  ASSERT_FALSE(bank.findings().empty());
  const AnomalyFinding& f = bank.findings().back();
  EXPECT_EQ(f.kind, AnomalyKind::kSloBreach);
  EXPECT_EQ(f.level, 1);
  EXPECT_GE(f.value, static_cast<double>(sim::microseconds(200)));
  EXPECT_EQ(f.threshold, static_cast<double>(cfg.slo_p99_ns));

  // Class 0 never breaches: best-effort traffic has no SLO.
  AnomalyBank be;
  be.arm(cfg);
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 100; ++i) {
      be.on_delivery(0, sim::milliseconds(5),
                     w * sim::milliseconds(1) + i * 1000);
    }
  }
  be.on_delivery(0, 1, sim::milliseconds(10));
  EXPECT_EQ(be.fired(AnomalyKind::kSloBreach), 0u);
}

TEST(AnomalyTest, SloQuietWindowsNeverBreach) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.slo_p99_ns = sim::milliseconds(10);
  bank.arm(cfg);
  for (int i = 0; i < 1000; ++i) {
    bank.on_delivery(2, sim::microseconds(20), i * sim::microseconds(5));
  }
  EXPECT_EQ(bank.fired(AnomalyKind::kSloBreach), 0u);
}

TEST(AnomalyTest, DropBurstFiresOncePerWindow) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.drop_burst_threshold = 3;
  cfg.drop_burst_window_ns = sim::milliseconds(1);
  bank.arm(cfg);
  for (int i = 0; i < 5; ++i) bank.on_drop(/*reason=*/2, 0, i * 1000);
  EXPECT_EQ(bank.fired(AnomalyKind::kDropBurst), 1u);  // once, not thrice
  // A new window re-arms the detector.
  for (int i = 0; i < 3; ++i) {
    bank.on_drop(2, 0, sim::milliseconds(2) + i * 1000);
  }
  EXPECT_EQ(bank.fired(AnomalyKind::kDropBurst), 2u);
  // Two drops per window forever never reach the threshold.
  AnomalyBank sparse;
  sparse.arm(cfg);
  for (int w = 0; w < 10; ++w) {
    sparse.on_drop(2, 0, w * sim::milliseconds(1));
    sparse.on_drop(2, 0, w * sim::milliseconds(1) + 1);
  }
  EXPECT_EQ(sparse.fired(AnomalyKind::kDropBurst), 0u);
}

TEST(AnomalyTest, GovernorFlapFiresAtThresholdTransitions) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.flap_threshold = 4;
  cfg.flap_window_ns = sim::milliseconds(10);
  bank.arm(cfg);
  for (int i = 0; i < 3; ++i) {
    bank.on_governor_transition(i * 1000, i % 2, (i + 1) % 2, "osc");
  }
  EXPECT_EQ(bank.fired(AnomalyKind::kGovernorFlap), 0u);
  bank.on_governor_transition(4000, 1, 0, "osc");
  EXPECT_EQ(bank.fired(AnomalyKind::kGovernorFlap), 1u);
  const AnomalyFinding& f = bank.findings().back();
  EXPECT_EQ(f.value, 4.0);
}

TEST(AnomalyTest, FindingsCapKeepsCountingAndFreezesEvidence) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  for (int i = 0; i < 10; ++i) {
    rec.on_enqueue(tuple(1), 2, 1, i, -1, i);
  }
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.max_findings = 1;
  cfg.freeze_events = 4;
  bank.arm(cfg);
  bank.set_recorder(&rec);
  bank.on_stage_wait(tuple(1), 3, 2, kT, 0, 1000);
  bank.on_stage_wait(tuple(1), 3, 2, kT * 2, 0, 2000);
  EXPECT_EQ(bank.fired(AnomalyKind::kQueueInversion), 2u);
  ASSERT_EQ(bank.findings().size(), 1u);  // capped, but still counted
  EXPECT_EQ(bank.findings_dropped(), 1u);
  // The retained finding carries the newest recorder slice as evidence.
  const auto& frozen = bank.findings()[0].frozen;
  ASSERT_EQ(frozen.size(), 4u);
  EXPECT_EQ(frozen.front().at, 6);
  EXPECT_EQ(frozen.back().at, 9);
  // The worst-inversion stats keep tracking past the cap.
  EXPECT_EQ(bank.max_inversion_wait_ns(), kT * 2);
}

TEST(AnomalyTest, JsonIsWellFormedAndNamesEveryKind) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  FlightRecorder rec;
  rec.on_deliver(tuple(3), 1, 500, 500);
  AnomalyBank bank;
  bank.set_recorder(&rec);
  bank.on_stage_wait(tuple(3), 2, 1, kT, 0, 1000);
  const std::string json = anomalies_json(bank, &rec);
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;
  for (const char* key :
       {"queue_inversion", "ring_inversion", "slo_breach", "drop_burst",
        "governor_flap", "fired_total", "findings", "frozen", "recorder",
        "worst_inversion_flow"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(AnomalyTest, ResetClearsStateKeepsConfigArmed) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  AnomalyBank bank;
  AnomalyConfig cfg;
  cfg.drop_burst_threshold = 2;
  bank.arm(cfg);
  bank.on_stage_wait(tuple(1), 3, 2, kT, 0, 1000);
  bank.on_drop(0, 0, 2000);
  bank.on_drop(0, 0, 2001);
  EXPECT_GT(bank.fired_total(), 0u);
  bank.reset();
  EXPECT_EQ(bank.fired_total(), 0u);
  EXPECT_TRUE(bank.findings().empty());
  EXPECT_EQ(bank.max_inversion_wait_ns(), 0);
  EXPECT_TRUE(bank.armed());
  EXPECT_EQ(bank.config().drop_burst_threshold, 2u);
  // Detectors re-fire from scratch after the reset.
  bank.on_drop(0, 0, sim::milliseconds(5));
  bank.on_drop(0, 0, sim::milliseconds(5) + 1);
  EXPECT_EQ(bank.fired(AnomalyKind::kDropBurst), 1u);
}

}  // namespace
}  // namespace prism::telemetry
