// Cluster-wide telemetry roll-up: counter/gauge merging sums by name in
// first-seen order, and the merged latency document is built from merged
// histograms (fleet percentiles over one combined distribution), so its
// counts equal the sum of the per-host ledgers.
#include "telemetry/rollup.h"

#include <string>

#include <gtest/gtest.h>

#include "telemetry/json_writer.h"
#include "telemetry/latency.h"
#include "telemetry/metrics.h"

namespace prism::telemetry {
namespace {

constexpr auto npos = std::string::npos;

TEST(RollupTest, MergeCountersSumsByNameInFirstSeenOrder) {
  Registry a;
  Registry b;
  a.counter("rx").inc(3);
  a.counter("tx").inc(1);
  b.counter("tx").inc(5);
  b.counter("drops").inc(2);
  const auto merged = merge_counters({&a, &b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "rx");
  EXPECT_EQ(merged[1].name, "tx");
  EXPECT_EQ(merged[2].name, "drops");
#if PRISM_TELEMETRY_ENABLED
  EXPECT_EQ(merged[0].value, 3u);
  EXPECT_EQ(merged[1].value, 6u);
  EXPECT_EQ(merged[2].value, 2u);
#else
  // Increments compile out; the merge still sees every registered name.
  for (const auto& c : merged) EXPECT_EQ(c.value, 0u);
#endif
  // Null registries are tolerated (a host that never initialized).
  EXPECT_EQ(merge_counters({nullptr, &a}).size(), 2u);
}

TEST(RollupTest, MergeGaugesSumsValuesAndHighWaters) {
  Registry a;
  Registry b;
  a.gauge("backlog").set(7);
  a.gauge("backlog").set(3);  // max stays 7
  b.gauge("backlog").set(10);
  const auto merged = merge_gauges({&a, &b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].name, "backlog");
#if PRISM_TELEMETRY_ENABLED
  EXPECT_EQ(merged[0].value, 13);
  // Summed high-waters: a conservative fleet-wide bound (the per-host
  // maxima need not have coincided in time).
  EXPECT_EQ(merged[0].max_value, 17);
#else
  EXPECT_EQ(merged[0].value, 0);
  EXPECT_EQ(merged[0].max_value, 0);
#endif
}

TEST(RollupTest, MergedRegistryJsonHasBothSections) {
  Registry a;
  a.counter("rx").inc(4);
  a.gauge("depth").set(2);
  JsonWriter w;
  write_merged_registry_json(w, {&a});
  const std::string doc = w.take();
#if PRISM_TELEMETRY_ENABLED
  EXPECT_NE(doc.find("\"counters\":{\"rx\":4}"), npos) << doc;
  EXPECT_NE(doc.find("\"depth\":{\"value\":2,\"max\":2}"), npos) << doc;
#else
  EXPECT_NE(doc.find("\"counters\":{\"rx\":0}"), npos) << doc;
#endif
}

TEST(RollupTest, MergedLatencyCountsEqualSumOfHosts) {
  LatencyLedger a;
  LatencyLedger b;
  a.record_irq_to_poll(1'000);
  a.record_irq_to_poll(2'000);
  b.record_irq_to_poll(1'500);
  JsonWriter w;
  write_merged_latency_json(w, {&a, &b, nullptr});
  const std::string doc = w.take();
  EXPECT_NE(doc.find("\"hosts\":2"), npos) << doc;
#if PRISM_TELEMETRY_ENABLED
  const auto& ha = a.histogram(LatencyStage::kIrqToPoll, 0);
  const auto& hb = b.histogram(LatencyStage::kIrqToPoll, 0);
  ASSERT_EQ(ha.count() + hb.count(), 3u);
  // The merged row aggregates one combined histogram: exact count and
  // exact sum across both hosts.
  EXPECT_NE(doc.find("\"count\":3"), npos) << doc;
  EXPECT_NE(doc.find("\"sum_ns\":4500"), npos) << doc;
#else
  // Recording compiles out: no stage rows at all.
  EXPECT_NE(doc.find("\"stages\":[]"), npos) << doc;
#endif
}

TEST(RollupTest, LanesJsonWithoutProfilerIsAnHonestStub) {
  const std::string doc = lanes_json(nullptr);
  EXPECT_NE(doc.find("\"attached\":false"), npos) << doc;
  EXPECT_NE(doc.find("\"rounds\":0"), npos) << doc;
#if PRISM_TELEMETRY_ENABLED
  EXPECT_NE(doc.find("\"compiled_in\":true"), npos) << doc;
#else
  EXPECT_NE(doc.find("\"compiled_in\":false"), npos) << doc;
#endif
}

}  // namespace
}  // namespace prism::telemetry
