#include <gtest/gtest.h>

#include <cstdint>

#include "json_check.h"
#include "telemetry/json_writer.h"

namespace prism::telemetry {
namespace {

TEST(JsonWriterTest, EmptyContainers) {
  EXPECT_EQ(JsonWriter().begin_object().end_object().take(), "{}");
  EXPECT_EQ(JsonWriter().begin_array().end_array().take(), "[]");
}

TEST(JsonWriterTest, CommasBetweenMembersOnly) {
  JsonWriter w;
  w.begin_object()
      .member("a", 1)
      .member("b", 2)
      .key("c")
      .begin_array()
      .value(3)
      .value(4)
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":2,"c":[3,4]})");
  EXPECT_TRUE(::prism::testing::is_valid_json(w.str()));
}

TEST(JsonWriterTest, NestedObjectsResumeCommaState) {
  JsonWriter w;
  w.begin_object()
      .key("outer")
      .begin_object()
      .member("x", 1)
      .end_object()
      .member("after", 2)  // needs a comma after the nested object
      .end_object();
  EXPECT_EQ(w.str(), R"({"outer":{"x":1},"after":2})");
}

TEST(JsonWriterTest, ScalarTypes) {
  JsonWriter w;
  w.begin_array()
      .value(true)
      .value(false)
      .value(std::uint64_t{18446744073709551615ull})
      .value(std::int64_t{-42})
      .value(1.5)
      .value("text")
      .end_array();
  EXPECT_EQ(w.str(), R"([true,false,18446744073709551615,-42,1.5,"text"])");
  EXPECT_TRUE(::prism::testing::is_valid_json(w.str()));
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.begin_object().member("k\"ey", "a\\b\n\t\x01").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"ey\":\"a\\\\b\\n\\t\\u0001\"}");
  EXPECT_TRUE(::prism::testing::is_valid_json(w.str()));
}

TEST(JsonWriterTest, RawEmbedsPrerenderedValues) {
  JsonWriter inner;
  inner.begin_object().member("counters", 3).end_object();

  JsonWriter w;
  w.begin_object()
      .member("before", 1)
      .key("telemetry")
      .raw(inner.str())
      .member("after", 2)
      .end_object();
  EXPECT_EQ(w.str(), R"({"before":1,"telemetry":{"counters":3},"after":2})");
  EXPECT_TRUE(::prism::testing::is_valid_json(w.str()));
}

TEST(JsonWriterTest, RawAsArrayElement) {
  JsonWriter w;
  w.begin_array().value(1).raw("{\"x\":2}").value(3).end_array();
  EXPECT_EQ(w.str(), R"([1,{"x":2},3])");
}

TEST(JsonCheckerSelfTest, RejectsMalformedInput) {
  using ::prism::testing::is_valid_json;
  EXPECT_TRUE(is_valid_json(R"({"a": [1, 2.5e3, "s"], "b": null})"));
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));
  EXPECT_FALSE(is_valid_json(R"(["unterminated)"));
  EXPECT_FALSE(is_valid_json("{\"a\":1} trailing"));
  EXPECT_FALSE(is_valid_json("01a"));
}

}  // namespace
}  // namespace prism::telemetry
