#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/time.h"
#include "telemetry/span_tracer.h"
#include "json_check.h"

namespace prism::telemetry {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(SpanTracerTest, InternIsStable) {
  SpanTracer tracer;
  const auto eth = tracer.intern("eth");
  const auto br = tracer.intern("br");
  EXPECT_NE(eth, br);
  EXPECT_EQ(tracer.intern("eth"), eth);
  EXPECT_EQ(tracer.name(eth), "eth");
  EXPECT_EQ(tracer.name(br), "br");
}

TEST(SpanTracerTest, RecordsSpansOldestFirst) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: span() records nothing";
#endif
  SpanTracer tracer;
  const auto id = tracer.intern("poll");
  tracer.span(0, id, 100, 50, 7);
  tracer.instant(1, id, 200);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const auto& first = tracer.at(0);
  EXPECT_EQ(first.begin, 100);
  EXPECT_EQ(first.duration, 50);
  EXPECT_EQ(first.track, 0);
  EXPECT_EQ(first.arg, 7u);
  EXPECT_FALSE(first.instant);

  const auto& second = tracer.at(1);
  EXPECT_EQ(second.begin, 200);
  EXPECT_EQ(second.track, 1);
  EXPECT_TRUE(second.instant);
}

TEST(SpanTracerTest, RingOverwritesOldestWhenFull) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: span() records nothing";
#endif
  SpanTracer tracer(4);
  const auto id = tracer.intern("poll");
  for (sim::Time t = 0; t < 10; ++t) tracer.span(0, id, t, 1);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The newest 4 spans survive, oldest-first: begins 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tracer.at(i).begin, static_cast<sim::Time>(6 + i));
  }
}

TEST(SpanTracerTest, ClearResetsRingAndCountersNotNames) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: span() records nothing";
#endif
  SpanTracer tracer(4);
  const auto id = tracer.intern("poll");
  for (int i = 0; i < 6; ++i) tracer.span(0, id, i, 1);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.intern("poll"), id);  // name table survives
}

TEST(SpanTracerTest, ZeroCapacityIsRejected) {
  EXPECT_THROW(SpanTracer(0), std::invalid_argument);
}

TEST(SpanTracerTest, ChromeExportIsWellFormedJson) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: span() records nothing";
#endif
  SpanTracer tracer;
  tracer.set_track_label(0, "server.cpu0");
  tracer.set_track_label(1, "server.cpu1");
  const auto poll = tracer.intern("net_rx_action");
  const auto irq = tracer.intern("irq \"q0\"\n");  // needs escaping
  tracer.span(0, poll, 1000, 500, 64);
  tracer.span(1, poll, 2000, 250);
  tracer.instant(0, irq, 900);

  const std::string json = tracer.export_chrome_trace("prism-test");
  EXPECT_TRUE(::prism::testing::is_valid_json(json)) << json;

  // One process_name + two thread_name metadata records.
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"server.cpu0\""), std::string::npos);
  EXPECT_NE(json.find("\"prism-test\""), std::string::npos);

  // Two complete spans, one instant; the poll arg rides along.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"packets\":64"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(SpanTracerTest, ChromeExportTimesAreMicroseconds) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: span() records nothing";
#endif
  SpanTracer tracer;
  const auto id = tracer.intern("poll");
  tracer.span(0, id, sim::microseconds(3), sim::microseconds(2));
  const std::string json = tracer.export_chrome_trace();
  EXPECT_NE(json.find("\"ts\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos) << json;
}

TEST(SpanTracerTest, ExportFileRoundTrips) {
  SpanTracer tracer;
  tracer.span(0, tracer.intern("poll"), 100, 10);
  const std::string path =
      ::testing::TempDir() + "span_tracer_test_trace.json";
  ASSERT_TRUE(tracer.export_chrome_trace_file(path, "roundtrip"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), tracer.export_chrome_trace("roundtrip"));
  std::remove(path.c_str());
}

TEST(SpanTracerTest, ExportFileFailsOnBadPath) {
  SpanTracer tracer;
  EXPECT_FALSE(tracer.export_chrome_trace_file(
      "/nonexistent-dir-for-prism-test/trace.json"));
}

}  // namespace
}  // namespace prism::telemetry
