// Reconciliation between the two drop-accounting surfaces: the per-flow
// last-N drop-reason history in "prism/flows" and the per-(reason,
// class) totals in the DropLedger ("prism/faults"). Both are fed from
// the same socket-delivery call sites, so for the socket-layer reasons
// (checksum, no-socket, alloc-fail) the flow table's drop counts must
// sum to exactly the ledger's totals — a divergence means one surface
// lies about why packets died.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sockperf.h"
#include "fault/fault.h"
#include "harness/testbed.h"
#include "net/flow.h"
#include "net/ip.h"
#include "sim/time.h"
#include "telemetry/flow_table.h"

namespace prism {
namespace {

net::FiveTuple tuple(std::uint16_t src_port) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  t.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = 9000;
  t.protocol = net::IpProto::kUdp;
  return t;
}

TEST(FlowDropReconcileTest, DropHistoryIsNewestFirstBoundedRing) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  telemetry::FlowTable table;
  const auto f = tuple(1);
  // More drops than the history holds: the ring must keep the newest
  // kDropHistory reasons, most recent first.
  for (int r = 0; r < 12; ++r) table.record_drop(f, 0, r, r);
  const auto* e = table.lookup(f);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->drops, 12u);
  const auto recent = e->recent_drop_reasons();
  ASSERT_EQ(recent.size(), telemetry::FlowTable::kDropHistory);
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i], 11 - static_cast<int>(i));
  }
  // Fewer drops than the window: only the recorded ones are visible.
  const auto g = tuple(2);
  table.record_drop(g, 0, 100, /*reason=*/5);
  table.record_drop(g, 0, 101, /*reason=*/3);
  const auto* ge = table.lookup(g);
  ASSERT_NE(ge, nullptr);
  const auto grecent = ge->recent_drop_reasons();
  ASSERT_EQ(grecent.size(), 2u);
  EXPECT_EQ(grecent[0], 3);
  EXPECT_EQ(grecent[1], 5);
}

TEST(FlowDropReconcileTest, SocketLayerDropsMatchDropLedgerTotals) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#endif
  // One delivered flow (bound socket) and one undeliverable flow (no
  // socket on the port) through the real testbed pipeline.
  harness::TestbedConfig tc;
  harness::Testbed tb(tc);
  auto& good_ns = tb.add_client_container("cli-good");
  auto& bad_ns = tb.add_client_container("cli-bad");
  auto& srv = tb.add_server_container("srv");
  tb.server().priority_db().add(srv.ip(), 11111);
  apps::SockperfServer server(
      tb.server_sim(), {&tb.server(), &srv, &tb.server().cpu(1), 11111});

  auto make_client = [&](overlay::Netns& ns, kernel::Cpu& cpu,
                         std::uint16_t dst_port) {
    apps::SockperfClient::Config clc;
    clc.host = &tb.client();
    clc.ns = &ns;
    clc.cpus = {&cpu};
    clc.dst_ip = srv.ip();
    clc.dst_port = dst_port;
    clc.rate_pps = 50'000.0;
    clc.reply_every = 4;
    clc.stop_at = sim::milliseconds(2);
    return apps::SockperfClient(tb.client_sim(), clc);
  };
  auto good = make_client(good_ns, tb.client().cpu(1), 11111);
  auto bad = make_client(bad_ns, tb.client().cpu(2), 7777);  // unbound
  good.start();
  bad.start();
  tb.run_until(sim::milliseconds(3));
  ASSERT_GT(server.received(), 0u);

  // Socket-layer reasons the deliverer threads into the flow table.
  const auto& ledger = tb.server().faults().drops;
  const std::uint64_t socket_layer_drops =
      ledger.total(fault::DropReason::kChecksum) +
      ledger.total(fault::DropReason::kNoSocket) +
      ledger.total(fault::DropReason::kAllocFail);
  ASSERT_GT(ledger.total(fault::DropReason::kNoSocket), 0u);

  auto& table = tb.server().flow_table();
  ASSERT_EQ(table.evictions(), 0u);  // exactness needs the full history
  std::uint64_t flow_drops = 0;
  const telemetry::FlowTable::Entry* victim = nullptr;
  for (const auto* e : table.entries()) {
    flow_drops += e->drops;
    if (e->drops > 0) victim = e;
  }
  EXPECT_EQ(flow_drops, socket_layer_drops)
      << "prism/flows and prism/faults disagree on socket-layer drops";

  // The victim flow remembers WHY: every recent reason is no-socket, and
  // the window is full (the flood outran kDropHistory).
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->flow.dst_port, 7777);
  EXPECT_EQ(victim->packets, 0u);
  EXPECT_GT(victim->drops, telemetry::FlowTable::kDropHistory);
  const auto recent = victim->recent_drop_reasons();
  ASSERT_EQ(recent.size(), telemetry::FlowTable::kDropHistory);
  for (const int reason : recent) {
    EXPECT_EQ(reason, static_cast<int>(fault::DropReason::kNoSocket));
  }

  // The delivered flow carries no drop history at all.
  for (const auto* e : table.entries()) {
    if (e == victim) continue;
    EXPECT_EQ(e->drops, 0u);
    EXPECT_TRUE(e->recent_drop_reasons().empty());
  }
}

}  // namespace
}  // namespace prism
