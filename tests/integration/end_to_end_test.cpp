// End-to-end integration tests: full frames through both hosts' simulated
// stacks — native path, overlay path, local bridging, PRISM
// classification, and TCP.
#include <gtest/gtest.h>

#include "harness/testbed.h"

namespace prism {
namespace {

using harness::Testbed;
using harness::TestbedConfig;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string text_of(const std::vector<std::uint8_t>& v) {
  return {v.begin(), v.end()};
}

TEST(EndToEndTest, HostPathUdpDelivery) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  tb.client().udp_send(tb.client().root_ns(), tb.client().cpu(1), 5555,
                       tb.server().ip(), 9000, bytes_of("native hello"));
  tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  const auto d = sock.try_recv();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(d->payload), "native hello");
  EXPECT_EQ(d->src_ip, tb.client().ip());
  EXPECT_EQ(d->src_port, 5555);
  // Single-stage path: bridge/backlog never touched.
  EXPECT_GT(d->enqueued_at, 0);
  EXPECT_EQ(d->ts.stage2_done, -1);
  EXPECT_EQ(d->ts.stage3_done, -1);
}

TEST(EndToEndTest, OverlayUdpCrossHost) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sock = tb.server().udp_bind(c2, 7000);
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                       bytes_of("over the overlay"));
  tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  const auto d = sock.try_recv();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(d->payload), "over the overlay");
  EXPECT_EQ(d->src_ip, c1.ip());
  // Three-stage path: every stage timestamp populated, in order.
  EXPECT_GE(d->ts.stage1_done, d->ts.nic_rx);
  EXPECT_GE(d->ts.stage2_done, d->ts.stage1_done);
  EXPECT_GE(d->ts.stage3_done, d->ts.stage2_done);
  EXPECT_GE(d->ts.socket_enqueue, d->ts.stage3_done);
}

TEST(EndToEndTest, OverlayUdpReplyPath) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& server_sock = tb.server().udp_bind(c2, 7000);
  auto& client_sock = tb.client().udp_bind(c1, 4444);
  // Server echoes on arrival.
  server_sock.set_on_readable([&] {
    auto d = server_sock.try_recv();
    ASSERT_TRUE(d.has_value());
    tb.server().udp_send(c2, tb.server().cpu(1), 7000, d->src_ip,
                         d->src_port, std::move(d->payload));
  });
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                       bytes_of("ping"));
  tb.sim().run();
  ASSERT_EQ(client_sock.received(), 1u);
  const auto d = client_sock.try_recv();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(d->payload), "ping");
  EXPECT_EQ(d->src_ip, c2.ip());
}

TEST(EndToEndTest, SameHostContainerToContainer) {
  Testbed tb;
  auto& a = tb.add_server_container("a");
  auto& b = tb.add_server_container("b");
  auto& sock = tb.server().udp_bind(b, 8000);
  tb.server().udp_send(a, tb.server().cpu(1), 1234, b.ip(), 8000,
                       bytes_of("local"));
  tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  EXPECT_EQ(text_of(sock.try_recv()->payload), "local");
  // Never crossed the wire.
  EXPECT_EQ(tb.wire().frames_delivered(), 0u);
}

TEST(EndToEndTest, PrismClassifiesHighPriorityFlows) {
  Testbed tb;
  tb.set_mode(kernel::NapiMode::kPrismBatch);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sock = tb.server().udp_bind(c2, 7000);
  auto& other = tb.server().udp_bind(c2, 7001);
  tb.server().priority_db().add(c2.ip(), 7000);

  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                       bytes_of("fast"));
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7001,
                       bytes_of("slow"));
  tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  ASSERT_EQ(other.received(), 1u);
  EXPECT_TRUE(sock.try_recv()->high_priority);
  EXPECT_FALSE(other.try_recv()->high_priority);
}

TEST(EndToEndTest, VanillaIgnoresPriorityDb) {
  Testbed tb;  // vanilla mode
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sock = tb.server().udp_bind(c2, 7000);
  tb.server().priority_db().add(c2.ip(), 7000);
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                       bytes_of("x"));
  tb.sim().run();
  ASSERT_EQ(sock.received(), 1u);
  EXPECT_FALSE(sock.try_recv()->high_priority);
}

TEST(EndToEndTest, ProcInterfaceControlsModeAndPriorities) {
  Testbed tb;
  auto& proc = tb.server().proc();
  EXPECT_EQ(proc.read("prism/mode"), "vanilla");
  EXPECT_TRUE(proc.write("prism/mode", "sync"));
  EXPECT_EQ(tb.server().mode(), kernel::NapiMode::kPrismSync);
  EXPECT_TRUE(proc.write("prism/priority", "add 172.17.0.2 7000"));
  EXPECT_TRUE(tb.server().priority_db().contains(
      net::Ipv4Addr::of(172, 17, 0, 2), 7000));
  EXPECT_EQ(proc.read("prism/priority"), "1");
  EXPECT_TRUE(proc.write("prism/priority", "del 172.17.0.2 7000"));
  EXPECT_TRUE(tb.server().priority_db().empty());
  EXPECT_FALSE(proc.write("prism/mode", "warp-speed"));
  EXPECT_FALSE(proc.write("prism/priority", "add not-an-ip 1"));
}

TEST(EndToEndTest, UnroutableFramesAreDroppedAndCounted) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  (void)c2;
  // No socket bound at the destination port.
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 9999,
                       bytes_of("nobody home"));
  tb.sim().run();
  EXPECT_EQ(tb.server().deliverer().no_socket_drops(), 1u);
}

TEST(EndToEndTest, UdpPayloadBeyondMtuRejected) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  std::vector<std::uint8_t> big(1500, 0xab);
  EXPECT_THROW(tb.client().udp_send(c1, tb.client().cpu(1), 1, c1.ip(), 2,
                                    std::move(big)),
               std::invalid_argument);
}

// --------------------------------------------------------------- TCP

TEST(EndToEndTest, TcpBulkTransferAcrossOverlay) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sender = tb.client().tcp_create(c1, c2.ip(), 40000, 5001);
  auto& receiver = tb.server().tcp_create(c2, c1.ip(), 5001, 40000);

  std::vector<std::uint8_t> received;
  receiver.on_data = [&](std::span<const std::uint8_t> data, sim::Time) {
    received.insert(received.end(), data.begin(), data.end());
  };

  std::vector<std::uint8_t> message(64 * 1024);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i * 31);
  }
  sender.send(message, tb.client().cpu(1));
  tb.sim().run();

  EXPECT_EQ(received, message);
  // Sender fully acknowledged; no retransmissions on a clean link.
  EXPECT_EQ(sender.unacked_bytes(), 0u);
  EXPECT_EQ(sender.retransmissions(), 0u);
  // GRO merged the 45-segment TSO train.
  EXPECT_GT(tb.server().nic_napi(0).gro_merged(), 30u);
}

TEST(EndToEndTest, TcpHostPathTransfer) {
  Testbed tb;
  auto& sender = tb.client().tcp_create(tb.client().root_ns(),
                                        tb.server().ip(), 40000, 5001);
  auto& receiver = tb.server().tcp_create(tb.server().root_ns(),
                                          tb.client().ip(), 5001, 40000);
  std::size_t total = 0;
  receiver.on_data = [&](std::span<const std::uint8_t> data, sim::Time) {
    total += data.size();
  };
  sender.send(std::vector<std::uint8_t>(10000, 0x5a), tb.client().cpu(1));
  tb.sim().run();
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(receiver.rcv_nxt(), 1u + 10000u);
}

TEST(EndToEndTest, TcpRequestResponse) {
  Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& client_ep = tb.client().tcp_create(c1, c2.ip(), 40000, 80);
  auto& server_ep = tb.server().tcp_create(c2, c1.ip(), 80, 40000);

  std::string got_request, got_response;
  server_ep.on_data = [&](std::span<const std::uint8_t> data, sim::Time) {
    got_request.append(data.begin(), data.end());
    server_ep.send(bytes_of("RESPONSE"), tb.server().cpu(1));
  };
  client_ep.on_data = [&](std::span<const std::uint8_t> data, sim::Time) {
    got_response.append(data.begin(), data.end());
  };
  client_ep.send(bytes_of("REQUEST"), tb.client().cpu(1));
  tb.sim().run();
  EXPECT_EQ(got_request, "REQUEST");
  EXPECT_EQ(got_response, "RESPONSE");
}

TEST(EndToEndTest, TcpRecoversFromDroppedSegments) {
  // Shrink the server ring so a burst overflows it; the RTO must recover
  // the stream.
  TestbedConfig cfg;
  cfg.nic_ring_capacity = 16;
  Testbed tb(cfg);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sender = tb.client().tcp_create(c1, c2.ip(), 40000, 5001);
  auto& receiver = tb.server().tcp_create(c2, c1.ip(), 5001, 40000);
  std::size_t total = 0;
  receiver.on_data = [&](std::span<const std::uint8_t> data, sim::Time) {
    total += data.size();
  };
  // 128 KB burst into a 16-slot ring: drops guaranteed.
  sender.send(std::vector<std::uint8_t>(128 * 1024, 0x77),
              tb.client().cpu(1));
  tb.sim().run_until(sim::seconds(2));
  EXPECT_EQ(total, 128u * 1024u);
  EXPECT_GT(sender.retransmissions(), 0u);
  EXPECT_GT(tb.server().nic().rx_dropped(), 0u);
}

TEST(EndToEndTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Testbed tb;
    auto& c1 = tb.add_client_container("c1");
    auto& c2 = tb.add_server_container("c2");
    auto& sock = tb.server().udp_bind(c2, 7000);
    for (int i = 0; i < 50; ++i) {
      tb.sim().schedule_at(i * 10'000, [&, i] {
        tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                             std::vector<std::uint8_t>(64, 0));
      });
    }
    tb.sim().run();
    std::vector<sim::Time> arrivals;
    while (auto d = sock.try_recv()) arrivals.push_back(d->enqueued_at);
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace prism
