// LaneProfiler unit tests: sampled wall-clock accounting conserves each
// round's time, the exact totals match the engine's own counters, the
// critical-path attribution covers every round, spill/inbox accounting
// is byte-identical across thread counts, and an attached profiler never
// perturbs the schedule. Under -DPRISM_TELEMETRY=OFF the attach is
// ignored and every reading stays zero — the CI telemetry-off job runs
// exactly this suite to prove it.
#include "sim/lane_profiler.h"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "sim/lane.h"
#include "sim/time.h"

namespace prism::sim {
namespace {

/// Cross-lane ping-pong: lanes `a` and `b` exchange `remaining` messages
/// over a link with `prop` propagation. Each hop is one event on the
/// receiving lane, so both lanes stay busy and every round carries a
/// cross-lane message.
struct PingPong {
  LaneSet& set;
  int a;
  int b;
  Duration prop;
  int remaining;

  void start() {
    set.lane(a).schedule_at(1, [this] { hop(a, b); });
  }
  void hop(int from, int to) {
    if (remaining-- <= 0) return;
    set.post(from, to, set.lane(from).now() + prop + 1,
             [this, from, to] { hop(to, from); });
  }
};

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
};

RunResult run_ping_pong(int threads, LaneProfiler* prof,
                        Time deadline = 200'000) {
  LaneSet set(2);
  set.register_link(0, 1, 100);
  if (prof != nullptr) set.set_profiler(prof);
  PingPong pp{set, 0, 1, 100, 400};
  pp.start();
  set.run_until(deadline, threads);
  set.set_profiler(nullptr);
  return {set.events_executed(), set.messages_posted()};
}

TEST(LaneProfilerTest, AttachFollowsTelemetryBuild) {
  LaneSet set(2);
  LaneProfiler prof(128, 1);
  set.set_profiler(&prof);
#if PRISM_TELEMETRY_ENABLED
  EXPECT_EQ(set.profiler(), &prof);
#else
  // Compiled out: the attach is ignored and the engine stays unprofiled.
  EXPECT_EQ(set.profiler(), nullptr);
#endif
  set.set_profiler(nullptr);
}

TEST(LaneProfilerTest, CompiledOutReadsAllZero) {
#if PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled in; covered by the other tests";
#else
  LaneProfiler prof(128, 1);
  const RunResult r = run_ping_pong(1, &prof);
  ASSERT_GT(r.events, 0u);
  EXPECT_EQ(prof.rounds_recorded(), 0u);
  EXPECT_EQ(prof.messages_posted(), 0u);
  EXPECT_EQ(prof.num_lanes(), 0);
  EXPECT_EQ(prof.num_workers(), 0);
  EXPECT_EQ(prof.lane_round_count(), 0u);
  EXPECT_EQ(prof.worker_round_count(), 0u);
  EXPECT_EQ(prof.busy_imbalance(), 0.0);
  EXPECT_EQ(prof.event_imbalance(), 0.0);
#endif
}

TEST(LaneProfilerTest, ProfiledRunMatchesUnprofiledRun) {
  const RunResult plain = run_ping_pong(1, nullptr);
  LaneProfiler prof(1 << 10, 1);
  const RunResult profiled = run_ping_pong(1, &prof);
  EXPECT_EQ(plain.events, profiled.events);
  EXPECT_EQ(plain.messages, profiled.messages);
  // And across thread counts with the profiler attached.
  LaneProfiler prof2(1 << 10, 1);
  const RunResult parallel = run_ping_pong(2, &prof2);
  EXPECT_EQ(plain.events, parallel.events);
  EXPECT_EQ(plain.messages, parallel.messages);
}

TEST(LaneProfilerTest, WorkerRoundTimeConservation) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out: no wall-clock records";
#else
  for (int threads : {1, 2}) {
    LaneProfiler prof(1 << 12, 1);  // sample every round
    run_ping_pong(threads, &prof);
    ASSERT_GT(prof.worker_round_count(), 0u) << "threads=" << threads;
    for (std::size_t i = 0; i < prof.worker_round_count(); ++i) {
      const auto& r = prof.worker_round(i);
      // The measured components are disjoint subintervals of the round,
      // so they can never exceed the round's wall time, and idle is
      // exactly the remainder.
      EXPECT_LE(r.barrier_wait_ns + r.busy_ns, r.wall_ns);
      EXPECT_EQ(r.barrier_wait_ns + r.busy_ns + r.idle_ns(), r.wall_ns);
    }
    for (int w = 0; w < prof.num_workers(); ++w) {
      const auto& t = prof.worker(w);
      EXPECT_EQ(t.barrier_wait_ns + t.busy_ns + t.idle_ns(), t.wall_ns);
    }
  }
#endif
}

TEST(LaneProfilerTest, ExactTotalsMatchEngineCounters) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#else
  LaneSet set(2);
  set.register_link(0, 1, 100);
  LaneProfiler prof(256, 4);
  set.set_profiler(&prof);
  PingPong pp{set, 0, 1, 100, 300};
  pp.start();
  const Time deadline = 100'000;
  set.run_until(deadline, 1);

  // Event / message / window totals come from the engine's own counters,
  // so they are exact even though only 1 in 4 rounds was sampled.
  EXPECT_EQ(prof.lane(0).events + prof.lane(1).events,
            set.events_executed());
  EXPECT_EQ(prof.lane(0).inbox_msgs + prof.lane(1).inbox_msgs,
            set.messages_posted());
  EXPECT_EQ(prof.messages_posted(), set.messages_posted());
  EXPECT_EQ(prof.rounds_recorded(), set.windows_run());
  EXPECT_EQ(prof.lane(0).sim_ns, deadline);
  EXPECT_EQ(prof.lane(1).sim_ns, deadline);

  // Every round has exactly one critical lane.
  EXPECT_EQ(prof.lane(0).critical_rounds + prof.lane(1).critical_rounds,
            prof.rounds_recorded());

  // Sampling: records exist, cover only every 4th round (the round
  // counter restarts at 0 per run and is stamped post-increment, so
  // retained round numbers are ≡ 1 mod 4), and busy time is attributed
  // to exactly the sampled rounds.
  ASSERT_GT(prof.lane_round_count(), 0u);
  for (std::size_t i = 0; i < prof.lane_round_count(); ++i) {
    EXPECT_EQ(prof.lane_round(i).round % 4, 1u);
  }
  EXPECT_GT(prof.lane(0).sampled_rounds, 0u);
  EXPECT_LT(prof.lane(0).sampled_rounds, prof.rounds_recorded());
  set.set_profiler(nullptr);
#endif
}

TEST(LaneProfilerTest, InboxAccountingIdenticalAcrossThreadCounts) {
  // A burst large enough to overflow the 1024-slot inbox ring onto the
  // spill path: one lane-0 event posts 3000 messages in a single window.
  auto run = [](int threads, LaneProfiler* prof) {
    LaneSet set(2);
    set.register_link(0, 1, 50);
    if (prof != nullptr) set.set_profiler(prof);
    set.lane(0).schedule_at(10, [&set] {
      for (int i = 0; i < 3000; ++i) {
        set.post(0, 1, set.lane(0).now() + 51 + i, [] {});
      }
    });
    set.run_until(10'000, threads);
    set.set_profiler(nullptr);
    return std::make_pair(set.lane_inbox_spills(1),
                          set.lane_inbox_pushed(1));
  };
  const auto serial = run(1, nullptr);
  const auto parallel = run(2, nullptr);
  EXPECT_GT(serial.first, 0u) << "burst did not overflow the inbox ring";
  EXPECT_EQ(serial.second, 3000u);
  EXPECT_EQ(serial, parallel);

#if PRISM_TELEMETRY_ENABLED
  // The profiler's per-lane totals see the same numbers at any thread
  // count, and attaching it does not change the engine's accounting.
  LaneProfiler p1(64, 8);
  LaneProfiler p2(64, 8);
  const auto prof_serial = run(1, &p1);
  const auto prof_parallel = run(2, &p2);
  EXPECT_EQ(prof_serial, serial);
  EXPECT_EQ(prof_parallel, serial);
  EXPECT_EQ(p1.lane(1).inbox_spills, serial.first);
  EXPECT_EQ(p2.lane(1).inbox_spills, serial.first);
  EXPECT_EQ(p1.lane(1).inbox_msgs, 3000u);
  EXPECT_EQ(p2.lane(1).inbox_msgs, 3000u);
  EXPECT_EQ(p1.lane(1).inbox_high_water, p2.lane(1).inbox_high_water);
#endif
}

TEST(LaneProfilerTest, CriticalLaneAttributionFollowsTheBusyLane) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#else
  // Lane 0 runs a dense local schedule; lane 1 only ever receives a
  // couple of messages. Lane 0's next event bounds nearly every round.
  LaneSet set(2);
  set.register_link(0, 1, 100);
  LaneProfiler prof(256, 1);
  set.set_profiler(&prof);
  for (Time t = 1; t < 50'000; t += 10) {
    set.lane(0).schedule_at(t, [] {});
  }
  set.lane(0).schedule_at(5, [&set] {
    set.post(0, 1, set.lane(0).now() + 101, [] {});
  });
  set.run_until(50'000, 1);
  EXPECT_GT(prof.lane(0).critical_rounds, prof.lane(1).critical_rounds);
  EXPECT_EQ(prof.lane(0).critical_rounds + prof.lane(1).critical_rounds,
            prof.rounds_recorded());
  EXPECT_GT(prof.event_imbalance(), 1.5);
  set.set_profiler(nullptr);
#endif
}

TEST(LaneProfilerTest, RingRetentionDropsOldestAndCounts) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#else
  LaneProfiler prof(8, 1);  // tiny ring, sample every round
  run_ping_pong(1, &prof);
  ASSERT_GT(prof.rounds_recorded(), 8u);
  EXPECT_EQ(prof.lane_round_count(), 8u);
  EXPECT_GT(prof.lane_rounds_dropped(), 0u);
  // Retained records are the most recent ones, oldest first.
  for (std::size_t i = 1; i < prof.lane_round_count(); ++i) {
    EXPECT_LE(prof.lane_round(i - 1).round, prof.lane_round(i).round);
  }
#endif
}

TEST(LaneProfilerTest, ResetClearsEverything) {
#if !PRISM_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#else
  LaneProfiler prof(64, 1);
  run_ping_pong(1, &prof);
  ASSERT_GT(prof.rounds_recorded(), 0u);
  prof.reset();
  EXPECT_EQ(prof.rounds_recorded(), 0u);
  EXPECT_EQ(prof.messages_posted(), 0u);
  EXPECT_EQ(prof.lane_round_count(), 0u);
  EXPECT_EQ(prof.worker_round_count(), 0u);
  EXPECT_EQ(prof.lane(0).events, 0u);
  EXPECT_EQ(prof.lane(0).busy_ns, 0u);
  // A fresh capture after reset works and counts from zero again.
  run_ping_pong(1, &prof);
  EXPECT_GT(prof.rounds_recorded(), 0u);
#endif
}

}  // namespace
}  // namespace prism::sim
