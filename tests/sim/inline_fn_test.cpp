#include "sim/inline_fn.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/event_queue.h"

namespace prism::sim {
namespace {

using Fn = InlineFn<int()>;

// A callable padded to exactly N bytes (N >= sizeof(int)).
template <std::size_t N>
struct Sized {
  int value = 0;
  unsigned char pad[N - sizeof(int)] = {};
  int operator()() const { return value; }
};
static_assert(sizeof(Sized<64>) == 64);

// Counts live instances across moves, to pin down destructor behaviour.
struct Counted {
  static int live;
  bool owner = true;
  Counted() { ++live; }
  Counted(Counted&& other) noexcept { ++live; other.owner = false; }
  Counted(const Counted& other) : owner(other.owner) { ++live; }
  ~Counted() { --live; }
  int operator()() const { return owner ? 1 : 0; }
};
int Counted::live = 0;

// Nothrow-move requirement: a throwing-move callable must be boxed even
// when it would fit inline.
struct ThrowingMove {
  int value = 5;
  ThrowingMove() = default;
  ThrowingMove(ThrowingMove&& other) : value(other.value) {}  // not noexcept
  int operator()() const { return value; }
};
static_assert(sizeof(ThrowingMove) <= Fn::kInlineCapacity);

TEST(InlineFnTest, SmallCallableIsInlineAndInvokes) {
  Fn fn = [] { return 42; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 42);
}

TEST(InlineFnTest, ExactCapacityIsInline) {
  Sized<Fn::kInlineCapacity> f;
  f.value = 7;
  static_assert(Fn::fits_inline<Sized<Fn::kInlineCapacity>>());
  Fn fn = f;
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 7);
}

TEST(InlineFnTest, OneByteOverCapacityFallsBackToHeap) {
  Sized<Fn::kInlineCapacity + 1> f;
  f.value = 9;
  static_assert(!Fn::fits_inline<Sized<Fn::kInlineCapacity + 1>>());
  Fn fn = f;
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 9);  // heap-boxed callables invoke identically
}

TEST(InlineFnTest, ThrowingMoveCallableIsBoxed) {
  Fn fn = ThrowingMove{};
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 5);
}

TEST(InlineFnTest, MoveTransfersOwnership) {
  Fn a = [] { return 1; };
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b(), 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c(), 1);
}

TEST(InlineFnTest, MoveAssignDestroysPreviousCallable) {
  Counted::live = 0;
  {
    Fn fn = Counted{};
    EXPECT_EQ(Counted::live, 1);
    fn = [] { return 3; };  // must destroy the Counted
    EXPECT_EQ(Counted::live, 0);
    EXPECT_EQ(fn(), 3);
  }
}

TEST(InlineFnTest, DestructorRunsExactlyOnceThroughMoves) {
  Counted::live = 0;
  {
    Fn a = Counted{};
    EXPECT_EQ(Counted::live, 1);
    Fn b = std::move(a);
    EXPECT_EQ(Counted::live, 1);  // relocation, not duplication
    Fn c;
    c = std::move(b);
    EXPECT_EQ(Counted::live, 1);
    EXPECT_EQ(c(), 1);  // the surviving instance is the original owner
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(InlineFnTest, HeapBoxedDestructorRunsOnce) {
  Counted::live = 0;
  struct Big {
    Counted counted;
    unsigned char pad[Fn::kInlineCapacity] = {};
    int operator()() const { return counted(); }
  };
  {
    Fn fn = Big{};
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(Counted::live, 1);
    Fn other = std::move(fn);
    EXPECT_EQ(Counted::live, 1);  // heap box pointer moves, no copy
    EXPECT_EQ(other(), 1);
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(InlineFnTest, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(11);
  Fn fn = [p = std::move(p)] { return *p; };
  EXPECT_EQ(fn(), 11);
  Fn moved = std::move(fn);
  EXPECT_EQ(moved(), 11);
}

TEST(InlineFnTest, ResetDestroysAndEmpties) {
  Counted::live = 0;
  Fn fn = Counted{};
  EXPECT_EQ(Counted::live, 1);
  fn.reset();
  EXPECT_EQ(Counted::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFnTest, EventFnCapacityFitsSchedulingClosures) {
  // The event queue's callback type must keep enough inline room for the
  // pipeline's nested scheduling closures (see kernel/host.cpp).
  static_assert(EventFn::kInlineCapacity >= 48);
}

}  // namespace
}  // namespace prism::sim
