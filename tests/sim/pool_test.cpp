#include "sim/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernel/skb.h"
#include "kernel/skb_pool.h"
#include "net/packet.h"

namespace prism {
namespace {

TEST(ObjectPoolTest, RecyclesReleasedObjects) {
  sim::ObjectPool<int> pool;
  int* first = pool.acquire();
  pool.release(first);
  int* second = pool.acquire();
  EXPECT_EQ(first, second);  // LIFO free list hands the same object back

  const sim::PoolStats& s = pool.stats();
  EXPECT_EQ(s.acquired, 2u);
  EXPECT_EQ(s.allocated, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.released, 1u);
  pool.release(second);
}

TEST(ObjectPoolTest, DisabledPoolPassesThrough) {
  sim::ObjectPool<int> pool;
  pool.set_enabled(false);
  int* a = pool.acquire();
  pool.release(a);
  int* b = pool.acquire();
  pool.release(b);

  const sim::PoolStats& s = pool.stats();
  EXPECT_EQ(s.acquired, 2u);
  EXPECT_EQ(s.allocated, 2u);  // every acquire hits the heap
  EXPECT_EQ(s.reused, 0u);
  EXPECT_EQ(s.released, 0u);
  EXPECT_EQ(s.discarded, 2u);  // every release frees
  EXPECT_EQ(pool.free_objects(), 0u);
}

TEST(ObjectPoolTest, WarmPoolHitRateApproachesOne) {
  sim::ObjectPool<int> pool;
  for (int i = 0; i < 1000; ++i) {
    int* obj = pool.acquire();
    pool.release(obj);
  }
  // One cold allocation, then every cycle reuses: 999/1000.
  EXPECT_EQ(pool.stats().allocated, 1u);
  EXPECT_GE(pool.stats().hit_rate(), 0.99);
}

TEST(BufferPoolTest, ReusesStorageAcrossAcquires) {
  sim::BufferPool& pool = sim::BufferPool::instance();
  pool.trim();  // drop buffers parked by earlier tests
  pool.reset_stats();

  std::vector<std::uint8_t> buf = pool.acquire(512);
  const std::uint8_t* block = buf.data();
  ASSERT_EQ(buf.size(), 512u);
  pool.release(std::move(buf));

  std::vector<std::uint8_t> again = pool.acquire(128);
  EXPECT_EQ(again.data(), block);  // same heap block, shrunk in place
  EXPECT_EQ(again.size(), 128u);

  const sim::PoolStats& s = pool.stats();
  EXPECT_EQ(s.acquired, 2u);
  EXPECT_EQ(s.allocated, 1u);
  EXPECT_EQ(s.reused, 1u);
  pool.release(std::move(again));
}

TEST(BufferPoolTest, PacketBufStorageRoundTripsThroughPool) {
  sim::BufferPool& pool = sim::BufferPool::instance();
  pool.trim();
  pool.reset_stats();

  const std::uint8_t payload[32] = {};
  {
    net::PacketBuf p = net::PacketBuf::from_payload(payload);
    ASSERT_GT(p.size(), 0u);
  }  // destructor parks the storage
  EXPECT_EQ(pool.stats().released, 1u);

  {
    net::PacketBuf p = net::PacketBuf::from_payload(payload);
    ASSERT_GT(p.size(), 0u);
  }
  EXPECT_EQ(pool.stats().reused, 1u);  // second frame reuses the block
}

TEST(SkbPoolTest, RecyclesAndScrubsSkbs) {
  kernel::SkbPool& pool = kernel::SkbPool::instance();
  pool.trim();
  pool.reset_stats();

  kernel::Skb* raw = nullptr;
  {
    kernel::SkbPtr skb = kernel::alloc_skb();
    raw = skb.get();
    // Dirty every recycled field.
    const std::uint8_t payload[16] = {};
    skb->buf = net::PacketBuf::from_payload(payload);
    skb->gro_chain.push_back(net::PacketBuf::from_payload(payload));
    skb->segments = 3;
    skb->priority = 2;
    skb->stage = 2;
    skb->ts.nic_rx = 123;
    skb->parsed.emplace();
  }  // SkbRecycler releases back to the pool

  kernel::SkbPtr again = kernel::alloc_skb();
  EXPECT_EQ(again.get(), raw);  // recycled, not reallocated
  // ... and scrubbed back to a fresh skb.
  EXPECT_EQ(again->buf.size(), 0u);
  EXPECT_TRUE(again->gro_chain.empty());
  EXPECT_EQ(again->segments, 1);
  EXPECT_EQ(again->priority, 0);
  EXPECT_EQ(again->stage, 0);
  EXPECT_EQ(again->ts.nic_rx, -1);
  EXPECT_FALSE(again->parsed.has_value());

  const sim::PoolStats& s = pool.stats();
  EXPECT_EQ(s.acquired, 2u);
  EXPECT_EQ(s.allocated, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.released, 1u);
}

TEST(SkbPoolTest, SteadyStateRecycleRateIsAtLeast99Percent) {
  kernel::SkbPool& pool = kernel::SkbPool::instance();
  pool.trim();
  pool.reset_stats();
  for (int i = 0; i < 1000; ++i) {
    kernel::SkbPtr skb = kernel::alloc_skb();
  }
  EXPECT_EQ(pool.stats().acquired, 1000u);
  EXPECT_GE(pool.stats().hit_rate(), 0.99);
}

}  // namespace
}  // namespace prism
