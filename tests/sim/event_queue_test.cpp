#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(50, [] {});
  q.push(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
  q.pop();
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueueTest, ClearDiscardsEverything) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<Time> fired;
  q.push(10, [&] { fired.push_back(10); });
  q.push(5, [&] { fired.push_back(5); });
  q.pop()();  // fires 5
  q.push(7, [&] { fired.push_back(7); });
  q.push(3, [&] { fired.push_back(3); });  // "past" — still earliest now
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<Time>{5, 3, 7, 10}));
}

}  // namespace
}  // namespace prism::sim
