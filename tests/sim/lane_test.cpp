// LaneSet + SpscQueue unit tests: the conservative-window scheduler's
// edge cases (zero lookahead, events exactly on window boundaries,
// peerless lanes) and its determinism across thread counts.
#include "sim/lane.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/spsc.h"
#include "sim/time.h"

namespace prism::sim {
namespace {

// ------------------------------------------------------------ SpscQueue

TEST(SpscQueueTest, DrainsInPushOrder) {
  SpscQueue<int> q(64);
  for (int i = 0; i < 40; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  std::vector<int> out;
  q.drain_into(out);
  ASSERT_EQ(out.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.spill_count(), 0u);
}

TEST(SpscQueueTest, OverflowSpillsWithoutLossAndKeepsOrder) {
  SpscQueue<int> q(16);  // capacity rounds to exactly 16
  ASSERT_EQ(q.capacity(), 16u);
  for (int i = 0; i < 50; ++i) q.push(i);
  EXPECT_EQ(q.spill_count(), 50u - 16u);
  std::vector<int> out;
  q.drain_into(out);
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueueTest, ReusableAfterDrain) {
  SpscQueue<int> q(16);
  std::vector<int> out;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) q.push(round * 100 + i);
    out.clear();
    q.drain_into(out);
    ASSERT_EQ(out.size(), 20u);
    EXPECT_EQ(out.front(), round * 100);
    EXPECT_EQ(out.back(), round * 100 + 19);
    EXPECT_TRUE(q.empty());
  }
}

// -------------------------------------------------------------- LaneSet

TEST(LaneSetTest, ConstructionValidation) {
  EXPECT_THROW(LaneSet(0), std::invalid_argument);
  LaneSet set(3);
  EXPECT_EQ(set.num_lanes(), 3);
  EXPECT_THROW(set.register_link(0, 3, 100), std::out_of_range);
  EXPECT_THROW(set.register_link(-1, 1, 100), std::out_of_range);
  EXPECT_THROW(set.register_link(0, 1, -5), std::invalid_argument);
  // Self-links are ignored: no lookahead, no linkage.
  set.register_link(1, 1, 5);
  EXPECT_EQ(set.lookahead(), LaneSet::kMaxTime);
}

TEST(LaneSetTest, LookaheadIsMinimumOverLinks) {
  LaneSet set(3);
  set.register_link(0, 1, 700);
  EXPECT_EQ(set.lookahead(), 700);
  set.register_link(1, 2, 400);
  EXPECT_EQ(set.lookahead(), 400);
  set.register_link(0, 2, 900);
  EXPECT_EQ(set.lookahead(), 400);
}

TEST(LaneSetTest, SingleLaneRunsLikeASimulator) {
  LaneSet set(1);
  std::vector<Time> log;
  set.lane(0).schedule_at(10, [&] { log.push_back(set.lane(0).now()); });
  set.lane(0).schedule_at(30, [&] { log.push_back(set.lane(0).now()); });
  set.run_until(100);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 10);
  EXPECT_EQ(log[1], 30);
  EXPECT_EQ(set.lane(0).now(), 100);
  EXPECT_EQ(set.events_executed(), 2u);
}

TEST(LaneSetTest, DeadlineSemanticsMatchSimulatorRunUntil) {
  LaneSet set(2);
  set.register_link(0, 1, 500);
  int at_deadline = 0;
  int beyond = 0;
  set.lane(0).schedule_at(1'000, [&] { ++at_deadline; });
  set.lane(1).schedule_at(1'001, [&] { ++beyond; });
  set.run_until(1'000);
  EXPECT_EQ(at_deadline, 1);  // events at exactly the deadline run
  EXPECT_EQ(beyond, 0);       // later events stay queued
  EXPECT_EQ(set.lane(0).now(), 1'000);
  EXPECT_EQ(set.lane(1).now(), 1'000);
  set.run_until(2'000);  // a second run picks the queued event up
  EXPECT_EQ(beyond, 1);
}

TEST(LaneSetTest, CrossLanePostDeliversAtExactTime) {
  LaneSet set(2);
  set.register_link(0, 1, 500);
  Time delivered_at = -1;
  // Lane 0's event at t=100 posts a delivery at t=601 (> now + lookahead).
  set.lane(0).schedule_at(100, [&] {
    set.post(0, 1, 601, [&] { delivered_at = set.lane(1).now(); });
  });
  set.run_until(10'000);
  EXPECT_EQ(delivered_at, 601);
  EXPECT_EQ(set.messages_posted(), 1u);
  EXPECT_EQ(set.inbox_spills(), 0u);
}

// An arrival landing exactly on a window edge must execute in that
// window (run_until is inclusive), and one just past it in the next.
TEST(LaneSetTest, EventsExactlyOnWindowBoundary) {
  LaneSet set(2);
  set.register_link(0, 1, 500);
  // First window: t_min = 1000 (lane 0), window_end = 1500.
  std::vector<Time> log;
  set.lane(0).schedule_at(1'000, [&] { log.push_back(set.lane(0).now()); });
  set.lane(1).schedule_at(1'500, [&] {  // exactly on the edge
    log.push_back(set.lane(1).now());
  });
  set.lane(1).schedule_at(1'501, [&] {  // first instant past the edge
    log.push_back(set.lane(1).now());
  });
  set.run_until(10'000);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 1'000);
  EXPECT_EQ(log[1], 1'500);
  EXPECT_EQ(log[2], 1'501);
  EXPECT_GE(set.windows_run(), 2u);
}

// Zero propagation degenerates to single-instant lockstep windows; a
// cross-lane ping-pong 100 hops deep must complete without deadlock.
TEST(LaneSetTest, ZeroPropagationLockstepPingPong) {
  LaneSet set(2);
  set.register_link(0, 1, 0);
  EXPECT_EQ(set.lookahead(), 0);
  int hops = 0;
  // InlineFn cannot capture a recursive lambda by value; use a small
  // struct so each hop re-posts the next one.
  struct Hopper {
    LaneSet* set;
    int* hops;
    void hop(int from, int to) {
      ++*hops;
      if (*hops >= 100) return;
      // Serialization >= 1ns keeps arrivals strictly in the future even
      // with zero lookahead; model that with now() + 1.
      Time at = set->lane(from).now() + 1;
      Hopper next{set, hops};
      set->post(from, to, at, [next, to, from]() mutable {
        next.hop(to, from);
      });
    }
  };
  set.lane(0).schedule_at(5, [&set, &hops] {
    Hopper start{&set, &hops};
    start.hop(0, 1);
  });
  set.run_until(1'000);
  EXPECT_EQ(hops, 100);
  // Lockstep: every hop instant needs its own window.
  EXPECT_GE(set.windows_run(), 99u);
  EXPECT_EQ(set.lane(0).now(), 1'000);
  EXPECT_EQ(set.lane(1).now(), 1'000);
}

// A lane with no registered links cannot interact with anyone; it is
// excluded from the window protocol and free-runs to the deadline.
TEST(LaneSetTest, PeerlessLaneFreeRuns) {
  LaneSet set(3);
  set.register_link(0, 1, 500);
  std::vector<Time> log;
  for (int i = 1; i <= 10; ++i) {
    set.lane(2).schedule_at(i * 100, [&log, &set] {
      log.push_back(set.lane(2).now());
    });
  }
  // Give the linked pair some work too.
  int linked_events = 0;
  set.lane(0).schedule_at(250, [&] { ++linked_events; });
  set.run_until(5'000);
  ASSERT_EQ(log.size(), 10u);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i - 1)], i * 100);
  }
  EXPECT_EQ(linked_events, 1);
  EXPECT_EQ(set.lane(2).now(), 5'000);
}

TEST(LaneSetTest, NoLinksAtAllStillRuns) {
  LaneSet set(4);
  int ran = 0;
  for (int i = 0; i < 4; ++i) {
    set.lane(i).schedule_at(10 * (i + 1), [&] { ++ran; });
  }
  set.run_until(1'000);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(set.windows_run(), 0u);  // nothing to synchronize
}

// ---------------------------------------------- cross-thread determinism

/// A deterministic 4-lane ring workload: every lane ticks periodically,
/// logging its clock and posting a delivery to its ring successor. Each
/// lane's log is written only by that lane's events, so two runs are
/// byte-comparable.
struct RingWorkload {
  explicit RingWorkload(int lanes) : set(lanes), logs(lanes) {
    for (int i = 0; i < lanes; ++i) {
      set.register_link(i, (i + 1) % lanes, 500);
    }
  }

  void tick(int lane, Time at, Time stop) {
    set.lane(lane).schedule_at(at, [this, lane, at, stop] {
      auto& log = logs[static_cast<size_t>(lane)];
      log.push_back(set.lane(lane).now());
      const int dst = (lane + 1) % set.num_lanes();
      // Strictly beyond now + lookahead; skew per lane so arrival times
      // collide across sources at the destination now and then.
      const Time arrival = set.lane(lane).now() + 501 + (lane % 3);
      set.post(lane, dst, arrival, [this, dst] {
        logs[static_cast<size_t>(dst)].push_back(
            1'000'000'000 + set.lane(dst).now());
      });
      if (at + 300 <= stop) tick(lane, at + 300, stop);
    });
  }

  void run(int threads) {
    for (int i = 0; i < set.num_lanes(); ++i) tick(i, 100 + i * 7, 30'000);
    set.run_until(40'000, threads);
  }

  LaneSet set;
  std::vector<std::vector<std::int64_t>> logs;
};

TEST(LaneSetTest, ThreadCountDoesNotChangeTheSimulation) {
  RingWorkload serial(4);
  serial.run(1);
  RingWorkload parallel(4);
  parallel.run(4);
  ASSERT_GT(serial.set.messages_posted(), 100u);
  EXPECT_EQ(serial.set.events_executed(), parallel.set.events_executed());
  EXPECT_EQ(serial.set.messages_posted(), parallel.set.messages_posted());
  EXPECT_EQ(serial.set.windows_run(), parallel.set.windows_run());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(serial.logs[static_cast<size_t>(i)],
              parallel.logs[static_cast<size_t>(i)])
        << "lane " << i << " diverged between 1 and 4 threads";
  }
}

TEST(LaneSetTest, OversubscribedThreadCountClampsToLanes) {
  RingWorkload a(2);
  a.run(1);
  RingWorkload b(2);
  b.run(16);  // clamps to 2 lanes
  EXPECT_EQ(a.set.events_executed(), b.set.events_executed());
  EXPECT_EQ(a.logs, b.logs);
}

// Inbox overflow (ring -> spill path) must stay lossless and ordered:
// one event posts more messages than the ring can hold.
TEST(LaneSetTest, InboxSpillIsLossless) {
  LaneSet set(2);
  set.register_link(0, 1, 500);
  std::vector<int> received;
  set.lane(0).schedule_at(100, [&] {
    for (int i = 0; i < 3'000; ++i) {  // default ring is 1024 deep
      set.post(0, 1, 601 + i, [&received, i] { received.push_back(i); });
    }
  });
  set.run_until(10'000);
  EXPECT_GT(set.inbox_spills(), 0u);
  ASSERT_EQ(received.size(), 3'000u);
  for (int i = 0; i < 3'000; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace prism::sim
