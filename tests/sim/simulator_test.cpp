#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::sim {
namespace {

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule(100, [&] { seen.push_back(s.now()); });
  s.schedule(50, [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{50, 100}));
  EXPECT_EQ(s.now(), 100);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule(10, chain);
  };
  s.schedule(10, chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  for (Time t = 10; t <= 100; t += 10) {
    s.schedule_at(t, [&] { ++fired; });
  }
  s.run_until(50);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 50);
  s.run_until(100);
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator s;
  s.run_until(1000);
  EXPECT_EQ(s.now(), 1000);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator s;
  int fired = 0;
  s.schedule(10, [&] {
    ++fired;
    s.stop();
  });
  s.schedule(20, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes with the remaining events.
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator s;
  Time fired_at = -1;
  s.schedule(100, [&] {
    s.schedule_at(5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(SimulatorTest, SameInstantRunsInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(10, [&] { order.push_back(2); });
  s.schedule(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace prism::sim
