#include "sim/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(RngTest, UniformIntHitsAllValues) {
  Rng r(5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++hits[static_cast<size_t>(r.uniform_int(0, 4))];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r(13);
  const Duration mean = microseconds(100);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.exponential(mean));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(mean),
              static_cast<double>(mean) * 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1000), 1);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(29), b(29);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace prism::sim
