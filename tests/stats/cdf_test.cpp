#include "stats/cdf.h"

#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace prism::stats {
namespace {

TEST(CdfTest, PointsAreMonotonicAndEndAtOne) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i * 137);
  const auto points = cdf_points(h);
  ASSERT_FALSE(points.empty());
  double prev_frac = 0.0;
  std::int64_t prev_val = -1;
  for (const auto& p : points) {
    EXPECT_GT(p.value_ns, prev_val);
    EXPECT_GE(p.fraction, prev_frac);
    prev_val = p.value_ns;
    prev_frac = p.fraction;
  }
  EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
}

TEST(CdfTest, EmptyHistogramYieldsNoPoints) {
  Histogram h;
  EXPECT_TRUE(cdf_points(h).empty());
}

TEST(CdfTest, QuantilesHaveRequestedCount) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(i);
  const auto q = cdf_quantiles(h, 10);
  EXPECT_EQ(q.size(), 11u);
  EXPECT_DOUBLE_EQ(q.front().fraction, 0.0);
  EXPECT_DOUBLE_EQ(q.back().fraction, 1.0);
}

TEST(CdfTest, QuantilesRejectBadN) {
  Histogram h;
  EXPECT_THROW(cdf_quantiles(h, 1), std::invalid_argument);
}

TEST(CdfTest, RenderTableContainsLabelsAndTailRows) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.record(1000 + i);
    b.record(2000 + i);
  }
  const auto text = render_cdf_table({"vanilla", "prism"}, {&a, &b});
  EXPECT_NE(text.find("vanilla"), std::string::npos);
  EXPECT_NE(text.find("prism"), std::string::npos);
  EXPECT_NE(text.find("p99.0"), std::string::npos);
  EXPECT_NE(text.find("p99.9"), std::string::npos);
}

TEST(CdfTest, RenderTableRejectsMismatchedInputs) {
  Histogram a;
  EXPECT_THROW(render_cdf_table({"one", "two"}, {&a}),
               std::invalid_argument);
}

}  // namespace
}  // namespace prism::stats
