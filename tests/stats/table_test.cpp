#include "stats/table.h"

#include <gtest/gtest.h>

namespace prism::stats {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"mode", "latency"});
  t.add_row({"vanilla", "100.0"});
  t.add_row({"prism-sync", "50.0"});
  const auto text = t.render();
  EXPECT_NE(text.find("mode"), std::string::npos);
  EXPECT_NE(text.find("prism-sync"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Header + rule + 2 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TableTest, WideRowsRejected) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CellFormatsNumbers) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(10.0), "10.0");
}

}  // namespace
}  // namespace prism::stats
