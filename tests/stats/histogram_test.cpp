#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "sim/rng.h"

namespace prism::stats {
namespace {

TEST(HistogramTest, StartsEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  // Percentile returns a bucket representative within relative precision.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 1000.0, 1000.0 / 64);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i <= 100; ++i) h.record(i);
  // Values below 2*64=128 land in exact unit buckets.
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(1.0), 100);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, PercentileRelativeErrorBounded) {
  Histogram h;
  prism::sim::Rng rng(99);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.uniform_int(1, 10'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const auto exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const auto approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.04 + 2)
        << "q=" << q;
  }
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(HistogramTest, RecordNCountsAll) {
  Histogram h;
  h.record_n(500, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 500);
  EXPECT_EQ(h.max(), 500);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(100);
  a.record(200);
  b.record(300);
  b.record(50);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 50);
  EXPECT_EQ(a.max(), 300);
  EXPECT_DOUBLE_EQ(a.mean(), 162.5);
}

TEST(HistogramTest, MergeResolutionMismatchThrows) {
  Histogram a(6), b(8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HistogramTest, MergeEmptyIsIdentity) {
  // Merging an empty histogram must not disturb min/max/moments — the
  // windowed time-series merges many empty per-class cells.
  Histogram a, empty;
  a.record(100);
  a.record(300);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 300);
  EXPECT_DOUBLE_EQ(a.mean(), 200.0);

  // Empty absorbing non-empty adopts its extrema instead of keeping the
  // zero-initialized min.
  Histogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 100);
  EXPECT_EQ(b.max(), 300);

  // Empty + empty stays well-defined everywhere.
  Histogram c, d;
  c.merge(d);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.percentile(0.99), 0);
  EXPECT_DOUBLE_EQ(c.mean(), 0.0);
  EXPECT_DOUBLE_EQ(c.stddev(), 0.0);
}

TEST(HistogramTest, PercentileOutOfRangeQuantilesClamp) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(1.5), h.percentile(1.0));
}

TEST(HistogramTest, PercentileNaNIsSafeNotUndefined) {
  // NaN slips through ordered range checks (`q < 0` and `q > 1` are both
  // false), and ceil(NaN * count) cast to an unsigned is UB. The guard
  // must treat it as q=0 — on empty and non-empty histograms alike.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Histogram empty;
  EXPECT_EQ(empty.percentile(nan), 0);
  Histogram h;
  h.record(10);
  h.record(20);
  EXPECT_EQ(h.percentile(nan), h.percentile(0.0));
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, PercentileIsMonotonic) {
  Histogram h;
  prism::sim::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    h.record(rng.uniform_int(0, 1'000'000));
  }
  std::int64_t prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const auto v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MaxPercentileCoversMax) {
  Histogram h;
  h.record(1'000'000);
  h.record(5);
  EXPECT_GE(h.percentile(1.0), 1'000'000);
}

TEST(HistogramTest, HugeValuesDoNotOverflow) {
  Histogram h;
  h.record(std::int64_t{1} << 46);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.percentile(1.0), (std::int64_t{1} << 46) - 1);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  h.record_n(1000, 100);
  // Exact running moments: bucket width no longer smears a constant.
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, StddevIsExact) {
  // Textbook set: {2,4,4,4,5,5,7,9} has mean 5 and population stddev
  // exactly 2 — representable in doubles, so no tolerance needed.
  Histogram h;
  for (const std::int64_t v : {2, 4, 4, 4, 5, 5, 7, 9}) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 2.0);
}

TEST(HistogramTest, StddevSurvivesMergeAndWeightedRecords) {
  // The same textbook set assembled from weighted records across two
  // histograms must give the identical exact moments.
  Histogram a;
  a.record(2);
  a.record_n(4, 3);
  Histogram b;
  b.record_n(5, 2);
  b.record(7);
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
}

TEST(HistogramTest, StddevEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);  // empty
  h.record(42);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);  // single sample
  h.record(44);
  EXPECT_DOUBLE_EQ(h.stddev(), 1.0);  // {42,44}: mean 43, stddev 1
  h.reset();
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);  // reset clears the moments
  h.record(2);
  h.record(4);
  EXPECT_DOUBLE_EQ(h.stddev(), 1.0);
}

TEST(HistogramTest, ForEachBucketVisitsAllCounts) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i * 997);
  std::uint64_t total = 0;
  h.for_each_bucket(
      [&](std::int64_t, std::uint64_t count) { total += count; });
  EXPECT_EQ(total, 1000u);
}

TEST(HistogramTest, InvalidResolutionThrows) {
  EXPECT_THROW(Histogram(0), std::invalid_argument);
  EXPECT_THROW(Histogram(17), std::invalid_argument);
}

// Property sweep: percentile(q) must always bracket the exact empirical
// quantile within the histogram's relative precision, across resolutions.
class HistogramPrecision : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPrecision, RelativeErrorScalesWithResolution) {
  const int bits = GetParam();
  Histogram h(bits);
  prism::sim::Rng rng(1234);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(100, 50'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const double rel = 2.0 / static_cast<double>(1 << bits);
  for (double q : {0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const auto approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * rel + 2)
        << "bits=" << bits << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, HistogramPrecision,
                         ::testing::Values(4, 6, 8, 10));

}  // namespace
}  // namespace prism::stats
