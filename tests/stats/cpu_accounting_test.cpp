#include "stats/cpu_accounting.h"

#include <gtest/gtest.h>

namespace prism::stats {
namespace {

TEST(CpuAccountingTest, AccumulatesBusyTime) {
  CpuAccounting acc;
  acc.add_busy(100);
  acc.add_busy(200);
  EXPECT_EQ(acc.busy_time(), 300);
}

TEST(CpuAccountingTest, NegativeDurationsIgnored) {
  CpuAccounting acc;
  acc.add_busy(-50);
  EXPECT_EQ(acc.busy_time(), 0);
}

TEST(CpuAccountingTest, WindowUtilization) {
  CpuAccounting acc;
  acc.add_busy(1000);  // before window — excluded
  acc.begin_window(10'000);
  acc.add_busy(600);
  EXPECT_DOUBLE_EQ(acc.utilization(11'000), 0.6);
}

TEST(CpuAccountingTest, EmptyWindowIsZero) {
  CpuAccounting acc;
  acc.begin_window(500);
  EXPECT_DOUBLE_EQ(acc.utilization(500), 0.0);
}

TEST(CpuAccountingTest, ResetClearsEverything) {
  CpuAccounting acc;
  acc.add_busy(123);
  acc.begin_window(10);
  acc.reset();
  EXPECT_EQ(acc.busy_time(), 0);
  EXPECT_DOUBLE_EQ(acc.utilization(100), 0.0);
}

}  // namespace
}  // namespace prism::stats
