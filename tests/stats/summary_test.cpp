#include "stats/summary.h"

#include <gtest/gtest.h>

#include "stats/histogram.h"

namespace prism::stats {
namespace {

TEST(SummaryTest, ExtractsAllFields) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  const LatencySummary s = summarize(h);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min_ns, 1);
  EXPECT_EQ(s.max_ns, 100);
  EXPECT_EQ(s.p50_ns, 50);
  EXPECT_EQ(s.p90_ns, 90);
  EXPECT_EQ(s.p99_ns, 99);
  EXPECT_NEAR(s.mean_ns, 50.5, 1e-9);
}

TEST(SummaryTest, EmptyHistogram) {
  Histogram h;
  const LatencySummary s = summarize(h);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_ns, 0);
}

TEST(SummaryTest, ToStringMentionsKeyFields) {
  Histogram h;
  h.record(42'000);  // 42 us
  const auto text = to_string(summarize(h));
  EXPECT_NE(text.find("n=1"), std::string::npos);
  EXPECT_NE(text.find("42.0us"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace prism::stats
