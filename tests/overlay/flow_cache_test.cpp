// Overlay flow cache: unit tests for the LRU/generation mechanics, and
// end-to-end tests proving the invalidation story — an FDB remap or a
// fault-injected decap corruption mid-run must never deliver a packet
// through a stale cached transform, and cached classification must agree
// exactly with PriorityDb.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/socket.h"
#include "net/flow.h"
#include "overlay/fdb.h"
#include "overlay/flow_cache.h"
#include "overlay/netns.h"

namespace prism::overlay {
namespace {

net::FiveTuple tuple(std::uint16_t src_port, std::uint16_t dst_port = 7000) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr::of(172, 17, 0, 2);
  t.dst_ip = net::Ipv4Addr::of(172, 17, 0, 3);
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.protocol = net::IpProto::kUdp;
  return t;
}

Netns make_ns(int id) {
  return Netns("c" + std::to_string(id),
               net::Ipv4Addr::of(172, 17, 0, static_cast<std::uint8_t>(id)),
               net::MacAddr::make(static_cast<std::uint32_t>(id)), true);
}

TEST(FlowCacheTest, DisabledCacheNeverHitsOrFills) {
  FlowCache cache;
  Netns ns = make_ns(2);
  EXPECT_FALSE(cache.enabled());
  cache.insert(tuple(1000), 42, &ns, 3, cache.generation());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(tuple(1000), 42), nullptr);
  // Disabled lookups are silent: no miss accounting.
  EXPECT_EQ(cache.misses(), 0u);
}

#if PRISM_FLOWCACHE_ENABLED

TEST(FlowCacheTest, InsertThenLookupReplaysTransform) {
  FlowCache cache;
  cache.set_enabled(true);
  Netns ns = make_ns(2);
  cache.insert(tuple(1000), 42, &ns, 3, cache.generation());
  const FlowCacheEntry* e = cache.lookup(tuple(1000), 42);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dst, &ns);
  EXPECT_EQ(e->priority, 3);
  EXPECT_EQ(cache.hits(), 1u);
  // Same inner flow on a different VNI is a different key.
  EXPECT_EQ(cache.lookup(tuple(1000), 43), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FlowCacheTest, InvalidationMakesEveryEntryStale) {
  FlowCache cache;
  cache.set_enabled(true);
  Netns ns = make_ns(2);
  cache.insert(tuple(1000), 42, &ns, 3, cache.generation());
  cache.insert(tuple(1001), 42, &ns, 0, cache.generation());
  cache.invalidate();
  EXPECT_EQ(cache.lookup(tuple(1000), 42), nullptr);
  EXPECT_EQ(cache.lookup(tuple(1001), 42), nullptr);
  EXPECT_EQ(cache.stale_hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);  // stale hits read as misses
  EXPECT_EQ(cache.invalidations(), 1u);
  // Stale entries are reclaimed on discovery, not left to rot.
  EXPECT_EQ(cache.size(), 0u);
  // The slow path repopulates at the new generation and hits again.
  cache.insert(tuple(1000), 42, &ns, 3, cache.generation());
  EXPECT_NE(cache.lookup(tuple(1000), 42), nullptr);
}

TEST(FlowCacheTest, FillRacingInvalidationIsBornStale) {
  FlowCache cache;
  cache.set_enabled(true);
  Netns ns = make_ns(2);
  // The filling packet was classified at generation g...
  const std::uint64_t g = cache.generation();
  // ...then the world changed before its stage-2 fill landed.
  cache.invalidate();
  cache.insert(tuple(1000), 42, &ns, 3, g);
  // The dead-on-arrival entry must never serve a hit.
  EXPECT_EQ(cache.lookup(tuple(1000), 42), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.stale_hits(), 1u);
}

TEST(FlowCacheTest, LruEvictsColdestAtCapacity) {
  FlowCache cache(2);
  cache.set_enabled(true);
  Netns ns = make_ns(2);
  cache.insert(tuple(1), 42, &ns, 0, cache.generation());
  cache.insert(tuple(2), 42, &ns, 0, cache.generation());
  // Touch flow 1 so flow 2 is the LRU victim.
  EXPECT_NE(cache.lookup(tuple(1), 42), nullptr);
  cache.insert(tuple(3), 42, &ns, 0, cache.generation());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.lookup(tuple(1), 42), nullptr);
  EXPECT_EQ(cache.lookup(tuple(2), 42), nullptr);
  EXPECT_NE(cache.lookup(tuple(3), 42), nullptr);
}

TEST(FlowCacheTest, ReinsertRefreshesExistingEntry) {
  FlowCache cache;
  cache.set_enabled(true);
  Netns a = make_ns(2);
  Netns b = make_ns(3);
  cache.insert(tuple(1), 42, &a, 1, cache.generation());
  cache.invalidate();
  cache.insert(tuple(1), 42, &b, 2, cache.generation());
  EXPECT_EQ(cache.size(), 1u);
  const FlowCacheEntry* e = cache.lookup(tuple(1), 42);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dst, &b);
  EXPECT_EQ(e->priority, 2);
}

TEST(FlowCacheTest, ResetClearsEntriesAndCountersKeepsGeneration) {
  FlowCache cache;
  cache.set_enabled(true);
  Netns ns = make_ns(2);
  cache.insert(tuple(1), 42, &ns, 0, cache.generation());
  cache.invalidate();
  const std::uint64_t g = cache.generation();
  cache.reset();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.insertions(), 0u);
  EXPECT_EQ(cache.invalidations(), 0u);
  EXPECT_EQ(cache.generation(), g);
  EXPECT_TRUE(cache.enabled());
}

#endif  // PRISM_FLOWCACHE_ENABLED

// The satellite FDB fixes: add/remove report whether they changed the
// table, remaps are counted as overwrites, and every mutation bumps the
// generation (feeding the flow cache's invalidation hook).
TEST(FdbMutationTest, AddRemoveReportChangesAndCountOverwrites) {
  Fdb fdb;
  Netns a = make_ns(2);
  Netns b = make_ns(3);
  std::uint64_t hook_fires = 0;
  fdb.set_mutation_hook([&hook_fires] { ++hook_fires; });

  EXPECT_TRUE(fdb.add(a.mac(), a));    // new entry
  EXPECT_FALSE(fdb.add(a.mac(), a));   // identical re-add: no change
  EXPECT_EQ(fdb.overwrites(), 0u);
  EXPECT_TRUE(fdb.add(a.mac(), b));    // remap: counted overwrite
  EXPECT_EQ(fdb.overwrites(), 1u);
  EXPECT_EQ(fdb.lookup(a.mac()), &b);

  EXPECT_FALSE(fdb.remove(b.mac()));   // unknown MAC: no change
  EXPECT_TRUE(fdb.remove(a.mac()));
  EXPECT_EQ(fdb.lookup(a.mac()), nullptr);

  // Only the three real mutations fired the hook (add, remap, remove).
  EXPECT_EQ(hook_fires, 3u);
  EXPECT_EQ(fdb.generation(), 3u);
}

// ---------------------------------------------------------------- e2e

/// Sends `n` UDP datagrams from the client container to `dst_port` of the
/// server container and runs the simulation to completion.
void send_n(harness::Testbed& tb, Netns& from, Netns& to, int n,
            std::uint16_t src_port = 5555, std::uint16_t dst_port = 7000) {
  for (int i = 0; i < n; ++i) {
    tb.client().udp_send(from, tb.client().cpu(1), src_port, to.ip(),
                         dst_port, std::vector<std::uint8_t>(32, 0xab));
  }
  tb.sim().run();
}

#if PRISM_FLOWCACHE_ENABLED

TEST(FlowCacheE2ETest, SteadyFlowHitsAndClassificationMatchesPriorityDb) {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  tc.flow_cache = true;
  harness::Testbed tb(tc);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  tb.server().priority_db().add(c2.ip(), 7000, /*level=*/3);
  auto& sock = tb.server().udp_bind(c2, 7000);

  const int kPackets = 100;
  send_n(tb, c1, c2, kPackets);

  EXPECT_EQ(sock.received(), static_cast<std::uint64_t>(kPackets));
  auto& cache = tb.server().flow_cache();
  EXPECT_TRUE(cache.enabled());
  // One compulsory miss fills the entry; the rest of the flow hits.
  EXPECT_GE(cache.hits(), static_cast<std::uint64_t>(kPackets - 5));
  EXPECT_GT(cache.hit_rate(), 0.9);
  // Every delivered datagram — the slow-path first packet and the cached
  // rest — carries exactly the PriorityDb classification.
  std::uint64_t drained = 0;
  while (auto d = sock.try_recv()) {
    EXPECT_EQ(d->priority, 3);
    EXPECT_TRUE(d->high_priority);
    ++drained;
  }
  EXPECT_EQ(drained, static_cast<std::uint64_t>(kPackets));
}

TEST(FlowCacheE2ETest, FdbRemapNeverDeliversThroughStaleTransform) {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  tc.flow_cache = true;
  harness::Testbed tb(tc);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& c3 = tb.add_server_container("c3");
  auto& sock = tb.server().udp_bind(c2, 7000);

  const int kBatch = 20;
  send_n(tb, c1, c2, kBatch);
  ASSERT_EQ(sock.received(), static_cast<std::uint64_t>(kBatch));
  auto& cache = tb.server().flow_cache();
  ASSERT_GT(cache.hits(), 0u) << "cache never engaged; remap proves nothing";

  // Mid-run remap: c2's MAC now resolves to c3's namespace. The cached
  // transform still points at c2 — it must never be replayed.
  const std::uint64_t inv_before = cache.invalidations();
  ASSERT_TRUE(tb.server().fdb(tb.overlay().vni()).add(c2.mac(), c3));
  EXPECT_EQ(tb.server().fdb(tb.overlay().vni()).overwrites(), 1u);
  EXPECT_GT(cache.invalidations(), inv_before);

  const std::uint64_t stale_before = cache.stale_hits();
  const std::uint64_t no_socket_before =
      tb.server().faults().drops.total(fault::DropReason::kNoSocket);
  send_n(tb, c1, c2, kBatch);

  // Not one post-remap packet landed in c2's socket: the first took the
  // slow path (stale entry discarded), and every one resolved to c3 —
  // where nothing listens on 7000, so they all count as no-socket drops.
  EXPECT_EQ(sock.received(), static_cast<std::uint64_t>(kBatch));
  EXPECT_GT(cache.stale_hits(), stale_before);
  EXPECT_EQ(
      tb.server().faults().drops.total(fault::DropReason::kNoSocket),
      no_socket_before + static_cast<std::uint64_t>(kBatch));
}

#if PRISM_FAULTS_ENABLED
TEST(FlowCacheE2ETest, DecapCorruptionInvalidatesAndConservationHolds) {
  harness::TestbedConfig tc;
  tc.mode = kernel::NapiMode::kPrismSync;
  tc.flow_cache = true;
  tc.server_faults.seed = 42;
  tc.server_faults.decap_corrupt_rate = 0.3;
  harness::Testbed tb(tc);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  tb.server().priority_db().add(c2.ip(), 7000, /*level=*/3);
  auto& sock = tb.server().udp_bind(c2, 7000);

  const int kPackets = 200;
  send_n(tb, c1, c2, kPackets);

  const auto& counters = tb.server().faults().plan.counters();
  ASSERT_GT(counters.decap_corrupts, 0u);
  // Every injected corruption voided the cache (setup mutations — the
  // PriorityDb add above — bump it too, hence >=).
  EXPECT_GE(tb.server().flow_cache().invalidations(),
            counters.decap_corrupts);

  // Per-class conservation in the DropLedger: the flow is class 3, the
  // corruptions are payload-only, so every corrupted packet surfaces as
  // a class-3 checksum drop and nothing else — sent telescopes exactly
  // into delivered + checksum drops.
  const std::uint64_t checksum_drops =
      tb.server().faults().drops.count(fault::DropReason::kChecksum, 3);
  EXPECT_EQ(checksum_drops, counters.decap_corrupts);
  EXPECT_EQ(sock.received() + checksum_drops,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(tb.server().faults().drops.total_drops(), checksum_drops);
}
#endif  // PRISM_FAULTS_ENABLED

TEST(FlowCacheE2ETest, HostMutationsBumpGeneration) {
  harness::TestbedConfig tc;
  tc.flow_cache = true;
  harness::Testbed tb(tc);
  auto& cache = tb.server().flow_cache();

  std::uint64_t g = cache.generation();
  tb.server().priority_db().add(net::Ipv4Addr::of(172, 17, 0, 9), 7000);
  EXPECT_GT(cache.generation(), g);

  g = cache.generation();
  tb.server().priority_db().remove(net::Ipv4Addr::of(172, 17, 0, 9), 7000);
  EXPECT_GT(cache.generation(), g);

  g = cache.generation();
  tb.server().add_overlay_route(tb.overlay().vni(), net::MacAddr::make(99),
                                tb.client().ip(), tb.client().mac());
  EXPECT_GT(cache.generation(), g);

  g = cache.generation();
  tb.set_mode(kernel::NapiMode::kPrismSync);
  EXPECT_GT(cache.generation(), g);
}

TEST(FlowCacheE2ETest, CacheOffByDefaultAndDatapathIgnoresIt) {
  harness::Testbed tb;  // flow_cache defaults off
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sock = tb.server().udp_bind(c2, 7000);
  send_n(tb, c1, c2, 10);
  EXPECT_EQ(sock.received(), 10u);
  EXPECT_FALSE(tb.server().flow_cache().enabled());
  EXPECT_EQ(tb.server().flow_cache().hits(), 0u);
  EXPECT_EQ(tb.server().flow_cache().misses(), 0u);
}

#endif  // PRISM_FLOWCACHE_ENABLED

}  // namespace
}  // namespace prism::overlay
