// Unit tests for the overlay substrate: FDB, netns, bridge stage, and
// the multi-host overlay manager wiring.
#include <gtest/gtest.h>

#include "harness/testbed.h"
#include "overlay/fdb.h"
#include "overlay/netns.h"

namespace prism::overlay {
namespace {

TEST(FdbTest, AddLookupRemove) {
  Fdb fdb;
  Netns ns("c1", net::Ipv4Addr::of(172, 17, 0, 2), net::MacAddr::make(1),
           true);
  fdb.add(ns.mac(), ns);
  EXPECT_EQ(fdb.lookup(ns.mac()), &ns);
  EXPECT_EQ(fdb.size(), 1u);
  fdb.remove(ns.mac());
  EXPECT_EQ(fdb.lookup(ns.mac()), nullptr);
}

TEST(FdbTest, MissesAreCounted) {
  Fdb fdb;
  EXPECT_EQ(fdb.lookup(net::MacAddr::make(9)), nullptr);
  EXPECT_EQ(fdb.lookup(net::MacAddr::make(10)), nullptr);
  EXPECT_EQ(fdb.misses(), 2u);
}

TEST(NetnsTest, NeighborResolution) {
  Netns ns("c1", net::Ipv4Addr::of(172, 17, 0, 2), net::MacAddr::make(1),
           true);
  const auto peer_ip = net::Ipv4Addr::of(172, 17, 0, 3);
  const auto peer_mac = net::MacAddr::make(2);
  ns.add_neighbor(peer_ip, peer_mac);
  EXPECT_EQ(ns.neighbor(peer_ip), peer_mac);
  // A missing neighbour is a nullopt, not an exception: senders turn it
  // into a counted kUnroutable drop.
  EXPECT_FALSE(ns.neighbor(net::Ipv4Addr::of(1, 1, 1, 1)).has_value());
}

TEST(NetnsTest, IdentityFields) {
  Netns ns("web", net::Ipv4Addr::of(172, 17, 0, 9), net::MacAddr::make(7),
           true);
  EXPECT_EQ(ns.name(), "web");
  EXPECT_TRUE(ns.is_container());
  EXPECT_EQ(ns.ip(), net::Ipv4Addr::of(172, 17, 0, 9));
}

TEST(OverlayNetworkTest, WiringNeighborsAcrossContainers) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& c3 = tb.add_server_container("c3");
  // Every pair resolves each other.
  EXPECT_EQ(c1.neighbor(c2.ip()), c2.mac());
  EXPECT_EQ(c2.neighbor(c1.ip()), c1.mac());
  EXPECT_EQ(c2.neighbor(c3.ip()), c3.mac());
  EXPECT_EQ(c3.neighbor(c1.ip()), c1.mac());
  EXPECT_EQ(tb.overlay().container_count(), 3u);
}

TEST(OverlayNetworkTest, ContainerMacsAreUnique) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_client_container("c2");
  auto& c3 = tb.add_server_container("c3");
  EXPECT_NE(c1.mac(), c2.mac());
  EXPECT_NE(c1.mac(), c3.mac());
  EXPECT_NE(c2.mac(), c3.mac());
}

TEST(OverlayNetworkTest, VxlanEntropyVariesSourcePort) {
  // Frames of different inner flows leave the host with different outer
  // UDP source ports (RSS entropy).
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  tb.server().udp_bind(c2, 7000);
  tb.server().udp_bind(c2, 7001);

  std::vector<std::uint16_t> outer_ports;
  // Sniff at the server NIC queue level by sending one packet per flow
  // and inspecting ring contents before processing: simpler — send both
  // and verify they still demultiplex correctly end-to-end.
  tb.client().udp_send(c1, tb.client().cpu(1), 100, c2.ip(), 7000,
                       std::vector<std::uint8_t>(32, 1));
  tb.client().udp_send(c1, tb.client().cpu(1), 100, c2.ip(), 7001,
                       std::vector<std::uint8_t>(32, 2));
  tb.sim().run();
  EXPECT_EQ(tb.server().deliverer().no_socket_drops(), 0u);
}

TEST(BridgeTest, UnknownInnerMacDroppedAndCounted) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  // Teach c1 a bogus neighbor that no FDB knows, routed to the server
  // VTEP via a manual overlay route.
  const auto ghost_ip = net::Ipv4Addr::of(172, 17, 0, 200);
  const auto ghost_mac = net::MacAddr::make(0xdead);
  c1.add_neighbor(ghost_ip, ghost_mac);
  tb.client().add_overlay_route(tb.overlay().vni(), ghost_mac,
                                tb.server().ip(), tb.server().mac());
  tb.client().udp_send(c1, tb.client().cpu(1), 100, ghost_ip, 9,
                       std::vector<std::uint8_t>(16, 0));
  tb.sim().run();
  auto& bridge = tb.server().bridge(tb.overlay().vni());
  EXPECT_EQ(
      bridge.stage(tb.server().default_rx_cpu()).dropped(), 1u);
  (void)c2;
}

TEST(BridgeTest, ForwardCountsIncrement) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  tb.server().udp_bind(c2, 7000);
  for (int i = 0; i < 5; ++i) {
    tb.client().udp_send(c1, tb.client().cpu(1), 100, c2.ip(), 7000,
                         std::vector<std::uint8_t>(16, 0));
  }
  tb.sim().run();
  auto& bridge = tb.server().bridge(tb.overlay().vni());
  EXPECT_EQ(bridge.stage(tb.server().default_rx_cpu()).forwarded(), 5u);
}

}  // namespace
}  // namespace prism::overlay
