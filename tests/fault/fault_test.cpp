// Fault-injection subsystem: DropLedger and FaultPlan units, plus
// end-to-end conservation — every injected frame is either delivered or
// attributed to a drop reason, per priority class, and pool storage
// returns to baseline afterwards (no leak hides behind a drop path).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/skb_pool.h"
#include "net/headers.h"
#include "net/packet.h"
#include "sim/pool.h"

namespace prism {
namespace {

using fault::DropLedger;
using fault::DropReason;
using fault::FaultConfig;
using fault::FaultPlan;
using harness::Testbed;
using harness::TestbedConfig;

net::PacketBuf make_frame(std::size_t payload_size = 64) {
  net::FrameSpec spec;
  spec.src_mac = net::MacAddr::make(0x101);
  spec.dst_mac = net::MacAddr::make(0x202);
  spec.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  spec.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  spec.src_port = 1111;
  spec.dst_port = 2222;
  std::vector<std::uint8_t> payload(payload_size, 0x5a);
  return net::build_udp_frame(spec, payload);
}

// ------------------------------------------------------------ DropLedger

TEST(DropLedgerTest, CountsPerReasonAndClass) {
  DropLedger ledger;
  ledger.record(DropReason::kRingFull, 1);
  ledger.record(DropReason::kRingFull, 1);
  ledger.record(DropReason::kChecksum, 3);
  EXPECT_EQ(ledger.count(DropReason::kRingFull, 1), 2u);
  EXPECT_EQ(ledger.count(DropReason::kRingFull, 0), 0u);
  EXPECT_EQ(ledger.count(DropReason::kChecksum, 3), 1u);
  EXPECT_EQ(ledger.total(DropReason::kRingFull), 2u);
  EXPECT_EQ(ledger.class_total(1), 2u);
  EXPECT_EQ(ledger.class_total(3), 1u);
  EXPECT_EQ(ledger.total_drops(), 3u);
  ledger.reset();
  EXPECT_EQ(ledger.total_drops(), 0u);
}

TEST(DropLedgerTest, OutOfRangeClassesClamp) {
  DropLedger ledger;
  ledger.record(DropReason::kWire, -5);
  ledger.record(DropReason::kWire, 99);
  EXPECT_EQ(ledger.count(DropReason::kWire, 0), 1u);
  EXPECT_EQ(ledger.count(DropReason::kWire, fault::kNumFaultClasses - 1),
            1u);
}

TEST(DropLedgerTest, ObserverSeesEveryDrop) {
  DropLedger ledger;
  std::vector<std::pair<DropReason, int>> seen;
  ledger.set_observer([&](DropReason r, int level) {
    seen.emplace_back(r, level);
  });
  ledger.record(DropReason::kBacklogFull, 2);
  ledger.record(DropReason::kWire, -1);  // clamps before the observer
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(DropReason::kBacklogFull, 2));
  EXPECT_EQ(seen[1], std::make_pair(DropReason::kWire, 0));
}

TEST(DropLedgerTest, RecordFrameUsesClassifier) {
  DropLedger ledger;
  ledger.set_classifier(
      [](std::span<const std::uint8_t> f) { return f.empty() ? 0 : 2; });
  const auto frame = make_frame();
  ledger.record_frame(DropReason::kRingFull, frame.bytes());
  EXPECT_EQ(ledger.count(DropReason::kRingFull, 2), 1u);
  // No classifier: class 0.
  DropLedger plain;
  plain.record_frame(DropReason::kRingFull, frame.bytes());
  EXPECT_EQ(plain.count(DropReason::kRingFull, 0), 1u);
}

TEST(DropLedgerTest, ReasonNamesAreDistinct) {
  std::set<std::string> names;
  for (int r = 0; r < fault::kNumDropReasons; ++r) {
    names.insert(fault::drop_reason_name(static_cast<DropReason>(r)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(fault::kNumDropReasons));
  EXPECT_EQ(names.count("?"), 0u);
}

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, InactiveWithAllRatesZero) {
  FaultPlan plan;
  plan.configure(FaultConfig{});
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanTest, CompiledOutPlanNeverArms) {
#if PRISM_FAULTS_ENABLED
  GTEST_SKIP() << "faults compiled in";
#else
  FaultPlan plan;
  FaultConfig cfg;
  cfg.wire_drop_rate = 1.0;
  plan.configure(cfg);
  EXPECT_FALSE(plan.active());
#endif
}

TEST(FaultPlanTest, WireDropRateOneDropsEveryFrame) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  FaultPlan plan;
  FaultConfig cfg;
  cfg.wire_drop_rate = 1.0;
  plan.configure(cfg);
  ASSERT_TRUE(plan.active());
  for (int i = 0; i < 10; ++i) {
    auto frame = make_frame();
    EXPECT_TRUE(plan.on_wire_frame(frame).drop);
  }
  EXPECT_EQ(plan.counters().wire_drops, 10u);
}

TEST(FaultPlanTest, SameSeedSameWireDecisions) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.wire_drop_rate = 0.3;
  cfg.wire_corrupt_rate = 0.3;
  cfg.wire_truncate_rate = 0.2;
  cfg.wire_duplicate_rate = 0.2;
  cfg.wire_reorder_rate = 0.2;
  const auto run = [&cfg] {
    FaultPlan plan;
    plan.configure(cfg);
    std::vector<int> decisions;
    for (int i = 0; i < 300; ++i) {
      auto frame = make_frame();
      const auto act = plan.on_wire_frame(frame);
      decisions.push_back(act.drop ? 1 : 0);
      decisions.push_back(act.duplicate ? 1 : 0);
      decisions.push_back(static_cast<int>(act.reorder_delay));
      decisions.push_back(static_cast<int>(frame.size()));
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlanTest, PayloadOnlyCorruptionLeavesHeadersIntact) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  FaultPlan plan;
  FaultConfig cfg;
  cfg.wire_corrupt_rate = 1.0;
  cfg.corrupt_payload_only = true;
  plan.configure(cfg);

  auto frame = make_frame();
  const std::vector<std::uint8_t> before(frame.bytes().begin(),
                                         frame.bytes().end());
  const auto act = plan.on_wire_frame(frame);
  EXPECT_FALSE(act.drop);
  ASSERT_EQ(plan.counters().wire_corrupts, 1u);

  constexpr std::size_t kHeaders = net::EthernetHeader::kSize +
                                   net::Ipv4Header::kSize +
                                   net::UdpHeader::kSize;
  const auto after = frame.bytes();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < kHeaders; ++i) {
    EXPECT_EQ(after[i], before[i]) << "header byte " << i << " changed";
  }
  EXPECT_FALSE(std::equal(after.begin() + kHeaders, after.end(),
                          before.begin() + kHeaders));

  // The flipped bit is caught by receive-side UDP checksum validation.
  net::ParsedFrame parsed;
  ASSERT_TRUE(net::parse_frame_into(frame.bytes(), parsed));
  ASSERT_TRUE(parsed.udp.has_value());
  const auto datagram = frame.bytes().subspan(
      parsed.l4_payload_offset - net::UdpHeader::kSize, parsed.udp->length);
  EXPECT_FALSE(
      net::UdpHeader::verify_checksum(datagram, parsed.ip.src,
                                      parsed.ip.dst));
}

TEST(FaultPlanTest, TruncationShrinksFrame) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  FaultPlan plan;
  FaultConfig cfg;
  cfg.wire_truncate_rate = 1.0;
  plan.configure(cfg);
  auto frame = make_frame();
  const std::size_t original = frame.size();
  (void)plan.on_wire_frame(frame);
  EXPECT_LT(frame.size(), original);
  EXPECT_GE(frame.size(), 1u);
  EXPECT_EQ(plan.counters().wire_truncates, 1u);
}

// ------------------------------------------------- end-to-end conservation

struct PoolBaseline {
  std::uint64_t skb_outstanding;
  std::uint64_t buf_outstanding;

  static PoolBaseline capture() {
    const auto& s = kernel::SkbPool::instance().stats();
    const auto& b = sim::BufferPool::instance().stats();
    return {s.acquired - s.released - s.discarded,
            b.acquired - b.released - b.discarded};
  }
};

TEST(FaultConservationTest, TotalWireDropNeitherDeliversNorLeaks) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  const PoolBaseline before = PoolBaseline::capture();
  {
    TestbedConfig cfg;
    cfg.server_faults.seed = 7;
    cfg.server_faults.wire_drop_rate = 1.0;
    Testbed tb(cfg);
    auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
    constexpr std::uint64_t kSends = 100;
    for (std::uint64_t i = 0; i < kSends; ++i) {
      tb.sim().schedule_at(static_cast<sim::Time>(i) * 10'000, [&] {
        tb.client().udp_send(tb.client().root_ns(), tb.client().cpu(1),
                             5555, tb.server().ip(), 9000,
                             std::vector<std::uint8_t>(64, 1));
      });
    }
    tb.sim().run();
    EXPECT_EQ(sock.received(), 0u);
    const auto& layer = tb.server().faults();
    EXPECT_EQ(layer.plan.counters().wire_drops, kSends);
    EXPECT_EQ(layer.drops.total(DropReason::kWire), kSends);
    EXPECT_EQ(layer.drops.total_drops(), kSends);
    // Wire-dropped frames never count as received by the NIC.
    EXPECT_EQ(tb.server().nic().rx_frames(), 0u);
  }
  const PoolBaseline after = PoolBaseline::capture();
  EXPECT_EQ(after.skb_outstanding, before.skb_outstanding);
  EXPECT_EQ(after.buf_outstanding, before.buf_outstanding);
}

TEST(FaultConservationTest, MixedFaultsConservePerClass) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  TestbedConfig cfg;
  cfg.mode = kernel::NapiMode::kPrismBatch;
  cfg.server_faults.seed = 11;
  cfg.server_faults.wire_drop_rate = 0.15;
  cfg.server_faults.wire_corrupt_rate = 0.15;  // payload-only (default)
  cfg.server_faults.wire_duplicate_rate = 0.15;
  cfg.server_faults.wire_reorder_rate = 0.15;
  cfg.server_faults.decap_corrupt_rate = 0.1;
  cfg.server_faults.ring_full_rate = 0.05;
  cfg.server_faults.backlog_full_rate = 0.05;
  cfg.server_faults.skb_alloc_fail_rate = 0.05;
  cfg.server_faults.buf_alloc_fail_rate = 0.05;
  Testbed tb(cfg);
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  kernel::UdpSocket* socks[3] = {&tb.server().udp_bind(c2, 7000),
                                 &tb.server().udp_bind(c2, 7001),
                                 &tb.server().udp_bind(c2, 7002)};
  tb.server().priority_db().add(c2.ip(), 7001, 1);
  tb.server().priority_db().add(c2.ip(), 7002, 2);

  constexpr std::uint64_t kPerClass = 120;
  for (std::uint64_t i = 0; i < kPerClass; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      tb.sim().schedule_at(
          static_cast<sim::Time>(i * 3 + cls) * 5'000, [&, cls] {
            tb.client().udp_send(
                c1, tb.client().cpu(1), 4444, c2.ip(),
                static_cast<std::uint16_t>(7000 + cls),
                std::vector<std::uint8_t>(64, 0x11));
          });
    }
  }
  tb.sim().run();

  const auto& layer = tb.server().faults();
  for (int cls = 0; cls < 3; ++cls) {
    const std::uint64_t injected =
        kPerClass + layer.plan.duplicates_for_class(cls);
    const std::uint64_t accounted =
        socks[cls]->received() + layer.drops.class_total(cls);
    EXPECT_EQ(injected, accounted) << "class " << cls;
  }
  // The sweep exercised at least the wire-loss and corruption paths.
  EXPECT_GT(layer.plan.counters().wire_drops, 0u);
  EXPECT_GT(layer.plan.counters().wire_corrupts, 0u);
  EXPECT_GT(layer.plan.counters().wire_duplicates, 0u);
}

TEST(FaultConservationTest, IrqFaultsDelayButNeverDrop) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  TestbedConfig cfg;
  cfg.server_faults.seed = 3;
  cfg.server_faults.irq_delay_rate = 0.5;
  cfg.server_faults.irq_storm_rate = 0.5;
  Testbed tb(cfg);
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  constexpr std::uint64_t kSends = 50;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    tb.sim().schedule_at(static_cast<sim::Time>(i) * 20'000, [&] {
      tb.client().udp_send(tb.client().root_ns(), tb.client().cpu(1), 5555,
                           tb.server().ip(), 9000,
                           std::vector<std::uint8_t>(32, 2));
    });
  }
  tb.sim().run();
  EXPECT_EQ(sock.received(), kSends);
  EXPECT_EQ(tb.server().faults().drops.total_drops(), 0u);
  const auto& c = tb.server().faults().plan.counters();
  EXPECT_GT(c.irq_delays + c.irq_storm_irqs, 0u);
}

TEST(FaultConservationTest, RcvbufOverflowAccountedInLedger) {
  // Natural (non-injected) overflow: the ledger accounting is active even
  // in builds with the fault hooks compiled out.
  Testbed tb;
  auto& sock =
      tb.server().udp_bind(tb.server().root_ns(), 9000, /*capacity=*/2);
  constexpr std::uint64_t kSends = 6;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    tb.sim().schedule_at(static_cast<sim::Time>(i) * 5'000, [&] {
      tb.client().udp_send(tb.client().root_ns(), tb.client().cpu(1), 5555,
                           tb.server().ip(), 9000,
                           std::vector<std::uint8_t>(32, 3));
    });
  }
  tb.sim().run();
  EXPECT_EQ(sock.received(), 2u);
  EXPECT_EQ(sock.dropped(), kSends - 2);
  EXPECT_EQ(tb.server().faults().drops.total(DropReason::kRcvbufFull),
            kSends - 2);
  // The delivered+dropped split stays conserved.
  EXPECT_EQ(sock.received() + sock.dropped(), kSends);
}

TEST(FaultDeterminismTest, SameSeedIdenticalSnapshotsPoolsOnAndOff) {
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  const auto run = [](bool pools) {
    kernel::SkbPool::instance().set_enabled(pools);
    sim::BufferPool::instance().set_enabled(pools);
    TestbedConfig cfg;
    cfg.mode = kernel::NapiMode::kPrismBatch;
    cfg.server_faults.seed = 42;
    cfg.server_faults.wire_drop_rate = 0.2;
    cfg.server_faults.wire_corrupt_rate = 0.2;
    cfg.server_faults.wire_duplicate_rate = 0.1;
    cfg.server_faults.wire_reorder_rate = 0.1;
    cfg.server_faults.ring_full_rate = 0.05;
    cfg.server_faults.skb_alloc_fail_rate = 0.05;
    Testbed tb(cfg);
    auto& c1 = tb.add_client_container("c1");
    auto& c2 = tb.add_server_container("c2");
    tb.server().udp_bind(c2, 7000);
    tb.server().priority_db().add(c2.ip(), 7000, 1);
    for (int i = 0; i < 200; ++i) {
      tb.sim().schedule_at(static_cast<sim::Time>(i) * 7'000, [&] {
        tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                             std::vector<std::uint8_t>(64, 4));
      });
    }
    tb.sim().run();
    return tb.server().proc().read("prism/faults");
  };
  const std::string pooled_a = run(true);
  const std::string pooled_b = run(true);
  const std::string unpooled = run(false);
  kernel::SkbPool::instance().set_enabled(true);
  sim::BufferPool::instance().set_enabled(true);
  EXPECT_EQ(pooled_a, pooled_b);
  EXPECT_EQ(pooled_a, unpooled);
  EXPECT_NE(pooled_a.find("\"wire_drops\""), std::string::npos);
}

TEST(FaultProcTest, FaultsFileRendersPlanAndLedger) {
  Testbed tb;
  const std::string json = tb.server().proc().read("prism/faults");
  EXPECT_NE(json.find("\"compiled_in\""), std::string::npos);
  EXPECT_NE(json.find("\"injected\""), std::string::npos);
  EXPECT_NE(json.find("\"drops\""), std::string::npos);
  EXPECT_NE(json.find("\"total_drops\""), std::string::npos);
}

}  // namespace
}  // namespace prism
