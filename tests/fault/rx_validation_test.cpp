// Receive-side validation: corrupted, truncated and malformed frames are
// rejected on ingress — IPv4 header checksum and length checks at the
// driver parse, L4 checksum verification at socket delivery — and every
// rejection is counted. These paths are active regardless of whether the
// fault-injection hooks are compiled in: validation is stack behaviour,
// injection is just one way to exercise it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "harness/testbed.h"
#include "net/headers.h"
#include "net/packet.h"

namespace prism {
namespace {

using fault::DropReason;
using harness::Testbed;

constexpr std::size_t kIpOffset = net::EthernetHeader::kSize;
constexpr std::size_t kUdpOffset = kIpOffset + net::Ipv4Header::kSize;
constexpr std::size_t kPayloadOffset = kUdpOffset + net::UdpHeader::kSize;

/// A well-formed host-path UDP frame addressed to the testbed server.
net::PacketBuf frame_to_server(Testbed& tb, std::uint16_t dst_port,
                               std::size_t payload_size = 32) {
  net::FrameSpec spec;
  spec.src_mac = tb.client().mac();
  spec.dst_mac = tb.server().mac();
  spec.src_ip = tb.client().ip();
  spec.dst_ip = tb.server().ip();
  spec.src_port = 5555;
  spec.dst_port = dst_port;
  std::vector<std::uint8_t> payload(payload_size, 0x7e);
  return net::build_udp_frame(spec, payload);
}

void inject(Testbed& tb, net::PacketBuf frame) {
  tb.sim().schedule_at(1'000, [&tb, f = std::move(frame)]() mutable {
    tb.server().nic().receive(std::move(f));
  });
  tb.sim().run();
}

TEST(RxValidationTest, CleanFrameDelivers) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  inject(tb, frame_to_server(tb, 9000));
  EXPECT_EQ(sock.received(), 1u);
  EXPECT_EQ(tb.server().deliverer().csum_drops(), 0u);
  EXPECT_EQ(tb.server().faults().drops.total_drops(), 0u);
}

TEST(RxValidationTest, PayloadBitFlipRejectedByUdpChecksum) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  auto frame = frame_to_server(tb, 9000);
  frame.mutable_bytes()[kPayloadOffset + 5] ^= 0x40;
  inject(tb, std::move(frame));
  EXPECT_EQ(sock.received(), 0u);
  EXPECT_EQ(tb.server().deliverer().csum_drops(), 1u);
  EXPECT_EQ(tb.server().faults().drops.total(DropReason::kChecksum), 1u);
}

TEST(RxValidationTest, ZeroUdpChecksumMeansUncomputedAndIsAccepted) {
  // RFC 768: an all-zero transmitted checksum means the sender did not
  // compute one; RFC 7348 relies on this for VXLAN outer headers.
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  auto frame = frame_to_server(tb, 9000);
  frame.mutable_bytes()[kUdpOffset + 6] = 0;
  frame.mutable_bytes()[kUdpOffset + 7] = 0;
  inject(tb, std::move(frame));
  EXPECT_EQ(sock.received(), 1u);
  EXPECT_EQ(tb.server().deliverer().csum_drops(), 0u);
}

TEST(RxValidationTest, IpHeaderBitFlipRejectedAtParse) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  auto frame = frame_to_server(tb, 9000);
  frame.mutable_bytes()[kIpOffset + 8] ^= 0x01;  // TTL
  inject(tb, std::move(frame));
  EXPECT_EQ(sock.received(), 0u);
  EXPECT_EQ(tb.server().nic_napi(0).dropped_malformed(), 1u);
  EXPECT_EQ(tb.server().faults().drops.total(DropReason::kMalformed), 1u);
}

TEST(RxValidationTest, TruncatedFrameRejectedAtParse) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  auto frame = frame_to_server(tb, 9000);
  frame.truncate(kUdpOffset + 3);  // cut mid-UDP-header
  inject(tb, std::move(frame));
  EXPECT_EQ(sock.received(), 0u);
  EXPECT_EQ(tb.server().nic_napi(0).dropped_malformed(), 1u);
  EXPECT_EQ(tb.server().faults().drops.total(DropReason::kMalformed), 1u);
}

TEST(RxValidationTest, UdpLengthBeyondBufferRejectedAtParse) {
  Testbed tb;
  auto& sock = tb.server().udp_bind(tb.server().root_ns(), 9000);
  auto frame = frame_to_server(tb, 9000);
  // Claim a UDP length far beyond the buffer; the length check must trip
  // before anyone walks off the end of the payload.
  frame.mutable_bytes()[kUdpOffset + 4] = 0x7f;
  frame.mutable_bytes()[kUdpOffset + 5] = 0xff;
  inject(tb, std::move(frame));
  EXPECT_EQ(sock.received(), 0u);
  EXPECT_EQ(tb.server().nic_napi(0).dropped_malformed(), 1u);
}

TEST(RxValidationTest, TcpPayloadBitFlipRejectedByTcpChecksum) {
  Testbed tb;
  net::FrameSpec spec;
  spec.src_mac = tb.client().mac();
  spec.dst_mac = tb.server().mac();
  spec.src_ip = tb.client().ip();
  spec.dst_ip = tb.server().ip();
  spec.src_port = 40000;
  spec.dst_port = 5001;
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 5001;
  tcp.seq = 1;
  tcp.flags = net::TcpFlags::kAck | net::TcpFlags::kPsh;
  std::vector<std::uint8_t> payload(16, 0x33);
  auto frame = net::build_tcp_frame(spec, tcp, payload);
  constexpr std::size_t kTcpPayloadOffset =
      kIpOffset + net::Ipv4Header::kSize + net::TcpHeader::kSize;
  frame.mutable_bytes()[kTcpPayloadOffset + 2] ^= 0x08;
  inject(tb, std::move(frame));
  EXPECT_EQ(tb.server().deliverer().csum_drops(), 1u);
  EXPECT_EQ(tb.server().faults().drops.total(DropReason::kChecksum), 1u);
}

TEST(RxValidationTest, CorruptedInnerVxlanFrameRejectedPerClass) {
  // Overlay path: a bit flipped in the *inner* L4 payload after VXLAN
  // decap is caught by the inner UDP checksum at socket delivery, and the
  // drop lands in the packet's true priority class because the headers
  // (hence classification) were untouched.
  harness::TestbedConfig cfg;
  cfg.mode = kernel::NapiMode::kPrismBatch;
#if PRISM_FAULTS_ENABLED
  cfg.server_faults.seed = 5;
  cfg.server_faults.decap_corrupt_rate = 1.0;
#endif
  Testbed tb(cfg);
  if (!PRISM_FAULTS_ENABLED) GTEST_SKIP() << "faults compiled out";
  auto& c1 = tb.add_client_container("c1");
  auto& c2 = tb.add_server_container("c2");
  auto& sock = tb.server().udp_bind(c2, 7000);
  tb.server().priority_db().add(c2.ip(), 7000, 2);
  tb.client().udp_send(c1, tb.client().cpu(1), 4444, c2.ip(), 7000,
                       std::vector<std::uint8_t>(64, 0x44));
  tb.sim().run();
  EXPECT_EQ(sock.received(), 0u);
  EXPECT_EQ(tb.server().faults().drops.count(DropReason::kChecksum, 2),
            1u);
  EXPECT_EQ(tb.server().faults().plan.counters().decap_corrupts, 1u);
}

}  // namespace
}  // namespace prism
