// ChurnPlan: seeded expansion into a sorted stop/restart/migrate schedule
// that is a pure function of its config.
#include "fault/churn.h"

#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/time.h"

namespace prism::fault {
namespace {

ChurnConfig base_config() {
  ChurnConfig cfg;
  cfg.seed = 42;
  cfg.start = sim::milliseconds(10);
  cfg.horizon = sim::milliseconds(110);
  cfg.pairs = 2;
  cfg.containers_per_pair = 2;
  cfg.disruptions_per_container = 3;
  cfg.migrate_fraction = 0.5;
  return cfg;
}

TEST(ChurnPlanTest, SameConfigSameSchedule) {
  ChurnPlan a, b;
  a.configure(base_config());
  b.configure(base_config());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].pair, b.events()[i].pair);
    EXPECT_EQ(a.events()[i].container, b.events()[i].container);
  }

  ChurnConfig other = base_config();
  other.seed = 43;
  ChurnPlan c;
  c.configure(other);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = c.events()[i].at != a.events()[i].at ||
              c.events()[i].kind != a.events()[i].kind;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical schedules";
}

TEST(ChurnPlanTest, EventsSortedAndInsideWindow) {
  ChurnPlan plan;
  plan.configure(base_config());
  const auto& cfg = plan.config();
  ASSERT_FALSE(plan.events().empty());
  sim::Time prev = 0;
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.at, prev);
    prev = e.at;
    EXPECT_GE(e.at, cfg.start);
    // Every cycle (drain + restart) completes before the horizon.
    EXPECT_LE(e.at + cfg.drain + cfg.restart_delay, cfg.horizon);
    EXPECT_GE(e.pair, 0);
    EXPECT_LT(e.pair, cfg.pairs);
    EXPECT_GE(e.container, 0);
    EXPECT_LT(e.container, cfg.containers_per_pair);
  }
}

TEST(ChurnPlanTest, EveryStopHasItsRestart) {
  ChurnPlan plan;
  plan.configure(base_config());
  const auto& cfg = plan.config();
  EXPECT_EQ(plan.count(ChurnKind::kStop), plan.count(ChurnKind::kRestart));
  // Each container's events alternate stop -> restart at exactly
  // drain + restart_delay, with migrations standing alone.
  std::map<std::pair<int, int>, std::vector<ChurnEvent>> per;
  for (const auto& e : plan.events()) per[{e.pair, e.container}].push_back(e);
  for (const auto& [key, evs] : per) {
    for (std::size_t i = 0; i < evs.size(); ++i) {
      if (evs[i].kind == ChurnKind::kStop) {
        ASSERT_LT(i + 1, evs.size()) << "stop without restart";
        EXPECT_EQ(evs[i + 1].kind, ChurnKind::kRestart);
        EXPECT_EQ(evs[i + 1].at,
                  evs[i].at + cfg.drain + cfg.restart_delay);
      } else if (evs[i].kind == ChurnKind::kRestart) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(evs[i - 1].kind, ChurnKind::kStop);
      }
    }
  }
}

TEST(ChurnPlanTest, DisruptionsOfOneContainerNeverOverlap) {
  ChurnPlan plan;
  plan.configure(base_config());
  const auto& cfg = plan.config();
  std::map<std::pair<int, int>, sim::Time> busy_until;
  std::map<std::pair<int, int>, int> disruptions;
  for (const auto& e : plan.events()) {
    const auto key = std::make_pair(e.pair, e.container);
    if (e.kind == ChurnKind::kRestart) continue;
    ++disruptions[key];
    const auto it = busy_until.find(key);
    if (it != busy_until.end()) {
      EXPECT_GE(e.at, it->second)
          << "disruption began before the previous cycle + min_gap ended";
    }
    busy_until[key] = e.at + cfg.drain + cfg.restart_delay + cfg.min_gap;
  }
  for (const auto& [key, n] : disruptions) {
    EXPECT_EQ(n, cfg.disruptions_per_container);
  }
  EXPECT_EQ(disruptions.size(),
            static_cast<std::size_t>(cfg.pairs * cfg.containers_per_pair));
}

TEST(ChurnPlanTest, MigrateFractionExtremes) {
  ChurnConfig cfg = base_config();
  cfg.migrate_fraction = 0.0;
  ChurnPlan never;
  never.configure(cfg);
  EXPECT_EQ(never.count(ChurnKind::kMigrate), 0u);
  EXPECT_GT(never.count(ChurnKind::kStop), 0u);

  cfg.migrate_fraction = 1.0;
  ChurnPlan always;
  always.configure(cfg);
  EXPECT_EQ(always.count(ChurnKind::kStop), 0u);
  EXPECT_GT(always.count(ChurnKind::kMigrate), 0u);
}

TEST(ChurnPlanTest, TooTightWindowExpandsEmpty) {
  ChurnConfig cfg = base_config();
  // Window shorter than one drain+restart+gap cycle: no disruption fits.
  cfg.horizon = cfg.start + cfg.drain;
  ChurnPlan plan;
  plan.configure(cfg);
  EXPECT_TRUE(plan.events().empty());
}

TEST(ChurnPlanTest, KindNames) {
  EXPECT_STREQ(churn_kind_name(ChurnKind::kStop), "stop");
  EXPECT_STREQ(churn_kind_name(ChurnKind::kRestart), "restart");
  EXPECT_STREQ(churn_kind_name(ChurnKind::kMigrate), "migrate");
}

}  // namespace
}  // namespace prism::fault
