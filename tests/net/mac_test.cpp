#include "net/mac.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace prism::net {
namespace {

TEST(MacTest, RoundTripsThroughString) {
  const MacAddr m{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}};
  EXPECT_EQ(m.to_string(), "de:ad:be:ef:00:42");
  EXPECT_EQ(MacAddr::parse(m.to_string()), m);
}

TEST(MacTest, ParseRejectsGarbage) {
  EXPECT_THROW(MacAddr::parse("not-a-mac"), std::invalid_argument);
  EXPECT_THROW(MacAddr::parse("aa:bb:cc:dd:ee"), std::invalid_argument);
  EXPECT_THROW(MacAddr::parse("aa:bb:cc:dd:ee:fff"), std::invalid_argument);
}

TEST(MacTest, BroadcastProperties) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_FALSE(MacAddr::make(1).is_broadcast());
}

TEST(MacTest, MakeIsUnicastAndUnique) {
  std::unordered_set<MacAddr> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const auto m = MacAddr::make(i);
    EXPECT_FALSE(m.is_multicast());
    EXPECT_TRUE(seen.insert(m).second) << "duplicate at " << i;
  }
}

TEST(MacTest, ComparableAndHashable) {
  EXPECT_EQ(MacAddr::make(5), MacAddr::make(5));
  EXPECT_NE(MacAddr::make(5), MacAddr::make(6));
  EXPECT_EQ(std::hash<MacAddr>{}(MacAddr::make(5)),
            std::hash<MacAddr>{}(MacAddr::make(5)));
}

}  // namespace
}  // namespace prism::net
