#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::net {
namespace {

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                               0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x00 01 + 0xf2 03 + 0xf4 f5 + 0xf6 f7 = 0x2ddf0 -> 0xddf2,
  // complement = 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(ChecksumTest, EmbeddedChecksumVerifiesToZero) {
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34,
                                    0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
                                    0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                    0x00, 0x02};
  const auto csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(ChecksumTest, OddLengthHandled) {
  const std::uint8_t data[] = {0xab, 0xcd, 0xef};
  // 0xabcd + 0xef00 = 0x19acd -> 0x9ace, complement 0x6531.
  EXPECT_EQ(internet_checksum(data), 0x6531);
}

TEST(ChecksumTest, AccumulatorMatchesOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 7));
  }
  ChecksumAccumulator acc;
  acc.add(std::span(data).first(33));  // odd split
  acc.add(std::span(data).subspan(33));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(ChecksumTest, AddU16U32MatchBytes) {
  ChecksumAccumulator a, b;
  a.add_u32(0x01020304);
  a.add_u16(0x0506);
  const std::uint8_t bytes[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06};
  b.add(bytes);
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(ChecksumTest, SingleBitCorruptionDetected) {
  std::vector<std::uint8_t> data(40, 0x5a);
  const auto good = internet_checksum(data);
  data[17] ^= 0x04;
  EXPECT_NE(internet_checksum(data), good);
}

}  // namespace
}  // namespace prism::net
