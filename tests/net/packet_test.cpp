#include "net/packet.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::net {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return {s, s + std::string(s).size()};
}

FrameSpec test_spec() {
  FrameSpec spec;
  spec.src_mac = MacAddr::make(1);
  spec.dst_mac = MacAddr::make(2);
  spec.src_ip = Ipv4Addr::of(10, 0, 0, 1);
  spec.dst_ip = Ipv4Addr::of(10, 0, 0, 2);
  spec.src_port = 40000;
  spec.dst_port = 11211;
  return spec;
}

TEST(PacketBufTest, HeadroomPrependWithoutRealloc) {
  const auto payload = bytes_of("payload");
  auto p = PacketBuf::with_headroom(10, payload);
  EXPECT_EQ(p.size(), 7u);
  EXPECT_EQ(p.headroom(), 10u);
  const auto hdr = bytes_of("hdr");
  p.push_front(hdr);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(p.headroom(), 7u);
  EXPECT_EQ(std::string(p.bytes().begin(), p.bytes().end()), "hdrpayload");
}

TEST(PacketBufTest, PrependGrowsWhenHeadroomExhausted) {
  const auto payload = bytes_of("x");
  auto p = PacketBuf::with_headroom(2, payload);
  const auto big = bytes_of("0123456789");
  p.push_front(big);
  EXPECT_EQ(std::string(p.bytes().begin(), p.bytes().end()), "0123456789x");
  // Fresh headroom is available after the grow.
  EXPECT_GE(p.headroom(), kEncapHeadroom);
}

TEST(PacketBufTest, PopFrontStripsHeaders) {
  auto p = PacketBuf::with_headroom(0, bytes_of("headerbody"));
  p.pop_front(6);
  EXPECT_EQ(std::string(p.bytes().begin(), p.bytes().end()), "body");
}

TEST(PacketBufTest, PopBeyondEndThrows) {
  auto p = PacketBuf::with_headroom(0, bytes_of("ab"));
  EXPECT_THROW(p.pop_front(3), std::out_of_range);
}

TEST(PacketBufTest, PushAfterPopReusesSpace) {
  auto p = PacketBuf::with_headroom(0, bytes_of("outerinner"));
  p.pop_front(5);
  p.push_front(bytes_of("NEW__"));
  EXPECT_EQ(std::string(p.bytes().begin(), p.bytes().end()), "NEW__inner");
}

TEST(BuildUdpFrameTest, ParsesBack) {
  const auto payload = bytes_of("ping");
  const auto frame = build_udp_frame(test_spec(), payload);
  const auto parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->eth.src, MacAddr::make(1));
  EXPECT_EQ(parsed->eth.dst, MacAddr::make(2));
  EXPECT_EQ(parsed->ip.src, Ipv4Addr::of(10, 0, 0, 1));
  EXPECT_EQ(parsed->ip.dst, Ipv4Addr::of(10, 0, 0, 2));
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->src_port, 40000);
  EXPECT_EQ(parsed->udp->dst_port, 11211);
  EXPECT_EQ(std::string(parsed->l4_payload.begin(),
                        parsed->l4_payload.end()),
            "ping");
  EXPECT_FALSE(parsed->is_vxlan());
}

TEST(BuildUdpFrameTest, ChecksumsAreValid) {
  const auto payload = bytes_of("check");
  const auto frame = build_udp_frame(test_spec(), payload);
  const auto parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(parsed.has_value());
  const auto datagram = frame.bytes().subspan(
      EthernetHeader::kSize + Ipv4Header::kSize, parsed->udp->length);
  EXPECT_TRUE(UdpHeader::verify_checksum(datagram, parsed->ip.src,
                                         parsed->ip.dst));
}

TEST(BuildTcpFrameTest, ParsesBack) {
  TcpHeader tcp;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags = TcpFlags::kAck;
  const auto payload = bytes_of("GET / HTTP/1.1");
  const auto frame = build_tcp_frame(test_spec(), tcp, payload);
  const auto parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, 1000u);
  EXPECT_EQ(parsed->tcp->ack, 2000u);
  EXPECT_EQ(parsed->tcp->src_port, 40000);
  EXPECT_EQ(std::string(parsed->l4_payload.begin(),
                        parsed->l4_payload.end()),
            "GET / HTTP/1.1");
}

TEST(VxlanTest, EncapDecapRoundTrip) {
  // Inner container-to-container frame.
  FrameSpec inner_spec = test_spec();
  inner_spec.src_ip = Ipv4Addr::of(172, 17, 0, 2);
  inner_spec.dst_ip = Ipv4Addr::of(172, 17, 0, 3);
  auto frame = build_udp_frame(inner_spec, bytes_of("inner-data"));
  const std::vector<std::uint8_t> inner_copy(frame.bytes().begin(),
                                             frame.bytes().end());

  // Outer host-to-host encapsulation.
  FrameSpec outer = test_spec();
  outer.src_port = 51234;
  vxlan_encapsulate(frame, outer, 0x1234);

  // Outer parse: UDP to port 4789.
  const auto outer_parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(outer_parsed.has_value());
  ASSERT_TRUE(outer_parsed->udp.has_value());
  EXPECT_TRUE(outer_parsed->is_vxlan());
  EXPECT_EQ(outer_parsed->udp->dst_port, kVxlanPort);
  EXPECT_EQ(outer_parsed->ip.dst, Ipv4Addr::of(10, 0, 0, 2));

  // VXLAN header follows the outer UDP header.
  const auto vxlan = VxlanHeader::parse(outer_parsed->l4_payload);
  ASSERT_TRUE(vxlan.has_value());
  EXPECT_EQ(vxlan->vni, 0x1234u);

  // Decapsulate: strip outer eth+ip+udp+vxlan, recover the inner frame.
  frame.pop_front(outer_parsed->l4_payload_offset + VxlanHeader::kSize);
  EXPECT_EQ(std::vector<std::uint8_t>(frame.bytes().begin(),
                                      frame.bytes().end()),
            inner_copy);
  const auto inner_parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(inner_parsed.has_value());
  EXPECT_EQ(inner_parsed->ip.src, Ipv4Addr::of(172, 17, 0, 2));
  EXPECT_EQ(std::string(inner_parsed->l4_payload.begin(),
                        inner_parsed->l4_payload.end()),
            "inner-data");
}

TEST(VxlanTest, EncapUsesHeadroomWithoutCopy) {
  auto frame = build_udp_frame(test_spec(), bytes_of("p"));
  ASSERT_GE(frame.headroom(), kEncapHeadroom);
  const auto before = frame.size();
  vxlan_encapsulate(frame, test_spec(), 7);
  EXPECT_EQ(frame.size(), before + kEncapHeadroom);
}

TEST(ParseFrameTest, RejectsNonIpv4) {
  std::vector<std::uint8_t> buf(64, 0);
  buf[12] = 0x08;
  buf[13] = 0x06;  // ARP
  EXPECT_FALSE(parse_frame(buf).has_value());
}

TEST(ParseFrameTest, RejectsTruncatedFrames) {
  const auto frame = build_udp_frame(test_spec(), bytes_of("payload"));
  const auto full = frame.bytes();
  // Any truncation that cuts into the IP header must fail cleanly.
  for (std::size_t len : {0u, 10u, 20u, 30u}) {
    EXPECT_FALSE(parse_frame(full.first(len)).has_value()) << len;
  }
}

}  // namespace
}  // namespace prism::net
