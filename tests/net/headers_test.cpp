#include "net/headers.h"

#include <gtest/gtest.h>

#include <vector>

namespace prism::net {
namespace {

TEST(EthernetHeaderTest, RoundTrip) {
  EthernetHeader h{MacAddr::make(1), MacAddr::make(2), EtherType::kIpv4};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  ASSERT_EQ(buf.size(), EthernetHeader::kSize);
  const auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, h.ether_type);
}

TEST(EthernetHeaderTest, ShortBufferRejected) {
  std::vector<std::uint8_t> buf(13, 0);
  EXPECT_FALSE(EthernetHeader::parse(buf).has_value());
}

TEST(Ipv4HeaderTest, RoundTripWithChecksum) {
  Ipv4Header h;
  h.dscp = 10;
  h.total_length = 120;
  h.identification = 0xbeef;
  h.ttl = 17;
  h.protocol = IpProto::kTcp;
  h.src = Ipv4Addr::of(10, 1, 2, 3);
  h.dst = Ipv4Addr::of(172, 16, 0, 9);
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf.resize(120);  // payload space so total_length is plausible
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dscp, h.dscp);
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->identification, h.identification);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->protocol, h.protocol);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4HeaderTest, CorruptChecksumRejected) {
  Ipv4Header h;
  h.total_length = 20;
  h.src = Ipv4Addr::of(1, 2, 3, 4);
  h.dst = Ipv4Addr::of(5, 6, 7, 8);
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  buf[13] ^= 0x01;  // flip a bit in the src address
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4HeaderTest, BadVersionRejected) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4HeaderTest, TotalLengthBeyondBufferRejected) {
  Ipv4Header h;
  h.total_length = 2000;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);  // buffer only 20 bytes
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(UdpHeaderTest, RoundTripAndChecksum) {
  const std::vector<std::uint8_t> payload = {'h', 'e', 'l', 'l', 'o'};
  const auto src = Ipv4Addr::of(10, 0, 0, 1);
  const auto dst = Ipv4Addr::of(10, 0, 0, 2);
  UdpHeader h;
  h.src_port = 1234;
  h.dst_port = 5678;
  h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  std::vector<std::uint8_t> buf;
  h.serialize(buf, src, dst, payload);
  buf.insert(buf.end(), payload.begin(), payload.end());

  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 5678);
  EXPECT_EQ(parsed->length, h.length);
  EXPECT_TRUE(UdpHeader::verify_checksum(buf, src, dst));
}

TEST(UdpHeaderTest, ChecksumDetectsPayloadCorruption) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto src = Ipv4Addr::of(10, 0, 0, 1);
  const auto dst = Ipv4Addr::of(10, 0, 0, 2);
  UdpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  std::vector<std::uint8_t> buf;
  h.serialize(buf, src, dst, payload);
  buf.insert(buf.end(), payload.begin(), payload.end());
  buf.back() ^= 0xff;
  EXPECT_FALSE(UdpHeader::verify_checksum(buf, src, dst));
}

TEST(UdpHeaderTest, ChecksumDetectsWrongPseudoHeader) {
  const std::vector<std::uint8_t> payload = {9};
  const auto src = Ipv4Addr::of(10, 0, 0, 1);
  const auto dst = Ipv4Addr::of(10, 0, 0, 2);
  UdpHeader h;
  h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  std::vector<std::uint8_t> buf;
  h.serialize(buf, src, dst, payload);
  buf.insert(buf.end(), payload.begin(), payload.end());
  EXPECT_FALSE(
      UdpHeader::verify_checksum(buf, src, Ipv4Addr::of(10, 0, 0, 3)));
}

TEST(UdpHeaderTest, BadLengthRejected) {
  std::vector<std::uint8_t> buf(8, 0);
  buf[5] = 4;  // length 4 < header size
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
}

TEST(TcpHeaderTest, RoundTripAndChecksum) {
  const std::vector<std::uint8_t> payload = {'d', 'a', 't', 'a'};
  const auto src = Ipv4Addr::of(192, 168, 0, 1);
  const auto dst = Ipv4Addr::of(192, 168, 0, 2);
  TcpHeader h;
  h.src_port = 80;
  h.dst_port = 54321;
  h.seq = 0x01020304;
  h.ack = 0x0a0b0c0d;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  h.window = 512;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, src, dst, payload);
  buf.insert(buf.end(), payload.begin(), payload.end());

  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 80);
  EXPECT_EQ(parsed->dst_port, 54321);
  EXPECT_EQ(parsed->seq, 0x01020304u);
  EXPECT_EQ(parsed->ack, 0x0a0b0c0du);
  EXPECT_EQ(parsed->flags, TcpFlags::kAck | TcpFlags::kPsh);
  EXPECT_EQ(parsed->window, 512);
  EXPECT_TRUE(TcpHeader::verify_checksum(buf, src, dst));
}

TEST(TcpHeaderTest, ChecksumDetectsCorruption) {
  const auto src = Ipv4Addr::of(1, 1, 1, 1);
  const auto dst = Ipv4Addr::of(2, 2, 2, 2);
  TcpHeader h;
  h.seq = 42;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, src, dst, {});
  buf[4] ^= 0x80;  // corrupt seq
  EXPECT_FALSE(TcpHeader::verify_checksum(buf, src, dst));
}

TEST(VxlanHeaderTest, RoundTrip) {
  VxlanHeader h{0xabcdef};
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  ASSERT_EQ(buf.size(), VxlanHeader::kSize);
  const auto parsed = VxlanHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vni, 0xabcdefu);
}

TEST(VxlanHeaderTest, MissingVniFlagRejected) {
  std::vector<std::uint8_t> buf(8, 0);
  EXPECT_FALSE(VxlanHeader::parse(buf).has_value());
}

TEST(VxlanHeaderTest, ShortBufferRejected) {
  std::vector<std::uint8_t> buf(7, 0);
  EXPECT_FALSE(VxlanHeader::parse(buf).has_value());
}

}  // namespace
}  // namespace prism::net
