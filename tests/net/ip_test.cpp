#include "net/ip.h"

#include <gtest/gtest.h>

namespace prism::net {
namespace {

TEST(IpTest, OfBuildsCorrectValue) {
  const auto a = Ipv4Addr::of(10, 0, 0, 1);
  EXPECT_EQ(a.value, 0x0a000001u);
}

TEST(IpTest, RoundTripsThroughString) {
  const auto a = Ipv4Addr::of(192, 168, 1, 42);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(Ipv4Addr::parse(a.to_string()), a);
}

TEST(IpTest, ParseRejectsGarbage) {
  EXPECT_THROW(Ipv4Addr::parse("hello"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("256.0.0.1"), std::invalid_argument);
}

TEST(IpTest, AnyIsZero) { EXPECT_EQ(Ipv4Addr::any().value, 0u); }

TEST(IpTest, Ordering) {
  EXPECT_LT(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 0, 2));
}

}  // namespace
}  // namespace prism::net
