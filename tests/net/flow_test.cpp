#include "net/flow.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/packet.h"

namespace prism::net {
namespace {

TEST(FlowTest, ReversedSwapsEndpoints) {
  FiveTuple f{Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2), 100, 200,
              IpProto::kTcp};
  const auto r = f.reversed();
  EXPECT_EQ(r.src_ip, f.dst_ip);
  EXPECT_EQ(r.dst_ip, f.src_ip);
  EXPECT_EQ(r.src_port, f.dst_port);
  EXPECT_EQ(r.dst_port, f.src_port);
  EXPECT_EQ(r.protocol, f.protocol);
  EXPECT_EQ(r.reversed(), f);
}

TEST(FlowTest, ExtractedFromUdpFrame) {
  FrameSpec spec;
  spec.src_mac = MacAddr::make(1);
  spec.dst_mac = MacAddr::make(2);
  spec.src_ip = Ipv4Addr::of(10, 0, 0, 1);
  spec.dst_ip = Ipv4Addr::of(10, 0, 0, 2);
  spec.src_port = 1111;
  spec.dst_port = 2222;
  const std::uint8_t payload[] = {1};
  const auto frame = build_udp_frame(spec, payload);
  const auto parsed = parse_frame(frame.bytes());
  ASSERT_TRUE(parsed.has_value());
  const auto f = flow_of(*parsed);
  EXPECT_EQ(f.src_ip, spec.src_ip);
  EXPECT_EQ(f.dst_port, 2222);
  EXPECT_EQ(f.protocol, IpProto::kUdp);
}

TEST(FlowTest, HashDistinguishesFlows) {
  std::unordered_set<FiveTuple> set;
  for (std::uint16_t p = 1; p <= 1000; ++p) {
    set.insert(FiveTuple{Ipv4Addr::of(10, 0, 0, 1),
                         Ipv4Addr::of(10, 0, 0, 2), p, 80, IpProto::kTcp});
  }
  EXPECT_EQ(set.size(), 1000u);
}

TEST(FlowTest, ToStringIsReadable) {
  FiveTuple f{Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 0, 2), 5, 80,
              IpProto::kTcp};
  EXPECT_EQ(f.to_string(), "tcp 10.0.0.1:5 -> 10.0.0.2:80");
}

}  // namespace
}  // namespace prism::net
