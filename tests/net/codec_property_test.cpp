// Property tests over the wire-format codecs: randomized frames must
// round-trip bit-exactly through build -> parse, survive VXLAN
// encapsulation/decapsulation, and always verify their checksums.
#include <gtest/gtest.h>

#include "net/flow.h"
#include "net/packet.h"
#include "sim/rng.h"

namespace prism::net {
namespace {

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

FrameSpec random_spec(sim::Rng& rng) {
  FrameSpec spec;
  spec.src_mac = MacAddr::make(static_cast<std::uint32_t>(rng.next()));
  spec.dst_mac = MacAddr::make(static_cast<std::uint32_t>(rng.next()));
  spec.src_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.next())};
  spec.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.next())};
  spec.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  spec.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  spec.dscp = static_cast<std::uint8_t>(rng.uniform_int(0, 63));
  return spec;
}

std::vector<std::uint8_t> random_payload(sim::Rng& rng, std::size_t max) {
  std::vector<std::uint8_t> p(
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max))));
  for (auto& byte : p) byte = static_cast<std::uint8_t>(rng.next());
  return p;
}

TEST_P(CodecProperty, UdpFramesRoundTrip) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto spec = random_spec(rng);
    const auto payload = random_payload(rng, 1400);
    const auto frame = build_udp_frame(spec, payload);
    const auto parsed = parse_frame(frame.bytes());
    ASSERT_TRUE(parsed.has_value()) << i;
    EXPECT_EQ(parsed->eth.src, spec.src_mac);
    EXPECT_EQ(parsed->eth.dst, spec.dst_mac);
    EXPECT_EQ(parsed->ip.src, spec.src_ip);
    EXPECT_EQ(parsed->ip.dst, spec.dst_ip);
    EXPECT_EQ(parsed->ip.dscp, spec.dscp);
    ASSERT_TRUE(parsed->udp.has_value());
    EXPECT_EQ(parsed->udp->src_port, spec.src_port);
    EXPECT_EQ(parsed->udp->dst_port, spec.dst_port);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           parsed->l4_payload.begin(),
                           parsed->l4_payload.end()));
    const auto datagram = frame.bytes().subspan(
        EthernetHeader::kSize + Ipv4Header::kSize);
    EXPECT_TRUE(
        UdpHeader::verify_checksum(datagram.first(parsed->udp->length),
                                   spec.src_ip, spec.dst_ip));
  }
}

TEST_P(CodecProperty, TcpFramesRoundTrip) {
  sim::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 200; ++i) {
    const auto spec = random_spec(rng);
    const auto payload = random_payload(rng, 1400);
    TcpHeader tcp;
    tcp.seq = static_cast<std::uint32_t>(rng.next());
    tcp.ack = static_cast<std::uint32_t>(rng.next());
    tcp.flags = static_cast<std::uint8_t>(rng.uniform_int(0, 0x3f));
    tcp.window = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    const auto frame = build_tcp_frame(spec, tcp, payload);
    const auto parsed = parse_frame(frame.bytes());
    ASSERT_TRUE(parsed.has_value()) << i;
    ASSERT_TRUE(parsed->tcp.has_value());
    EXPECT_EQ(parsed->tcp->seq, tcp.seq);
    EXPECT_EQ(parsed->tcp->ack, tcp.ack);
    EXPECT_EQ(parsed->tcp->flags, tcp.flags);
    EXPECT_EQ(parsed->tcp->window, tcp.window);
    const auto segment = frame.bytes().subspan(
        EthernetHeader::kSize + Ipv4Header::kSize);
    EXPECT_TRUE(
        TcpHeader::verify_checksum(segment, spec.src_ip, spec.dst_ip));
  }
}

TEST_P(CodecProperty, VxlanEncapDecapIsIdentity) {
  sim::Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 100; ++i) {
    const auto inner_spec = random_spec(rng);
    const auto payload = random_payload(rng, 1300);
    auto frame = build_udp_frame(inner_spec, payload);
    const std::vector<std::uint8_t> inner_before(frame.bytes().begin(),
                                                 frame.bytes().end());
    const auto outer_spec = random_spec(rng);
    const auto vni =
        static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
    vxlan_encapsulate(frame, outer_spec, vni);

    const auto outer = parse_frame(frame.bytes());
    ASSERT_TRUE(outer.has_value());
    ASSERT_TRUE(outer->is_vxlan());
    const auto vx = VxlanHeader::parse(outer->l4_payload);
    ASSERT_TRUE(vx.has_value());
    EXPECT_EQ(vx->vni, vni);

    frame.pop_front(outer->l4_payload_offset + VxlanHeader::kSize);
    EXPECT_EQ(std::vector<std::uint8_t>(frame.bytes().begin(),
                                        frame.bytes().end()),
              inner_before);
  }
}

TEST_P(CodecProperty, FlowExtractionIsSymmetric) {
  sim::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 100; ++i) {
    const auto spec = random_spec(rng);
    const std::uint8_t payload[1] = {0};
    const auto fwd = build_udp_frame(spec, payload);
    FrameSpec back = spec;
    std::swap(back.src_mac, back.dst_mac);
    std::swap(back.src_ip, back.dst_ip);
    std::swap(back.src_port, back.dst_port);
    const auto rev = build_udp_frame(back, payload);
    const auto f1 = flow_of(*parse_frame(fwd.bytes()));
    const auto f2 = flow_of(*parse_frame(rev.bytes()));
    EXPECT_EQ(f1.reversed(), f2);
    EXPECT_EQ(f2.reversed(), f1);
  }
}

TEST_P(CodecProperty, CorruptionIsAlwaysDetected) {
  // Flip one random bit in the IP header region of a valid frame: either
  // the parse fails (checksum) or, if the flip hit the payload or L4
  // region, the L4 checksum catches it.
  sim::Rng rng(GetParam() + 31337);
  int rejected = 0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const auto spec = random_spec(rng);
    const auto payload = random_payload(rng, 200);
    const auto frame = build_udp_frame(spec, payload);
    std::vector<std::uint8_t> bytes(frame.bytes().begin(),
                                    frame.bytes().end());
    // Corrupt within the IP header (offset 14..33).
    const auto at = static_cast<std::size_t>(rng.uniform_int(14, 33));
    bytes[at] ^= static_cast<std::uint8_t>(
        1u << rng.uniform_int(0, 7));
    const auto parsed = parse_frame(bytes);
    if (!parsed) {
      ++rejected;
      continue;
    }
    // Total-length or version changes can still parse; the UDP checksum
    // over the pseudo-header must then fail.
    if (parsed->udp) {
      const auto datagram =
          std::span<const std::uint8_t>(bytes).subspan(
              EthernetHeader::kSize + Ipv4Header::kSize);
      if (!UdpHeader::verify_checksum(
              datagram.first(std::min<std::size_t>(datagram.size(),
                                                   parsed->udp->length)),
              parsed->ip.src, parsed->ip.dst)) {
        ++rejected;
      }
    }
  }
  // Every single-bit IP-header corruption must be detected somewhere.
  EXPECT_EQ(rejected, kTrials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1u, 17u, 2026u));

}  // namespace
}  // namespace prism::net
