#include "kernel/stage_transition.h"

#include <gtest/gtest.h>

#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

SkbPtr make_skb(bool high) {
  auto skb = alloc_skb();
  skb->priority = high ? 1 : 0;
  return skb;
}

TEST(StageTransitionTest, VanillaEnqueuesLowRegardlessOfPriority) {
  Pipeline p(NapiMode::kVanilla);
  const auto inline_cost =
      p.transition.transit(make_skb(true), 0, p.veth);
  EXPECT_EQ(inline_cost, 0);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_TRUE(p.veth.high_queue.empty());
  EXPECT_TRUE(p.veth.scheduled);
}

TEST(StageTransitionTest, PrismBatchRoutesByPriority) {
  Pipeline p(NapiMode::kPrismBatch);
  p.transition.transit(make_skb(false), 0, p.veth);
  p.transition.transit(make_skb(true), 0, p.veth);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_EQ(p.veth.high_queue.size(), 1u);
}

TEST(StageTransitionTest, PrismSyncHighRunsInline) {
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost =
      p.transition.transit(make_skb(true), 1000, p.veth);
  // veth stage per-packet cost plus the sync hop.
  EXPECT_EQ(inline_cost,
            p.cost.sync_transition + p.cost.backlog_stage_per_packet);
  EXPECT_TRUE(p.veth.low_queue.empty());
  EXPECT_TRUE(p.veth.high_queue.empty());
  EXPECT_FALSE(p.veth.scheduled);
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_EQ(p.deliveries[0].at, 1000 + p.cost.sync_transition +
                                    p.cost.backlog_stage_per_packet);
}

TEST(StageTransitionTest, PrismSyncLowStillQueues) {
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost =
      p.transition.transit(make_skb(false), 0, p.veth);
  EXPECT_EQ(inline_cost, 0);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_TRUE(p.deliveries.empty());
}

TEST(StageTransitionTest, PrismQueuesRoutesByPriorityLikeBatch) {
  Pipeline p(NapiMode::kPrismQueues);
  const auto low_cost = p.transition.transit(make_skb(false), 0, p.veth);
  const auto high_cost = p.transition.transit(make_skb(true), 0, p.veth);
  // The queues-only ablation never runs anything inline.
  EXPECT_EQ(low_cost, 0);
  EXPECT_EQ(high_cost, 0);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_EQ(p.veth.high_queue.size(), 1u);
  EXPECT_TRUE(p.veth.scheduled);
  EXPECT_TRUE(p.deliveries.empty());
}

TEST(StageTransitionTest, PrismQueuesIgnoresHeadInsertionHint) {
  // Same transit call, two modes: batch head-inserts the device for a
  // high packet, the queues ablation keeps strict tail order (§V
  // ablation: priority queues without poll-list preemption).
  Pipeline batch(NapiMode::kPrismBatch);
  batch.transition.transit(make_skb(true), 0, batch.veth);
  EXPECT_EQ(batch.engine.head_inserts(), 1u);

  Pipeline queues(NapiMode::kPrismQueues);
  queues.transition.transit(make_skb(true), 0, queues.veth);
  EXPECT_EQ(queues.engine.head_inserts(), 0u);

  // Nor does a high packet *move* an already-scheduled device to the
  // head in queues mode.
  queues.transition.transit(make_skb(true), 0, queues.veth);
  EXPECT_EQ(queues.engine.head_inserts(), 0u);
  Pipeline batch2(NapiMode::kPrismBatch);
  batch2.transition.transit(make_skb(false), 0, batch2.veth);
  batch2.transition.transit(make_skb(true), 0, batch2.veth);
  EXPECT_EQ(batch2.engine.head_inserts(), 1u);
}

TEST(StageTransitionTest, OnlySyncReturnsInlineCost) {
  // transit()'s return value is the run-to-completion cost chained onto
  // the current packet; every mode but prism-sync must return 0.
  for (const auto mode :
       {NapiMode::kVanilla, NapiMode::kPrismBatch, NapiMode::kPrismQueues,
        NapiMode::kPrismSync}) {
    Pipeline p(mode);
    const auto low = p.transition.transit(make_skb(false), 0, p.veth);
    const auto high = p.transition.transit(make_skb(true), 0, p.veth);
    EXPECT_EQ(low, 0) << static_cast<int>(mode);
    if (mode == NapiMode::kPrismSync) {
      EXPECT_EQ(high,
                p.cost.sync_transition + p.cost.backlog_stage_per_packet);
    } else {
      EXPECT_EQ(high, 0) << static_cast<int>(mode);
    }
  }
}

TEST(StageTransitionTest, PrismSyncChainsThroughMultipleStages) {
  // A high packet entering br in sync mode runs br AND veth inline.
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost = p.transition.transit(make_skb(true), 0, p.br);
  EXPECT_EQ(inline_cost,
            2 * p.cost.sync_transition + p.cost.bridge_stage_per_packet +
                p.cost.backlog_stage_per_packet);
  EXPECT_EQ(p.deliveries.size(), 1u);
}

}  // namespace
}  // namespace prism::kernel
