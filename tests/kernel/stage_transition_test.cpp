#include "kernel/stage_transition.h"

#include <gtest/gtest.h>

#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

SkbPtr make_skb(bool high) {
  auto skb = alloc_skb();
  skb->priority = high ? 1 : 0;
  return skb;
}

TEST(StageTransitionTest, VanillaEnqueuesLowRegardlessOfPriority) {
  Pipeline p(NapiMode::kVanilla);
  const auto inline_cost =
      p.transition.transit(make_skb(true), 0, p.veth);
  EXPECT_EQ(inline_cost, 0);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_TRUE(p.veth.high_queue.empty());
  EXPECT_TRUE(p.veth.scheduled);
}

TEST(StageTransitionTest, PrismBatchRoutesByPriority) {
  Pipeline p(NapiMode::kPrismBatch);
  p.transition.transit(make_skb(false), 0, p.veth);
  p.transition.transit(make_skb(true), 0, p.veth);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_EQ(p.veth.high_queue.size(), 1u);
}

TEST(StageTransitionTest, PrismSyncHighRunsInline) {
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost =
      p.transition.transit(make_skb(true), 1000, p.veth);
  // veth stage per-packet cost plus the sync hop.
  EXPECT_EQ(inline_cost,
            p.cost.sync_transition + p.cost.backlog_stage_per_packet);
  EXPECT_TRUE(p.veth.low_queue.empty());
  EXPECT_TRUE(p.veth.high_queue.empty());
  EXPECT_FALSE(p.veth.scheduled);
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_EQ(p.deliveries[0].at, 1000 + p.cost.sync_transition +
                                    p.cost.backlog_stage_per_packet);
}

TEST(StageTransitionTest, PrismSyncLowStillQueues) {
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost =
      p.transition.transit(make_skb(false), 0, p.veth);
  EXPECT_EQ(inline_cost, 0);
  EXPECT_EQ(p.veth.low_queue.size(), 1u);
  EXPECT_TRUE(p.deliveries.empty());
}

TEST(StageTransitionTest, PrismSyncChainsThroughMultipleStages) {
  // A high packet entering br in sync mode runs br AND veth inline.
  Pipeline p(NapiMode::kPrismSync);
  const auto inline_cost = p.transition.transit(make_skb(true), 0, p.br);
  EXPECT_EQ(inline_cost,
            2 * p.cost.sync_transition + p.cost.bridge_stage_per_packet +
                p.cost.backlog_stage_per_packet);
  EXPECT_EQ(p.deliveries.size(), 1u);
}

}  // namespace
}  // namespace prism::kernel
