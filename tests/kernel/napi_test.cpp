#include "kernel/napi.h"

#include <gtest/gtest.h>

#include <vector>

#include "kernel/skb.h"

namespace prism::kernel {
namespace {

// Minimal stage recording what it processed.
class RecordingStage final : public PacketStage {
 public:
  explicit RecordingStage(sim::Duration per_packet)
      : per_packet_(per_packet) {}

  sim::Duration process_one(SkbPtr skb, sim::Time at,
                            double cost_multiplier) override {
    seen.push_back({at, skb->high_priority()});
    return static_cast<sim::Duration>(
        static_cast<double>(per_packet_) * cost_multiplier);
  }

  const std::string& name() const override { return name_; }

  struct Seen {
    sim::Time at;
    bool high;
  };
  std::vector<Seen> seen;

 private:
  sim::Duration per_packet_;
  std::string name_ = "recorder";
};

SkbPtr make_skb(bool high) {
  auto skb = alloc_skb();
  skb->priority = high ? 1 : 0;
  return skb;
}

TEST(QueueNapiTest, ProcessesLowQueueWhenHighEmpty) {
  CostModel cost;
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  for (int i = 0; i < 10; ++i) napi.low_queue.push_back(make_skb(false));
  const auto out = napi.poll(64, 0);
  EXPECT_EQ(out.processed, 10);
  EXPECT_FALSE(out.has_more);
  EXPECT_EQ(stage.seen.size(), 10u);
}

TEST(QueueNapiTest, HighQueueTakesPrecedence) {
  CostModel cost;
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  for (int i = 0; i < 5; ++i) napi.low_queue.push_back(make_skb(false));
  for (int i = 0; i < 3; ++i) napi.high_queue.push_back(make_skb(true));
  const auto out = napi.poll(64, 0);
  // Fig. 7: only the high batch is processed in this poll.
  EXPECT_EQ(out.processed, 3);
  EXPECT_TRUE(out.has_more);
  for (const auto& s : stage.seen) EXPECT_TRUE(s.high);
  EXPECT_EQ(napi.low_queue.size(), 5u);
  EXPECT_TRUE(napi.high_queue.empty());
}

TEST(QueueNapiTest, BatchLimitRespected) {
  CostModel cost;
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  for (int i = 0; i < 100; ++i) napi.low_queue.push_back(make_skb(false));
  const auto out = napi.poll(64, 0);
  EXPECT_EQ(out.processed, 64);
  EXPECT_TRUE(out.has_more);
  EXPECT_EQ(napi.low_queue.size(), 36u);
}

TEST(QueueNapiTest, CostIncludesPollOverheadAndPerPacket) {
  CostModel cost;
  cost.napi_poll_overhead = sim::microseconds(8);
  cost.cache_pressure = 0.0;  // exact-cost assertions below
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  for (int i = 0; i < 4; ++i) napi.low_queue.push_back(make_skb(false));
  const auto out = napi.poll(64, 0);
  EXPECT_EQ(out.cost, sim::microseconds(8) + 400);
}

TEST(QueueNapiTest, PacketTimestampsAdvanceWithinBatch) {
  CostModel cost;
  cost.napi_poll_overhead = 1000;
  cost.cache_pressure = 0.0;  // exact-timestamp assertions below
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  for (int i = 0; i < 3; ++i) napi.low_queue.push_back(make_skb(false));
  napi.poll(64, 50'000);
  ASSERT_EQ(stage.seen.size(), 3u);
  EXPECT_EQ(stage.seen[0].at, 51'000);
  EXPECT_EQ(stage.seen[1].at, 51'100);
  EXPECT_EQ(stage.seen[2].at, 51'200);
}

TEST(QueueNapiTest, EmptyPollCostsOnlyOverhead) {
  CostModel cost;
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  const auto out = napi.poll(64, 0);
  EXPECT_EQ(out.processed, 0);
  EXPECT_EQ(out.cost, cost.napi_poll_overhead);
  EXPECT_FALSE(out.has_more);
}

TEST(QueueNapiTest, PendingProbes) {
  CostModel cost;
  RecordingStage stage(100);
  QueueNapi napi("q", stage, cost);
  EXPECT_FALSE(napi.has_pending());
  EXPECT_FALSE(napi.has_high_pending());
  napi.low_queue.push_back(make_skb(false));
  EXPECT_TRUE(napi.has_pending());
  EXPECT_FALSE(napi.has_high_pending());
  napi.high_queue.push_back(make_skb(true));
  EXPECT_TRUE(napi.has_high_pending());
}

}  // namespace
}  // namespace prism::kernel
