// Backlog boundary behavior: enqueue at exactly netdev_max_backlog, the
// at-limit interaction with the reserved high-priority headroom, and
// re-arming of a drained backlog NAPI.
#include <gtest/gtest.h>

#include "fault/fault.h"
#include "kernel/overload.h"
#include "kernel/skb.h"
#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

struct CountingStage final : PacketStage {
  sim::Duration process_one(SkbPtr, sim::Time, double) override {
    ++processed;
    return 0;
  }
  const std::string& name() const override {
    static const std::string n = "count";
    return n;
  }
  int processed = 0;
};

TEST(BacklogBoundaryTest, EnqueueAtExactlyMaxBacklog) {
  fault::FaultLayer faults;
  CostModel cost;
  CountingStage stage;
  QueueNapi backlog("backlog", stage, cost);
  backlog.queue_limit = 8;
  backlog.set_faults(&faults);

  // The enqueue that lands on the last free slot (depth 7 -> 8) is
  // admitted; the queue is full at exactly netdev_max_backlog and the
  // next enqueue drops with reason backlog_full.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(backlog.enqueue(alloc_skb(), /*level=*/0)) << i;
  }
  EXPECT_EQ(backlog.pending_total(), 8u);
  EXPECT_FALSE(backlog.enqueue(alloc_skb(), /*level=*/0));
  EXPECT_EQ(backlog.pending_total(), 8u);
  EXPECT_EQ(backlog.low_dropped(), 1u);
  EXPECT_EQ(faults.drops.total(fault::DropReason::kBacklogFull), 1u);
}

#if PRISM_OVERLOAD_ENABLED
TEST(BacklogBoundaryTest, AtLimitHeadroomAdmitsHighDropsLow) {
  fault::FaultLayer faults;
  OverloadConfig cfg;
  cfg.flow_limit = false;
  cfg.high_headroom = 0.25;  // 2 of 8 reserved
  CostModel cost;
  CountingStage stage;
  QueueNapi backlog("backlog", stage, cost);
  backlog.queue_limit = 8;
  backlog.set_faults(&faults);
  BacklogAdmission admission(cfg, /*max_backlog=*/8);
  backlog.set_admission(&admission);

  // Fill to the low-priority boundary (limit - headroom = 6).
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(backlog.enqueue(alloc_skb(), /*level=*/0)) << i;
  }
  // Exactly at the boundary: level 0 sheds, level 1 is still admitted.
  EXPECT_FALSE(backlog.enqueue(alloc_skb(), /*level=*/0));
  EXPECT_EQ(faults.drops.total(fault::DropReason::kOverloadShed), 1u);
  EXPECT_TRUE(backlog.enqueue(alloc_skb(), /*level=*/1));
  EXPECT_TRUE(backlog.enqueue(alloc_skb(), /*level=*/1));
  EXPECT_EQ(backlog.pending_total(), 8u);
  EXPECT_EQ(admission.shed_count(), 1u);
}
#endif  // PRISM_OVERLOAD_ENABLED

TEST(BacklogBoundaryTest, DrainToEmptyRearmsBacklogNapi) {
  // A backlog napi that was drained to empty (napi_complete) must be
  // pollable again on the next enqueue + schedule, repeatedly.
  Pipeline p(NapiMode::kPrismBatch);
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(p.veth.enqueue(alloc_skb(), /*level=*/0));
    }
    p.engine.napi_schedule(p.veth, false);
    p.sim.run();
    EXPECT_EQ(p.deliveries.size(), static_cast<std::size_t>(5 * round));
    EXPECT_EQ(p.veth.pending_total(), 0u);
    EXPECT_FALSE(p.veth.scheduled);
    EXPECT_TRUE(p.engine.idle());
  }
}

TEST(BacklogBoundaryTest, DrainToEmptyRearmsAfterSqueeze) {
  // Same re-arm guarantee when the drain went through the squeezed path
  // (ksoftirqd deferral) rather than a clean napi_complete.
  Pipeline p(NapiMode::kVanilla);
  p.cost.napi_budget = 32;
  p.feed(p.eth, 200);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 200u);
  ASSERT_TRUE(p.engine.idle());
  p.feed(p.eth, 10);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 210u);
  EXPECT_TRUE(p.engine.idle());
}

}  // namespace
}  // namespace prism::kernel
