// Host-level unit tests: configuration validation, namespace plumbing,
// GRO byte-level correctness, and multi-overlay isolation.
#include "kernel/host.h"

#include <gtest/gtest.h>

#include "harness/testbed.h"

namespace prism::kernel {
namespace {

TEST(HostTest, ConfigValidation) {
  sim::Simulator sim;
  HostConfig bad;
  bad.ip = net::Ipv4Addr::of(10, 0, 0, 1);
  bad.num_cpus = 0;
  EXPECT_THROW(Host(sim, bad), std::invalid_argument);

  HostConfig mismatch;
  mismatch.ip = net::Ipv4Addr::of(10, 0, 0, 1);
  mismatch.nic_queues = 2;
  mismatch.queue_cpu_map = {0};
  EXPECT_THROW(Host(sim, mismatch), std::invalid_argument);

  HostConfig out_of_range;
  out_of_range.ip = net::Ipv4Addr::of(10, 0, 0, 1);
  out_of_range.num_cpus = 2;
  out_of_range.queue_cpu_map = {5};
  EXPECT_THROW(Host(sim, out_of_range), std::invalid_argument);
}

TEST(HostTest, MacDerivedFromIpWhenUnset) {
  sim::Simulator sim;
  HostConfig cfg;
  cfg.ip = net::Ipv4Addr::of(10, 0, 0, 7);
  Host host(sim, cfg);
  EXPECT_NE(host.mac(), net::MacAddr{});
  EXPECT_EQ(host.root_ns().mac(), host.mac());
  EXPECT_FALSE(host.root_ns().is_container());
}

TEST(HostTest, BridgeIsPerVniAndIdempotent) {
  sim::Simulator sim;
  HostConfig cfg;
  cfg.ip = net::Ipv4Addr::of(10, 0, 0, 7);
  Host host(sim, cfg);
  auto& b1 = host.bridge(100);
  auto& b1_again = host.bridge(100);
  auto& b2 = host.bridge(200);
  EXPECT_EQ(&b1, &b1_again);
  EXPECT_NE(&b1, &b2);
  EXPECT_EQ(b1.vni(), 100u);
  EXPECT_EQ(b2.vni(), 200u);
}

TEST(HostTest, MaxUdpPayloadDependsOnPath) {
  sim::Simulator sim;
  HostConfig cfg;
  cfg.ip = net::Ipv4Addr::of(10, 0, 0, 7);
  Host host(sim, cfg);
  auto& container = host.add_container("c", net::Ipv4Addr::of(172, 17, 0, 2),
                                       100);
  // Host path: full MTU minus IP+UDP; overlay: minus VXLAN overhead too.
  EXPECT_EQ(host.max_udp_payload(host.root_ns()), 1500u - 28u);
  EXPECT_EQ(host.max_udp_payload(container),
            1500u - net::kEncapHeadroom - 28u);
}

TEST(HostTest, SeparateOverlaysAreIsolated) {
  // Two overlay networks across the same pair of hosts: containers on
  // different VNIs must not receive each other's traffic even with
  // matching inner addresses.
  harness::Testbed tb;
  auto& a1 = tb.overlay().add_container(tb.client(), "a1",
                                        net::Ipv4Addr::of(172, 17, 0, 2));
  auto& a2 = tb.overlay().add_container(tb.server(), "a2",
                                        net::Ipv4Addr::of(172, 17, 0, 3));
  overlay::OverlayNetwork other(99);
  auto& b1 = other.add_container(tb.client(), "b1",
                                 net::Ipv4Addr::of(172, 17, 0, 2));
  auto& b2 = other.add_container(tb.server(), "b2",
                                 net::Ipv4Addr::of(172, 17, 0, 3));
  (void)b1;

  auto& sock_a = tb.server().udp_bind(a2, 7000);
  auto& sock_b = tb.server().udp_bind(b2, 7000);
  tb.client().udp_send(a1, tb.client().cpu(1), 1000, a2.ip(), 7000,
                       std::vector<std::uint8_t>(32, 0xaa));
  tb.sim().run();
  EXPECT_EQ(sock_a.received(), 1u);
  EXPECT_EQ(sock_b.received(), 0u);
}

TEST(HostTest, GroPreservesEveryByteAcrossMerges) {
  // A multi-segment TSO send whose payload is a strict byte pattern:
  // whatever GRO merges, the receiving stream must match exactly.
  harness::Testbed tb;
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& tx = tb.client().tcp_create(cli, srv.ip(), 40000, 5001);
  auto& rx = tb.server().tcp_create(srv, cli.ip(), 5001, 40000);
  std::vector<std::uint8_t> got;
  rx.on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    got.insert(got.end(), d.begin(), d.end());
  };
  std::vector<std::uint8_t> sent(50'000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
  }
  tx.send(sent, tb.client().cpu(1));
  tb.sim().run();
  EXPECT_EQ(got, sent);
  EXPECT_GT(tb.server().nic_napi(0).gro_merged(), 20u);
}

TEST(HostTest, PriorityCheckChargedOnlyInPrismModes) {
  // The per-packet classification cost must not be charged in vanilla.
  // Use an absurdly large check cost so the comparison is unambiguous
  // against mode-dependent batching noise.
  auto busy_time = [](NapiMode mode) {
    harness::TestbedConfig tc;
    tc.mode = mode;
    tc.cost.priority_check = sim::microseconds(100);
    harness::Testbed tb(tc);
    auto& cli = tb.add_client_container("cli");
    auto& srv = tb.add_server_container("srv");
    tb.server().udp_bind(srv, 7000);
    tb.server().priority_db().add(srv.ip(), 9999);  // non-matching entry
    for (int i = 0; i < 50; ++i) {
      tb.client().udp_send(cli, tb.client().cpu(1), 1000, srv.ip(), 7000,
                           std::vector<std::uint8_t>(32, 0));
    }
    tb.sim().run();
    return tb.server_rx_cpu().accounting().busy_time();
  };
  const auto vanilla = busy_time(NapiMode::kVanilla);
  const auto batch = busy_time(NapiMode::kPrismBatch);
  // 50 packets x 100 us of classification dominates any batching noise.
  EXPECT_GT(batch, vanilla + 50 * sim::microseconds(90));
}

TEST(HostTest, SetModePropagatesToAllCpus) {
  sim::Simulator sim;
  HostConfig cfg;
  cfg.ip = net::Ipv4Addr::of(10, 0, 0, 7);
  cfg.num_cpus = 3;
  Host host(sim, cfg);
  host.set_mode(NapiMode::kPrismSync);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(host.engine(i).mode(), NapiMode::kPrismSync);
  }
}

}  // namespace
}  // namespace prism::kernel
