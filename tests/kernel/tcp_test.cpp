#include "kernel/tcp.h"

#include <gtest/gtest.h>

#include "kernel/cpu.h"
#include "net/packet.h"
#include "overlay/netns.h"
#include "sim/simulator.h"

namespace prism::kernel {
namespace {

// Loopback rig: two endpoints whose egress delivers directly into the
// peer (optionally dropping selected segments), bypassing the full stack
// so the TCP state machine is tested in isolation.
struct Rig {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu_a{sim, cost, 0};
  Cpu cpu_b{sim, cost, 1};
  overlay::Netns ns_a{"a", net::Ipv4Addr::of(10, 0, 0, 1),
                      net::MacAddr::make(1), false};
  overlay::Netns ns_b{"b", net::Ipv4Addr::of(10, 0, 0, 2),
                      net::MacAddr::make(2), false};
  std::unique_ptr<TcpEndpoint> a;
  std::unique_ptr<TcpEndpoint> b;
  int drop_next_data_segments = 0;
  std::uint64_t forwarded = 0;

  explicit Rig(std::size_t mss = 1400) {
    ns_a.add_neighbor(ns_b.ip(), ns_b.mac());
    ns_b.add_neighbor(ns_a.ip(), ns_a.mac());
    TcpEndpoint::Config ca;
    ca.ns = &ns_a;
    ca.local_ip = ns_a.ip();
    ca.remote_ip = ns_b.ip();
    ca.local_port = 1000;
    ca.remote_port = 2000;
    ca.mss = mss;
    ca.rto = sim::milliseconds(5);
    TcpEndpoint::Config cb = ca;
    cb.ns = &ns_b;
    cb.local_ip = ns_b.ip();
    cb.remote_ip = ns_a.ip();
    cb.local_port = 2000;
    cb.remote_port = 1000;
    a = std::make_unique<TcpEndpoint>(sim, cost, ca);
    b = std::make_unique<TcpEndpoint>(sim, cost, cb);
    ns_a.egress = [this](net::PacketBuf f) { deliver(*b, std::move(f)); };
    ns_b.egress = [this](net::PacketBuf f) { deliver(*a, std::move(f)); };
  }

  void deliver(TcpEndpoint& dst, net::PacketBuf frame) {
    const auto parsed = net::parse_frame(frame.bytes());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->tcp.has_value());
    if (!parsed->l4_payload.empty() && drop_next_data_segments > 0) {
      --drop_next_data_segments;
      return;
    }
    ++forwarded;
    // Small propagation so handle runs as its own event.
    std::vector<std::uint8_t> payload(parsed->l4_payload.begin(),
                                      parsed->l4_payload.end());
    const auto header = *parsed->tcp;
    sim.schedule(1000, [this, &dst, header, payload = std::move(payload)] {
      dst.handle_segment(header, payload, sim.now());
    });
  }
};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131);
  }
  return v;
}

TEST(TcpTest, SmallSendDeliversInOrder) {
  Rig rig;
  std::vector<std::uint8_t> got;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    got.insert(got.end(), d.begin(), d.end());
  };
  const auto msg = pattern(100);
  rig.a->send(msg, rig.cpu_a);
  rig.sim.run();
  EXPECT_EQ(got, msg);
  EXPECT_EQ(rig.b->rcv_nxt(), 101u);
}

TEST(TcpTest, LargeSendSegmentsAtMss) {
  Rig rig(/*mss=*/1000);
  std::size_t chunks = 0;
  std::size_t total = 0;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    ++chunks;
    total += d.size();
  };
  rig.a->send(pattern(6500), rig.cpu_a);
  rig.sim.run();
  EXPECT_EQ(total, 6500u);
  EXPECT_EQ(chunks, 7u);  // 6 full + 1 partial segment
}

TEST(TcpTest, AcksAdvanceSndUna) {
  Rig rig;
  rig.b->on_data = [](std::span<const std::uint8_t>, sim::Time) {};
  rig.a->send(pattern(500), rig.cpu_a);
  rig.sim.run();
  EXPECT_EQ(rig.a->snd_una(), rig.a->snd_nxt());
  EXPECT_EQ(rig.a->unacked_bytes(), 0u);
  EXPECT_GT(rig.b->acks_sent(), 0u);
}

TEST(TcpTest, RetransmitsAfterLoss) {
  Rig rig(/*mss=*/1000);
  std::size_t total = 0;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    total += d.size();
  };
  rig.drop_next_data_segments = 2;
  rig.a->send(pattern(5000), rig.cpu_a);
  rig.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(total, 5000u);
  EXPECT_GT(rig.a->retransmissions(), 0u);
  EXPECT_EQ(rig.a->unacked_bytes(), 0u);
}

TEST(TcpTest, OutOfOrderSegmentsReassembled) {
  Rig rig(/*mss=*/100);
  // Deliver segment 2 before segment 1 by dropping 1 and letting the
  // retransmit fill the hole.
  std::vector<std::uint8_t> got;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    got.insert(got.end(), d.begin(), d.end());
  };
  rig.drop_next_data_segments = 1;  // first segment lost; 2..N buffered
  const auto msg = pattern(500);
  rig.a->send(msg, rig.cpu_a);
  rig.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(got, msg);
}

TEST(TcpTest, DuplicateSegmentsIgnored) {
  Rig rig;
  std::size_t total = 0;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    total += d.size();
  };
  const auto msg = pattern(200);
  rig.a->send(msg, rig.cpu_a);
  rig.sim.run();
  // Replay the same segment directly.
  net::TcpHeader dup;
  dup.src_port = 1000;
  dup.dst_port = 2000;
  dup.seq = 1;
  dup.flags = net::TcpFlags::kAck;
  rig.b->handle_segment(dup, msg, rig.sim.now());
  rig.sim.run();
  EXPECT_EQ(total, 200u);  // not double-delivered
}

TEST(TcpTest, BidirectionalTransfer) {
  Rig rig;
  std::vector<std::uint8_t> at_a, at_b;
  rig.a->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    at_a.insert(at_a.end(), d.begin(), d.end());
  };
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    at_b.insert(at_b.end(), d.begin(), d.end());
  };
  rig.a->send(pattern(300), rig.cpu_a);
  rig.b->send(pattern(400), rig.cpu_b);
  rig.sim.run();
  EXPECT_EQ(at_b.size(), 300u);
  EXPECT_EQ(at_a.size(), 400u);
}

TEST(TcpTest, IncomingFlowIsRemoteToLocal) {
  Rig rig;
  const auto flow = rig.a->incoming_flow();
  EXPECT_EQ(flow.src_ip, rig.ns_b.ip());
  EXPECT_EQ(flow.dst_ip, rig.ns_a.ip());
  EXPECT_EQ(flow.src_port, 2000);
  EXPECT_EQ(flow.dst_port, 1000);
  EXPECT_EQ(flow.protocol, net::IpProto::kTcp);
}

TEST(TcpTest, GroTrainAcksOncePerDeliver) {
  Rig rig;
  rig.b->on_data = [](std::span<const std::uint8_t>, sim::Time) {};
  const auto seg = pattern(100);
  // Simulate a 3-segment GRO train: only the final frame requests an ACK.
  net::TcpHeader h;
  h.src_port = 1000;
  h.dst_port = 2000;
  h.flags = net::TcpFlags::kAck;
  h.seq = 1;
  rig.b->handle_segment(h, seg, 0, /*ack_now=*/false);
  h.seq = 101;
  rig.b->handle_segment(h, seg, 0, /*ack_now=*/false);
  h.seq = 201;
  rig.b->handle_segment(h, seg, 0, /*ack_now=*/true);
  rig.sim.run();
  EXPECT_EQ(rig.b->acks_sent(), 1u);
  EXPECT_EQ(rig.b->rcv_nxt(), 301u);
}

TEST(TcpTest, SendChargesCpu) {
  Rig rig;
  rig.b->on_data = [](std::span<const std::uint8_t>, sim::Time) {};
  rig.a->send(pattern(64 * 1024), rig.cpu_a);
  rig.sim.run();
  // syscall + copy(64K) + tx + TSO extras: a couple of microseconds at
  // least, well below a per-segment-cost regime.
  const auto busy = rig.cpu_a.accounting().busy_time();
  EXPECT_GT(busy, sim::microseconds(3));
  EXPECT_LT(busy, sim::microseconds(60));
}

}  // namespace
}  // namespace prism::kernel
