// Tests for Receive Packet Steering at the bridge->veth boundary.
//
// RPS is the scalability mechanism vanilla NAPI's two-list design serves
// (paper §II-A footnote 1, §III-A): it balances *distinct flows* across
// CPUs but cannot help a single flow — the paper's argument for
// streamlining instead.
#include <gtest/gtest.h>

#include "apps/sockperf.h"
#include "harness/testbed.h"

namespace prism::kernel {
namespace {

harness::TestbedConfig rps_config() {
  harness::TestbedConfig tc;
  tc.server_rps_cpus = {0, 1, 2, 3};
  return tc;
}

TEST(RpsTest, ManyFlowsSpreadAcrossCpus) {
  harness::Testbed tb(rps_config());
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sock = tb.server().udp_bind(srv, 7000);
  // 64 distinct flows (source ports).
  for (std::uint16_t p = 0; p < 64; ++p) {
    tb.client().udp_send(cli, tb.client().cpu(1),
                         static_cast<std::uint16_t>(30000 + p), srv.ip(),
                         7000, std::vector<std::uint8_t>(32, 0));
  }
  tb.sim().run();
  EXPECT_EQ(sock.received(), 64u);
  // Steering happened for flows hashed away from CPU 0.
  auto& bridge = tb.server().bridge(tb.overlay().vni());
  EXPECT_GT(bridge.stage(tb.server().default_rx_cpu()).rps_steered(),
            20u);
}

TEST(RpsTest, SingleFlowStaysOnOneCpu) {
  harness::Testbed tb(rps_config());
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sock = tb.server().udp_bind(srv, 7000);
  for (int i = 0; i < 50; ++i) {
    tb.client().udp_send(cli, tb.client().cpu(1), 30000, srv.ip(), 7000,
                         std::vector<std::uint8_t>(32, 0));
  }
  tb.sim().run();
  EXPECT_EQ(sock.received(), 50u);
  auto& bridge = tb.server().bridge(tb.overlay().vni());
  const auto steered =
      bridge.stage(tb.server().default_rx_cpu()).rps_steered();
  // All 50 packets hash identically: either all stay local or all go to
  // the same remote CPU — never spread.
  EXPECT_TRUE(steered == 0 || steered == 50u) << steered;
}

TEST(RpsTest, DeliveryStillCorrectUnderSteering) {
  harness::Testbed tb(rps_config());
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sock = tb.server().udp_bind(srv, 7000);
  for (std::uint16_t p = 0; p < 32; ++p) {
    std::vector<std::uint8_t> payload(32,
                                      static_cast<std::uint8_t>(p));
    tb.client().udp_send(cli, tb.client().cpu(1),
                         static_cast<std::uint16_t>(30000 + p), srv.ip(),
                         7000, std::move(payload));
  }
  tb.sim().run();
  ASSERT_EQ(sock.received(), 32u);
  // Payload integrity across the steered path.
  std::set<std::uint8_t> seen;
  while (auto d = sock.try_recv()) {
    ASSERT_FALSE(d->payload.empty());
    seen.insert(d->payload[0]);
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(RpsTest, PrismSyncHighPriorityBypassesSteering) {
  harness::Testbed tb(rps_config());
  tb.set_mode(NapiMode::kPrismSync);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  auto& sock = tb.server().udp_bind(srv, 7000);
  tb.server().priority_db().add(srv.ip(), 7000);
  for (std::uint16_t p = 0; p < 32; ++p) {
    tb.client().udp_send(cli, tb.client().cpu(1),
                         static_cast<std::uint16_t>(30000 + p), srv.ip(),
                         7000, std::vector<std::uint8_t>(32, 0));
  }
  tb.sim().run();
  EXPECT_EQ(sock.received(), 32u);
  auto& bridge = tb.server().bridge(tb.overlay().vni());
  // Run-to-completion happens before netif_rx: nothing is steered.
  EXPECT_EQ(bridge.stage(tb.server().default_rx_cpu()).rps_steered(),
            0u);
}

TEST(RpsTest, InvalidRpsCpuRejected) {
  sim::Simulator sim;
  HostConfig cfg;
  cfg.ip = net::Ipv4Addr::of(10, 0, 0, 9);
  cfg.num_cpus = 2;
  cfg.rps_cpus = {0, 7};
  Host host(sim, cfg);
  EXPECT_THROW(host.bridge(42), std::invalid_argument);
}

TEST(RpsTest, RaisesMultiFlowCapacity) {
  // Aggregate throughput with many flows: RPS across 4 CPUs must beat
  // the single-core pipeline. (The paper's counterpoint — a single flow
  // gains nothing — is SingleFlowStaysOnOneCpu above.)
  auto delivered = [](bool rps) {
    harness::TestbedConfig tc;
    if (rps) tc.server_rps_cpus = {0, 1, 2, 3};
    harness::Testbed tb(tc);
    auto& cli = tb.add_client_container("cli");
    auto& srv = tb.add_server_container("srv");
    apps::SockperfServer server(tb.sim(), {&tb.server(), &srv,
                                           &tb.server().cpu(1), 11111});
    apps::SockperfClient::Config cc;
    cc.host = &tb.client();
    cc.ns = &cli;
    // 4 sender threads = 4 distinct flows.
    cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2),
               &tb.client().cpu(3), &tb.client().cpu(4)};
    cc.dst_ip = srv.ip();
    cc.dst_port = 11111;
    cc.rate_pps = 600'000;
    cc.burst = 32;
    cc.stop_at = sim::milliseconds(100);
    apps::SockperfClient client(tb.sim(), cc);
    client.start();
    tb.sim().run_until(sim::milliseconds(130));
    return server.received();
  };
  const auto without = delivered(false);
  const auto with = delivered(true);
  EXPECT_GT(with, without + without / 10);
}

}  // namespace
}  // namespace prism::kernel
