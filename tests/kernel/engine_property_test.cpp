// Property tests of the NET_RX engine under randomized traffic:
// conservation, per-level FIFO, preemption bounds, and determinism,
// swept across seeds and modes with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/rng.h"
#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

struct Tagged {
  sim::Time at;
  int level;
  std::uint64_t tag;
};

// Feeds a random mix of levels directly into br's queues over time and
// returns deliveries tagged with insertion order per level.
class RandomTrafficTest
    : public ::testing::TestWithParam<std::tuple<NapiMode, std::uint64_t>> {
};

TEST_P(RandomTrafficTest, ConservationAndPerLevelFifo) {
  const auto [mode, seed] = GetParam();
  Pipeline p(mode);
  sim::Rng rng(seed);

  // Tag skbs via ts.nic_rx (unused by the synthetic pipeline's timing).
  std::map<int, std::uint64_t> next_tag;
  int injected = 0;
  // 40 bursts at random instants with random sizes and levels.
  for (int burst = 0; burst < 40; ++burst) {
    const sim::Time at = rng.uniform_int(0, 2'000'000);
    const int count = static_cast<int>(rng.uniform_int(1, 40));
    const int level = static_cast<int>(rng.uniform_int(0, 3));
    injected += count;
    p.sim.schedule_at(at, [&p, count, level, &next_tag] {
      for (int i = 0; i < count; ++i) {
        auto skb = alloc_skb();
        skb->priority = level;
        skb->ts.nic_rx =
            static_cast<sim::Time>(next_tag[level]++);
        p.veth.enqueue(std::move(skb), level);
      }
      p.engine.napi_schedule(p.veth, level > 0);
    });
  }

  // Collect deliveries with their level reconstructed from the flag and
  // FIFO order asserted per level via timestamps at the sink. The
  // synthetic sink only keeps `high`, so instead assert conservation and
  // completion here, and FIFO below on a single-level run.
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), static_cast<std::size_t>(injected));
  EXPECT_TRUE(p.engine.idle());
  EXPECT_TRUE(p.cpu.idle());
  EXPECT_EQ(p.veth.highest_pending(), -1);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTrafficTest,
    ::testing::Combine(::testing::Values(NapiMode::kVanilla,
                                         NapiMode::kPrismBatch,
                                         NapiMode::kPrismQueues,
                                         NapiMode::kPrismSync),
                       ::testing::Values(1u, 2u, 3u, 42u, 1234u)));

// Paper §III-B2: the worst-case preemption latency for a high-priority
// packet in PRISM-batch is the processing time of ONE batch of ONE stage
// of low-priority packets (plus its own pipeline).
TEST(PreemptionBoundTest, WorstCaseIsOneLowBatchPerStage) {
  Pipeline p(NapiMode::kPrismBatch);
  // Saturate all stages with low-priority traffic.
  p.feed(p.eth, 64 * 8);
  // Inject one high-priority packet exactly when the pipeline is mid-way.
  sim::Time injected_at = 0;
  p.sim.schedule_at(300'000, [&] {
    injected_at = p.sim.now();
    p.feed(p.eth_high, 1);
  });
  p.sim.run();
  sim::Time high_done = -1;
  for (const auto& d : p.deliveries) {
    if (d.high) high_done = d.at;
  }
  ASSERT_NE(high_done, -1);

  const auto& c = p.cost;
  const double full = c.depth_multiplier(64);
  // Bound: the eth batch ahead of it in the ring (stage-1 FIFO,
  // unavoidable), plus at most one full low batch at each later stage
  // (the batch being processed when it arrives), plus its own per-stage
  // work and poll overheads. Generous accounting, but linear in ONE
  // batch — not in the 8 queued batches.
  const auto bound = static_cast<sim::Time>(
      full * static_cast<double>(
                 64 * c.nic_stage_per_packet +
                 2 * 64 * c.bridge_stage_per_packet +
                 2 * 64 * c.backlog_stage_per_packet) +
      static_cast<double>(6 * c.napi_poll_overhead + 4 * c.softirq_entry +
                          c.irq_cost + c.cstate_exit_latency));
  EXPECT_LE(high_done - injected_at, bound);

  // Sanity: vanilla under the same scenario blows well past the bound
  // (it waits for every queued low batch).
  Pipeline v(NapiMode::kVanilla);
  v.feed(v.eth, 64 * 8);
  sim::Time v_injected = 0;
  v.sim.schedule_at(300'000, [&] {
    v_injected = v.sim.now();
    v.feed(v.eth_high, 1);
  });
  v.sim.run();
  sim::Time v_done = -1;
  for (const auto& d : v.deliveries) {
    if (d.high) v_done = d.at;
  }
  ASSERT_NE(v_done, -1);
  EXPECT_GT(v_done - v_injected, high_done - injected_at);
}

// Strict per-level FIFO through the whole pipeline: feed one level, tag
// insertion order, verify delivery order.
class FifoTest : public ::testing::TestWithParam<NapiMode> {};

TEST_P(FifoTest, DeliveriesMonotoneInInsertionOrder) {
  Pipeline p(GetParam());
  p.feed(p.eth_high, 300);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 300u);
  for (std::size_t i = 1; i < p.deliveries.size(); ++i) {
    EXPECT_GE(p.deliveries[i].at, p.deliveries[i - 1].at) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, FifoTest,
                         ::testing::Values(NapiMode::kVanilla,
                                           NapiMode::kPrismBatch,
                                           NapiMode::kPrismQueues,
                                           NapiMode::kPrismSync));

// Starvation check: low-priority traffic still completes while a
// continuous trickle of high-priority packets flows (PRISM prioritizes,
// it does not starve, because high packets drain instantly and the
// engine then serves the low queues).
TEST(StarvationTest, LowPriorityCompletesUnderHighTrickle) {
  Pipeline p(NapiMode::kPrismBatch);
  p.feed(p.eth, 64 * 4);
  for (int i = 0; i < 50; ++i) {
    p.sim.schedule_at(i * 20'000, [&p] { p.feed(p.eth_high, 1); });
  }
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 64u * 4 + 50u);
}

// Determinism across identical runs, all modes.
class DeterminismTest : public ::testing::TestWithParam<NapiMode> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalSchedules) {
  auto run = [mode = GetParam()] {
    Pipeline p(mode);
    p.feed(p.eth, 100);
    p.sim.schedule_at(50'000, [&p] { p.feed(p.eth_high, 10); });
    p.sim.run();
    std::vector<sim::Time> times;
    for (const auto& d : p.deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeterminismTest,
                         ::testing::Values(NapiMode::kVanilla,
                                           NapiMode::kPrismBatch,
                                           NapiMode::kPrismQueues,
                                           NapiMode::kPrismSync));

}  // namespace
}  // namespace prism::kernel
