// Telemetry must be an observer, not a participant: a run with a span
// tracer attached (and counters snapshotted mid-flight) must execute the
// exact same events, poll the same devices in the same order, and deliver
// the same packets as an uninstrumented run. This mirrors the pooling
// determinism guard, A/B-ing on instrumentation instead of allocators.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "telemetry/flow_table.h"
#include "telemetry/latency.h"
#include "telemetry/snapshot.h"
#include "telemetry/span_tracer.h"
#include "trace/poll_trace.h"

namespace prism {
namespace {

struct RunResult {
  std::vector<std::string> poll_order;
  std::uint64_t events = 0;
  std::uint64_t received = 0;
  std::uint64_t replies = 0;
};

RunResult run_scenario(kernel::NapiMode mode, bool instrumented) {
  // Declared before the testbed so it outlives the hosts holding a
  // pointer to it.
  telemetry::SpanTracer tracer;

  harness::TestbedConfig tc;
  tc.mode = mode;
  harness::Testbed tb(tc);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  tb.server().priority_db().add(srv.ip(), 11111);

  if (instrumented) {
    tb.attach_span_tracer(tracer);
  } else {
    // The A/B also covers the latency ledger and flow table: the
    // uninstrumented arm runs with both disabled on both hosts.
    tb.server().latency_ledger().set_enabled(false);
    tb.server().flow_table().set_enabled(false);
    tb.client().latency_ledger().set_enabled(false);
    tb.client().flow_table().set_enabled(false);
  }

  apps::SockperfServer server(
      tb.sim(), {&tb.server(), &srv, &tb.server().cpu(1), 11111});
  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.dst_ip = srv.ip();
  cc.dst_port = 11111;
  cc.rate_pps = 200'000;
  cc.burst = 32;
  cc.reply_every = 4;
  cc.stop_at = sim::milliseconds(4);
  apps::SockperfClient client(tb.sim(), cc);
  client.start();

  trace::PollTrace trace;
  tb.sim().schedule_at(sim::milliseconds(1), [&] {
    tb.server().set_poll_trace(tb.server().default_rx_cpu(), &trace);
    if (instrumented) {
      // Mid-flight snapshots must be pure reads.
      (void)tb.server().softnet_stat();
      (void)telemetry::registry_json(tb.server().metrics());
      (void)telemetry::latency_json(tb.server().latency_ledger());
      (void)telemetry::flow_table_json(tb.server().flow_table());
    }
  });
  tb.sim().run_until(sim::milliseconds(5));
  tb.server().set_poll_trace(tb.server().default_rx_cpu(), nullptr);

#if PRISM_TELEMETRY_ENABLED
  std::uint64_t attributed = 0;
  for (int level = 0; level < telemetry::kNumLatencyClasses; ++level) {
    attributed += tb.server()
                      .latency_ledger()
                      .histogram(telemetry::LatencyStage::kEndToEnd, level)
                      .count();
  }
  if (instrumented) {
    EXPECT_GT(tracer.recorded(), 0u);
    EXPECT_GT(attributed, 0u);
    EXPECT_GT(tb.server().flow_table().size(), 0u);
  } else {
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(attributed, 0u);
    EXPECT_EQ(tb.server().flow_table().size(), 0u);
  }
#else
  EXPECT_EQ(tracer.recorded(), 0u);  // compiled out: nothing records
#endif

  RunResult r;
  r.poll_order = trace.device_order();
  r.events = tb.sim().events_executed();
  r.received = server.received();
  r.replies = client.replies();
  return r;
}

class TelemetryDeterminismTest
    : public ::testing::TestWithParam<kernel::NapiMode> {};

TEST_P(TelemetryDeterminismTest, TracingDoesNotChangeSimulationBehaviour) {
  const RunResult with_tracer = run_scenario(GetParam(), true);
  const RunResult without_tracer = run_scenario(GetParam(), false);

  ASSERT_FALSE(with_tracer.poll_order.empty());
  EXPECT_EQ(with_tracer.poll_order, without_tracer.poll_order);
  EXPECT_EQ(with_tracer.events, without_tracer.events);
  EXPECT_EQ(with_tracer.received, without_tracer.received);
  EXPECT_EQ(with_tracer.replies, without_tracer.replies);
  EXPECT_GT(with_tracer.received, 0u);
  EXPECT_GT(with_tracer.replies, 0u);
}

TEST_P(TelemetryDeterminismTest, RepeatedInstrumentedRunsAreIdentical) {
  const RunResult a = run_scenario(GetParam(), true);
  const RunResult b = run_scenario(GetParam(), true);
  EXPECT_EQ(a.poll_order, b.poll_order);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.replies, b.replies);
}

INSTANTIATE_TEST_SUITE_P(Modes, TelemetryDeterminismTest,
                         ::testing::Values(kernel::NapiMode::kVanilla,
                                           kernel::NapiMode::kPrismBatch,
                                           kernel::NapiMode::kPrismSync),
                         [](const auto& info) {
                           switch (info.param) {
                             case kernel::NapiMode::kVanilla:
                               return "Vanilla";
                             case kernel::NapiMode::kPrismBatch:
                               return "PrismBatch";
                             default:
                               return "PrismSync";
                           }
                         });

}  // namespace
}  // namespace prism
