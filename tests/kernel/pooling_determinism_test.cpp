// Recycling must be invisible to the simulation: a run with the skb and
// buffer pools enabled must execute the exact same events, poll the same
// devices in the same order, and deliver the same packets as a run with
// the pools disabled (plain new/delete). This is the fig06-style A/B
// guard for the zero-allocation hot path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "kernel/skb_pool.h"
#include "sim/pool.h"
#include "trace/poll_trace.h"

namespace prism {
namespace {

struct RunResult {
  std::vector<std::string> poll_order;
  std::uint64_t events = 0;
  std::uint64_t received = 0;
  std::uint64_t replies = 0;
};

RunResult run_scenario(kernel::NapiMode mode, bool pools_enabled) {
  kernel::SkbPool::instance().set_enabled(pools_enabled);
  sim::BufferPool::instance().set_enabled(pools_enabled);

  harness::TestbedConfig tc;
  tc.mode = mode;
  harness::Testbed tb(tc);
  auto& cli = tb.add_client_container("cli");
  auto& srv = tb.add_server_container("srv");
  tb.server().priority_db().add(srv.ip(), 11111);

  apps::SockperfServer server(
      tb.sim(), {&tb.server(), &srv, &tb.server().cpu(1), 11111});
  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.dst_ip = srv.ip();
  cc.dst_port = 11111;
  cc.rate_pps = 200'000;
  cc.burst = 32;
  cc.reply_every = 4;
  cc.stop_at = sim::milliseconds(4);
  apps::SockperfClient client(tb.sim(), cc);
  client.start();

  trace::PollTrace trace;
  tb.sim().schedule_at(sim::milliseconds(1), [&] {
    tb.server().set_poll_trace(tb.server().default_rx_cpu(), &trace);
  });
  tb.sim().run_until(sim::milliseconds(5));
  tb.server().set_poll_trace(tb.server().default_rx_cpu(), nullptr);

  RunResult r;
  r.poll_order = trace.device_order();
  r.events = tb.sim().events_executed();
  r.received = server.received();
  r.replies = client.replies();

  // Leave the global pools enabled for whatever test runs next.
  kernel::SkbPool::instance().set_enabled(true);
  sim::BufferPool::instance().set_enabled(true);
  return r;
}

class PoolingDeterminismTest
    : public ::testing::TestWithParam<kernel::NapiMode> {};

TEST_P(PoolingDeterminismTest, PoolsDoNotChangeSimulationBehaviour) {
  const RunResult with_pools = run_scenario(GetParam(), true);
  const RunResult without_pools = run_scenario(GetParam(), false);

  ASSERT_FALSE(with_pools.poll_order.empty());
  EXPECT_EQ(with_pools.poll_order, without_pools.poll_order);
  EXPECT_EQ(with_pools.events, without_pools.events);
  EXPECT_EQ(with_pools.received, without_pools.received);
  EXPECT_EQ(with_pools.replies, without_pools.replies);
  EXPECT_GT(with_pools.received, 0u);
  EXPECT_GT(with_pools.replies, 0u);
}

TEST_P(PoolingDeterminismTest, RepeatedPooledRunsAreIdentical) {
  const RunResult a = run_scenario(GetParam(), true);
  const RunResult b = run_scenario(GetParam(), true);
  EXPECT_EQ(a.poll_order, b.poll_order);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.replies, b.replies);
}

INSTANTIATE_TEST_SUITE_P(Modes, PoolingDeterminismTest,
                         ::testing::Values(kernel::NapiMode::kVanilla,
                                           kernel::NapiMode::kPrismBatch,
                                           kernel::NapiMode::kPrismSync),
                         [](const auto& info) {
                           switch (info.param) {
                             case kernel::NapiMode::kVanilla:
                               return "Vanilla";
                             case kernel::NapiMode::kPrismBatch:
                               return "PrismBatch";
                             default:
                               return "PrismSync";
                           }
                         });

}  // namespace
}  // namespace prism
