// Container lifecycle: teardown/restart/migrate state machine, socket
// tombstones, counted dead-netns and unroutable drops, unlearned-FDB
// misses, flow-cache invalidation under teardown/delivery interleavings
// (the ASan target: a cached Netns* of a torn-down container must be
// observed dead, never dereferenced dangling), and app-level retry
// resilience in sockperf/memaslap.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/memaslap.h"
#include "apps/memcached.h"
#include "apps/sockperf.h"
#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/socket.h"
#include "overlay/netns.h"

namespace prism::kernel {
namespace {

using fault::DropReason;

std::vector<std::uint8_t> payload(std::size_t n = 32) {
  return std::vector<std::uint8_t>(n, 0xab);
}

TEST(ChurnLifecycleTest, StopDrainsThenDiesAndClosesSockets) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  UdpSocket& sock = tb.server().udp_bind(s1, 7000);

  tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                       payload());
  tb.sim().run();
  EXPECT_EQ(sock.received(), 1u);

  const sim::Duration drain = sim::microseconds(200);
  tb.sim().schedule_at(tb.sim().now() + 10,
                       [&] { tb.overlay().stop_container(s1, drain); });
  tb.sim().run_until(tb.sim().now() + 100);
  EXPECT_EQ(s1.state(), overlay::NetnsState::kDraining);
  EXPECT_FALSE(s1.accepting());
  EXPECT_FALSE(sock.closed());  // queued datagrams still drainable

  tb.sim().run();
  EXPECT_EQ(s1.state(), overlay::NetnsState::kDead);
  // The socket is a tombstone: closed, pointer still valid, count frozen.
  EXPECT_TRUE(sock.closed());
  EXPECT_EQ(sock.received(), 1u);
  EXPECT_FALSE(sock.try_recv().has_value());
}

TEST(ChurnLifecycleTest, InFlightPacketLandsAsCountedDeadNetnsDrop) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  UdpSocket& sock = tb.server().udp_bind(s1, 7000);

  // Stop the destination while the packet is still on the wire/pipeline.
  tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                       payload());
  tb.sim().schedule_at(tb.sim().now() + 600,  // past wire propagation
                       [&] { tb.overlay().stop_container(s1); });
  tb.sim().run();

  // Depending on where teardown catches the packet it lands as a
  // dead-netns drop (past the bridge) or an FDB-miss drop (the MAC was
  // already unlearned) — either way it is counted, never lost.
  const auto& drops = tb.server().faults().drops;
  EXPECT_EQ(sock.received() + drops.total(DropReason::kDeadNetns) +
                drops.total(DropReason::kFdbMiss),
            1u)
      << "packet neither delivered nor ledgered";
  EXPECT_TRUE(s1.dead());
}

TEST(ChurnLifecycleTest, RestartKeepsIdentityAndResumesDelivery) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  tb.server().udp_bind(s1, 7000);
  const auto ip = s1.ip();
  const auto mac = s1.mac();
  const auto vni = s1.vni();

  tb.overlay().stop_container(s1);
  tb.sim().run();
  ASSERT_TRUE(s1.dead());

  overlay::Netns& fresh = tb.overlay().restart_container(s1);
  EXPECT_NE(&fresh, &s1);
  EXPECT_EQ(fresh.ip(), ip);
  EXPECT_EQ(fresh.mac(), mac);
  EXPECT_EQ(fresh.vni(), vni);
  EXPECT_TRUE(fresh.accepting());
  // Peers still resolve the reused identity.
  EXPECT_EQ(c1.neighbor(ip), mac);

  UdpSocket& sock2 = tb.server().udp_bind(fresh, 7000);
  tb.client().udp_send(c1, tb.client().cpu(1), 100, ip, 7000, payload());
  tb.sim().run();
  EXPECT_EQ(sock2.received(), 1u);
}

TEST(ChurnLifecycleTest, MigrationMovesDeliveryToTheOtherHost) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  UdpSocket& old_sock = tb.server().udp_bind(s1, 7000);
  const auto ip = s1.ip();

  tb.client().udp_send(c1, tb.client().cpu(1), 100, ip, 7000, payload());
  tb.sim().run();
  ASSERT_EQ(old_sock.received(), 1u);

  overlay::Netns& fresh =
      tb.overlay().migrate_container(s1, tb.client());
  EXPECT_EQ(&tb.overlay().host_of(fresh), &tb.client());
  UdpSocket& new_sock = tb.client().udp_bind(fresh, 7000);

  tb.client().udp_send(c1, tb.client().cpu(1), 100, ip, 7000, payload());
  tb.sim().run();
  EXPECT_EQ(new_sock.received(), 1u);
  // The old incarnation's tombstone never moved.
  EXPECT_TRUE(old_sock.closed());
  EXPECT_EQ(old_sock.received(), 1u);
}

TEST(ChurnLifecycleTest, UnlearnedFdbMissDistinctFromNeverLearned) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  tb.server().udp_bind(s1, 7000);
  auto& fdb = tb.server().fdb(tb.overlay().vni());
  ASSERT_EQ(fdb.unlearned_misses(), 0u);

  // Keep the client's route to the server VTEP alive but unlearn the MAC
  // on the server bridge: frames for it are now unlearned misses.
  tb.overlay().stop_container(s1);
  tb.sim().run();
  tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                       payload());
  tb.sim().run();
  EXPECT_EQ(fdb.unlearned_misses(), 1u);

  // A never-learned MAC is a plain miss, not an unlearned one.
  const auto ghost_ip = net::Ipv4Addr::of(172, 17, 0, 200);
  const auto ghost_mac = net::MacAddr::make(0xdead);
  c1.add_neighbor(ghost_ip, ghost_mac);
  tb.client().add_overlay_route(tb.overlay().vni(), ghost_mac,
                                tb.server().ip(), tb.server().mac());
  tb.client().udp_send(c1, tb.client().cpu(1), 100, ghost_ip, 7000,
                       payload());
  tb.sim().run();
  EXPECT_EQ(fdb.unlearned_misses(), 1u);
  EXPECT_GE(fdb.misses(), 2u);
}

TEST(ChurnLifecycleTest, MissingNeighborIsACountedUnroutableDrop) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  bool sent_cb = false;
  // No neighbour for this IP: the send degrades to a counted drop (no
  // throw) and the completion still fires so app pacing stays sane.
  tb.client().udp_send(c1, tb.client().cpu(1), 100,
                       net::Ipv4Addr::of(10, 99, 99, 99), 7000, payload(),
                       [&] { sent_cb = true; });
  tb.sim().run();
  EXPECT_EQ(tb.client().faults().drops.total(DropReason::kUnroutable), 1u);
  EXPECT_TRUE(sent_cb);
}

TEST(ChurnLifecycleTest, SendFromTornDownNamespaceIsDeadNetnsDrop) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  tb.server().udp_bind(s1, 7000);
  tb.overlay().stop_container(c1);
  tb.sim().run();

  bool sent_cb = false;
  tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                       payload(), [&] { sent_cb = true; });
  tb.sim().run();
  EXPECT_EQ(tb.client().faults().drops.total(DropReason::kDeadNetns), 1u);
  EXPECT_TRUE(sent_cb);
}

// The ASan interleaving sweep: warm the overlay flow cache so stage 1
// holds a cached Netns*, then tear the container down at every offset
// across the packet's pipeline transit. Whatever the interleaving —
// teardown before classification, between classification and delivery,
// or after delivery — the packet must end as a delivery or a counted
// drop, never a dangling dereference (ASan proves the latter).
TEST(ChurnLifecycleTest, FlowCacheTeardownInterleavingsNeverDangle) {
  for (sim::Duration offset = 0; offset <= sim::microseconds(20);
       offset += sim::nanoseconds(500)) {
    harness::TestbedConfig cfg;
    cfg.flow_cache = true;
    harness::Testbed tb(cfg);
    auto& c1 = tb.add_client_container("c1");
    auto& s1 = tb.add_server_container("s1");
    UdpSocket& sock = tb.server().udp_bind(s1, 7000);

    // Warm: first packet populates the server's flow-cache entry with a
    // pointer to s1.
    tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                         payload());
    tb.sim().run();
    ASSERT_EQ(sock.received(), 1u);

    const sim::Time t0 = tb.sim().now();
    tb.client().udp_send(c1, tb.client().cpu(1), 100, s1.ip(), 7000,
                         payload());
    tb.sim().schedule_at(t0 + offset,
                         [&] { tb.overlay().stop_container(s1); });
    tb.sim().run();

    const auto& drops = tb.server().faults().drops;
    const std::uint64_t ledgered = drops.total(DropReason::kDeadNetns) +
                                   drops.total(DropReason::kFdbMiss);
    EXPECT_EQ(sock.received() + ledgered, 2u)
        << "offset " << offset << ": second packet unaccounted";
    EXPECT_TRUE(sock.closed());
  }
}

TEST(ChurnLifecycleTest, SockperfRetriesRecoverAcrossRestart) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");

  auto server = std::make_unique<apps::SockperfServer>(
      tb.server_sim(), apps::SockperfServer::Config{
                           &tb.server(), &s1, &tb.server().cpu(1), 7000});

  apps::SockperfClient::Config ccfg;
  ccfg.host = &tb.client();
  ccfg.ns = &c1;
  ccfg.cpus = {&tb.client().cpu(1)};
  ccfg.dst_ip = s1.ip();
  ccfg.dst_port = 7000;
  ccfg.rate_pps = 5000;
  ccfg.reply_every = 1;
  ccfg.reply_timeout = sim::milliseconds(1);
  ccfg.max_retries = 5;
  ccfg.max_backoff = sim::milliseconds(4);
  ccfg.stop_at = sim::milliseconds(30);
  apps::SockperfClient client(tb.client_sim(), ccfg);
  client.start();

  // Outage: stop at 10 ms, restart (new incarnation + new app) at 13 ms.
  tb.sim().schedule_at(sim::milliseconds(10),
                       [&] { tb.overlay().stop_container(s1); });
  tb.sim().schedule_at(sim::milliseconds(13), [&] {
    overlay::Netns& fresh = tb.overlay().restart_container(s1);
    server = std::make_unique<apps::SockperfServer>(
        tb.server_sim(),
        apps::SockperfServer::Config{&tb.server(), &fresh,
                                     &tb.server().cpu(1), 7000});
  });
  tb.sim().run_until(sim::milliseconds(60));

  EXPECT_GT(client.retransmits(), 0u) << "outage never forced a retry";
  EXPECT_EQ(client.probe_timeouts(), 0u)
      << "probes abandoned despite the restart landing within the budget";
  EXPECT_EQ(client.replies(), client.sent());
}

TEST(ChurnLifecycleTest, SockperfAbandonsAfterMaxRetriesWithoutRestart) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  apps::SockperfServer server(
      tb.server_sim(), apps::SockperfServer::Config{
                           &tb.server(), &s1, &tb.server().cpu(1), 7000});

  apps::SockperfClient::Config ccfg;
  ccfg.host = &tb.client();
  ccfg.ns = &c1;
  ccfg.cpus = {&tb.client().cpu(1)};
  ccfg.dst_ip = s1.ip();
  ccfg.dst_port = 7000;
  ccfg.rate_pps = 2000;
  ccfg.reply_every = 1;
  ccfg.reply_timeout = sim::milliseconds(1);
  ccfg.max_retries = 2;
  ccfg.stop_at = sim::milliseconds(20);
  apps::SockperfClient client(tb.client_sim(), ccfg);
  client.start();

  tb.sim().schedule_at(sim::milliseconds(5),
                       [&] { tb.overlay().stop_container(s1); });
  tb.sim().run_until(sim::milliseconds(40));

  EXPECT_GT(client.retransmits(), 0u);
  EXPECT_GT(client.probe_timeouts(), 0u)
      << "a permanently-dead server must exhaust retries";
  EXPECT_LT(client.replies(), client.sent());
}

TEST(ChurnLifecycleTest, MemaslapRetriesSameRequestAcrossOutage) {
  harness::Testbed tb;
  auto& c1 = tb.add_client_container("c1");
  auto& s1 = tb.add_server_container("s1");
  auto server = std::make_unique<apps::MemcachedServer>(
      tb.server_sim(),
      apps::MemcachedServer::Config{&tb.server(), &s1,
                                    &tb.server().cpu(1)});

  apps::MemaslapClient::Config mcfg;
  mcfg.host = &tb.client();
  mcfg.ns = &c1;
  mcfg.cpu = &tb.client().cpu(1);
  mcfg.server_ip = s1.ip();
  mcfg.concurrency = 4;
  mcfg.request_timeout = sim::milliseconds(2);
  mcfg.max_retries = 4;
  mcfg.retry_backoff = sim::milliseconds(1);
  mcfg.stop_at = sim::milliseconds(40);
  apps::MemaslapClient client(tb.client_sim(), mcfg);
  client.start();

  tb.sim().schedule_at(sim::milliseconds(10),
                       [&] { tb.overlay().stop_container(s1); });
  tb.sim().schedule_at(sim::milliseconds(14), [&] {
    overlay::Netns& fresh = tb.overlay().restart_container(s1);
    server = std::make_unique<apps::MemcachedServer>(
        tb.server_sim(),
        apps::MemcachedServer::Config{&tb.server(), &fresh,
                                      &tb.server().cpu(1)});
  });
  tb.sim().run_until(sim::milliseconds(80));

  EXPECT_GT(client.retries(), 0u) << "outage never forced a retry";
  EXPECT_GT(client.completed(), 0u);
  // Retried requests complete under their original seq, so every issued
  // request either completed, timed out past its retry budget, or is
  // still in flight (bounded by the concurrency window).
  const std::uint64_t issued = client.gets() + client.sets();
  EXPECT_LE(client.completed() + client.timeouts(), issued);
  EXPECT_LE(issued - client.completed() - client.timeouts(),
            static_cast<std::uint64_t>(mcfg.concurrency));
}

}  // namespace
}  // namespace prism::kernel
