// Test adapter over the library's synthetic pipeline: the classic
// three-stage overlay shape ({eth, br, veth}) with convenient member
// names for the engine tests.
#pragma once

#include "harness/synthetic_pipeline.h"

namespace prism::kernel::testing {

using Delivery = harness::SyntheticDelivery;
using SourceNapi = harness::SyntheticSource;

struct Pipeline : harness::SyntheticPipeline {
  explicit Pipeline(NapiMode mode, CostModel cost_model = CostModel{})
      : harness::SyntheticPipeline(mode, /*stages=*/3, cost_model),
        br(stage_napi(0)),
        veth(stage_napi(1)),
        eth(*source),
        eth_high(*source_high) {}

  QueueNapi& br;
  QueueNapi& veth;
  SourceNapi& eth;
  SourceNapi& eth_high;
};

}  // namespace prism::kernel::testing
