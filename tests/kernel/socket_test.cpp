#include "kernel/socket.h"

#include <gtest/gtest.h>

#include "kernel/cost_model.h"
#include "kernel/tcp.h"
#include "overlay/netns.h"
#include "sim/simulator.h"

namespace prism::kernel {
namespace {

Datagram make_datagram(int n) {
  Datagram d;
  d.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  d.src_port = 1000;
  d.payload = std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0x11);
  return d;
}

TEST(UdpSocketTest, EnqueueHappensAtScheduledInstant) {
  sim::Simulator sim;
  UdpSocket sock(sim, 80);
  sock.enqueue(make_datagram(4), 1000);
  EXPECT_FALSE(sock.has_data());  // not yet: instant is in the future
  sim.run();
  EXPECT_EQ(sim.now(), 1000);
  ASSERT_TRUE(sock.has_data());
  EXPECT_EQ(sock.try_recv()->enqueued_at, 0);  // field set by caller
}

TEST(UdpSocketTest, FifoOrder) {
  sim::Simulator sim;
  UdpSocket sock(sim, 80);
  sock.enqueue(make_datagram(1), 100);
  sock.enqueue(make_datagram(2), 50);
  sim.run();
  EXPECT_EQ(sock.try_recv()->payload.size(), 2u);  // earlier instant first
  EXPECT_EQ(sock.try_recv()->payload.size(), 1u);
}

TEST(UdpSocketTest, OnReadableFiresPerEnqueue) {
  sim::Simulator sim;
  UdpSocket sock(sim, 80);
  int notified = 0;
  sock.set_on_readable([&] { ++notified; });
  sock.enqueue(make_datagram(1), 10);
  sock.enqueue(make_datagram(2), 20);
  sim.run();
  EXPECT_EQ(notified, 2);
}

TEST(UdpSocketTest, CapacityOverflowDrops) {
  sim::Simulator sim;
  UdpSocket sock(sim, 80, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) sock.enqueue(make_datagram(i), 10);
  sim.run();
  EXPECT_EQ(sock.queue_depth(), 2u);
  EXPECT_EQ(sock.received(), 2u);
  EXPECT_EQ(sock.dropped(), 3u);
}

TEST(UdpSocketTest, TryRecvOnEmptyIsNull) {
  sim::Simulator sim;
  UdpSocket sock(sim, 80);
  EXPECT_FALSE(sock.try_recv().has_value());
}

TEST(SocketTableTest, BindLookupUnbind) {
  sim::Simulator sim;
  SocketTable table;
  UdpSocket a(sim, 80), b(sim, 81);
  table.bind_udp(a);
  table.bind_udp(b);
  EXPECT_EQ(table.lookup_udp(80), &a);
  EXPECT_EQ(table.lookup_udp(81), &b);
  EXPECT_EQ(table.lookup_udp(82), nullptr);
  table.unbind_udp(80);
  EXPECT_EQ(table.lookup_udp(80), nullptr);
}

TEST(SocketTableTest, DuplicateBindThrows) {
  sim::Simulator sim;
  SocketTable table;
  UdpSocket a(sim, 80), b(sim, 80);
  table.bind_udp(a);
  EXPECT_THROW(table.bind_udp(b), std::logic_error);
}

TEST(SocketTableTest, TcpRegistrationRoundTrip) {
  sim::Simulator sim;
  CostModel cost;
  overlay::Netns ns("ns", net::Ipv4Addr::of(10, 0, 0, 2),
                    net::MacAddr::make(1), false);
  TcpEndpoint::Config cfg;
  cfg.ns = &ns;
  cfg.local_ip = ns.ip();
  cfg.remote_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  cfg.local_port = 80;
  cfg.remote_port = 40000;
  TcpEndpoint ep(sim, cost, cfg);

  SocketTable table;
  table.register_tcp(ep.incoming_flow(), ep);
  EXPECT_EQ(table.lookup_tcp(ep.incoming_flow()), &ep);
  EXPECT_THROW(table.register_tcp(ep.incoming_flow(), ep),
               std::logic_error);
  table.unregister_tcp(ep.incoming_flow());
  EXPECT_EQ(table.lookup_tcp(ep.incoming_flow()), nullptr);
}

}  // namespace
}  // namespace prism::kernel
