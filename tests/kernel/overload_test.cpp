// Overload-control tests: the flow limiter, priority-aware backlog
// admission, the governor state machine + livelock watchdog, NIC
// moderation stretch, the ksoftirqd deferral, and the netdev_budget_usecs
// time budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/fault.h"
#include "harness/testbed.h"
#include "kernel/overload.h"
#include "kernel/skb.h"
#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

// ---------------------------------------------------------- FlowLimiter

TEST(FlowLimiterTest, DormantBelowHalfBacklog) {
  FlowLimiter fl(/*num_buckets=*/64, /*history_len=*/128);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fl.should_drop(/*flow_hash=*/7, /*qlen=*/63,
                                /*max_backlog=*/128));
  }
  EXPECT_EQ(fl.count(), 0u);
}

TEST(FlowLimiterTest, ShedsDominantFlowOnly) {
  FlowLimiter fl(/*num_buckets=*/64, /*history_len=*/128);
  // 3:1 mix of a hot flow and a mouse flow on a congested queue: the hot
  // flow exceeds half the history and gets shed, the mouse never does.
  std::uint64_t hot_drops = 0;
  std::uint64_t mouse_drops = 0;
  for (int i = 0; i < 400; ++i) {
    const bool mouse = i % 4 == 3;
    const bool dropped =
        fl.should_drop(mouse ? 11 : 3, /*qlen=*/100, /*max_backlog=*/128);
    (mouse ? mouse_drops : hot_drops) += dropped ? 1 : 0;
  }
  EXPECT_GT(hot_drops, 0u);
  EXPECT_EQ(mouse_drops, 0u);
  EXPECT_EQ(fl.count(), hot_drops);
}

TEST(FlowLimiterTest, HistoryEvictionForgetsColdFlows) {
  FlowLimiter fl(/*num_buckets=*/64, /*history_len=*/128);
  // Saturate with flow A, then switch entirely to flow B: once A's
  // history entries are evicted, B is judged fresh and A's dominance is
  // forgotten — B only starts being shed after it dominates the history
  // itself.
  for (int i = 0; i < 128; ++i) {
    fl.should_drop(3, /*qlen=*/100, /*max_backlog=*/128);
  }
  const std::uint64_t after_a = fl.count();
  bool b_dropped_early = false;
  for (int i = 0; i < 60; ++i) {
    b_dropped_early |= fl.should_drop(5, /*qlen=*/100, /*max_backlog=*/128);
  }
  EXPECT_FALSE(b_dropped_early);
  EXPECT_EQ(fl.count(), after_a);
}

// ---------------------------------------------- admission at the backlog

#if PRISM_OVERLOAD_ENABLED
TEST(BacklogAdmissionTest, FlowLimitDropsAttributedToLedger) {
  fault::FaultLayer faults;
  OverloadConfig cfg;
  cfg.high_headroom = 0.0;
  CostModel cost;
  sim::Simulator sim;
  // A bare backlog napi: nothing drains it, so enqueues walk the depth
  // through the limiter's active region. All skbs hash to one flow (no
  // parse, empty payload), i.e. a perfectly dominant flood.
  struct NullStage final : PacketStage {
    sim::Duration process_one(SkbPtr, sim::Time, double) override {
      return 0;
    }
    const std::string& name() const override {
      static const std::string n = "null";
      return n;
    }
  } stage;
  QueueNapi backlog("veth", stage, cost);
  backlog.queue_limit = 64;
  backlog.set_faults(&faults);
  BacklogAdmission admission(cfg, /*max_backlog=*/64);
  backlog.set_admission(&admission);

  int admitted = 0;
  for (int i = 0; i < 70; ++i) {
    admitted += backlog.enqueue(alloc_skb(), /*level=*/0) ? 1 : 0;
  }
  // 64 fill the queue. The history (64 deep, recording from depth 32)
  // convicts the flow once it holds more than half the history: the
  // attempt at exactly-full depth is shed by the (zero) headroom check,
  // every one after it is a flow_limit shed.
  EXPECT_EQ(admitted, 64);
  EXPECT_EQ(admission.flow_limit_count(), 5u);
  EXPECT_EQ(faults.drops.total(fault::DropReason::kFlowLimit), 5u);
  EXPECT_EQ(faults.drops.total(fault::DropReason::kOverloadShed), 1u);
  EXPECT_EQ(backlog.low_dropped(), 6u);
  (void)sim;
}

TEST(BacklogAdmissionTest, HeadroomReservedForHighPriority) {
  fault::FaultLayer faults;
  OverloadConfig cfg;
  cfg.flow_limit = false;
  cfg.high_headroom = 0.10;  // 10 of 100 reserved
  CostModel cost;
  struct NullStage final : PacketStage {
    sim::Duration process_one(SkbPtr, sim::Time, double) override {
      return 0;
    }
    const std::string& name() const override {
      static const std::string n = "null";
      return n;
    }
  } stage;
  QueueNapi backlog("veth", stage, cost);
  backlog.queue_limit = 100;
  backlog.set_faults(&faults);
  BacklogAdmission admission(cfg, /*max_backlog=*/100);
  backlog.set_admission(&admission);

  int low_admitted = 0;
  for (int i = 0; i < 100; ++i) {
    low_admitted += backlog.enqueue(alloc_skb(), /*level=*/0) ? 1 : 0;
  }
  // Level 0 stops at the headroom boundary...
  EXPECT_EQ(low_admitted, 90);
  EXPECT_EQ(admission.shed_count(), 10u);
  EXPECT_EQ(faults.drops.total(fault::DropReason::kOverloadShed), 10u);
  // ...while level 1 is admitted into the reserved region.
  int high_admitted = 0;
  for (int i = 0; i < 10; ++i) {
    high_admitted += backlog.enqueue(alloc_skb(), /*level=*/1) ? 1 : 0;
  }
  EXPECT_EQ(high_admitted, 10);
  EXPECT_EQ(backlog.pending_total(), 100u);
}
#endif  // PRISM_OVERLOAD_ENABLED

// ------------------------------------------------------------- governor

OverloadConfig quick_governor_config() {
  OverloadConfig cfg;
  cfg.squeeze_enter_streak = 3;
  cfg.residency_enter_streak = 4;
  cfg.livelock_polls = 5;
  return cfg;
}

TEST(OverloadGovernorTest, DepthWatermarkHysteresis) {
  sim::Simulator sim;
  std::size_t depth = 0;
  int stretch_calls = 0;
  int restore_calls = 0;
  OverloadGovernor gov(sim, quick_governor_config(), /*max_backlog=*/100);
  gov.set_depth_probe([&] { return depth; });
  gov.set_moderation_hook([&](bool on) { (on ? stretch_calls
                                             : restore_calls)++; });

  gov.note_enqueue(/*depth=*/74);  // below enter watermark (75)
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  gov.note_enqueue(/*depth=*/75);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  EXPECT_EQ(gov.entries(), 1u);
  EXPECT_EQ(stretch_calls, 1);

  // Still above the exit watermark: stays overloaded.
  depth = 40;
  gov.note_softirq_end(/*squeezed=*/false, /*residual=*/0);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  // At/below the exit watermark (25) with clear streaks: recovers.
  depth = 20;
  gov.note_softirq_end(/*squeezed=*/false, /*residual=*/0);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  EXPECT_EQ(gov.exits(), 1u);
  EXPECT_EQ(restore_calls, 1);

  ASSERT_EQ(gov.transitions().size(), 2u);
  EXPECT_STREQ(gov.transitions()[0].cause, "depth");
  EXPECT_STREQ(gov.transitions()[1].cause, "recovered");
}

TEST(OverloadGovernorTest, SqueezeStreakEntersAndResets) {
  sim::Simulator sim;
  OverloadGovernor gov(sim, quick_governor_config(), /*max_backlog=*/100);
  gov.set_depth_probe([] { return std::size_t{0}; });
  // A broken streak does not accumulate.
  gov.note_softirq_end(true, 1);
  gov.note_softirq_end(true, 1);
  gov.note_softirq_end(false, 0);
  gov.note_softirq_end(true, 1);
  gov.note_softirq_end(true, 1);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  gov.note_softirq_end(true, 1);  // third consecutive squeeze
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  ASSERT_FALSE(gov.transitions().empty());
  EXPECT_STREQ(gov.transitions().back().cause, "squeeze");
}

TEST(OverloadGovernorTest, ResidencyStreakEnters) {
  sim::Simulator sim;
  OverloadGovernor gov(sim, quick_governor_config(), /*max_backlog=*/100);
  gov.set_depth_probe([] { return std::size_t{0}; });
  for (int i = 0; i < 4; ++i) gov.note_softirq_end(false, /*residual=*/2);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  EXPECT_STREQ(gov.transitions().back().cause, "residency");
}

TEST(OverloadGovernorTest, LivelockWatchdogFiresAndRecovers) {
  sim::Simulator sim;
  std::size_t depth = 90;
  OverloadGovernor gov(sim, quick_governor_config(), /*max_backlog=*/100);
  gov.set_depth_probe([&] { return depth; });
  gov.note_enqueue(depth);
  ASSERT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);

  // Polls with zero deliveries while IRQs keep arriving: watchdog fires
  // at the configured poll count.
  gov.note_irq();
  for (int i = 0; i < 4; ++i) gov.note_poll();
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  gov.note_poll();
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kLivelocked);
  EXPECT_EQ(gov.livelocks(), 1u);

  // A delivery demotes livelock; with the backlog drained it recovers
  // all the way to normal.
  depth = 0;
  gov.note_delivery();
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  const auto& log = gov.transitions();
  ASSERT_GE(log.size(), 4u);
  EXPECT_STREQ(log[log.size() - 2].cause, "delivery_resumed");
  EXPECT_STREQ(log.back().cause, "recovered");
}

TEST(OverloadGovernorTest, NoLivelockWithoutInputPressure) {
  sim::Simulator sim;
  OverloadGovernor gov(sim, quick_governor_config(), /*max_backlog=*/100);
  gov.set_depth_probe([] { return std::size_t{90}; });
  gov.note_enqueue(90);
  ASSERT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  // Zero deliveries but also zero IRQs/arrivals since the last one:
  // the receiver is idle-starved, not livelocked.
  for (int i = 0; i < 50; ++i) gov.note_poll();
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kOverloaded);
  EXPECT_EQ(gov.livelocks(), 0u);
}

TEST(OverloadGovernorTest, TransitionLogBounded) {
  sim::Simulator sim;
  auto cfg = quick_governor_config();
  cfg.max_transitions = 3;
  std::size_t depth = 0;
  OverloadGovernor gov(sim, cfg, /*max_backlog=*/100);
  gov.set_depth_probe([&] { return depth; });
  for (int i = 0; i < 5; ++i) {
    depth = 90;
    gov.note_enqueue(depth);
    depth = 0;
    gov.note_softirq_end(false, 0);
  }
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  EXPECT_EQ(gov.transitions().size(), 3u);
  EXPECT_EQ(gov.transitions_dropped(), 7u);
  EXPECT_EQ(gov.entries(), 5u);
  EXPECT_EQ(gov.exits(), 5u);
}

TEST(OverloadGovernorTest, DisabledGovernorNeverTransitions) {
  sim::Simulator sim;
  auto cfg = quick_governor_config();
  cfg.enabled = false;
  OverloadGovernor gov(sim, cfg, /*max_backlog=*/100);
  gov.note_enqueue(99);
  for (int i = 0; i < 10; ++i) gov.note_softirq_end(true, 5);
  EXPECT_EQ(gov.state(), OverloadGovernor::State::kNormal);
  EXPECT_TRUE(gov.transitions().empty());
}

// ------------------------------------------- host wiring and moderation

#if PRISM_OVERLOAD_ENABLED
TEST(OverloadHostTest, ModerationStretchAppliedAndRestored) {
  harness::TestbedConfig cfg;
  cfg.coalesce = nic::CoalesceConfig{sim::microseconds(50), 64};
  harness::Testbed tb(cfg);
  auto& server = tb.server();
  ASSERT_EQ(server.nic().queue(0).coalesce().usecs, sim::microseconds(50));

  // Drive the governor directly (the soak drives it with real load).
  server.governor().note_enqueue(/*depth=*/1000);
  EXPECT_EQ(server.governor().state(),
            OverloadGovernor::State::kOverloaded);
  EXPECT_EQ(server.nic().queue(0).coalesce().usecs, sim::microseconds(200));

  server.governor().note_softirq_end(false, 0);  // backlogs are empty
  EXPECT_EQ(server.governor().state(), OverloadGovernor::State::kNormal);
  EXPECT_EQ(server.nic().queue(0).coalesce().usecs, sim::microseconds(50));
}

TEST(OverloadHostTest, ProcFileRendersStateAndTransitions) {
  harness::Testbed tb;
  auto& server = tb.server();
  std::string json = server.proc().read("prism/overload");
  EXPECT_NE(json.find("\"state\":\"normal\""), std::string::npos);
  EXPECT_NE(json.find("\"compiled_in\":true"), std::string::npos);

  server.governor().note_enqueue(1000);
  json = server.proc().read("prism/overload");
  EXPECT_NE(json.find("\"state\":\"overloaded\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"depth\""), std::string::npos);
}
#endif  // PRISM_OVERLOAD_ENABLED

// --------------------------------------------------- ksoftirqd deferral

#if PRISM_OVERLOAD_ENABLED
TEST(KsoftirqdTest, SqueezedRemainderRunsInKsoftirqd) {
  Pipeline p(NapiMode::kVanilla);
  p.cost.napi_budget = 128;
  p.feed(*p.source, 64 * 6);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 384u);
  EXPECT_GT(p.engine.ksoftirqd_deferrals(), 0u);
  EXPECT_GT(p.engine.ksoftirqd_runs(), 0u);
  EXPECT_TRUE(p.engine.idle());
}

TEST(KsoftirqdTest, TaskWorkNotStarvedDuringOverload) {
  // The starvation-avoidance semantics: with the deferral, a userspace
  // task scheduled while the receive path is saturated gets CPU time
  // interleaved with ksoftirqd; with the deferral disabled (the old
  // immediate re-raise), softirq chunks monopolize the CPU until the
  // whole burst drains.
  const auto run = [](bool deferral) {
    Pipeline p(NapiMode::kPrismBatch);
    p.cost.napi_budget = 128;
    p.engine.set_ksoftirqd(deferral);
    sim::Time task_done = 0;
    p.sim.schedule(sim::microseconds(50), [&] {
      p.cpu.run_task(sim::microseconds(5), [&] { task_done = p.sim.now(); });
    });
    p.feed(*p.source, 64 * 20);
    p.sim.run();
    EXPECT_EQ(p.deliveries.size(), 64u * 20u);
    EXPECT_GT(task_done, 0);
    const sim::Time last_delivery =
        std::max_element(p.deliveries.begin(), p.deliveries.end(),
                         [](const auto& a, const auto& b) {
                           return a.at < b.at;
                         })
            ->at;
    return std::pair<sim::Time, sim::Time>(task_done, last_delivery);
  };
  const auto [task_with, last_with] = run(true);
  const auto [task_without, last_without] = run(false);
  // Without deferral the task waits for the full drain; with it, the
  // task completes while packets are still being processed.
  EXPECT_GE(task_without, last_without);
  EXPECT_LT(task_with, last_with);
  EXPECT_LT(task_with, task_without);
}

TEST(KsoftirqdTest, IrqRaisedSoftirqTakesOverFromKsoftirqd) {
  // New work arriving while ksoftirqd is draining is serviced by the
  // ksoftirqd pass (napi_schedule sees in_softirq_) or by a fresh
  // softirq once it finishes — either way everything is delivered and
  // the engine returns to idle.
  Pipeline p(NapiMode::kPrismBatch);
  p.cost.napi_budget = 64;
  p.feed(*p.source, 64 * 4);
  p.sim.schedule(sim::microseconds(300), [&] { p.feed(*p.source, 64 * 4); });
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 64u * 8u);
  EXPECT_GT(p.engine.ksoftirqd_runs(), 0u);
  EXPECT_TRUE(p.engine.idle());
}
#endif  // PRISM_OVERLOAD_ENABLED

// ------------------------------------------------ netdev_budget_usecs

TEST(TimeBudgetTest, TimeBudgetSqueezeCountedSeparately) {
  Pipeline p(NapiMode::kPrismBatch);
  p.cost.napi_budget = 1 << 20;  // packet budget effectively infinite
  p.cost.netdev_budget_usecs = sim::microseconds(20);
  p.feed(*p.source, 64 * 6);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 384u);
  EXPECT_GT(p.engine.time_budget_squeezes(), 0u);
  EXPECT_EQ(p.engine.budget_squeezes(), 0u);
  EXPECT_EQ(p.engine.time_squeezes(), p.engine.time_budget_squeezes() +
                                          p.engine.budget_squeezes());
}

TEST(TimeBudgetTest, PacketBudgetSqueezeCountedSeparately) {
  Pipeline p(NapiMode::kPrismBatch);
  p.cost.napi_budget = 64;  // squeezes on packets long before 2 ms
  p.feed(*p.source, 64 * 6);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 384u);
  EXPECT_GT(p.engine.budget_squeezes(), 0u);
  EXPECT_EQ(p.engine.time_budget_squeezes(), 0u);
  EXPECT_EQ(p.engine.time_squeezes(), p.engine.budget_squeezes());
}

TEST(TimeBudgetTest, DefaultTimeBudgetNeverFiresAtDefaultPacketBudget) {
  // 300 packets cost ~720 us < 2 ms: the kernel-default combination
  // squeezes on packets, never on time — existing time_squeeze semantics
  // are unchanged.
  Pipeline p(NapiMode::kVanilla);
  p.feed(*p.source, 64 * 10);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 640u);
  EXPECT_EQ(p.engine.time_budget_squeezes(), 0u);
}

}  // namespace
}  // namespace prism::kernel
