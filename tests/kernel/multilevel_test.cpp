// Tests for the multiple-priority-level extension (the paper's §VII-3
// future work): per-device queues per level, strict highest-first
// polling, and level-aware classification.
#include <gtest/gtest.h>

#include "prism/priority_db.h"
#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Pipeline;

SkbPtr make_skb(int level) {
  auto skb = alloc_skb();
  skb->priority = level;
  return skb;
}

TEST(MultiLevelTest, EnqueueClampsLevels) {
  Pipeline p(NapiMode::kPrismBatch);
  EXPECT_TRUE(p.br.enqueue(make_skb(-5), -5));
  EXPECT_TRUE(p.br.enqueue(make_skb(99), 99));
  EXPECT_EQ(p.br.queues[0].size(), 1u);
  EXPECT_EQ(p.br.queues[kNumPriorityLevels - 1].size(), 1u);
}

TEST(MultiLevelTest, HighestPendingProbes) {
  Pipeline p(NapiMode::kPrismBatch);
  EXPECT_EQ(p.br.highest_pending(), -1);
  p.br.enqueue(make_skb(0), 0);
  EXPECT_EQ(p.br.highest_pending(), 0);
  EXPECT_FALSE(p.br.has_high_pending());
  p.br.enqueue(make_skb(2), 2);
  EXPECT_EQ(p.br.highest_pending(), 2);
  EXPECT_TRUE(p.br.has_high_pending());
}

TEST(MultiLevelTest, PollDrainsStrictlyByLevel) {
  // Mix three levels in one device; deliveries must come out in level
  // order (2 before 1 before 0) because each poll selects the highest
  // non-empty queue.
  Pipeline p(NapiMode::kPrismBatch);
  for (int i = 0; i < 10; ++i) {
    p.veth.enqueue(make_skb(0), 0);
    p.veth.enqueue(make_skb(1), 1);
    p.veth.enqueue(make_skb(2), 2);
  }
  p.engine.napi_schedule(p.veth, true);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 30u);
  // SyntheticDelivery only keeps the high flag; reconstruct level order
  // from it: the 20 high (levels 1 and 2) must all precede the 10 lows.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.deliveries[i].high) << i;
  }
  for (std::size_t i = 20; i < 30; ++i) {
    EXPECT_FALSE(p.deliveries[i].high) << i;
  }
}

TEST(MultiLevelTest, PerLevelFifoPreserved) {
  Pipeline p(NapiMode::kPrismBatch);
  std::vector<sim::Time> stamps;
  for (int i = 0; i < 5; ++i) {
    auto skb = make_skb(2);
    skb->ts.nic_rx = i;  // tag with insertion order
    p.veth.enqueue(std::move(skb), 2);
  }
  p.engine.napi_schedule(p.veth, true);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 5u);
  for (std::size_t i = 1; i < p.deliveries.size(); ++i) {
    EXPECT_GE(p.deliveries[i].at, p.deliveries[i - 1].at);
  }
}

TEST(MultiLevelTest, PriorityDbStoresLevels) {
  prism::PriorityDb db;
  const auto ip = net::Ipv4Addr::of(172, 17, 0, 2);
  db.add(ip, 80, 2);
  db.add(ip, 81);  // default level 1
  db.add(ip, 82, 99);  // clamped to the max level
  EXPECT_EQ(db.level_of(ip, 80), 2);
  EXPECT_EQ(db.level_of(ip, 81), 1);
  EXPECT_EQ(db.level_of(ip, 82), kNumPriorityLevels - 1);
  EXPECT_EQ(db.level_of(ip, 83), 0);
}

TEST(MultiLevelTest, ClassifyReturnsHighestMatch) {
  prism::PriorityDb db;
  const auto src = net::Ipv4Addr::of(10, 0, 0, 1);
  const auto dst = net::Ipv4Addr::of(10, 0, 0, 2);
  db.add(src, 1000, 1);
  db.add(dst, 2000, 3);
  net::FrameSpec spec;
  spec.src_mac = net::MacAddr::make(1);
  spec.dst_mac = net::MacAddr::make(2);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = 1000;
  spec.dst_port = 2000;
  const std::uint8_t payload[8] = {};
  const auto frame = net::build_udp_frame(spec, payload);
  EXPECT_EQ(db.classify(frame.bytes()), 3);
}

TEST(MultiLevelTest, SyncRunsAllElevatedLevelsInline) {
  Pipeline p(NapiMode::kPrismSync);
  const auto c1 = p.transition.transit(make_skb(1), 0, p.veth);
  const auto c2 = p.transition.transit(make_skb(3), 0, p.veth);
  EXPECT_GT(c1, 0);
  EXPECT_GT(c2, 0);
  EXPECT_EQ(p.deliveries.size(), 2u);
  EXPECT_TRUE(p.veth.low_queue.empty());
}

}  // namespace
}  // namespace prism::kernel
