#include "kernel/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace prism::kernel {
namespace {

CostModel fast_wakeup_model() {
  CostModel c;
  c.cstate_entry_threshold = sim::microseconds(20);
  c.cstate_exit_latency = sim::microseconds(9);
  return c;
}

TEST(CpuTest, StartsIdle) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 3);
  EXPECT_TRUE(cpu.idle());
  EXPECT_EQ(cpu.id(), 3);
}

TEST(CpuTest, TaskRunsForItsCost) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  sim::Time done_at = -1;
  cpu.run_task(sim::microseconds(5), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, sim::microseconds(5));
  EXPECT_EQ(cpu.accounting().busy_time(), sim::microseconds(5));
  EXPECT_TRUE(cpu.idle());
}

TEST(CpuTest, TasksRunSequentially) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  std::vector<sim::Time> done;
  cpu.run_task(100, [&] { done.push_back(sim.now()); });
  cpu.run_task(200, [&] { done.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done, (std::vector<sim::Time>{100, 300}));
}

TEST(CpuTest, SoftirqPreemptsQueuedTasks) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  std::vector<int> order;
  // Occupy the CPU so both arrivals queue behind a running chunk.
  cpu.run_task(100, [] {});
  cpu.run_task(50, [&] { order.push_back(1); });  // task, queued first
  cpu.run_softirq([&] {
    order.push_back(2);  // softirq, queued second but must run first
    return sim::Duration{10};
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(CpuTest, SoftirqChainedFromSoftirqRunsBeforeTasks) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  std::vector<int> order;
  cpu.run_task(10, [&] { order.push_back(99); });
  cpu.run_softirq([&] {
    order.push_back(1);
    cpu.run_softirq([&] {
      order.push_back(2);
      return sim::Duration{10};
    });
    return sim::Duration{10};
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(CpuTest, BusyUntilTracksChunkEnd) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  cpu.run_softirq([&] {
    EXPECT_EQ(cpu.busy_until(), 0);  // set after the chunk body returns
    return sim::microseconds(7);
  });
  sim.run();
  EXPECT_EQ(cpu.busy_until(), sim::microseconds(7));
}

TEST(CpuTest, CStateExitPaidAfterLongIdle) {
  sim::Simulator sim;
  const CostModel cost = fast_wakeup_model();
  Cpu cpu(sim, cost, 0);
  sim::Time done_at = -1;
  // First work after construction: the core was never busy, so no exit
  // penalty bookkeeping exists yet — run something, go idle long, run
  // again.
  cpu.run_task(1000, [] {});
  sim.run();
  // Now idle starting at t=1000. Schedule work after a long idle gap.
  sim.schedule_at(1000 + sim::microseconds(100), [&] {
    cpu.run_task(500, [&] { done_at = sim.now(); });
  });
  sim.run();
  const sim::Time start = 1000 + sim::microseconds(100);
  EXPECT_EQ(done_at, start + cost.cstate_exit_latency + 500);
  EXPECT_EQ(cpu.cstate_exits(), 1u);
}

TEST(CpuTest, NoCStateExitAfterShortIdle) {
  sim::Simulator sim;
  const CostModel cost = fast_wakeup_model();
  Cpu cpu(sim, cost, 0);
  sim::Time done_at = -1;
  cpu.run_task(1000, [] {});
  sim.run();
  const sim::Time gap = cost.cstate_entry_threshold / 2;
  sim.schedule_at(1000 + gap, [&] {
    cpu.run_task(500, [&] { done_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(done_at, 1000 + gap + 500);
  EXPECT_EQ(cpu.cstate_exits(), 0u);
}

TEST(CpuTest, CStateStallNotCountedAsBusy) {
  sim::Simulator sim;
  const CostModel cost = fast_wakeup_model();
  Cpu cpu(sim, cost, 0);
  cpu.run_task(1000, [] {});
  sim.run();
  sim.schedule_at(sim::milliseconds(5), [&] { cpu.run_task(500, [] {}); });
  sim.run();
  EXPECT_EQ(cpu.accounting().busy_time(), 1500);
}

TEST(CpuTest, RunTaskFnUsesReturnedCost) {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  cpu.run_task_fn([&] { return sim::Duration{321}; });
  sim.run();
  EXPECT_EQ(cpu.accounting().busy_time(), 321);
  EXPECT_EQ(cpu.busy_until(), 321);
}

TEST(CpuTest, HeavySoftirqStarvesTasks) {
  // Paper §VII-4: softirq has strictly higher priority; as long as packet
  // work exists, application chunks wait.
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu(sim, cost, 0);
  sim::Time task_done = -1;
  int rounds = 0;
  std::function<sim::Duration()> storm = [&]() -> sim::Duration {
    if (++rounds < 10) cpu.run_softirq(storm);
    return sim::microseconds(10);
  };
  cpu.run_softirq(storm);
  cpu.run_task(1, [&] { task_done = sim.now(); });
  sim.run();
  EXPECT_EQ(task_done, sim::microseconds(100) + 1);
}

}  // namespace
}  // namespace prism::kernel
