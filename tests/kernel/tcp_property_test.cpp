// Property tests for the TCP endpoint: stream integrity under randomized
// loss patterns and message sizes, swept with parameterized gtest.
#include <gtest/gtest.h>

#include "kernel/cpu.h"
#include "kernel/tcp.h"
#include "net/packet.h"
#include "overlay/netns.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace prism::kernel {
namespace {

// Lossy loopback: each data segment is dropped with probability p.
struct LossyRig {
  sim::Simulator sim;
  CostModel cost;
  Cpu cpu{sim, cost, 0};
  overlay::Netns ns_a{"a", net::Ipv4Addr::of(10, 0, 0, 1),
                      net::MacAddr::make(1), false};
  overlay::Netns ns_b{"b", net::Ipv4Addr::of(10, 0, 0, 2),
                      net::MacAddr::make(2), false};
  std::unique_ptr<TcpEndpoint> a;
  std::unique_ptr<TcpEndpoint> b;
  sim::Rng rng;
  double loss;
  std::uint64_t dropped = 0;

  LossyRig(std::uint64_t seed, double loss_probability)
      : rng(seed), loss(loss_probability) {
    ns_a.add_neighbor(ns_b.ip(), ns_b.mac());
    ns_b.add_neighbor(ns_a.ip(), ns_a.mac());
    TcpEndpoint::Config ca;
    ca.ns = &ns_a;
    ca.local_ip = ns_a.ip();
    ca.remote_ip = ns_b.ip();
    ca.local_port = 1;
    ca.remote_port = 2;
    ca.mss = 1000;
    ca.rto = sim::milliseconds(3);
    TcpEndpoint::Config cb = ca;
    cb.ns = &ns_b;
    cb.local_ip = ns_b.ip();
    cb.remote_ip = ns_a.ip();
    cb.local_port = 2;
    cb.remote_port = 1;
    a = std::make_unique<TcpEndpoint>(sim, cost, ca);
    b = std::make_unique<TcpEndpoint>(sim, cost, cb);
    ns_a.egress = [this](net::PacketBuf f) { deliver(*b, std::move(f)); };
    ns_b.egress = [this](net::PacketBuf f) { deliver(*a, std::move(f)); };
  }

  void deliver(TcpEndpoint& dst, net::PacketBuf frame) {
    const auto parsed = net::parse_frame(frame.bytes());
    if (!parsed || !parsed->tcp) return;
    // Drop data segments randomly; never drop pure ACKs (losing every
    // ACK forever would only stall the clock, not the correctness).
    if (!parsed->l4_payload.empty() && rng.uniform() < loss) {
      ++dropped;
      return;
    }
    std::vector<std::uint8_t> payload(parsed->l4_payload.begin(),
                                      parsed->l4_payload.end());
    const auto header = *parsed->tcp;
    sim.schedule(500, [&dst, header, payload = std::move(payload),
                       this] {
      dst.handle_segment(header, payload, sim.now());
    });
  }
};

class TcpLossProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {
};

TEST_P(TcpLossProperty, StreamSurvivesRandomLoss) {
  const auto [seed, loss] = GetParam();
  LossyRig rig(seed, loss);
  sim::Rng data_rng(seed * 7919);

  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> got;
  rig.b->on_data = [&](std::span<const std::uint8_t> d, sim::Time) {
    got.insert(got.end(), d.begin(), d.end());
  };

  // Several randomly sized messages, spaced out.
  sim::Time at = 0;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> msg(
        static_cast<std::size_t>(data_rng.uniform_int(100, 8000)));
    for (auto& byte : msg) {
      byte = static_cast<std::uint8_t>(data_rng.next());
    }
    sent.insert(sent.end(), msg.begin(), msg.end());
    rig.sim.schedule_at(at, [&rig, msg = std::move(msg)] {
      rig.a->send(msg, rig.cpu);
    });
    at += sim::milliseconds(1);
  }

  rig.sim.run_until(sim::seconds(2));
  // Exact byte-for-byte stream reassembly despite the losses.
  EXPECT_EQ(got, sent);
  EXPECT_EQ(rig.a->unacked_bytes(), 0u);
  // At light loss a short run may see zero drops by chance; only heavy
  // loss guarantees the recovery path actually exercised.
  if (loss >= 0.2) {
    EXPECT_GT(rig.dropped, 0u);
    EXPECT_GT(rig.a->retransmissions(), 0u);
  }
  if (rig.dropped > 0) {
    EXPECT_GT(rig.a->retransmissions(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoss, TcpLossProperty,
    ::testing::Combine(::testing::Values(1u, 7u, 99u),
                       ::testing::Values(0.0, 0.05, 0.2, 0.4)));

}  // namespace
}  // namespace prism::kernel
