// Tests of the NET_RX engine against the paper's published behaviour:
// the exact device polling orders of Fig. 6, batch-level preemption, and
// the latency ordering of the three modes.
#include "kernel/net_rx_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_pipeline.h"

namespace prism::kernel {
namespace {

using testing::Delivery;
using testing::Pipeline;

std::vector<std::string> prefix(const std::vector<std::string>& v,
                                std::size_t n) {
  return {v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(n, v.size()))};
}

// ------------------------------------------------------------- Fig. 6a

TEST(NetRxEngineTest, VanillaDeviceOrderMatchesFig6a) {
  Pipeline p(NapiMode::kVanilla);
  p.feed(p.eth, 64 * 5);
  p.sim.run();
  // Paper Fig. 6a: eth, br, eth, veth, br, eth, ... — the third stage
  // (veth) of batch N is delayed behind the first stage (eth) of batch
  // N+1.
  const auto order = p.trace.device_order();
  ASSERT_GE(order.size(), 9u);
  EXPECT_EQ(prefix(order, 9),
            (std::vector<std::string>{"eth", "br", "eth", "veth", "br",
                                      "eth", "veth", "br", "eth"}));
}

TEST(NetRxEngineTest, VanillaSteadyStatePollListMatchesFig6a) {
  Pipeline p(NapiMode::kVanilla);
  p.feed(p.eth, 64 * 10);
  p.sim.run();
  const auto& rec = p.trace.records();
  ASSERT_GE(rec.size(), 6u);
  // Rows 4-6 of Fig. 6a (steady state): veth -> [br, eth],
  // br -> [eth, veth], eth -> [veth, br, eth].
  EXPECT_EQ(rec[3].device, "veth");
  EXPECT_EQ(rec[3].poll_list, (std::vector<std::string>{"br", "eth"}));
  EXPECT_EQ(rec[4].device, "br");
  EXPECT_EQ(rec[4].poll_list, (std::vector<std::string>{"eth", "veth"}));
  EXPECT_EQ(rec[5].device, "eth");
  EXPECT_EQ(rec[5].poll_list,
            (std::vector<std::string>{"veth", "br", "eth"}));
}

// ------------------------------------------------------------- Fig. 6b

TEST(NetRxEngineTest, PrismBatchHighPriorityOrderMatchesFig6b) {
  Pipeline p(NapiMode::kPrismBatch);
  p.feed(p.eth_high, 64 * 5);
  p.sim.run();
  // Paper Fig. 6b: eth, br, veth, eth, br, veth, ... — each batch is
  // fully processed through all stages before the next batch is fetched.
  const auto order = p.trace.device_order();
  ASSERT_GE(order.size(), 9u);
  EXPECT_EQ(prefix(order, 9),
            (std::vector<std::string>{"eth", "br", "veth", "eth", "br",
                                      "veth", "eth", "br", "veth"}));
}

TEST(NetRxEngineTest, PrismBatchPollListMatchesFig6b) {
  Pipeline p(NapiMode::kPrismBatch);
  p.feed(p.eth_high, 64 * 5);
  p.sim.run();
  const auto& rec = p.trace.records();
  ASSERT_GE(rec.size(), 4u);
  // Fig. 6b rows 1-4: eth -> [br, eth], br -> [veth, eth], veth -> [eth],
  // eth -> [br, eth].
  EXPECT_EQ(rec[0].device, "eth");
  EXPECT_EQ(rec[0].poll_list, (std::vector<std::string>{"br", "eth"}));
  EXPECT_EQ(rec[1].device, "br");
  EXPECT_EQ(rec[1].poll_list, (std::vector<std::string>{"veth", "eth"}));
  EXPECT_EQ(rec[2].device, "veth");
  EXPECT_EQ(rec[2].poll_list, (std::vector<std::string>{"eth"}));
  EXPECT_EQ(rec[3].device, "eth");
  EXPECT_EQ(rec[3].poll_list, (std::vector<std::string>{"br", "eth"}));
}

TEST(NetRxEngineTest, PrismLowPriorityBehavesLikeVanillaOrder) {
  // With only low-priority traffic, PRISM's single list degenerates to
  // tail-enqueue everywhere: the interleaved order persists — PRISM's
  // streamlining is driven by the priority, not the list structure alone.
  Pipeline p(NapiMode::kPrismBatch);
  p.feed(p.eth, 64 * 5);
  p.sim.run();
  const auto order = p.trace.device_order();
  ASSERT_GE(order.size(), 6u);
  EXPECT_EQ(prefix(order, 6),
            (std::vector<std::string>{"eth", "br", "eth", "veth", "br",
                                      "eth"}));
}

// -------------------------------------------------------- PRISM-sync

TEST(NetRxEngineTest, PrismSyncOnlyPollsTheSourceDevice) {
  Pipeline p(NapiMode::kPrismSync);
  p.feed(p.eth_high, 64 * 3);
  p.sim.run();
  for (const auto& dev : p.trace.device_order()) {
    EXPECT_EQ(dev, "eth");
  }
  EXPECT_EQ(p.deliveries.size(), 64u * 3);
}

TEST(NetRxEngineTest, PrismSyncQueuesStayEmpty) {
  Pipeline p(NapiMode::kPrismSync);
  p.feed(p.eth_high, 64);
  p.sim.run();
  EXPECT_TRUE(p.br.low_queue.empty());
  EXPECT_TRUE(p.br.high_queue.empty());
  EXPECT_TRUE(p.veth.low_queue.empty());
  EXPECT_TRUE(p.veth.high_queue.empty());
}

// ------------------------------------------------------ conservation

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<NapiMode, bool, int>> {};

TEST_P(ConservationTest, EveryPacketIsDeliveredExactlyOnce) {
  const auto [mode, high, n] = GetParam();
  Pipeline p(mode);
  p.feed(high ? p.eth_high : p.eth, n);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(p.engine.idle());
  EXPECT_TRUE(p.cpu.idle());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConservationTest,
    ::testing::Combine(::testing::Values(NapiMode::kVanilla,
                                         NapiMode::kPrismBatch,
                                         NapiMode::kPrismSync),
                       ::testing::Bool(),
                       ::testing::Values(1, 63, 64, 65, 300, 1000)));

// ---------------------------------------------------- latency ordering

sim::Time first_delivery(NapiMode mode, bool high, int n) {
  Pipeline p(mode);
  p.feed(high ? p.eth_high : p.eth, n);
  p.sim.run();
  sim::Time first = p.deliveries.front().at;
  for (const auto& d : p.deliveries) first = std::min(first, d.at);
  return first;
}

sim::Time last_delivery(NapiMode mode, bool high, int n) {
  Pipeline p(mode);
  p.feed(high ? p.eth_high : p.eth, n);
  p.sim.run();
  sim::Time last = 0;
  for (const auto& d : p.deliveries) last = std::max(last, d.at);
  return last;
}

TEST(NetRxEngineTest, FirstPacketLatencySyncBeatsBatchBeatsVanilla) {
  // Paper §III-B / Fig. 5: sync delivers the first packet after one
  // run-to-completion pass; batch after three single-batch polls; vanilla
  // after the interleaved schedule.
  const int n = 64 * 3;
  const auto sync = first_delivery(NapiMode::kPrismSync, true, n);
  const auto batch = first_delivery(NapiMode::kPrismBatch, true, n);
  const auto vanilla = first_delivery(NapiMode::kVanilla, true, n);
  EXPECT_LT(sync, batch);
  EXPECT_LT(batch, vanilla);
}

TEST(NetRxEngineTest, ThroughputVanillaCompletesBeforeSync) {
  // Sync mode gives up batch amortization: total completion time for a
  // large burst is longer than vanilla's (Fig. 8's throughput gap).
  const int n = 64 * 10;
  const auto vanilla = last_delivery(NapiMode::kVanilla, true, n);
  const auto sync = last_delivery(NapiMode::kPrismSync, true, n);
  EXPECT_LT(vanilla, sync);
}

// ------------------------------------------------- batch preemption

TEST(NetRxEngineTest, HighPriorityPreemptsQueuedLowPriorityBatches) {
  // Pre-load the bridge with low-priority packets, then deliver one
  // high-priority packet through it: the high packet must complete before
  // the queued lows that were there first (head-of-line unblocking).
  Pipeline p(NapiMode::kPrismBatch);
  // 128 low-priority packets directly in br's low queue.
  for (int i = 0; i < 128; ++i) {
    auto skb = alloc_skb();
    skb->priority = 0;
    p.br.low_queue.push_back(std::move(skb));
  }
  p.engine.napi_schedule(p.br, false);
  // One high-priority packet via the source.
  p.feed(p.eth_high, 1);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 129u);
  // Find the delivery time of the high packet and of the last low packet
  // of the *first* batch.
  sim::Time high_at = -1;
  std::vector<sim::Time> lows;
  for (const auto& d : p.deliveries) {
    if (d.high) {
      high_at = d.at;
    } else {
      lows.push_back(d.at);
    }
  }
  ASSERT_NE(high_at, -1);
  std::sort(lows.begin(), lows.end());
  // The high-priority packet is not blocked behind both low batches: at
  // least one full batch (64 packets) of lows completes after it.
  EXPECT_LT(high_at, lows[static_cast<std::size_t>(lows.size()) - 64]);
}

TEST(NetRxEngineTest, VanillaHighPrioritySuffersHeadOfLineBlocking) {
  // Same scenario in vanilla mode: the "high" packet (priority ignored)
  // waits behind every earlier low packet.
  Pipeline p(NapiMode::kVanilla);
  for (int i = 0; i < 128; ++i) {
    auto skb = alloc_skb();
    p.br.low_queue.push_back(std::move(skb));
  }
  p.engine.napi_schedule(p.br, false);
  p.feed(p.eth_high, 1);
  p.sim.run();
  sim::Time high_at = -1;
  std::vector<sim::Time> lows;
  for (const auto& d : p.deliveries) {
    if (d.high) {
      high_at = d.at;
    } else {
      lows.push_back(d.at);
    }
  }
  ASSERT_NE(high_at, -1);
  std::sort(lows.begin(), lows.end());
  EXPECT_GT(high_at, lows.back() - 1);  // delivered last (or tied)
}

// ------------------------------------------------------------ budget

TEST(NetRxEngineTest, BudgetBoundsSoftirqInvocations) {
  CostModel cost;
  cost.napi_budget = 128;  // two polls per invocation
  Pipeline p(NapiMode::kVanilla, cost);
  p.feed(p.eth, 64 * 6);
  p.sim.run();
  // 6 eth batches + 6 br + 6 veth = 18 polls, at most 2 per softirq.
  EXPECT_GE(p.engine.softirq_invocations(), 9u);
  EXPECT_EQ(p.deliveries.size(), 64u * 6);
}

TEST(NetRxEngineTest, NapiCompleteFiresOnceDrained) {
  Pipeline p(NapiMode::kVanilla);
  p.feed(p.eth, 100);
  p.sim.run();
  EXPECT_EQ(p.eth.completes, 1);
  EXPECT_FALSE(p.eth.scheduled);
}

TEST(NetRxEngineTest, RescheduleAfterDrainWorks) {
  Pipeline p(NapiMode::kPrismBatch);
  p.feed(p.eth_high, 10);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 10u);
  p.feed(p.eth_high, 10);
  p.sim.run();
  EXPECT_EQ(p.deliveries.size(), 20u);
  EXPECT_EQ(p.eth_high.completes, 2);
}

// -------------------------------------------------------- mode switch

TEST(NetRxEngineTest, SetModeWhileIdleWorks) {
  Pipeline p(NapiMode::kVanilla);
  p.engine.set_mode(NapiMode::kPrismSync);
  EXPECT_EQ(p.engine.mode(), NapiMode::kPrismSync);
}

TEST(NetRxEngineTest, SetModeWhileBusyThrows) {
  Pipeline p(NapiMode::kVanilla);
  p.eth.pending = 64;
  p.engine.napi_schedule(p.eth, false);
  // Softirq raised but not yet run: the engine is not idle.
  EXPECT_THROW(p.engine.set_mode(NapiMode::kPrismBatch), std::logic_error);
  p.sim.run();
  EXPECT_NO_THROW(p.engine.set_mode(NapiMode::kPrismBatch));
}

TEST(NetRxEngineTest, ModeNamesAreStable) {
  EXPECT_STREQ(to_string(NapiMode::kVanilla), "vanilla");
  EXPECT_STREQ(to_string(NapiMode::kPrismBatch), "prism-batch");
  EXPECT_STREQ(to_string(NapiMode::kPrismSync), "prism-sync");
  EXPECT_STREQ(to_string(NapiMode::kPrismQueues), "prism-queues");
}

// ------------------------------------------- prism-queues ablation mode

TEST(NetRxEngineTest, QueuesModeKeepsInterleavedOrder) {
  // Dual queues without head insertion: the device order remains the
  // interleaved single-list order even for high-priority packets.
  Pipeline p(NapiMode::kPrismQueues);
  p.feed(p.eth_high, 64 * 5);
  p.sim.run();
  const auto order = p.trace.device_order();
  ASSERT_GE(order.size(), 6u);
  EXPECT_EQ(prefix(order, 6),
            (std::vector<std::string>{"eth", "br", "eth", "veth", "br",
                                      "eth"}));
  EXPECT_EQ(p.deliveries.size(), 64u * 5);
}

TEST(NetRxEngineTest, QueuesModeStillBypassesLowQueueBacklog) {
  // The dual-queue half of PRISM on its own still jumps queued
  // low-priority packets at each device, just without reordering the
  // poll list.
  Pipeline p(NapiMode::kPrismQueues);
  for (int i = 0; i < 128; ++i) {
    auto skb = alloc_skb();
    p.br.low_queue.push_back(std::move(skb));
  }
  p.engine.napi_schedule(p.br, false);
  p.feed(p.eth_high, 1);
  p.sim.run();
  ASSERT_EQ(p.deliveries.size(), 129u);
  sim::Time high_at = -1;
  std::vector<sim::Time> lows;
  for (const auto& d : p.deliveries) {
    if (d.high) {
      high_at = d.at;
    } else {
      lows.push_back(d.at);
    }
  }
  std::sort(lows.begin(), lows.end());
  // Not last: at least half a batch of lows completes after it.
  EXPECT_LT(high_at, lows[lows.size() - 32]);
}

TEST(NetRxEngineTest, BatchPreemptionBeatsQueuesOnlyForFirstDelivery) {
  auto first_high = [](NapiMode mode) {
    Pipeline p(mode);
    for (int i = 0; i < 128; ++i) {
      p.br.low_queue.push_back(alloc_skb());
    }
    p.engine.napi_schedule(p.br, false);
    p.feed(p.eth_high, 1);
    p.sim.run();
    for (const auto& d : p.deliveries) {
      if (d.high) return d.at;
    }
    return sim::Time{-1};
  };
  const auto batch = first_high(NapiMode::kPrismBatch);
  const auto queues = first_high(NapiMode::kPrismQueues);
  ASSERT_NE(batch, -1);
  ASSERT_NE(queues, -1);
  EXPECT_LT(batch, queues);
}

}  // namespace
}  // namespace prism::kernel
