// Cluster-level observability: a profiled 4-host / 4-thread run must
// populate the "prism/lanes" and "prism/cluster" proc documents, the
// cluster roll-up must equal the sum of the per-host snapshots, the
// profiled rounds must export as per-lane Chrome-trace tracks, and
// profiling must not perturb the simulation. Under -DPRISM_TELEMETRY=OFF
// the same surfaces stay readable but report compiled_in:false with all
// readings zero — the CI telemetry-off job runs this suite to prove it.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sockperf.h"
#include "harness/cluster.h"
#include "sim/lane_profiler.h"
#include "sim/time.h"
#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"
#include "telemetry/rollup.h"
#include "telemetry/span_tracer.h"

namespace prism {
namespace {

constexpr auto npos = std::string::npos;

struct ClusterRig {
  std::unique_ptr<harness::Cluster> cluster;
  std::vector<std::unique_ptr<apps::SockperfServer>> servers;
  std::vector<std::unique_ptr<apps::SockperfClient>> clients;

  /// Two pairs (4 hosts, 4 lanes) under asymmetric sockperf load.
  explicit ClusterRig(bool profiled, std::uint64_t sample_every = 1) {
    harness::ClusterConfig cc;
    cc.pairs = 2;
    cc.mode = kernel::NapiMode::kPrismSync;
    cluster = std::make_unique<harness::Cluster>(cc);
    if (profiled) cluster->enable_lane_profiler(1 << 12, sample_every);
    for (int p = 0; p < cluster->pairs(); ++p) {
      auto& cli_ns = cluster->add_client_container(p, "cli");
      auto& srv_ns = cluster->add_server_container(p, "srv");
      cluster->server(p).priority_db().add(srv_ns.ip(), 11111);
      servers.push_back(std::make_unique<apps::SockperfServer>(
          cluster->server_sim(p),
          apps::SockperfServer::Config{&cluster->server(p), &srv_ns,
                                       &cluster->server(p).cpu(1), 11111}));
      apps::SockperfClient::Config clc;
      clc.host = &cluster->client(p);
      clc.ns = &cli_ns;
      clc.cpus = {&cluster->client(p).cpu(1)};
      clc.dst_ip = srv_ns.ip();
      clc.dst_port = 11111;
      clc.rate_pps = 100'000.0 + 50'000.0 * p;  // lanes advance unevenly
      clc.reply_every = 4;
      clc.stop_at = sim::milliseconds(2);
      clients.push_back(std::make_unique<apps::SockperfClient>(
          cluster->client_sim(p), clc));
      clients.back()->start();
    }
  }

  void run(int threads) {
    cluster->run_until(sim::milliseconds(3), threads);
  }
};

TEST(ClusterObservabilityTest, LanesProcPopulatedAfterProfiledRun) {
  ClusterRig rig(/*profiled=*/true);
  rig.run(4);
  const std::string doc = rig.cluster->proc_read("prism/lanes");
  EXPECT_NE(doc.find("\"attached\":true"), npos) << doc;
#if PRISM_TELEMETRY_ENABLED
  EXPECT_NE(doc.find("\"compiled_in\":true"), npos) << doc;
  const sim::LaneProfiler* prof = rig.cluster->lane_profiler();
  ASSERT_NE(prof, nullptr);
  EXPECT_GT(prof->rounds_recorded(), 0u);
  EXPECT_EQ(prof->num_lanes(), 4);
  std::uint64_t events = 0;
  for (int i = 0; i < prof->num_lanes(); ++i) {
    events += prof->lane(i).events;
  }
  EXPECT_EQ(events, rig.cluster->lanes().events_executed());
  EXPECT_GE(prof->busy_imbalance(), 1.0);
  EXPECT_GE(prof->event_imbalance(), 1.0);
  EXPECT_NE(doc.find("\"lanes\":[{\"lane\":0"), npos) << doc;
  EXPECT_NE(doc.find("\"workers\":[{\"worker\":0"), npos) << doc;
#else
  // Compiled out: the document is an honest stub, not a lie.
  EXPECT_NE(doc.find("\"compiled_in\":false"), npos) << doc;
  EXPECT_NE(doc.find("\"rounds\":0"), npos) << doc;
#endif
}

TEST(ClusterObservabilityTest, ClusterRollupEqualsSumOfHostSnapshots) {
  ClusterRig rig(/*profiled=*/true);
  rig.run(4);
  harness::Cluster& c = *rig.cluster;
  const std::string doc = c.proc_read("prism/cluster");
  EXPECT_NE(doc.find("\"pairs\":2"), npos) << doc.substr(0, 200);
  EXPECT_NE(doc.find("\"hosts\":4"), npos);
  EXPECT_NE(doc.find("\"pair_summaries\":["), npos);
  EXPECT_NE(doc.find("\"engine\":{"), npos);

  // The embedded registry roll-up must be byte-identical to merging the
  // four hosts' registries directly...
  std::vector<const telemetry::Registry*> regs;
  for (int p = 0; p < c.pairs(); ++p) {
    regs.push_back(&c.client(p).metrics());
    regs.push_back(&c.server(p).metrics());
  }
  telemetry::JsonWriter w;
  telemetry::write_merged_registry_json(w, regs);
  const std::string merged = w.take();
  EXPECT_NE(doc.find(merged), npos);

  // ...and each merged counter must equal the sum over the per-host
  // registries it claims to aggregate.
  for (const auto& m : telemetry::merge_counters(regs)) {
    std::uint64_t sum = 0;
    for (const telemetry::Registry* r : regs) {
      sum += r->counter_value(m.name);
    }
    EXPECT_EQ(m.value, sum) << m.name;
  }
}

TEST(ClusterObservabilityTest, TelemetryIndexListsClusterSurfaces) {
  ClusterRig rig(/*profiled=*/false);
  const std::string idx =
      rig.cluster->proc_read("prism/telemetry/index");
  EXPECT_EQ(idx, "prism/cluster\nprism/lanes\nprism/telemetry/index\n");
  // Unknown paths read as empty, matching ProcInterface::read.
  EXPECT_EQ(rig.cluster->proc_read("prism/nonsense"), "");
  // Host-level index: every built-in plus the host's registered files.
  const std::string host_idx =
      rig.cluster->server(0).proc().read("prism/telemetry/index");
  for (const std::string& path : rig.cluster->server(0).proc().paths()) {
    EXPECT_NE(host_idx.find(path + "\n"), npos) << path;
  }
}

TEST(ClusterObservabilityTest, TraceExportCarriesLaneTracks) {
  ClusterRig rig(/*profiled=*/true);
  rig.run(4);
  telemetry::SpanTracer tracer;
  rig.cluster->export_lane_trace(tracer);
  const std::string trace = tracer.export_chrome_trace("test");
#if PRISM_TELEMETRY_ENABLED
  // One window track and one stall track per lane, with window spans
  // (and, whenever a worker waited, stall spans) on them.
  for (int lane = 0; lane < 4; ++lane) {
    const std::string label = "lane" + std::to_string(lane);
    EXPECT_NE(trace.find(label + ".window"), npos) << label;
    EXPECT_NE(trace.find(label + ".stall"), npos) << label;
  }
  EXPECT_NE(trace.find("\"name\":\"window\""), npos);
  EXPECT_GT(tracer.size(), 0u);
#else
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(trace.find("lane0.window"), npos);
#endif
}

TEST(ClusterObservabilityTest, ProfilingDoesNotPerturbTheSimulation) {
  ClusterRig profiled(/*profiled=*/true, /*sample_every=*/1);
  ClusterRig plain(/*profiled=*/false);
  profiled.run(4);
  plain.run(1);
  EXPECT_EQ(profiled.cluster->lanes().events_executed(),
            plain.cluster->lanes().events_executed());
  EXPECT_EQ(profiled.cluster->lanes().messages_posted(),
            plain.cluster->lanes().messages_posted());
  for (std::size_t i = 0; i < profiled.servers.size(); ++i) {
    EXPECT_EQ(profiled.servers[i]->received(), plain.servers[i]->received());
    EXPECT_EQ(profiled.clients[i]->replies(), plain.clients[i]->replies());
  }
}

}  // namespace
}  // namespace prism
