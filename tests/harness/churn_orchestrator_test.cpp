// ChurnOrchestrator: plan events applied at lane barriers, incarnation
// slot tracking across restart/migrate, hook firing, and thread-count
// determinism of a churned cluster.
#include "harness/churn.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/churn.h"
#include "fault/fault.h"
#include "harness/cluster.h"
#include "kernel/socket.h"

namespace prism::harness {
namespace {

constexpr sim::Time kMs = 1'000'000;

fault::ChurnPlan make_plan(std::uint64_t seed, double migrate_fraction,
                           int disruptions = 2) {
  fault::ChurnConfig cfg;
  cfg.seed = seed;
  cfg.start = 2 * kMs;
  cfg.horizon = 30 * kMs;
  cfg.pairs = 1;
  cfg.containers_per_pair = 1;
  cfg.disruptions_per_container = disruptions;
  cfg.migrate_fraction = migrate_fraction;
  cfg.min_gap = 2 * kMs;
  fault::ChurnPlan plan;
  plan.configure(cfg);
  return plan;
}

TEST(ChurnOrchestratorTest, AppliesEveryEventAndTracksIncarnations) {
  Cluster cluster(ClusterConfig{.pairs = 1});
  // All-migrate plan: each event replaces the incarnation and flips the
  // hosting side.
  fault::ChurnPlan plan = make_plan(5, 1.0, /*disruptions=*/3);
  ASSERT_EQ(plan.count(fault::ChurnKind::kMigrate), 3u);
  ChurnOrchestrator orch(cluster, plan);
  overlay::Netns& original = cluster.add_server_container(0, "srv");
  orch.register_container(0, 0, original);

  std::vector<std::string> hook_log;
  orch.on_migrated = [&](int pair, int idx, overlay::Netns& ns,
                         sim::Time at) {
    hook_log.push_back("migrate p" + std::to_string(pair) + " i" +
                       std::to_string(idx));
    // The hook sees the fresh incarnation, already current in the slot.
    EXPECT_EQ(&orch.container(pair, idx), &ns);
    EXPECT_TRUE(ns.accepting());
    EXPECT_GE(at, 2 * kMs);
  };

  orch.run_until(35 * kMs);
  EXPECT_EQ(orch.applied(), plan.events().size());
  EXPECT_EQ(hook_log.size(), 3u);
  // Odd number of migrations on a 1-pair cluster: ends on the client.
  EXPECT_EQ(&orch.host_of(0, 0), &cluster.client(0));
  EXPECT_NE(&orch.container(0, 0), &original);
  EXPECT_TRUE(original.dead());
  // Identity survived all three moves.
  EXPECT_EQ(orch.container(0, 0).ip(), original.ip());
  EXPECT_EQ(orch.container(0, 0).mac(), original.mac());
}

TEST(ChurnOrchestratorTest, StopAndRestartHooksPairUp) {
  Cluster cluster(ClusterConfig{.pairs = 1});
  fault::ChurnPlan plan = make_plan(5, 0.0, /*disruptions=*/2);
  ASSERT_EQ(plan.count(fault::ChurnKind::kStop), 2u);
  ChurnOrchestrator orch(cluster, plan);
  overlay::Netns& ns = cluster.add_server_container(0, "srv");
  orch.register_container(0, 0, ns);

  int stops = 0, restarts = 0;
  const overlay::Netns* last_stopped = nullptr;
  orch.on_stopped = [&](int, int, overlay::Netns& old, sim::Time) {
    ++stops;
    last_stopped = &old;
    EXPECT_FALSE(old.accepting());  // draining already refuses delivery
  };
  orch.on_restarted = [&](int, int, overlay::Netns& fresh, sim::Time) {
    ++restarts;
    EXPECT_NE(&fresh, last_stopped);
    EXPECT_TRUE(fresh.accepting());
  };
  orch.run_until(35 * kMs);
  EXPECT_EQ(stops, 2);
  EXPECT_EQ(restarts, 2);
  // Restarts stay on the original host.
  EXPECT_EQ(&orch.host_of(0, 0), &cluster.server(0));
}

TEST(ChurnOrchestratorTest, DeliveryResumesAfterMigration) {
  Cluster cluster(ClusterConfig{.pairs = 1});
  overlay::Netns& cl = cluster.add_client_container(0, "cl");
  overlay::Netns& srv = cluster.add_server_container(0, "srv");
  kernel::UdpSocket& before = cluster.server(0).udp_bind(srv, 7000);

  fault::ChurnPlan plan = make_plan(9, 1.0, /*disruptions=*/1);
  ASSERT_EQ(plan.events().size(), 1u);
  const sim::Time migrate_at = plan.events()[0].at;
  ChurnOrchestrator orch(cluster, plan);
  orch.register_container(0, 0, srv);

  kernel::UdpSocket* after = nullptr;
  orch.on_migrated = [&](int, int, overlay::Netns& fresh, sim::Time) {
    after = &cluster.client(0).udp_bind(fresh, 7000);
  };

  // One packet well before the migration, one well after.
  cluster.client_sim(0).schedule_at(1 * kMs, [&] {
    cluster.client(0).udp_send(cl, cluster.client(0).cpu(1), 100, srv.ip(),
                               7000, std::vector<std::uint8_t>(32, 1));
  });
  cluster.client_sim(0).schedule_at(migrate_at + 1 * kMs, [&] {
    cluster.client(0).udp_send(cl, cluster.client(0).cpu(1), 100, srv.ip(),
                               7000, std::vector<std::uint8_t>(32, 2));
  });
  orch.run_until(migrate_at + 5 * kMs, /*threads=*/2);

  EXPECT_EQ(before.received(), 1u);
  EXPECT_TRUE(before.closed());
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->received(), 1u) << "post-migration packet lost";
}

TEST(ChurnOrchestratorTest, ChurnedClusterIsThreadCountDeterministic) {
  const auto run = [](int threads) {
    Cluster cluster(ClusterConfig{.pairs = 2});
    std::vector<kernel::UdpSocket*> socks;
    ChurnOrchestrator orch(cluster, make_plan(11, 0.5, 2));
    for (int p = 0; p < 2; ++p) {
      overlay::Netns& cl = cluster.add_client_container(p, "cl");
      overlay::Netns& srv = cluster.add_server_container(p, "srv");
      socks.push_back(&cluster.server(p).udp_bind(srv, 7000));
      orch.register_container(p, 0, srv);
      // One packet every 100 us per pair, pre-scheduled across the run.
      auto& sim = cluster.client_sim(p);
      auto& host = cluster.client(p);
      const auto dst = srv.ip();
      for (sim::Time t = 1 * kMs; t < 28 * kMs; t += 100'000) {
        sim.schedule_at(t, [&host, &cl, dst] {
          host.udp_send(cl, host.cpu(1), 100, dst, 7000,
                        std::vector<std::uint8_t>(32, 7));
        });
      }
    }
    orch.run_until(32 * kMs, threads);
    std::string snap;
    for (int p = 0; p < 2; ++p) {
      snap += cluster.server(p).proc().read("prism/faults");
      snap += cluster.client(p).proc().read("prism/faults");
    }
    for (auto* s : socks) snap += std::to_string(s->received()) + ",";
    return snap;
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace prism::harness
