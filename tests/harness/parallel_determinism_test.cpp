// Cross-thread-count determinism of the parallel lane backend, on the
// full stack: multi-pair clusters with fault injection and overload
// control active must produce byte-identical telemetry, fault ledgers
// and overload snapshots whether the lanes run on 1 OS thread or N.
// Repeated parallel runs must also match each other — a data race that
// leaked simulation state across lanes would show up here first.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/sockperf.h"
#include "harness/cluster.h"
#include "harness/testbed.h"
#include "overlay/flow_cache.h"
#include "sim/time.h"
#include "telemetry/anomaly.h"

namespace prism {
namespace {

struct ClusterRun {
  /// One string per host: every proc surface that renders counter state.
  std::vector<std::string> host_snapshots;
  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> replies;
  std::vector<std::uint64_t> fc_hits;  ///< per server host
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t fault_injections = 0;
};

/// Two pairs (4 hosts, 4 lanes) under asymmetric load, with wire faults
/// and a small backlog (so overload control engages) on every server.
/// `arm_detectors` additionally arms the SLO and drop-burst detectors on
/// every server, so the "prism/anomalies" documents carry findings.
ClusterRun run_cluster(int threads, std::uint64_t seed,
                       bool arm_detectors = false, bool flow_cache = false) {
  harness::ClusterConfig cc;
  cc.pairs = 2;
  cc.mode = kernel::NapiMode::kPrismBatch;
  cc.flow_cache = flow_cache;
  cc.server_faults.seed = seed;
  cc.server_faults.wire_drop_rate = 0.01;
  cc.server_faults.wire_corrupt_rate = 0.005;
  cc.server_faults.wire_duplicate_rate = 0.005;
  cc.server_netdev_max_backlog = 128;
  harness::Cluster cluster(cc);
  if (arm_detectors) {
    telemetry::AnomalyConfig ac;
    ac.slo_p99_ns = sim::microseconds(150);
    ac.drop_burst_threshold = 4;
    for (int p = 0; p < cluster.pairs(); ++p) {
      cluster.server(p).anomalies().arm(ac);
    }
  }

  std::vector<std::unique_ptr<apps::SockperfServer>> servers;
  std::vector<std::unique_ptr<apps::SockperfClient>> clients;
  for (int p = 0; p < cluster.pairs(); ++p) {
    auto& cli_ns = cluster.add_client_container(p, "cli");
    auto& srv_ns = cluster.add_server_container(p, "srv");
    cluster.server(p).priority_db().add(srv_ns.ip(), 11111);
    servers.push_back(std::make_unique<apps::SockperfServer>(
        cluster.server_sim(p),
        apps::SockperfServer::Config{&cluster.server(p), &srv_ns,
                                     &cluster.server(p).cpu(1), 11111}));
    apps::SockperfClient::Config clc;
    clc.host = &cluster.client(p);
    clc.ns = &cli_ns;
    clc.cpus = {&cluster.client(p).cpu(1), &cluster.client(p).cpu(2)};
    clc.dst_ip = srv_ns.ip();
    clc.dst_port = 11111;
    clc.rate_pps = 150'000.0 + 50'000.0 * p;  // lanes advance unevenly
    clc.burst = 32;
    clc.reply_every = 4;
    clc.stop_at = sim::milliseconds(4);
    clients.push_back(
        std::make_unique<apps::SockperfClient>(cluster.client_sim(p), clc));
    clients.back()->start();
  }

  cluster.run_until(sim::milliseconds(5), threads);

  ClusterRun r;
  auto snap = [](kernel::Host& h) {
    // Every proc surface the host exposes, discovered through
    // prism/telemetry/index instead of a hard-coded list — new surfaces
    // are covered by this determinism check automatically.
    std::string all;
    for (const std::string& path : h.proc().paths()) {
      all += path;
      all += '\n';
      all += h.proc().read(path);
      all += '\n';
    }
    return all;
  };
  for (int p = 0; p < cluster.pairs(); ++p) {
    r.host_snapshots.push_back(snap(cluster.client(p)));
    r.host_snapshots.push_back(snap(cluster.server(p)));
    r.received.push_back(servers[static_cast<std::size_t>(p)]->received());
    r.replies.push_back(clients[static_cast<std::size_t>(p)]->replies());
    r.fc_hits.push_back(cluster.server(p).flow_cache().hits());
    const auto& sc = cluster.server(p).faults().plan.counters();
    r.fault_injections +=
        sc.wire_drops + sc.wire_corrupts + sc.wire_duplicates;
    // Per-host scoping: the client hosts carry no fault plan, so no
    // injection may ever be attributed to them.
    EXPECT_FALSE(cluster.client(p).faults().plan.active());
    EXPECT_EQ(cluster.client(p).faults().plan.counters().wire_drops, 0u);
  }
  r.events = cluster.lanes().events_executed();
  r.messages = cluster.lanes().messages_posted();
  return r;
}

void expect_same(const ClusterRun& a, const ClusterRun& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.replies, b.replies);
  EXPECT_EQ(a.fc_hits, b.fc_hits);
  EXPECT_EQ(a.fault_injections, b.fault_injections);
  ASSERT_EQ(a.host_snapshots.size(), b.host_snapshots.size());
  for (std::size_t i = 0; i < a.host_snapshots.size(); ++i) {
    EXPECT_EQ(a.host_snapshots[i], b.host_snapshots[i])
        << "host " << i << " snapshot diverged";
  }
}

TEST(ParallelDeterminismTest, OneThreadVsFourByteIdentical) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    const ClusterRun serial = run_cluster(1, seed);
    const ClusterRun parallel = run_cluster(4, seed);
    ASSERT_GT(serial.events, 0u);
    ASSERT_GT(serial.messages, 0u);
    for (std::uint64_t replies : serial.replies) EXPECT_GT(replies, 0u);
    expect_same(serial, parallel);
  }
}

// The snapshots above discover surfaces through prism/telemetry/index
// rather than a hard-coded list; the flight-recorder work added
// "prism/anomalies". Assert the index actually lists it (so the
// determinism net really covers it) and that armed-detector runs — SLO
// and drop-burst detectors live, findings freezing recorder slices —
// stay byte-identical between 1 and 4 threads.
TEST(ParallelDeterminismTest, AnomalySurfaceIndexedAndDeterministicArmed) {
  {
    harness::Testbed tb{harness::TestbedConfig{}};
    const auto paths = tb.server().proc().paths();
    EXPECT_NE(std::find(paths.begin(), paths.end(), "prism/anomalies"),
              paths.end())
        << "prism/anomalies missing from prism/telemetry/index";
  }
  const ClusterRun serial = run_cluster(1, 5, /*arm_detectors=*/true);
  const ClusterRun parallel = run_cluster(4, 5, /*arm_detectors=*/true);
  for (const std::string& snap : serial.host_snapshots) {
    EXPECT_NE(snap.find("prism/anomalies"), std::string::npos);
  }
  expect_same(serial, parallel);
}

// The overlay flow cache fills on one stage and hits on another; if lane
// scheduling could reorder the fill relative to a neighbouring flow's
// probe, hit counts — and through the fast path, the whole telemetry
// surface — would diverge across thread counts. They must not.
TEST(ParallelDeterminismTest, FlowCacheOnOneVsFourByteIdentical) {
  const ClusterRun serial =
      run_cluster(1, 7, /*arm_detectors=*/false, /*flow_cache=*/true);
  const ClusterRun parallel =
      run_cluster(4, 7, /*arm_detectors=*/false, /*flow_cache=*/true);
  ASSERT_GT(serial.events, 0u);
#if PRISM_FLOWCACHE_ENABLED
  for (std::uint64_t hits : serial.fc_hits) EXPECT_GT(hits, 0u);
#endif
  expect_same(serial, parallel);
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsIdentical) {
  const ClusterRun a = run_cluster(4, 3);
  const ClusterRun b = run_cluster(4, 3);
  expect_same(a, b);
}

TEST(ParallelDeterminismTest, DifferentSeedsDiverge) {
  // Sanity that the snapshots are sensitive enough to detect divergence:
  // different fault seeds must not compare equal.
  const ClusterRun a = run_cluster(1, 1);
  const ClusterRun b = run_cluster(1, 2);
#if PRISM_FAULTS_ENABLED
  EXPECT_NE(a.host_snapshots, b.host_snapshots);
#else
  expect_same(a, b);  // no faults compiled in: seeds change nothing
#endif
}

// Testbed lane mode: the paper testbed on two lanes must match itself
// run-to-run (and its classic-engine counters must stay plausible).
TEST(ParallelDeterminismTest, TestbedLaneModeIsRepeatable) {
  auto run_testbed = [](int threads) {
    harness::TestbedConfig tc;
    tc.threads = threads;
    harness::Testbed tb(tc);
    auto& cli = tb.add_client_container("cli");
    auto& srv = tb.add_server_container("srv");
    tb.server().priority_db().add(srv.ip(), 11111);
    apps::SockperfServer server(
        tb.server_sim(),
        {&tb.server(), &srv, &tb.server().cpu(1), 11111});
    apps::SockperfClient::Config clc;
    clc.host = &tb.client();
    clc.ns = &cli;
    clc.cpus = {&tb.client().cpu(1)};
    clc.dst_ip = srv.ip();
    clc.dst_port = 11111;
    clc.rate_pps = 100'000.0;
    clc.reply_every = 2;
    clc.stop_at = sim::milliseconds(4);
    apps::SockperfClient client(tb.client_sim(), clc);
    client.start();
    tb.run_until(sim::milliseconds(5));
    return tb.server().proc().read("prism/telemetry") +
           std::to_string(server.received()) + "/" +
           std::to_string(client.replies());
  };
  const std::string lane_a = run_testbed(2);
  const std::string lane_b = run_testbed(2);
  EXPECT_EQ(lane_a, lane_b);
  EXPECT_NE(lane_a.find("/"), std::string::npos);
}

TEST(ParallelDeterminismTest, TestbedClassicSimAccessorThrowsInLaneMode) {
  harness::TestbedConfig tc;
  tc.threads = 2;
  harness::Testbed tb(tc);
  EXPECT_TRUE(tb.parallel());
  EXPECT_THROW(tb.sim(), std::logic_error);
  tc.threads = 1;
  harness::Testbed classic(tc);
  EXPECT_FALSE(classic.parallel());
  EXPECT_NO_THROW(classic.sim());
}

}  // namespace
}  // namespace prism
