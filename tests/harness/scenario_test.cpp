// Qualitative reproduction tests: the paper's headline claims must hold
// in the simulated testbed. Short measurement windows keep these fast;
// the bench binaries run the full-length versions.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace prism::harness {
namespace {

PriorityScenarioConfig quick_priority(kernel::NapiMode mode, bool busy,
                                      bool overlay = true) {
  PriorityScenarioConfig cfg;
  cfg.mode = mode;
  cfg.busy = busy;
  cfg.overlay = overlay;
  cfg.duration = sim::milliseconds(150);
  return cfg;
}

TEST(ScenarioTest, BackgroundTrafficInflatesVanillaLatency) {
  // Paper Fig. 3: a loaded server increases median and tail latency
  // multiple-fold.
  const auto idle =
      run_priority_scenario(quick_priority(kernel::NapiMode::kVanilla,
                                           false));
  const auto busy =
      run_priority_scenario(quick_priority(kernel::NapiMode::kVanilla,
                                           true));
  EXPECT_GT(busy.latency.percentile(0.5),
            idle.latency.percentile(0.5) * 2);
  EXPECT_GT(busy.latency.percentile(0.99),
            idle.latency.percentile(0.99) * 3);
}

TEST(ScenarioTest, BackgroundLoadConsumesMajorShareOfRxCore) {
  // Paper §V-A: 300 Kpps of background occupies roughly 60-70% of the
  // packet-processing core (we accept a slightly wider band).
  const auto busy =
      run_priority_scenario(quick_priority(kernel::NapiMode::kVanilla,
                                           true));
  EXPECT_GT(busy.rx_cpu_utilization, 0.55);
  EXPECT_LT(busy.rx_cpu_utilization, 0.92);
}

TEST(ScenarioTest, PrismSyncCutsBusyOverlayLatency) {
  // Paper Fig. 9: PRISM-sync cuts average latency of high-priority flows
  // substantially under background load.
  const auto vanilla =
      run_priority_scenario(quick_priority(kernel::NapiMode::kVanilla,
                                           true));
  const auto sync =
      run_priority_scenario(quick_priority(kernel::NapiMode::kPrismSync,
                                           true));
  EXPECT_LT(sync.latency.mean(), vanilla.latency.mean() * 0.75);
  EXPECT_LT(sync.latency.percentile(0.99),
            vanilla.latency.percentile(0.99));
}

TEST(ScenarioTest, PrismBatchSitsBetweenVanillaAndSync) {
  const auto vanilla =
      run_priority_scenario(quick_priority(kernel::NapiMode::kVanilla,
                                           true));
  const auto batch =
      run_priority_scenario(quick_priority(kernel::NapiMode::kPrismBatch,
                                           true));
  const auto sync =
      run_priority_scenario(quick_priority(kernel::NapiMode::kPrismSync,
                                           true));
  EXPECT_LT(batch.latency.mean(), vanilla.latency.mean());
  EXPECT_GT(batch.latency.mean(), sync.latency.mean() * 0.95);
}

TEST(ScenarioTest, HostPathShowsNoPrismBenefit) {
  // Paper Fig. 10: the single-stage host pipeline gives PRISM nothing to
  // preempt; vanilla and PRISM must be within noise of each other.
  const auto vanilla = run_priority_scenario(
      quick_priority(kernel::NapiMode::kVanilla, true, /*overlay=*/false));
  const auto sync = run_priority_scenario(
      quick_priority(kernel::NapiMode::kPrismSync, true,
                     /*overlay=*/false));
  const double ratio = sync.latency.mean() / vanilla.latency.mean();
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(ScenarioTest, ProbesAreAnsweredReliably) {
  for (const auto mode :
       {kernel::NapiMode::kVanilla, kernel::NapiMode::kPrismBatch,
        kernel::NapiMode::kPrismSync}) {
    const auto res = run_priority_scenario(quick_priority(mode, true));
    EXPECT_GT(res.probes_sent, 100u);
    // Allow a few stragglers beyond the drain window.
    EXPECT_GE(res.replies + 5, res.probes_sent);
  }
}

TEST(ScenarioTest, StreamlinedThroughputTradeoff) {
  // Paper Fig. 8: vanilla sustains ~400 Kpps per core, PRISM-sync only
  // ~300 Kpps (no batch amortization).
  StreamlinedScenarioConfig cfg;
  cfg.rate_pps = 450'000;
  cfg.duration = sim::milliseconds(150);
  cfg.mode = kernel::NapiMode::kVanilla;
  const auto vanilla = run_streamlined_scenario(cfg);
  cfg.mode = kernel::NapiMode::kPrismSync;
  const auto sync = run_streamlined_scenario(cfg);
  EXPECT_GT(vanilla.delivered_pps, 350'000);
  EXPECT_LT(sync.delivered_pps, 330'000);
  EXPECT_GT(sync.delivered_pps, 250'000);
}

TEST(ScenarioTest, StreamlinedLatencyOrdering) {
  StreamlinedScenarioConfig cfg;
  cfg.rate_pps = 300'000;
  cfg.duration = sim::milliseconds(150);
  cfg.mode = kernel::NapiMode::kVanilla;
  const auto vanilla = run_streamlined_scenario(cfg);
  cfg.mode = kernel::NapiMode::kPrismSync;
  const auto sync = run_streamlined_scenario(cfg);
  EXPECT_LT(sync.latency.mean(), vanilla.latency.mean());
}

TEST(ScenarioTest, MemcachedBusyTanksAndPrismRecovers) {
  // Paper Fig. 12.
  MemcachedScenarioConfig cfg;
  cfg.duration = sim::milliseconds(150);
  cfg.mode = kernel::NapiMode::kVanilla;
  cfg.busy = false;
  const auto idle = run_memcached_scenario(cfg);
  cfg.busy = true;
  const auto busy_vanilla = run_memcached_scenario(cfg);
  cfg.mode = kernel::NapiMode::kPrismSync;
  const auto busy_sync = run_memcached_scenario(cfg);

  EXPECT_LT(busy_vanilla.ops_per_second, idle.ops_per_second * 0.75);
  EXPECT_GT(busy_sync.ops_per_second,
            busy_vanilla.ops_per_second * 1.15);
  EXPECT_LT(busy_sync.latency.mean(), busy_vanilla.latency.mean());
}

TEST(ScenarioTest, WebPrismImprovesBusyLatency) {
  // Paper Fig. 13.
  WebScenarioConfig cfg;
  cfg.duration = sim::milliseconds(150);
  cfg.mode = kernel::NapiMode::kVanilla;
  const auto vanilla = run_web_scenario(cfg);
  cfg.mode = kernel::NapiMode::kPrismSync;
  const auto sync = run_web_scenario(cfg);
  EXPECT_LT(sync.latency.mean(), vanilla.latency.mean());
  EXPECT_EQ(sync.completed, sync.sent);
  EXPECT_GT(vanilla.bg_bytes_received, 10'000'000u);
}

TEST(ScenarioTest, ResultsAreDeterministic) {
  const auto a =
      run_priority_scenario(quick_priority(kernel::NapiMode::kPrismBatch,
                                           true));
  const auto b =
      run_priority_scenario(quick_priority(kernel::NapiMode::kPrismBatch,
                                           true));
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.99), b.latency.percentile(0.99));
  EXPECT_EQ(a.bg_sent, b.bg_sent);
  EXPECT_DOUBLE_EQ(a.rx_cpu_utilization, b.rx_cpu_utilization);
}

}  // namespace
}  // namespace prism::harness
