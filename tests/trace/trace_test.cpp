#include <gtest/gtest.h>

#include "trace/packet_trace.h"
#include "trace/poll_trace.h"

namespace prism::trace {
namespace {

TEST(PollTraceTest, RecordsAndRenders) {
  PollTrace trace;
  trace.on_poll(100, "eth", {"br", "eth"}, 64);
  trace.on_poll(200, "br", {"eth", "veth"}, 64);
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].iteration, 1u);
  EXPECT_EQ(trace.records()[1].device, "br");
  EXPECT_EQ(trace.device_order(),
            (std::vector<std::string>{"eth", "br"}));
  const auto text = trace.render();
  EXPECT_NE(text.find("eth"), std::string::npos);
  EXPECT_NE(text.find("[br, eth]"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(PollTraceTest, RenderRespectsRowLimit) {
  PollTrace trace;
  for (int i = 0; i < 100; ++i) trace.on_poll(i, "eth", {}, 1);
  const auto text = trace.render(3);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);  // header + 3
}

TEST(PacketTraceTest, BreakdownComputesMeans) {
  PacketTrace trace;
  kernel::Skb skb;
  skb.ts.nic_rx = 0;
  skb.ts.stage1_done = 1000;
  skb.ts.stage2_done = 3000;
  skb.ts.stage3_done = 6000;
  skb.ts.socket_enqueue = 6000;
  trace.on_delivered(skb, 6000);
  skb.ts.stage1_done = 3000;
  skb.ts.stage2_done = 5000;
  skb.ts.stage3_done = 8000;
  skb.ts.socket_enqueue = 8000;
  trace.on_delivered(skb, 8000);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::nic_rx,
                             &kernel::SkbTimestamps::stage1_done),
      2000.0);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::stage1_done,
                             &kernel::SkbTimestamps::stage2_done),
      2000.0);
  const auto text = trace.render_breakdown();
  EXPECT_NE(text.find("nic ring -> stage1"), std::string::npos);
}

TEST(PacketTraceTest, MissingStagesSkipped) {
  PacketTrace trace;
  kernel::Skb skb;  // host path: stage2/3 never traversed (-1)
  skb.ts.nic_rx = 0;
  skb.ts.stage1_done = 500;
  skb.ts.socket_enqueue = 500;
  trace.on_delivered(skb, 500);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::stage1_done,
                             &kernel::SkbTimestamps::stage2_done),
      0.0);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::nic_rx,
                             &kernel::SkbTimestamps::socket_enqueue),
      500.0);
}

}  // namespace
}  // namespace prism::trace
