#include <gtest/gtest.h>

#include "trace/packet_trace.h"
#include "trace/poll_trace.h"

namespace prism::trace {
namespace {

TEST(PollTraceTest, RecordsAndRenders) {
  PollTrace trace;
  trace.on_poll(100, "eth", {"br", "eth"}, 64);
  trace.on_poll(200, "br", {"eth", "veth"}, 64);
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].iteration, 1u);
  EXPECT_EQ(trace.records()[1].device, "br");
  EXPECT_EQ(trace.device_order(),
            (std::vector<std::string>{"eth", "br"}));
  const auto text = trace.render();
  EXPECT_NE(text.find("eth"), std::string::npos);
  EXPECT_NE(text.find("[br, eth]"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(PollTraceTest, RenderRespectsRowLimit) {
  PollTrace trace;
  for (int i = 0; i < 100; ++i) trace.on_poll(i, "eth", {}, 1);
  const auto text = trace.render(3);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);  // header + 3
}

TEST(PollTraceTest, RingOverwritesOldestWhenFull) {
  PollTrace trace(3);
  for (int i = 0; i < 10; ++i) {
    trace.on_poll(i * 100, "eth", {"br"}, i);
  }
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.capacity(), 3u);
  EXPECT_EQ(trace.dropped_records(), 7u);
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 3u);
  // Newest three survive, oldest first; the global iteration counter
  // keeps numbering across overwrites.
  EXPECT_EQ(records[0].iteration, 8u);
  EXPECT_EQ(records[0].packets, 7);
  EXPECT_EQ(records[2].iteration, 10u);
  EXPECT_EQ(records[2].at, 900);
  EXPECT_EQ(records[2].poll_list, (std::vector<std::string>{"br"}));
}

TEST(PollTraceTest, LongPollListsAreTruncated) {
  PollTrace trace;
  std::vector<std::string> list;
  for (std::size_t i = 0; i < PollTrace::kMaxPollList + 4; ++i) {
    list.push_back("dev" + std::to_string(i));
  }
  trace.on_poll(0, "eth", list, 1);
  EXPECT_EQ(trace.truncated_lists(), 1u);
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].poll_list.size(), PollTrace::kMaxPollList);
  EXPECT_EQ(records[0].poll_list.front(), "dev0");
}

TEST(PollTraceTest, SetCapacityRebounds) {
  PollTrace trace(8);
  for (int i = 0; i < 8; ++i) trace.on_poll(i, "eth", {}, 1);
  trace.set_capacity(2);
  EXPECT_EQ(trace.size(), 0u);  // retained records cleared
  for (int i = 0; i < 5; ++i) trace.on_poll(i, "br", {}, 1);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped_records(), 3u);
  EXPECT_EQ(trace.device_order(),
            (std::vector<std::string>{"br", "br"}));
}

TEST(PollTraceTest, InternedIdsAreStable) {
  PollTrace trace;
  const auto eth = trace.intern("eth");
  const auto br = trace.intern("br");
  EXPECT_NE(eth, br);
  EXPECT_EQ(trace.intern("eth"), eth);
  const PollTrace::NameId list[] = {br, eth};
  trace.on_poll_ids(50, eth, list, 2, 16);
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].device, "eth");
  EXPECT_EQ(records[0].poll_list,
            (std::vector<std::string>{"br", "eth"}));
}

TEST(PacketTraceTest, RingOverwritesOldestWhenFull) {
  PacketTrace trace(2);
  kernel::Skb skb;
  for (int i = 0; i < 5; ++i) {
    skb.ts.nic_rx = i;
    trace.on_delivered(skb, i * 10);
  }
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped_records(), 3u);
  const auto entries = trace.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].ts.nic_rx, 3);
  EXPECT_EQ(entries[1].ts.nic_rx, 4);
  EXPECT_EQ(entries[1].delivered, 40);
  EXPECT_EQ(trace.entry(0).ts.nic_rx, 3);
}

TEST(PacketTraceTest, SetCapacityClearsRetainedEntries) {
  PacketTrace trace(4);
  kernel::Skb skb;
  trace.on_delivered(skb, 1);
  trace.set_capacity(1);
  EXPECT_EQ(trace.size(), 0u);
  trace.on_delivered(skb, 2);
  trace.on_delivered(skb, 3);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.dropped_records(), 1u);
  EXPECT_EQ(trace.entries()[0].delivered, 3);
}

TEST(PacketTraceTest, BreakdownComputesMeans) {
  PacketTrace trace;
  kernel::Skb skb;
  skb.ts.nic_rx = 0;
  skb.ts.stage1_done = 1000;
  skb.ts.stage2_done = 3000;
  skb.ts.stage3_done = 6000;
  skb.ts.socket_enqueue = 6000;
  trace.on_delivered(skb, 6000);
  skb.ts.stage1_done = 3000;
  skb.ts.stage2_done = 5000;
  skb.ts.stage3_done = 8000;
  skb.ts.socket_enqueue = 8000;
  trace.on_delivered(skb, 8000);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::nic_rx,
                             &kernel::SkbTimestamps::stage1_done),
      2000.0);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::stage1_done,
                             &kernel::SkbTimestamps::stage2_done),
      2000.0);
  const auto text = trace.render_breakdown();
  EXPECT_NE(text.find("nic ring -> stage1"), std::string::npos);
}

TEST(PacketTraceTest, MissingStagesSkipped) {
  PacketTrace trace;
  kernel::Skb skb;  // host path: stage2/3 never traversed (-1)
  skb.ts.nic_rx = 0;
  skb.ts.stage1_done = 500;
  skb.ts.socket_enqueue = 500;
  trace.on_delivered(skb, 500);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::stage1_done,
                             &kernel::SkbTimestamps::stage2_done),
      0.0);
  EXPECT_DOUBLE_EQ(
      trace.mean_interval_ns(&kernel::SkbTimestamps::nic_rx,
                             &kernel::SkbTimestamps::socket_enqueue),
      500.0);
}

}  // namespace
}  // namespace prism::trace
