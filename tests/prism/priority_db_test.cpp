#include "prism/priority_db.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace prism::prism {
namespace {

net::PacketBuf udp_frame(net::Ipv4Addr src, std::uint16_t sport,
                         net::Ipv4Addr dst, std::uint16_t dport) {
  net::FrameSpec spec;
  spec.src_mac = net::MacAddr::make(1);
  spec.dst_mac = net::MacAddr::make(2);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.src_port = sport;
  spec.dst_port = dport;
  const std::uint8_t payload[8] = {};
  return net::build_udp_frame(spec, payload);
}

const auto kSrc = net::Ipv4Addr::of(172, 17, 0, 2);
const auto kDst = net::Ipv4Addr::of(172, 17, 0, 3);

TEST(PriorityDbTest, AddRemoveContains) {
  PriorityDb db;
  EXPECT_TRUE(db.empty());
  db.add(kDst, 80);
  EXPECT_TRUE(db.contains(kDst, 80));
  EXPECT_FALSE(db.contains(kDst, 81));
  EXPECT_FALSE(db.contains(kSrc, 80));
  EXPECT_TRUE(db.remove(kDst, 80));
  EXPECT_FALSE(db.remove(kDst, 80));
  EXPECT_TRUE(db.empty());
}

TEST(PriorityDbTest, AddIsIdempotent) {
  PriorityDb db;
  db.add(kDst, 80);
  db.add(kDst, 80);
  EXPECT_EQ(db.size(), 1u);
}

TEST(PriorityDbTest, ClassifyMatchesDestination) {
  PriorityDb db;
  db.add(kDst, 7000);
  const auto hit = udp_frame(kSrc, 1234, kDst, 7000);
  const auto miss = udp_frame(kSrc, 1234, kDst, 7001);
  EXPECT_TRUE(db.classify(hit.bytes()));
  EXPECT_FALSE(db.classify(miss.bytes()));
}

TEST(PriorityDbTest, ClassifyMatchesSource) {
  PriorityDb db;
  db.add(kSrc, 1234);
  const auto hit = udp_frame(kSrc, 1234, kDst, 9999);
  EXPECT_TRUE(db.classify(hit.bytes()));
}

TEST(PriorityDbTest, ClassifyPeeksThroughVxlan) {
  PriorityDb db;
  db.add(kDst, 7000);
  auto frame = udp_frame(kSrc, 1234, kDst, 7000);
  net::FrameSpec outer;
  outer.src_mac = net::MacAddr::make(10);
  outer.dst_mac = net::MacAddr::make(11);
  outer.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  outer.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  outer.src_port = 55555;
  net::vxlan_encapsulate(frame, outer, 42);
  EXPECT_TRUE(db.classify(frame.bytes()));
}

TEST(PriorityDbTest, ClassifyVxlanInnerMissIsLow) {
  PriorityDb db;
  db.add(kDst, 7000);
  auto frame = udp_frame(kSrc, 1234, kDst, 7001);
  net::FrameSpec outer;
  outer.src_mac = net::MacAddr::make(10);
  outer.dst_mac = net::MacAddr::make(11);
  outer.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  outer.dst_ip = net::Ipv4Addr::of(10, 0, 0, 2);
  net::vxlan_encapsulate(frame, outer, 42);
  EXPECT_FALSE(db.classify(frame.bytes()));
}

TEST(PriorityDbTest, EmptyDbNeverMatches) {
  PriorityDb db;
  const auto frame = udp_frame(kSrc, 1, kDst, 2);
  EXPECT_FALSE(db.classify(frame.bytes()));
}

TEST(PriorityDbTest, MalformedFrameIsLowPriority) {
  PriorityDb db;
  db.add(kDst, 7000);
  const std::uint8_t garbage[10] = {1, 2, 3};
  EXPECT_FALSE(db.classify(garbage));
}

TEST(PriorityDbTest, ClearEmpties) {
  PriorityDb db;
  db.add(kDst, 1);
  db.add(kDst, 2);
  db.clear();
  EXPECT_TRUE(db.empty());
  const auto frame = udp_frame(kSrc, 1, kDst, 1);
  EXPECT_FALSE(db.classify(frame.bytes()));
}

TEST(PriorityDbTest, TcpFlowsMatchToo) {
  PriorityDb db;
  db.add(kDst, 80);
  net::FrameSpec spec;
  spec.src_mac = net::MacAddr::make(1);
  spec.dst_mac = net::MacAddr::make(2);
  spec.src_ip = kSrc;
  spec.dst_ip = kDst;
  spec.src_port = 40000;
  spec.dst_port = 80;
  const auto frame = net::build_tcp_frame(spec, net::TcpHeader{}, {});
  EXPECT_TRUE(db.classify(frame.bytes()));
}

}  // namespace
}  // namespace prism::prism
