#include "prism/proc_interface.h"

#include <gtest/gtest.h>

namespace prism::prism {
namespace {

struct Rig {
  PriorityDb db;
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  ProcInterface proc{db, [this](kernel::NapiMode m) { mode = m; },
                     [this] { return mode; }};
};

TEST(ProcInterfaceTest, ModeWritesAndReads) {
  Rig r;
  EXPECT_EQ(r.proc.read("prism/mode"), "vanilla");
  EXPECT_TRUE(r.proc.write("prism/mode", "sync"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kPrismSync);
  EXPECT_EQ(r.proc.read("prism/mode"), "sync");
  EXPECT_TRUE(r.proc.write("prism/mode", "batch"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kPrismBatch);
  EXPECT_TRUE(r.proc.write("prism/mode", "vanilla"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kVanilla);
}

TEST(ProcInterfaceTest, BadModeRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/mode", "turbo"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kVanilla);
}

TEST(ProcInterfaceTest, PriorityAddDelClear) {
  Rig r;
  EXPECT_TRUE(r.proc.write("prism/priority", "add 172.17.0.2 11211"));
  EXPECT_TRUE(r.db.contains(net::Ipv4Addr::of(172, 17, 0, 2), 11211));
  EXPECT_EQ(r.proc.read("prism/priority"), "1");
  EXPECT_TRUE(r.proc.write("prism/priority", "del 172.17.0.2 11211"));
  EXPECT_TRUE(r.db.empty());
  EXPECT_FALSE(r.proc.write("prism/priority", "del 172.17.0.2 11211"));
  EXPECT_TRUE(r.proc.write("prism/priority", "add 1.2.3.4 1"));
  EXPECT_TRUE(r.proc.write("prism/priority", "clear"));
  EXPECT_TRUE(r.db.empty());
}

TEST(ProcInterfaceTest, MalformedPriorityWritesRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/priority", "add"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add nonsense 80"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4 99999"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4 -1"));
  EXPECT_FALSE(r.proc.write("prism/priority", "frobnicate 1.2.3.4 1"));
  EXPECT_TRUE(r.db.empty());
}

TEST(ProcInterfaceTest, UnknownPathRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/unknown", "x"));
  EXPECT_EQ(r.proc.read("prism/unknown"), "");
}

}  // namespace
}  // namespace prism::prism
