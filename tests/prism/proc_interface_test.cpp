#include "prism/proc_interface.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace prism::prism {
namespace {

struct Rig {
  PriorityDb db;
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  ProcInterface proc{db, [this](kernel::NapiMode m) { mode = m; },
                     [this] { return mode; }};
};

TEST(ProcInterfaceTest, ModeWritesAndReads) {
  Rig r;
  EXPECT_EQ(r.proc.read("prism/mode"), "vanilla");
  EXPECT_TRUE(r.proc.write("prism/mode", "sync"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kPrismSync);
  EXPECT_EQ(r.proc.read("prism/mode"), "sync");
  EXPECT_TRUE(r.proc.write("prism/mode", "batch"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kPrismBatch);
  EXPECT_TRUE(r.proc.write("prism/mode", "vanilla"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kVanilla);
}

TEST(ProcInterfaceTest, BadModeRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/mode", "turbo"));
  EXPECT_EQ(r.mode, kernel::NapiMode::kVanilla);
}

TEST(ProcInterfaceTest, PriorityAddDelClear) {
  Rig r;
  EXPECT_TRUE(r.proc.write("prism/priority", "add 172.17.0.2 11211"));
  EXPECT_TRUE(r.db.contains(net::Ipv4Addr::of(172, 17, 0, 2), 11211));
  EXPECT_EQ(r.proc.read("prism/priority"), "1");
  EXPECT_TRUE(r.proc.write("prism/priority", "del 172.17.0.2 11211"));
  EXPECT_TRUE(r.db.empty());
  EXPECT_FALSE(r.proc.write("prism/priority", "del 172.17.0.2 11211"));
  EXPECT_TRUE(r.proc.write("prism/priority", "add 1.2.3.4 1"));
  EXPECT_TRUE(r.proc.write("prism/priority", "clear"));
  EXPECT_TRUE(r.db.empty());
}

TEST(ProcInterfaceTest, MalformedPriorityWritesRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/priority", "add"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add nonsense 80"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4 99999"));
  EXPECT_FALSE(r.proc.write("prism/priority", "add 1.2.3.4 -1"));
  EXPECT_FALSE(r.proc.write("prism/priority", "frobnicate 1.2.3.4 1"));
  EXPECT_TRUE(r.db.empty());
}

TEST(ProcInterfaceTest, UnknownPathRejected) {
  Rig r;
  EXPECT_FALSE(r.proc.write("prism/unknown", "x"));
  EXPECT_EQ(r.proc.read("prism/unknown"), "");
}

TEST(ProcInterfaceTest, TelemetryIndexListsEverySurfaceSorted) {
  Rig r;
  const std::string idx = r.proc.read("prism/telemetry/index");
  EXPECT_NE(idx.find("prism/mode\n"), std::string::npos);
  EXPECT_NE(idx.find("prism/priority\n"), std::string::npos);
  EXPECT_NE(idx.find("prism/telemetry/index\n"), std::string::npos);
  const auto paths = r.proc.paths();
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

TEST(ProcInterfaceTest, TelemetryIndexSeesLateRegistrations) {
  Rig r;
  ASSERT_EQ(r.proc.read("prism/telemetry/index").find("prism/custom"),
            std::string::npos);
  r.proc.register_file("prism/custom", [] { return std::string("42"); });
  // The index is computed per read, so the new file shows up at once —
  // and it cannot shadow the built-in index path itself.
  EXPECT_NE(r.proc.read("prism/telemetry/index").find("prism/custom\n"),
            std::string::npos);
  EXPECT_EQ(r.proc.read("prism/custom"), "42");
  r.proc.register_file("prism/telemetry/index",
                       [] { return std::string("shadow"); });
  EXPECT_NE(r.proc.read("prism/telemetry/index"), "shadow");
}

}  // namespace
}  // namespace prism::prism
