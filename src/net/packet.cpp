#include "net/packet.h"

#include <algorithm>
#include <stdexcept>

namespace prism::net {

PacketBuf PacketBuf::with_headroom(std::size_t headroom,
                                   std::span<const std::uint8_t> payload) {
  PacketBuf p;
  p.data_.resize(headroom + payload.size());
  std::copy(payload.begin(), payload.end(), p.data_.begin() +
            static_cast<std::ptrdiff_t>(headroom));
  p.offset_ = headroom;
  return p;
}

void PacketBuf::push_front(std::span<const std::uint8_t> header) {
  if (header.size() <= offset_) {
    offset_ -= header.size();
    std::copy(header.begin(), header.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(offset_));
    return;
  }
  // Not enough headroom: rebuild with room for this header plus a fresh
  // reserve for any further encapsulation.
  std::vector<std::uint8_t> grown;
  grown.resize(kEncapHeadroom + header.size() + size());
  std::copy(header.begin(), header.end(),
            grown.begin() + static_cast<std::ptrdiff_t>(kEncapHeadroom));
  const auto old = bytes();
  std::copy(old.begin(), old.end(),
            grown.begin() +
                static_cast<std::ptrdiff_t>(kEncapHeadroom + header.size()));
  data_ = std::move(grown);
  offset_ = kEncapHeadroom;
}

void PacketBuf::pop_front(std::size_t n) {
  if (n > size()) {
    throw std::out_of_range("PacketBuf::pop_front: beyond packet end");
  }
  offset_ += n;
}

namespace {

// Serializes eth+ip+l4 headers for `l4_size + payload_size` bytes of L4
// data into a fresh vector.
std::vector<std::uint8_t> build_headers_udp(
    const FrameSpec& spec, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> hdr;
  hdr.reserve(EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize);

  EthernetHeader eth{spec.dst_mac, spec.src_mac, EtherType::kIpv4};
  eth.serialize(hdr);

  Ipv4Header ip;
  ip.dscp = spec.dscp;
  ip.protocol = IpProto::kUdp;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.serialize(hdr);

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.serialize(hdr, spec.src_ip, spec.dst_ip, payload);
  return hdr;
}

}  // namespace

PacketBuf build_udp_frame(const FrameSpec& spec,
                          std::span<const std::uint8_t> payload) {
  PacketBuf p = PacketBuf::from_payload(payload);
  p.push_front(build_headers_udp(spec, payload));
  return p;
}

PacketBuf build_tcp_frame(const FrameSpec& spec, const TcpHeader& tcp,
                          std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> hdr;
  hdr.reserve(EthernetHeader::kSize + Ipv4Header::kSize + TcpHeader::kSize);

  EthernetHeader eth{spec.dst_mac, spec.src_mac, EtherType::kIpv4};
  eth.serialize(hdr);

  Ipv4Header ip;
  ip.dscp = spec.dscp;
  ip.protocol = IpProto::kTcp;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + TcpHeader::kSize + payload.size());
  ip.serialize(hdr);

  TcpHeader t = tcp;
  t.src_port = spec.src_port;
  t.dst_port = spec.dst_port;
  t.serialize(hdr, spec.src_ip, spec.dst_ip, payload);

  PacketBuf p = PacketBuf::from_payload(payload);
  p.push_front(hdr);
  return p;
}

void vxlan_encapsulate(PacketBuf& frame, const FrameSpec& outer,
                       std::uint32_t vni) {
  // VXLAN payload = VXLAN header + inner frame; build the VXLAN header
  // first so the UDP checksum can cover it together with the inner frame.
  std::vector<std::uint8_t> vxlan_bytes;
  VxlanHeader{vni}.serialize(vxlan_bytes);
  frame.push_front(vxlan_bytes);

  FrameSpec udp_spec = outer;
  udp_spec.dst_port = kVxlanPort;
  frame.push_front(build_headers_udp(udp_spec, frame.bytes()));
}

std::optional<ParsedFrame> parse_frame(
    std::span<const std::uint8_t> frame) {
  ParsedFrame out;
  auto eth = EthernetHeader::parse(frame);
  if (!eth) return std::nullopt;
  out.eth = *eth;
  if (eth->ether_type != EtherType::kIpv4) return std::nullopt;

  auto ip_bytes = frame.subspan(EthernetHeader::kSize);
  auto ip = Ipv4Header::parse(ip_bytes);
  if (!ip) return std::nullopt;
  out.ip = *ip;

  // Trust total_length over the buffer size (buffers may carry padding).
  auto l4 = ip_bytes.subspan(Ipv4Header::kSize,
                             ip->total_length - Ipv4Header::kSize);
  const std::size_t l4_offset = EthernetHeader::kSize + Ipv4Header::kSize;

  if (ip->protocol == IpProto::kUdp) {
    auto udp = UdpHeader::parse(l4);
    if (!udp) return std::nullopt;
    out.udp = *udp;
    out.l4_payload = l4.subspan(UdpHeader::kSize,
                                udp->length - UdpHeader::kSize);
    out.l4_payload_offset = l4_offset + UdpHeader::kSize;
  } else if (ip->protocol == IpProto::kTcp) {
    auto tcp = TcpHeader::parse(l4);
    if (!tcp) return std::nullopt;
    out.tcp = *tcp;
    out.l4_payload = l4.subspan(TcpHeader::kSize);
    out.l4_payload_offset = l4_offset + TcpHeader::kSize;
  }
  return out;
}

}  // namespace prism::net
