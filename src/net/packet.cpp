#include "net/packet.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/pool.h"

namespace prism::net {

PacketBuf& PacketBuf::operator=(PacketBuf&& other) noexcept {
  if (this != &other) {
    recycle_storage();
    data_ = std::move(other.data_);
    offset_ = other.offset_;
    other.offset_ = 0;
  }
  return *this;
}

PacketBuf::PacketBuf(const PacketBuf& other)
    : data_(sim::BufferPool::instance().acquire(other.data_.size())),
      offset_(other.offset_) {
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

PacketBuf& PacketBuf::operator=(const PacketBuf& other) {
  if (this != &other) {
    if (data_.capacity() == 0) {
      data_ = sim::BufferPool::instance().acquire(other.data_.size());
    } else {
      data_.resize(other.data_.size());
    }
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
    offset_ = other.offset_;
  }
  return *this;
}

PacketBuf::~PacketBuf() { recycle_storage(); }

void PacketBuf::recycle_storage() noexcept {
  if (data_.capacity() != 0) {
    sim::BufferPool::instance().release(std::move(data_));
    data_ = std::vector<std::uint8_t>{};
  }
  offset_ = 0;
}

PacketBuf PacketBuf::with_headroom(std::size_t headroom,
                                   std::span<const std::uint8_t> payload) {
  PacketBuf p;
  p.reset(headroom, payload);
  return p;
}

void PacketBuf::reset(std::size_t headroom,
                      std::span<const std::uint8_t> payload) {
  if (data_.capacity() == 0) {
    data_ = sim::BufferPool::instance().acquire(headroom + payload.size());
  } else {
    data_.resize(headroom + payload.size());
  }
  std::copy(payload.begin(), payload.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(headroom));
  offset_ = headroom;
}

void PacketBuf::push_front(std::span<const std::uint8_t> header) {
  if (header.size() <= offset_) {
    offset_ -= header.size();
    std::copy(header.begin(), header.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(offset_));
    return;
  }
  // Not enough headroom: rebuild with room for this header plus a double
  // encapsulation reserve, so stacking further layers onto the same frame
  // never pays for a second reallocation.
  const std::size_t new_headroom = 2 * kEncapHeadroom;
  std::vector<std::uint8_t> grown = sim::BufferPool::instance().acquire(
      new_headroom + header.size() + size());
  std::copy(header.begin(), header.end(),
            grown.begin() + static_cast<std::ptrdiff_t>(new_headroom));
  const auto old = bytes();
  std::copy(old.begin(), old.end(),
            grown.begin() +
                static_cast<std::ptrdiff_t>(new_headroom + header.size()));
  sim::BufferPool::instance().release(std::move(data_));
  data_ = std::move(grown);
  offset_ = new_headroom;
}

void PacketBuf::pop_front(std::size_t n) {
  if (n > size()) {
    throw std::out_of_range("PacketBuf::pop_front: beyond packet end");
  }
  offset_ += n;
}

namespace {

// Scratch vector for header serialization, recycled across frame builds
// so the steady state allocates nothing. Frame builders use it strictly
// sequentially (serialize, push_front, done) and never reenter.
std::vector<std::uint8_t>& header_scratch() {
  static thread_local std::vector<std::uint8_t> scratch;
  scratch.clear();
  return scratch;
}

// Serializes eth+ip+udp headers covering `payload` into `hdr`.
void build_headers_udp(const FrameSpec& spec,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& hdr) {
  EthernetHeader eth{spec.dst_mac, spec.src_mac, EtherType::kIpv4};
  eth.serialize(hdr);

  Ipv4Header ip;
  ip.dscp = spec.dscp;
  ip.protocol = IpProto::kUdp;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + payload.size());
  ip.serialize(hdr);

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.serialize(hdr, spec.src_ip, spec.dst_ip, payload);
}

}  // namespace

PacketBuf build_udp_frame(const FrameSpec& spec,
                          std::span<const std::uint8_t> payload) {
  PacketBuf p = PacketBuf::from_payload(payload);
  auto& hdr = header_scratch();
  build_headers_udp(spec, payload, hdr);
  p.push_front(hdr);
  return p;
}

PacketBuf build_tcp_frame(const FrameSpec& spec, const TcpHeader& tcp,
                          std::span<const std::uint8_t> payload) {
  auto& hdr = header_scratch();

  EthernetHeader eth{spec.dst_mac, spec.src_mac, EtherType::kIpv4};
  eth.serialize(hdr);

  Ipv4Header ip;
  ip.dscp = spec.dscp;
  ip.protocol = IpProto::kTcp;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + TcpHeader::kSize + payload.size());
  ip.serialize(hdr);

  TcpHeader t = tcp;
  t.src_port = spec.src_port;
  t.dst_port = spec.dst_port;
  t.serialize(hdr, spec.src_ip, spec.dst_ip, payload);

  PacketBuf p = PacketBuf::from_payload(payload);
  p.push_front(hdr);
  return p;
}

void vxlan_encapsulate(PacketBuf& frame, const FrameSpec& outer,
                       std::uint32_t vni) {
  // VXLAN payload = VXLAN header + inner frame; build the VXLAN header
  // first so the UDP checksum can cover it together with the inner frame.
  // The scratch is reused for both pushes — each push copies it into the
  // frame before the next serialization clears it.
  auto& scratch = header_scratch();
  VxlanHeader{vni}.serialize(scratch);
  frame.push_front(scratch);

  auto& hdr = header_scratch();

  EthernetHeader eth{outer.dst_mac, outer.src_mac, EtherType::kIpv4};
  eth.serialize(hdr);

  Ipv4Header ip;
  ip.dscp = outer.dscp;
  ip.protocol = IpProto::kUdp;
  ip.src = outer.src_ip;
  ip.dst = outer.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::kSize + UdpHeader::kSize + frame.size());
  ip.serialize(hdr);

  // RFC 7348: the outer UDP checksum SHOULD be zero — receivers must not
  // verify it. Skipping it avoids checksumming the whole inner frame again.
  UdpHeader udp;
  udp.src_port = outer.src_port;
  udp.dst_port = kVxlanPort;
  udp.length =
      static_cast<std::uint16_t>(UdpHeader::kSize + frame.size());
  udp.serialize_no_checksum(hdr);

  frame.push_front(hdr);
}

bool parse_frame_into(std::span<const std::uint8_t> frame,
                      ParsedFrame& out) noexcept {
  out.udp.reset();
  out.tcp.reset();
  out.l4_payload = {};
  out.l4_payload_offset = 0;

  auto eth = EthernetHeader::parse(frame);
  if (!eth) return false;
  out.eth = *eth;
  if (eth->ether_type != EtherType::kIpv4) return false;

  auto ip_bytes = frame.subspan(EthernetHeader::kSize);
  auto ip = Ipv4Header::parse(ip_bytes);
  if (!ip) return false;
  out.ip = *ip;

  // Trust total_length over the buffer size (buffers may carry padding).
  auto l4 = ip_bytes.subspan(Ipv4Header::kSize,
                             ip->total_length - Ipv4Header::kSize);
  const std::size_t l4_offset = EthernetHeader::kSize + Ipv4Header::kSize;

  if (ip->protocol == IpProto::kUdp) {
    auto udp = UdpHeader::parse(l4);
    if (!udp) return false;
    out.udp = *udp;
    out.l4_payload = l4.subspan(UdpHeader::kSize,
                                udp->length - UdpHeader::kSize);
    out.l4_payload_offset = l4_offset + UdpHeader::kSize;
  } else if (ip->protocol == IpProto::kTcp) {
    auto tcp = TcpHeader::parse(l4);
    if (!tcp) return false;
    out.tcp = *tcp;
    out.l4_payload = l4.subspan(TcpHeader::kSize);
    out.l4_payload_offset = l4_offset + TcpHeader::kSize;
  }
  return true;
}

std::optional<ParsedFrame> parse_frame(
    std::span<const std::uint8_t> frame) {
  std::optional<ParsedFrame> out(std::in_place);
  if (!parse_frame_into(frame, *out)) out.reset();
  return out;
}

}  // namespace prism::net
