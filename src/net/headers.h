// Wire-format header codecs: Ethernet, IPv4, UDP, TCP and VXLAN.
//
// Packets in the simulator are real byte buffers; every stage parses and
// writes genuine wire formats (network byte order, real checksums). This
// keeps the encapsulation/decapsulation path honest: a VXLAN decap bug or a
// wrong length field fails in the simulated stack just as it would in the
// kernel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/checksum.h"
#include "net/ip.h"
#include "net/mac.h"

namespace prism::net {

/// EtherType values used by the simulator.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

/// IP protocol numbers used by the simulator.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// UDP destination port carrying VXLAN (IANA assigned).
constexpr std::uint16_t kVxlanPort = 4789;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  EtherType ether_type = EtherType::kIpv4;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<EthernetHeader> parse(
      std::span<const std::uint8_t> data);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Serializes with a correct header checksum.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parses and verifies the header checksum; returns nullopt on a short
  /// buffer, non-IPv4 version, options (IHL != 5) or checksum mismatch.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload, bytes

  /// Serializes with the UDP checksum over the IPv4 pseudo-header and
  /// `payload`.
  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                 Ipv4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;

  /// Serializes with checksum zero ("no checksum", RFC 768). VXLAN outer
  /// headers use this: RFC 7348 says the outer UDP checksum SHOULD be
  /// transmitted as zero, which is what Linux does by default.
  void serialize_no_checksum(std::vector<std::uint8_t>& out) const;

  /// Parses the header. Checksum verification is separate (verify_checksum)
  /// because it needs the pseudo-header addresses.
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> data);

  /// Verifies the checksum of a full UDP datagram (header + payload).
  static bool verify_checksum(std::span<const std::uint8_t> datagram,
                              Ipv4Addr src_ip, Ipv4Addr dst_ip);
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0xffff;

  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                 Ipv4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;

  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> data);

  static bool verify_checksum(std::span<const std::uint8_t> segment,
                              Ipv4Addr src_ip, Ipv4Addr dst_ip);
};

/// VXLAN header (RFC 7348): flags + 24-bit VNI.
struct VxlanHeader {
  static constexpr std::size_t kSize = 8;

  std::uint32_t vni = 0;  // 24-bit virtual network identifier

  void serialize(std::vector<std::uint8_t>& out) const;

  /// Returns nullopt on short buffer or missing valid-VNI flag.
  static std::optional<VxlanHeader> parse(std::span<const std::uint8_t> data);
};

// ---------------------------------------------------------------------------
// Inline definitions. The codecs run several times per simulated packet, so
// they are defined here (rather than in headers.cpp) to inline into the
// parse/build loops of other translation units.

namespace detail {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

// Appends `n` bytes to `out` via resize+copy. (Equivalent to
// vector::insert at end(), but dodges a GCC 12 -Warray-bounds false
// positive in the insert-into-empty-vector grow path.)
inline void append_bytes(std::vector<std::uint8_t>& out,
                         const std::uint8_t* b, std::size_t n) {
  const std::size_t at = out.size();
  out.resize(at + n);
  std::copy(b, b + n, out.begin() + static_cast<std::ptrdiff_t>(at));
}

inline std::uint16_t get_u16(std::span<const std::uint8_t> d,
                             std::size_t at) {
  return static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
}

inline std::uint32_t get_u32(std::span<const std::uint8_t> d,
                             std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(d, at)) << 16) |
         get_u16(d, at + 2);
}

// Adds the IPv4 pseudo-header for UDP/TCP checksums.
inline void add_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src,
                              Ipv4Addr dst, IpProto proto,
                              std::uint16_t l4_length) {
  acc.add_u32(src.value);
  acc.add_u32(dst.value);
  acc.add_u16(static_cast<std::uint16_t>(proto));
  acc.add_u16(l4_length);
}

}  // namespace detail

// ---------------------------------------------------------------- Ethernet

inline void EthernetHeader::serialize(std::vector<std::uint8_t>& out) const {
  std::uint8_t b[kSize];
  std::copy(dst.bytes.begin(), dst.bytes.end(), b);
  std::copy(src.bytes.begin(), src.bytes.end(), b + 6);
  const auto type = static_cast<std::uint16_t>(ether_type);
  b[12] = static_cast<std::uint8_t>(type >> 8);
  b[13] = static_cast<std::uint8_t>(type);
  detail::append_bytes(out, b, kSize);
}

inline std::optional<EthernetHeader> EthernetHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::copy(data.begin(), data.begin() + 6, h.dst.bytes.begin());
  std::copy(data.begin() + 6, data.begin() + 12, h.src.bytes.begin());
  h.ether_type = static_cast<EtherType>(detail::get_u16(data, 12));
  return h;
}

// -------------------------------------------------------------------- IPv4

inline void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  const auto proto = static_cast<std::uint8_t>(protocol);
  // Header checksum computed directly from the fields: the one's-complement
  // sum of the ten 16-bit header words (checksum word zero), exactly what
  // internet_checksum() would produce over the serialized bytes.
  std::uint32_t s = (0x4500u | (static_cast<std::uint32_t>(dscp) << 2)) +
                    total_length + identification +
                    ((static_cast<std::uint32_t>(ttl) << 8) | proto) +
                    (src.value >> 16) + (src.value & 0xffff) +
                    (dst.value >> 16) + (dst.value & 0xffff);
  s = (s & 0xffff) + (s >> 16);
  s = (s & 0xffff) + (s >> 16);
  const auto csum = static_cast<std::uint16_t>(~s);

  std::uint8_t b[kSize];
  b[0] = 0x45;  // version 4, IHL 5
  b[1] = static_cast<std::uint8_t>(dscp << 2);
  b[2] = static_cast<std::uint8_t>(total_length >> 8);
  b[3] = static_cast<std::uint8_t>(total_length);
  b[4] = static_cast<std::uint8_t>(identification >> 8);
  b[5] = static_cast<std::uint8_t>(identification);
  b[6] = 0;  // flags + fragment offset (DF handled by TSO)
  b[7] = 0;
  b[8] = ttl;
  b[9] = proto;
  b[10] = static_cast<std::uint8_t>(csum >> 8);
  b[11] = static_cast<std::uint8_t>(csum);
  b[12] = static_cast<std::uint8_t>(src.value >> 24);
  b[13] = static_cast<std::uint8_t>(src.value >> 16);
  b[14] = static_cast<std::uint8_t>(src.value >> 8);
  b[15] = static_cast<std::uint8_t>(src.value);
  b[16] = static_cast<std::uint8_t>(dst.value >> 24);
  b[17] = static_cast<std::uint8_t>(dst.value >> 16);
  b[18] = static_cast<std::uint8_t>(dst.value >> 8);
  b[19] = static_cast<std::uint8_t>(dst.value);
  detail::append_bytes(out, b, kSize);
}

inline std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  if ((data[0] & 0x0f) != 5) return std::nullopt;  // options unsupported
  if (internet_checksum(data.first(kSize)) != 0) return std::nullopt;
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(data[1] >> 2);
  h.total_length = detail::get_u16(data, 2);
  h.identification = detail::get_u16(data, 4);
  h.ttl = data[8];
  h.protocol = static_cast<IpProto>(data[9]);
  h.src = Ipv4Addr{detail::get_u32(data, 12)};
  h.dst = Ipv4Addr{detail::get_u32(data, 16)};
  if (h.total_length < kSize || h.total_length > data.size()) {
    return std::nullopt;
  }
  return h;
}

// --------------------------------------------------------------------- UDP

inline void UdpHeader::serialize(std::vector<std::uint8_t>& out,
                                 Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                 std::span<const std::uint8_t> payload) const {
  ChecksumAccumulator acc;
  detail::add_pseudo_header(acc, src_ip, dst_ip, IpProto::kUdp, length);
  acc.add_u16(src_port);
  acc.add_u16(dst_port);
  acc.add_u16(length);
  acc.add_u16(0);
  acc.add(payload);
  std::uint16_t csum = acc.finish();
  if (csum == 0) csum = 0xffff;  // RFC 768: 0 means "no checksum"

  std::uint8_t b[kSize];
  b[0] = static_cast<std::uint8_t>(src_port >> 8);
  b[1] = static_cast<std::uint8_t>(src_port);
  b[2] = static_cast<std::uint8_t>(dst_port >> 8);
  b[3] = static_cast<std::uint8_t>(dst_port);
  b[4] = static_cast<std::uint8_t>(length >> 8);
  b[5] = static_cast<std::uint8_t>(length);
  b[6] = static_cast<std::uint8_t>(csum >> 8);
  b[7] = static_cast<std::uint8_t>(csum);
  detail::append_bytes(out, b, kSize);
}

inline void UdpHeader::serialize_no_checksum(
    std::vector<std::uint8_t>& out) const {
  detail::put_u16(out, src_port);
  detail::put_u16(out, dst_port);
  detail::put_u16(out, length);
  detail::put_u16(out, 0);  // RFC 768: 0 means "no checksum"
}

inline std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = detail::get_u16(data, 0);
  h.dst_port = detail::get_u16(data, 2);
  h.length = detail::get_u16(data, 4);
  if (h.length < kSize || h.length > data.size()) return std::nullopt;
  return h;
}

// --------------------------------------------------------------------- TCP

inline void TcpHeader::serialize(std::vector<std::uint8_t>& out,
                                 Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                 std::span<const std::uint8_t> payload) const {
  const auto l4_length = static_cast<std::uint16_t>(kSize + payload.size());
  ChecksumAccumulator acc;
  detail::add_pseudo_header(acc, src_ip, dst_ip, IpProto::kTcp, l4_length);
  acc.add_u16(src_port);
  acc.add_u16(dst_port);
  acc.add_u32(seq);
  acc.add_u32(ack);
  acc.add_u16(static_cast<std::uint16_t>((5u << 12) | flags));
  acc.add_u16(window);
  acc.add_u16(0);  // checksum placeholder
  acc.add_u16(0);  // urgent pointer
  acc.add(payload);
  const std::uint16_t csum = acc.finish();

  detail::put_u16(out, src_port);
  detail::put_u16(out, dst_port);
  detail::put_u32(out, seq);
  detail::put_u32(out, ack);
  detail::put_u16(out, static_cast<std::uint16_t>((5u << 12) | flags));
  detail::put_u16(out, window);
  detail::put_u16(out, csum);
  detail::put_u16(out, 0);
}

inline std::optional<TcpHeader> TcpHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  const std::uint16_t off_flags = detail::get_u16(data, 12);
  if ((off_flags >> 12) != 5) return std::nullopt;  // options unsupported
  TcpHeader h;
  h.src_port = detail::get_u16(data, 0);
  h.dst_port = detail::get_u16(data, 2);
  h.seq = detail::get_u32(data, 4);
  h.ack = detail::get_u32(data, 8);
  h.flags = static_cast<std::uint8_t>(off_flags & 0x3f);
  h.window = detail::get_u16(data, 14);
  return h;
}

// ------------------------------------------------------------------- VXLAN

inline void VxlanHeader::serialize(std::vector<std::uint8_t>& out) const {
  const std::uint8_t b[kSize] = {
      0x08,  // flags: valid VNI
      0,
      0,
      0,
      static_cast<std::uint8_t>(vni >> 16),
      static_cast<std::uint8_t>(vni >> 8),
      static_cast<std::uint8_t>(vni),
      0,
  };
  detail::append_bytes(out, b, kSize);
}

inline std::optional<VxlanHeader> VxlanHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if ((data[0] & 0x08) == 0) return std::nullopt;  // VNI flag required
  VxlanHeader h;
  h.vni = (static_cast<std::uint32_t>(data[4]) << 16) |
          (static_cast<std::uint32_t>(data[5]) << 8) | data[6];
  return h;
}

}  // namespace prism::net
