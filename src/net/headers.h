// Wire-format header codecs: Ethernet, IPv4, UDP, TCP and VXLAN.
//
// Packets in the simulator are real byte buffers; every stage parses and
// writes genuine wire formats (network byte order, real checksums). This
// keeps the encapsulation/decapsulation path honest: a VXLAN decap bug or a
// wrong length field fails in the simulated stack just as it would in the
// kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip.h"
#include "net/mac.h"

namespace prism::net {

/// EtherType values used by the simulator.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

/// IP protocol numbers used by the simulator.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// UDP destination port carrying VXLAN (IANA assigned).
constexpr std::uint16_t kVxlanPort = 4789;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  EtherType ether_type = EtherType::kIpv4;

  void serialize(std::vector<std::uint8_t>& out) const;
  static std::optional<EthernetHeader> parse(
      std::span<const std::uint8_t> data);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Serializes with a correct header checksum.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parses and verifies the header checksum; returns nullopt on a short
  /// buffer, non-IPv4 version, options (IHL != 5) or checksum mismatch.
  static std::optional<Ipv4Header> parse(std::span<const std::uint8_t> data);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload, bytes

  /// Serializes with the UDP checksum over the IPv4 pseudo-header and
  /// `payload`.
  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                 Ipv4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;

  /// Parses the header. Checksum verification is separate (verify_checksum)
  /// because it needs the pseudo-header addresses.
  static std::optional<UdpHeader> parse(std::span<const std::uint8_t> data);

  /// Verifies the checksum of a full UDP datagram (header + payload).
  static bool verify_checksum(std::span<const std::uint8_t> datagram,
                              Ipv4Addr src_ip, Ipv4Addr dst_ip);
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0xffff;

  void serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                 Ipv4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;

  static std::optional<TcpHeader> parse(std::span<const std::uint8_t> data);

  static bool verify_checksum(std::span<const std::uint8_t> segment,
                              Ipv4Addr src_ip, Ipv4Addr dst_ip);
};

/// VXLAN header (RFC 7348): flags + 24-bit VNI.
struct VxlanHeader {
  static constexpr std::size_t kSize = 8;

  std::uint32_t vni = 0;  // 24-bit virtual network identifier

  void serialize(std::vector<std::uint8_t>& out) const;

  /// Returns nullopt on short buffer or missing valid-VNI flag.
  static std::optional<VxlanHeader> parse(std::span<const std::uint8_t> data);
};

}  // namespace prism::net
