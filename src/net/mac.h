// Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace prism::net {

/// 48-bit Ethernet MAC address, stored in network byte order.
struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddr&) const = default;

  /// Broadcast address ff:ff:ff:ff:ff:ff.
  static MacAddr broadcast() noexcept;

  /// Deterministically generated locally-administered unicast address.
  /// Used by the testbed to assign unique MACs to simulated interfaces.
  static MacAddr make(std::uint32_t id) noexcept;

  bool is_broadcast() const noexcept;
  bool is_multicast() const noexcept;

  /// "aa:bb:cc:dd:ee:ff" rendering.
  std::string to_string() const;

  /// Parses "aa:bb:cc:dd:ee:ff"; throws std::invalid_argument on bad input.
  static MacAddr parse(const std::string& text);
};

}  // namespace prism::net

template <>
struct std::hash<prism::net::MacAddr> {
  std::size_t operator()(const prism::net::MacAddr& m) const noexcept {
    std::uint64_t v = 0;
    for (auto b : m.bytes) v = (v << 8) | b;
    return std::hash<std::uint64_t>{}(v);
  }
};
