#include "net/ip.h"

#include <cstdio>
#include <stdexcept>

namespace prism::net {

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

Ipv4Addr Ipv4Addr::parse(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) !=
      4) {
    throw std::invalid_argument("Ipv4Addr::parse: bad format: " + text);
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("Ipv4Addr::parse: octet out of range");
  }
  return of(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
            static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

}  // namespace prism::net
