// IPv4 addresses.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace prism::net {

/// IPv4 address stored as a host-order 32-bit integer.
struct Ipv4Addr {
  std::uint32_t value = 0;

  auto operator<=>(const Ipv4Addr&) const = default;

  static constexpr Ipv4Addr any() noexcept { return Ipv4Addr{0}; }

  /// Builds from dotted octets: Ipv4Addr::of(10, 0, 0, 1).
  static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b,
                               std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  /// "10.0.0.1" rendering.
  std::string to_string() const;

  /// Parses dotted-quad notation; throws std::invalid_argument on bad
  /// input.
  static Ipv4Addr parse(const std::string& text);
};

}  // namespace prism::net

template <>
struct std::hash<prism::net::Ipv4Addr> {
  std::size_t operator()(const prism::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
