// Packet buffers and frame assembly.
//
// A PacketBuf is a contiguous byte buffer with reserved headroom, mirroring
// the kernel's sk_buff data area: encapsulation prepends headers into the
// headroom without copying the payload; decapsulation strips them by
// advancing the data offset.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"

namespace prism::net {

/// Standard Ethernet MTU used throughout the simulator.
constexpr std::size_t kMtu = 1500;

/// Headroom reserved for one level of VXLAN encapsulation
/// (Ethernet + IPv4 + UDP + VXLAN).
constexpr std::size_t kEncapHeadroom = EthernetHeader::kSize +
                                       Ipv4Header::kSize + UdpHeader::kSize +
                                       VxlanHeader::kSize;

/// Byte buffer with headroom, the payload carrier of every simulated
/// packet.
///
/// Storage is recycled through sim::BufferPool: construction acquires a
/// previously used heap block when one is parked, destruction returns the
/// block to the pool. A warm steady-state packet loop therefore builds
/// frames without touching the allocator.
class PacketBuf {
 public:
  PacketBuf() = default;

  PacketBuf(PacketBuf&& other) noexcept
      : data_(std::move(other.data_)), offset_(other.offset_) {
    other.offset_ = 0;
  }
  PacketBuf& operator=(PacketBuf&& other) noexcept;

  PacketBuf(const PacketBuf& other);
  PacketBuf& operator=(const PacketBuf& other);

  ~PacketBuf();

  /// Creates a buffer holding `payload` with `headroom` free bytes in
  /// front.
  static PacketBuf with_headroom(std::size_t headroom,
                                 std::span<const std::uint8_t> payload);

  /// Creates a buffer holding `payload` with enough headroom for the
  /// packet's own L2-L4 headers plus one level of VXLAN encapsulation.
  static PacketBuf from_payload(std::span<const std::uint8_t> payload) {
    // 64 covers Ethernet + IPv4 + TCP (54) with slack.
    return with_headroom(kEncapHeadroom + 64, payload);
  }

  /// Re-initialises this buffer in place to hold `payload` behind
  /// `headroom` free bytes, reusing the existing storage capacity when it
  /// suffices. `payload` must not alias this buffer's own storage.
  void reset(std::size_t headroom, std::span<const std::uint8_t> payload);

  /// Current packet bytes (post-headroom).
  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_.data() + offset_, data_.size() - offset_};
  }

  /// Mutable view of the packet bytes, for in-place rewriting (fault
  /// injection bit-flips). Does not change the packet's length.
  std::span<std::uint8_t> mutable_bytes() noexcept {
    return {data_.data() + offset_, data_.size() - offset_};
  }

  /// Truncates the packet to its first `n` bytes (tail cut, as a link that
  /// clipped the frame would). No-op when n >= size().
  void truncate(std::size_t n) noexcept {
    if (n < size()) data_.resize(offset_ + n);
  }

  std::size_t size() const noexcept { return data_.size() - offset_; }
  bool empty() const noexcept { return size() == 0; }

  /// Prepends `header` to the packet. Uses headroom when available,
  /// otherwise reallocates (with fresh headroom).
  void push_front(std::span<const std::uint8_t> header);

  /// Strips `n` bytes from the front (e.g. decapsulation). Throws
  /// std::out_of_range if n > size().
  void pop_front(std::size_t n);

  /// Remaining headroom in bytes.
  std::size_t headroom() const noexcept { return offset_; }

 private:
  /// Returns the storage block to sim::BufferPool and leaves the buffer
  /// empty.
  void recycle_storage() noexcept;

  std::vector<std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Addressing for an L2+L3+L4 frame build.
struct FrameSpec {
  MacAddr src_mac;
  MacAddr dst_mac;
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t dscp = 0;
};

/// Builds a complete Ethernet/IPv4/UDP frame around `payload`.
PacketBuf build_udp_frame(const FrameSpec& spec,
                          std::span<const std::uint8_t> payload);

/// Builds a complete Ethernet/IPv4/TCP frame. `tcp` supplies seq/ack/flags;
/// ports are taken from `spec`.
PacketBuf build_tcp_frame(const FrameSpec& spec, const TcpHeader& tcp,
                          std::span<const std::uint8_t> payload);

/// Wraps an existing inner Ethernet frame in VXLAN (outer Ethernet + IPv4 +
/// UDP[4789] + VXLAN). Prepends in place using the buffer headroom.
void vxlan_encapsulate(PacketBuf& frame, const FrameSpec& outer,
                       std::uint32_t vni);

/// Result of parsing a frame down to L4. Spans reference the buffer passed
/// to parse_frame and are invalidated with it.
struct ParsedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  /// L4 payload (UDP payload / TCP payload). Empty for other protocols.
  std::span<const std::uint8_t> l4_payload;
  /// Offset of the L4 payload from the start of the frame.
  std::size_t l4_payload_offset = 0;

  bool is_vxlan() const noexcept {
    return udp.has_value() && udp->dst_port == kVxlanPort;
  }
};

/// Parses Ethernet/IPv4/{UDP,TCP}. Returns nullopt on malformed input
/// (short buffers, bad IP checksum, unknown EtherType).
std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

/// As parse_frame, but fills a caller-owned ParsedFrame — the hot-path
/// form, avoiding the optional<ParsedFrame> copy per packet. Returns
/// false on malformed input; `out` is clobbered either way.
bool parse_frame_into(std::span<const std::uint8_t> frame,
                      ParsedFrame& out) noexcept;

}  // namespace prism::net
