#include "net/mac.h"

#include <cstdio>
#include <stdexcept>

namespace prism::net {

MacAddr MacAddr::broadcast() noexcept {
  MacAddr m;
  m.bytes.fill(0xff);
  return m;
}

MacAddr MacAddr::make(std::uint32_t id) noexcept {
  // 0x02 prefix: locally administered, unicast.
  return MacAddr{{0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                  static_cast<std::uint8_t>(id >> 16),
                  static_cast<std::uint8_t>(id >> 8),
                  static_cast<std::uint8_t>(id)}};
}

bool MacAddr::is_broadcast() const noexcept { return *this == broadcast(); }

bool MacAddr::is_multicast() const noexcept { return (bytes[0] & 0x01) != 0; }

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

MacAddr MacAddr::parse(const std::string& text) {
  MacAddr m;
  unsigned v[6];
  if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2],
                  &v[3], &v[4], &v[5]) != 6) {
    throw std::invalid_argument("MacAddr::parse: bad format: " + text);
  }
  for (int i = 0; i < 6; ++i) {
    if (v[i] > 0xff) {
      throw std::invalid_argument("MacAddr::parse: octet out of range");
    }
    m.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i]);
  }
  return m;
}

}  // namespace prism::net
