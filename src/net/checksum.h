// RFC 1071 Internet checksum.
//
// Header codecs fill and verify real checksums so that corrupted or
// mis-encoded packets are caught by the simulated protocol stack exactly as
// they would be by a real one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace prism::net {

/// One's-complement 16-bit Internet checksum over `data`. Returns the value
/// to store in a header checksum field (i.e. already complemented).
/// Verifying: checksum over a buffer with a correct embedded checksum
/// yields 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Incremental accumulator, used for pseudo-header + payload sums (UDP/TCP).
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) noexcept;
  void add_u16(std::uint16_t value) noexcept;
  void add_u32(std::uint32_t value) noexcept;

  /// Finalized (complemented) checksum.
  std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true when an odd byte is pending
};

}  // namespace prism::net
