// RFC 1071 Internet checksum.
//
// Header codecs fill and verify real checksums so that corrupted or
// mis-encoded packets are caught by the simulated protocol stack exactly as
// they would be by a real one.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace prism::net {

/// Incremental accumulator, used for pseudo-header + payload sums (UDP/TCP).
/// Fully inline: the checksum runs several times per simulated packet.
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) noexcept {
    std::size_t i = 0;
    if (odd_ && !data.empty()) {
      // Complete the pending odd byte: it was the high octet of a 16-bit
      // word, this byte is the low octet.
      sum_ += data[0];
      odd_ = false;
      i = 1;
    }
    if constexpr (std::endian::native == std::endian::little) {
      // Fast path: fold eight bytes per step. The one's-complement sum is
      // endian-agnostic up to a final byte swap, so the chunks are summed
      // as native little-endian 16-bit words and the folded partial sum is
      // swapped once into the big-endian word arithmetic the RFC uses. Two
      // independent accumulators break the add dependency chain.
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      for (; i + 16 <= data.size(); i += 16) {
        std::uint64_t w0;
        std::uint64_t w1;
        std::memcpy(&w0, data.data() + i, 8);
        std::memcpy(&w1, data.data() + i + 8, 8);
        lo += (w0 & 0xffffffffu) + (w0 >> 32);
        hi += (w1 & 0xffffffffu) + (w1 >> 32);
      }
      for (; i + 8 <= data.size(); i += 8) {
        std::uint64_t w;
        std::memcpy(&w, data.data() + i, 8);
        lo += (w & 0xffffffffu) + (w >> 32);
      }
      std::uint64_t local = lo + hi;
      if (local != 0) {
        while (local >> 16) local = (local & 0xffff) + (local >> 16);
        sum_ += ((local & 0xff) << 8) | (local >> 8);
      }
    }
    for (; i + 1 < data.size(); i += 2) {
      sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    }
    if (i < data.size()) {
      sum_ += static_cast<std::uint32_t>(data[i]) << 8;
      odd_ = true;
    }
  }

  void add_u16(std::uint16_t value) noexcept {
    if (!odd_) {
      sum_ += value;
    } else {
      // The pending odd byte is the high octet of the current word: this
      // value's high octet completes it, its low octet starts the next.
      sum_ += value >> 8;
      sum_ += static_cast<std::uint32_t>(value & 0xff) << 8;
    }
  }

  void add_u32(std::uint32_t value) noexcept {
    add_u16(static_cast<std::uint16_t>(value >> 16));
    add_u16(static_cast<std::uint16_t>(value));
  }

  /// Finalized (complemented) checksum.
  std::uint16_t finish() const noexcept {
    std::uint64_t s = sum_;
    while (s >> 16) s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s);
  }

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true when an odd byte is pending
};

/// One's-complement 16-bit Internet checksum over `data`. Returns the value
/// to store in a header checksum field (i.e. already complemented).
/// Verifying: checksum over a buffer with a correct embedded checksum
/// yields 0.
inline std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

}  // namespace prism::net
