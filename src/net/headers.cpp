#include "net/headers.h"

#include "net/checksum.h"

namespace prism::net {

// The per-packet codecs are inline in headers.h; only the cold checksum
// verifiers (used by corruption tests and diagnostic paths) live here.

bool UdpHeader::verify_checksum(std::span<const std::uint8_t> datagram,
                                Ipv4Addr src_ip, Ipv4Addr dst_ip) {
  if (datagram.size() < kSize) return false;
  const std::uint16_t stored = detail::get_u16(datagram, 6);
  if (stored == 0) return true;  // checksum not used
  ChecksumAccumulator acc;
  detail::add_pseudo_header(acc, src_ip, dst_ip, IpProto::kUdp,
                            static_cast<std::uint16_t>(datagram.size()));
  acc.add(datagram);
  // Sum over a datagram with a valid checksum folds to zero, i.e. finish()
  // (which complements) yields 0 or the sum equals 0xffff pre-complement.
  return acc.finish() == 0;
}

bool TcpHeader::verify_checksum(std::span<const std::uint8_t> segment,
                                Ipv4Addr src_ip, Ipv4Addr dst_ip) {
  if (segment.size() < kSize) return false;
  ChecksumAccumulator acc;
  detail::add_pseudo_header(acc, src_ip, dst_ip, IpProto::kTcp,
                            static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish() == 0;
}

}  // namespace prism::net
