#include "net/headers.h"

#include "net/checksum.h"

namespace prism::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(d, at)) << 16) |
         get_u16(d, at + 2);
}

// Adds the IPv4 pseudo-header for UDP/TCP checksums.
void add_pseudo_header(ChecksumAccumulator& acc, Ipv4Addr src, Ipv4Addr dst,
                       IpProto proto, std::uint16_t l4_length) {
  acc.add_u32(src.value);
  acc.add_u32(dst.value);
  acc.add_u16(static_cast<std::uint16_t>(proto));
  acc.add_u16(l4_length);
}

}  // namespace

// ---------------------------------------------------------------- Ethernet

void EthernetHeader::serialize(std::vector<std::uint8_t>& out) const {
  out.insert(out.end(), dst.bytes.begin(), dst.bytes.end());
  out.insert(out.end(), src.bytes.begin(), src.bytes.end());
  put_u16(out, static_cast<std::uint16_t>(ether_type));
}

std::optional<EthernetHeader> EthernetHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::copy(data.begin(), data.begin() + 6, h.dst.bytes.begin());
  std::copy(data.begin() + 6, data.begin() + 12, h.src.bytes.begin());
  h.ether_type = static_cast<EtherType>(get_u16(data, 12));
  return h;
}

// -------------------------------------------------------------------- IPv4

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(static_cast<std::uint8_t>(dscp << 2));
  put_u16(out, total_length);
  put_u16(out, identification);
  put_u16(out, 0);  // flags + fragment offset (DF handled by TSO model)
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(protocol));
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src.value);
  put_u32(out, dst.value);
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + start, kSize));
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum);
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  if ((data[0] & 0x0f) != 5) return std::nullopt;  // options unsupported
  if (internet_checksum(data.first(kSize)) != 0) return std::nullopt;
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(data[1] >> 2);
  h.total_length = get_u16(data, 2);
  h.identification = get_u16(data, 4);
  h.ttl = data[8];
  h.protocol = static_cast<IpProto>(data[9]);
  h.src = Ipv4Addr{get_u32(data, 12)};
  h.dst = Ipv4Addr{get_u32(data, 16)};
  if (h.total_length < kSize || h.total_length > data.size()) {
    return std::nullopt;
  }
  return h;
}

// --------------------------------------------------------------------- UDP

void UdpHeader::serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                          Ipv4Addr dst_ip,
                          std::span<const std::uint8_t> payload) const {
  ChecksumAccumulator acc;
  add_pseudo_header(acc, src_ip, dst_ip, IpProto::kUdp, length);
  acc.add_u16(src_port);
  acc.add_u16(dst_port);
  acc.add_u16(length);
  acc.add_u16(0);
  acc.add(payload);
  std::uint16_t csum = acc.finish();
  if (csum == 0) csum = 0xffff;  // RFC 768: 0 means "no checksum"

  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u16(out, length);
  put_u16(out, csum);
}

std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = get_u16(data, 0);
  h.dst_port = get_u16(data, 2);
  h.length = get_u16(data, 4);
  if (h.length < kSize || h.length > data.size()) return std::nullopt;
  return h;
}

bool UdpHeader::verify_checksum(std::span<const std::uint8_t> datagram,
                                Ipv4Addr src_ip, Ipv4Addr dst_ip) {
  if (datagram.size() < kSize) return false;
  const std::uint16_t stored = get_u16(datagram, 6);
  if (stored == 0) return true;  // checksum not used
  ChecksumAccumulator acc;
  add_pseudo_header(acc, src_ip, dst_ip, IpProto::kUdp,
                    static_cast<std::uint16_t>(datagram.size()));
  acc.add(datagram);
  // Sum over a datagram with a valid checksum folds to zero, i.e. finish()
  // (which complements) yields 0 or the sum equals 0xffff pre-complement.
  return acc.finish() == 0;
}

// --------------------------------------------------------------------- TCP

void TcpHeader::serialize(std::vector<std::uint8_t>& out, Ipv4Addr src_ip,
                          Ipv4Addr dst_ip,
                          std::span<const std::uint8_t> payload) const {
  const auto l4_length =
      static_cast<std::uint16_t>(kSize + payload.size());
  ChecksumAccumulator acc;
  add_pseudo_header(acc, src_ip, dst_ip, IpProto::kTcp, l4_length);
  acc.add_u16(src_port);
  acc.add_u16(dst_port);
  acc.add_u32(seq);
  acc.add_u32(ack);
  acc.add_u16(static_cast<std::uint16_t>((5u << 12) | flags));
  acc.add_u16(window);
  acc.add_u16(0);  // checksum placeholder
  acc.add_u16(0);  // urgent pointer
  acc.add(payload);
  const std::uint16_t csum = acc.finish();

  put_u16(out, src_port);
  put_u16(out, dst_port);
  put_u32(out, seq);
  put_u32(out, ack);
  put_u16(out, static_cast<std::uint16_t>((5u << 12) | flags));
  put_u16(out, window);
  put_u16(out, csum);
  put_u16(out, 0);
}

std::optional<TcpHeader> TcpHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  const std::uint16_t off_flags = get_u16(data, 12);
  if ((off_flags >> 12) != 5) return std::nullopt;  // options unsupported
  TcpHeader h;
  h.src_port = get_u16(data, 0);
  h.dst_port = get_u16(data, 2);
  h.seq = get_u32(data, 4);
  h.ack = get_u32(data, 8);
  h.flags = static_cast<std::uint8_t>(off_flags & 0x3f);
  h.window = get_u16(data, 14);
  return h;
}

bool TcpHeader::verify_checksum(std::span<const std::uint8_t> segment,
                                Ipv4Addr src_ip, Ipv4Addr dst_ip) {
  if (segment.size() < kSize) return false;
  ChecksumAccumulator acc;
  add_pseudo_header(acc, src_ip, dst_ip, IpProto::kTcp,
                    static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish() == 0;
}

// ------------------------------------------------------------------- VXLAN

void VxlanHeader::serialize(std::vector<std::uint8_t>& out) const {
  out.push_back(0x08);  // flags: valid VNI
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  out.push_back(static_cast<std::uint8_t>(vni >> 16));
  out.push_back(static_cast<std::uint8_t>(vni >> 8));
  out.push_back(static_cast<std::uint8_t>(vni));
  out.push_back(0);
}

std::optional<VxlanHeader> VxlanHeader::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return std::nullopt;
  if ((data[0] & 0x08) == 0) return std::nullopt;  // VNI flag required
  VxlanHeader h;
  h.vni = (static_cast<std::uint32_t>(data[4]) << 16) |
          (static_cast<std::uint32_t>(data[5]) << 8) | data[6];
  return h;
}

}  // namespace prism::net
