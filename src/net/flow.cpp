#include "net/flow.h"

#include "net/packet.h"

namespace prism::net {

std::string FiveTuple::to_string() const {
  std::string proto = protocol == IpProto::kTcp ? "tcp" : "udp";
  return proto + " " + src_ip.to_string() + ":" +
         std::to_string(src_port) + " -> " + dst_ip.to_string() + ":" +
         std::to_string(dst_port);
}

FiveTuple flow_of(const ParsedFrame& frame) {
  FiveTuple f;
  f.src_ip = frame.ip.src;
  f.dst_ip = frame.ip.dst;
  f.protocol = frame.ip.protocol;
  if (frame.udp) {
    f.src_port = frame.udp->src_port;
    f.dst_port = frame.udp->dst_port;
  } else if (frame.tcp) {
    f.src_port = frame.tcp->src_port;
    f.dst_port = frame.tcp->dst_port;
  }
  return f;
}

}  // namespace prism::net
