#include "net/flow.h"

#include "net/packet.h"

namespace prism::net {

std::string FiveTuple::to_string() const {
  std::string proto = protocol == IpProto::kTcp ? "tcp" : "udp";
  return proto + " " + src_ip.to_string() + ":" +
         std::to_string(src_port) + " -> " + dst_ip.to_string() + ":" +
         std::to_string(dst_port);
}

std::optional<FiveTuple> fast_flow(
    std::span<const std::uint8_t> frame) noexcept {
  constexpr std::size_t kL4Offset = EthernetHeader::kSize + Ipv4Header::kSize;
  if (frame.size() < kL4Offset) return std::nullopt;
  if (frame[12] != 0x08 || frame[13] != 0x00) return std::nullopt;  // !IPv4

  FiveTuple f;
  f.protocol = static_cast<IpProto>(frame[23]);
  f.src_ip.value = (std::uint32_t{frame[26]} << 24) |
                   (std::uint32_t{frame[27]} << 16) |
                   (std::uint32_t{frame[28]} << 8) | frame[29];
  f.dst_ip.value = (std::uint32_t{frame[30]} << 24) |
                   (std::uint32_t{frame[31]} << 16) |
                   (std::uint32_t{frame[32]} << 8) | frame[33];
  if ((f.protocol == IpProto::kUdp || f.protocol == IpProto::kTcp) &&
      frame.size() >= kL4Offset + 4) {
    f.src_port = static_cast<std::uint16_t>(
        (std::uint16_t{frame[kL4Offset]} << 8) | frame[kL4Offset + 1]);
    f.dst_port = static_cast<std::uint16_t>(
        (std::uint16_t{frame[kL4Offset + 2]} << 8) | frame[kL4Offset + 3]);
  }
  return f;
}

FiveTuple flow_of(const ParsedFrame& frame) {
  FiveTuple f;
  f.src_ip = frame.ip.src;
  f.dst_ip = frame.ip.dst;
  f.protocol = frame.ip.protocol;
  if (frame.udp) {
    f.src_port = frame.udp->src_port;
    f.dst_port = frame.udp->dst_port;
  } else if (frame.tcp) {
    f.src_port = frame.tcp->src_port;
    f.dst_port = frame.tcp->dst_port;
  }
  return f;
}

}  // namespace prism::net
