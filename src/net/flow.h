// Flow identification.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "net/headers.h"
#include "net/ip.h"

namespace prism::net {

/// Classic 5-tuple identifying a transport flow.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto protocol = IpProto::kUdp;

  auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the other direction.
  FiveTuple reversed() const noexcept {
    return {dst_ip, src_ip, dst_port, src_port, protocol};
  }

  std::string to_string() const;
};

/// Extracts the 5-tuple from a parsed frame. Ports are zero for
/// non-UDP/TCP protocols.
FiveTuple flow_of(const struct ParsedFrame& frame);

/// Extracts the 5-tuple straight from frame bytes without the checksum
/// verification a full parse performs — for hot paths (e.g. VXLAN source
/// port entropy) that only hash the flow of frames the local stack just
/// built. Returns nullopt for non-IPv4 or truncated frames.
std::optional<FiveTuple> fast_flow(
    std::span<const std::uint8_t> frame) noexcept;

}  // namespace prism::net

template <>
struct std::hash<prism::net::FiveTuple> {
  std::size_t operator()(const prism::net::FiveTuple& f) const noexcept {
    std::uint64_t a = (std::uint64_t{f.src_ip.value} << 32) | f.dst_ip.value;
    std::uint64_t b = (std::uint64_t{f.src_port} << 32) |
                      (std::uint64_t{f.dst_port} << 16) |
                      static_cast<std::uint64_t>(f.protocol);
    // 64-bit mix (splitmix-style) of the two halves.
    std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
