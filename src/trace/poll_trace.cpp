#include "trace/poll_trace.h"

#include <cstdio>
#include <stdexcept>

namespace prism::trace {

PollTrace::PollTrace(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PollTrace: capacity must be positive");
  }
}

PollTrace::NameId PollTrace::intern(std::string_view name) {
  const auto it = name_index_.find(std::string(name));
  if (it != name_index_.end()) return it->second;
  if (names_.size() > 0xffff) {
    throw std::length_error("PollTrace: name table full");
  }
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), id);
  return id;
}

void PollTrace::on_poll_ids(sim::Time at, NameId device,
                            const NameId* poll_list,
                            std::size_t poll_list_len, int packets) {
  CompactRecord rec;
  rec.iteration = ++iterations_;
  rec.at = at;
  rec.packets = packets;
  rec.device = device;
  if (poll_list_len > kMaxPollList) {
    ++truncated_;
    poll_list_len = kMaxPollList;
  }
  rec.list_len = static_cast<std::uint8_t>(poll_list_len);
  for (std::size_t i = 0; i < poll_list_len; ++i) rec.list[i] = poll_list[i];

  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

void PollTrace::on_poll(sim::Time at, const std::string& device,
                        std::vector<std::string> poll_list, int packets) {
  std::array<NameId, kMaxPollList> ids{};
  const std::size_t n = poll_list.size();
  for (std::size_t i = 0; i < n && i < kMaxPollList; ++i) {
    ids[i] = intern(poll_list[i]);
  }
  on_poll_ids(at, intern(device), ids.data(), n, packets);
}

void PollTrace::set_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PollTrace: capacity must be positive");
  }
  capacity_ = capacity;
  clear();
  ring_.shrink_to_fit();
}

std::vector<PollRecord> PollTrace::records() const {
  std::vector<PollRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const CompactRecord& c = at_index(i);
    PollRecord r;
    r.iteration = c.iteration;
    r.at = c.at;
    r.packets = c.packets;
    r.device = names_[c.device];
    r.poll_list.reserve(c.list_len);
    for (std::size_t j = 0; j < c.list_len; ++j) {
      r.poll_list.push_back(names_[c.list[j]]);
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::string> PollTrace::device_order() const {
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(names_[at_index(i).device]);
  }
  return out;
}

std::string PollTrace::render(std::size_t max_rows) const {
  std::string out = "Iter.  Device  Poll list\n";
  char buf[32];
  for (std::size_t i = 0; i < ring_.size() && i < max_rows; ++i) {
    const CompactRecord& r = at_index(i);
    std::snprintf(buf, sizeof(buf), "%-5llu  %-6s  [",
                  static_cast<unsigned long long>(r.iteration),
                  names_[r.device].c_str());
    out += buf;
    for (std::size_t j = 0; j < r.list_len; ++j) {
      if (j != 0) out += ", ";
      out += names_[r.list[j]];
    }
    out += "]\n";
  }
  return out;
}

}  // namespace prism::trace
