#include "trace/poll_trace.h"

#include <cstdio>

namespace prism::trace {

void PollTrace::on_poll(sim::Time at, const std::string& device,
                        std::vector<std::string> poll_list, int packets) {
  records_.push_back(PollRecord{records_.size() + 1, at, device,
                                std::move(poll_list), packets});
}

std::vector<std::string> PollTrace::device_order() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.device);
  return out;
}

std::string PollTrace::render(std::size_t max_rows) const {
  std::string out = "Iter.  Device  Poll list\n";
  char buf[32];
  for (const auto& r : records_) {
    if (r.iteration > max_rows) break;
    std::snprintf(buf, sizeof(buf), "%-5llu  %-6s  [",
                  static_cast<unsigned long long>(r.iteration),
                  r.device.c_str());
    out += buf;
    for (std::size_t i = 0; i < r.poll_list.size(); ++i) {
      if (i != 0) out += ", ";
      out += r.poll_list[i];
    }
    out += "]\n";
  }
  return out;
}

}  // namespace prism::trace
