#include "trace/packet_trace.h"

#include <cstdio>
#include <stdexcept>

namespace prism::trace {

PacketTrace::PacketTrace(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketTrace: capacity must be positive");
  }
}

void PacketTrace::set_capacity(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("PacketTrace: capacity must be positive");
  }
  capacity_ = capacity;
  clear();
  ring_.shrink_to_fit();
}

std::vector<PacketTrace::Entry> PacketTrace::entries() const {
  std::vector<Entry> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(entry(i));
  return out;
}

double PacketTrace::mean_interval_ns(
    sim::Time kernel::SkbTimestamps::*from,
    sim::Time kernel::SkbTimestamps::*to) const {
  double sum = 0;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Entry& e = entry(i);
    const sim::Time a = e.ts.*from;
    const sim::Time b = e.ts.*to;
    if (a < 0 || b < 0) continue;
    sum += static_cast<double>(b - a);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::string PacketTrace::render_breakdown() const {
  struct Hop {
    const char* label;
    sim::Time kernel::SkbTimestamps::*from;
    sim::Time kernel::SkbTimestamps::*to;
  };
  static constexpr Hop kHops[] = {
      {"nic ring -> stage1 (eth) done", &kernel::SkbTimestamps::nic_rx,
       &kernel::SkbTimestamps::stage1_done},
      {"stage1 -> stage2 (br) done", &kernel::SkbTimestamps::stage1_done,
       &kernel::SkbTimestamps::stage2_done},
      {"stage2 -> stage3 (veth) done", &kernel::SkbTimestamps::stage2_done,
       &kernel::SkbTimestamps::stage3_done},
      {"nic ring -> socket", &kernel::SkbTimestamps::nic_rx,
       &kernel::SkbTimestamps::socket_enqueue},
  };
  std::string out = "per-stage latency breakdown (mean):\n";
  char buf[128];
  for (const auto& hop : kHops) {
    const double v = mean_interval_ns(hop.from, hop.to);
    std::snprintf(buf, sizeof(buf), "  %-32s %10.2f us\n", hop.label,
                  v / 1e3);
    out += buf;
  }
  return out;
}

}  // namespace prism::trace
