// Per-packet life-cycle tracing.
//
// Collects the pipeline timestamps every delivered skb carries, enabling
// the per-stage latency breakdowns behind the paper's analysis (where does
// a packet spend its time: NIC ring, stage queues, socket).
//
// Entries are fixed-size and live in a bounded ring: long bench sweeps
// keep the newest `capacity` packets and count the overwritten ones in
// dropped_records() instead of growing without bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/skb.h"
#include "sim/time.h"

namespace prism::trace {

/// Accumulates delivered-packet records; attach to a SocketDeliverer.
class PacketTrace {
 public:
  struct Entry {
    kernel::SkbTimestamps ts;
    sim::Time delivered = 0;
    bool high_priority = false;
    int segments = 1;
  };

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit PacketTrace(std::size_t capacity = kDefaultCapacity);

  void on_delivered(const kernel::Skb& skb, sim::Time at) {
    push(Entry{skb.ts, at, skb.high_priority(), skb.segments});
  }

  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Entries overwritten because the ring was full.
  std::uint64_t dropped_records() const noexcept { return dropped_; }

  /// Re-bounds the ring; clears retained entries.
  void set_capacity(std::size_t capacity);

  /// i-th retained entry, oldest first.
  const Entry& entry(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  /// Materializes the retained entries, oldest first.
  std::vector<Entry> entries() const;

  void clear() noexcept {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Mean time spent between two pipeline points across all entries that
  /// traversed both (e.g. nic_rx -> stage1_done). Returns 0 when none.
  double mean_interval_ns(sim::Time kernel::SkbTimestamps::*from,
                          sim::Time kernel::SkbTimestamps::*to) const;

  /// Renders a per-stage latency breakdown table (mean ns per hop).
  std::string render_breakdown() const;

 private:
  void push(const Entry& e) {
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }

  std::size_t capacity_;
  std::vector<Entry> ring_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace prism::trace
