// Per-packet life-cycle tracing.
//
// Collects the pipeline timestamps every delivered skb carries, enabling
// the per-stage latency breakdowns behind the paper's analysis (where does
// a packet spend its time: NIC ring, stage queues, socket).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/skb.h"
#include "sim/time.h"

namespace prism::trace {

/// Accumulates delivered-packet records; attach to a SocketDeliverer.
class PacketTrace {
 public:
  struct Entry {
    kernel::SkbTimestamps ts;
    sim::Time delivered = 0;
    bool high_priority = false;
    int segments = 1;
  };

  void on_delivered(const kernel::Skb& skb, sim::Time at) {
    entries_.push_back(
        Entry{skb.ts, at, skb.high_priority(), skb.segments});
  }

  const std::vector<Entry>& entries() const noexcept { return entries_; }
  void clear() noexcept { entries_.clear(); }

  /// Mean time spent between two pipeline points across all entries that
  /// traversed both (e.g. nic_rx -> stage1_done). Returns 0 when none.
  double mean_interval_ns(sim::Time kernel::SkbTimestamps::*from,
                          sim::Time kernel::SkbTimestamps::*to) const;

  /// Renders a per-stage latency breakdown table (mean ns per hop).
  std::string render_breakdown() const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace prism::trace
