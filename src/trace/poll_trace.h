// NAPI poll-order tracing.
//
// The paper traced the kernel's NAPI device polling order with eBPF to
// expose the interleaved processing of vanilla NAPI (Fig. 6a) versus
// PRISM's streamlined order (Fig. 6b). This collector plays the same role
// for the simulated engine: every poll iteration records which device was
// polled and a snapshot of the poll list afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace prism::trace {

/// One net_rx_action loop iteration.
struct PollRecord {
  std::uint64_t iteration = 0;       ///< global iteration counter
  sim::Time at = 0;                  ///< simulated time of the poll
  std::string device;                ///< device polled in this iteration
  std::vector<std::string> poll_list;  ///< list contents after requeue
  int packets = 0;                   ///< packets processed by this poll
};

/// Accumulates poll records; attach to a NetRxEngine with set_poll_trace.
class PollTrace {
 public:
  void on_poll(sim::Time at, const std::string& device,
               std::vector<std::string> poll_list, int packets);

  const std::vector<PollRecord>& records() const noexcept {
    return records_;
  }

  /// Device names in poll order, e.g. {"eth", "br", "eth", "veth", ...}.
  std::vector<std::string> device_order() const;

  /// Renders records in the format of the paper's Fig. 6 table.
  std::string render(std::size_t max_rows = 32) const;

  void clear() noexcept { records_.clear(); }

 private:
  std::vector<PollRecord> records_;
};

}  // namespace prism::trace
