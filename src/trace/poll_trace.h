// NAPI poll-order tracing.
//
// The paper traced the kernel's NAPI device polling order with eBPF to
// expose the interleaved processing of vanilla NAPI (Fig. 6a) versus
// PRISM's streamlined order (Fig. 6b). This collector plays the same role
// for the simulated engine: every poll iteration records which device was
// polled and a snapshot of the poll list afterwards.
//
// Storage is a bounded ring of fixed-size records — device names are
// interned to small ids at attach time and resolved back to strings only
// when rendering, so a poll iteration costs a handful of integer stores
// and long sweeps cannot balloon RSS (the oldest records are overwritten
// and counted in dropped_records()).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace prism::trace {

/// One net_rx_action loop iteration, resolved for consumption (tests,
/// rendering). The in-ring representation is compact; this is the
/// materialized view records() returns.
struct PollRecord {
  std::uint64_t iteration = 0;       ///< global iteration counter
  sim::Time at = 0;                  ///< simulated time of the poll
  std::string device;                ///< device polled in this iteration
  std::vector<std::string> poll_list;  ///< list contents after requeue
  int packets = 0;                   ///< packets processed by this poll
};

/// Accumulates poll records; attach to a NetRxEngine with set_poll_trace.
class PollTrace {
 public:
  using NameId = std::uint16_t;

  /// Retained records by default; tune with the constructor or
  /// set_capacity() for long sweeps.
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  /// Poll-list entries stored per record; longer lists are truncated
  /// (counted in truncated_lists()). Real poll lists hold one entry per
  /// pipeline device on the CPU, far below this bound.
  static constexpr std::size_t kMaxPollList = 12;

  explicit PollTrace(std::size_t capacity = kDefaultCapacity);

  /// Resolves a device name to its interned id (registering it on first
  /// use). Producers intern once per device and record ids.
  NameId intern(std::string_view name);

  /// Hot path: records one poll iteration from interned ids.
  void on_poll_ids(sim::Time at, NameId device, const NameId* poll_list,
                   std::size_t poll_list_len, int packets);

  /// Convenience overload (tests, ad-hoc producers): interns on the fly.
  void on_poll(sim::Time at, const std::string& device,
               std::vector<std::string> poll_list, int packets);

  /// Number of retained records (<= capacity).
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Records overwritten because the ring was full.
  std::uint64_t dropped_records() const noexcept { return dropped_; }

  /// Poll-list snapshots cut off at kMaxPollList entries.
  std::uint64_t truncated_lists() const noexcept { return truncated_; }

  /// Re-bounds the ring. Clears retained records (not the name table).
  void set_capacity(std::size_t capacity);

  /// Materializes the retained records, oldest first.
  std::vector<PollRecord> records() const;

  /// Device names in poll order, e.g. {"eth", "br", "eth", "veth", ...}.
  std::vector<std::string> device_order() const;

  /// Renders records in the format of the paper's Fig. 6 table.
  std::string render(std::size_t max_rows = 32) const;

  void clear() noexcept {
    ring_.clear();
    head_ = 0;
    iterations_ = 0;
    dropped_ = 0;
    truncated_ = 0;
  }

 private:
  struct CompactRecord {
    std::uint64_t iteration = 0;
    sim::Time at = 0;
    int packets = 0;
    NameId device = 0;
    std::uint8_t list_len = 0;
    std::array<NameId, kMaxPollList> list{};
  };

  const CompactRecord& at_index(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  std::size_t capacity_;
  std::vector<CompactRecord> ring_;
  std::size_t head_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t truncated_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_index_;
};

}  // namespace prism::trace
