// Wall-clock profiler for the parallel lane engine.
//
// The conservative-window scheduler (sim/lane.h) answers "was the run
// correct"; this profiler answers "why did it run at this speed". Per
// window round it records, for every lane, the window's simulated length,
// the events it executed and the wall-clock time they took (busy), plus
// the messages its inboxes delivered at the round's edge; and, for every
// worker thread, the round's wall time split into barrier wait, busy work
// and idle slack. The window-computation step additionally attributes
// each round to its *critical lane* — the lane whose next pending event
// bounded the release-time fixpoint, i.e. the lane the whole round was
// waiting on — so a flat scaling curve can be read back to "lane 3 set
// the pace in 80% of rounds".
//
// Recording is zero-allocation on the hot path: every per-round record
// lands in a ring preallocated at attach time (overwrites are counted,
// never silent), and the per-lane / per-worker totals are plain adds into
// preallocated slots. The LaneSet only touches the profiler through a
// nullable pointer, so a detached engine pays a single branch per round;
// under -DPRISM_TELEMETRY=OFF LaneSet::set_profiler() ignores the
// attach entirely and the engine compiles back to its unprofiled shape.
//
// Wall-clock readings are *sampled*: rounds are often shorter than a
// microsecond, so reading the clock six times per round would cost more
// than the rounds themselves (a measured ~30% slowdown on short-window
// workloads). Only every sample_every()-th round pays the clock reads
// and produces LaneRound/WorkerRound records. The integer totals —
// events, simulated time, inbox messages/high-water/spills, round and
// critical-path counts — stay exact anyway because they come from
// counters the engine maintains regardless (simulator event counts,
// lane clocks, SPSC push/high-water/spill counters, the window
// counter), snapshotted once per run_until: an unsampled round pays the
// profiler nothing beyond the sampling check itself. busy/barrier/
// idle/wall totals cover the sampled rounds only (divide by
// sampled_rounds for per-round averages); ratios like busy_imbalance()
// are unaffected. The sampled round indices depend only on the round
// counter, so profiled runs remain schedule-deterministic at any
// thread count.
//
// The profiler accumulates across run_until() calls (rounds keep
// numbering monotonically); reset() starts a fresh capture. Snapshots
// are consumed by telemetry/rollup.{h,cpp}: lanes_json() renders the
// "prism/lanes" proc document and export_lane_trace() turns the retained
// rounds into per-lane Chrome-trace tracks.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/time.h"

#ifndef PRISM_TELEMETRY_ENABLED
#define PRISM_TELEMETRY_ENABLED 1
#endif

namespace prism::sim {

class LaneProfiler {
 public:
  /// One sampled (round, lane) execution record.
  struct LaneRound {
    std::uint64_t round = 0;   ///< window round number, 1-based
    std::uint32_t lane = 0;
    std::uint32_t worker = 0;  ///< OS worker that ran the lane this round
    Time window_start = 0;     ///< lane clock when the window opened
    Time window_end = 0;       ///< this round's horizon for the lane
    std::uint64_t events = 0;  ///< events executed inside the window
    std::uint64_t busy_ns = 0;  ///< wall ns spent executing them
    std::uint32_t inbox_msgs = 0;  ///< cross-lane arrivals drained
  };

  /// One sampled (round, worker) accounting record. The three components
  /// are disjoint wall-clock subintervals of the round, so
  /// barrier_wait_ns + busy_ns + idle_ns() <= wall_ns always holds and
  /// idle is the (non-negative) remainder.
  struct WorkerRound {
    std::uint64_t round = 0;
    std::uint32_t worker = 0;
    std::uint64_t wall_ns = 0;     ///< drain start -> second barrier release
    std::uint64_t barrier_wait_ns = 0;  ///< both barrier waits of the round
    std::uint64_t busy_ns = 0;     ///< inbox drains + lane execution

    std::uint64_t idle_ns() const noexcept {
      const std::uint64_t used = barrier_wait_ns + busy_ns;
      return wall_ns > used ? wall_ns - used : 0;
    }
  };

  /// Whole-capture aggregate for one lane. events / sim_ns / inbox
  /// counters are exact over the capture — snapshotted from counters the
  /// engine maintains anyway at the end of each run (zero hot-path
  /// cost); busy_ns covers the sampled rounds only.
  struct LaneTotals {
    std::uint64_t events = 0;   ///< events the lane executed
    /// Rounds that carry wall-clock readings; busy_ns sums over exactly
    /// these.
    std::uint64_t sampled_rounds = 0;
    std::uint64_t busy_ns = 0;  ///< wall ns executing, sampled rounds only
    Time sim_ns = 0;            ///< simulated time advanced while profiled
    std::uint64_t inbox_msgs = 0;        ///< cross-lane arrivals received
    std::uint32_t inbox_high_water = 0;  ///< max inbox backlog observed
    std::uint64_t inbox_spills = 0;      ///< ring overflows
    /// Rounds whose release-time fixpoint this lane bounded (its next
    /// pending event was the round's global minimum).
    std::uint64_t critical_rounds = 0;
  };

  /// Whole-capture aggregate for one worker thread; covers the sampled
  /// rounds only (the unsampled ones never read the clock).
  struct WorkerTotals {
    std::uint64_t rounds = 0;  ///< sampled rounds
    std::uint64_t wall_ns = 0;
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t busy_ns = 0;

    std::uint64_t idle_ns() const noexcept {
      const std::uint64_t used = barrier_wait_ns + busy_ns;
      return wall_ns > used ? wall_ns - used : 0;
    }
  };

  static constexpr std::size_t kDefaultRoundCapacity = 1 << 14;
  /// Every how-many-th round pays the clock reads by default. 64 keeps
  /// the measured overhead well inside the 3% budget on sub-microsecond
  /// rounds while still sampling thousands of rounds per second.
  static constexpr std::uint64_t kDefaultSampleEvery = 64;

  /// `round_capacity` bounds each record ring (LaneRound and WorkerRound
  /// separately); the oldest records are overwritten — and counted — once
  /// a ring fills. Totals are exact regardless of ring retention.
  /// `sample_every` sets the wall-clock sampling period (0 -> default;
  /// 1 = every round, for tests and fine-grained traces).
  explicit LaneProfiler(std::size_t round_capacity = kDefaultRoundCapacity,
                        std::uint64_t sample_every = kDefaultSampleEvery);

  LaneProfiler(const LaneProfiler&) = delete;
  LaneProfiler& operator=(const LaneProfiler&) = delete;

  // ------------------------------------------------- LaneSet-facing hooks
  // (Hot-path: called with the profiler attached; every record is plain
  // stores into preallocated storage.)

  /// Sizes per-lane/per-worker slots. Called by LaneSet::run_until();
  /// idempotent across runs of the same geometry.
  void begin_run(int lanes, int workers);

  /// The engine samples wall clocks on rounds where
  /// `round_counter % sample_every() == 0`.
  std::uint64_t sample_every() const noexcept { return sample_every_; }

  /// One lane's sampled execution: its window plus its wall-clock cost
  /// (sampled rounds only; lands in the record ring).
  void record_lane_sample(std::uint64_t round, int lane, int worker,
                          Time window_start, Time window_end,
                          std::uint64_t events, std::uint64_t busy_ns,
                          std::uint32_t inbox_msgs);

  /// One worker finished a sampled round.
  void record_worker_round(std::uint64_t round, int worker,
                           std::uint64_t wall_ns,
                           std::uint64_t barrier_wait_ns,
                           std::uint64_t busy_ns);

  /// The completion step computed round `round`; `critical_lane` held the
  /// earliest pending event (the fixpoint's lower bound). Inline: runs
  /// once per round on the (single) completion thread.
  void record_window(std::uint64_t round, int critical_lane) {
    (void)round;  // round numbers restart per run; windows_ counts overall
    ++windows_;
    if (critical_lane >= 0 &&
        static_cast<std::size_t>(critical_lane) < lanes_.size()) {
      ++lanes_[static_cast<std::size_t>(critical_lane)].critical_rounds;
    }
  }

  /// Folds one finished run's engine counters for `lane` into the totals
  /// (cold path, once per lane per run_until). `events`, `sim_ns`,
  /// `inbox_msgs` and `inbox_spills` are deltas over the run;
  /// `inbox_high_water` is max-merged.
  void add_lane_run_totals(int lane, std::uint64_t events, Time sim_ns,
                           std::uint64_t inbox_msgs,
                           std::uint32_t inbox_high_water,
                           std::uint64_t inbox_spills);

  /// Run finished: cross-lane messages posted during the run.
  void end_run(std::uint64_t messages_posted);

  // ----------------------------------------------------------- snapshot
  /// Window rounds witnessed across every profiled run_until().
  std::uint64_t rounds_recorded() const noexcept { return windows_; }
  std::uint64_t messages_posted() const noexcept { return messages_; }
  int num_lanes() const noexcept { return static_cast<int>(lanes_.size()); }
  int num_workers() const noexcept {
    return static_cast<int>(workers_.size());
  }

  const LaneTotals& lane(int i) const {
    return lanes_[static_cast<std::size_t>(i)];
  }
  const WorkerTotals& worker(int i) const {
    return workers_[static_cast<std::size_t>(i)];
  }

  /// Retained per-round records, oldest first.
  std::size_t lane_round_count() const noexcept { return lane_ring_.size; }
  const LaneRound& lane_round(std::size_t i) const {
    return lane_ring_.at(i);
  }
  std::uint64_t lane_rounds_dropped() const noexcept {
    return lane_ring_.dropped;
  }
  std::size_t worker_round_count() const noexcept {
    return worker_ring_.size;
  }
  const WorkerRound& worker_round(std::size_t i) const {
    return worker_ring_.at(i);
  }
  std::uint64_t worker_rounds_dropped() const noexcept {
    return worker_ring_.dropped;
  }

  /// Busy-time imbalance across lanes: max lane busy / mean lane busy
  /// (1.0 = perfectly balanced; 0 when nothing ran). The gap between a
  /// measured speedup and the lane count is usually this number.
  double busy_imbalance() const noexcept;

  /// Events-executed imbalance across lanes (same max/mean shape) — the
  /// thread-count-independent companion to busy_imbalance().
  double event_imbalance() const noexcept;

  /// Drops every record and total (capacity is kept).
  void reset();

 private:
  template <typename T>
  struct Ring {
    std::vector<T> data;     ///< preallocated to capacity
    std::size_t capacity = 0;
    std::size_t size = 0;
    std::size_t head = 0;    ///< index of the oldest record
    std::uint64_t dropped = 0;

    void push(const T& v) {
      if (size < capacity) {
        data[size++] = v;
        return;
      }
      data[head] = v;
      head = (head + 1) % capacity;
      ++dropped;
    }
    const T& at(std::size_t i) const {
      return data[(head + i) % capacity];
    }
    void clear() {
      size = 0;
      head = 0;
      dropped = 0;
    }
  };

  std::vector<LaneTotals> lanes_;
  std::vector<WorkerTotals> workers_;
  /// Guards the record rings: sampled records arrive from every worker
  /// thread concurrently. Taken only on sampled rounds (1 in
  /// sample_every()), so contention is negligible; the per-lane and
  /// per-worker totals stay lock-free (single writer each — a lane is
  /// owned by one worker for a whole run, critical_rounds is written by
  /// the completion step while all workers are parked).
  std::mutex ring_mu_;
  Ring<LaneRound> lane_ring_;
  Ring<WorkerRound> worker_ring_;
  std::uint64_t sample_every_ = kDefaultSampleEvery;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace prism::sim
