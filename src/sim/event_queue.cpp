#include "sim/event_queue.h"

#include <utility>

namespace prism::sim {

void EventQueue::push(Time at, EventFn fn) {
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

EventFn EventQueue::pop() {
  EventFn fn = std::move(heap_.top().fn);
  heap_.pop();
  return fn;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace prism::sim
