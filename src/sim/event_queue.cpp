#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace prism::sim {

void EventQueue::push(Time at, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  if (slot > kSlotMask || (next_seq_ >> (64 - kSlotBits)) != 0) {
    throw std::length_error("EventQueue: key space exhausted");
  }

  // Sift up by moving a "hole" toward the root: each displaced parent is
  // moved exactly once instead of being swapped.
  const Entry e{at, (next_seq_++ << kSlotBits) | slot};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!e.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventFn EventQueue::pop() {
  const std::uint32_t slot = heap_.front().slot();
  EventFn fn = std::move(slots_[slot]);
  free_slots_.push_back(slot);

  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the former last entry down from the root, moving the smallest
    // child up into the hole at each level.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return fn;
}

void EventQueue::clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  next_seq_ = 0;
}

}  // namespace prism::sim
