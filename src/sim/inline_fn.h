// Small-buffer-optimised move-only callable, the event queue's workhorse.
//
// Every scheduled event used to carry a std::function whose capture state
// lived in a fresh heap block; at millions of events per second the
// allocator became a first-order cost. InlineFn stores captures up to
// Capacity bytes directly inside the object (no allocation at all) and
// falls back to the heap only for oversized or throwing-move callables.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace prism::sim {

template <typename Sig, std::size_t Capacity = 120>
class InlineFn;

/// Move-only callable wrapper with `Capacity` bytes of inline storage.
///
/// A callable is stored inline when it fits, is sufficiently aligned, and
/// is nothrow-move-constructible (moves happen inside noexcept heap
/// operations); everything else is boxed on the heap. Unlike
/// std::function, InlineFn never copies — which is exactly what a
/// fire-once event callback needs.
template <typename R, typename... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kInlineCapacity = Capacity;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFn> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  /// True when the callable lives in the inline buffer (test hook).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  /// Whether a callable of type D would be stored inline.
  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= Capacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable at dst from src, destroying src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p, Args&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p, Args&&... args) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      false,
  };

  void steal(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace prism::sim
