// Free-list object recycling for the simulation hot path.
//
// The steady-state packet loop should not touch the heap: buffers and
// objects released at the end of one packet's lifetime are parked on a
// free list and handed back to the next packet. PoolStats counts every
// acquire/release so benchmarks can assert the hit rate (a warm pool
// serves >99% of acquires from the free list).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prism::sim {

/// Counters exported by every recycling pool (see stats/summary.h).
struct PoolStats {
  std::uint64_t acquired = 0;   ///< total acquire() calls
  std::uint64_t reused = 0;     ///< acquires served from the free list
  std::uint64_t allocated = 0;  ///< acquires that fell through to the heap
  std::uint64_t released = 0;   ///< returns parked on the free list
  std::uint64_t discarded = 0;  ///< returns freed (pool full or disabled)

  /// Fraction of acquires served without a heap allocation.
  double hit_rate() const noexcept {
    if (acquired == 0) return 0.0;
    return static_cast<double>(reused) / static_cast<double>(acquired);
  }

  void reset() noexcept { *this = PoolStats{}; }
};

/// Generic free-list recycler for default-constructible objects.
///
/// acquire() pops a previously released object (or heap-allocates when the
/// list is dry); release() parks the object for reuse. The caller is
/// responsible for scrubbing object state between uses — the pool neither
/// constructs nor destructs recycled objects. Disabling the pool turns it
/// into a plain new/delete pass-through, which keeps allocation behaviour
/// bit-for-bit comparable in determinism A/B tests.
template <typename T>
class ObjectPool {
 public:
  static constexpr std::size_t kDefaultMaxFree = 8192;

  explicit ObjectPool(std::size_t max_free = kDefaultMaxFree)
      : max_free_(max_free) {
    free_.reserve(max_free_ < 1024 ? max_free_ : 1024);
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() { trim(); }

  /// Returns a recycled object or a fresh heap allocation. Ownership
  /// passes to the caller (wrap in an RAII handle that calls release()).
  T* acquire() {
    ++stats_.acquired;
    if (enabled_ && !free_.empty()) {
      ++stats_.reused;
      T* obj = free_.back();
      free_.pop_back();
      return obj;
    }
    ++stats_.allocated;
    return new T();
  }

  /// Parks `obj` for reuse; frees it when the pool is disabled or full.
  void release(T* obj) {
    if (!enabled_ || free_.size() >= max_free_) {
      ++stats_.discarded;
      delete obj;
      return;
    }
    ++stats_.released;
    free_.push_back(obj);
  }

  /// Frees every parked object.
  void trim() {
    for (T* obj : free_) delete obj;
    free_.clear();
  }

  /// A disabled pool passes straight through to new/delete.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled_) trim();
  }
  bool enabled() const noexcept { return enabled_; }

  std::size_t free_objects() const noexcept { return free_.size(); }

  const PoolStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

 private:
  std::vector<T*> free_;
  std::size_t max_free_;
  bool enabled_ = true;
  PoolStats stats_;
};

/// Per-thread free list of byte buffers backing net::PacketBuf.
///
/// PacketBuf's storage vector is acquired here on construction and
/// returned here on destruction, so the vector's heap block survives the
/// PacketBuf that carried it and is re-issued to the next frame. Buffers
/// larger than kMaxRetainedBytes are freed rather than parked so one
/// jumbo frame cannot pin memory forever.
class BufferPool {
 public:
  static constexpr std::size_t kDefaultMaxFree = 16384;
  static constexpr std::size_t kMaxRetainedBytes = 256 * 1024;

  /// The calling thread's instance — one pool per thread so parallel
  /// simulation lanes recycle without locks. The main thread's pool is
  /// never destroyed (PacketBufs with static storage duration may release
  /// buffers during shutdown); lane workers free theirs at thread exit.
  static BufferPool& instance() noexcept;

  BufferPool() { free_.reserve(1024); }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a buffer resized to `size` bytes. Recycled buffers keep
  /// their capacity, so a warm pool resizes without reallocating. Byte
  /// content beyond what the caller writes is unspecified.
  std::vector<std::uint8_t> acquire(std::size_t size) {
    ++stats_.acquired;
    if (enabled_ && !free_.empty()) {
      std::vector<std::uint8_t> buf = std::move(free_.back());
      free_.pop_back();
      if (buf.capacity() >= size) {
        ++stats_.reused;
      } else {
        ++stats_.allocated;  // resize below grows the heap block
      }
      buf.resize(size);
      return buf;
    }
    ++stats_.allocated;
    return std::vector<std::uint8_t>(size);
  }

  /// Parks a buffer's storage for reuse. Empty-capacity vectors carry no
  /// heap block and are dropped silently.
  void release(std::vector<std::uint8_t>&& storage) {
    if (storage.capacity() == 0) return;
    if (!enabled_ || free_.size() >= max_free_ ||
        storage.capacity() > kMaxRetainedBytes) {
      ++stats_.discarded;
      return;  // storage frees on scope exit
    }
    ++stats_.released;
    free_.push_back(std::move(storage));
  }

  /// Frees every parked buffer.
  void trim() {
    free_.clear();
    free_.shrink_to_fit();
    free_.reserve(1024);
  }

  /// A disabled pool passes straight through to the allocator.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled_) trim();
  }
  bool enabled() const noexcept { return enabled_; }

  std::size_t free_buffers() const noexcept { return free_.size(); }

  const PoolStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_free_ = kDefaultMaxFree;
  bool enabled_ = true;
  PoolStats stats_;
};

}  // namespace prism::sim
