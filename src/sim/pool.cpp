#include "sim/pool.h"

#include <thread>

namespace prism::sim {

namespace {

/// The thread that ran static initialization — i.e. the main thread.
/// Lane workers compare against it to decide their pool's fate at exit.
const std::thread::id kMainThread = std::this_thread::get_id();

/// Thread-exit holder: parallel lane workers free their pool when the
/// thread dies (LeakSanitizer would otherwise report the unreachable
/// thread-local allocation), while the main thread's pool is intentionally
/// leaked — PacketBufs owned by objects with static storage duration
/// release their buffers during program shutdown, after normal static (and
/// main-thread thread_local) destructors would have torn the pool down.
struct TlsBufferPool {
  BufferPool* pool = new BufferPool();
  ~TlsBufferPool() {
    if (std::this_thread::get_id() != kMainThread) delete pool;
  }
};

}  // namespace

BufferPool& BufferPool::instance() noexcept {
  // One pool per thread: each parallel simulation lane recycles buffers
  // through its own free list, so the packet hot path stays lock-free at
  // any thread count. Buffers migrate between pools when frames cross
  // lanes (acquired on the sender's thread, released on the receiver's),
  // which is harmless — a free list has no affinity requirement.
  thread_local TlsBufferPool tls;
  return *tls.pool;
}

}  // namespace prism::sim
