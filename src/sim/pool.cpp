#include "sim/pool.h"

namespace prism::sim {

BufferPool& BufferPool::instance() noexcept {
  // Intentionally leaked: PacketBufs owned by objects with static storage
  // duration release their buffers during program shutdown, after normal
  // static destructors would have torn a stack-local singleton down.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace prism::sim
