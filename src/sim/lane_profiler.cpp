#include "sim/lane_profiler.h"

#include <algorithm>

namespace prism::sim {

LaneProfiler::LaneProfiler(std::size_t round_capacity,
                           std::uint64_t sample_every)
    : sample_every_(sample_every == 0 ? kDefaultSampleEvery : sample_every) {
  if (round_capacity < 1) round_capacity = 1;
  lane_ring_.capacity = round_capacity;
  lane_ring_.data.resize(round_capacity);
  worker_ring_.capacity = round_capacity;
  worker_ring_.data.resize(round_capacity);
}

void LaneProfiler::begin_run(int lanes, int workers) {
  if (static_cast<std::size_t>(lanes) > lanes_.size()) {
    lanes_.resize(static_cast<std::size_t>(lanes));
  }
  if (static_cast<std::size_t>(workers) > workers_.size()) {
    workers_.resize(static_cast<std::size_t>(workers));
  }
}

void LaneProfiler::record_lane_sample(std::uint64_t round, int lane,
                                      int worker, Time window_start,
                                      Time window_end, std::uint64_t events,
                                      std::uint64_t busy_ns,
                                      std::uint32_t inbox_msgs) {
  LaneRound r;
  r.round = round;
  r.lane = static_cast<std::uint32_t>(lane);
  r.worker = static_cast<std::uint32_t>(worker);
  r.window_start = window_start;
  r.window_end = window_end;
  r.events = events;
  r.busy_ns = busy_ns;
  r.inbox_msgs = inbox_msgs;
  {
    const std::lock_guard<std::mutex> lock(ring_mu_);
    lane_ring_.push(r);
  }

  LaneTotals& t = lanes_[static_cast<std::size_t>(lane)];
  ++t.sampled_rounds;
  t.busy_ns += busy_ns;
}

void LaneProfiler::record_worker_round(std::uint64_t round, int worker,
                                       std::uint64_t wall_ns,
                                       std::uint64_t barrier_wait_ns,
                                       std::uint64_t busy_ns) {
  WorkerRound r;
  r.round = round;
  r.worker = static_cast<std::uint32_t>(worker);
  r.wall_ns = wall_ns;
  r.barrier_wait_ns = barrier_wait_ns;
  r.busy_ns = busy_ns;
  {
    const std::lock_guard<std::mutex> lock(ring_mu_);
    worker_ring_.push(r);
  }

  WorkerTotals& t = workers_[static_cast<std::size_t>(worker)];
  ++t.rounds;
  t.wall_ns += wall_ns;
  t.barrier_wait_ns += barrier_wait_ns;
  t.busy_ns += busy_ns;
}

void LaneProfiler::add_lane_run_totals(int lane, std::uint64_t events,
                                       Time sim_ns, std::uint64_t inbox_msgs,
                                       std::uint32_t inbox_high_water,
                                       std::uint64_t inbox_spills) {
  LaneTotals& t = lanes_[static_cast<std::size_t>(lane)];
  t.events += events;
  t.sim_ns += sim_ns;
  t.inbox_msgs += inbox_msgs;
  if (inbox_high_water > t.inbox_high_water) {
    t.inbox_high_water = inbox_high_water;
  }
  t.inbox_spills += inbox_spills;
}

void LaneProfiler::end_run(std::uint64_t messages_posted) {
  messages_ += messages_posted;
}

namespace {

double max_over_mean(const std::vector<LaneProfiler::LaneTotals>& lanes,
                     std::uint64_t LaneProfiler::LaneTotals::* field) {
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::size_t active = 0;
  for (const auto& t : lanes) {
    const std::uint64_t v = t.*field;
    if (t.events == 0 && t.sampled_rounds == 0 && v == 0) continue;
    ++active;
    sum += v;
    if (v > max) max = v;
  }
  if (active == 0 || sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(active);
  return static_cast<double>(max) / mean;
}

}  // namespace

double LaneProfiler::busy_imbalance() const noexcept {
  return max_over_mean(lanes_, &LaneTotals::busy_ns);
}

double LaneProfiler::event_imbalance() const noexcept {
  return max_over_mean(lanes_, &LaneTotals::events);
}

void LaneProfiler::reset() {
  std::fill(lanes_.begin(), lanes_.end(), LaneTotals{});
  std::fill(workers_.begin(), workers_.end(), WorkerTotals{});
  lane_ring_.clear();
  worker_ring_.clear();
  windows_ = 0;
  messages_ = 0;
}

}  // namespace prism::sim
