// Deterministic random number generation for simulations.
//
// Experiments must be reproducible bit-for-bit given a seed, so the
// simulator does not use std::random_device or global state. Rng wraps a
// xoshiro256** generator (fast, high quality, tiny state) plus the handful
// of distributions the workload generators need.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace prism::sim {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Seeding uses SplitMix64 so that nearby seeds yield decorrelated streams;
/// `split()` derives an independent child stream, which lets every flow or
/// application own its own generator without coupling their sequences.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed duration with the given mean. Used for
  /// Poisson inter-arrival times. Returns at least 1 ns so events make
  /// progress.
  Duration exponential(Duration mean) noexcept;

  /// Bernoulli trial.
  bool chance(double probability) noexcept;

  /// Derives an independent child generator. The child stream is
  /// decorrelated from this one and from other children.
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace prism::sim
