// The discrete-event simulator driving every experiment.
//
// All model components (NICs, CPUs, applications) share one Simulator. They
// schedule callbacks at absolute or relative simulated times; run() drains
// the event queue in timestamp order, advancing the clock. Nothing in the
// simulation ever blocks or uses wall-clock time.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace prism::sim {

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  Simulator() = default;

  // The simulator is the hub every component points at; moving it would
  // invalidate those references.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` to run after `delay` (>= 0) from now.
  void schedule(Duration delay, EventFn fn);

  /// Schedules `fn` at absolute time `at`. Times in the past are clamped to
  /// now (the event fires on the current instant, after already-queued
  /// events for that instant).
  void schedule_at(Time at, EventFn fn);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed), the queue empties, or stop() is called.
  /// The clock is left at min(deadline, last event time) — callers can
  /// continue scheduling and run again.
  void run_until(Time deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed so far (for tests and diagnostics).
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events waiting in the queue.
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Timestamp of the earliest pending event (the conservative-window
  /// scheduler's horizon input). Precondition: pending_events() > 0.
  Time next_event_time() const { return queue_.next_time(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace prism::sim
