// Priority queue of timed events, the core of the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes simulations fully
// deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace prism::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Min-heap of (time, sequence) ordered events.
class EventQueue {
 public:
  /// Adds an event firing at absolute time `at`. Events scheduled for the
  /// same instant fire in the order they were pushed.
  void push(Time at, EventFn fn);

  /// True when no events remain.
  bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  Time next_time() const { return heap_.top().at; }

  /// Removes and returns the earliest event's callback.
  /// Precondition: !empty().
  EventFn pop();

  /// Discards all pending events.
  void clear();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    // Mutable so that pop() can move the callback out of the const
    // reference returned by std::priority_queue::top().
    mutable EventFn fn;

    bool operator>(const Entry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace prism::sim
