// Priority queue of timed events, the core of the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which makes simulations fully
// deterministic regardless of heap internals.
//
// The heap is a hand-rolled 4-ary min-heap over flat storage. Compared to
// the binary std::priority_queue it replaced, the wider fan-out halves the
// tree depth (fewer cache lines touched per sift) and the entries hold
// their callbacks in InlineFn, so pushing an event allocates nothing for
// captures up to EventFn::kInlineCapacity bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace prism::sim {

/// Callback invoked when an event fires. Move-only; captures up to
/// kInlineCapacity bytes live inside the object, larger ones on the heap.
using EventFn = InlineFn<void()>;

/// Min-heap of (time, sequence) ordered events.
///
/// Callbacks live in a side slab indexed by the heap entries, so sift
/// operations move 16-byte keys instead of full InlineFn storage; slab
/// slots are recycled through a free list, making steady-state push/pop
/// allocation-free.
class EventQueue {
 public:
  /// Adds an event firing at absolute time `at`. Events scheduled for the
  /// same instant fire in the order they were pushed.
  void push(Time at, EventFn fn);

  /// True when no events remain.
  bool empty() const noexcept { return heap_.empty(); }

  /// Number of pending events.
  std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  Time next_time() const { return heap_.front().at; }

  /// Removes and returns the earliest event's callback.
  /// Precondition: !empty().
  EventFn pop();

  /// Discards all pending events.
  void clear();

 private:
  /// Slab-slot index bits inside Entry::key. Bounds simultaneously
  /// pending events at 2^24 (16 M — far beyond any plausible queue) and
  /// leaves 40 bits of sequence (1.1e12 pushes between clear() calls).
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  struct Entry {
    Time at;
    /// (seq << kSlotBits) | slot. Sequence numbers are unique, so
    /// comparing keys compares sequences; packing keeps the entry at 16
    /// bytes, which is what the sift loops move and compare.
    std::uint64_t key;

    std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
    bool before(const Entry& other) const noexcept {
      if (at != other.at) return at < other.at;
      return key < other.key;
    }
  };

  static constexpr std::size_t kArity = 4;

  std::vector<Entry> heap_;
  std::vector<EventFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace prism::sim
