// Simulated-time primitives.
//
// The whole simulator operates on a single integer timeline with nanosecond
// resolution. Using a strong-ish alias (int64_t) keeps arithmetic cheap and
// exact; helpers below convert from human-friendly units.
#pragma once

#include <cstdint>

namespace prism::sim {

/// Simulated time in nanoseconds since the start of the run.
using Time = std::int64_t;

/// A duration in nanoseconds. Same representation as Time; the alias only
/// documents intent at API boundaries.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to fractional microseconds (for reporting).
constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a duration to fractional seconds (for reporting).
constexpr double to_s(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace prism::sim
