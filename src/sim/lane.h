// Parallel conservative discrete-event engine: one Simulator lane per
// simulated host, synchronized with time windows at the wire boundary.
//
// The single-threaded Simulator stays the per-lane engine; LaneSet owns N
// of them and advances all lanes together through conservative windows.
// Link propagation delay is the natural lookahead: a frame transmitted by
// lane j at time t cannot arrive before t + serialization(>=1ns) +
// propagation. Each round first computes every lane's *release time* —
// the earliest instant it could possibly execute anything, pending or
// future — as the fixpoint of
//
//   release(j) = min(next pending event of j,
//                    min over neighbors k of (release(k) + 1ns
//                                             + propagation(j, k)))
//
// (the second term covers j being woken by a message it has not received
// yet, including multi-hop chains within the round). Lane i may then
// safely execute all events up to its own horizon
//
//   window_end(i) = min over neighbors j of (release(j)
//                                            + propagation(i, j))
//
// since nothing from j can arrive at or before that. Windows are per
// lane, not global: two pairs of hosts that never exchange traffic
// advance independently instead of locksteping to the globally earliest
// event. Cross-lane deliveries travel through per-(src,dst) SPSC inboxes
// and are drained at window edges in (arrival time, src lane, sequence)
// order, so the schedule a lane observes is identical regardless of how
// many OS threads execute the windows — run_until(d, 1) and
// run_until(d, N) produce byte-identical simulations.
//
// Degenerate cases fall out of the window rule rather than being special:
// zero propagation delay makes window_end(i) == the neighborhood's
// minimum event time, i.e. lockstep single-instant windows (correct
// because serialization still adds >= 1 ns, so no arrival can land
// inside the instant that produced it); a lane with no registered links
// can neither send nor receive, so it has no horizon to respect and
// free-runs to the deadline.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/spsc.h"
#include "sim/time.h"

namespace prism::sim {

class LaneProfiler;

/// A set of per-host event lanes advanced through conservative windows.
class LaneSet {
 public:
  explicit LaneSet(int lanes);

  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  int num_lanes() const noexcept { return static_cast<int>(lanes_.size()); }
  Simulator& lane(int i) { return *lanes_[static_cast<std::size_t>(i)]; }

  /// Declares a cross-lane link with the given propagation delay (the
  /// Wire calls this at attach). Each endpoint's window horizon then
  /// tracks the other's event clock plus this delay; registering the
  /// same lane pair again keeps the smaller delay. Self-links (a == b)
  /// are ignored — a wire whose endpoints share a lane schedules
  /// directly and needs no handoff.
  void register_link(int a, int b, Duration propagation);

  /// Global lookahead floor (min registered propagation; kMaxTime when
  /// no cross-lane link exists). The post() safety check uses it; each
  /// lane's actual window uses its per-neighbor delays.
  Duration lookahead() const noexcept { return lookahead_; }

  /// Posts a cross-lane event: `fn` runs at absolute time `at` on lane
  /// `dst`. Must be called from lane `src`'s executing thread during a
  /// window, with `at` strictly after src's current time plus the
  /// (src,dst) link's propagation delay — the Wire's serialization
  /// (>= 1ns) + propagation guarantees this, and the window horizons
  /// assume it.
  void post(int src, int dst, Time at, EventFn fn);

  /// Advances every lane to `deadline` using `threads` OS threads
  /// (clamped to [1, num_lanes()]). Events at exactly `deadline` run;
  /// later events stay queued; every lane's clock ends at >= deadline
  /// (matching Simulator::run_until semantics). The caller's thread
  /// participates as worker 0. Deterministic for any thread count.
  void run_until(Time deadline, int threads = 1);

  /// Total events executed across all lanes.
  std::uint64_t events_executed() const;

  /// Number of synchronization windows the last run_until executed.
  std::uint64_t windows_run() const noexcept { return windows_; }

  /// Total cross-lane messages handed off so far.
  std::uint64_t messages_posted() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }

  /// Cross-lane messages that overflowed an inbox ring onto the mutex
  /// spill path (diagnostic: should stay ~0 for well-sized rings).
  std::uint64_t inbox_spills() const;

  /// Per-destination-lane inbox diagnostics (summed/maxed over that
  /// lane's per-source queues). All three are schedule-deterministic:
  /// identical at any thread count for the same simulation.
  std::uint64_t lane_inbox_spills(int dst) const;
  std::uint64_t lane_inbox_pushed(int dst) const;
  std::size_t lane_inbox_high_water(int dst) const;

  /// Attaches a wall-clock profiler (sim/lane_profiler.h): every window
  /// round then records per-lane busy/window/inbox stats and per-worker
  /// barrier/idle accounting. nullptr detaches; a detached engine pays
  /// one branch per round. Compiled out (the attach is ignored) under
  /// -DPRISM_TELEMETRY=OFF. Must not be changed while run_until() is
  /// executing.
  void set_profiler(LaneProfiler* profiler) noexcept;
  LaneProfiler* profiler() const noexcept { return profiler_; }

  static constexpr Time kMaxTime = std::numeric_limits<Time>::max();

 private:
  struct Message {
    Time at = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  /// Per-destination mailbox: one SPSC queue per source lane plus the
  /// consumer-side scratch used to sort a window's arrivals.
  struct Mailbox {
    std::vector<std::unique_ptr<SpscQueue<Message>>> from;  // [src lane]
    std::vector<Message> scratch;  ///< consumer-private drain buffer
  };

  /// Drains every inbox of lane `dst` into its event queue in
  /// (arrival, src, seq) order. Consumer-side only. Returns the number
  /// of messages drained (the profiler's inbox-depth sample).
  std::size_t drain_inboxes(int dst);

  /// Computes every linked lane's release time and window horizon (or
  /// sets done_) from next_time_. Runs as the barrier completion step:
  /// exactly one thread, all others parked.
  void compute_window(Time deadline);

  /// Snapshots per-lane engine counters so finish_profiled_run() can
  /// hand the profiler exact per-run deltas without any hot-path work.
  void begin_profiled_run();
  /// Folds the run's per-lane counter deltas (events, sim time, inbox
  /// traffic/spills) and message total into the attached profiler.
  void finish_profiled_run();

  /// One worker's share of lanes: worker w owns lanes {i : i % threads ==
  /// w}. `barrier` is the run's phase barrier (std::barrier, type-erased
  /// behind a caller-side wrapper so <barrier> stays out of this header).
  template <typename Barrier>
  void worker_loop(int worker, int threads, Time deadline, Barrier& barrier);

  struct Neighbor {
    int lane = 0;
    Duration propagation = 0;
  };

  std::vector<std::unique_ptr<Simulator>> lanes_;
  std::vector<Mailbox> mailboxes_;                  // [dst lane]
  std::vector<std::uint64_t> post_seq_;             // [src lane], producer-private
  std::vector<std::uint8_t> linked_;                // [lane] has any link?
  std::vector<std::vector<Neighbor>> neighbors_;    // [lane]
  /// True while every linked lane has exactly one peer (pair
  /// topologies); enables the closed-form window computation.
  bool pairwise_ = true;
  Duration lookahead_ = kMaxTime;
  std::atomic<std::uint64_t> messages_{0};
  LaneProfiler* profiler_ = nullptr;
  /// [lane] messages drained at the current round's window edge. Each
  /// entry is written and read only by the lane's owning worker; it
  /// carries the drain-phase count into the execute phase for the
  /// profiler's per-round record (written on sampled rounds only).
  std::vector<std::uint32_t> drained_msgs_;
  /// Per-lane counter baselines captured by begin_profiled_run() (cold;
  /// sized lazily on the first profiled run).
  std::vector<std::uint64_t> run_events0_;
  std::vector<Time> run_sim0_;
  std::vector<std::uint64_t> run_msgs0_;
  std::vector<std::uint64_t> run_spills0_;
  std::uint64_t run_messages0_ = 0;

  // ---- per-run_until window coordination (written by the completion
  // step while all workers are parked at the barrier, read by workers
  // after they are released — the barrier orders the accesses) ----
  std::vector<Time> next_time_;  ///< [lane] earliest pending event or kMaxTime
  std::vector<Time> release_;    ///< [lane] earliest possible execution
  std::vector<Time> window_end_;  ///< [lane] this round's horizon
  bool done_ = false;
  /// The one barrier alternates phases; the completion step computes the
  /// window only after the drain phase.
  bool completion_is_window_ = true;
  std::uint64_t windows_ = 0;
};

}  // namespace prism::sim
