#include "sim/rng.h"

#include <cmath>

namespace prism::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro requires a non-zero state; SplitMix64 never produces four zero
  // outputs in a row, so this is safe for any seed including zero.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the ranges used in this codebase
  // (range << 2^64), and determinism matters more than perfect uniformity.
  return lo + static_cast<std::int64_t>(next() % range);
}

Duration Rng::exponential(Duration mean) noexcept {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  const double u = 1.0 - uniform();
  const double d = -static_cast<double>(mean) * std::log(u);
  const auto n = static_cast<Duration>(d);
  return n < 1 ? 1 : n;
}

bool Rng::chance(double probability) noexcept {
  return uniform() < probability;
}

Rng Rng::split() noexcept { return Rng(next()); }

}  // namespace prism::sim
