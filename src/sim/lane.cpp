#include "sim/lane.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/lane_profiler.h"

namespace prism::sim {

LaneSet::LaneSet(int lanes) {
  if (lanes < 1) {
    throw std::invalid_argument("LaneSet: need at least one lane");
  }
  lanes_.reserve(static_cast<std::size_t>(lanes));
  mailboxes_.resize(static_cast<std::size_t>(lanes));
  post_seq_.assign(static_cast<std::size_t>(lanes), 0);
  linked_.assign(static_cast<std::size_t>(lanes), 0);
  neighbors_.resize(static_cast<std::size_t>(lanes));
  next_time_.assign(static_cast<std::size_t>(lanes), kMaxTime);
  release_.assign(static_cast<std::size_t>(lanes), kMaxTime);
  window_end_.assign(static_cast<std::size_t>(lanes), 0);
  drained_msgs_.assign(static_cast<std::size_t>(lanes), 0);
  for (int i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Simulator>());
    auto& from = mailboxes_[static_cast<std::size_t>(i)].from;
    from.reserve(static_cast<std::size_t>(lanes));
    for (int j = 0; j < lanes; ++j) {
      from.push_back(std::make_unique<SpscQueue<Message>>());
    }
  }
}

void LaneSet::register_link(int a, int b, Duration propagation) {
  if (a < 0 || a >= num_lanes() || b < 0 || b >= num_lanes()) {
    throw std::out_of_range("LaneSet::register_link: bad lane index");
  }
  if (propagation < 0) {
    throw std::invalid_argument(
        "LaneSet::register_link: negative propagation");
  }
  if (a == b) return;  // same-lane wire: direct scheduling, no handoff
  linked_[static_cast<std::size_t>(a)] = 1;
  linked_[static_cast<std::size_t>(b)] = 1;
  if (propagation < lookahead_) lookahead_ = propagation;
  auto add = [this](int from, int to, Duration prop) {
    auto& nbs = neighbors_[static_cast<std::size_t>(from)];
    for (Neighbor& nb : nbs) {
      if (nb.lane == to) {
        // Parallel wires between the same lane pair: the shortest delay
        // bounds how early a message can arrive.
        if (prop < nb.propagation) nb.propagation = prop;
        return;
      }
    }
    nbs.push_back(Neighbor{to, prop});
  };
  add(a, b, propagation);
  add(b, a, propagation);
  pairwise_ = pairwise_ &&
              neighbors_[static_cast<std::size_t>(a)].size() <= 1 &&
              neighbors_[static_cast<std::size_t>(b)].size() <= 1;
}

void LaneSet::post(int src, int dst, Time at, EventFn fn) {
  assert(src >= 0 && src < num_lanes() && dst >= 0 && dst < num_lanes());
  assert(src != dst && "same-lane events schedule directly");
#ifndef NDEBUG
  // Conservative-window safety: the horizons assume every message lands
  // strictly after the sender's clock plus the link's propagation delay
  // (the Wire's >= 1ns serialization provides the strict part).
  {
    bool found = false;
    for (const Neighbor& nb : neighbors_[static_cast<std::size_t>(src)]) {
      if (nb.lane == dst) {
        assert(at > lane(src).now() + nb.propagation &&
               "cross-lane post inside the conservative window");
        found = true;
        break;
      }
    }
    assert(found && "cross-lane post without a registered link");
  }
#endif
  Message m;
  m.at = at;
  m.src = static_cast<std::uint32_t>(src);
  m.seq = post_seq_[static_cast<std::size_t>(src)]++;
  m.fn = std::move(fn);
  mailboxes_[static_cast<std::size_t>(dst)]
      .from[static_cast<std::size_t>(src)]
      ->push(std::move(m));
  messages_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t LaneSet::drain_inboxes(int dst) {
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(dst)];
  mb.scratch.clear();
  // Messages only travel over registered links (post() asserts it), so
  // only the neighbor inboxes can be non-empty.
  for (const Neighbor& nb : neighbors_[static_cast<std::size_t>(dst)]) {
    mb.from[static_cast<std::size_t>(nb.lane)]->drain_into(mb.scratch);
  }
  const std::size_t drained = mb.scratch.size();
  if (mb.scratch.empty()) return drained;
  // (arrival, src lane, per-src sequence) is a total order, so the
  // destination queue receives an identical schedule at any thread count.
  std::sort(mb.scratch.begin(), mb.scratch.end(),
            [](const Message& x, const Message& y) {
              if (x.at != y.at) return x.at < y.at;
              if (x.src != y.src) return x.src < y.src;
              return x.seq < y.seq;
            });
  Simulator& sim = lane(dst);
  for (Message& m : mb.scratch) {
    assert(m.at > sim.now() && "cross-lane arrival in the lane's past");
    sim.schedule_at(m.at, std::move(m.fn));
  }
  mb.scratch.clear();
  return drained;
}

void LaneSet::compute_window(Time deadline) {
  Time t_min = kMaxTime;
  // The critical lane: the one whose next pending event bounds the
  // release-time fixpoint from below this round (ties -> lowest index).
  // Every other lane's window ultimately derives from it, so it is the
  // round's pace-setter — the profiler's critical-path attribution.
  int critical = -1;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (linked_[i] && next_time_[i] < t_min) {
      t_min = next_time_[i];
      critical = static_cast<int>(i);
    }
  }
  if (t_min == kMaxTime || t_min > deadline) {
    done_ = true;
    return;
  }
  // Release times: the earliest instant each lane could execute
  // anything this round — its next pending event, or a wake-up by a
  // message it has not received yet (possibly a multi-hop chain within
  // the round), which cannot beat release(neighbor) + serialization
  // + propagation. When every lane has exactly one peer (the Testbed
  // and every pair Cluster), the fixpoint collapses to a closed form
  // per pair; this runs once per window, so the shortcut is worth it.
  if (pairwise_) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (!linked_[i]) continue;
      const Neighbor& nb = neighbors_[i][0];
      const Time ni = next_time_[i];
      const Time nj = next_time_[static_cast<std::size_t>(nb.lane)];
      const Time via = ni >= kMaxTime - nb.propagation - 1
                           ? kMaxTime
                           : ni + nb.propagation + 1;
      const Time rj = nj < via ? nj : via;
      window_end_[i] = rj >= kMaxTime - nb.propagation ? deadline
                       : rj + nb.propagation > deadline
                           ? deadline
                           : rj + nb.propagation;
    }
    ++windows_;
    if (profiler_ != nullptr) profiler_->record_window(windows_, critical);
    return;
  }
  release_ = next_time_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (!linked_[i]) continue;
      for (const Neighbor& nb : neighbors_[i]) {
        const Time rj = release_[static_cast<std::size_t>(nb.lane)];
        const Time via = rj >= kMaxTime - nb.propagation - 1
                             ? kMaxTime
                             : rj + nb.propagation + 1;
        if (via < release_[i]) {
          release_[i] = via;
          changed = true;
        }
      }
    }
  }
  // Per-lane horizons: nothing from neighbor j can arrive at or before
  // release(j) + propagation, so lane i may run through that instant
  // inclusive. Lanes with disjoint neighborhoods advance independently;
  // the round still makes progress because the lane holding t_min has
  // release == t_min <= horizon, so its earliest event always executes.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (!linked_[i]) continue;
    Time w = kMaxTime;
    for (const Neighbor& nb : neighbors_[i]) {
      const Time rj = release_[static_cast<std::size_t>(nb.lane)];
      const Time horizon =
          rj >= kMaxTime - nb.propagation ? kMaxTime : rj + nb.propagation;
      if (horizon < w) w = horizon;
    }
    window_end_[i] = w > deadline ? deadline : w;
  }
  ++windows_;
  if (profiler_ != nullptr) profiler_->record_window(windows_, critical);
}

template <typename Barrier>
void LaneSet::worker_loop(int worker, int threads, Time deadline,
                          Barrier& barrier) {
  const int n = num_lanes();
  // Profiling instruments the loop with steady_clock reads; detached
  // (prof == nullptr, always the case under -DPRISM_TELEMETRY=OFF) the
  // loop pays one predictable branch per phase. Clock reads and record
  // stores are sampled (1 in sample_every() rounds) because rounds are
  // often shorter than the six clockgettime calls full timing costs;
  // an unsampled round pays only the sampling check — the exact totals
  // come from counters the engine maintains anyway, snapshotted in
  // begin/finish_profiled_run(). All readings observe the schedule
  // without influencing it, so profiled runs stay byte-identical to
  // unprofiled ones.
  LaneProfiler* const prof = profiler_;
  const std::uint64_t sample_every =
      prof != nullptr ? prof->sample_every() : 1;
  using ProfClock = std::chrono::steady_clock;
  const auto prof_ns = [](ProfClock::time_point a,
                          ProfClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count());
  };
  while (true) {
    // Sampling decision for the upcoming round. windows_ still holds the
    // previous round's number here (the completion step that increments
    // it runs at the next barrier), but every worker passed the same
    // barrier to get here, so all see the same value and sample the same
    // rounds — the decision is schedule-deterministic, not timing-based.
    const bool sample =
        prof != nullptr && (windows_ % sample_every) == 0;
    ProfClock::time_point round_start{};
    if (sample) round_start = ProfClock::now();
    // Drain phase: every inbox is quiescent (producers parked since the
    // previous barrier), so the consumer empties it and reports the
    // lane's earliest pending event for the window computation.
    for (int i = worker; i < n; i += threads) {
      if (!linked_[static_cast<std::size_t>(i)]) continue;
      const std::size_t drained = drain_inboxes(i);
      if (sample) {
        drained_msgs_[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(drained);
      }
      Simulator& s = lane(i);
      next_time_[static_cast<std::size_t>(i)] =
          s.pending_events() == 0 ? kMaxTime : s.next_event_time();
    }
    ProfClock::time_point bar0{};
    if (sample) bar0 = ProfClock::now();
    barrier.arrive_and_wait();  // completion: compute_window / done_
    std::uint64_t barrier_wait_ns = 0;
    std::uint64_t busy_ns = 0;
    if (sample) {
      const ProfClock::time_point t = ProfClock::now();
      barrier_wait_ns = prof_ns(bar0, t);
      // Drain work is busy time; the window between round_start and bar0
      // was all drains for this worker's lanes.
      busy_ns = prof_ns(round_start, bar0);
    }
    if (done_) break;
    const std::uint64_t round = windows_;  // set by the completion step
    // Execute phase: each linked lane runs every event up to and
    // including its own horizon; arrivals it produces land strictly
    // beyond the receiver's. A lane with nothing inside its horizon
    // sits the round out without even touching its clock — safe,
    // because arrivals always land beyond the horizon that was current
    // when they were sent, so a stale clock never sees one in its past.
    for (int i = worker; i < n; i += threads) {
      if (!linked_[static_cast<std::size_t>(i)]) continue;
      const Time w = window_end_[static_cast<std::size_t>(i)];
      if (next_time_[static_cast<std::size_t>(i)] <= w) {
        Simulator& s = lane(i);
        if (w > s.now()) {
          if (sample) {
            const Time start = s.now();
            const std::uint64_t ev0 = s.events_executed();
            const ProfClock::time_point e0 = ProfClock::now();
            s.run_until(w);
            const ProfClock::time_point e1 = ProfClock::now();
            const std::uint64_t lane_busy = prof_ns(e0, e1);
            busy_ns += lane_busy;
            prof->record_lane_sample(
                round, i, worker, start, w, s.events_executed() - ev0,
                lane_busy, drained_msgs_[static_cast<std::size_t>(i)]);
          } else {
            s.run_until(w);
          }
        }
      }
    }
    ProfClock::time_point bar1{};
    if (sample) bar1 = ProfClock::now();
    barrier.arrive_and_wait();  // completion: no-op (phase toggle)
    if (sample) {
      const ProfClock::time_point round_end = ProfClock::now();
      barrier_wait_ns += prof_ns(bar1, round_end);
      prof->record_worker_round(round, worker,
                                prof_ns(round_start, round_end),
                                barrier_wait_ns, busy_ns);
    }
  }
  // Settle: clocks advance to the deadline, and link-less lanes (which
  // neither send nor receive) free-run their entire schedule here.
  for (int i = worker; i < n; i += threads) {
    lane(i).run_until(deadline);
  }
}

void LaneSet::run_until(Time deadline, int threads) {
  if (threads < 1) threads = 1;
  if (threads > num_lanes()) threads = num_lanes();
  std::fill(next_time_.begin(), next_time_.end(), kMaxTime);
  done_ = false;
  completion_is_window_ = true;
  windows_ = 0;
  if (profiler_ != nullptr) profiler_->begin_run(num_lanes(), threads);
  begin_profiled_run();

  if (threads == 1) {
    // Serial fast path: the same phase sequence, but the "barrier" is a
    // direct call — a single-participant std::barrier still pays two
    // atomic round-trips per window, which is measurable at millions of
    // windows per run.
    struct SerialBarrier {
      LaneSet& set;
      Time deadline;
      void arrive_and_wait() noexcept {
        if (set.completion_is_window_) set.compute_window(deadline);
        set.completion_is_window_ = !set.completion_is_window_;
      }
    } serial{*this, deadline};
    worker_loop(0, 1, deadline, serial);
    finish_profiled_run();
    return;
  }

  auto completion = [this, deadline]() noexcept {
    if (completion_is_window_) compute_window(deadline);
    completion_is_window_ = !completion_is_window_;
  };
  std::barrier<decltype(completion)> barrier(threads, completion);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers.emplace_back([this, w, threads, deadline, &barrier] {
      worker_loop(w, threads, deadline, barrier);
    });
  }
  worker_loop(0, threads, deadline, barrier);
  for (std::thread& t : workers) t.join();
  finish_profiled_run();
}

void LaneSet::begin_profiled_run() {
  if (profiler_ == nullptr) return;
  const std::size_t n = lanes_.size();
  run_events0_.resize(n);
  run_sim0_.resize(n);
  run_msgs0_.resize(n);
  run_spills0_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int li = static_cast<int>(i);
    run_events0_[i] = lanes_[i]->events_executed();
    run_sim0_[i] = lanes_[i]->now();
    run_msgs0_[i] = lane_inbox_pushed(li);
    run_spills0_[i] = lane_inbox_spills(li);
  }
  run_messages0_ = messages_posted();
}

void LaneSet::finish_profiled_run() {
  if (profiler_ == nullptr) return;
  for (int i = 0; i < num_lanes(); ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    const Simulator& s = *lanes_[si];
    const std::size_t hw = lane_inbox_high_water(i);
    profiler_->add_lane_run_totals(
        i, s.events_executed() - run_events0_[si],
        s.now() > run_sim0_[si] ? s.now() - run_sim0_[si] : 0,
        lane_inbox_pushed(i) - run_msgs0_[si],
        static_cast<std::uint32_t>(std::min<std::size_t>(
            hw, std::numeric_limits<std::uint32_t>::max())),
        lane_inbox_spills(i) - run_spills0_[si]);
  }
  profiler_->end_run(messages_posted() - run_messages0_);
}

void LaneSet::set_profiler(LaneProfiler* profiler) noexcept {
#if PRISM_TELEMETRY_ENABLED
  profiler_ = profiler;
#else
  // Telemetry compiled out: the engine stays unprofiled (and pays no
  // branch — profiler_ is never non-null).
  (void)profiler;
#endif
}

std::uint64_t LaneSet::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& l : lanes_) total += l->events_executed();
  return total;
}

std::uint64_t LaneSet::inbox_spills() const {
  std::uint64_t total = 0;
  for (const Mailbox& mb : mailboxes_) {
    for (const auto& q : mb.from) total += q->spill_count();
  }
  return total;
}

std::uint64_t LaneSet::lane_inbox_spills(int dst) const {
  std::uint64_t total = 0;
  for (const auto& q : mailboxes_[static_cast<std::size_t>(dst)].from) {
    total += q->spill_count();
  }
  return total;
}

std::uint64_t LaneSet::lane_inbox_pushed(int dst) const {
  std::uint64_t total = 0;
  for (const auto& q : mailboxes_[static_cast<std::size_t>(dst)].from) {
    total += q->pushed_count();
  }
  return total;
}

std::size_t LaneSet::lane_inbox_high_water(int dst) const {
  std::size_t max = 0;
  for (const auto& q : mailboxes_[static_cast<std::size_t>(dst)].from) {
    max = std::max(max, q->high_water());
  }
  return max;
}

}  // namespace prism::sim
