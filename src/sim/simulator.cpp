#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace prism::sim {

void Simulator::schedule(Duration delay, EventFn fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  queue_.push(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulator::schedule_at(Time at, EventFn fn) {
  queue_.push(at < now_ ? now_ : at, std::move(fn));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    now_ = queue_.next_time();
    EventFn fn = queue_.pop();
    fn();
    ++executed_;
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    EventFn fn = queue_.pop();
    fn();
    ++executed_;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
}

}  // namespace prism::sim
