// Single-producer single-consumer handoff queue for cross-lane events.
//
// Each (src lane, dst lane) wire endpoint owns one of these: the source
// lane's thread pushes cross-host deliveries while its window executes,
// and the destination lane's thread drains them at the next window edge.
// The fast path is a fixed-capacity lock-free ring (acquire/release on the
// head/tail indices, no CAS); when a burst overflows the ring the producer
// falls back to a mutex-guarded spill vector, so the queue is unbounded
// without ever dropping an event. The window barrier guarantees produce
// and drain phases never overlap for correctness purposes, but the ring is
// written to be safe under true concurrency so ThreadSanitizer agrees.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace prism::sim {

/// Bounded lock-free SPSC ring with an unbounded mutex-guarded spill path.
///
/// push() may be called by exactly one producer thread, drain_into() by
/// exactly one consumer thread. Capacity is rounded up to a power of two.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Never fails: a full ring spills to the mutex path.
  void push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t depth = head - tail + 1;
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    if (head - tail < ring_.size()) {
      ring_[head & mask_] = std::move(value);
      head_.store(head + 1, std::memory_order_release);
      return;
    }
    ++spilled_;
    std::lock_guard<std::mutex> lock(spill_mu_);
    spill_.push_back(std::move(value));
  }

  /// Consumer side: appends every queued element to `out` in push order
  /// (ring first, then any spilled overflow — the spill only fills after
  /// the ring, so this preserves FIFO order within a produce phase).
  void drain_into(std::vector<T>& out) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (tail != head) {
      out.push_back(std::move(ring_[tail & mask_]));
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    if (spilled_.load(std::memory_order_relaxed) > drained_spills_) {
      std::lock_guard<std::mutex> lock(spill_mu_);
      for (T& v : spill_) out.push_back(std::move(v));
      drained_spills_ += spill_.size();
      spill_.clear();
    }
  }

  /// True when no element is queued on either path. Only meaningful when
  /// the producer is quiescent (between windows).
  bool empty() const {
    if (head_.load(std::memory_order_acquire) !=
        tail_.load(std::memory_order_acquire)) {
      return false;
    }
    return spilled_.load(std::memory_order_acquire) == drained_spills_;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Number of pushes that missed the ring and took the mutex path.
  std::uint64_t spill_count() const noexcept {
    return spilled_.load(std::memory_order_relaxed);
  }

  /// Total elements ever pushed (ring + spill) — the profiler's per-link
  /// traffic counter. Deterministic for a deterministic schedule.
  std::uint64_t pushed_count() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

  /// Deepest ring occupancy observed at push time (the pushed element
  /// included; saturates at capacity() + 1 once pushes overflow to the
  /// spill path). Ring-sizing signal for the profiler.
  std::size_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  // Producer-written / consumer-written indices on separate cache lines so
  // the two sides do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::atomic<std::uint64_t> spilled_{0};
  // Producer-written diagnostics, read cold by the profiler.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::size_t> high_water_{0};
  std::uint64_t drained_spills_ = 0;  ///< consumer-private
  std::mutex spill_mu_;
  std::vector<T> spill_;
};

}  // namespace prism::sim
