// Synthetic multi-stage packet pipeline.
//
// An engine-level harness that models an N-stage reception pipeline (the
// container overlay's {eth, br, veth} is N=3; NFV chains, which the paper
// names as the other multi-stage target, can be longer) without the
// protocol machinery: a source napi standing in for the NIC ring, N-1
// queue-backed stages, and a delivery sink recording completion instants.
// Unit tests assert the paper's Fig. 6 polling orders on it; the ablation
// benches sweep batch size, budget, and stage count with it.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernel/cost_model.h"
#include "kernel/cpu.h"
#include "kernel/napi.h"
#include "kernel/net_rx_engine.h"
#include "kernel/skb.h"
#include "kernel/stage_transition.h"
#include "sim/simulator.h"
#include "trace/poll_trace.h"

namespace prism::harness {

/// A packet delivery recorded by the pipeline sink.
struct SyntheticDelivery {
  sim::Time at = 0;
  bool high = false;
};

/// Queue-backed stage with a fixed per-packet cost that forwards into the
/// next napi (via the real StageTransition) or records a delivery.
class SyntheticStage final : public kernel::PacketStage {
 public:
  SyntheticStage(std::string name, sim::Duration per_packet,
                 kernel::StageTransition& transition,
                 std::vector<SyntheticDelivery>& sink)
      : name_(std::move(name)),
        per_packet_(per_packet),
        transition_(transition),
        sink_(sink) {}

  void set_next(kernel::QueueNapi* next) { next_ = next; }

  sim::Duration process_one(kernel::SkbPtr skb, sim::Time at,
                            double cost_multiplier) override {
    auto cost = static_cast<sim::Duration>(
        static_cast<double>(per_packet_) * cost_multiplier);
    if (next_ != nullptr) {
      cost += transition_.transit(std::move(skb), at + cost, *next_,
                                  cost_multiplier);
    } else {
      sink_.push_back(SyntheticDelivery{at + cost, skb->high_priority()});
    }
    return cost;
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  sim::Duration per_packet_;
  kernel::StageTransition& transition_;
  std::vector<SyntheticDelivery>& sink_;
  kernel::QueueNapi* next_ = nullptr;
};

/// NIC-ring-like napi: a counter of pending frames materialized as skbs
/// on poll. Like a real ring it has no priority differentiation — the
/// paper's stage-1 limitation (§IV-D) — so has_high_pending() is always
/// false even when the packets it produces are high priority.
class SyntheticSource final : public kernel::NapiStruct {
 public:
  SyntheticSource(std::string name, const kernel::CostModel& cost,
                  kernel::StageTransition& transition,
                  kernel::QueueNapi& next, bool high_packets)
      : NapiStruct(std::move(name)),
        cost_(cost),
        transition_(transition),
        next_(next),
        high_(high_packets) {}

  int pending = 0;
  int completes = 0;

  kernel::PollOutcome poll(int batch, sim::Time start) override {
    kernel::PollOutcome out;
    out.cost = cost_.napi_poll_overhead;
    while (out.processed < batch && pending > 0) {
      --pending;
      auto skb = kernel::alloc_skb();
      skb->priority = high_ ? 1 : 0;
      skb->ts.nic_rx = start;
      sim::Duration c = cost_.nic_stage_per_packet;
      c += transition_.transit(std::move(skb), start + out.cost + c,
                               next_);
      out.cost += c;
      ++out.processed;
    }
    out.has_more = pending > 0;
    return out;
  }

  bool has_pending() const override { return pending > 0; }
  bool has_high_pending() const override { return false; }
  void on_complete() override { ++completes; }

 private:
  const kernel::CostModel& cost_;
  kernel::StageTransition& transition_;
  kernel::QueueNapi& next_;
  bool high_;
};

/// Assembled N-stage pipeline on one CPU: source -> stage2 .. stageN ->
/// sink. Stage names follow the overlay convention for N=3
/// ({eth, br, veth}); longer pipelines get s2, s3, ...
class SyntheticPipeline {
 public:
  /// `stages` >= 2 (the source counts as stage 1).
  explicit SyntheticPipeline(kernel::NapiMode mode, int stages = 3,
                             kernel::CostModel cost_model = {})
      : cost(cost_model),
        cpu(sim, cost, 0),
        engine(sim, cpu, cost, mode),
        transition(engine, cost) {
    const int queue_stages = stages - 1;
    for (int i = 0; i < queue_stages; ++i) {
      std::string name;
      if (stages == 3) {
        name = i == 0 ? "br" : "veth";
      } else {
        name = "s" + std::to_string(i + 2);
      }
      const sim::Duration per_packet =
          i + 1 == queue_stages ? cost.backlog_stage_per_packet
                                : cost.bridge_stage_per_packet;
      stages_.push_back(std::make_unique<SyntheticStage>(
          name, per_packet, transition, deliveries));
      napis_.push_back(
          std::make_unique<kernel::QueueNapi>(name, *stages_[static_cast<
              std::size_t>(i)], cost));
    }
    for (int i = 0; i + 1 < queue_stages; ++i) {
      stages_[static_cast<std::size_t>(i)]->set_next(
          napis_[static_cast<std::size_t>(i) + 1].get());
    }
    source = std::make_unique<SyntheticSource>(
        stages == 3 ? "eth" : "s1", cost, transition, *napis_.front(),
        /*high_packets=*/false);
    source_high = std::make_unique<SyntheticSource>(
        stages == 3 ? "eth" : "s1", cost, transition, *napis_.front(),
        /*high_packets=*/true);
    engine.set_poll_trace(&trace);
  }

  /// Feeds `n` frames into the chosen source and schedules it (the IRQ
  /// top-half equivalent).
  void feed(SyntheticSource& src, int n) {
    src.pending += n;
    engine.napi_schedule(src, false);
  }

  kernel::QueueNapi& stage_napi(std::size_t i) { return *napis_[i]; }
  std::size_t stage_count() const { return napis_.size() + 1; }

  kernel::CostModel cost;
  sim::Simulator sim;
  kernel::Cpu cpu;
  kernel::NetRxEngine engine;
  kernel::StageTransition transition;
  std::vector<SyntheticDelivery> deliveries;
  std::unique_ptr<SyntheticSource> source;       ///< low-priority packets
  std::unique_ptr<SyntheticSource> source_high;  ///< high-priority packets
  trace::PollTrace trace;

 private:
  std::vector<std::unique_ptr<SyntheticStage>> stages_;
  std::vector<std::unique_ptr<kernel::QueueNapi>> napis_;
};

}  // namespace prism::harness
