#include "harness/cluster.h"

#include <stdexcept>

#include "sim/lane_profiler.h"
#include "telemetry/json_writer.h"
#include "telemetry/latency.h"
#include "telemetry/rollup.h"

namespace prism::harness {

namespace {

kernel::HostConfig pair_client_config(const ClusterConfig& cfg, int pair) {
  kernel::HostConfig h;
  h.name = "client" + std::to_string(pair);
  h.ip = net::Ipv4Addr::of(10, 0, static_cast<std::uint8_t>(pair), 1);
  h.num_cpus = cfg.client_cpus;
  h.nic_queues = cfg.client_queues;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.flow_cache = cfg.flow_cache;
  return h;
}

kernel::HostConfig pair_server_config(const ClusterConfig& cfg, int pair) {
  kernel::HostConfig h;
  h.name = "server" + std::to_string(pair);
  h.ip = net::Ipv4Addr::of(10, 0, static_cast<std::uint8_t>(pair), 2);
  h.num_cpus = cfg.server_cpus;
  h.nic_queues = 1;  // all network processing on one core, as in the paper
  h.queue_cpu_map = {0};
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.faults = cfg.server_faults;
  h.netdev_max_backlog = cfg.server_netdev_max_backlog;
  h.overload = cfg.server_overload;
  h.flow_cache = cfg.flow_cache;
  return h;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : lanes_(2 * (config.pairs < 1 ? 1 : config.pairs)) {
  if (config.pairs < 1 || config.pairs > 127) {
    throw std::invalid_argument("Cluster: pairs must be in [1, 127]");
  }
  pairs_.reserve(static_cast<std::size_t>(config.pairs));
  for (int p = 0; p < config.pairs; ++p) {
    Pair pair;
    pair.client = std::make_unique<kernel::Host>(
        lanes_.lane(client_lane(p)), pair_client_config(config, p));
    pair.server = std::make_unique<kernel::Host>(
        lanes_.lane(server_lane(p)), pair_server_config(config, p));
    pair.wire = std::make_unique<nic::Wire>(
        lanes_, client_lane(p), server_lane(p), config.wire_gbps,
        config.propagation);
    pair.overlay = std::make_unique<overlay::OverlayNetwork>(
        42 + static_cast<std::uint32_t>(p));
    pair.wire->attach(pair.client->nic(), pair.server->nic());
    pair.client->nic().attach_wire(*pair.wire);
    pair.server->nic().attach_wire(*pair.wire);
    pair.client->add_neighbor(pair.server->ip(), pair.server->mac());
    pair.server->add_neighbor(pair.client->ip(), pair.client->mac());
    pairs_.push_back(std::move(pair));
  }
}

Cluster::~Cluster() {
  // The engine borrows the profiler; detach before it is destroyed.
  lanes_.set_profiler(nullptr);
}

sim::LaneProfiler& Cluster::enable_lane_profiler(std::size_t round_capacity,
                                                 std::uint64_t sample_every) {
  if (!profiler_) {
    profiler_ = std::make_unique<sim::LaneProfiler>(
        round_capacity == 0 ? sim::LaneProfiler::kDefaultRoundCapacity
                            : round_capacity,
        sample_every == 0 ? sim::LaneProfiler::kDefaultSampleEvery
                          : sample_every);
    lanes_.set_profiler(profiler_.get());
  }
  return *profiler_;
}

void Cluster::export_lane_trace(telemetry::SpanTracer& tracer,
                                int track_base) const {
  if (profiler_) telemetry::export_lane_trace(*profiler_, tracer, track_base);
}

std::string Cluster::proc_read(std::string_view path) {
  if (path == "prism/lanes") return telemetry::lanes_json(profiler_.get());
  if (path == "prism/cluster") return cluster_json();
  if (path == "prism/telemetry/index") {
    std::string out;
    for (const std::string& p : proc_paths()) {
      out += p;
      out += '\n';
    }
    return out;
  }
  return "";
}

std::vector<std::string> Cluster::proc_paths() const {
  return {"prism/cluster", "prism/lanes", "prism/telemetry/index"};
}

std::string Cluster::cluster_json() {
  telemetry::JsonWriter w;
  w.begin_object();
  w.member("pairs", static_cast<std::int64_t>(pairs()));
  w.member("hosts", static_cast<std::int64_t>(num_hosts()));

  std::vector<const telemetry::Registry*> regs;
  std::vector<const telemetry::LatencyLedger*> ledgers;
  std::vector<const telemetry::AnomalyBank*> banks;
  regs.reserve(static_cast<std::size_t>(num_hosts()));
  ledgers.reserve(static_cast<std::size_t>(num_hosts()));
  banks.reserve(static_cast<std::size_t>(num_hosts()));
  for (Pair& p : pairs_) {
    regs.push_back(&p.client->metrics());
    regs.push_back(&p.server->metrics());
    ledgers.push_back(&p.client->latency_ledger());
    ledgers.push_back(&p.server->latency_ledger());
    banks.push_back(&p.client->anomalies());
    banks.push_back(&p.server->anomalies());
  }
  w.key("registry");
  telemetry::write_merged_registry_json(w, regs);
  w.key("latency");
  telemetry::write_merged_latency_json(w, ledgers);
  w.key("anomalies");
  telemetry::write_merged_anomalies_json(w, banks);

  w.key("pair_summaries").begin_array();
  for (int i = 0; i < pairs(); ++i) {
    Pair& p = pairs_[static_cast<std::size_t>(i)];
    w.begin_object();
    w.member("pair", static_cast<std::int64_t>(i));
    w.member("client", p.client->name());
    w.member("server", p.server->name());
    // Both endpoints' ledgers summed: the pair's whole loss budget.
    w.key("drops").begin_object();
    std::uint64_t total = 0;
    for (int r = 0; r < fault::kNumDropReasons; ++r) {
      total += p.client->faults().drops.total(
                   static_cast<fault::DropReason>(r)) +
               p.server->faults().drops.total(
                   static_cast<fault::DropReason>(r));
    }
    w.member("total", total);
    w.key("by_reason").begin_object();
    for (int r = 0; r < fault::kNumDropReasons; ++r) {
      const auto reason = static_cast<fault::DropReason>(r);
      const std::uint64_t n = p.client->faults().drops.total(reason) +
                              p.server->faults().drops.total(reason);
      if (n != 0) w.member(fault::drop_reason_name(reason), n);
    }
    w.end_object();
    w.key("by_class").begin_array();
    for (int c = 0; c < fault::kNumFaultClasses; ++c) {
      w.value(p.client->faults().drops.class_total(c) +
              p.server->faults().drops.class_total(c));
    }
    w.end_array();
    w.end_object();
    // The server is the loaded end (clients spread flows over all
    // cores); its governor is the pair's overload story.
    const kernel::OverloadGovernor& gov = p.server->governor();
    w.key("overload")
        .begin_object()
        .member("state", kernel::to_string(gov.state()))
        .member("entries", gov.entries())
        .member("exits", gov.exits())
        .member("livelocks", gov.livelocks())
        .end_object();
    w.end_object();
  }
  w.end_array();

  w.key("engine")
      .begin_object()
      .member("lanes", static_cast<std::int64_t>(lanes_.num_lanes()))
      .member("windows_run", lanes_.windows_run())
      .member("messages_posted", lanes_.messages_posted())
      .member("inbox_spills", lanes_.inbox_spills())
      .end_object();
  w.key("lanes");
  telemetry::write_lanes_json(w, profiler_.get());
  w.end_object();
  return w.take();
}

overlay::Netns& Cluster::add_client_container(int pair,
                                              const std::string& name) {
  Pair& p = pairs_.at(static_cast<std::size_t>(pair));
  return p.overlay->add_container(
      *p.client, name,
      net::Ipv4Addr::of(172, 17, static_cast<std::uint8_t>(pair),
                        p.next_container_ip++));
}

overlay::Netns& Cluster::add_server_container(int pair,
                                              const std::string& name) {
  Pair& p = pairs_.at(static_cast<std::size_t>(pair));
  return p.overlay->add_container(
      *p.server, name,
      net::Ipv4Addr::of(172, 17, static_cast<std::uint8_t>(pair),
                        p.next_container_ip++));
}

}  // namespace prism::harness
