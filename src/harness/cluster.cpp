#include "harness/cluster.h"

#include <stdexcept>

namespace prism::harness {

namespace {

kernel::HostConfig pair_client_config(const ClusterConfig& cfg, int pair) {
  kernel::HostConfig h;
  h.name = "client" + std::to_string(pair);
  h.ip = net::Ipv4Addr::of(10, 0, static_cast<std::uint8_t>(pair), 1);
  h.num_cpus = cfg.client_cpus;
  h.nic_queues = cfg.client_queues;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  return h;
}

kernel::HostConfig pair_server_config(const ClusterConfig& cfg, int pair) {
  kernel::HostConfig h;
  h.name = "server" + std::to_string(pair);
  h.ip = net::Ipv4Addr::of(10, 0, static_cast<std::uint8_t>(pair), 2);
  h.num_cpus = cfg.server_cpus;
  h.nic_queues = 1;  // all network processing on one core, as in the paper
  h.queue_cpu_map = {0};
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.faults = cfg.server_faults;
  h.netdev_max_backlog = cfg.server_netdev_max_backlog;
  h.overload = cfg.server_overload;
  return h;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : lanes_(2 * (config.pairs < 1 ? 1 : config.pairs)) {
  if (config.pairs < 1 || config.pairs > 127) {
    throw std::invalid_argument("Cluster: pairs must be in [1, 127]");
  }
  pairs_.reserve(static_cast<std::size_t>(config.pairs));
  for (int p = 0; p < config.pairs; ++p) {
    Pair pair;
    pair.client = std::make_unique<kernel::Host>(
        lanes_.lane(client_lane(p)), pair_client_config(config, p));
    pair.server = std::make_unique<kernel::Host>(
        lanes_.lane(server_lane(p)), pair_server_config(config, p));
    pair.wire = std::make_unique<nic::Wire>(
        lanes_, client_lane(p), server_lane(p), config.wire_gbps,
        config.propagation);
    pair.overlay = std::make_unique<overlay::OverlayNetwork>(
        42 + static_cast<std::uint32_t>(p));
    pair.wire->attach(pair.client->nic(), pair.server->nic());
    pair.client->nic().attach_wire(*pair.wire);
    pair.server->nic().attach_wire(*pair.wire);
    pair.client->add_neighbor(pair.server->ip(), pair.server->mac());
    pair.server->add_neighbor(pair.client->ip(), pair.client->mac());
    pairs_.push_back(std::move(pair));
  }
}

overlay::Netns& Cluster::add_client_container(int pair,
                                              const std::string& name) {
  Pair& p = pairs_.at(static_cast<std::size_t>(pair));
  return p.overlay->add_container(
      *p.client, name,
      net::Ipv4Addr::of(172, 17, static_cast<std::uint8_t>(pair),
                        p.next_container_ip++));
}

overlay::Netns& Cluster::add_server_container(int pair,
                                              const std::string& name) {
  Pair& p = pairs_.at(static_cast<std::size_t>(pair));
  return p.overlay->add_container(
      *p.server, name,
      net::Ipv4Addr::of(172, 17, static_cast<std::uint8_t>(pair),
                        p.next_container_ip++));
}

}  // namespace prism::harness
