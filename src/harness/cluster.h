// Multi-pair testbed for parallel simulation: N client/server pairs, one
// event lane per host.
//
// The paper's testbed is one client/server pair on one wire; Cluster
// replicates that pair P times (2P hosts) and assigns every host its own
// simulation lane, so an 8-host cluster runs on up to 8 real threads.
// Each pair gets its own wire, VXLAN overlay (distinct VNI), and address
// range; pairs interact only through the shared wall clock, which makes
// the topology an honest scaling benchmark for the conservative-window
// scheduler — the wires' propagation delay is the lookahead that decides
// how often the lanes synchronize.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/host.h"
#include "nic/wire.h"
#include "overlay/overlay_network.h"
#include "sim/lane.h"

namespace prism::sim {
class LaneProfiler;
}
namespace prism::telemetry {
class SpanTracer;
}

namespace prism::harness {

/// Cluster parameters. Per-pair defaults mirror TestbedConfig.
struct ClusterConfig {
  int pairs = 2;  ///< client/server pairs; hosts = 2 * pairs, one lane each
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  kernel::CostModel cost;
  int client_cpus = 4;
  int server_cpus = 4;
  int client_queues = 4;  ///< client-side RSS
  std::size_t nic_ring_capacity = 4096;
  nic::CoalesceConfig coalesce{sim::microseconds(50), 64};
  double wire_gbps = 100.0;
  sim::Duration propagation = sim::nanoseconds(500);
  /// Fault injection on every server host (default inactive); clients
  /// stay fault-free, as in TestbedConfig. Each server owns an
  /// independent FaultLayer seeded from this config, so faults on pair i
  /// never perturb pair j.
  fault::FaultConfig server_faults;
  /// Overload control + backlog sizing on every server host.
  kernel::OverloadConfig server_overload;
  std::size_t server_netdev_max_backlog = 1000;
  /// Overlay flow cache (ONCache-style stage-1 fast path) on every host.
  bool flow_cache = false;
};

/// P client/server pairs, 2P hosts, 2P lanes.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config = ClusterConfig{});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int pairs() const noexcept { return static_cast<int>(pairs_.size()); }
  int num_hosts() const noexcept { return 2 * pairs(); }

  sim::LaneSet& lanes() noexcept { return lanes_; }

  kernel::Host& client(int pair) { return *pairs_.at(pair).client; }
  kernel::Host& server(int pair) { return *pairs_.at(pair).server; }
  nic::Wire& wire(int pair) { return *pairs_.at(pair).wire; }
  overlay::OverlayNetwork& overlay(int pair) {
    return *pairs_.at(pair).overlay;
  }

  /// Lane indices: client of pair i is lane 2i, server is lane 2i+1.
  int client_lane(int pair) const noexcept { return 2 * pair; }
  int server_lane(int pair) const noexcept { return 2 * pair + 1; }
  sim::Simulator& client_sim(int pair) {
    return lanes_.lane(client_lane(pair));
  }
  sim::Simulator& server_sim(int pair) {
    return lanes_.lane(server_lane(pair));
  }

  /// Adds a container on pair `pair`'s client/server host, attached to
  /// that pair's overlay. Container IPs auto-assign in 172.17.<pair>.0/24.
  overlay::Netns& add_client_container(int pair, const std::string& name);
  overlay::Netns& add_server_container(int pair, const std::string& name);

  /// Advances every lane to `deadline` on `threads` OS threads.
  /// Deterministic for any thread count.
  void run_until(sim::Time deadline, int threads = 1) {
    lanes_.run_until(deadline, threads);
  }

  // ---------------------------------------------------------- observability
  /// Creates (or returns) the cluster's lane profiler and attaches it to
  /// the lane engine; subsequent run_until calls are profiled. The
  /// profiler never alters the schedule, so profiled runs stay
  /// byte-identical to unprofiled ones. `round_capacity` sizes the
  /// per-round record rings (0 = LaneProfiler's default) and
  /// `sample_every` the wall-clock sampling period (0 = default; 1 =
  /// every round, for tests and fine-grained traces); both ignored when
  /// the profiler already exists. Under -DPRISM_TELEMETRY=OFF the
  /// profiler is created but the engine ignores the attach, so every
  /// reading stays zero.
  sim::LaneProfiler& enable_lane_profiler(std::size_t round_capacity = 0,
                                          std::uint64_t sample_every = 0);
  /// nullptr until enable_lane_profiler() is called.
  sim::LaneProfiler* lane_profiler() noexcept { return profiler_.get(); }

  /// Replays the profiled rounds into `tracer` as per-lane tracks
  /// (telemetry::export_lane_trace): lane i's windows on track
  /// `track_base + 2i`, its barrier stalls on `track_base + 2i + 1`.
  /// No-op until the profiler is enabled.
  void export_lane_trace(telemetry::SpanTracer& tracer,
                         int track_base = 0) const;

  /// Cluster-level proc files (the fleet view over the per-host
  /// proc() interfaces):
  ///   prism/lanes           — lane profiler document (telemetry JSON)
  ///   prism/cluster         — fleet roll-up: merged registries, merged
  ///                           latency histograms, per-pair drop and
  ///                           overload summaries, lane-engine totals
  ///   prism/telemetry/index — these paths, one per line, sorted
  /// Unknown paths read as "" like ProcInterface::read.
  std::string proc_read(std::string_view path);
  std::vector<std::string> proc_paths() const;

 private:
  struct Pair {
    std::unique_ptr<kernel::Host> client;
    std::unique_ptr<kernel::Host> server;
    std::unique_ptr<nic::Wire> wire;
    std::unique_ptr<overlay::OverlayNetwork> overlay;
    std::uint8_t next_container_ip = 2;
  };

  std::string cluster_json();

  sim::LaneSet lanes_;
  std::vector<Pair> pairs_;
  /// Owned by the cluster, attached to lanes_ (which only borrows it);
  /// declared after lanes_ yet destroyed first, so the dtor detaches it
  /// before the engine goes away.
  std::unique_ptr<sim::LaneProfiler> profiler_;
};

}  // namespace prism::harness
