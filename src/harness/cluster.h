// Multi-pair testbed for parallel simulation: N client/server pairs, one
// event lane per host.
//
// The paper's testbed is one client/server pair on one wire; Cluster
// replicates that pair P times (2P hosts) and assigns every host its own
// simulation lane, so an 8-host cluster runs on up to 8 real threads.
// Each pair gets its own wire, VXLAN overlay (distinct VNI), and address
// range; pairs interact only through the shared wall clock, which makes
// the topology an honest scaling benchmark for the conservative-window
// scheduler — the wires' propagation delay is the lookahead that decides
// how often the lanes synchronize.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/host.h"
#include "nic/wire.h"
#include "overlay/overlay_network.h"
#include "sim/lane.h"

namespace prism::harness {

/// Cluster parameters. Per-pair defaults mirror TestbedConfig.
struct ClusterConfig {
  int pairs = 2;  ///< client/server pairs; hosts = 2 * pairs, one lane each
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  kernel::CostModel cost;
  int client_cpus = 4;
  int server_cpus = 4;
  int client_queues = 4;  ///< client-side RSS
  std::size_t nic_ring_capacity = 4096;
  nic::CoalesceConfig coalesce{sim::microseconds(50), 64};
  double wire_gbps = 100.0;
  sim::Duration propagation = sim::nanoseconds(500);
  /// Fault injection on every server host (default inactive); clients
  /// stay fault-free, as in TestbedConfig. Each server owns an
  /// independent FaultLayer seeded from this config, so faults on pair i
  /// never perturb pair j.
  fault::FaultConfig server_faults;
  /// Overload control + backlog sizing on every server host.
  kernel::OverloadConfig server_overload;
  std::size_t server_netdev_max_backlog = 1000;
};

/// P client/server pairs, 2P hosts, 2P lanes.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config = ClusterConfig{});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int pairs() const noexcept { return static_cast<int>(pairs_.size()); }
  int num_hosts() const noexcept { return 2 * pairs(); }

  sim::LaneSet& lanes() noexcept { return lanes_; }

  kernel::Host& client(int pair) { return *pairs_.at(pair).client; }
  kernel::Host& server(int pair) { return *pairs_.at(pair).server; }
  nic::Wire& wire(int pair) { return *pairs_.at(pair).wire; }

  /// Lane indices: client of pair i is lane 2i, server is lane 2i+1.
  int client_lane(int pair) const noexcept { return 2 * pair; }
  int server_lane(int pair) const noexcept { return 2 * pair + 1; }
  sim::Simulator& client_sim(int pair) {
    return lanes_.lane(client_lane(pair));
  }
  sim::Simulator& server_sim(int pair) {
    return lanes_.lane(server_lane(pair));
  }

  /// Adds a container on pair `pair`'s client/server host, attached to
  /// that pair's overlay. Container IPs auto-assign in 172.17.<pair>.0/24.
  overlay::Netns& add_client_container(int pair, const std::string& name);
  overlay::Netns& add_server_container(int pair, const std::string& name);

  /// Advances every lane to `deadline` on `threads` OS threads.
  /// Deterministic for any thread count.
  void run_until(sim::Time deadline, int threads = 1) {
    lanes_.run_until(deadline, threads);
  }

 private:
  struct Pair {
    std::unique_ptr<kernel::Host> client;
    std::unique_ptr<kernel::Host> server;
    std::unique_ptr<nic::Wire> wire;
    std::unique_ptr<overlay::OverlayNetwork> overlay;
    std::uint8_t next_container_ip = 2;
  };

  sim::LaneSet lanes_;
  std::vector<Pair> pairs_;
};

}  // namespace prism::harness
