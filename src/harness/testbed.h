// The paper's experimental testbed, in simulation.
//
// Two machines connected point-to-point (paper §V-A): a "client" that
// generates traffic and a "server" under test. The server directs all
// network processing to a single core (one NIC queue -> CPU 0) and runs
// applications on separate cores; the client spreads its own reception
// across queues so it is never the bottleneck. One VXLAN overlay spans
// both hosts for container workloads.
//
// The testbed runs on one of two engines, selected by TestbedConfig::
// threads: the classic shared single-threaded Simulator (threads <= 1,
// the default), or the parallel lane backend (threads >= 2) where each
// host owns a simulation lane and the wire's propagation delay is the
// conservative lookahead (sim/lane.h). Lane-mode runs are deterministic
// for any thread count; callers drive the clock through run_until() and
// address each host's lane with client_sim()/server_sim(), which in
// classic mode all refer to the one shared simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kernel/host.h"
#include "nic/wire.h"
#include "overlay/overlay_network.h"
#include "sim/lane.h"
#include "sim/simulator.h"

namespace prism::harness {

/// Process-wide default for TestbedConfig::threads == 0 (and thus for
/// every scenario config that leaves threads at 0). Benches set it once
/// from a --threads flag; the parallel backend becomes opt-in everywhere
/// without per-bench plumbing. Values < 1 clamp to 1.
void set_default_threads(int threads);
int default_threads();

/// Testbed parameters. Defaults mirror the paper's setup.
struct TestbedConfig {
  kernel::CostModel cost;                ///< shared by both hosts
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  int server_cpus = 4;                   ///< CPU 0: packet processing
  /// RPS on the server's bridge->veth boundary (empty = off, as in the
  /// paper's single-core setup).
  std::vector<int> server_rps_cpus;
  int client_cpus = 6;
  int client_queues = 4;                 ///< client-side RSS
  std::size_t nic_ring_capacity = 4096;
  /// Adaptive-style interrupt moderation, as on the paper's ConnectX-5.
  nic::CoalesceConfig coalesce{sim::microseconds(50), 64};
  double wire_gbps = 100.0;
  sim::Duration propagation = sim::nanoseconds(500);
  std::uint32_t vni = 42;
  /// Fault injection on the server under test (default: inactive). The
  /// client stays fault-free so generated load is exactly what was asked
  /// for; stress scenarios that need client-side faults can call
  /// client().configure_faults() directly.
  fault::FaultConfig server_faults;
  /// Server-side backlog limit (netdev_max_backlog; soak scenarios lower
  /// it so watermarks are reachable at simulated rates). The client keeps
  /// the kernel default.
  std::size_t server_netdev_max_backlog = 1000;
  /// Overload control on the server under test (watermarks, flow_limit,
  /// watchdog; kernel/overload.h).
  kernel::OverloadConfig server_overload;
  /// Overlay flow cache (ONCache-style stage-1 fast path) on both hosts.
  /// Off by default so baselines measure the full pipeline.
  bool flow_cache = false;
  /// Simulation engine: 0 = use harness::default_threads(); 1 = classic
  /// shared simulator; >= 2 = parallel lanes (client lane 0, server lane
  /// 1) run on that many OS threads (clamped to the lane count).
  int threads = 0;
};

/// Two hosts, a wire, and one overlay network.
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config = TestbedConfig{});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// True when the parallel lane backend is active (threads >= 2).
  bool parallel() const noexcept { return lanes_ != nullptr; }
  /// Resolved thread count the testbed runs with.
  int threads() const noexcept { return threads_; }

  /// The classic shared simulator. Throws std::logic_error in lane mode —
  /// there is no single simulator there; use client_sim()/server_sim()
  /// to schedule and run_until() to drive the clock.
  sim::Simulator& sim();

  /// The simulator the client/server host schedules on. In classic mode
  /// both return the shared simulator.
  sim::Simulator& client_sim() noexcept {
    return lanes_ ? lanes_->lane(0) : *sim_;
  }
  sim::Simulator& server_sim() noexcept {
    return lanes_ ? lanes_->lane(1) : *sim_;
  }

  /// Advances the simulation to `deadline` on the configured engine.
  /// Lane mode uses the configured thread count (forced to one thread,
  /// with identical results, while a shared span tracer is attached).
  void run_until(sim::Time deadline);

  kernel::Host& client() noexcept { return client_; }
  kernel::Host& server() noexcept { return server_; }
  overlay::OverlayNetwork& overlay() noexcept { return overlay_; }
  nic::Wire& wire() noexcept { return *wire_; }

  /// Adds a container on the client/server host. Container IPs are
  /// auto-assigned in 172.17.0.0/16.
  overlay::Netns& add_client_container(const std::string& name);
  overlay::Netns& add_server_container(const std::string& name);

  /// Sets the NAPI mode on both hosts (engines must be idle).
  void set_mode(kernel::NapiMode mode);

  /// The server's packet-processing core (all RX lands here).
  kernel::Cpu& server_rx_cpu() {
    return server_.cpu(server_.default_rx_cpu());
  }

  /// Attaches one shared span tracer to both hosts: server CPUs on
  /// tracks [0, server_cpus), client CPUs on the tracks after them, so
  /// one exported trace shows every core of the testbed as its own row.
  /// In lane mode this forces windows onto a single thread (the tracer
  /// is not thread-safe); the simulation results are unchanged.
  void attach_span_tracer(telemetry::SpanTracer& tracer) {
    tracer_shared_ = true;
    server_.set_span_tracer(&tracer, 0);
    client_.set_span_tracer(&tracer, server_.num_cpus());
  }

 private:
  /// Resolved before the hosts so member init can pick the right engine.
  int threads_;
  std::unique_ptr<sim::Simulator> sim_;   ///< classic mode (threads <= 1)
  std::unique_ptr<sim::LaneSet> lanes_;   ///< lane mode (threads >= 2)
  kernel::Host client_;
  kernel::Host server_;
  std::unique_ptr<nic::Wire> wire_;
  overlay::OverlayNetwork overlay_;
  bool tracer_shared_ = false;
  std::uint8_t next_container_ip_ = 2;
};

}  // namespace prism::harness
