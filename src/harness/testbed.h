// The paper's experimental testbed, in simulation.
//
// Two machines connected point-to-point (paper §V-A): a "client" that
// generates traffic and a "server" under test. The server directs all
// network processing to a single core (one NIC queue -> CPU 0) and runs
// applications on separate cores; the client spreads its own reception
// across queues so it is never the bottleneck. One VXLAN overlay spans
// both hosts for container workloads.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/host.h"
#include "nic/wire.h"
#include "overlay/overlay_network.h"
#include "sim/simulator.h"

namespace prism::harness {

/// Testbed parameters. Defaults mirror the paper's setup.
struct TestbedConfig {
  kernel::CostModel cost;                ///< shared by both hosts
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  int server_cpus = 4;                   ///< CPU 0: packet processing
  /// RPS on the server's bridge->veth boundary (empty = off, as in the
  /// paper's single-core setup).
  std::vector<int> server_rps_cpus;
  int client_cpus = 6;
  int client_queues = 4;                 ///< client-side RSS
  std::size_t nic_ring_capacity = 4096;
  /// Adaptive-style interrupt moderation, as on the paper's ConnectX-5.
  nic::CoalesceConfig coalesce{sim::microseconds(50), 64};
  double wire_gbps = 100.0;
  sim::Duration propagation = sim::nanoseconds(500);
  std::uint32_t vni = 42;
  /// Fault injection on the server under test (default: inactive). The
  /// client stays fault-free so generated load is exactly what was asked
  /// for; stress scenarios that need client-side faults can call
  /// client().configure_faults() directly.
  fault::FaultConfig server_faults;
  /// Server-side backlog limit (netdev_max_backlog; soak scenarios lower
  /// it so watermarks are reachable at simulated rates). The client keeps
  /// the kernel default.
  std::size_t server_netdev_max_backlog = 1000;
  /// Overload control on the server under test (watermarks, flow_limit,
  /// watchdog; kernel/overload.h).
  kernel::OverloadConfig server_overload;
};

/// Two hosts, a wire, and one overlay network.
class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config = TestbedConfig{});

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& sim() noexcept { return sim_; }
  kernel::Host& client() noexcept { return client_; }
  kernel::Host& server() noexcept { return server_; }
  overlay::OverlayNetwork& overlay() noexcept { return overlay_; }
  nic::Wire& wire() noexcept { return wire_; }

  /// Adds a container on the client/server host. Container IPs are
  /// auto-assigned in 172.17.0.0/16.
  overlay::Netns& add_client_container(const std::string& name);
  overlay::Netns& add_server_container(const std::string& name);

  /// Sets the NAPI mode on both hosts (engines must be idle).
  void set_mode(kernel::NapiMode mode);

  /// The server's packet-processing core (all RX lands here).
  kernel::Cpu& server_rx_cpu() {
    return server_.cpu(server_.default_rx_cpu());
  }

  /// Attaches one shared span tracer to both hosts: server CPUs on
  /// tracks [0, server_cpus), client CPUs on the tracks after them, so
  /// one exported trace shows every core of the testbed as its own row.
  void attach_span_tracer(telemetry::SpanTracer& tracer) {
    server_.set_span_tracer(&tracer, 0);
    client_.set_span_tracer(&tracer, server_.num_cpus());
  }

 private:
  sim::Simulator sim_;
  kernel::Host client_;
  kernel::Host server_;
  nic::Wire wire_;
  overlay::OverlayNetwork overlay_;
  std::uint8_t next_container_ip_ = 2;
};

}  // namespace prism::harness
