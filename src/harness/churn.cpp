#include "harness/churn.h"

#include <stdexcept>

namespace prism::harness {

void ChurnOrchestrator::register_container(int pair, int idx,
                                           overlay::Netns& ns) {
  auto& row = slots_.at(static_cast<std::size_t>(pair));
  const auto i = static_cast<std::size_t>(idx);
  if (row.size() <= i) row.resize(i + 1, nullptr);
  row[i] = &ns;
}

void ChurnOrchestrator::run_until(sim::Time deadline, int threads) {
  const auto& events = plan_.events();
  while (next_ < events.size() && events[next_].at <= deadline) {
    const fault::ChurnEvent& e = events[next_];
    // Barrier: every lane stops at exactly e.at before the control plane
    // mutates hosts. run_until to the same instant twice (coincident
    // events) is a no-op round.
    cluster_.run_until(e.at, threads);
    apply(e);
    ++next_;
  }
  cluster_.run_until(deadline, threads);
}

void ChurnOrchestrator::apply(const fault::ChurnEvent& e) {
  overlay::Netns* ns =
      slots_.at(static_cast<std::size_t>(e.pair))
          .at(static_cast<std::size_t>(e.container));
  if (ns == nullptr) {
    throw std::logic_error("ChurnOrchestrator: event for unregistered slot");
  }
  overlay::OverlayNetwork& overlay = cluster_.overlay(e.pair);
  switch (e.kind) {
    case fault::ChurnKind::kStop: {
      overlay.stop_container(*ns, plan_.config().drain);
      if (on_stopped) on_stopped(e.pair, e.container, *ns, e.at);
      break;
    }
    case fault::ChurnKind::kRestart: {
      overlay::Netns& fresh = overlay.restart_container(*ns);
      slots_[static_cast<std::size_t>(e.pair)]
            [static_cast<std::size_t>(e.container)] = &fresh;
      if (on_restarted) on_restarted(e.pair, e.container, fresh, e.at);
      break;
    }
    case fault::ChurnKind::kMigrate: {
      kernel::Host& src = overlay.host_of(*ns);
      kernel::Host& dst = (&src == &cluster_.server(e.pair))
                              ? cluster_.client(e.pair)
                              : cluster_.server(e.pair);
      overlay::Netns& fresh =
          overlay.migrate_container(*ns, dst, plan_.config().drain);
      slots_[static_cast<std::size_t>(e.pair)]
            [static_cast<std::size_t>(e.container)] = &fresh;
      if (on_migrated) on_migrated(e.pair, e.container, fresh, e.at);
      break;
    }
  }
}

}  // namespace prism::harness
