#include "harness/experiment.h"

#include <cstdio>

#include "apps/http_server.h"
#include "apps/memaslap.h"
#include "apps/memcached.h"
#include "apps/sockperf.h"
#include "harness/testbed.h"
#include "telemetry/anomaly.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/snapshot.h"
#include "telemetry/span_tracer.h"

namespace prism::harness {

namespace {

constexpr std::uint16_t kProbePort = 11111;
constexpr std::uint16_t kBgPort = 11112;
constexpr std::uint16_t kProbeSrcPort = 20000;
constexpr std::uint16_t kBgSrcBase = 21000;

/// Background drain time after the measurement window so in-flight
/// replies land before results are read.
constexpr sim::Duration kDrain = sim::milliseconds(20);

TestbedConfig testbed_config(const kernel::CostModel& cost,
                             kernel::NapiMode mode, int threads) {
  TestbedConfig tc;
  tc.cost = cost;
  tc.mode = mode;
  tc.threads = threads;
  return tc;
}

/// Clears the server's latency ledger, flow table, flight recorder and
/// anomaly bank at the warmup boundary so the reported attribution and
/// detector findings cover only the measurement window.
void reset_latency_at_warmup(Testbed& tb, sim::Time warmup) {
  tb.server_sim().schedule_at(warmup, [&tb] {
    tb.server().latency_ledger().reset();
    tb.server().flow_table().reset();
    tb.server().flight_recorder().reset();
    tb.server().anomalies().reset();
  });
}

/// Lifts the per-kind firing counters off the server's bank.
AnomalySummary anomaly_summary_of(Testbed& tb) {
  using telemetry::AnomalyKind;
  const telemetry::AnomalyBank& bank = tb.server().anomalies();
  AnomalySummary s;
  s.queue_inversions = bank.fired(AnomalyKind::kQueueInversion);
  s.ring_inversions = bank.fired(AnomalyKind::kRingInversion);
  s.slo_breaches = bank.fired(AnomalyKind::kSloBreach);
  s.drop_bursts = bank.fired(AnomalyKind::kDropBurst);
  s.governor_flaps = bank.fired(AnomalyKind::kGovernorFlap);
  s.findings_retained = bank.findings().size();
  s.events_recorded = tb.server().flight_recorder().recorded();
  s.max_inversion_wait_ns =
      static_cast<std::int64_t>(bank.max_inversion_wait_ns());
  return s;
}

/// Copies the server's flow-cache counters into a result's
/// server_flowcache_* fields (any result type that has them).
template <typename Result>
void fill_flowcache_stats(Result& result, Testbed& tb) {
  const overlay::FlowCache& fc = tb.server().flow_cache();
  result.server_flowcache_hits = fc.hits();
  result.server_flowcache_misses = fc.misses();
  result.server_flowcache_invalidations = fc.invalidations();
  result.server_flowcache_hit_rate = fc.hit_rate();
}

}  // namespace

PriorityScenarioResult run_priority_scenario(
    const PriorityScenarioConfig& cfg) {
  TestbedConfig tc = testbed_config(cfg.cost, cfg.mode, cfg.threads);
  tc.flow_cache = cfg.flow_cache;
  if (cfg.wire_drop_rate > 0 || cfg.wire_dup_rate > 0) {
    tc.server_faults.wire_drop_rate = cfg.wire_drop_rate;
    tc.server_faults.wire_duplicate_rate = cfg.wire_dup_rate;
    tc.server_faults.seed = cfg.fault_seed;
  }
  Testbed tb(tc);
  telemetry::SpanTracer tracer;
  if (!cfg.trace_out.empty()) tb.attach_span_tracer(tracer);
  if (cfg.latency_window > 0) {
    tb.server().latency_ledger().set_window_interval(cfg.latency_window);
  }
  if (cfg.arm_detectors) {
    telemetry::FlightRecorderConfig rc;
    rc.sample_period = cfg.trace_sample_period;
    tb.server().flight_recorder().configure(rc);
    telemetry::AnomalyConfig ac;
    ac.inversion_wait_ns = cfg.inversion_wait_ns;
    ac.slo_p99_ns = cfg.slo_p99_ns;
    tb.server().anomalies().arm(ac);
  }
  reset_latency_at_warmup(tb, cfg.warmup);
  const sim::Time t_end = cfg.warmup + cfg.duration;

  // Endpoints: containers on the overlay path, root namespaces on the
  // host path.
  overlay::Netns* srv_probe_ns = &tb.server().root_ns();
  overlay::Netns* srv_bg_ns = &tb.server().root_ns();
  overlay::Netns* cli_probe_ns = &tb.client().root_ns();
  overlay::Netns* cli_bg_ns = &tb.client().root_ns();
  if (cfg.overlay) {
    cli_probe_ns = &tb.add_client_container("probe-cli");
    cli_bg_ns = &tb.add_client_container("bg-cli");
    srv_probe_ns = &tb.add_server_container("probe-srv");
    srv_bg_ns = &tb.add_server_container("bg-srv");
  }

  // The probe flow is high priority in both directions.
  tb.server().priority_db().add(srv_probe_ns->ip(), kProbePort);
  tb.client().priority_db().add(cli_probe_ns->ip(), kProbeSrcPort);

  // Server applications, each on its own core (paper §V-B2).
  apps::SockperfServer probe_server(
      tb.server_sim(), {&tb.server(), srv_probe_ns, &tb.server().cpu(1),
                        kProbePort});
  apps::SockperfServer bg_server(
      tb.server_sim(),
      {&tb.server(), srv_bg_ns, &tb.server().cpu(2), kBgPort});

  // Probe client: ping-pong, every packet echoed.
  apps::SockperfClient::Config probe_cfg;
  probe_cfg.host = &tb.client();
  probe_cfg.ns = cli_probe_ns;
  probe_cfg.cpus = {&tb.client().cpu(1)};
  probe_cfg.base_src_port = kProbeSrcPort;
  probe_cfg.dst_ip = srv_probe_ns->ip();
  probe_cfg.dst_port = kProbePort;
  probe_cfg.rate_pps = cfg.probe_rate_pps;
  probe_cfg.payload_size = cfg.probe_payload;
  probe_cfg.reply_every = 1;
  probe_cfg.start_at = cfg.warmup;
  probe_cfg.stop_at = t_end;
  apps::SockperfClient probe_client(tb.client_sim(), probe_cfg);

  // Background: constant-rate UDP throughput traffic across two threads.
  apps::SockperfClient::Config bg_cfg;
  bg_cfg.host = &tb.client();
  bg_cfg.ns = cli_bg_ns;
  bg_cfg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bg_cfg.base_src_port = kBgSrcBase;
  bg_cfg.dst_ip = srv_bg_ns->ip();
  bg_cfg.dst_port = kBgPort;
  // The client object is always built (results reference it); a disabled
  // background is simply never started, but the config must stay valid.
  bg_cfg.rate_pps = cfg.bg_rate_pps > 0 ? cfg.bg_rate_pps : 1.0;
  bg_cfg.payload_size = cfg.bg_payload;
  bg_cfg.burst = cfg.bg_burst;
  bg_cfg.reply_every = 0;
  bg_cfg.start_at = 0;
  bg_cfg.stop_at = t_end + kDrain / 2;
  apps::SockperfClient bg_client(tb.client_sim(), bg_cfg);

  probe_client.start();
  if (cfg.busy && cfg.bg_rate_pps > 0) bg_client.start();

  // Measure server RX-core utilization over the probe window (server
  // state, so it samples on the server's lane).
  auto& rx_acct = tb.server_rx_cpu().accounting();
  tb.server_sim().schedule_at(cfg.warmup, [&] {
    rx_acct.begin_window(tb.server_sim().now());
  });
  double utilization = 0.0;
  tb.server_sim().schedule_at(t_end, [&] {
    utilization = rx_acct.utilization(tb.server_sim().now());
  });

  tb.run_until(t_end + kDrain);

  PriorityScenarioResult result;
  result.latency.merge(probe_client.latency());
  result.rx_cpu_utilization = utilization;
  result.probes_sent = probe_client.sent();
  result.replies = probe_client.replies();
  result.bg_sent = bg_client.sent();
  result.bg_received = bg_server.received();
  result.server_ring_drops = tb.server().nic().rx_dropped();
  result.server_latency = tb.server().latency_ledger().snapshot();
  fill_flowcache_stats(result, tb);
  result.server_anomalies = anomaly_summary_of(tb);
  if (cfg.arm_detectors) {
    result.server_anomalies_json = telemetry::anomalies_json(
        tb.server().anomalies(), &tb.server().flight_recorder());
  }
  if (!cfg.anomaly_trace_out.empty() &&
      !telemetry::export_anomaly_trace_file(tb.server().anomalies(),
                                            cfg.anomaly_trace_out)) {
    std::fprintf(stderr, "run_priority_scenario: cannot write %s\n",
                 cfg.anomaly_trace_out.c_str());
  }
  if (cfg.collect_telemetry) {
    result.server_telemetry_json =
        telemetry::telemetry_json(tb.server().telemetry());
    result.server_softnet_stat = tb.server().softnet_stat();
  }
  if (!cfg.trace_out.empty() &&
      !tracer.export_chrome_trace_file(cfg.trace_out, "prism-testbed")) {
    std::fprintf(stderr, "run_priority_scenario: cannot write %s\n",
                 cfg.trace_out.c_str());
  }
  return result;
}

StreamlinedScenarioResult run_streamlined_scenario(
    const StreamlinedScenarioConfig& cfg) {
  TestbedConfig tc = testbed_config(cfg.cost, cfg.mode, cfg.threads);
  tc.flow_cache = cfg.flow_cache;
  Testbed tb(tc);
  reset_latency_at_warmup(tb, cfg.warmup);
  const sim::Time t_end = cfg.warmup + cfg.duration;

  auto& cli_ns = tb.add_client_container("flow-cli");
  auto& srv_ns = tb.add_server_container("flow-srv");

  // The measured flow is the high-priority flow (paper Fig. 8 exercises
  // PRISM's streamlining on the flow itself).
  tb.server().priority_db().add(srv_ns.ip(), kProbePort);
  tb.client().priority_db().add(cli_ns.ip(), kProbeSrcPort);
  tb.client().priority_db().add(cli_ns.ip(), kProbeSrcPort + 1);

  apps::SockperfServer server(
      tb.server_sim(),
      {&tb.server(), &srv_ns, &tb.server().cpu(1), kProbePort});

  apps::SockperfClient::Config cc;
  cc.host = &tb.client();
  cc.ns = &cli_ns;
  cc.cpus = {&tb.client().cpu(1), &tb.client().cpu(2)};
  cc.base_src_port = kProbeSrcPort;
  cc.dst_ip = srv_ns.ip();
  cc.dst_port = kProbePort;
  cc.rate_pps = cfg.rate_pps;
  cc.payload_size = cfg.payload;
  cc.reply_every = cfg.reply_every;
  // sockperf's throughput pacer is very precise; near-deterministic
  // spacing is what lets PRISM-sync run at ~95% of its per-core capacity
  // without queue build-up (Fig. 8).
  cc.jitter = 0.05;
  cc.start_at = 0;
  cc.stop_at = t_end;
  apps::SockperfClient client(tb.client_sim(), cc);
  client.start();

  // Window-edge sampling, split by which host owns the counter: server
  // goodput and CPU accounting sample on the server's lane, the client
  // send counter on the client's lane. In classic mode both lanes are the
  // same simulator, so the split is behavior-neutral.
  auto& rx_acct = tb.server_rx_cpu().accounting();
  std::uint64_t received_at_warmup = 0;
  tb.server_sim().schedule_at(cfg.warmup, [&] {
    rx_acct.begin_window(tb.server_sim().now());
    received_at_warmup = server.received();
  });
  double utilization = 0.0;
  std::uint64_t received_at_end = 0;
  std::uint64_t sent_at_warmup = 0;
  tb.client_sim().schedule_at(cfg.warmup,
                              [&] { sent_at_warmup = client.sent(); });
  std::uint64_t sent_at_end = 0;
  tb.server_sim().schedule_at(t_end, [&] {
    utilization = rx_acct.utilization(tb.server_sim().now());
    received_at_end = server.received();
  });
  tb.client_sim().schedule_at(t_end, [&] { sent_at_end = client.sent(); });

  tb.run_until(t_end + kDrain);

  StreamlinedScenarioResult result;
  result.latency.merge(client.latency());
  const double span = sim::to_s(cfg.duration);
  result.delivered_pps =
      static_cast<double>(received_at_end - received_at_warmup) / span;
  result.offered_pps =
      static_cast<double>(sent_at_end - sent_at_warmup) / span;
  result.rx_cpu_utilization = utilization;
  result.server_ring_drops = tb.server().nic().rx_dropped();
  result.server_latency = tb.server().latency_ledger().snapshot();
  fill_flowcache_stats(result, tb);
  return result;
}

MemcachedScenarioResult run_memcached_scenario(
    const MemcachedScenarioConfig& cfg) {
  Testbed tb(testbed_config(cfg.cost, cfg.mode, cfg.threads));
  reset_latency_at_warmup(tb, cfg.warmup);
  const sim::Time t_end = cfg.warmup + cfg.duration;

  auto& cli_mc_ns = tb.add_client_container("memaslap");
  auto& cli_bg_ns = tb.add_client_container("bg-cli");
  auto& srv_mc_ns = tb.add_server_container("memcached");
  auto& srv_bg_ns = tb.add_server_container("bg-srv");

  tb.server().priority_db().add(srv_mc_ns.ip(), 11211);
  tb.client().priority_db().add(cli_mc_ns.ip(), 30000);

  apps::MemcachedServer::Config sc;
  sc.host = &tb.server();
  sc.ns = &srv_mc_ns;
  sc.cpu = &tb.server().cpu(1);
  apps::MemcachedServer mc_server(tb.server_sim(), sc);
  mc_server.preload(10000, cfg.value_size);

  apps::SockperfServer bg_server(
      tb.server_sim(),
      {&tb.server(), &srv_bg_ns, &tb.server().cpu(2), kBgPort});

  apps::MemaslapClient::Config mc;
  mc.host = &tb.client();
  mc.ns = &cli_mc_ns;
  mc.cpu = &tb.client().cpu(1);
  mc.src_port = 30000;
  mc.server_ip = srv_mc_ns.ip();
  mc.concurrency = cfg.concurrency;
  mc.get_ratio = cfg.get_ratio;
  mc.value_size = cfg.value_size;
  mc.start_at = cfg.warmup;
  mc.stop_at = t_end;
  mc.seed = cfg.seed;
  apps::MemaslapClient memaslap(tb.client_sim(), mc);

  apps::SockperfClient::Config bg_cfg;
  bg_cfg.host = &tb.client();
  bg_cfg.ns = &cli_bg_ns;
  bg_cfg.cpus = {&tb.client().cpu(2), &tb.client().cpu(3)};
  bg_cfg.base_src_port = kBgSrcBase;
  bg_cfg.dst_ip = srv_bg_ns.ip();
  bg_cfg.dst_port = kBgPort;
  bg_cfg.rate_pps = cfg.bg_rate_pps;
  bg_cfg.burst = cfg.bg_burst;
  bg_cfg.reply_every = 0;
  bg_cfg.start_at = 0;
  bg_cfg.stop_at = t_end + kDrain / 2;
  apps::SockperfClient bg_client(tb.client_sim(), bg_cfg);

  memaslap.start();
  if (cfg.busy && cfg.bg_rate_pps > 0) bg_client.start();

  auto& rx_acct = tb.server_rx_cpu().accounting();
  tb.server_sim().schedule_at(cfg.warmup, [&] {
    rx_acct.begin_window(tb.server_sim().now());
  });
  double utilization = 0.0;
  tb.server_sim().schedule_at(t_end, [&] {
    utilization = rx_acct.utilization(tb.server_sim().now());
  });

  tb.run_until(t_end + kDrain);

  MemcachedScenarioResult result;
  result.latency.merge(memaslap.latency());
  result.ops_per_second = memaslap.ops_per_second();
  result.completed = memaslap.completed();
  result.timeouts = memaslap.timeouts();
  result.rx_cpu_utilization = utilization;
  result.server_latency = tb.server().latency_ledger().snapshot();
  return result;
}

WebScenarioResult run_web_scenario(const WebScenarioConfig& cfg) {
  Testbed tb(testbed_config(cfg.cost, cfg.mode, cfg.threads));
  reset_latency_at_warmup(tb, cfg.warmup);
  const sim::Time t_end = cfg.warmup + cfg.duration;

  auto& cli_web_ns = tb.add_client_container("wrk");
  auto& cli_bg_ns = tb.add_client_container("bg-cli");
  auto& srv_web_ns = tb.add_server_container("nginx");
  auto& srv_bg_ns = tb.add_server_container("bg-srv");

  tb.server().priority_db().add(srv_web_ns.ip(), 80);
  tb.client().priority_db().add(cli_web_ns.ip(), 40000);

  // Web connection (single connection, paper §V-C2).
  auto& web_cli_ep =
      tb.client().tcp_create(cli_web_ns, srv_web_ns.ip(), 40000, 80);
  auto& web_srv_ep =
      tb.server().tcp_create(srv_web_ns, cli_web_ns.ip(), 80, 40000);

  apps::HttpServer::Config hc;
  hc.host = &tb.server();
  hc.ns = &srv_web_ns;
  hc.cpu = &tb.server().cpu(1);
  hc.connection = &web_srv_ep;
  hc.response_size = cfg.response_size;
  apps::HttpServer http_server(hc);

  apps::Wrk2Client::Config wc;
  wc.host = &tb.client();
  wc.ns = &cli_web_ns;
  wc.cpu = &tb.client().cpu(1);
  wc.connection = &web_cli_ep;
  wc.rate_rps = cfg.web_rate_rps;
  wc.start_at = cfg.warmup;
  wc.stop_at = t_end;
  apps::Wrk2Client wrk(tb.client_sim(), wc);

  // Background: TCP bulk (sockperf TCP throughput, 64 KB messages).
  auto& bg_cli_ep =
      tb.client().tcp_create(cli_bg_ns, srv_bg_ns.ip(), 41000, 5201);
  auto& bg_srv_ep =
      tb.server().tcp_create(srv_bg_ns, cli_bg_ns.ip(), 5201, 41000);
  apps::TcpSinkServer bg_sink(
      {&bg_srv_ep, &tb.server().cpu(2), &tb.server().cost()});
  apps::SockperfTcpSender::Config bc;
  bc.endpoint = &bg_cli_ep;
  bc.cpu = &tb.client().cpu(2);
  bc.rate_mps = cfg.bg_rate_mps;
  bc.message_size = cfg.bg_message_size;
  bc.start_at = 0;
  bc.stop_at = t_end + kDrain / 2;
  apps::SockperfTcpSender bg_sender(tb.client_sim(), bc);

  wrk.start();
  if (cfg.busy && cfg.bg_rate_mps > 0) bg_sender.start();

  auto& rx_acct = tb.server_rx_cpu().accounting();
  tb.server_sim().schedule_at(cfg.warmup, [&] {
    rx_acct.begin_window(tb.server_sim().now());
  });
  double utilization = 0.0;
  tb.server_sim().schedule_at(t_end, [&] {
    utilization = rx_acct.utilization(tb.server_sim().now());
  });

  tb.run_until(t_end + kDrain);

  WebScenarioResult result;
  result.latency.merge(wrk.latency());
  result.requests_per_second = wrk.requests_per_second();
  result.sent = wrk.sent();
  result.completed = wrk.completed();
  result.rx_cpu_utilization = utilization;
  result.bg_bytes_received = bg_sink.bytes_received();
  result.server_latency = tb.server().latency_ledger().snapshot();
  return result;
}

}  // namespace prism::harness
