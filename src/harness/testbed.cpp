#include "harness/testbed.h"

#include <stdexcept>

namespace prism::harness {

namespace {

int g_default_threads = 1;

kernel::HostConfig client_config(const TestbedConfig& cfg) {
  kernel::HostConfig h;
  h.name = "client";
  h.ip = net::Ipv4Addr::of(10, 0, 0, 1);
  h.num_cpus = cfg.client_cpus;
  h.nic_queues = cfg.client_queues;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.flow_cache = cfg.flow_cache;
  return h;
}

kernel::HostConfig server_config(const TestbedConfig& cfg) {
  kernel::HostConfig h;
  h.name = "server";
  h.ip = net::Ipv4Addr::of(10, 0, 0, 2);
  h.num_cpus = cfg.server_cpus;
  h.nic_queues = 1;  // all network processing on one core (paper §V-A)
  h.queue_cpu_map = {0};
  h.rps_cpus = cfg.server_rps_cpus;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.faults = cfg.server_faults;
  h.netdev_max_backlog = cfg.server_netdev_max_backlog;
  h.overload = cfg.server_overload;
  h.flow_cache = cfg.flow_cache;
  return h;
}

int resolve_threads(int configured) {
  int t = configured == 0 ? g_default_threads : configured;
  return t < 1 ? 1 : t;
}

}  // namespace

void set_default_threads(int threads) {
  g_default_threads = threads < 1 ? 1 : threads;
}

int default_threads() { return g_default_threads; }

Testbed::Testbed(const TestbedConfig& config)
    : threads_(resolve_threads(config.threads)),
      sim_(threads_ > 1 ? nullptr : std::make_unique<sim::Simulator>()),
      lanes_(threads_ > 1 ? std::make_unique<sim::LaneSet>(2) : nullptr),
      client_(client_sim(), client_config(config)),
      server_(server_sim(), server_config(config)),
      wire_(lanes_ ? std::make_unique<nic::Wire>(*lanes_, 0, 1,
                                                 config.wire_gbps,
                                                 config.propagation)
                   : std::make_unique<nic::Wire>(*sim_, config.wire_gbps,
                                                 config.propagation)),
      overlay_(config.vni) {
  wire_->attach(client_.nic(), server_.nic());
  client_.nic().attach_wire(*wire_);
  server_.nic().attach_wire(*wire_);
  client_.add_neighbor(server_.ip(), server_.mac());
  server_.add_neighbor(client_.ip(), client_.mac());
}

sim::Simulator& Testbed::sim() {
  if (lanes_) {
    throw std::logic_error(
        "Testbed::sim(): no shared simulator in lane mode; use "
        "client_sim()/server_sim() and Testbed::run_until()");
  }
  return *sim_;
}

void Testbed::run_until(sim::Time deadline) {
  if (lanes_) {
    lanes_->run_until(deadline, tracer_shared_ ? 1 : threads_);
  } else {
    sim_->run_until(deadline);
  }
}

overlay::Netns& Testbed::add_client_container(const std::string& name) {
  return overlay_.add_container(
      client_, name, net::Ipv4Addr::of(172, 17, 0, next_container_ip_++));
}

overlay::Netns& Testbed::add_server_container(const std::string& name) {
  return overlay_.add_container(
      server_, name, net::Ipv4Addr::of(172, 17, 0, next_container_ip_++));
}

void Testbed::set_mode(kernel::NapiMode mode) {
  client_.set_mode(mode);
  server_.set_mode(mode);
}

}  // namespace prism::harness
