#include "harness/testbed.h"

namespace prism::harness {

namespace {

kernel::HostConfig client_config(const TestbedConfig& cfg) {
  kernel::HostConfig h;
  h.name = "client";
  h.ip = net::Ipv4Addr::of(10, 0, 0, 1);
  h.num_cpus = cfg.client_cpus;
  h.nic_queues = cfg.client_queues;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  return h;
}

kernel::HostConfig server_config(const TestbedConfig& cfg) {
  kernel::HostConfig h;
  h.name = "server";
  h.ip = net::Ipv4Addr::of(10, 0, 0, 2);
  h.num_cpus = cfg.server_cpus;
  h.nic_queues = 1;  // all network processing on one core (paper §V-A)
  h.queue_cpu_map = {0};
  h.rps_cpus = cfg.server_rps_cpus;
  h.mode = cfg.mode;
  h.cost = cfg.cost;
  h.nic_ring_capacity = cfg.nic_ring_capacity;
  h.coalesce = cfg.coalesce;
  h.faults = cfg.server_faults;
  h.netdev_max_backlog = cfg.server_netdev_max_backlog;
  h.overload = cfg.server_overload;
  return h;
}

}  // namespace

Testbed::Testbed(const TestbedConfig& config)
    : client_(sim_, client_config(config)),
      server_(sim_, server_config(config)),
      wire_(sim_, config.wire_gbps, config.propagation),
      overlay_(config.vni) {
  wire_.attach(client_.nic(), server_.nic());
  client_.nic().attach_wire(wire_);
  server_.nic().attach_wire(wire_);
  client_.add_neighbor(server_.ip(), server_.mac());
  server_.add_neighbor(client_.ip(), client_.mac());
}

overlay::Netns& Testbed::add_client_container(const std::string& name) {
  return overlay_.add_container(
      client_, name, net::Ipv4Addr::of(172, 17, 0, next_container_ip_++));
}

overlay::Netns& Testbed::add_server_container(const std::string& name) {
  return overlay_.add_container(
      server_, name, net::Ipv4Addr::of(172, 17, 0, next_container_ip_++));
}

void Testbed::set_mode(kernel::NapiMode mode) {
  client_.set_mode(mode);
  server_.set_mode(mode);
}

}  // namespace prism::harness
