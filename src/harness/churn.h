// Applies a fault::ChurnPlan to a Cluster between lane barriers.
//
// The lane engine only tolerates control-plane mutation while no window
// is executing, so the orchestrator turns a plan into a sequence of
// run_until calls: advance every lane to exactly the next event's
// timestamp, apply the event (stop / restart / migrate through the
// pair's OverlayNetwork), and continue. Because the barrier instants are
// a pure function of the plan, the observable schedule — and therefore
// every snapshot — is byte-identical for any thread count.
//
// The orchestrator tracks each churnable container's current incarnation
// (restart and migrate both replace the Netns object) and where it runs,
// and exposes hooks so the benchmark can re-arm application state: a
// restarted server needs its sockets re-bound and its app re-created on
// the new namespace, and the telemetry side wants note_disruption() to
// arm convergence watches.
#pragma once

#include <functional>
#include <vector>

#include "fault/churn.h"
#include "harness/cluster.h"

namespace prism::harness {

/// Drives cluster lifecycle churn from a seeded plan.
class ChurnOrchestrator {
 public:
  ChurnOrchestrator(Cluster& cluster, fault::ChurnPlan plan)
      : cluster_(cluster),
        plan_(std::move(plan)),
        slots_(static_cast<std::size_t>(cluster.pairs())) {}

  /// Registers `ns` as churnable container index `idx` of `pair` (the
  /// indices the plan's events refer to). Must run on the pair's server
  /// or client host; migration always targets the pair's other host.
  void register_container(int pair, int idx, overlay::Netns& ns);

  /// The current incarnation of churnable container (pair, idx). Updated
  /// in place when a restart or migration replaces the namespace.
  overlay::Netns& container(int pair, int idx) {
    return *slots_.at(static_cast<std::size_t>(pair)).at(
        static_cast<std::size_t>(idx));
  }

  /// The host currently running (or last running) container (pair, idx).
  kernel::Host& host_of(int pair, int idx) {
    return cluster_.overlay(pair).host_of(container(pair, idx));
  }

  /// Advances every lane to `deadline`, pausing at each plan event whose
  /// timestamp is <= deadline to apply it at a barrier. Events are
  /// consumed once; successive calls continue where the last left off.
  void run_until(sim::Time deadline, int threads = 1);

  /// Plan events applied so far.
  std::size_t applied() const noexcept { return next_; }

  const fault::ChurnPlan& plan() const noexcept { return plan_; }

  // Hooks fire immediately after the event is applied, at the barrier
  // instant (sim clocks == event.at). `ns` is the affected namespace:
  // the draining old incarnation for on_stopped, the fresh one for
  // on_restarted / on_migrated.
  std::function<void(int pair, int idx, overlay::Netns& ns, sim::Time at)>
      on_stopped;
  std::function<void(int pair, int idx, overlay::Netns& ns, sim::Time at)>
      on_restarted;
  std::function<void(int pair, int idx, overlay::Netns& ns, sim::Time at)>
      on_migrated;

 private:
  void apply(const fault::ChurnEvent& e);

  Cluster& cluster_;
  fault::ChurnPlan plan_;
  std::size_t next_ = 0;  ///< first unapplied plan event
  /// slots_[pair][idx] -> current incarnation.
  std::vector<std::vector<overlay::Netns*>> slots_;
};

}  // namespace prism::harness
