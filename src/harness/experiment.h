// Experiment scenarios reproducing the paper's evaluation (§V).
//
// Each runner builds a fresh testbed, deploys the paper's workload
// combination, runs it for a warmup + measurement window, and returns the
// metrics the corresponding figure reports. Benches and examples call
// these; tests assert their qualitative claims.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/cost_model.h"
#include "kernel/napi.h"
#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "telemetry/latency.h"

namespace prism::harness {

// --------------------------------------------------------------------
// Priority-differentiation scenario (Figs. 3, 9, 10, 11): a low-rate
// high-priority probe flow measured against optional low-priority
// background traffic, on the overlay or host path.
// --------------------------------------------------------------------

struct PriorityScenarioConfig {
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  bool overlay = true;  ///< container path (3 stages) vs host path (1)
  bool busy = true;     ///< background traffic present?
  double bg_rate_pps = 300'000.0;
  /// Background TX burst size (sockperf --burst; see SockperfClient).
  int bg_burst = 64;
  double probe_rate_pps = 1'000.0;
  std::size_t probe_payload = 64;
  std::size_t bg_payload = 64;
  sim::Duration warmup = sim::milliseconds(50);
  sim::Duration duration = sim::milliseconds(500);
  kernel::CostModel cost{};
  /// Collect the server's telemetry (registry JSON + softnet_stat) into
  /// the result. Counters are always live; this only snapshots them.
  bool collect_telemetry = false;
  /// > 0: override the server latency ledger's window interval, for
  /// finer/coarser p50/p99-vs-time series (default 10 ms).
  sim::Duration latency_window = 0;
  /// Non-empty: attach a span tracer to both hosts and export the
  /// timeline as Chrome trace_event JSON to this path (Perfetto-loadable).
  std::string trace_out;
  /// Simulation engine (TestbedConfig::threads): 0 = harness default,
  /// 1 = classic shared simulator, >= 2 = parallel lane backend.
  int threads = 0;
  /// Overlay flow cache on both hosts (ONCache-style stage-1 fast path).
  bool flow_cache = false;
  /// Arm the server's flight recorder + anomaly-detector bank with the
  /// settings below (otherwise both keep their always-on defaults:
  /// sample 1/64, inversion threshold 100 us, no SLO target). Detectors
  /// never alter the schedule; arming only changes what gets reported.
  bool arm_detectors = false;
  /// 1-in-N deterministic flow sampling (classes >= 1 always traced).
  std::uint32_t trace_sample_period = 64;
  /// Priority-inversion threshold: one stamp-point wait this long fires.
  sim::Duration inversion_wait_ns = sim::microseconds(100);
  /// Per-class p99 SLO over 1 ms windows (0 = SLO detector off).
  sim::Duration slo_p99_ns = 0;
  /// Non-empty: export the findings' frozen evidence slices as Chrome
  /// trace_event JSON to this path (Perfetto-loadable).
  std::string anomaly_trace_out;
  /// Mild wire fault injection on the server (drop/duplicate
  /// probabilities), so detector runs see realistic loss; seeded by
  /// fault_seed for reproducible multi-seed tables.
  double wire_drop_rate = 0.0;
  double wire_dup_rate = 0.0;
  std::uint64_t fault_seed = 1;
};

/// Counts of detector firings on the server, lifted from the bank after
/// the run (full document in server_anomalies_json when arm_detectors).
struct AnomalySummary {
  std::uint64_t queue_inversions = 0;
  std::uint64_t ring_inversions = 0;
  std::uint64_t slo_breaches = 0;
  std::uint64_t drop_bursts = 0;
  std::uint64_t governor_flaps = 0;
  std::uint64_t findings_retained = 0;
  std::uint64_t events_recorded = 0;
  std::int64_t max_inversion_wait_ns = 0;

  std::uint64_t inversions() const {
    return queue_inversions + ring_inversions;
  }
  std::uint64_t total() const {
    return inversions() + slo_breaches + drop_bursts + governor_flaps;
  }
};

struct PriorityScenarioResult {
  stats::Histogram latency;  ///< probe one-way latency (RTT/2), ns
  double rx_cpu_utilization = 0.0;  ///< server packet-processing core
  std::uint64_t probes_sent = 0;
  std::uint64_t replies = 0;
  std::uint64_t bg_sent = 0;
  std::uint64_t bg_received = 0;
  std::uint64_t server_ring_drops = 0;
  /// Filled when collect_telemetry: the server telemetry bundle as JSON
  /// ({"counters", "gauges", "rings", "latency", "flows"}) and its
  /// softnet_stat rendering.
  std::string server_telemetry_json;
  std::string server_softnet_stat;
  /// Server-side per-stage latency attribution over the measurement
  /// window (warmup excluded).
  telemetry::LatencyBreakdown server_latency;
  /// Detector firings on the server over the measurement window (warmup
  /// excluded; always filled — the default bank detects inversions).
  AnomalySummary server_anomalies;
  /// The server's full "prism/anomalies" document (findings + frozen
  /// evidence), filled when arm_detectors.
  std::string server_anomalies_json;
  /// Server overlay flow-cache counters over the whole run (zero when the
  /// cache is off or compiled out).
  std::uint64_t server_flowcache_hits = 0;
  std::uint64_t server_flowcache_misses = 0;
  std::uint64_t server_flowcache_invalidations = 0;
  double server_flowcache_hit_rate = 0.0;
};

PriorityScenarioResult run_priority_scenario(
    const PriorityScenarioConfig& cfg);

// --------------------------------------------------------------------
// Streamlined-processing scenario (Fig. 8): one 300 Kpps overlay flow
// (marked high priority) with sampled latency, no background traffic.
// Also used for the max-throughput sweep.
// --------------------------------------------------------------------

struct StreamlinedScenarioConfig {
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  double rate_pps = 300'000.0;
  std::size_t payload = 64;
  int reply_every = 100;  ///< sockperf under-load sampling
  sim::Duration warmup = sim::milliseconds(50);
  sim::Duration duration = sim::milliseconds(500);
  kernel::CostModel cost{};
  /// Simulation engine (TestbedConfig::threads): 0 = harness default.
  int threads = 0;
  /// Overlay flow cache on both hosts (ONCache-style stage-1 fast path).
  bool flow_cache = false;
};

struct StreamlinedScenarioResult {
  stats::Histogram latency;        ///< sampled one-way latency, ns
  double delivered_pps = 0.0;      ///< goodput at the server application
  double offered_pps = 0.0;        ///< achieved client send rate
  double rx_cpu_utilization = 0.0;
  std::uint64_t server_ring_drops = 0;
  /// Server-side per-stage latency attribution (warmup excluded).
  telemetry::LatencyBreakdown server_latency;
  /// Server overlay flow-cache counters over the whole run (zero when the
  /// cache is off or compiled out).
  std::uint64_t server_flowcache_hits = 0;
  std::uint64_t server_flowcache_misses = 0;
  std::uint64_t server_flowcache_invalidations = 0;
  double server_flowcache_hit_rate = 0.0;
};

StreamlinedScenarioResult run_streamlined_scenario(
    const StreamlinedScenarioConfig& cfg);

// --------------------------------------------------------------------
// Memcached scenario (Fig. 12): memaslap-style closed loop against a
// containerized KV store, with optional background traffic.
// --------------------------------------------------------------------

struct MemcachedScenarioConfig {
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  bool busy = true;
  double bg_rate_pps = 300'000.0;
  int bg_burst = 64;
  int concurrency = 4;
  double get_ratio = 0.9;
  std::size_t value_size = 1024;
  sim::Duration warmup = sim::milliseconds(50);
  sim::Duration duration = sim::milliseconds(500);
  kernel::CostModel cost{};
  std::uint64_t seed = 1;
  /// Simulation engine (TestbedConfig::threads): 0 = harness default.
  int threads = 0;
};

struct MemcachedScenarioResult {
  stats::Histogram latency;  ///< request RTT, ns
  double ops_per_second = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  double rx_cpu_utilization = 0.0;
  /// Server-side per-stage latency attribution (warmup excluded).
  telemetry::LatencyBreakdown server_latency;
};

MemcachedScenarioResult run_memcached_scenario(
    const MemcachedScenarioConfig& cfg);

// --------------------------------------------------------------------
// Web-server scenario (Fig. 13): wrk2-style constant-rate HTTP over one
// TCP connection, against TCP bulk background traffic (64 KB messages,
// TSO-fragmented).
// --------------------------------------------------------------------

struct WebScenarioConfig {
  kernel::NapiMode mode = kernel::NapiMode::kVanilla;
  bool busy = true;
  double bg_rate_mps = 20'000.0;  ///< background messages (64 KB) per sec
  std::size_t bg_message_size = 64 * 1024;
  double web_rate_rps = 20'000.0;
  std::size_t response_size = 1024;
  sim::Duration warmup = sim::milliseconds(50);
  sim::Duration duration = sim::milliseconds(500);
  kernel::CostModel cost{};
  /// Simulation engine (TestbedConfig::threads): 0 = harness default.
  int threads = 0;
};

struct WebScenarioResult {
  stats::Histogram latency;  ///< response time from scheduled send, ns
  double requests_per_second = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  double rx_cpu_utilization = 0.0;
  std::uint64_t bg_bytes_received = 0;
  /// Server-side per-stage latency attribution (warmup excluded).
  telemetry::LatencyBreakdown server_latency;
};

WebScenarioResult run_web_scenario(const WebScenarioConfig& cfg);

}  // namespace prism::harness
