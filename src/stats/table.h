// Plain-text table rendering for benchmark output.
//
// Every bench binary prints the rows the corresponding paper figure
// reports; this tiny formatter keeps those tables aligned and consistent.
#pragma once

#include <string>
#include <vector>

namespace prism::stats {

/// Column-aligned text table. Add a header once, then rows; render() pads
/// every cell to the widest entry in its column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row. Rows shorter than the header are padded with empty
  /// cells; longer rows are rejected.
  void add_row(std::vector<std::string> row);

  /// Convenience for numeric cells.
  static std::string cell(double value, int decimals = 1);

  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prism::stats
