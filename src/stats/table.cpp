#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace prism::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must not be empty");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw std::invalid_argument("Table: row wider than header");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(width[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace prism::stats
