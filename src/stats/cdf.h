// Cumulative-distribution export for figure reproduction.
//
// Figures 3, 9 and 10 of the paper are latency CDFs. This helper turns a
// histogram into (value, cumulative fraction) points and renders them as a
// gnuplot-ready data block or a coarse ASCII plot for bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prism::stats {

class Histogram;

struct CdfPoint {
  std::int64_t value_ns;
  double fraction;  // P(X <= value)
};

/// Full-resolution CDF (one point per non-empty bucket).
std::vector<CdfPoint> cdf_points(const Histogram& h);

/// CDF sampled at `n` evenly spaced quantiles (plus the 0th and 100th).
std::vector<CdfPoint> cdf_quantiles(const Histogram& h, int n);

/// Renders labelled CDFs side by side as rows of
/// "quantile  <series0>us  <series1>us ..." for terminal output.
std::string render_cdf_table(const std::vector<std::string>& labels,
                             const std::vector<const Histogram*>& series,
                             int quantile_rows = 11);

}  // namespace prism::stats
