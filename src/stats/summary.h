// Compact latency and allocator-pool summaries for experiment reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/pool.h"

namespace prism::stats {

class Histogram;

/// The latency statistics every experiment in the paper reports.
struct LatencySummary {
  std::uint64_t count = 0;
  std::int64_t min_ns = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p90_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t max_ns = 0;
};

/// Extracts the standard summary from a histogram.
LatencySummary summarize(const Histogram& h);

/// One-line human-readable rendering in microseconds, e.g.
/// "n=1000 min=12.3us mean=45.6us p50=40.1us p99=120.4us max=300.0us".
std::string to_string(const LatencySummary& s);

/// Snapshot of one recycling pool's counters (see sim/pool.h), labelled for
/// reporting. Benchmarks assert on hit_rate: a warm hot path should serve
/// nearly every acquire from the free list.
struct PoolSummary {
  std::string name;
  std::uint64_t acquired = 0;
  std::uint64_t reused = 0;
  std::uint64_t allocated = 0;
  std::uint64_t released = 0;
  std::uint64_t discarded = 0;
  double hit_rate = 0.0;
};

/// Snapshots `stats` under `name`.
PoolSummary summarize_pool(const std::string& name,
                           const sim::PoolStats& stats);

/// Snapshots of the process-global hot-path pools: the Skb slab
/// (kernel::SkbPool) and the packet-storage free list (sim::BufferPool).
std::vector<PoolSummary> pool_summaries();

/// One-line rendering, e.g.
/// "skb: acquired=1000 reused=992 allocated=8 hit=99.2%".
std::string to_string(const PoolSummary& s);

}  // namespace prism::stats
