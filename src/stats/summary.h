// Compact latency summaries for experiment reporting.
#pragma once

#include <cstdint>
#include <string>

namespace prism::stats {

class Histogram;

/// The latency statistics every experiment in the paper reports.
struct LatencySummary {
  std::uint64_t count = 0;
  std::int64_t min_ns = 0;
  double mean_ns = 0.0;
  std::int64_t p50_ns = 0;
  std::int64_t p90_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t max_ns = 0;
};

/// Extracts the standard summary from a histogram.
LatencySummary summarize(const Histogram& h);

/// One-line human-readable rendering in microseconds, e.g.
/// "n=1000 min=12.3us mean=45.6us p50=40.1us p99=120.4us max=300.0us".
std::string to_string(const LatencySummary& s);

}  // namespace prism::stats
