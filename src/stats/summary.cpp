#include "stats/summary.h"

#include <cstdio>

#include "kernel/skb_pool.h"
#include "stats/histogram.h"

namespace prism::stats {

LatencySummary summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.min_ns = h.min();
  s.mean_ns = h.mean();
  s.p50_ns = h.percentile(0.50);
  s.p90_ns = h.percentile(0.90);
  s.p99_ns = h.percentile(0.99);
  s.p999_ns = h.percentile(0.999);
  s.max_ns = h.max();
  return s;
}

std::string to_string(const LatencySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu min=%.1fus mean=%.1fus p50=%.1fus p90=%.1fus "
                "p99=%.1fus p99.9=%.1fus max=%.1fus",
                static_cast<unsigned long long>(s.count),
                static_cast<double>(s.min_ns) / 1e3, s.mean_ns / 1e3,
                static_cast<double>(s.p50_ns) / 1e3,
                static_cast<double>(s.p90_ns) / 1e3,
                static_cast<double>(s.p99_ns) / 1e3,
                static_cast<double>(s.p999_ns) / 1e3,
                static_cast<double>(s.max_ns) / 1e3);
  return buf;
}

PoolSummary summarize_pool(const std::string& name,
                           const sim::PoolStats& stats) {
  PoolSummary s;
  s.name = name;
  s.acquired = stats.acquired;
  s.reused = stats.reused;
  s.allocated = stats.allocated;
  s.released = stats.released;
  s.discarded = stats.discarded;
  s.hit_rate = stats.hit_rate();
  return s;
}

std::vector<PoolSummary> pool_summaries() {
  return {
      summarize_pool("skb", kernel::SkbPool::instance().stats()),
      summarize_pool("buffer", sim::BufferPool::instance().stats()),
  };
}

std::string to_string(const PoolSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: acquired=%llu reused=%llu allocated=%llu released=%llu "
                "discarded=%llu hit=%.1f%%",
                s.name.c_str(), static_cast<unsigned long long>(s.acquired),
                static_cast<unsigned long long>(s.reused),
                static_cast<unsigned long long>(s.allocated),
                static_cast<unsigned long long>(s.released),
                static_cast<unsigned long long>(s.discarded),
                s.hit_rate * 100.0);
  return buf;
}

}  // namespace prism::stats
