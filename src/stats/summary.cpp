#include "stats/summary.h"

#include <cstdio>

#include "stats/histogram.h"

namespace prism::stats {

LatencySummary summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.min_ns = h.min();
  s.mean_ns = h.mean();
  s.p50_ns = h.percentile(0.50);
  s.p90_ns = h.percentile(0.90);
  s.p99_ns = h.percentile(0.99);
  s.p999_ns = h.percentile(0.999);
  s.max_ns = h.max();
  return s;
}

std::string to_string(const LatencySummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu min=%.1fus mean=%.1fus p50=%.1fus p90=%.1fus "
                "p99=%.1fus p99.9=%.1fus max=%.1fus",
                static_cast<unsigned long long>(s.count),
                static_cast<double>(s.min_ns) / 1e3, s.mean_ns / 1e3,
                static_cast<double>(s.p50_ns) / 1e3,
                static_cast<double>(s.p90_ns) / 1e3,
                static_cast<double>(s.p99_ns) / 1e3,
                static_cast<double>(s.p999_ns) / 1e3,
                static_cast<double>(s.max_ns) / 1e3);
  return buf;
}

}  // namespace prism::stats
