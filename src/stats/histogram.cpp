#include "stats/histogram.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prism::stats {

namespace {

// Buckets cover values up to 2^47 ns (~39 hours) — far beyond any simulated
// latency. 47 octaves above the linear range keeps the table small.
constexpr int kMaxValueBits = 48;

}  // namespace

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(std::int64_t{1} << sub_bucket_bits) {
  if (sub_bucket_bits < 1 || sub_bucket_bits > 16) {
    throw std::invalid_argument("Histogram: sub_bucket_bits out of range");
  }
  // One linear range [0, 2*sub_bucket_count) plus one half-range per
  // additional octave up to kMaxValueBits.
  const int octaves = kMaxValueBits - (sub_bucket_bits + 1);
  buckets_.assign(
      static_cast<std::size_t>((2 + octaves) * sub_bucket_count_), 0);
}

std::size_t Histogram::bucket_index(std::int64_t value) const noexcept {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  // Values below 2*sub_bucket_count fall in the initial linear region.
  if (v < static_cast<std::uint64_t>(2 * sub_bucket_count_)) {
    return static_cast<std::size_t>(v);
  }
  // Otherwise: octave = position of the highest set bit relative to the
  // linear region; within the octave, the top sub_bucket_bits bits select
  // the linear sub-bucket.
  const int high_bit = 63 - std::countl_zero(v);
  const int octave = high_bit - sub_bucket_bits_;  // >= 1 here
  const auto sub =
      (v >> octave) - static_cast<std::uint64_t>(sub_bucket_count_);
  std::size_t idx =
      static_cast<std::size_t>((octave + 1) * sub_bucket_count_ + sub);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  return idx;
}

std::int64_t Histogram::bucket_value(std::size_t index) const noexcept {
  const auto i = static_cast<std::int64_t>(index);
  if (i < 2 * sub_bucket_count_) return i;
  const std::int64_t octave = i / sub_bucket_count_ - 1;
  const std::int64_t sub = i % sub_bucket_count_ + sub_bucket_count_;
  // Upper edge of the bucket: representative value never under-reports.
  return ((sub + 1) << octave) - 1;
}

void Histogram::record(std::int64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t count) noexcept {
  if (count == 0) return;
  if (value < 0) value = 0;
  buckets_[bucket_index(value)] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
  const double v = static_cast<double>(value);
  sum_ += v * static_cast<double>(count);
  sum_sq_ += v * v * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (other.sub_bucket_bits_ != sub_bucket_bits_) {
    throw std::invalid_argument("Histogram::merge: resolution mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  const double m = mean();
  // Population variance from the exact running moments. The subtraction
  // can go slightly negative from floating-point rounding when all values
  // are (near-)identical; clamp instead of returning NaN.
  const double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

std::int64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  // !(q >= 0) also catches NaN, which would slip through both ordered
  // comparisons and turn ceil(NaN * count) into an undefined uint64 cast.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), rounding up so that
  // percentile(0) == first observation's bucket.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t rank = target == 0 ? 1 : target;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_value(i);
  }
  return max_;
}

void Histogram::reset() noexcept {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

}  // namespace prism::stats
