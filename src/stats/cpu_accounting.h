// CPU busy-time accounting.
//
// The paper reports CPU utilization of the packet-processing core alongside
// latency (Fig. 11) and the cost-model calibration targets are expressed as
// utilization (300 Kpps background ~ 60-70% of one core). Each simulated
// Cpu feeds its busy intervals into one of these accounts.
#pragma once

#include "sim/time.h"

namespace prism::stats {

/// Accumulates busy nanoseconds and answers utilization queries over
/// arbitrary measurement windows.
class CpuAccounting {
 public:
  /// Records that the CPU was busy for `d` nanoseconds.
  void add_busy(sim::Duration d) noexcept { busy_ += d < 0 ? 0 : d; }

  /// Total busy time since construction or last reset.
  sim::Duration busy_time() const noexcept { return busy_; }

  /// Opens a measurement window at simulated time `now`.
  void begin_window(sim::Time now) noexcept {
    window_start_ = now;
    busy_at_window_start_ = busy_;
  }

  /// Utilization in [0, 1] of the window [begin_window, now]. Returns 0 for
  /// an empty window. Busy time carried past `now` by an in-flight work
  /// chunk is counted when it was charged, so utilization can slightly
  /// exceed 1 at window edges; callers may clamp.
  double utilization(sim::Time now) const noexcept {
    const sim::Duration span = now - window_start_;
    if (span <= 0) return 0.0;
    return static_cast<double>(busy_ - busy_at_window_start_) /
           static_cast<double>(span);
  }

  void reset() noexcept {
    busy_ = 0;
    window_start_ = 0;
    busy_at_window_start_ = 0;
  }

 private:
  sim::Duration busy_ = 0;
  sim::Time window_start_ = 0;
  sim::Duration busy_at_window_start_ = 0;
};

}  // namespace prism::stats
