#include "stats/cdf.h"

#include <cstdio>
#include <stdexcept>

#include "stats/histogram.h"

namespace prism::stats {

std::vector<CdfPoint> cdf_points(const Histogram& h) {
  std::vector<CdfPoint> out;
  const double total = static_cast<double>(h.count());
  if (total == 0) return out;
  std::uint64_t seen = 0;
  h.for_each_bucket([&](std::int64_t value, std::uint64_t count) {
    seen += count;
    out.push_back({value, static_cast<double>(seen) / total});
  });
  return out;
}

std::vector<CdfPoint> cdf_quantiles(const Histogram& h, int n) {
  if (n < 2) throw std::invalid_argument("cdf_quantiles: n must be >= 2");
  std::vector<CdfPoint> out;
  out.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    const double q = static_cast<double>(i) / n;
    out.push_back({h.percentile(q), q});
  }
  return out;
}

std::string render_cdf_table(const std::vector<std::string>& labels,
                             const std::vector<const Histogram*>& series,
                             int quantile_rows) {
  if (labels.size() != series.size()) {
    throw std::invalid_argument("render_cdf_table: label/series mismatch");
  }
  std::string out = "quantile";
  for (const auto& l : labels) {
    out += "  ";
    out += l;
  }
  out += "\n";
  char buf[64];
  for (int i = 0; i < quantile_rows; ++i) {
    // Emphasize the tail: linear to p90, then p95/p99/p99.9 style steps.
    double q;
    if (i < quantile_rows - 3) {
      q = 0.9 * i / (quantile_rows - 3);
    } else if (i == quantile_rows - 3) {
      q = 0.95;
    } else if (i == quantile_rows - 2) {
      q = 0.99;
    } else {
      q = 0.999;
    }
    std::snprintf(buf, sizeof(buf), "p%-7.1f", q * 100.0);
    out += buf;
    for (const auto* h : series) {
      std::snprintf(buf, sizeof(buf), "  %10.1fus",
                    static_cast<double>(h->percentile(q)) / 1e3);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace prism::stats
