// HDR-style latency histogram.
//
// Latency experiments need accurate tail percentiles over millions of
// samples without storing them all. This histogram uses logarithmic
// bucketing with linear sub-buckets (the HdrHistogram scheme): values are
// recorded with a bounded relative error set by the sub-bucket resolution
// (64 sub-buckets per octave -> <1.6% relative error), while memory stays a
// few kilobytes regardless of sample count.
#pragma once

#include <cstdint>
#include <vector>

namespace prism::stats {

/// Fixed-resolution value histogram with percentile queries.
///
/// Values are non-negative 64-bit integers (in this codebase: durations in
/// nanoseconds). Negative values are clamped to zero.
class Histogram {
 public:
  /// `sub_bucket_bits` controls relative precision: each power-of-two range
  /// is split into 2^sub_bucket_bits linear buckets. The default (6) keeps
  /// relative error under 1/64.
  explicit Histogram(int sub_bucket_bits = 6);

  /// Records one observation.
  void record(std::int64_t value) noexcept;

  /// Records `count` identical observations.
  void record_n(std::int64_t value, std::uint64_t count) noexcept;

  /// Merges another histogram (same sub_bucket_bits required).
  void merge(const Histogram& other);

  /// Total number of recorded observations.
  std::uint64_t count() const noexcept { return count_; }

  /// Smallest recorded value (0 if empty).
  std::int64_t min() const noexcept { return count_ == 0 ? 0 : min_; }

  /// Largest recorded value (0 if empty).
  std::int64_t max() const noexcept { return count_ == 0 ? 0 : max_; }

  /// Arithmetic mean of recorded values (0 if empty). Uses exact running
  /// sum, not bucket midpoints.
  double mean() const noexcept;

  /// Exact running sum of recorded values (0 if empty). Exact for totals
  /// below 2^53 ns — far beyond any simulated experiment.
  double sum() const noexcept { return sum_; }

  /// Standard deviation of recorded values, from the exact running
  /// sum-of-squares (consistent with mean(); bucket resolution plays no
  /// part).
  double stddev() const noexcept;

  /// Value at quantile q in [0, 1]. Returns a bucket-representative value
  /// (upper edge of the containing bucket), so percentile(1.0) >= max()
  /// within bucket precision. Returns 0 when empty.
  std::int64_t percentile(double q) const noexcept;

  /// Convenience: percentile(0.5).
  std::int64_t median() const noexcept { return percentile(0.5); }

  /// Removes all observations.
  void reset() noexcept;

  int sub_bucket_bits() const noexcept { return sub_bucket_bits_; }

  /// Iterates non-empty buckets as (representative value, count). Used by
  /// the CDF exporter.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != 0) fn(bucket_value(i), buckets_[i]);
    }
  }

 private:
  std::size_t bucket_index(std::int64_t value) const noexcept;
  std::int64_t bucket_value(std::size_t index) const noexcept;

  int sub_bucket_bits_;
  std::int64_t sub_bucket_count_;  // 2^sub_bucket_bits
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace prism::stats
