#include "kernel/host.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/flow.h"

namespace prism::kernel {

namespace {

/// Inner-path MTU (Docker overlay default): outer MTU minus VXLAN
/// overhead.
constexpr std::size_t kOverlayMtu = net::kMtu - net::kEncapHeadroom;

// The ledger's class axis mirrors the PRISM priority levels; a level
// added to one must be added to the other.
static_assert(telemetry::kNumLatencyClasses == kNumPriorityLevels,
              "latency ledger classes must mirror PRISM priority levels");
static_assert(fault::kNumFaultClasses == kNumPriorityLevels,
              "drop ledger classes must mirror PRISM priority levels");
static_assert(telemetry::kNumAnomalyClasses == kNumPriorityLevels,
              "anomaly SLO classes must mirror PRISM priority levels");

}  // namespace

Host::Host(sim::Simulator& sim, HostConfig config)
    : sim_(sim), cfg_(std::move(config)) {
  if (cfg_.num_cpus < 1) {
    throw std::invalid_argument("Host: need at least one CPU");
  }
  if (cfg_.mac == net::MacAddr{}) {
    cfg_.mac = net::MacAddr::make(cfg_.ip.value);
  }

  // Queue -> CPU map.
  queue_cpu_map_ = cfg_.queue_cpu_map;
  if (queue_cpu_map_.empty()) {
    for (int q = 0; q < cfg_.nic_queues; ++q) {
      queue_cpu_map_.push_back(q % cfg_.num_cpus);
    }
  }
  if (static_cast<int>(queue_cpu_map_.size()) != cfg_.nic_queues) {
    throw std::invalid_argument("Host: queue_cpu_map size mismatch");
  }
  for (int c : queue_cpu_map_) {
    if (c < 0 || c >= cfg_.num_cpus) {
      throw std::invalid_argument("Host: queue mapped to invalid CPU");
    }
  }

  root_ns_ = std::make_unique<overlay::Netns>(cfg_.name, cfg_.ip, cfg_.mac,
                                              /*is_container=*/false);
  deliverer_ = std::make_unique<SocketDeliverer>(sim_, cfg_.cost);
  nic_ = std::make_unique<nic::Nic>(sim_, cfg_.nic_queues,
                                    cfg_.nic_ring_capacity, cfg_.coalesce);

  nic_->bind_telemetry(telemetry_.registry, "nic.");
  deliverer_->bind_telemetry(telemetry_.registry, "sockets.");
  deliverer_->set_latency(&telemetry_.latency, &telemetry_.flows);

  // Flight recorder <-> anomaly bank: the recorder feeds stage waits to
  // the detectors, and a firing detector freezes the recorder's newest
  // events as evidence. Both are armed by default (inversion detection
  // only) and never alter the schedule.
  telemetry_.recorder.set_anomalies(&telemetry_.anomalies);
  telemetry_.anomalies.set_recorder(&telemetry_.recorder);
  deliverer_->set_flight_recorder(&telemetry_.recorder);
  deliverer_->set_anomalies(&telemetry_.anomalies);

  // Fault layer: arm the plan from the config and give the drop ledger
  // its class axis. Drop sites that only hold raw bytes (the NIC ring)
  // classify through the priority DB exactly as the stage-1 poll would
  // have, so per-class conservation can be asserted across the drop. In
  // vanilla mode every packet is class 0, mirroring the delivery path.
  faults_.plan.configure(cfg_.faults);
  faults_.drops.set_classifier(
      [this](std::span<const std::uint8_t> frame) {
        return mode() == NapiMode::kVanilla ? 0
                                            : priority_db_.classify(frame);
      });
  faults_.drops.set_observer([this](fault::DropReason reason, int level) {
    telemetry_.latency.record_dropped(level);
    telemetry_.anomalies.on_drop(static_cast<int>(reason), level,
                                 sim_.now());
  });
  faults_.drops.bind_telemetry(telemetry_.registry, "faults.");
  nic_->set_faults(&faults_);
  deliverer_->set_faults(&faults_);

  // Overload governor: one per host, fed by every engine's softirq loop,
  // the NIC IRQ lines, the backlog admissions, and the socket deliverer.
  governor_ = std::make_unique<OverloadGovernor>(sim_, cfg_.overload,
                                                 cfg_.netdev_max_backlog);
  governor_->bind_telemetry(telemetry_.registry, "overload.");
  governor_->set_depth_probe([this] {
    std::size_t deepest = 0;
    for (const auto& pc : per_cpu_) {
      deepest = std::max(deepest, pc->backlog->pending_total());
    }
    return deepest;
  });
  governor_->set_moderation_hook([this](bool overloaded) {
    // Graceful degradation at the source: declared overload stretches the
    // NIC's interrupt spacing so batches deepen and the IRQ rate falls;
    // recovery restores the configured moderation.
    for (int q = 0; q < cfg_.nic_queues; ++q) {
      nic::CoalesceConfig c = cfg_.coalesce;
      if (overloaded) {
        c.usecs = c.usecs > 0
                      ? static_cast<sim::Duration>(
                            static_cast<double>(c.usecs) *
                            cfg_.overload.moderation_stretch)
                      : cfg_.overload.moderation_floor;
      }
      nic_->queue(q).set_coalesce(c);
    }
  });
  governor_->set_transition_observer(
      [this](const OverloadGovernor::Transition& t) {
        telemetry_.anomalies.on_governor_transition(
            t.at, static_cast<int>(t.from), static_cast<int>(t.to),
            t.cause);
      });
#if PRISM_OVERLOAD_ENABLED
  deliverer_->set_governor(governor_.get());
#endif

  // Overlay flow cache: always constructed (stable counter and accessor
  // surface), consulted by the datapath only when cfg_.flow_cache enables
  // it. Invalidation fans in from every transform-changing event: FDB
  // mutations (hook installed per bridge), priority-db mutations (hook
  // below), overlay-route changes, NAPI mode switches, and fault-injected
  // decap corruption (nic_napi).
  flow_cache_ =
      std::make_unique<overlay::FlowCache>(cfg_.flow_cache_capacity);
  flow_cache_->set_enabled(cfg_.flow_cache);
  flow_cache_->bind_telemetry(telemetry_.registry, "flowcache.");
  priority_db_.set_mutation_hook([this] { flow_cache_->invalidate(); });

  // Per-CPU softirq machinery.
  for (int i = 0; i < cfg_.num_cpus; ++i) {
    auto pc = std::make_unique<PerCpu>();
    pc->cpu = std::make_unique<Cpu>(sim_, cfg_.cost, i);
    pc->engine =
        std::make_unique<NetRxEngine>(sim_, *pc->cpu, cfg_.cost, cfg_.mode);
    pc->transition =
        std::make_unique<StageTransition>(*pc->engine, cfg_.cost);
    pc->backlog_stage =
        std::make_unique<BacklogStage>("veth", cfg_.cost, *deliverer_);
    pc->backlog = std::make_unique<QueueNapi>("veth", *pc->backlog_stage,
                                              cfg_.cost);
    const std::string cpu_prefix = "cpu" + std::to_string(i) + ".";
    pc->engine->bind_telemetry(telemetry_.registry, cpu_prefix);
    pc->backlog->bind_telemetry(telemetry_.registry,
                                cpu_prefix + "backlog.");
    pc->backlog_stage->bind_telemetry(telemetry_.registry,
                                      cpu_prefix + "veth.");
    pc->backlog->set_faults(&faults_);
    pc->backlog_stage->set_faults(&faults_);
    pc->backlog->set_flight_recorder(&telemetry_.recorder, /*stage=*/3);
    pc->backlog->queue_limit = cfg_.netdev_max_backlog;
    pc->admission = std::make_unique<BacklogAdmission>(
        cfg_.overload, cfg_.netdev_max_backlog);
#if PRISM_OVERLOAD_ENABLED
    pc->admission->set_governor(governor_.get());
    pc->backlog->set_admission(pc->admission.get());
    pc->engine->set_governor(governor_.get());
    pc->engine->set_ksoftirqd(cfg_.overload.enabled);
#endif
    per_cpu_.push_back(std::move(pc));
  }

  // Stage-1 NAPIs, one per RSS queue, wired to their CPU's engine.
  for (int q = 0; q < cfg_.nic_queues; ++q) {
    const int cpu_idx = queue_cpu_map_[static_cast<std::size_t>(q)];
    PerCpu& pc = *per_cpu_[static_cast<std::size_t>(cpu_idx)];
    NicNapiContext ctx;
    ctx.engine = pc.engine.get();
    ctx.transition = pc.transition.get();
    ctx.cost = &cfg_.cost;
    ctx.priority_db = &priority_db_;
    ctx.deliverer = deliverer_.get();
    ctx.root_ns = root_ns_.get();
    ctx.ledger = &telemetry_.latency;
    ctx.recorder = &telemetry_.recorder;
    ctx.faults = &faults_;
    ctx.flow_cache = flow_cache_.get();
    ctx.vxlan_lookup = [this, cpu_idx](std::uint32_t vni) -> QueueNapi* {
      const auto it = bridges_.find(vni);
      return it == bridges_.end() ? nullptr
                                  : &it->second.bridge->cell(cpu_idx);
    };
    auto napi =
        std::make_unique<NicNapi>("eth", nic_->queue(q), std::move(ctx));
    napi->bind_telemetry(telemetry_.registry,
                         "nic.q" + std::to_string(q) + ".");
    NicNapi* napi_ptr = napi.get();
    nic_->queue(q).set_irq_handler([this, cpu_idx, napi_ptr] {
      napi_ptr->note_irq(sim_.now());
#if PRISM_OVERLOAD_ENABLED
      governor_->note_irq();
#endif
      if (tracer_ != nullptr) {
        tracer_->instant(track_base_ + cpu_idx, irq_name_, sim_.now());
      }
      PerCpu& target = *per_cpu_[static_cast<std::size_t>(cpu_idx)];
      target.cpu->run_softirq([this, cpu_idx, napi_ptr] {
        per_cpu_[static_cast<std::size_t>(cpu_idx)]->engine->napi_schedule(
            *napi_ptr, false);
        return cfg_.cost.irq_cost;
      });
      (void)target;
    });
    nic_napis_.push_back(std::move(napi));
  }

  // Root namespace egress: straight to the NIC.
  root_ns_->egress = [this](net::PacketBuf frame) {
    nic_->transmit(std::move(frame));
  };

  proc_ = std::make_unique<prism::ProcInterface>(
      priority_db_, [this](NapiMode m) { set_mode(m); },
      [this] { return mode(); });
  proc_->register_file("net/softnet_stat",
                       [this] { return softnet_stat(); });
  proc_->register_file("net/dev", [this] { return net_dev(); });
  proc_->register_file("prism/telemetry", [this] {
    // Any trace rings attached to this host report their retention next
    // to the span tracer's, so truncation is never silent.
    std::vector<telemetry::RingStat> rings;
    for (int i = 0; i < num_cpus(); ++i) {
      if (const auto* t = engine(i).poll_trace(); t != nullptr) {
        rings.push_back({"cpu" + std::to_string(i) + ".poll_trace",
                         static_cast<std::uint64_t>(t->size()),
                         t->dropped_records()});
      }
    }
    if (const auto* t = deliverer_->packet_trace(); t != nullptr) {
      rings.push_back({"packet_trace",
                       static_cast<std::uint64_t>(t->size()),
                       t->dropped_records()});
    }
    return telemetry::telemetry_json(telemetry_, rings);
  });
  proc_->register_file("prism/latency", [this] {
    return telemetry::latency_json(telemetry_.latency);
  });
  proc_->register_file("prism/flows", [this] {
    return telemetry::flow_table_json(telemetry_.flows);
  });
  proc_->register_file("prism/faults", [this] {
    return fault::faults_json(faults_);
  });
  proc_->register_file("prism/anomalies", [this] {
    return telemetry::anomalies_json(telemetry_.anomalies,
                                     &telemetry_.recorder);
  });
  proc_->register_file("prism/overload", [this] {
    std::vector<const BacklogAdmission*> admissions;
    admissions.reserve(per_cpu_.size());
    for (const auto& pc : per_cpu_) {
      admissions.push_back(pc->admission.get());
    }
    return overload_json(*governor_, admissions);
  });
}

Host::~Host() = default;

void Host::set_mode(NapiMode mode) {
  for (auto& pc : per_cpu_) pc->engine->set_mode(mode);
  // Vanilla never classifies on the datapath while PRISM modes do, so
  // priorities cached under the old mode are wrong under the new one.
  flow_cache_->invalidate();
}

NapiMode Host::mode() const noexcept {
  return per_cpu_.front()->engine->mode();
}

overlay::Bridge& Host::bridge(std::uint32_t vni) {
  auto it = bridges_.find(vni);
  if (it == bridges_.end()) {
    BridgeBundle bundle;
    bundle.fdb = std::make_unique<overlay::Fdb>();
    // Any FDB mutation (add/remap/remove) voids every cached transform;
    // the flow cache re-resolves through the slow path on next use.
    bundle.fdb->set_mutation_hook([this] { flow_cache_->invalidate(); });
    std::vector<StageTransition*> transitions;
    std::vector<QueueNapi*> backlogs;
    for (auto& pc : per_cpu_) {
      transitions.push_back(pc->transition.get());
      backlogs.push_back(pc->backlog.get());
    }
    bundle.bridge = std::make_unique<overlay::Bridge>(
        vni, cfg_.cost, *bundle.fdb, transitions, backlogs);
    // All of a bridge's per-CPU stages/cells share one prefix so the
    // counters aggregate across CPUs, like a real bridge's device stats.
    const std::string prefix = "overlay.br" + std::to_string(vni) + ".";
    bundle.fdb->bind_telemetry(telemetry_.registry, prefix);
    for (int c = 0; c < cfg_.num_cpus; ++c) {
      bundle.bridge->stage(c).bind_telemetry(telemetry_.registry, prefix);
      bundle.bridge->cell(c).bind_telemetry(telemetry_.registry,
                                            prefix + "cell.");
      bundle.bridge->stage(c).set_faults(&faults_);
      bundle.bridge->stage(c).set_flow_cache(flow_cache_.get(), vni);
      bundle.bridge->cell(c).set_faults(&faults_);
      bundle.bridge->cell(c).set_flight_recorder(&telemetry_.recorder,
                                                 /*stage=*/2);
    }
    if (!cfg_.rps_cpus.empty()) {
      std::vector<overlay::RpsTarget> targets;
      for (const int c : cfg_.rps_cpus) {
        if (c < 0 || c >= cfg_.num_cpus) {
          throw std::invalid_argument("Host: rps_cpus entry out of range");
        }
        PerCpu& pc = *per_cpu_[static_cast<std::size_t>(c)];
        targets.push_back(
            overlay::RpsTarget{pc.transition.get(), pc.backlog.get()});
      }
      for (int c = 0; c < cfg_.num_cpus; ++c) {
        bundle.bridge->stage(c).enable_rps(targets, sim_);
      }
    }
    it = bridges_.emplace(vni, std::move(bundle)).first;
  }
  return *it->second.bridge;
}

overlay::Fdb& Host::fdb(std::uint32_t vni) {
  bridge(vni);  // ensure it exists
  return *bridges_.at(vni).fdb;
}

overlay::Netns& Host::add_container(const std::string& name,
                                    net::Ipv4Addr ip, std::uint32_t vni) {
  bridge(vni);  // ensure it exists
  const net::MacAddr mac =
      net::MacAddr::make(((cfg_.ip.value & 0xffffu) << 16) | ++mac_counter_);
  auto ns = std::make_unique<overlay::Netns>(name, ip, mac,
                                             /*is_container=*/true);
  ns->set_vni(vni);
  ns->egress = [this, vni](net::PacketBuf frame) {
    container_egress(vni, std::move(frame));
  };
  bridges_.at(vni).fdb->add(mac, *ns);
  containers_.push_back(std::move(ns));
  return *containers_.back();
}

void Host::stop_container(overlay::Netns& ns, sim::Duration drain) {
  if (!ns.is_container() || ns.state() != overlay::NetnsState::kRunning) {
    return;
  }
  // Ordering matters: the namespace stops accepting *before* the FDB
  // unlearns, so no window exists where a fresh lookup can route to a
  // namespace that will refuse the packet without counting it.
  ns.begin_draining();
  // FDB unlearn bumps the generation, which invalidates the flow cache
  // through the mutation hook — stale cached transforms can't deliver.
  fdb(ns.vni()).remove(ns.mac());
  if (drain <= 0) {
    finish_teardown(ns);
    return;
  }
  // The drain deadline is host-local (this host's own lane), so it is
  // safe under the parallel lane engine.
  sim_.schedule(drain, [this, &ns] { finish_teardown(ns); });
}

void Host::finish_teardown(overlay::Netns& ns) {
  if (ns.dead()) return;
  ns.mark_dead();
  // Close the bound sockets: queued datagram storage recycles and any
  // still-in-flight enqueue lands as a counted kDeadNetns drop instead of
  // a delivery. The Netns object itself persists as a tombstone, so every
  // stale Netns* (skbs, flow-cache entries, VTEP tables) stays a valid
  // pointer that observes the dead state.
  ns.sockets().close_all_udp();
}

overlay::Netns& Host::restart_container(overlay::Netns& old_ns) {
  if (!old_ns.is_container()) {
    throw std::invalid_argument("Host::restart_container: not a container");
  }
  if (!old_ns.dead()) {
    // A restart races the drain deadline only through a bug in the churn
    // plan; finish the teardown now rather than running two incarnations.
    old_ns.begin_draining();
    finish_teardown(old_ns);
  }
  // The new incarnation reuses the old identity (name, IP, MAC): peers'
  // static ARP entries and remote VTEP routes stay valid, mirroring a
  // container restart that keeps its network attachment.
  return adopt_container(old_ns.name(), old_ns.ip(), old_ns.mac(),
                         old_ns.vni());
}

overlay::Netns& Host::adopt_container(const std::string& name,
                                      net::Ipv4Addr ip, net::MacAddr mac,
                                      std::uint32_t vni) {
  bridge(vni);  // ensure it exists
  auto ns = std::make_unique<overlay::Netns>(name, ip, mac,
                                             /*is_container=*/true);
  ns->set_vni(vni);
  ns->egress = [this, vni](net::PacketBuf frame) {
    container_egress(vni, std::move(frame));
  };
  // Learn (or relearn): the FDB maps the MAC to the new incarnation and
  // the generation bump invalidates any transform cached against an old
  // one.
  bridges_.at(vni).fdb->add(ns->mac(), *ns);
  containers_.push_back(std::move(ns));
  return *containers_.back();
}

void Host::add_overlay_route(std::uint32_t vni, net::MacAddr container_mac,
                             net::Ipv4Addr host_ip,
                             net::MacAddr host_mac) {
  bridge(vni);  // ensure it exists
  bridges_.at(vni).routes[container_mac] =
      BridgeBundle::Vtep{host_ip, host_mac};
  // A route change redirects where a container's traffic goes; cached
  // transforms resolved under the old routing are no longer trustworthy.
  flow_cache_->invalidate();
}

bool Host::remove_overlay_route(std::uint32_t vni,
                                net::MacAddr container_mac) {
  const auto it = bridges_.find(vni);
  if (it == bridges_.end()) return false;
  if (it->second.routes.erase(container_mac) == 0) return false;
  // Route-absent means local bridge delivery in container_egress, so a
  // removal redirects traffic just as an add does.
  flow_cache_->invalidate();
  return true;
}

void Host::container_egress(std::uint32_t vni, net::PacketBuf frame) {
  auto& bundle = bridges_.at(vni);
  const auto bytes = frame.bytes();
  if (bytes.size() < net::EthernetHeader::kSize) {
    return;  // malformed inner frame: dropped by the bridge
  }
  // Only the destination MAC (first six bytes) selects the route; skip
  // the full Ethernet parse.
  net::MacAddr dst_mac;
  std::copy_n(bytes.begin(), dst_mac.bytes.size(), dst_mac.bytes.begin());

  // Local destination: stays on this host's bridge (veth -> br -> veth).
  // The frame enters the bridge's gro_cell on the default RX CPU, going
  // through stages 2 and 3 like any received overlay packet.
  const auto route = bundle.routes.find(dst_mac);
  if (route == bundle.routes.end()) {
    deliver_local(bundle, std::move(frame));
    return;
  }

  // Remote destination: VXLAN-encapsulate and transmit. The outer UDP
  // source port carries inner-flow entropy, as the kernel's vxlan driver
  // computes it.
  const auto& vtep = route->second;
  std::uint16_t entropy = 0xc000;
  if (const auto inner = net::fast_flow(frame.bytes())) {
    entropy = static_cast<std::uint16_t>(
        0xc000 | (std::hash<net::FiveTuple>{}(*inner) & 0x3fff));
  }
  net::FrameSpec outer;
  outer.src_mac = cfg_.mac;
  outer.dst_mac = vtep.host_mac;
  outer.src_ip = cfg_.ip;
  outer.dst_ip = vtep.host_ip;
  outer.src_port = entropy;
  net::vxlan_encapsulate(frame, outer, vni);
  nic_->transmit(std::move(frame));
}

void Host::deliver_local(BridgeBundle& bundle, net::PacketBuf frame) {
  const int cpu_idx = default_rx_cpu();
  PerCpu& pc = *per_cpu_[static_cast<std::size_t>(cpu_idx)];
  auto skb = alloc_skb();
  if (!skb) {
    // Pool exhausted: the local frame is dropped (and its PacketBuf
    // storage recycled by ~PacketBuf), never silently lost.
    faults_.drops.record_frame(fault::DropReason::kAllocFail,
                               frame.bytes());
    return;
  }
  skb->parsed.emplace();
  if (!net::parse_frame_into(frame.bytes(), *skb->parsed)) {
    skb->parsed.reset();
  }
  const bool prism_mode = pc.engine->mode() != NapiMode::kVanilla;
  if (prism_mode && skb->parsed) {
    // Locally built frames are never VXLAN-encapsulated, so the cached
    // parse is the whole classification input; keep the byte-level
    // classifier for the odd frame that happens to look encapsulated.
    skb->priority = skb->parsed->is_vxlan()
                        ? priority_db_.classify(frame.bytes())
                        : priority_db_.classify(*skb->parsed, nullptr);
  }
  skb->ts.nic_rx = sim_.now();
  skb->ts.stage1_start = sim_.now();
  skb->ts.stage1_done = sim_.now();
#if PRISM_TELEMETRY_ENABLED
  if (skb->parsed && telemetry_.recorder.armed()) {
    int observed = skb->priority;
    if (!prism_mode && !skb->parsed->is_vxlan()) {
      observed = priority_db_.classify(*skb->parsed, nullptr);
    }
    skb->observed_class = static_cast<std::int8_t>(observed);
    const net::FiveTuple flow = net::flow_of(*skb->parsed);
    if (telemetry_.recorder.should_trace(flow, observed)) {
      // Local path: no hardware ring, so the arrival event carries zero
      // ring wait and the journey starts at the bridge cell.
      skb->traced = true;
      telemetry_.recorder.on_ring_arrival(flow, observed, sim_.now(),
                                          sim_.now());
    }
  }
#endif
  skb->buf = std::move(frame);
  skb->stage = 2;
  if (flow_cache_->enabled()) {
    // Local frames enter at stage 2 and may fill the cache there; stamp
    // the generation their classification (just above) observed.
    skb->flowcache_gen = flow_cache_->generation();
  }
  QueueNapi& cell = bundle.bridge->cell(cpu_idx);
  const bool high = skb->high_priority();
  const int level = skb->priority;
  if (cell.enqueue(std::move(skb), level)) {
    pc.engine->napi_schedule(cell, high);
  }
}

UdpSocket& Host::udp_bind(overlay::Netns& ns, std::uint16_t port,
                          std::size_t capacity) {
  auto sock = std::make_unique<UdpSocket>(sim_, port, capacity);
  sock->bind_telemetry(telemetry_.registry, "sockets.");
  sock->set_latency_ledger(&telemetry_.latency);
  sock->set_faults(&faults_);
  ns.sockets().bind_udp(*sock);
  udp_sockets_.push_back(std::move(sock));
  return *udp_sockets_.back();
}

std::size_t Host::max_udp_payload(
    const overlay::Netns& ns) const noexcept {
  const std::size_t mtu = ns.is_container() ? kOverlayMtu : net::kMtu;
  return mtu - net::Ipv4Header::kSize - net::UdpHeader::kSize;
}

void Host::udp_send(overlay::Netns& ns, Cpu& cpu, std::uint16_t src_port,
                    net::Ipv4Addr dst_ip, std::uint16_t dst_port,
                    std::span<const std::uint8_t> payload,
                    std::function<void()> on_sent) {
  if (payload.size() > max_udp_payload(ns)) {
    throw std::invalid_argument(
        "Host::udp_send: payload exceeds path MTU (UDP fragmentation is "
        "out of scope)");
  }
  sim::Duration cost = cfg_.cost.syscall_cost +
                       cfg_.cost.copy_cost(payload.size()) +
                       cfg_.cost.tx_per_packet;
  if (ns.is_container()) cost += cfg_.cost.tx_overlay_extra;

  // Build the frame up front (the bytes don't depend on the send instant)
  // so the queued work captures one pooled PacketBuf instead of a payload
  // copy, and egress at the completion instant is a pure hand-off.
  const std::optional<net::MacAddr> dst_mac = ns.neighbor(dst_ip);
  net::FrameSpec spec;
  spec.src_mac = ns.mac();
  spec.dst_mac = dst_mac.value_or(net::MacAddr{});
  spec.src_ip = ns.ip();
  spec.dst_ip = dst_ip;
  spec.src_port = src_port;
  spec.dst_port = dst_port;
  net::PacketBuf frame = net::build_udp_frame(spec, payload);

  if (!ns.accepting() || !dst_mac) {
    // The send fails at the source: either the namespace is draining or
    // torn down (kDeadNetns), or there is no neighbour entry for the
    // destination (kUnroutable). Both are counted, per-class, against the
    // built frame's classification, so conservation still closes; the
    // frame's storage recycles through ~PacketBuf. `on_sent` still fires —
    // the syscall completed, the packet just never reached the wire.
    faults_.drops.record_frame(ns.accepting()
                                   ? fault::DropReason::kUnroutable
                                   : fault::DropReason::kDeadNetns,
                               frame.bytes());
    if (on_sent) on_sent();
    return;
  }

  cpu.run_task_fn([this, &ns, cost, frame = std::move(frame),
                   on_sent = std::move(on_sent)]() mutable {
    sim_.schedule(cost, [&ns, frame = std::move(frame),
                         on_sent = std::move(on_sent)]() mutable {
      ns.egress(std::move(frame));
      if (on_sent) on_sent();
    });
    return cost;
  });
}

void Host::set_span_tracer(telemetry::SpanTracer* tracer, int track_base) {
  tracer_ = tracer;
  track_base_ = track_base;
  if (tracer != nullptr) {
    irq_name_ = tracer->intern("irq");
    for (int i = 0; i < cfg_.num_cpus; ++i) {
      tracer->set_track_label(track_base + i,
                              cfg_.name + ".cpu" + std::to_string(i));
      per_cpu_[static_cast<std::size_t>(i)]->engine->set_span_tracer(
          tracer, track_base + i);
    }
  } else {
    for (auto& pc : per_cpu_) pc->engine->set_span_tracer(nullptr, 0);
  }
}

std::vector<telemetry::SoftnetRow> Host::softnet_rows() {
  std::vector<telemetry::SoftnetRow> rows;
  rows.reserve(per_cpu_.size());
  for (int i = 0; i < cfg_.num_cpus; ++i) {
    const PerCpu& pc = *per_cpu_[static_cast<std::size_t>(i)];
    telemetry::SoftnetRow row;
    row.cpu = static_cast<std::uint32_t>(i);
    row.processed = pc.engine->packets_processed();
    row.dropped = pc.backlog->low_dropped() + pc.backlog->high_dropped();
    row.time_squeeze = pc.engine->time_squeezes();
    // RPS steering is counted at the sending bridge stage, which is not
    // per-receiving-CPU attributable; the column stays 0 as on hosts
    // without RPS configured.
    row.received_rps = 0;
    row.backlog_len = pc.backlog->pending_total();
    row.flow_limit = pc.admission->flow_limit_count();
    rows.push_back(row);
  }
  return rows;
}

std::vector<telemetry::NetDevRow> Host::net_dev_rows() {
  std::vector<telemetry::NetDevRow> rows;
  rows.push_back(telemetry::NetDevRow{"eth0", nic_->rx_frames(),
                                      nic_->rx_dropped(),
                                      nic_->tx_frames()});
  for (auto& [vni, bundle] : bridges_) {
    telemetry::NetDevRow row;
    row.name = "br" + std::to_string(vni);
    for (int c = 0; c < cfg_.num_cpus; ++c) {
      overlay::BridgeStage& stage = bundle.bridge->stage(c);
      row.rx_packets += stage.forwarded() + stage.dropped();
      row.rx_dropped += stage.dropped();
    }
    rows.push_back(std::move(row));
  }
  telemetry::NetDevRow veth;
  veth.name = "veth";
  for (auto& pc : per_cpu_) {
    veth.rx_packets += pc->backlog_stage->delivered();
    veth.rx_dropped += pc->backlog_stage->dropped() +
                       pc->backlog->low_dropped() +
                       pc->backlog->high_dropped();
  }
  rows.push_back(std::move(veth));
  return rows;
}

std::string Host::softnet_stat() {
  return telemetry::render_softnet_stat(softnet_rows());
}

std::string Host::net_dev() {
  return telemetry::render_net_dev(net_dev_rows());
}

TcpEndpoint& Host::tcp_create(overlay::Netns& ns, net::Ipv4Addr remote_ip,
                              std::uint16_t local_port,
                              std::uint16_t remote_port, std::size_t mss) {
  TcpEndpoint::Config cfg;
  cfg.ns = &ns;
  cfg.local_ip = ns.ip();
  cfg.remote_ip = remote_ip;
  cfg.local_port = local_port;
  cfg.remote_port = remote_port;
  if (mss == 0) {
    const std::size_t mtu = ns.is_container() ? kOverlayMtu : net::kMtu;
    cfg.mss = mtu - net::Ipv4Header::kSize - net::TcpHeader::kSize;
  } else {
    cfg.mss = mss;
  }
  auto ep = std::make_unique<TcpEndpoint>(sim_, cfg_.cost, cfg);
  ns.sockets().register_tcp(ep->incoming_flow(), *ep);
  tcp_endpoints_.push_back(std::move(ep));
  return *tcp_endpoints_.back();
}

}  // namespace prism::kernel
