// Overload control: flow_limit admission, priority-aware shedding, and
// the per-host overload state machine with receiver-livelock detection.
//
// Sustained overload is where the paper's priority story is decided: once
// arrivals exceed service capacity the backlog pins at netdev_max_backlog
// and tail-drop is indiscriminate — a hot flow monopolizes the queue
// exactly as the HoL analysis (Fig. 2 vs Fig. 7) warns. Linux's answers
// are reproduced here and extended with Prism's priority bit:
//
//  * FlowLimiter — a faithful port of the kernel's skb_flow_limit():
//    per-CPU hashed flow counters over a sliding history of recent
//    backlog enqueues; once the queue is at least half full, packets of a
//    flow occupying more than half the history are shed. Divergence from
//    Linux: the history length is netdev_max_backlog (the kernel pins it
//    at 128) so dominance is judged over the same horizon the queue
//    spans.
//
//  * BacklogAdmission — the per-CPU admission policy consulted by
//    NapiStruct::enqueue before a packet joins a backlog queue. Level-0
//    (best-effort) packets pass the flow limiter and are refused outright
//    once the queue grows into the reserved high-priority headroom;
//    packets of level >= 1 are admitted up to the full queue limit. Every
//    refusal is attributed to the DropLedger (kFlowLimit / kOverloadShed).
//
//  * OverloadGovernor — a per-host hysteresis state machine
//    (normal -> overloaded -> livelocked) fed by backlog depth, the
//    time-squeeze streak, and poll-list residency. Declared overload
//    stretches NIC interrupt moderation (degradation at the source); a
//    watchdog declares livelock when polls keep completing with zero
//    stage-3 socket deliveries while input pressure (IRQs or backlog
//    arrivals) continues. Transitions are logged (bounded, deterministic)
//    and exported through the "prism/overload" proc file.
//
// Building with -DPRISM_OVERLOAD=OFF defines PRISM_OVERLOAD_ENABLED=0:
// the classes still compile (configs and proc files keep working) but
// every hot-path hook — admission in enqueue, governor notes in the
// softirq loop and socket deliverer, the ksoftirqd deferral — compiles
// down to nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/napi.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace prism::kernel {

/// Tunables of the overload-control layer. A value object like CostModel:
/// copy, tweak, build a Host with it.
struct OverloadConfig {
  /// Master runtime switch. Off: admission admits everything, the
  /// governor never leaves kNormal, and the engines keep the immediate
  /// softirq re-raise instead of the ksoftirqd deferral.
  bool enabled = true;

  /// Per-flow dominance shedding at the backlog (Linux flow_limit).
  bool flow_limit = true;
  /// Hash buckets of the flow limiter (Linux flow_limit_table_len).
  std::size_t flow_limit_buckets = 4096;

  /// Enter overload when any backlog's depth reaches this fraction of
  /// netdev_max_backlog; leave only after it falls below `low_watermark`
  /// (hysteresis).
  double high_watermark = 0.75;
  double low_watermark = 0.25;
  /// Fraction of the queue limit reserved for high-priority (level >= 1)
  /// packets: level-0 enqueues are shed once depth reaches
  /// (1 - high_headroom) * netdev_max_backlog.
  double high_headroom = 0.10;

  /// Consecutive squeezed softirqs (budget or time limit hit with work
  /// remaining) that declare overload.
  int squeeze_enter_streak = 8;
  /// Consecutive softirqs ending with a non-empty poll list that declare
  /// overload (devices never drain — service can't keep up).
  int residency_enter_streak = 16;

  /// Watchdog: polls completing without a single stage-3 socket delivery,
  /// while IRQs or backlog arrivals continue, before livelock is
  /// declared.
  int livelock_polls = 64;

  /// Declared overload multiplies the NIC's coalesce usecs by this factor
  /// (IRQ-moderation stretch); restored on exit.
  double moderation_stretch = 4.0;
  /// Stretch target when the base configuration has moderation disabled
  /// (usecs == 0).
  sim::Duration moderation_floor = sim::microseconds(20);

  /// Bound of the in-memory transition log (older entries are never
  /// evicted; excess transitions are counted, not stored).
  std::size_t max_transitions = 256;
};

/// Faithful port of the kernel's skb_flow_limit(): a bucket-hashed count
/// of which flows occupied the last `history_len` backlog enqueues. A
/// packet is shed when its queue is at least half full AND its flow holds
/// more than half the history — i.e. a single dominant flow cannot
/// monopolize a congested backlog.
class FlowLimiter {
 public:
  FlowLimiter(std::size_t num_buckets, std::size_t history_len)
      : history_(history_len == 0 ? 1 : history_len, kEmpty),
        buckets_(num_buckets == 0 ? 1 : num_buckets, 0) {}

  /// Records the enqueue attempt and decides: true => shed this packet.
  /// `qlen` is the backlog depth before the enqueue; below half of
  /// `max_backlog` the limiter is dormant and records nothing, exactly
  /// like the kernel's early return.
  bool should_drop(std::uint64_t flow_hash, std::size_t qlen,
                   std::size_t max_backlog) {
    if (qlen < max_backlog / 2) return false;
    const auto new_flow =
        static_cast<std::uint32_t>(flow_hash % buckets_.size());
    const std::uint32_t old_flow = history_[head_];
    history_[head_] = new_flow;
    head_ = (head_ + 1) % history_.size();
    // Not-yet-written history slots hold an explicit sentinel (divergence:
    // the kernel zero-initializes, which aliases bucket 0 and suppresses
    // its counts for the first pass through the history).
    if (old_flow != kEmpty && buckets_[old_flow] > 0) --buckets_[old_flow];
    if (buckets_[new_flow]++ > history_.size() / 2) {
      ++count_;
      return true;
    }
    return false;
  }

  /// Packets shed (softnet_stat's flow_limit_count column).
  std::uint64_t count() const noexcept { return count_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::vector<std::uint32_t> history_;
  std::vector<std::uint32_t> buckets_;
  std::size_t head_ = 0;
  std::uint64_t count_ = 0;
};

class OverloadGovernor;

/// Per-CPU backlog admission: flow_limit plus priority-aware shedding
/// with reserved high-priority headroom. Consulted by NapiStruct::enqueue
/// for the backlog napis (not the NIC ring or bridge cells, matching
/// where the kernel applies flow_limit: enqueue_to_backlog).
class BacklogAdmission final : public AdmissionPolicy {
 public:
  BacklogAdmission(const OverloadConfig& cfg, std::size_t max_backlog)
      : cfg_(cfg),
        headroom_(static_cast<std::size_t>(
            cfg.high_headroom * static_cast<double>(max_backlog))),
        limiter_(cfg.flow_limit_buckets, max_backlog) {}

  /// Notifies the governor of every enqueue attempt (depth watermark
  /// input). nullptr detaches.
  void set_governor(OverloadGovernor* governor) noexcept {
    governor_ = governor;
  }

  Verdict admit(const Skb& skb, int level, std::size_t qlen,
                std::size_t limit) override;

  std::uint64_t flow_limit_count() const noexcept {
    return limiter_.count();
  }
  std::uint64_t shed_count() const noexcept { return sheds_; }

 private:
  const OverloadConfig cfg_;
  const std::size_t headroom_;
  FlowLimiter limiter_;
  OverloadGovernor* governor_ = nullptr;
  std::uint64_t sheds_ = 0;
};

/// Per-host overload state machine + receiver-livelock watchdog.
///
///                    depth >= high_wm, or squeeze/residency streak
///          +--------+ ------------------------------------> +------------+
///          | normal |                                       | overloaded |
///          +--------+ <------------------------------------ +------------+
///               ^       depth <= low_wm and streaks cleared    |       ^
///               |                                              |       |
///               |             livelock_polls polls with zero   |       |
///               |             deliveries under input pressure  v       |
///               |                                         +------------+
///               +---- (never directly) ------------------ | livelocked |
///                     delivery resumes -> overloaded      +------------+
class OverloadGovernor {
 public:
  enum class State { kNormal, kOverloaded, kLivelocked };

  struct Transition {
    sim::Time at = 0;
    State from = State::kNormal;
    State to = State::kNormal;
    const char* cause = "";
  };

  OverloadGovernor(sim::Simulator& sim, const OverloadConfig& cfg,
                   std::size_t max_backlog)
      : sim_(sim),
        cfg_(cfg),
        enter_depth_(static_cast<std::size_t>(
            cfg.high_watermark * static_cast<double>(max_backlog))),
        exit_depth_(static_cast<std::size_t>(
            cfg.low_watermark * static_cast<double>(max_backlog))) {}

  OverloadGovernor(const OverloadGovernor&) = delete;
  OverloadGovernor& operator=(const OverloadGovernor&) = delete;

  /// Probe returning the deepest backlog on the host (hysteresis exit
  /// checks re-sample it; the enter check uses the depth the enqueue
  /// observed).
  void set_depth_probe(std::function<std::size_t()> probe) {
    depth_probe_ = std::move(probe);
  }

  /// Invoked with `true` on entering overload and `false` on returning to
  /// normal — the host wires NIC IRQ-moderation stretch here.
  void set_moderation_hook(std::function<void(bool)> hook) {
    moderation_hook_ = std::move(hook);
  }

  /// Invoked on EVERY state change (after the log entry is recorded) —
  /// the host feeds the anomaly bank's governor-flap detector here.
  /// Purely observational: must not call back into the governor.
  using TransitionObserver = std::function<void(const Transition&)>;
  void set_transition_observer(TransitionObserver observer) {
    transition_observer_ = std::move(observer);
  }

  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_entries_ = &reg.counter(prefix + "entries");
    t_exits_ = &reg.counter(prefix + "exits");
    t_livelocks_ = &reg.counter(prefix + "livelocks");
    t_state_ = &reg.gauge(prefix + "state");
  }

  // ------------------------------------------------ event notifications
  /// A backlog enqueue was attempted with `depth` packets already queued.
  void note_enqueue(std::size_t depth) {
    if (!cfg_.enabled) return;
    if (state_ == State::kNormal) {
      if (depth >= enter_depth_) transition(State::kOverloaded, "depth");
      return;
    }
    ++arrivals_since_delivery_;
  }

  /// One net_rx_action invocation finished. `squeezed`: it hit the packet
  /// or time budget with work remaining; `residual`: poll-list length it
  /// left behind.
  void note_softirq_end(bool squeezed, std::size_t residual) {
    if (!cfg_.enabled) return;
    squeeze_streak_ = squeezed ? squeeze_streak_ + 1 : 0;
    residency_streak_ = residual > 0 ? residency_streak_ + 1 : 0;
    if (state_ == State::kNormal) {
      if (squeeze_streak_ >= cfg_.squeeze_enter_streak) {
        transition(State::kOverloaded, "squeeze");
      } else if (residency_streak_ >= cfg_.residency_enter_streak) {
        transition(State::kOverloaded, "residency");
      }
      return;
    }
    maybe_exit();
  }

  /// One device poll completed.
  void note_poll() {
    if (!cfg_.enabled || state_ == State::kNormal) return;
    ++polls_since_delivery_;
    if (state_ == State::kOverloaded &&
        polls_since_delivery_ >= cfg_.livelock_polls &&
        irqs_since_delivery_ + arrivals_since_delivery_ > 0) {
      ++livelocks_;
      t_livelocks_->inc();
      transition(State::kLivelocked, "livelock");
    }
  }

  /// A packet reached a stage-3 socket.
  void note_delivery() {
    polls_since_delivery_ = 0;
    irqs_since_delivery_ = 0;
    arrivals_since_delivery_ = 0;
    if (!cfg_.enabled || state_ == State::kNormal) return;
    if (state_ == State::kLivelocked) {
      transition(State::kOverloaded, "delivery_resumed");
    }
    maybe_exit();
  }

  /// A NIC IRQ top-half fired.
  void note_irq() {
    if (!cfg_.enabled || state_ == State::kNormal) return;
    ++irqs_since_delivery_;
  }

  // ------------------------------------------------------------ queries
  State state() const noexcept { return state_; }
  std::uint64_t entries() const noexcept { return entries_; }
  std::uint64_t exits() const noexcept { return exits_; }
  /// Watchdog fires (overloaded -> livelocked transitions).
  std::uint64_t livelocks() const noexcept { return livelocks_; }
  const std::vector<Transition>& transitions() const noexcept {
    return log_;
  }
  std::uint64_t transitions_dropped() const noexcept {
    return log_dropped_;
  }
  const OverloadConfig& config() const noexcept { return cfg_; }
  std::size_t enter_depth() const noexcept { return enter_depth_; }
  std::size_t exit_depth() const noexcept { return exit_depth_; }

 private:
  void maybe_exit() {
    if (state_ != State::kOverloaded) return;
    if (squeeze_streak_ != 0 || residency_streak_ != 0) return;
    if (depth_probe_ && depth_probe_() > exit_depth_) return;
    transition(State::kNormal, "recovered");
  }

  void transition(State to, const char* cause);

  sim::Simulator& sim_;
  const OverloadConfig cfg_;
  const std::size_t enter_depth_;
  const std::size_t exit_depth_;
  std::function<std::size_t()> depth_probe_;
  std::function<void(bool)> moderation_hook_;
  TransitionObserver transition_observer_;
  State state_ = State::kNormal;
  int squeeze_streak_ = 0;
  int residency_streak_ = 0;
  int polls_since_delivery_ = 0;
  std::uint64_t irqs_since_delivery_ = 0;
  std::uint64_t arrivals_since_delivery_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t livelocks_ = 0;
  std::vector<Transition> log_;
  std::uint64_t log_dropped_ = 0;
  telemetry::Counter* t_entries_ = &telemetry::Counter::sink();
  telemetry::Counter* t_exits_ = &telemetry::Counter::sink();
  telemetry::Counter* t_livelocks_ = &telemetry::Counter::sink();
  telemetry::Gauge* t_state_ = &telemetry::Gauge::sink();
};

/// Stable lowercase state name ("normal", "overloaded", "livelocked").
const char* to_string(OverloadGovernor::State s) noexcept;

/// Renders the host's overload state for the "prism/overload" proc file:
/// current state, watermarks, transition log, watchdog counters, and the
/// per-CPU flow_limit / shed attribution. Byte-identical across same-seed
/// runs.
std::string overload_json(const OverloadGovernor& gov,
                          const std::vector<const BacklogAdmission*>& cpus);

}  // namespace prism::kernel
