// Minimal TCP endpoint for the simulated stack.
//
// The paper's TCP workloads (sockperf TCP throughput with 64 KB messages,
// single-connection HTTP) run over a reliable point-to-point link with
// adequate buffering, so congestion control never engages. This endpoint
// implements what those workloads exercise:
//
//   * MSS segmentation of large sends, with TSO cost semantics (the first
//     segment pays full egress cost, subsequent segments a small
//     per-segment cost) — this is the "64 KB packets fragmented into
//     MTU-sized packets by the egress kernel stack" of the paper's Fig. 13
//     workload;
//   * cumulative ACKs, generated per delivered skb (one ACK per GRO
//     super-skb, as with real GRO + delayed ACK);
//   * in-order delivery with out-of-order buffering and
//     retransmission-on-timeout, so packet drops under overload do not
//     wedge the stream.
//
// Connections are created established (the testbed wires both ends); the
// three-way handshake is out of scope and documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "kernel/cost_model.h"
#include "kernel/cpu.h"
#include "net/flow.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace prism::overlay {
class Netns;
}

namespace prism::kernel {

/// One side of an established TCP connection.
class TcpEndpoint {
 public:
  struct Config {
    overlay::Netns* ns = nullptr;  ///< local namespace (owns egress)
    net::Ipv4Addr local_ip;
    net::Ipv4Addr remote_ip;
    std::uint16_t local_port = 0;
    std::uint16_t remote_port = 0;
    /// Payload bytes per segment. Container overlay paths use a reduced
    /// MSS because of the 50-byte VXLAN overhead (Docker sets MTU 1450).
    std::size_t mss = 1400;
    sim::Duration rto = sim::milliseconds(10);
  };

  TcpEndpoint(sim::Simulator& sim, const CostModel& cost, Config config);

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// The flow as it appears in frames *arriving* at this endpoint — the
  /// SocketTable registration key.
  net::FiveTuple incoming_flow() const noexcept;

  // ------------------------------------------------------- application

  /// Sends `data` on the stream, charging syscall/copy/egress costs to
  /// `cpu`. Segments leave the host back to back when the task completes.
  void send(std::vector<std::uint8_t> data, Cpu& cpu);

  /// In-order stream delivery. Called at the socket-arrival instant of
  /// each delivered chunk.
  std::function<void(std::span<const std::uint8_t> data, sim::Time at)>
      on_data;

  // ------------------------------------------------------------ kernel

  /// Processes one arriving segment at instant `at` (called by the
  /// reception pipeline's socket-delivery step). Returns extra in-kernel
  /// cost incurred (ACK transmission). `ack_now` is false for the
  /// non-final frames of a GRO train, so one ACK covers the whole merge
  /// (GRO + delayed-ACK behaviour).
  sim::Duration handle_segment(const net::TcpHeader& header,
                               std::span<const std::uint8_t> payload,
                               sim::Time at, bool ack_now = true);

  // ------------------------------------------------------ diagnostics

  std::uint32_t snd_nxt() const noexcept { return snd_nxt_; }
  std::uint32_t snd_una() const noexcept { return snd_una_; }
  std::uint32_t rcv_nxt() const noexcept { return rcv_nxt_; }
  std::uint64_t bytes_delivered() const noexcept { return delivered_; }
  std::uint64_t retransmissions() const noexcept { return retransmits_; }
  std::uint64_t acks_sent() const noexcept { return acks_sent_; }
  std::size_t unacked_bytes() const noexcept { return rtx_buffer_.size(); }

 private:
  void transmit_range(std::uint32_t from_seq,
                      std::span<const std::uint8_t> data, sim::Time at);
  void send_ack(sim::Time at);
  void arm_rto();
  void on_rto();
  net::PacketBuf build_segment(std::uint32_t seq,
                               std::span<const std::uint8_t> payload,
                               bool push) const;
  /// Wrap-safe sequence comparison: a > b.
  static bool seq_gt(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) > 0;
  }

  sim::Simulator& sim_;
  const CostModel& cost_;
  Config cfg_;

  // Sender state.
  std::uint32_t snd_nxt_ = 1;
  std::uint32_t snd_una_ = 1;
  std::vector<std::uint8_t> rtx_buffer_;  ///< unacked bytes from snd_una_
  std::uint64_t rto_epoch_ = 0;           ///< invalidates stale timers
  bool rto_armed_ = false;

  // Receiver state.
  std::uint32_t rcv_nxt_ = 1;
  std::map<std::uint32_t, std::vector<std::uint8_t>> ooo_;

  std::uint64_t delivered_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace prism::kernel
