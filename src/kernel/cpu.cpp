#include "kernel/cpu.h"

#include <cassert>
#include <utility>

namespace prism::kernel {

Cpu::Cpu(sim::Simulator& sim, const CostModel& cost, int id)
    : sim_(sim), cost_(cost), id_(id) {}

void Cpu::run_softirq(Chunk chunk) { enqueue(true, std::move(chunk)); }

void Cpu::run_task(sim::Duration cost, std::function<void()> on_done) {
  // Chunks run exactly once, so the completion callback can be moved into
  // the scheduled event instead of copied (a copy would clone captures).
  enqueue(false, [this, cost, cb = std::move(on_done)]() mutable {
    sim_.schedule(cost, std::move(cb));
    return cost;
  });
}

void Cpu::run_task_fn(Chunk chunk) { enqueue(false, std::move(chunk)); }

void Cpu::enqueue(bool softirq, Chunk chunk) {
  (softirq ? softirq_q_ : task_q_).push_back(std::move(chunk));
  if (!running_) {
    running_ = true;
    // The core might still be "cooling down" from a previous chunk whose
    // completion event hasn't fired; never start before busy_until_.
    sim_.schedule_at(std::max(sim_.now(), busy_until_),
                     [this] { dispatch(); });
  }
}

void Cpu::dispatch() {
  if (softirq_q_.empty() && task_q_.empty()) {
    running_ = false;
    idle_pending_ = true;
    idle_since_ = sim_.now();
    return;
  }
  if (idle_pending_) {
    idle_pending_ = false;
    if (sim_.now() - idle_since_ >= cost_.cstate_entry_threshold) {
      // Pay the C1 exit before any work. The stall is wall-clock delay,
      // not chargeable work, so it is excluded from busy accounting.
      ++cstate_exits_;
      sim_.schedule(cost_.cstate_exit_latency, [this] { run_next(); });
      return;
    }
  }
  run_next();
}

void Cpu::run_next() {
  assert(!softirq_q_.empty() || !task_q_.empty());
  auto& q = softirq_q_.empty() ? task_q_ : softirq_q_;
  Chunk chunk = std::move(q.front());
  q.pop_front();
  const sim::Duration cost = chunk();
  assert(cost >= 0 && "chunk cost must be non-negative");
  busy_until_ = sim_.now() + cost;
  acct_.add_busy(cost);
  sim_.schedule(cost, [this] { dispatch(); });
}

}  // namespace prism::kernel
