// Simulated CPU core.
//
// A Cpu executes "chunks" of work sequentially, charging simulated time for
// each. Two priority levels model the kernel's execution regime: softirq
// work always runs before task (application/syscall) work on the same core
// — softirq context has strictly higher priority than any thread (paper
// §VII-4), which is why heavy packet processing can starve colocated
// applications in both Vanilla and PRISM.
//
// Chunks are non-preemptive: once started, a chunk runs to completion.
// Every chunk in this codebase is microseconds-scale (one NAPI batch, one
// syscall, one request service), so the approximation error versus a
// preemptible kernel is bounded by one batch — the same granularity the
// paper's own batch-level preemption argument uses.
//
// The Cpu also models the C1 sleep state the paper's testbed allowed
// (max C-state = 1): a core idle longer than an entry threshold pays an
// exit latency before its next chunk, reproducing the low-load latency
// bump of Fig. 11.
#pragma once

#include <deque>
#include <functional>

#include "kernel/cost_model.h"
#include "sim/inline_fn.h"
#include "sim/simulator.h"
#include "stats/cpu_accounting.h"

namespace prism::kernel {

/// One simulated core. All state is driven by the shared Simulator; the
/// object must outlive any scheduled work.
class Cpu {
 public:
  /// Work to execute. Runs at the chunk's start instant and returns the
  /// simulated duration the chunk occupies the core. The body may schedule
  /// events at intermediate instants (start + partial cost) to model
  /// effects that happen midway through the chunk. Move-only with inline
  /// capture storage — chunks queue and run without heap traffic.
  using Chunk = sim::InlineFn<sim::Duration()>;

  Cpu(sim::Simulator& sim, const CostModel& cost, int id);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Enqueues softirq-priority work (IRQ top halves, NAPI processing).
  void run_softirq(Chunk chunk);

  /// Enqueues task-priority work with a cost known up front; `on_done`
  /// fires at the chunk's completion instant.
  void run_task(sim::Duration cost, std::function<void()> on_done);

  /// Enqueues task-priority work whose cost is computed when it starts.
  void run_task_fn(Chunk chunk);

  /// True when nothing is running or queued on this core.
  bool idle() const noexcept {
    return !running_ && softirq_q_.empty() && task_q_.empty();
  }

  /// Instant the current chunk finishes (<= now when idle).
  sim::Time busy_until() const noexcept { return busy_until_; }

  int id() const noexcept { return id_; }

  stats::CpuAccounting& accounting() noexcept { return acct_; }
  const stats::CpuAccounting& accounting() const noexcept { return acct_; }

  /// Number of C1 exits taken (for tests and diagnostics).
  std::uint64_t cstate_exits() const noexcept { return cstate_exits_; }

 private:
  void enqueue(bool softirq, Chunk chunk);
  void dispatch();
  void run_next();

  sim::Simulator& sim_;
  const CostModel& cost_;
  int id_;
  std::deque<Chunk> softirq_q_;
  std::deque<Chunk> task_q_;
  bool running_ = false;
  bool idle_pending_ = false;  // core went idle; C-state check on next work
  sim::Time idle_since_ = 0;
  sim::Time busy_until_ = 0;
  stats::CpuAccounting acct_;
  std::uint64_t cstate_exits_ = 0;
};

}  // namespace prism::kernel
