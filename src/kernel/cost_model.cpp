#include "kernel/cost_model.h"

// All members are defaulted inline; this translation unit anchors the
// target's source list.
