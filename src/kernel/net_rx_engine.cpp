#include "kernel/net_rx_engine.h"

#include <algorithm>
#include <stdexcept>

#include "kernel/overload.h"

namespace prism::kernel {

NetRxEngine::NetRxEngine(sim::Simulator& sim, Cpu& cpu,
                         const CostModel& cost, NapiMode mode)
    : sim_(sim), cpu_(cpu), cost_(cost), mode_(mode), track_(cpu.id()) {}

void NetRxEngine::set_mode(NapiMode mode) {
  if (!idle()) {
    throw std::logic_error(
        "NetRxEngine::set_mode: engine must be idle to switch modes");
  }
  mode_ = mode;
}

void NetRxEngine::set_span_tracer(telemetry::SpanTracer* tracer,
                                  int track) {
  tracer_ = tracer;
  track_ = track;
  if (tracer_ != nullptr) {
    softirq_span_name_ = tracer_->intern("net_rx_action");
  }
}

void NetRxEngine::bind_telemetry(telemetry::Registry& reg,
                                 const std::string& prefix) {
  t_softirqs_ = &reg.counter(prefix + "softirqs");
  t_polls_ = &reg.counter(prefix + "polls");
  t_packets_ = &reg.counter(prefix + "packets");
  t_time_squeeze_ = &reg.counter(prefix + "time_squeeze");
  t_budget_squeeze_ = &reg.counter(prefix + "budget_squeeze");
  t_time_budget_squeeze_ = &reg.counter(prefix + "time_budget_squeeze");
  t_ksoftirqd_runs_ = &reg.counter(prefix + "ksoftirqd_runs");
  t_requeues_ = &reg.counter(prefix + "requeues");
  t_head_inserts_ = &reg.counter(prefix + "prism_head_inserts");
}

void NetRxEngine::napi_schedule(NapiStruct& napi, bool high) {
  if (mode_ == NapiMode::kVanilla) {
    // Vanilla: new devices always go to the tail of the global list;
    // an already-scheduled device is left where it is.
    if (!napi.scheduled) {
      napi.scheduled = true;
      global_list_.push_back(&napi);
    }
  } else {
    // PRISM: head insertion for devices receiving high-priority packets;
    // a device already in the list is *moved* to the head (paper §III-A).
    // The prism-queues ablation keeps the single list but never inserts
    // at the head.
    const bool head = high && mode_ != NapiMode::kPrismQueues;
    if (!napi.scheduled) {
      napi.scheduled = true;
      if (head) {
        global_list_.push_front(&napi);
        ++head_inserts_;
        t_head_inserts_->inc();
      } else {
        global_list_.push_back(&napi);
      }
    } else if (head) {
      auto it = std::find(global_list_.begin(), global_list_.end(), &napi);
      if (it != global_list_.end()) {
        global_list_.splice(global_list_.begin(), global_list_, it);
        ++head_inserts_;
        t_head_inserts_->inc();
      }
      // If the device is not in the list it is being polled right now;
      // the post-poll requeue (has_high_pending -> head) handles it.
    }
  }
  if (!in_softirq_) raise_softirq();
}

void NetRxEngine::raise_softirq() {
  if (softirq_pending_) return;
  softirq_pending_ = true;
  cpu_.run_softirq([this] { return entry_chunk(); });
}

void NetRxEngine::schedule_ksoftirqd() {
  if (ksoftirqd_scheduled_) return;
  ksoftirqd_scheduled_ = true;
  ++ksoftirqd_deferrals_;
  cpu_.run_task_fn([this] { return ksoftirqd_chunk(); });
}

sim::Duration NetRxEngine::ksoftirqd_chunk() {
  ksoftirqd_scheduled_ = false;
  // An IRQ-raised softirq pass ran (or is about to run) since the
  // deferral: leave the work to it — ksoftirqd only mops up what the
  // softirq path left behind.
  if (in_softirq_ || softirq_pending_ || global_list_.empty()) return 0;
  ksoftirqd_ctx_ = true;
  ++ksoftirqd_runs_;
  t_ksoftirqd_runs_->inc();
  return entry_chunk();
}

sim::Duration NetRxEngine::entry_chunk() {
  softirq_pending_ = false;
  in_softirq_ = true;
  softirq_started_ = sim_.now();
  ++softirqs_;
  t_softirqs_->inc();
  budget_ = cost_.napi_budget;
  if (mode_ == NapiMode::kVanilla) {
    // Fig. 2 line 8: move the global POLL_LIST onto the local list. This
    // is the lock-free handoff whose synchronization delay PRISM removes.
    local_list_.splice(local_list_.end(), global_list_);
  }
  // A ksoftirqd pass queues its polls at task priority so IRQ top-halves
  // and freshly raised softirqs preempt it at chunk boundaries.
  if (ksoftirqd_ctx_) {
    cpu_.run_task_fn([this] { return poll_chunk(); });
  } else {
    cpu_.run_softirq([this] { return poll_chunk(); });
  }
  if (tracer_ != nullptr) {
    tracer_->span(track_, softirq_span_name_, sim_.now(),
                  cost_.softirq_entry);
  }
  return cost_.softirq_entry;
}

sim::Duration NetRxEngine::poll_chunk() {
  auto& list =
      mode_ == NapiMode::kVanilla ? local_list_ : global_list_;
  if (list.empty()) {
    finish_softirq(false);
    return 0;
  }
  NapiStruct* dev = list.front();
  list.pop_front();

  const sim::Time poll_start = sim_.now();
  const PollOutcome out = dev->poll(cost_.napi_batch_size, poll_start);
  budget_ -= out.processed;
  ++polls_;
  t_polls_->inc();
#if PRISM_OVERLOAD_ENABLED
  if (governor_ != nullptr) governor_->note_poll();
#endif
  packets_ += static_cast<std::uint64_t>(out.processed);
  t_packets_->inc(static_cast<std::uint64_t>(out.processed));

  if (mode_ == NapiMode::kVanilla) {
    // Fig. 2 lines 16-17: a device with remaining packets is appended to
    // the *global* list — it will not be polled again until the next
    // net_rx_action invocation, which is what interleaves batches.
    if (out.has_more) {
      global_list_.push_back(dev);
      ++requeues_;
      t_requeues_->inc();
    } else {
      dev->scheduled = false;
      dev->on_complete();
    }
  } else {
    // Fig. 7 lines 13-16: requeue by pending priority.
    if (dev->has_high_pending() && mode_ != NapiMode::kPrismQueues) {
      global_list_.push_front(dev);
      ++requeues_;
      t_requeues_->inc();
      ++head_inserts_;
      t_head_inserts_->inc();
    } else if (dev->has_pending()) {
      global_list_.push_back(dev);
      ++requeues_;
      t_requeues_->inc();
    } else {
      dev->scheduled = false;
      dev->on_complete();
    }
  }

  if (trace_ != nullptr) trace_poll(dev, out.processed);
  if (tracer_ != nullptr) {
    tracer_->span(track_, tracer_->intern(dev->name()), poll_start,
                  out.cost, static_cast<std::uint32_t>(out.processed),
                  static_cast<std::uint32_t>(out.cost));
  }

  auto& cur = mode_ == NapiMode::kVanilla ? local_list_ : global_list_;
  const bool budget_out = budget_ <= 0;
  const bool time_out =
      sim_.now() + out.cost - softirq_started_ >= cost_.netdev_budget_usecs;
  if (budget_out || time_out || cur.empty()) {
    bool squeezed = false;
    if ((budget_out || time_out) && !cur.empty()) {
      // Work remained but a budget ran out — what softnet_stat's
      // time_squeeze column counts (the kernel lumps both causes into
      // one column; the split is kept for diagnosis).
      squeezed = true;
      ++time_squeezes_;
      t_time_squeeze_->inc();
      if (budget_out) {
        ++budget_squeezes_;
        t_budget_squeeze_->inc();
      } else {
        ++time_budget_squeezes_;
        t_time_budget_squeeze_->inc();
      }
    }
    finish_softirq(squeezed);
  } else if (ksoftirqd_ctx_) {
    cpu_.run_task_fn([this] { return poll_chunk(); });
  } else {
    cpu_.run_softirq([this] { return poll_chunk(); });
  }
  return out.cost;
}

void NetRxEngine::finish_softirq(bool squeezed) {
  in_softirq_ = false;
  ksoftirqd_ctx_ = false;
  if (mode_ == NapiMode::kVanilla) {
    // Fig. 2 lines 21-22: remaining local devices keep precedence — the
    // global list is appended after them, then everything moves back to
    // the global list.
    local_list_.splice(local_list_.end(), global_list_);
    global_list_ = std::move(local_list_);
    local_list_.clear();
  }
#if PRISM_OVERLOAD_ENABLED
  if (governor_ != nullptr) {
    governor_->note_softirq_end(squeezed, global_list_.size());
  }
  if (!global_list_.empty()) {
    // A squeezed pass defers its remainder to ksoftirqd instead of
    // re-raising — the kernel's starvation avoidance. A pass that ended
    // for another reason (device re-armed mid-finish) re-raises.
    if (squeezed && ksoftirqd_enabled_) {
      schedule_ksoftirqd();
    } else {
      raise_softirq();
    }
  }
#else
  (void)squeezed;
  if (!global_list_.empty()) raise_softirq();
#endif
}

void NetRxEngine::trace_poll(NapiStruct* dev, int processed) {
  trace_scratch_.clear();
  for (const auto* d : local_list_) {
    trace_scratch_.push_back(trace_->intern(d->name()));
  }
  for (const auto* d : global_list_) {
    trace_scratch_.push_back(trace_->intern(d->name()));
  }
  trace_->on_poll_ids(sim_.now(), trace_->intern(dev->name()),
                      trace_scratch_.data(), trace_scratch_.size(),
                      processed);
}

}  // namespace prism::kernel
