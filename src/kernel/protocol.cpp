#include "kernel/protocol.h"

#include <algorithm>

#include "fault/fault.h"
#include "kernel/overload.h"
#include "kernel/socket.h"
#include "sim/pool.h"
#include "kernel/tcp.h"
#include "net/flow.h"
#include "overlay/netns.h"
#include "telemetry/anomaly.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/flow_table.h"
#include "telemetry/latency.h"

namespace prism::kernel {

sim::Duration SocketDeliverer::deliver(Skb& skb, sim::Time at,
                                       overlay::Netns& ns) {
  if (!ns.accepting()) {
    // Destination namespace is draining or torn down. Every wire frame of
    // the train (head + GRO chain) drops as kDeadNetns; no delivery stamps
    // are recorded, so the journey counts as dropped, never as delivered.
    // The namespace object is a tombstone — observing its state here is
    // exactly why stale Netns* pointers stay safe to hold.
    const auto frames =
        static_cast<std::uint64_t>(1 + skb.gro_chain.size());
    dead_ns_drops_ += frames;
    for (std::uint64_t i = 0; i < frames; ++i) {
      t_dead_ns_drops_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kDeadNetns, skb.priority);
      }
    }
    return 0;
  }
  skb.ts.socket_enqueue = at;
#if PRISM_TELEMETRY_ENABLED
  // The journey [nic_rx, socket_enqueue] is complete: attribute it per
  // stage, once per skb (a GRO train shares its head's timestamps).
  if (ledger_ != nullptr) ledger_->record_delivery(skb.ts, skb.priority);
  // Recorder-observed class: equals priority in Prism modes; in vanilla
  // the datapath never classifies, so the side-channel classification
  // carries the class the SLO detector should attribute this journey to.
  const int observed = skb.observed_class > skb.priority
                           ? static_cast<int>(skb.observed_class)
                           : skb.priority;
  if (anomalies_ != nullptr && skb.ts.nic_rx >= 0) {
    anomalies_->on_delivery(observed, at - skb.ts.nic_rx, at);
  }
  if (recorder_ != nullptr && skb.traced && skb.parsed) {
    recorder_->on_deliver(net::flow_of(*skb.parsed), observed,
                          skb.ts.nic_rx >= 0 ? at - skb.ts.nic_rx : 0, at);
  }
#endif
  sim::Duration extra =
      deliver_frame(skb, skb.buf.bytes(), skb.parsed ? &*skb.parsed : nullptr,
                    at, ns, skb.gro_chain.empty());
  for (std::size_t i = 0; i < skb.gro_chain.size(); ++i) {
    extra += deliver_frame(skb, skb.gro_chain[i].bytes(), nullptr, at, ns,
                           i + 1 == skb.gro_chain.size());
  }
  if (trace_) trace_->on_delivered(skb, at);
  return extra;
}

sim::Duration SocketDeliverer::deliver_frame(
    const Skb& skb, std::span<const std::uint8_t> frame,
    const net::ParsedFrame* pre_parsed, sim::Time at, overlay::Netns& ns,
    bool final_frame) {
  net::ParsedFrame local;
  if (pre_parsed == nullptr && net::parse_frame_into(frame, local)) {
    pre_parsed = &local;
  }
  const auto* parsed = pre_parsed;
  if (!parsed) {
    ++drops_;
    t_no_socket_drops_->inc();
    if (faults_ != nullptr) {
      faults_->drops.record(fault::DropReason::kMalformed, skb.priority);
    }
    return 0;
  }
#if PRISM_TELEMETRY_ENABLED
  // Per-flow accounting (one record per wire frame, so a GRO train
  // counts each merged segment). e2e < 0 skips the latency histogram
  // for synthetically injected skbs without a nic_rx stamp. `reason` is
  // the fault::DropReason code on failure (-1 on success), threaded into
  // the flow table's drop history and the flight recorder.
  const auto account = [&](bool delivered_ok, int reason) {
    if (!delivered_ok && recorder_ != nullptr && skb.traced) {
      const int observed = skb.observed_class > skb.priority
                               ? static_cast<int>(skb.observed_class)
                               : skb.priority;
      recorder_->on_drop(net::flow_of(*parsed), 4, observed, reason, at);
    }
    if (flows_ == nullptr) return;
    flows_->record_frame(net::flow_of(*parsed), frame.size(),
                         skb.priority,
                         skb.ts.nic_rx >= 0 ? at - skb.ts.nic_rx : -1, at,
                         delivered_ok, reason);
  };
#else
  const auto account = [](bool, int) {};
#endif
  if (parsed->udp) {
    // Receive-side L4 validation: a UDP checksum of zero means "not
    // computed" (RFC 768; VXLAN outer headers use it per RFC 7348) and
    // verify_checksum accepts it. Anything else must verify over the
    // pseudo-header, catching payload/header bit-flips that survived the
    // IPv4 header checksum.
    const auto datagram = frame.subspan(
        parsed->l4_payload_offset - net::UdpHeader::kSize,
        parsed->udp->length);
    if (!net::UdpHeader::verify_checksum(datagram, parsed->ip.src,
                                         parsed->ip.dst)) {
      ++csum_drops_;
      t_csum_drops_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kChecksum, skb.priority);
      }
      account(false, static_cast<int>(fault::DropReason::kChecksum));
      return 0;
    }
    UdpSocket* sock = ns.sockets().lookup_udp(parsed->udp->dst_port);
    if (sock == nullptr) {
      ++drops_;
      t_no_socket_drops_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kNoSocket, skb.priority);
      }
      account(false, static_cast<int>(fault::DropReason::kNoSocket));
      return 0;
    }
#if PRISM_FAULTS_ENABLED
    if (faults_ != nullptr && faults_->plan.buf_alloc_fails()) {
      // Injected BufferPool starvation at the socket-buffer copy: the
      // kernel's sk_rmem allocation failure, dropped before any datagram
      // state exists.
      faults_->drops.record(fault::DropReason::kAllocFail, skb.priority);
      account(false, static_cast<int>(fault::DropReason::kAllocFail));
      return 0;
    }
#endif
    Datagram d;
    d.src_ip = parsed->ip.src;
    d.src_port = parsed->udp->src_port;
    d.payload = sim::BufferPool::instance().acquire(parsed->l4_payload.size());
    std::copy(parsed->l4_payload.begin(), parsed->l4_payload.end(),
              d.payload.begin());
    d.enqueued_at = at;
    d.high_priority = skb.high_priority();
    d.priority = skb.priority;
    d.ts = skb.ts;
    sock->enqueue(std::move(d), at);
    ++delivered_;
    t_delivered_->inc();
#if PRISM_OVERLOAD_ENABLED
    if (governor_ != nullptr) governor_->note_delivery();
#endif
    account(true, -1);
    return 0;
  }
  if (parsed->tcp) {
    const auto segment = frame.subspan(
        parsed->l4_payload_offset - net::TcpHeader::kSize,
        net::TcpHeader::kSize + parsed->l4_payload.size());
    if (!net::TcpHeader::verify_checksum(segment, parsed->ip.src,
                                         parsed->ip.dst)) {
      ++csum_drops_;
      t_csum_drops_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kChecksum, skb.priority);
      }
      account(false, static_cast<int>(fault::DropReason::kChecksum));
      return 0;
    }
    TcpEndpoint* ep = ns.sockets().lookup_tcp(net::flow_of(*parsed));
    if (ep == nullptr) {
      ++drops_;
      t_no_socket_drops_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kNoSocket, skb.priority);
      }
      account(false, static_cast<int>(fault::DropReason::kNoSocket));
      return 0;
    }
    ++delivered_;
    t_delivered_->inc();
#if PRISM_OVERLOAD_ENABLED
    if (governor_ != nullptr) governor_->note_delivery();
#endif
    account(true, -1);
    return ep->handle_segment(*parsed->tcp, parsed->l4_payload, at,
                              final_frame);
  }
  ++drops_;
  t_no_socket_drops_->inc();
  if (faults_ != nullptr) {
    faults_->drops.record(fault::DropReason::kNoSocket, skb.priority);
  }
  account(false, static_cast<int>(fault::DropReason::kNoSocket));
  return 0;
}

}  // namespace prism::kernel
