// Stage 1: the physical NIC driver's NAPI poll.
//
// Models the mlx5e-style driver poll the paper instruments: frames are
// dequeued from the hardware ring, an skb is allocated for each — this is
// where PRISM determines the packet's priority, once, against the global
// high-priority database (paper §IV-A) — the outer headers are processed,
// and the packet is routed:
//
//   * VXLAN-encapsulated frames are decapsulated and handed to the
//     bridge's gro_cell (stage transition into stage 2);
//   * native frames destined to the host take the single-stage path and
//     are delivered to a root-namespace socket right here.
//
// The poll also performs GRO: consecutive in-order TCP frames of one flow
// are merged into a super-skb so later stages and the socket pay per-skb
// costs once per merge (essential for the paper's Fig. 13 workload, where
// 64 KB TSO sends arrive as ~45-segment trains).
//
// Faithful limitation (paper §IV-D): the hardware ring itself is a single
// FIFO; priority has no effect until the skb exists, which is why PRISM
// cannot help single-stage host traffic (Fig. 10).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kernel/cost_model.h"
#include "kernel/napi.h"
#include "kernel/protocol.h"
#include "kernel/stage_transition.h"
#include "net/flow.h"
#include "nic/nic.h"
#include "prism/priority_db.h"

namespace prism::overlay {
class FlowCache;
class Netns;
}

namespace prism::telemetry {
class LatencyLedger;
}

namespace prism::kernel {

class NetRxEngine;

/// Wiring a NicNapi needs from its host.
struct NicNapiContext {
  NetRxEngine* engine = nullptr;
  StageTransition* transition = nullptr;
  const CostModel* cost = nullptr;
  /// PRISM's priority database; consulted only in PRISM modes.
  const prism::PriorityDb* priority_db = nullptr;
  SocketDeliverer* deliverer = nullptr;
  overlay::Netns* root_ns = nullptr;
  /// Optional: receives IRQ->poll durations (telemetry/latency.h).
  telemetry::LatencyLedger* ledger = nullptr;
  /// Optional: flow-path flight recorder. The sampling decision for a
  /// packet's whole journey is made here, at stage-1 dequeue.
  telemetry::FlightRecorder* recorder = nullptr;
  /// Optional: the host's fault layer (drop attribution, decap
  /// corruption, skb alloc-failure injection).
  fault::FaultLayer* faults = nullptr;
  /// Optional: per-host overlay flow cache (overlay/flow_cache.h). When
  /// enabled, overlay UDP packets whose transform is cached skip straight
  /// from this poll to socket delivery.
  overlay::FlowCache* flow_cache = nullptr;
  /// Resolves a VNI to this CPU's bridge gro_cell, nullptr if unknown.
  std::function<QueueNapi*(std::uint32_t vni)> vxlan_lookup;
};

/// NAPI over one hardware RX queue.
class NicNapi final : public NapiStruct {
 public:
  NicNapi(std::string name, nic::RxQueue& ring, NicNapiContext ctx);

  PollOutcome poll(int batch, sim::Time start) override;

  bool has_pending() const override { return !ring_.empty(); }
  /// The hardware ring cannot differentiate priority (paper §IV-D).
  bool has_high_pending() const override { return false; }
  /// napi_complete: re-enable the queue's interrupt.
  void on_complete() override { ring_.enable_irq(); }

  std::uint64_t dropped_unroutable() const noexcept { return dropped_; }
  /// Frames that failed wire-format validation (parse error, bad IPv4
  /// checksum, bad lengths) — distinct from unroutable, which parsed fine.
  std::uint64_t dropped_malformed() const noexcept {
    return dropped_malformed_;
  }
  std::uint64_t gro_merged() const noexcept { return gro_merged_; }

  /// Called by the host's IRQ handler at the interrupt instant. The next
  /// poll records start - irq_at as the IRQ->poll latency; subsequent
  /// re-polls of the same schedule don't (the softirq is already
  /// running).
  void note_irq(sim::Time at) noexcept {
    if (irq_at_ < 0) irq_at_ = at;
  }

  /// Registers driver-poll counters under `prefix` (e.g. "nic.q0.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_unroutable_ = &reg.counter(prefix + "unroutable_drops");
    t_malformed_ = &reg.counter(prefix + "malformed_drops");
    t_gro_merged_ = &reg.counter(prefix + "gro_merged");
  }

 private:
  /// Where a classified frame goes next.
  struct Route {
    QueueNapi* bridge = nullptr;  ///< overlay: stage-2 gro_cell
    bool host_path = false;       ///< native: deliver in root namespace
  };

  /// In-flight GRO aggregation state within one poll.
  struct GroSlot {
    SkbPtr skb;
    Route route;
    net::FiveTuple key;  ///< inner (overlay) or outer (host) TCP flow
    int count = 0;
  };

  sim::Duration flush(GroSlot& slot, sim::Time at, double mult);

  nic::RxQueue& ring_;
  NicNapiContext ctx_;
  sim::Time irq_at_ = -1;  ///< pending IRQ instant, -1 = none
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_malformed_ = 0;
  std::uint64_t gro_merged_ = 0;
  telemetry::Counter* t_unroutable_ = &telemetry::Counter::sink();
  telemetry::Counter* t_malformed_ = &telemetry::Counter::sink();
  telemetry::Counter* t_gro_merged_ = &telemetry::Counter::sink();
};

}  // namespace prism::kernel
