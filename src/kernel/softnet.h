// Per-CPU softnet data: the backlog NAPI — stage 3 of the overlay
// pipeline.
//
// Virtual devices without their own NAPI implementation (veth) use the
// per-CPU backlog: netif_rx enqueues their packets into softnet_data's
// input_pkt_queue and the generic process_backlog poll function drains it
// (paper §II-A3). PRISM adds a second, high-priority input queue next to
// it (paper §IV-B) — in this codebase that is QueueNapi's high_queue.
//
// The backlog stage performs the packet's final protocol processing in the
// destination container's namespace and delivers it to the socket.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/cost_model.h"
#include "kernel/napi.h"
#include "kernel/protocol.h"

namespace prism::kernel {

/// Stage 3: inner L3/L4 processing + socket delivery in the container
/// namespace the bridge resolved.
class BacklogStage final : public PacketStage {
 public:
  BacklogStage(std::string name, const CostModel& cost,
               SocketDeliverer& deliverer)
      : name_(std::move(name)), cost_(cost), deliverer_(deliverer) {}

  sim::Duration process_one(SkbPtr skb, sim::Time at,
                            double cost_multiplier) override;

  const std::string& name() const override { return name_; }

  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Registers stage counters under `prefix` (e.g. "cpu0.veth.").
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_delivered_ = &reg.counter(prefix + "delivered");
    t_dropped_ = &reg.counter(prefix + "dropped");
  }

  /// Attaches the host's fault layer: null-netns drops are attributed to
  /// the drop ledger. nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

 private:
  std::string name_;
  const CostModel& cost_;
  fault::FaultLayer* faults_ = nullptr;
  SocketDeliverer& deliverer_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  telemetry::Counter* t_delivered_ = &telemetry::Counter::sink();
  telemetry::Counter* t_dropped_ = &telemetry::Counter::sink();
};

}  // namespace prism::kernel
