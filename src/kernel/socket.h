// Sockets: the kernel/user boundary of the simulated stack.
//
// A UdpSocket owns the receive buffer the reception pipeline's last stage
// enqueues into; applications drain it and get edge notifications, paying
// syscall and copy costs on their own CPU. A SocketTable is the per-netns
// demux (one per host root namespace and per container).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "kernel/skb.h"
#include "net/flow.h"
#include "net/ip.h"
#include "sim/pool.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"

namespace prism::telemetry {
class LatencyLedger;
}

namespace prism::fault {
struct FaultLayer;
}

namespace prism::kernel {

class TcpEndpoint;

/// One received datagram as seen above the socket layer.
///
/// The payload's storage is recycled through sim::BufferPool when the
/// datagram is destroyed, so the deliver -> recv -> drop cycle of the
/// steady state reuses one heap block per in-flight datagram.
struct Datagram {
  net::Ipv4Addr src_ip;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> payload;
  sim::Time enqueued_at = 0;   ///< instant it entered the socket buffer
  bool high_priority = false;  ///< PRISM classification (diagnostic)
  int priority = 0;            ///< PRISM priority level (diagnostic)
  SkbTimestamps ts;            ///< pipeline timestamps (diagnostic)

  Datagram() = default;
  Datagram(const Datagram&) = default;
  Datagram& operator=(const Datagram&) = default;
  Datagram(Datagram&&) = default;
  Datagram& operator=(Datagram&&) = default;
  ~Datagram() { sim::BufferPool::instance().release(std::move(payload)); }
};

/// UDP socket with a bounded receive buffer.
class UdpSocket {
 public:
  UdpSocket(sim::Simulator& sim, std::uint16_t port,
            std::size_t capacity = 4096);

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Application-side: notification on every enqueue. The callback runs at
  /// the datagram's socket-arrival instant; the application is expected to
  /// charge its own wakeup/syscall costs.
  void set_on_readable(std::function<void()> cb) {
    on_readable_ = std::move(cb);
  }

  /// Application-side: dequeue the oldest datagram, nullopt when empty.
  std::optional<Datagram> try_recv();

  std::size_t queue_depth() const noexcept { return queue_.size(); }
  bool has_data() const noexcept { return !queue_.empty(); }

  /// Kernel-side: enqueue at simulated instant `at` (>= now). Datagrams
  /// beyond the buffer capacity are dropped and counted, as the kernel
  /// does when applications fall behind.
  void enqueue(Datagram d, sim::Time at);

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Closes the socket: purges queued datagrams (their payload storage
  /// recycles through the BufferPool) and refuses every later enqueue as
  /// a counted kDeadNetns drop. Called when the owning namespace finishes
  /// draining; received() is frozen from this instant.
  void close();
  bool closed() const noexcept { return closed_; }

  /// Registers receive-buffer counters under `prefix`. Several sockets
  /// may share one prefix (aggregate rcvbuf accounting per host).
  void bind_telemetry(telemetry::Registry& reg, const std::string& prefix) {
    t_enqueued_ = &reg.counter(prefix + "rcvbuf_enqueued");
    t_dropped_ = &reg.counter(prefix + "rcvbuf_drops");
    t_depth_ = &reg.gauge(prefix + "rcvbuf_depth");
  }

  /// Attaches the host's latency ledger: each try_recv records the
  /// datagram's socket-buffer residence (enqueue -> recv) as the
  /// socket_wait stage. nullptr detaches.
  void set_latency_ledger(telemetry::LatencyLedger* ledger) noexcept {
    ledger_ = ledger;
  }

  /// Attaches the host's fault layer: rcvbuf-overflow drops are
  /// attributed to the drop ledger. nullptr detaches.
  void set_faults(fault::FaultLayer* faults) noexcept { faults_ = faults; }

 private:
  sim::Simulator& sim_;
  std::uint16_t port_;
  std::size_t capacity_;
  std::deque<Datagram> queue_;
  std::function<void()> on_readable_;
  bool closed_ = false;
  fault::FaultLayer* faults_ = nullptr;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  telemetry::Counter* t_enqueued_ = &telemetry::Counter::sink();
  telemetry::Counter* t_dropped_ = &telemetry::Counter::sink();
  telemetry::Gauge* t_depth_ = &telemetry::Gauge::sink();
  telemetry::LatencyLedger* ledger_ = nullptr;
};

/// Per-namespace socket demultiplexer.
class SocketTable {
 public:
  /// Binds a UDP socket; throws std::logic_error if the port is taken.
  void bind_udp(UdpSocket& sock);
  void unbind_udp(std::uint16_t port);
  UdpSocket* lookup_udp(std::uint16_t port);

  /// Closes every bound UDP socket (namespace teardown). The closed
  /// sockets stay in the demux as tombstones: applications and deferred
  /// enqueues may still hold pointers, and a closed socket turns every
  /// arrival into a counted dead-netns drop.
  void close_all_udp();

  std::size_t udp_count() const noexcept { return udp_.size(); }

  /// Registers a TCP endpoint under the flow as seen in *incoming*
  /// frames: (remote -> local). Throws std::logic_error on duplicates.
  void register_tcp(const net::FiveTuple& incoming_flow, TcpEndpoint& ep);
  void unregister_tcp(const net::FiveTuple& incoming_flow);
  TcpEndpoint* lookup_tcp(const net::FiveTuple& incoming_flow);

 private:
  std::unordered_map<std::uint16_t, UdpSocket*> udp_;
  std::unordered_map<net::FiveTuple, TcpEndpoint*> tcp_;
};

}  // namespace prism::kernel
