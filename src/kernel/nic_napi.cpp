#include "kernel/nic_napi.h"

#include <cassert>
#include <utility>

#include "kernel/net_rx_engine.h"
#include "net/flow.h"
#include "overlay/flow_cache.h"
#include "overlay/netns.h"
#include "telemetry/latency.h"

namespace prism::kernel {

namespace {

/// Max frames GRO merges into one super-skb (64 KB / MSS, as in the
/// kernel's GRO_MAX limit).
constexpr int kGroMaxSegments = 45;

}  // namespace

NicNapi::NicNapi(std::string name, nic::RxQueue& ring, NicNapiContext ctx)
    : NapiStruct(std::move(name)), ring_(ring), ctx_(std::move(ctx)) {
  assert(ctx_.engine && ctx_.transition && ctx_.cost && ctx_.deliverer &&
         ctx_.root_ns && "NicNapi: incomplete context");
}

sim::Duration NicNapi::flush(GroSlot& slot, sim::Time at, double mult) {
  if (!slot.skb) return 0;
  SkbPtr skb = std::move(slot.skb);
  const Route route = slot.route;
  slot = GroSlot{};
  skb->ts.stage1_done = at;
  if (route.host_path) {
    return ctx_.deliverer->deliver(*skb, at, *ctx_.root_ns);
  }
  return ctx_.transition->transit(std::move(skb), at, *route.bridge,
                                  mult);
}

PollOutcome NicNapi::poll(int batch, sim::Time start) {
  PollOutcome out;
  out.cost = ctx_.cost->napi_poll_overhead;
  if (irq_at_ >= 0) {
#if PRISM_TELEMETRY_ENABLED
    if (ctx_.ledger != nullptr) {
      ctx_.ledger->record_irq_to_poll(start - irq_at_);
    }
#endif
    irq_at_ = -1;
  }
  const bool prism_mode = ctx_.engine->mode() != NapiMode::kVanilla;
  const double mult = ctx_.cost->depth_multiplier(ring_.size());
  auto scaled = [mult](sim::Duration d) {
    return static_cast<sim::Duration>(static_cast<double>(d) * mult);
  };
  GroSlot slot;

  while (out.processed < batch) {
    auto entry = ring_.pop();
    if (!entry) break;
    ++out.processed;
    // Driver service of this frame begins here; everything between the
    // DMA stamp and this instant is ring wait (the paper's §IV-D
    // irreducible segment).
    const sim::Time dequeued = start + out.cost;

    net::ParsedFrame parsed;
    if (!net::parse_frame_into(entry->frame.bytes(), parsed)) {
      // Receive-side validation: bad IPv4 checksum, short/truncated
      // buffers and inconsistent lengths all fail parse_frame_into.
      // Dropping here (instead of processing garbage) is what the kernel's
      // ip_rcv does; the ring entry's storage recycles on destruction.
      ++dropped_malformed_;
      t_malformed_->inc();
      if (ctx_.faults != nullptr) {
        ctx_.faults->drops.record_frame(fault::DropReason::kMalformed,
                                        entry->frame.bytes());
      }
      out.cost += scaled(ctx_.cost->nic_stage_per_packet);
      continue;
    }

    // Parse-once: for VXLAN frames the encapsulation header and the inner
    // frame are parsed here, and the result is shared by classification,
    // GRO keying, and (cached in the skb) every later pipeline stage.
    // The inner spans point into the frame's storage, which survives the
    // moves and the in-place decapsulation below.
    std::optional<net::VxlanHeader> vxlan;
    std::optional<net::ParsedFrame> inner;
    if (parsed.is_vxlan()) {
      vxlan = net::VxlanHeader::parse(parsed.l4_payload);
      if (vxlan) {
#if PRISM_FAULTS_ENABLED
        if (ctx_.faults != nullptr && ctx_.faults->plan.active()) {
          // Decap-time corruption hits the inner frame only, after the
          // outer headers were validated — the ONCache-style failure
          // surface where encap/decap bugs bite.
          const bool corrupted = ctx_.faults->plan.maybe_corrupt_decap(
              entry->frame.mutable_bytes().subspan(
                  parsed.l4_payload_offset + net::VxlanHeader::kSize));
#if PRISM_FLOWCACHE_ENABLED
          if (corrupted && ctx_.flow_cache != nullptr) {
            // A corrupted decap means cached transforms may no longer
            // match what the slow path would produce for these bytes:
            // void them all, so this packet (and everything cached) walks
            // the full pipeline and re-resolves.
            ctx_.flow_cache->invalidate();
          }
#else
          (void)corrupted;
#endif
        }
#endif
        inner.emplace();
        if (!net::parse_frame_into(
                parsed.l4_payload.subspan(net::VxlanHeader::kSize),
                *inner)) {
          inner.reset();
        }
      }
    }

    // Overlay flow cache: probe for a cached transform. UDP inner flows
    // only — TCP stays on the slow path so GRO keeps merging its trains
    // (losing the merge would cost more than the stages save) and
    // segment ordering through the stage queues is preserved.
#if PRISM_FLOWCACHE_ENABLED
    const overlay::FlowCacheEntry* cached = nullptr;
    const bool fc_active = ctx_.flow_cache != nullptr &&
                           ctx_.flow_cache->enabled() && vxlan && inner;
    if (fc_active && inner->udp) {
      out.cost += ctx_.cost->flowcache_lookup;
      cached = ctx_.flow_cache->lookup(net::flow_of(*inner), vxlan->vni);
    }
#endif

    // PRISM: classify once, at skb-allocation time. A flow-cache hit
    // reuses the level classify() produced when the entry was filled —
    // the generation check guarantees the database is unchanged since, so
    // the cached level is exactly what classify() would return now.
    int level = 0;
#if PRISM_FLOWCACHE_ENABLED
    if (cached != nullptr) {
      level = cached->priority;
    } else
#endif
    if (prism_mode && ctx_.priority_db != nullptr) {
      level =
          ctx_.priority_db->classify(parsed, inner ? &*inner : nullptr);
      out.cost += ctx_.cost->priority_check;
    }
    const bool high = level > 0;

#if PRISM_FAULTS_ENABLED
    if (ctx_.faults != nullptr && ctx_.faults->plan.skb_alloc_fails()) {
      // Injected SkbPool starvation: the frame is dropped exactly where
      // the real driver drops on alloc failure — after classification,
      // before any skb state exists. The ring entry recycles on scope
      // exit.
      ctx_.faults->drops.record(fault::DropReason::kAllocFail, level);
      out.cost += scaled(ctx_.cost->nic_stage_per_packet);
      continue;
    }
#endif
    auto skb = alloc_skb();
    if (!skb) {
      // Genuine pool exhaustion degrades the same way as injected
      // starvation: drop, count, move on.
      if (ctx_.faults != nullptr) {
        ctx_.faults->drops.record(fault::DropReason::kAllocFail, level);
      }
      out.cost += scaled(ctx_.cost->nic_stage_per_packet);
      continue;
    }
    skb->priority = level;
    skb->ts.nic_rx = entry->arrived;
    skb->ts.stage1_start = dequeued;
#if PRISM_FLOWCACHE_ENABLED
    if (fc_active) {
      // Generation at classification time: a stage-2 cache fill records
      // this value, so a mutation landing between now and the fill
      // leaves the entry already stale (see skb.h).
      skb->flowcache_gen = ctx_.flow_cache->generation();
    }
#endif

#if PRISM_TELEMETRY_ENABLED
    net::FiveTuple traced_flow;
    if (ctx_.recorder != nullptr && ctx_.recorder->armed()) {
      int observed = level;
      if (!prism_mode && ctx_.priority_db != nullptr) {
        // Vanilla never classifies on the datapath (skb->priority stays
        // 0); the recorder classifies on the side — wall-clock cost only,
        // no simulated cost — so inversions suffered by would-be-high
        // flows are attributable in the baseline too.
        observed =
            ctx_.priority_db->classify(parsed, inner ? &*inner : nullptr);
      }
      skb->observed_class = static_cast<std::int8_t>(observed);
      const bool flow_known = !parsed.is_vxlan() || inner.has_value();
      if (flow_known) {
        traced_flow = parsed.is_vxlan() ? net::flow_of(*inner)
                                        : net::flow_of(parsed);
        if (ctx_.recorder->should_trace(traced_flow, observed)) {
          skb->traced = true;
          ctx_.recorder->on_ring_arrival(traced_flow, observed,
                                         entry->arrived, dequeued);
        }
      }
    }
#endif

    Route route;
    net::FiveTuple gro_key;
    bool gro_ok = false;

    if (parsed.is_vxlan()) {
#if PRISM_FLOWCACHE_ENABLED
      if (cached != nullptr) {
        // Fast path (ONCache): the cached transform replaces the VNI
        // lookup, the bridge FDB walk, the veth transition and the
        // backlog queueing. Flush any pending GRO train first so
        // cross-flow poll ordering matches the slow path, then decap in
        // place and deliver straight into the cached namespace.
        skb->buf = std::move(entry->frame);
        skb->buf.pop_front(parsed.l4_payload_offset +
                           net::VxlanHeader::kSize);
        skb->parsed = std::move(inner);
        skb->dst_netns = cached->dst;
        skb->stage = 1;
        out.cost += flush(slot, start + out.cost, mult);
        out.cost += scaled(ctx_.cost->nic_stage_per_packet);
        skb->ts.stage1_done = start + out.cost;
        out.cost += scaled(ctx_.cost->flowcache_fast_path);
        skb->ts.flowcache_done = start + out.cost;
#if PRISM_TELEMETRY_ENABLED
        if (skb->traced) {
          ctx_.recorder->on_fast_path(traced_flow, skb->observed_class,
                                      start + out.cost);
        }
#endif
        out.cost += ctx_.deliverer->deliver(*skb, start + out.cost,
                                            *cached->dst);
        continue;
      }
#endif
      QueueNapi* bridge =
          (vxlan && ctx_.vxlan_lookup) ? ctx_.vxlan_lookup(vxlan->vni)
                                       : nullptr;
      if (bridge == nullptr) {
        ++dropped_;
        t_unroutable_->inc();
        if (ctx_.faults != nullptr) {
          ctx_.faults->drops.record(fault::DropReason::kUnroutable, level);
        }
#if PRISM_TELEMETRY_ENABLED
        if (skb->traced) {
          ctx_.recorder->on_drop(
              traced_flow, 1, skb->observed_class,
              static_cast<int>(fault::DropReason::kUnroutable), dequeued);
        }
#endif
        out.cost += scaled(ctx_.cost->nic_stage_per_packet);
        continue;
      }
      // Decapsulate: strip outer Ethernet/IPv4/UDP/VXLAN in place.
      skb->buf = std::move(entry->frame);
      skb->buf.pop_front(parsed.l4_payload_offset +
                         net::VxlanHeader::kSize);
      route.bridge = bridge;
      skb->stage = 2;
      if (!high && inner && inner->tcp && !inner->l4_payload.empty()) {
        gro_key = net::flow_of(*inner);
        gro_ok = true;
      }
      skb->parsed = std::move(inner);  // parse of the decapsulated bytes
    } else if (parsed.ip.dst == ctx_.root_ns->ip()) {
      skb->buf = std::move(entry->frame);
      route.host_path = true;
      skb->stage = 1;
      if (!high && parsed.tcp && !parsed.l4_payload.empty()) {
        gro_key = net::flow_of(parsed);
        gro_ok = true;
      }
      skb->parsed = std::move(parsed);
    } else {
      ++dropped_;
      t_unroutable_->inc();
      if (ctx_.faults != nullptr) {
        ctx_.faults->drops.record(fault::DropReason::kUnroutable, level);
      }
#if PRISM_TELEMETRY_ENABLED
      if (skb->traced) {
        ctx_.recorder->on_drop(
            traced_flow, 1, skb->observed_class,
            static_cast<int>(fault::DropReason::kUnroutable), dequeued);
      }
#endif
      out.cost += scaled(ctx_.cost->nic_stage_per_packet);
      continue;
    }

    // GRO: append to the pending train when flow and route match.
    if (gro_ok && slot.skb && slot.count < kGroMaxSegments &&
        slot.route.bridge == route.bridge &&
        slot.route.host_path == route.host_path && slot.key == gro_key) {
      slot.skb->gro_chain.push_back(std::move(skb->buf));
      ++slot.skb->segments;
      ++slot.count;
      ++gro_merged_;
      t_gro_merged_->inc();
      out.cost += scaled(ctx_.cost->gro_merge_per_segment);
      continue;
    }

    // Different flow (or not mergeable): flush any pending train first.
    out.cost += flush(slot, start + out.cost, mult);

    const sim::Duration head_cost =
        scaled(route.host_path ? ctx_.cost->host_path_per_packet
                               : ctx_.cost->nic_stage_per_packet);
    out.cost += head_cost;

    if (gro_ok) {
      slot.skb = std::move(skb);
      slot.route = route;
      slot.key = gro_key;
      slot.count = 1;
      continue;
    }

    skb->ts.stage1_done = start + out.cost;
    if (route.host_path) {
      out.cost +=
          ctx_.deliverer->deliver(*skb, start + out.cost, *ctx_.root_ns);
    } else {
      out.cost += ctx_.transition->transit(std::move(skb),
                                           start + out.cost,
                                           *route.bridge, mult);
    }
  }

  // GRO flush at the end of the poll (napi_gro_flush).
  out.cost += flush(slot, start + out.cost, mult);
  out.has_more = !ring_.empty();
  return out;
}

}  // namespace prism::kernel
