#include "kernel/softnet.h"

#include "overlay/netns.h"

namespace prism::kernel {

sim::Duration BacklogStage::process_one(SkbPtr skb, sim::Time at,
                                        double cost_multiplier) {
  auto cost = static_cast<sim::Duration>(
      static_cast<double>(cost_.backlog_stage_per_packet) *
      cost_multiplier);
  skb->ts.stage3_start = at;
  skb->ts.stage3_done = at + cost;
  if (skb->dst_netns == nullptr) {
    // No destination namespace (skb injected past the bridge without
    // routing): drop and recycle rather than dereferencing null.
    ++dropped_;
    t_dropped_->inc();
    if (faults_ != nullptr) {
      faults_->drops.record(fault::DropReason::kNullNetns, skb->priority);
    }
    return cost;
  }
  if (!skb->dst_netns->accepting()) {
    // Destination namespace began draining after this skb was routed at
    // the bridge (teardown between classification and delivery). The
    // pointer is a tombstone, safe to inspect; the packet drops with one
    // kDeadNetns record per carried frame, matching the deliverer's
    // per-frame accounting.
    ++dropped_;
    t_dropped_->inc();
    if (faults_ != nullptr) {
      const auto frames =
          static_cast<std::uint64_t>(1 + skb->gro_chain.size());
      for (std::uint64_t i = 0; i < frames; ++i) {
        faults_->drops.record(fault::DropReason::kDeadNetns, skb->priority);
      }
    }
    return cost;
  }
  ++delivered_;
  t_delivered_->inc();
  cost += deliverer_.deliver(*skb, at + cost, *skb->dst_netns);
  return cost;
}

}  // namespace prism::kernel
