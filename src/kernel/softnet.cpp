#include "kernel/softnet.h"

#include "overlay/netns.h"

namespace prism::kernel {

sim::Duration BacklogStage::process_one(SkbPtr skb, sim::Time at,
                                        double cost_multiplier) {
  auto cost = static_cast<sim::Duration>(
      static_cast<double>(cost_.backlog_stage_per_packet) *
      cost_multiplier);
  skb->ts.stage3_start = at;
  skb->ts.stage3_done = at + cost;
  if (skb->dst_netns == nullptr) {
    // No destination namespace (skb injected past the bridge without
    // routing): drop and recycle rather than dereferencing null.
    ++dropped_;
    t_dropped_->inc();
    if (faults_ != nullptr) {
      faults_->drops.record(fault::DropReason::kNullNetns, skb->priority);
    }
    return cost;
  }
  ++delivered_;
  t_delivered_->inc();
  cost += deliverer_.deliver(*skb, at + cost, *skb->dst_netns);
  return cost;
}

}  // namespace prism::kernel
