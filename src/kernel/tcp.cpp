#include "kernel/tcp.h"

#include <algorithm>
#include <cassert>

#include "net/headers.h"
#include "overlay/netns.h"

namespace prism::kernel {

TcpEndpoint::TcpEndpoint(sim::Simulator& sim, const CostModel& cost,
                         Config config)
    : sim_(sim), cost_(cost), cfg_(std::move(config)) {
  assert(cfg_.ns != nullptr && "TcpEndpoint needs a namespace");
  assert(cfg_.mss > 0);
}

net::FiveTuple TcpEndpoint::incoming_flow() const noexcept {
  return net::FiveTuple{cfg_.remote_ip, cfg_.local_ip, cfg_.remote_port,
                        cfg_.local_port, net::IpProto::kTcp};
}

net::PacketBuf TcpEndpoint::build_segment(
    std::uint32_t seq, std::span<const std::uint8_t> payload,
    bool push) const {
  net::FrameSpec spec;
  spec.src_mac = cfg_.ns->mac();
  // A missing neighbour yields a zero MAC: the segment transmits but no
  // receiver claims it, so it degrades to an unroutable drop downstream
  // instead of aborting the lane.
  spec.dst_mac = cfg_.ns->neighbor(cfg_.remote_ip).value_or(net::MacAddr{});
  spec.src_ip = cfg_.local_ip;
  spec.dst_ip = cfg_.remote_ip;
  spec.src_port = cfg_.local_port;
  spec.dst_port = cfg_.remote_port;

  net::TcpHeader tcp;
  tcp.seq = seq;
  tcp.ack = rcv_nxt_;
  tcp.flags = net::TcpFlags::kAck |
              (push ? net::TcpFlags::kPsh : std::uint8_t{0});
  return net::build_tcp_frame(spec, tcp, payload);
}

void TcpEndpoint::send(std::vector<std::uint8_t> data, Cpu& cpu) {
  if (data.empty()) return;
  const std::size_t nsegs = (data.size() + cfg_.mss - 1) / cfg_.mss;
  // TSO: one full egress pass plus a small per-extra-segment cost.
  sim::Duration cpu_cost =
      cost_.syscall_cost + cost_.copy_cost(data.size()) +
      cost_.tx_per_packet +
      static_cast<sim::Duration>(nsegs - 1) * cost_.tx_tso_per_segment;
  if (cfg_.ns->is_container()) cpu_cost += cost_.tx_overlay_extra;

  cpu.run_task(cpu_cost, [this, data = std::move(data)] {
    const std::uint32_t from = snd_nxt_;
    rtx_buffer_.insert(rtx_buffer_.end(), data.begin(), data.end());
    snd_nxt_ += static_cast<std::uint32_t>(data.size());
    transmit_range(from, data, sim_.now());
    arm_rto();
  });
}

void TcpEndpoint::transmit_range(std::uint32_t from_seq,
                                 std::span<const std::uint8_t> data,
                                 sim::Time at) {
  for (std::size_t off = 0; off < data.size(); off += cfg_.mss) {
    const std::size_t len = std::min(cfg_.mss, data.size() - off);
    const bool last = off + len >= data.size();
    net::PacketBuf frame = build_segment(
        from_seq + static_cast<std::uint32_t>(off), data.subspan(off, len),
        last);
    sim_.schedule_at(at, [this, f = std::move(frame)]() mutable {
      cfg_.ns->egress(std::move(f));
    });
  }
}

sim::Duration TcpEndpoint::handle_segment(
    const net::TcpHeader& header, std::span<const std::uint8_t> payload,
    sim::Time at, bool ack_now) {
  sim::Duration extra = 0;

  // --- ACK processing (sender side) ---------------------------------
  if ((header.flags & net::TcpFlags::kAck) != 0 &&
      seq_gt(header.ack, snd_una_)) {
    const std::uint32_t acked = header.ack - snd_una_;
    const std::size_t drop =
        std::min<std::size_t>(acked, rtx_buffer_.size());
    rtx_buffer_.erase(rtx_buffer_.begin(),
                      rtx_buffer_.begin() +
                          static_cast<std::ptrdiff_t>(drop));
    snd_una_ = header.ack;
    // Restart (or clear) the retransmission timer.
    ++rto_epoch_;
    rto_armed_ = false;
    if (!rtx_buffer_.empty()) arm_rto();
  }

  // --- data processing (receiver side) --------------------------------
  if (!payload.empty()) {
    if (header.seq == rcv_nxt_) {
      std::vector<std::uint8_t> ready(payload.begin(), payload.end());
      rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
      // Pull any now-contiguous out-of-order chunks.
      for (auto it = ooo_.begin(); it != ooo_.end();) {
        if (it->first != rcv_nxt_) break;
        rcv_nxt_ += static_cast<std::uint32_t>(it->second.size());
        ready.insert(ready.end(), it->second.begin(), it->second.end());
        it = ooo_.erase(it);
      }
      delivered_ += ready.size();
      if (on_data) {
        sim_.schedule_at(at, [this, chunk = std::move(ready), at] {
          on_data(chunk, at);
        });
      }
    } else if (seq_gt(header.seq, rcv_nxt_)) {
      ooo_.emplace(header.seq,
                   std::vector<std::uint8_t>(payload.begin(),
                                             payload.end()));
    }
    // else: duplicate of already-delivered data — drop, still ACK.
    if (ack_now) {
      send_ack(at);
      extra += cost_.tx_ack;
    }
  }
  return extra;
}

void TcpEndpoint::send_ack(sim::Time at) {
  ++acks_sent_;
  net::PacketBuf frame = build_segment(snd_nxt_, {}, false);
  sim_.schedule_at(at, [this, f = std::move(frame)]() mutable {
    cfg_.ns->egress(std::move(f));
  });
}

void TcpEndpoint::arm_rto() {
  if (rto_armed_ || rtx_buffer_.empty()) return;
  rto_armed_ = true;
  const std::uint64_t epoch = rto_epoch_;
  sim_.schedule(cfg_.rto, [this, epoch] {
    if (epoch == rto_epoch_) on_rto();
  });
}

void TcpEndpoint::on_rto() {
  rto_armed_ = false;
  if (rtx_buffer_.empty()) return;
  ++retransmits_;
  // Go-back-N from snd_una, bounded to one 64 KB window per timeout so a
  // timeout burst cannot flood the link.
  const std::size_t window = std::min<std::size_t>(rtx_buffer_.size(),
                                                   64 * 1024);
  transmit_range(snd_una_,
                 std::span<const std::uint8_t>(rtx_buffer_.data(), window),
                 sim_.now());
  ++rto_epoch_;
  arm_rto();
}

}  // namespace prism::kernel
