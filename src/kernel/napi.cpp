#include "kernel/napi.h"

#include <utility>

namespace prism::kernel {

const char* to_string(NapiMode mode) noexcept {
  switch (mode) {
    case NapiMode::kVanilla:
      return "vanilla";
    case NapiMode::kPrismBatch:
      return "prism-batch";
    case NapiMode::kPrismSync:
      return "prism-sync";
    case NapiMode::kPrismQueues:
      return "prism-queues";
  }
  return "?";
}

PollOutcome QueueNapi::poll(int batch, sim::Time start) {
  PollOutcome out;
  out.cost = cost_.napi_poll_overhead;
  // Queue selection happens once per poll (Fig. 7 line 24), generalized
  // to multiple levels: the highest non-empty priority queue is drained
  // for this batch. Vanilla never fills levels above 0, so it always
  // takes the low branch.
  const int level = highest_pending();
  if (level < 0) {
    out.has_more = false;
    return out;
  }
  auto& q = queues[static_cast<std::size_t>(level)];
  const double mult = cost_.depth_multiplier(q.size());
  while (out.processed < batch && !q.empty()) {
    SkbPtr skb = std::move(q.front());
    q.pop_front();
#if PRISM_TELEMETRY_ENABLED
    if (recorder_ != nullptr && skb->traced && skb->parsed) {
      // Queue wait replayed against the head class captured at enqueue;
      // the anomaly bank turns (wait, head) into inversion findings.
      const sim::Time dequeued = start + out.cost;
      recorder_->on_dequeue(net::flow_of(*skb->parsed), recorder_stage_,
                            skb->observed_class,
                            dequeued - last_done_stamp(*skb),
                            skb->head_class_at_enqueue, dequeued);
    }
#endif
    out.cost += stage_.process_one(std::move(skb), start + out.cost, mult);
    ++out.processed;
  }
  out.has_more = has_pending();
  return out;
}

}  // namespace prism::kernel
