#include "kernel/overload.h"

#include "net/flow.h"
#include "telemetry/json_writer.h"

namespace prism::kernel {

namespace {

/// Flow hash of the skb for the limiter's bucket selection: the cached
/// parse when present (the backlog path always has one), the byte-level
/// extractor otherwise, bucket 0 for unclassifiable frames (they still
/// participate in the history so a flood of garbage is itself a flow).
std::uint64_t flow_hash_of(const Skb& skb) {
  if (skb.parsed) {
    return std::hash<net::FiveTuple>{}(net::flow_of(*skb.parsed));
  }
  if (const auto flow = net::fast_flow(skb.buf.bytes())) {
    return std::hash<net::FiveTuple>{}(*flow);
  }
  return 0;
}

}  // namespace

AdmissionPolicy::Verdict BacklogAdmission::admit(const Skb& skb, int level,
                                                 std::size_t qlen,
                                                 std::size_t limit) {
  if (governor_ != nullptr) governor_->note_enqueue(qlen);
  if (!cfg_.enabled || level > 0) return Verdict::kAdmit;
  if (cfg_.flow_limit &&
      limiter_.should_drop(flow_hash_of(skb), qlen, limit)) {
    return Verdict::kFlowLimit;
  }
  if (qlen + headroom_ >= limit) {
    ++sheds_;
    return Verdict::kShed;
  }
  return Verdict::kAdmit;
}

void OverloadGovernor::transition(State to, const char* cause) {
  const State from = state_;
  if (from == to) return;
  state_ = to;
  t_state_->set(static_cast<std::int64_t>(to));
  const Transition t{sim_.now(), from, to, cause};
  if (log_.size() < cfg_.max_transitions) {
    log_.push_back(t);
  } else {
    ++log_dropped_;
  }
  if (transition_observer_) transition_observer_(t);
  if (to == State::kOverloaded && from == State::kNormal) {
    ++entries_;
    t_entries_->inc();
    if (moderation_hook_) moderation_hook_(true);
  } else if (to == State::kNormal) {
    ++exits_;
    t_exits_->inc();
    if (moderation_hook_) moderation_hook_(false);
  }
}

const char* to_string(OverloadGovernor::State s) noexcept {
  switch (s) {
    case OverloadGovernor::State::kNormal:
      return "normal";
    case OverloadGovernor::State::kOverloaded:
      return "overloaded";
    case OverloadGovernor::State::kLivelocked:
      return "livelocked";
  }
  return "?";
}

std::string overload_json(
    const OverloadGovernor& gov,
    const std::vector<const BacklogAdmission*>& cpus) {
  const OverloadConfig& cfg = gov.config();
  telemetry::JsonWriter w;
  w.begin_object();
  w.member("compiled_in", PRISM_OVERLOAD_ENABLED != 0);
  w.member("enabled", cfg.enabled);
  w.member("state", to_string(gov.state()));
  w.key("watermarks").begin_object();
  w.member("enter_depth", static_cast<std::uint64_t>(gov.enter_depth()));
  w.member("exit_depth", static_cast<std::uint64_t>(gov.exit_depth()));
  w.member("squeeze_enter_streak", cfg.squeeze_enter_streak);
  w.member("residency_enter_streak", cfg.residency_enter_streak);
  w.member("livelock_polls", cfg.livelock_polls);
  w.end_object();
  w.member("entries", gov.entries());
  w.member("exits", gov.exits());
  w.member("livelocks", gov.livelocks());
  w.key("per_cpu").begin_array();
  for (const BacklogAdmission* adm : cpus) {
    w.begin_object();
    w.member("flow_limit_count",
             adm != nullptr ? adm->flow_limit_count() : 0);
    w.member("shed_count", adm != nullptr ? adm->shed_count() : 0);
    w.end_object();
  }
  w.end_array();
  w.key("transitions").begin_array();
  for (const auto& t : gov.transitions()) {
    w.begin_object();
    w.member("at", static_cast<std::int64_t>(t.at));
    w.member("from", to_string(t.from));
    w.member("to", to_string(t.to));
    w.member("cause", t.cause);
    w.end_object();
  }
  w.end_array();
  w.member("transitions_dropped", gov.transitions_dropped());
  w.end_object();
  return w.take();
}

}  // namespace prism::kernel
