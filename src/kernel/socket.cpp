#include "kernel/socket.h"

#include <stdexcept>
#include <utility>

#include "fault/fault.h"
#include "telemetry/latency.h"

namespace prism::kernel {

UdpSocket::UdpSocket(sim::Simulator& sim, std::uint16_t port,
                     std::size_t capacity)
    : sim_(sim), port_(port), capacity_(capacity) {}

std::optional<Datagram> UdpSocket::try_recv() {
  if (queue_.empty()) return std::nullopt;
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
#if PRISM_TELEMETRY_ENABLED
  if (ledger_ != nullptr) {
    ledger_->record_socket_wait(sim_.now() - d.enqueued_at, d.priority);
  }
#endif
  return d;
}

void UdpSocket::enqueue(Datagram d, sim::Time at) {
  // The state change must occur at the packet's simulated completion
  // instant, not at the (earlier) instant the poll chunk computed it.
  sim_.schedule_at(at, [this, d = std::move(d)]() mutable {
    if (closed_) {
      // The namespace finished draining before this in-flight datagram
      // landed: account it as a dead-netns drop, never as a delivery.
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kDeadNetns, d.priority);
      }
      return;
    }
    if (queue_.size() >= capacity_) {
      ++dropped_;
      t_dropped_->inc();
      if (faults_ != nullptr) {
        faults_->drops.record(fault::DropReason::kRcvbufFull, d.priority);
      }
      // Returning destroys the datagram, recycling its payload storage
      // through the BufferPool.
      return;
    }
    ++received_;
    t_enqueued_->inc();
    queue_.push_back(std::move(d));
    t_depth_->set(static_cast<std::int64_t>(queue_.size()));
    if (on_readable_) on_readable_();
  });
}

void UdpSocket::close() {
  if (closed_) return;
  closed_ = true;
  queue_.clear();  // datagram dtors recycle payload storage
  t_depth_->set(0);
}

void SocketTable::close_all_udp() {
  // Sockets are tombstoned, not destroyed: applications hold UdpSocket*
  // across churn, and a closed socket is inert (enqueue counts the drop,
  // try_recv sees an empty queue) — same retention rule as dead Netns.
  for (auto& [port, sock] : udp_) sock->close();
}

void SocketTable::bind_udp(UdpSocket& sock) {
  const auto [it, inserted] = udp_.emplace(sock.port(), &sock);
  (void)it;
  if (!inserted) {
    throw std::logic_error("SocketTable: UDP port already bound: " +
                           std::to_string(sock.port()));
  }
}

void SocketTable::unbind_udp(std::uint16_t port) { udp_.erase(port); }

UdpSocket* SocketTable::lookup_udp(std::uint16_t port) {
  const auto it = udp_.find(port);
  return it == udp_.end() ? nullptr : it->second;
}

void SocketTable::register_tcp(const net::FiveTuple& incoming_flow,
                               TcpEndpoint& ep) {
  const auto [it, inserted] = tcp_.emplace(incoming_flow, &ep);
  (void)it;
  if (!inserted) {
    throw std::logic_error("SocketTable: TCP flow already registered: " +
                           incoming_flow.to_string());
  }
}

void SocketTable::unregister_tcp(const net::FiveTuple& incoming_flow) {
  tcp_.erase(incoming_flow);
}

TcpEndpoint* SocketTable::lookup_tcp(const net::FiveTuple& incoming_flow) {
  const auto it = tcp_.find(incoming_flow);
  return it == tcp_.end() ? nullptr : it->second;
}

}  // namespace prism::kernel
