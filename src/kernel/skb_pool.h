// Slab recycler for Skb objects, the simulator's skbuff_head_cache.
//
// The real kernel allocates sk_buffs from a dedicated slab cache precisely
// because the general allocator is too slow for per-packet churn; this
// pool plays the same role for the simulated stack. alloc_skb() pops a
// scrubbed skb off the free list and the SkbRecycler deleter pushes it
// back, so the steady-state packet loop never calls new/delete for skbs.
#pragma once

#include <cstddef>

#include "kernel/skb.h"
#include "sim/pool.h"

namespace prism::kernel {

/// Per-thread free-list recycler for Skb.
class SkbPool {
 public:
  /// RAII handle returned by acquire(); identical to kernel::SkbPtr.
  using Handle = SkbPtr;

  /// The calling thread's instance — one slab per thread so parallel
  /// simulation lanes allocate lock-free. The main thread's pool is never
  /// destroyed (SkbPtrs with static storage duration may release during
  /// shutdown); lane workers free theirs at thread exit.
  static SkbPool& instance() noexcept;

  /// Returns a scrubbed skb, recycled when the free list has one.
  Handle acquire();

  /// Scrubs `skb` (packet storage goes back to the BufferPool, metadata
  /// resets to defaults) and parks it for reuse. Called by SkbRecycler.
  void release(Skb* skb);

  /// A disabled pool degrades to plain new/delete (determinism A/B tests
  /// compare runs with the pool on and off).
  void set_enabled(bool enabled) { pool_.set_enabled(enabled); }
  bool enabled() const noexcept { return pool_.enabled(); }

  /// Frees every parked skb.
  void trim() { pool_.trim(); }

  std::size_t free_objects() const noexcept { return pool_.free_objects(); }

  const sim::PoolStats& stats() const noexcept { return pool_.stats(); }
  void reset_stats() noexcept { pool_.reset_stats(); }

 private:
  sim::ObjectPool<Skb> pool_;
};

}  // namespace prism::kernel
