#include "kernel/skb.h"

// Plain data; this translation unit anchors the target's source list.
